(* demaqd: the Demaq server command line.

   demaqd check FILE            parse + static analysis
   demaqd explain FILE          print the compiled execution plans
   demaqd run FILE [options]    deploy and process messages

   In run mode, messages are read from stdin, one per line, in the form

     <queue-name> <xml-document>

   (or bare XML documents with --queue). After the input is drained the
   engine runs to quiescence and prints the contents of every queue. *)

module S = Demaq.Server
module Store = Demaq.Store.Message_store
module Http = Demaq.Net.Http

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* ---- logging ----

   The engine's subsystems (demaq.server, demaq.executor,
   demaq.externalizer, demaq.worker_pool, demaq.http) log through [Logs];
   without a reporter those messages go nowhere. [--log-level] (or
   $DEMAQ_LOG) selects the threshold; warnings are on by default so abort
   and dead-letter messages reach stderr. *)

let parse_level s =
  match Logs.level_of_string (String.trim s) with
  | Ok l -> l
  | Error _ ->
    Printf.eprintf "unknown log level %S (try debug|info|warning|error|quiet)\n" s;
    Some Logs.Warning

let setup_logs level_opt =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level
    (match level_opt with
     | Some s -> parse_level s
     | None -> (
       match Sys.getenv_opt "DEMAQ_LOG" with
       | Some s -> parse_level s
       | None -> Some Logs.Warning))

(* ---- stats formatting (shared by `run --stats` and the repl) ---- *)

let print_stats srv =
  let st = S.stats srv in
  Printf.printf
    "processed=%d evals=%d created=%d errors=%d transmissions=%d timers=%d \
     gc=%d prefilter-skips=%d aborts=%d retries=%d dead-letters=%d\n"
    st.S.processed st.S.rule_evaluations st.S.messages_created
    st.S.errors_raised st.S.transmissions st.S.timers_fired st.S.gc_collected
    st.S.prefilter_skips st.S.txn_aborts st.S.transmit_retries
    st.S.dead_letters;
  Printf.printf "durability: group-syncs=%d batch-fill=%.1f syncs/msg=%.3f\n"
    st.S.wal_group_syncs st.S.batch_fill st.S.syncs_per_message;
  Printf.printf "workers: %d\n" (S.workers srv);
  List.iteri
    (fun i (w : Demaq.Engine.Worker_pool.worker_stats) ->
      Printf.printf "  worker %d: processed=%d drains=%d idle-waits=%d\n" i
        w.Demaq.Engine.Worker_pool.w_processed
        w.Demaq.Engine.Worker_pool.w_drains
        w.Demaq.Engine.Worker_pool.w_idle)
    (S.worker_stats srv)

(* ---- metrics endpoint ---- *)

let start_metrics_endpoint srv port =
  match Http.start ~port (Demaq.Engine.Ingress.handler ~enqueue:false srv) with
  | Ok server ->
    Printf.eprintf "metrics endpoint: http://127.0.0.1:%d/metrics\n%!"
      (Http.port server);
    Some server
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    None

(* ---- ingress serving ----

   With --ingress-port the node keeps running after stdin drains: HTTP
   POSTs enqueue through the transactional path (from the accept-pool
   domains) while this loop drains the dispatcher and advances the
   virtual clock in real time so echo-queue timers fire. *)

let serve_stop = ref false

let serve_loop srv ~seconds ~tick_every ~maintenance =
  let previous =
    List.map
      (fun s ->
        (s, Sys.signal s (Sys.Signal_handle (fun _ -> serve_stop := true))))
      [ Sys.sigint; Sys.sigterm ]
  in
  let t_start = Unix.gettimeofday () in
  let deadline =
    if seconds <= 0. then Float.infinity else t_start +. seconds
  in
  let last_tick = ref t_start in
  let last_maint = ref t_start in
  while (not !serve_stop) && Unix.gettimeofday () < deadline do
    let processed = S.run srv in
    (if tick_every > 0. then begin
       let now = Unix.gettimeofday () in
       let due = int_of_float ((now -. !last_tick) /. tick_every) in
       if due > 0 then begin
         S.advance_time srv due;
         last_tick := !last_tick +. (float_of_int due *. tick_every)
       end
     end);
    (* background maintenance (controller tick, incremental GC, log
       compaction) at a fixed cadence: often enough that the controller
       tracks load shifts, rare enough that the GC's store scan never
       dominates the drain *)
    let now = Unix.gettimeofday () in
    if now -. !last_maint >= 0.05 then begin
      maintenance ();
      last_maint := now
    end;
    if processed = 0 then Unix.sleepf 0.001
  done;
  List.iter (fun (s, h) -> Sys.set_signal s h) previous

(* ---- check ---- *)

let check_cmd file =
  match Demaq.Lang.Qdl.parse_program_result (read_file file) with
  | Error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    1
  | Ok program ->
    let result = Demaq.Lang.Analysis.analyze program in
    List.iter
      (fun d -> Format.printf "%a@." Demaq.Lang.Analysis.pp_diagnostic d)
      result.Demaq.Lang.Analysis.diagnostics;
    let q = List.length (Demaq.Lang.Qdl.queues program) in
    let p = List.length (Demaq.Lang.Qdl.properties program) in
    let s = List.length (Demaq.Lang.Qdl.slicings program) in
    let r = List.length (Demaq.Lang.Qdl.rules program) in
    Printf.printf "%s: %d queues, %d properties, %d slicings, %d rules: %s\n" file q p
      s r
      (if result.Demaq.Lang.Analysis.ok then "OK" else "ERRORS");
    if result.Demaq.Lang.Analysis.ok then 0 else 1

(* ---- explain ---- *)

let explain_cmd file =
  match Demaq.Lang.Qdl.parse_program_result (read_file file) with
  | Error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    1
  | Ok program ->
    print_string (Demaq.Lang.Compiler.explain (Demaq.Lang.Compiler.compile program));
    0

(* ---- run ---- *)

let run_cmd file default_queue store_dir show_stats stats_json gc_at_end advance
    batch workers metrics_port ingress_port serve_for tick_every adaptive
    gate_pending gate_wal gc_budget compact_wal log_level =
  setup_logs log_level;
  let module Controller = Demaq.Engine.Controller in
  let module Gate = Demaq.Engine.Gate in
  let group_commit = batch > 1 || adaptive in
  let store =
    match store_dir with
    | Some dir ->
      (* group commit: commits append their WAL record immediately, the
         fsync is amortized over the batch (with a byte-size safety
         valve). Under --adaptive the WAL's own record valve opens to the
         controller's ceiling — barriers are driven by the moving batch
         target, not a fixed cap picked at open time. *)
      let sync =
        if group_commit then
          Demaq.Store.Wal.Sync_batch
            {
              max_records =
                (if adaptive then Controller.default_config.Controller.max_batch
                 else batch);
              max_bytes = 1 lsl 20;
            }
        else Demaq.Store.Wal.Sync_always
      in
      Store.open_store (Store.durable_config ~sync dir)
    | None -> Store.open_store Store.default_config
  in
  let config =
    { S.default_config with
      S.batch_size = max 1 batch;
      group_commit;
      workers = max 1 workers;
      (* a scrape target wants latency histograms, not just totals; the
         controller needs the barrier histogram it steers against *)
      metrics = metrics_port <> None || ingress_port <> None || adaptive;
    }
  in
  match S.deploy ~config ~store (read_file file) with
  | exception S.Deployment_error msg ->
    Printf.eprintf "deployment failed:\n%s\n" msg;
    1
  | srv -> (
    if adaptive then begin
      let ctl = S.enable_adaptive srv in
      Printf.eprintf "adaptive: group-commit controller armed (batch %d..%d)\n%!"
        (Controller.config ctl).Controller.min_batch
        (Controller.config ctl).Controller.max_batch
    end;
    if gate_pending > 0 || gate_wal > 0 then begin
      let g = Gate.default_config in
      ignore
        (S.enable_gate
           ~cfg:
             { g with
               Gate.max_pending =
                 (if gate_pending > 0 then gate_pending else g.Gate.max_pending);
               max_wal_bytes =
                 (if gate_wal > 0 then gate_wal else g.Gate.max_wal_bytes);
             }
           srv)
    end;
    let endpoint = Option.bind metrics_port (start_metrics_endpoint srv) in
    match
      match ingress_port with
      | None -> Ok None
      | Some port ->
        Result.map Option.some
          (Http.start ~port
             ~gate:(Demaq.Engine.Ingress.gate srv)
             (Demaq.Engine.Ingress.handler srv))
    with
    | Error msg ->
      (* asked to serve but cannot: fail loudly instead of degrading to
         the batch path and exiting 0 without ever serving *)
      Printf.eprintf "%s\n" msg;
      Option.iter Http.stop endpoint;
      Store.close store;
      1
    | Ok ingress ->
    Option.iter
      (fun server ->
        Printf.eprintf "ingress: http://127.0.0.1:%d/enqueue/<queue>\n%!"
          (Http.port server))
      ingress;
    let inject queue xml_text =
      match Demaq.xml xml_text with
      | exception Demaq.Xml.Parser.Parse_error { msg; _ } ->
        Printf.eprintf "bad XML (%s): %s\n" msg xml_text
      | payload -> (
        match Demaq.inject srv ~queue payload with
        | Ok _ -> ()
        | Error e ->
          Printf.eprintf "rejected: %s\n" (Demaq.Mq.Queue_manager.error_to_string e))
    in
    (try
       while true do
         let line = String.trim (input_line stdin) in
         if line <> "" then
           if String.length line > 0 && line.[0] = '<' then
             match default_queue with
             | Some q -> inject q line
             | None ->
               Printf.eprintf
                 "no target queue: use '<queue> <xml>' lines or --queue\n"
           else
             match String.index_opt line ' ' with
             | Some i ->
               inject (String.sub line 0 i)
                 (String.trim (String.sub line i (String.length line - i)))
             | None -> Printf.eprintf "cannot parse input line: %s\n" line
       done
     with End_of_file -> ());
    let processed = S.run srv in
    if advance > 0 then begin
      S.advance_time srv advance;
      ignore (S.run srv)
    end;
    if ingress <> None then
      serve_loop srv ~seconds:serve_for ~tick_every
        ~maintenance:(fun () ->
          ignore (S.maintain ~gc_budget ~max_wal_bytes:compact_wal srv));
    Printf.printf "processed %d messages\n"
      (if ingress = None then processed else (S.stats srv).S.processed);
    (* serving mode: queues can hold an entire load-test corpus, so the
       per-message dump only runs in the pipe-driven batch mode *)
    if ingress = None then begin
      let qm = S.queue_manager srv in
      List.iter
        (fun (q : Demaq.Mq.Defs.queue_def) ->
          let messages = S.queue_contents srv q.Demaq.Mq.Defs.qname in
          if messages <> [] then begin
            Printf.printf "\nqueue %s (%d):\n" q.Demaq.Mq.Defs.qname
              (List.length messages);
            List.iter
              (fun m ->
                Printf.printf "  %s\n"
                  (Demaq.xml_to_string (Demaq.Message.body m)))
              messages
          end)
        (List.sort compare (Demaq.Mq.Queue_manager.queue_defs qm))
    end;
    if gc_at_end then Printf.printf "\ngc collected %d messages\n" (S.gc srv);
    if show_stats then begin
      print_newline ();
      print_stats srv
    end;
    if stats_json then print_endline (S.stats_json srv);
    Option.iter Http.stop ingress;
    Option.iter Http.stop endpoint;
    Store.close store;
    0)

(* ---- trace: run and dump lifecycle spans as JSONL ---- *)

let trace_cmd file default_queue capacity advance filter_queue filter_rid
    log_level =
  setup_logs log_level;
  let config =
    { S.default_config with S.trace_capacity = max 1 capacity; metrics = true }
  in
  match S.deploy ~config (read_file file) with
  | exception S.Deployment_error msg ->
    Printf.eprintf "deployment failed:\n%s\n" msg;
    1
  | srv ->
    let inject queue xml_text =
      match Demaq.xml xml_text with
      | exception Demaq.Xml.Parser.Parse_error { msg; _ } ->
        Printf.eprintf "bad XML (%s): %s\n" msg xml_text
      | payload -> (
        match Demaq.inject srv ~queue payload with
        | Ok _ -> ()
        | Error e ->
          Printf.eprintf "rejected: %s\n" (Demaq.Mq.Queue_manager.error_to_string e))
    in
    (try
       while true do
         let line = String.trim (input_line stdin) in
         if line <> "" then
           if line.[0] = '<' then
             match default_queue with
             | Some q -> inject q line
             | None ->
               Printf.eprintf
                 "no target queue: use '<queue> <xml>' lines or --queue\n"
           else
             match String.index_opt line ' ' with
             | Some i ->
               inject (String.sub line 0 i)
                 (String.trim (String.sub line i (String.length line - i)))
             | None -> Printf.eprintf "cannot parse input line: %s\n" line
       done
     with End_of_file -> ());
    ignore (S.run srv);
    if advance > 0 then begin
      S.advance_time srv advance;
      ignore (S.run srv)
    end;
    print_string
      (S.spans_jsonl ?queue:filter_queue ?rid:filter_rid srv);
    0

(* ---- flow: render one causal cascade as an ASCII tree ---- *)

let flow_cmd file default_queue id store_dir advance log_level =
  setup_logs log_level;
  let store =
    match store_dir with
    | Some dir ->
      (* reopening a crashed node's store recovers the durable provenance
         triples, so pre-crash hops still appear in the tree (their
         timings are gone with the span ring: they render as "pending") *)
      Store.open_store (Store.durable_config dir)
    | None -> Store.open_store Store.default_config
  in
  let config =
    { S.default_config with S.trace_capacity = 4096; metrics = true }
  in
  match S.deploy ~config ~store (read_file file) with
  | exception S.Deployment_error msg ->
    Printf.eprintf "deployment failed:\n%s\n" msg;
    1
  | srv ->
    let inject queue xml_text =
      match Demaq.xml xml_text with
      | exception Demaq.Xml.Parser.Parse_error { msg; _ } ->
        Printf.eprintf "bad XML (%s): %s\n" msg xml_text
      | payload -> (
        match Demaq.inject srv ~queue payload with
        | Ok _ -> ()
        | Error e ->
          Printf.eprintf "rejected: %s\n" (Demaq.Mq.Queue_manager.error_to_string e))
    in
    (try
       while true do
         let line = String.trim (input_line stdin) in
         if line <> "" then
           if line.[0] = '<' then
             match default_queue with
             | Some q -> inject q line
             | None ->
               Printf.eprintf
                 "no target queue: use '<queue> <xml>' lines or --queue\n"
           else
             match String.index_opt line ' ' with
             | Some i ->
               inject (String.sub line 0 i)
                 (String.trim (String.sub line i (String.length line - i)))
             | None -> Printf.eprintf "cannot parse input line: %s\n" line
       done
     with End_of_file -> ());
    ignore (S.run srv);
    if advance > 0 then begin
      S.advance_time srv advance;
      ignore (S.run srv)
    end;
    let rc =
      match id with
      | None ->
        (* no id: list the retained flows, most recent first *)
        let summaries = Demaq.Obs.Flow.summaries (S.flow_store srv) in
        if summaries = [] then print_endline "no flows recorded"
        else begin
          Printf.printf "%-32s %6s %8s %12s\n" "FLOW" "NODES" "DROPPED"
            "LAST-TICK";
          List.iter
            (fun (s : Demaq.Obs.Flow.summary) ->
              Printf.printf "%-32s %6d %8d %12d\n" s.Demaq.Obs.Flow.s_flow
                s.Demaq.Obs.Flow.s_nodes s.Demaq.Obs.Flow.s_dropped
                s.Demaq.Obs.Flow.s_last_tick)
            summaries
        end;
        0
      | Some id -> (
        let flow_id =
          match int_of_string_opt id with
          | Some rid -> S.flow_id_of_rid srv rid
          | None -> Some id
        in
        match flow_id with
        | None ->
          Printf.eprintf "no flow recorded for rid %s\n" id;
          1
        | Some fid ->
          if S.flow_nodes srv fid = [] then begin
            Printf.eprintf "unknown flow %s\n" fid;
            1
          end
          else begin
            print_string (S.flow_ascii srv fid);
            0
          end)
    in
    Store.close store;
    rc

(* ---- query ---- *)

let query_cmd expr context_file =
  let context =
    match context_file with
    | Some path -> Some (Demaq.xml (read_file path))
    | None ->
      if Unix.isatty Unix.stdin then None
      else begin
        let buf = Buffer.create 1024 in
        (try
           while true do
             Buffer.add_channel buf stdin 1
           done
         with End_of_file -> ());
        let text = String.trim (Buffer.contents buf) in
        if text = "" then None else Some (Demaq.xml text)
      end
  in
  match Demaq.Xquery.Eval.run ?context expr with
  | value, updates ->
    List.iter
      (fun item ->
        match item with
        | Demaq.Value.Node n -> (
          match Demaq.Tree.node_tree n with
          | Some t -> print_endline (Demaq.xml_to_string t)
          | None -> print_endline (Demaq.Tree.string_value n))
        | Demaq.Value.Atom a -> print_endline (Demaq.Value.string_of_atomic a))
      value;
    List.iter
      (fun u -> Format.printf "pending update: %a@." Demaq.Xquery.Update.pp u)
      updates;
    0
  | exception Demaq.Xquery.Parser.Syntax_error { pos; msg } ->
    Printf.eprintf "syntax error at offset %d: %s
" pos msg;
    1
  | exception Demaq.Xquery.Context.Eval_error msg ->
    Printf.eprintf "evaluation error: %s
" msg;
    1
  | exception Demaq.Xml.Parser.Parse_error { line; col; msg } ->
    Printf.eprintf "XML error at %d:%d: %s
" line col msg;
    1

(* ---- repl ---- *)

let repl_help = {|commands:
  inject <queue> <xml>     deliver a message and run to quiescence
  run                      process pending messages
  step                     process one message
  advance <ticks>          advance the virtual clock (fires echo timers)
  queues                   list queues and their sizes
  show <queue>             print a queue's messages
  gc                       run the retention garbage collector
  evolve <<EOF ... EOF     apply an evolution script (heredoc style)
  explain                  print the compiled plans
  trace                    recent rule activations (needs trace capacity)
  spans [json]             per-message lifecycle spans, newest first
  stats [json]             engine statistics (json: full registry snapshot)
  metrics                  Prometheus exposition of the metrics registry
  help                     this text
  quit                     exit|}

let repl_cmd file log_level =
  setup_logs log_level;
  (* tracing needs timestamps, so the repl runs with metrics on *)
  let config = { S.default_config with S.trace_capacity = 200; metrics = true } in
  match S.deploy ~config (read_file file) with
  | exception S.Deployment_error msg ->
    Printf.eprintf "deployment failed:
%s
" msg;
    1
  | srv ->
    let interactive = Unix.isatty Unix.stdin in
    if interactive then
      Printf.printf "demaqd repl — %s deployed; 'help' for commands
" file;
    let prompt () = if interactive then (print_string "demaq> "; flush stdout) in
    let rec read_heredoc acc =
      match input_line stdin with
      | "EOF" -> String.concat "
" (List.rev acc)
      | line -> read_heredoc (line :: acc)
      | exception End_of_file -> String.concat "
" (List.rev acc)
    in
    let quit = ref false in
    while not !quit do
      prompt ();
      match input_line stdin with
      | exception End_of_file -> quit := true
      | line -> (
        let line = String.trim line in
        let word, rest =
          match String.index_opt line ' ' with
          | Some i ->
            ( String.sub line 0 i,
              String.trim (String.sub line i (String.length line - i)) )
          | None -> (line, "")
        in
        match word with
        | "" -> ()
        | "quit" | "exit" -> quit := true
        | "help" -> print_endline repl_help
        | "inject" -> (
          match String.index_opt rest ' ' with
          | None -> print_endline "usage: inject <queue> <xml>"
          | Some i ->
            let queue = String.sub rest 0 i in
            let body = String.trim (String.sub rest i (String.length rest - i)) in
            (match Demaq.xml body with
             | exception Demaq.Xml.Parser.Parse_error { msg; _ } ->
               Printf.printf "bad XML: %s
" msg
             | payload -> (
               match Demaq.inject srv ~queue payload with
               | Ok m -> Printf.printf "enqueued rid %d; %d processed
"
                           m.Demaq.Message.rid (S.run srv)
               | Error e ->
                 print_endline (Demaq.Mq.Queue_manager.error_to_string e))))
        | "run" -> Printf.printf "%d processed
" (S.run srv)
        | "step" -> (
          match S.step srv with
          | S.Processed m ->
            Printf.printf "processed rid %d from %s
" m.Demaq.Message.rid
              m.Demaq.Message.queue
          | S.Idle -> print_endline "idle")
        | "advance" -> (
          match int_of_string_opt rest with
          | Some n ->
            S.advance_time srv n;
            Printf.printf "clock now %d; %d processed
"
              (Demaq.Engine.Clock.now (S.clock srv))
              (S.run srv)
          | None -> print_endline "usage: advance <ticks>")
        | "queues" ->
          List.iter
            (fun (q : Demaq.Mq.Defs.queue_def) ->
              Printf.printf "  %-20s %-16s %d messages
" q.Demaq.Mq.Defs.qname
                (Demaq.Mq.Defs.kind_to_string q.Demaq.Mq.Defs.kind)
                (List.length (S.queue_contents srv q.Demaq.Mq.Defs.qname)))
            (List.sort compare (Demaq.Mq.Queue_manager.queue_defs (S.queue_manager srv)))
        | "show" ->
          List.iter
            (fun m ->
              Printf.printf "  [%d]%s %s
" m.Demaq.Message.rid
                (if m.Demaq.Message.processed then "*" else " ")
                (Demaq.xml_to_string (Demaq.Message.body m)))
            (S.queue_contents srv rest)
        | "gc" -> Printf.printf "collected %d
" (S.gc srv)
        | "explain" -> print_string (S.explain srv)
        | "evolve" -> (
          let script = if rest = "<<EOF" || rest = "" then read_heredoc [] else rest in
          match S.evolve srv script with
          | Ok () -> print_endline "evolved"
          | Error msg -> Printf.printf "rejected:
%s
" msg)
        | "trace" ->
          List.iter
            (fun e -> Format.printf "%a@." S.pp_trace_entry e)
            (S.trace srv)
        | "spans" ->
          if rest = "json" then print_string (S.spans_jsonl srv)
          else
            List.iter (fun sp -> Format.printf "%a@." S.pp_span sp) (S.spans srv)
        | "stats" ->
          if rest = "json" then print_endline (S.stats_json srv)
          else print_stats srv
        | "metrics" -> print_string (S.exposition srv)
        | other -> Printf.printf "unknown command %S; try 'help'
" other)
    done;
    0

(* ---- loadgen: open-loop HTTP load generation with latency SLOs ---- *)

module Lg = Demaq.Net.Loadgen
module Schema = Demaq.Xml.Schema
module Defs = Demaq.Mq.Defs

(* Named workloads: the ingress queue and the QDL program whose deployed
   schema drives sample-message generation (see Schema.example). *)
let workloads =
  [
    ("order-fanout", ("orders", "examples/order_fanout.demaq"));
    ("etl", ("raw_events", "examples/etl_pipeline.demaq"));
    ("escalation", ("tickets", "examples/escalation.demaq"));
  ]

(* The generation root of a queue schema: a declared element that no other
   declaration references as a child (falling back to the first declared
   name for flat or cyclic schemas). *)
let schema_root schema =
  let names = Schema.declared_names schema in
  let referenced =
    List.concat_map
      (fun n ->
        match Schema.declared schema n with
        | Some (Schema.Sequence ps) ->
          List.map (fun p -> p.Schema.pname) ps
        | _ -> [])
      names
  in
  match List.filter (fun n -> not (List.mem n referenced)) names with
  | root :: _ -> Some root
  | [] -> ( match names with n :: _ -> Some n | [] -> None)

let queue_schema file queue =
  match Demaq.Lang.Qdl.parse_program_result (read_file file) with
  | Error msg ->
    Printf.eprintf "loadgen: cannot parse %s: %s\n" file msg;
    None
  | Ok program ->
    Option.bind
      (List.find_opt
         (fun (q : Defs.queue_def) -> q.Defs.qname = queue)
         (Demaq.Lang.Qdl.queues program))
      (fun q -> q.Defs.schema)

let make_generator ~queue ~program ~flow_prefix =
  let path = "/enqueue/" ^ queue in
  let fallback i =
    Printf.sprintf "<msg><id>%d</id><payload>sample-%d</payload></msg>" i i
  in
  let body_of =
    match program with
    | Some file when Sys.file_exists file -> (
      match Option.bind (queue_schema file queue) (fun schema ->
                Option.map (fun root -> (schema, root)) (schema_root schema))
      with
      | Some (schema, root) ->
        Printf.eprintf "loadgen: generating <%s> messages from %s's schema\n%!"
          root file;
        fun i ->
          (match Schema.example ~vary:i schema root with
           | Some tree -> Demaq.xml_to_string tree
           | None -> fallback i)
      | None ->
        Printf.eprintf
          "loadgen: no usable schema for queue %s in %s; using built-in \
           sample bodies\n%!"
          queue file;
        fallback)
    | Some file ->
      Printf.eprintf "loadgen: program %s not found; using built-in sample \
                      bodies\n%!" file;
      fallback
    | None -> fallback
  in
  let flow_of =
    match flow_prefix with
    | None -> fun _ -> ""
    | Some p -> fun i -> Printf.sprintf "%s-%d" p i
  in
  fun i -> { Lg.sp_path = path; sp_body = body_of i; sp_flow = flow_of i }

let parse_url url =
  let rest =
    if String.length url >= 7 && String.sub url 0 7 = "http://" then
      String.sub url 7 (String.length url - 7)
    else url
  in
  let rest =
    match String.index_opt rest '/' with
    | Some i -> String.sub rest 0 i
    | None -> rest
  in
  match String.index_opt rest ':' with
  | None -> Error (Printf.sprintf "cannot parse url %S: expected host:port" url)
  | Some i -> (
    let host = String.sub rest 0 i in
    let port = String.sub rest (i + 1) (String.length rest - i - 1) in
    match int_of_string_opt port with
    | None -> Error (Printf.sprintf "bad port in url %S" url)
    | Some port -> (
      match
        if host = "" || host = "localhost" then Unix.inet_addr_loopback
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with
      | addr -> Ok (addr, port)
      | exception Not_found ->
        Error (Printf.sprintf "cannot resolve host %S" host)))

let json_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c when Char.code c < 32 -> Printf.sprintf "\\u%04x" (Char.code c)
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let fmt_ms v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v

let loadgen_json ~name ~workload entries =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf
    "{\n\
    \  \"suite\": \"demaq-loadgen\",\n\
    \  \"quick\": false,\n\
    \  \"meta\": {\n\
    \    \"date\": \"%04d-%02d-%02dT%02d:%02d:%02dZ\",\n\
    \    \"ocaml\": \"%s\",\n\
    \    \"cores\": %d,\n\
    \    \"workload\": \"%s\"\n\
    \  },\n\
    \  \"benches\": [\n\
    \    {\"bench\": \"%s\", \"results\": [%s]}\n\
    \  ]\n\
     }\n"
    (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec Sys.ocaml_version
    (Domain.recommended_domain_count ())
    (json_escape workload) (json_escape name)
    (String.concat ", " entries)

let result_entry rate (r : Lg.results) =
  Printf.sprintf
    "{\"rate\": %g, \"msg_per_s\": %.1f, \"p50_ms\": %s, \"p99_ms\": %s, \
     \"p999_ms\": %s, \"mean_ms\": %s, \"max_ms\": %s, \"ok\": %d, \
     \"errors\": %d, \"rejected\": %d, \"dropped\": %d, \"timeouts\": %d, \
     \"offered\": %d}"
    rate r.Lg.r_achieved_rate (fmt_ms r.Lg.r_p50_ms) (fmt_ms r.Lg.r_p99_ms)
    (fmt_ms r.Lg.r_p999_ms) (fmt_ms r.Lg.r_mean_ms) (fmt_ms r.Lg.r_max_ms)
    r.Lg.r_ok r.Lg.r_errors r.Lg.r_rejected r.Lg.r_dropped r.Lg.r_timeouts
    r.Lg.r_offered

let loadgen_cmd url rates duration arrival inflight timeout workload queue
    program json_file slo_p99 seed flow_prefix log_level =
  setup_logs log_level;
  let fail msg =
    Printf.eprintf "loadgen: %s\n" msg;
    2
  in
  let named =
    match workload with
    | None -> Ok None
    | Some w -> (
      match List.assoc_opt w workloads with
      | Some (q, p) -> Ok (Some (w, q, p))
      | None ->
        Error
          (Printf.sprintf "unknown workload %S (known: %s)" w
             (String.concat ", " (List.map fst workloads))))
  in
  match named with
  | Error msg -> fail msg
  | Ok named -> (
    let queue, program, wl_name =
      match (named, queue) with
      | Some (w, q, p), override ->
        ( Option.value override ~default:q,
          (match program with Some _ -> program | None -> Some p),
          w )
      | None, Some q -> (q, program, q)
      | None, None -> ("", None, "")
    in
    if queue = "" then
      fail "no target queue: pass --workload or --queue"
    else
      match parse_url url with
      | Error msg -> fail msg
      | Ok (host, port) -> (
        let rates =
          List.filter_map
            (fun s -> float_of_string_opt (String.trim s))
            (String.split_on_char ',' rates)
        in
        if rates = [] then fail "no valid --rate values"
        else begin
          let arrival =
            match arrival with "constant" -> Lg.Constant | _ -> Lg.Poisson
          in
          let gen = make_generator ~queue ~program ~flow_prefix in
          let entries = ref [] in
          let worst_p99 = ref 0. in
          let total_bad = ref 0 in
          List.iter
            (fun rate ->
              let cfg =
                {
                  Lg.host;
                  port;
                  rate;
                  duration;
                  arrival;
                  max_inflight = inflight;
                  timeout_s = timeout;
                  seed;
                }
              in
              Printf.printf
                "== workload %s: %.0f req/s for %.1fs (%s arrivals, cap %d) ==\n%!"
                wl_name rate duration
                (match arrival with
                 | Lg.Constant -> "constant"
                 | Lg.Poisson -> "poisson")
                inflight;
              let r = Lg.run cfg gen in
              print_string (Lg.report r);
              print_newline ();
              entries := !entries @ [ result_entry rate r ];
              if not (Float.is_nan r.Lg.r_p99_ms) then
                worst_p99 := Float.max !worst_p99 r.Lg.r_p99_ms;
              (* 429s are the node's backpressure working as designed, so
                 they never count against the SLO — errors and drops do *)
              total_bad := !total_bad + r.Lg.r_errors + r.Lg.r_dropped)
            rates;
          (match json_file with
           | Some file ->
             let oc = open_out file in
             output_string oc
               (loadgen_json ~name:("loadgen_" ^ wl_name) ~workload:wl_name
                  !entries);
             close_out oc;
             Printf.printf "wrote %s\n" file
           | None -> ());
          match slo_p99 with
          | Some bound
            when !worst_p99 > bound || !total_bad > 0 ->
            Printf.eprintf
              "loadgen: SLO violated (worst p99 %.2f ms vs bound %.2f ms, \
               errors+drops %d)\n"
              !worst_p99 bound !total_bad;
            1
          | _ -> 0
        end))

(* ---- sim: deterministic chaos sweeps and replay ---- *)

module Sim = Demaq.Sim.Sim
module Schedule = Demaq.Sim.Schedule

let sim_cmd seed iters events replay do_shrink blind_tear footprint out =
  match replay with
  | Some file -> (
    match Schedule.of_string (read_file file) with
    | Error e ->
      Printf.eprintf "cannot parse %s: %s\n" file e;
      2
    | Ok sched ->
      let sched =
        if do_shrink then Sim.shrink ~blind_tear ~footprint sched else sched
      in
      let o = Sim.run ~blind_tear ~footprint sched in
      print_string (Sim.report o);
      if o.Sim.violations = [] then 0 else 1)
  | None -> (
    let progress i =
      if i > 0 && i mod 50 = 0 then (
        Printf.eprintf "  ... %d/%d schedules clean\n" i iters;
        flush stderr)
    in
    match Sim.sweep ~blind_tear ~footprint ~events ~progress ~seed ~iters () with
    | Sim.Clean n ->
      Printf.printf "sim: %d schedules (seeds %d..%d, %d events each), all \
                     invariants held\n"
        n seed (seed + n - 1) events;
      0
    | Sim.Failed { seed = bad; outcome; shrunk; shrunk_outcome } ->
      Printf.printf "sim: seed %d violated invariants\n\n" bad;
      print_string (Sim.report outcome);
      Printf.printf "\nshrunk to %d events:\n\n"
        (List.length shrunk.Schedule.events);
      print_string (Sim.report shrunk_outcome);
      let oc = open_out out in
      output_string oc
        (Printf.sprintf "# shrunk counterexample (original seed %d)\n" bad);
      output_string oc (Schedule.to_string shrunk);
      close_out oc;
      Printf.printf "\ncounterexample written to %s\n" out;
      Printf.printf "replay with: demaqd sim --replay %s\n" out;
      1)

(* ---- command line ---- *)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Demaq program")

let check_t = Term.(const check_cmd $ file_arg)

let explain_t = Term.(const explain_cmd $ file_arg)

let queue_arg =
  Arg.(value & opt (some string) None
       & info [ "q"; "queue" ] ~docv:"QUEUE" ~doc:"Default queue for bare XML input")

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"DIR" ~doc:"Durable message store directory")

let stats_arg = Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics")

let stats_json_arg =
  Arg.(value & flag
       & info [ "stats-json" ]
           ~doc:"Print the full metrics-registry snapshot as one JSON object")

let gc_arg = Arg.(value & flag & info [ "gc" ] ~doc:"Run the retention GC at the end")

let advance_arg =
  Arg.(value & opt int 0
       & info [ "advance" ] ~docv:"TICKS"
           ~doc:"Advance the virtual clock after the input drains (fires echo timers)")

let batch_arg =
  Arg.(value & opt int 1
       & info [ "batch" ] ~docv:"N"
           ~doc:
             "Process up to N messages per cycle under one group-commit \
              durability barrier (one fsync per batch instead of one per \
              message). With --store, N > 1 opens the WAL in batched-sync \
              mode; 1 (the default) keeps fsync-per-commit.")

let workers_arg =
  Arg.(value & opt int S.default_config.S.workers
       & info [ "workers" ] ~docv:"N"
           ~doc:
             "Worker domains draining the dispatcher. 1 (the default) is \
              the deterministic single-threaded mode; N > 1 processes \
              conflict-free messages (different queues or slices) \
              concurrently. Defaults to \\$DEMAQ_WORKERS when set.")

let metrics_port_arg =
  Arg.(value & opt (some int) None
       & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:
             "Serve /metrics (Prometheus text format), /stats.json and \
              /trace on this loopback port while the node runs (0 picks an \
              ephemeral port, printed to stderr). Also enables phase-latency \
              timing.")

let ingress_port_arg =
  Arg.(value & opt (some int) None
       & info [ "ingress-port" ] ~docv:"PORT"
           ~doc:
             "Serve POST /enqueue/<queue> (XML body, 202 with the rid) plus \
              the observability endpoints on this loopback port, and keep \
              the node running after stdin drains: the serve loop drains \
              the dispatcher continuously and advances the virtual clock \
              in real time (see --tick-every). 0 picks an ephemeral port. \
              Implies phase-latency timing.")

let serve_for_arg =
  Arg.(value & opt float 0.
       & info [ "serve" ] ~docv:"SECS"
           ~doc:
             "With --ingress-port: serve for this many seconds, then shut \
              down cleanly. 0 (the default) serves until SIGINT/SIGTERM.")

let tick_every_arg =
  Arg.(value & opt float 0.1
       & info [ "tick-every" ] ~docv:"SECS"
           ~doc:
             "With --ingress-port: advance the virtual clock one tick per \
              this many wall seconds while serving, so echo-queue timers \
              fire in real time. 0 disables.")

let log_arg =
  Arg.(value & opt (some string) None
       & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:
             "Log threshold: debug, info, warning, error or quiet. Defaults \
              to \\$DEMAQ_LOG, else warning.")

let adaptive_arg =
  Arg.(value & flag
       & info [ "adaptive" ]
           ~doc:
             "Self-tune the group-commit batch target and flush deadline \
              against the observed batch fill and barrier p99 (AIMD). \
              Implies group commit; --batch sets the starting target.")

let gate_pending_arg =
  Arg.(value & opt int 0
       & info [ "gate-pending" ] ~docv:"N"
           ~doc:
             "Arm the ingress admission gate: shed enqueues with 429 + \
              Retry-After once the dispatch backlog reaches N (0, the \
              default, leaves the gate down unless --gate-wal arms it).")

let gate_wal_arg =
  Arg.(value & opt int 0
       & info [ "gate-wal" ] ~docv:"BYTES"
           ~doc:
             "Admission-gate threshold on unsynced WAL bytes: shed \
              enqueues once the group-commit exposure reaches BYTES \
              (0 disables this axis).")

let gc_budget_arg =
  Arg.(value & opt int 0
       & info [ "gc-budget" ] ~docv:"N"
           ~doc:
             "With --ingress-port: run the incremental retention GC from \
              the serve loop, examining at most N messages per maintenance \
              tick (0, the default, disables background GC).")

let compact_wal_arg =
  Arg.(value & opt int 0
       & info [ "compact-wal" ] ~docv:"BYTES"
           ~doc:
             "With --ingress-port and --store: compact the log (snapshot + \
              WAL truncation, crash-safe) whenever it grows past BYTES \
              since the last checkpoint (0 disables).")

let run_t =
  Term.(const run_cmd $ file_arg $ queue_arg $ store_arg $ stats_arg
        $ stats_json_arg $ gc_arg $ advance_arg $ batch_arg $ workers_arg
        $ metrics_port_arg $ ingress_port_arg $ serve_for_arg
        $ tick_every_arg $ adaptive_arg $ gate_pending_arg $ gate_wal_arg
        $ gc_budget_arg $ compact_wal_arg $ log_arg)

(* loadgen *)

let url_arg =
  Arg.(value & opt string "http://127.0.0.1:8080"
       & info [ "url" ] ~docv:"URL"
           ~doc:"Target node, e.g. http://127.0.0.1:8080 (the host:port a \
                 'demaqd run --ingress-port' node listens on)")

let rate_arg =
  Arg.(value & opt string "100"
       & info [ "rate" ] ~docv:"R[,R..]"
           ~doc:
             "Open-loop arrival rate(s) in requests per second. A \
              comma-separated list runs a sweep, one entry per rate, all \
              recorded in the same --json file.")

let duration_arg =
  Arg.(value & opt float 10.
       & info [ "duration" ] ~docv:"SECS" ~doc:"Seconds of arrivals per rate")

let arrival_arg =
  Arg.(value & opt string "poisson"
       & info [ "arrival" ] ~docv:"PROCESS"
           ~doc:"Arrival process: poisson (default) or constant")

let inflight_arg =
  Arg.(value & opt int 256
       & info [ "inflight" ] ~docv:"N"
           ~doc:
             "In-flight cap: an arrival that would exceed it is counted as \
              dropped and skipped, never delayed (no coordinated omission)")

let lg_timeout_arg =
  Arg.(value & opt float 10.
       & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Per-request response deadline; expiry counts as an error")

let workload_arg =
  Arg.(value & opt (some string) None
       & info [ "workload" ] ~docv:"NAME"
           ~doc:
             "Named workload: order-fanout, etl or escalation. Selects the \
              ingress queue and the examples/ program whose queue schema \
              drives sample-message generation.")

let lg_queue_arg =
  Arg.(value & opt (some string) None
       & info [ "queue" ] ~docv:"QUEUE"
           ~doc:"Target queue (overrides the workload's default)")

let program_arg =
  Arg.(value & opt (some string) None
       & info [ "program" ] ~docv:"FILE"
           ~doc:
             "QDL program to read the target queue's schema from for \
              sample-message generation (defaults to the workload's \
              example program)")

let lg_json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:
             "Write machine-readable results (bench/compare.py compatible; \
              one entry per rate, keyed by rate)")

let slo_arg =
  Arg.(value & opt (some float) None
       & info [ "slo-p99" ] ~docv:"MS"
           ~doc:
             "Exit 1 unless every rate's p99 latency is under MS \
              milliseconds with zero errors and zero cap drops")

let lg_seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"SEED" ~doc:"Poisson arrival-process seed")

let flow_prefix_arg =
  Arg.(value & opt (some string) None
       & info [ "flow-prefix" ] ~docv:"PREFIX"
           ~doc:
             "Stamp an X-Demaq-Flow: PREFIX-<i> header on the i-th request, \
              so each injected message roots a client-named causal flow \
              (inspect with 'demaqd flow' or GET /flow/PREFIX-<i>)")

let loadgen_t =
  Term.(const loadgen_cmd $ url_arg $ rate_arg $ duration_arg $ arrival_arg
        $ inflight_arg $ lg_timeout_arg $ workload_arg $ lg_queue_arg
        $ program_arg $ lg_json_arg $ slo_arg $ lg_seed_arg $ flow_prefix_arg
        $ log_arg)

let capacity_arg =
  Arg.(value & opt int 1024
       & info [ "capacity" ] ~docv:"N"
           ~doc:"Lifecycle spans retained (oldest evicted first)")

let filter_queue_arg =
  Arg.(value & opt (some string) None
       & info [ "filter-queue" ] ~docv:"QUEUE"
           ~doc:
             "Only print spans of messages in QUEUE (the /trace endpoint's \
              ?queue= parameter)")

let filter_rid_arg =
  Arg.(value & opt (some int) None
       & info [ "rid" ] ~docv:"RID"
           ~doc:
             "Only print spans of message RID (the /trace endpoint's ?rid= \
              parameter)")

let trace_t =
  Term.(const trace_cmd $ file_arg $ queue_arg $ capacity_arg $ advance_arg
        $ filter_queue_arg $ filter_rid_arg $ log_arg)

let flow_id_arg =
  Arg.(value & pos 1 (some string) None
       & info [] ~docv:"ID"
           ~doc:
             "A message rid (all digits; resolved to its flow) or a flow id. \
              Omitted: list the retained flows.")

let flow_t =
  Term.(const flow_cmd $ file_arg $ queue_arg $ flow_id_arg $ store_arg
        $ advance_arg $ log_arg)

let expr_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"EXPR" ~doc:"QML/XQuery expression")

let context_arg =
  Arg.(value & opt (some file) None
       & info [ "context" ] ~docv:"FILE"
           ~doc:"XML document used as the context item (default: stdin)")

let query_t = Term.(const query_cmd $ expr_arg $ context_arg)

let seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"First schedule seed; iteration $(i,i) uses SEED+i")

let iters_arg =
  Arg.(value & opt int 100
       & info [ "iters" ] ~docv:"N" ~doc:"Schedules to generate and run")

let events_arg =
  Arg.(value & opt int 40
       & info [ "events" ] ~docv:"K" ~doc:"Events per generated schedule")

let replay_arg =
  Arg.(value & opt (some file) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:
             "Replay a saved schedule artifact instead of sweeping; exits 1 \
              if it still violates an invariant")

let shrink_arg =
  Arg.(value & flag
       & info [ "shrink" ]
           ~doc:"With --replay: shrink the schedule before running it")

let blind_tear_arg =
  Arg.(value & flag
       & info [ "blind-tear" ]
           ~doc:
             "Apply crash tears without capping them at the unsynced WAL \
              tail (self-test mode: manufactures durability violations)")

let out_arg =
  Arg.(value & opt string "sim-counterexample.txt"
       & info [ "out" ] ~docv:"FILE"
           ~doc:"Where a sweep writes the shrunk counterexample")

let footprint_arg =
  Arg.(value & flag
       & info [ "footprint" ]
           ~doc:
             "Run the episodes with conflict-footprint-driven dispatch \
              (footprint_dispatch): messages claim only the resources of \
              the rules they can trigger; all invariants must still hold")

let sim_t =
  Term.(const sim_cmd $ seed_arg $ iters_arg $ events_arg $ replay_arg
        $ shrink_arg $ blind_tear_arg $ footprint_arg $ out_arg)

let cmds =
  [
    Cmd.v (Cmd.info "check" ~doc:"Parse and analyze a Demaq program") check_t;
    Cmd.v (Cmd.info "explain" ~doc:"Print the compiled execution plans") explain_t;
    Cmd.v (Cmd.info "run" ~doc:"Deploy a program and process stdin messages") run_t;
    Cmd.v
      (Cmd.info "trace"
         ~doc:
           "Deploy a program, process stdin messages with lifecycle tracing \
            on, and dump the retained spans as JSONL")
      trace_t;
    Cmd.v
      (Cmd.info "flow"
         ~doc:
           "Deploy a program, process stdin messages, and render one causal \
            cascade (by rid or flow id) as an ASCII tree with per-hop \
            queue-wait and phase timings; with --store, flows recovered \
            from a previous (possibly crashed) run are included")
      flow_t;
    Cmd.v
      (Cmd.info "query" ~doc:"Evaluate a QML expression against an XML document")
      query_t;
    Cmd.v
      (Cmd.info "repl" ~doc:"Deploy a program and drive it interactively")
      Term.(const repl_cmd $ file_arg $ log_arg);
    Cmd.v
      (Cmd.info "loadgen"
         ~doc:
           "Drive a running node's HTTP ingress at an open-loop arrival \
            rate and report end-to-end latency percentiles (p50/p99/p999) \
            against latency SLOs")
      loadgen_t;
    Cmd.v
      (Cmd.info "sim"
         ~doc:
           "Run seeded chaos schedules against the engine in virtual time, \
            checking the exactly-once/order/durability invariants; on \
            failure, shrink to a minimal replayable counterexample")
      sim_t;
  ]

let () =
  let info =
    Cmd.info "demaqd" ~version:"1.0.0"
      ~doc:"Declarative XML message processing (Demaq, CIDR 2007)"
  in
  exit (Cmd.eval' (Cmd.group info cmds))

#!/usr/bin/env python3
"""Bench regression gate: diff a --json bench run against a committed baseline.

Usage: python3 bench/compare.py CURRENT.json BASELINE.json [--tolerance 0.25]

Raw msg_per_s is not comparable across machines (the committed baseline
comes from a developer box, CI runs on whatever runner it gets, and
--quick runs fewer messages), so the gate works on *relative* throughput:
within each bench, every result is normalized by the bench's first entry
(mode=off / batch=1 / workers=1 — the reference configuration), and the
normalized value must match the baseline's within the tolerance band.
This catches exactly the regressions the benches exist to watch — e.g.
metrics or tracing overhead creeping up relative to the off mode — while
staying immune to runner speed.

Entries are matched by (bench, variant) where the variant is the entry's
distinguishing key: "mode", "batch", "workers" or "rate". Benches present
in only one file are reported and skipped. Raw throughput ratios are
printed for information but never gated.

Scaling-sensitive benches (variant key "workers") are only meaningful
when both runs had the same number of cores: relative speedup at
workers=4 on a 1-core runner is noise, not signal. When the two files'
meta.cores differ, those benches are skipped with a warning instead of
producing false failures (or false passes).

Exit status: 0 when every matched entry is within tolerance (or nothing
matched), 1 on a violation, 2 on malformed input.
"""

import argparse
import json
import sys

VARIANT_KEYS = ("mode", "batch", "workers", "rate")

# variant keys whose relative numbers only transfer between runs made on
# the same number of cores
SCALING_SENSITIVE = {"workers"}


def entry_key(entry):
    for k in VARIANT_KEYS:
        if k in entry:
            return f"{k}={entry[k]}"
    return "default"


def variant_kind(entry):
    for k in VARIANT_KEYS:
        if k in entry:
            return k
    return "default"


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"compare.py: cannot read {path}: {e}")
    benches = {}
    for bench in doc.get("benches", []):
        name = bench.get("bench")
        results = [r for r in bench.get("results", []) if "msg_per_s" in r]
        if name and results:
            benches[name] = {entry_key(r): r["msg_per_s"] for r in results}
            benches[name]["__ref__"] = entry_key(results[0])
            benches[name]["__kind__"] = variant_kind(results[0])
    cores = doc.get("meta", {}).get("cores")
    return benches, cores


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative-throughput deviation (default 0.25)")
    args = ap.parse_args()

    cur, cur_cores = load(args.current)
    base, base_cores = load(args.baseline)
    cores_differ = (cur_cores is not None and base_cores is not None
                    and cur_cores != base_cores)

    common = sorted(set(cur) & set(base))
    for name in sorted(set(cur) ^ set(base)):
        where = args.current if name in cur else args.baseline
        print(f"  note: {name} only in {where}, skipped")
    if not common:
        print("compare.py: no common benches; nothing to gate")
        return 0

    failures = 0
    checked = 0
    for name in common:
        c, b = cur[name], base[name]
        if cores_differ and b.get("__kind__") in SCALING_SENSITIVE:
            print(f"  warn: {name} is scaling-sensitive (variant "
                  f"'{b['__kind__']}') and core counts differ "
                  f"(current {cur_cores}, baseline {base_cores}); skipped")
            continue
        ref = b["__ref__"]
        if ref not in c or c[ref] <= 0 or b[ref] <= 0:
            print(f"  note: {name} reference entry {ref} missing, skipped")
            continue
        print(f"{name} (normalized by {ref}):")
        for key in sorted(k for k in b if not k.startswith("__")):
            if key == ref or key not in c:
                continue
            rel_c = c[key] / c[ref]
            rel_b = b[key] / b[ref]
            dev = rel_c / rel_b - 1.0
            checked += 1
            ok = abs(dev) <= args.tolerance
            status = "ok" if ok else "FAIL"
            if not ok:
                failures += 1
            print(f"  {status:4s} {key:14s} relative {rel_c:6.3f} "
                  f"(baseline {rel_b:6.3f}, {dev:+.1%}, "
                  f"raw {c[key]:.0f} vs {b[key]:.0f} msg/s)")

    if failures:
        print(f"compare.py: {failures}/{checked} entries outside "
              f"±{args.tolerance:.0%} of {args.baseline}")
        return 1
    print(f"compare.py: {checked} entries within ±{args.tolerance:.0%} "
          f"of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Bench regression gate: diff a --json bench run against a committed baseline.

Usage: python3 bench/compare.py CURRENT.json BASELINE.json [--tolerance 0.25]

Raw msg_per_s is not comparable across machines (the committed baseline
comes from a developer box, CI runs on whatever runner it gets, and
--quick runs fewer messages), so the gate works on *relative* throughput:
within each bench, every result is normalized by the bench's first entry
(mode=off / batch=1 / workers=1 — the reference configuration), and the
normalized value must match the baseline's within the tolerance band.
This catches exactly the regressions the benches exist to watch — e.g.
metrics or tracing overhead creeping up relative to the off mode — while
staying immune to runner speed.

Counter-style metrics (admission-gate shed counts, GC collections, 429
rejections) are gated on zero-ness rather than magnitude: the absolute
counts depend on machine speed, but "the gate never sheds in this
configuration" or "the GC reclaims something here" are machine-independent
claims. A counter key present in both files must be zero in the current
run iff it is zero in the baseline.

Entries are matched by (bench, variant) where the variant is the entry's
distinguishing key: "mode", "batch", "workers" or "rate". Benches present
in only one file are reported and skipped. Raw throughput ratios are
printed for information but never gated.

Scaling-sensitive benches (variant key "workers") are only meaningful
when both runs had the same number of cores: relative speedup at
workers=4 on a 1-core runner is noise, not signal. When the two files'
meta.cores differ, those benches are skipped with a warning instead of
producing false failures (or false passes).

Exit status: 0 when every matched entry is within tolerance (or nothing
matched), 1 on a violation, 2 on malformed input.
"""

import argparse
import json
import sys

VARIANT_KEYS = ("mode", "batch", "workers", "rate")

# variant keys whose relative numbers only transfer between runs made on
# the same number of cores
SCALING_SENSITIVE = {"workers"}

# counter-style result fields: gated on zero vs non-zero, never magnitude
COUNTER_KEYS = ("admitted", "shed", "shed_hard", "rejected", "gc_collected")


def entry_key(entry):
    for k in VARIANT_KEYS:
        if k in entry:
            return f"{k}={entry[k]}"
    return "default"


def variant_kind(entry):
    for k in VARIANT_KEYS:
        if k in entry:
            return k
    return "default"


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"compare.py: cannot read {path}: {e}")
    benches = {}
    for bench in doc.get("benches", []):
        name = bench.get("bench")
        results = bench.get("results", [])
        throughput = {entry_key(r): r["msg_per_s"]
                      for r in results if "msg_per_s" in r}
        counters = {}
        for r in results:
            cs = {k: r[k] for k in COUNTER_KEYS if k in r}
            if cs:
                counters[entry_key(r)] = cs
        if not name or (not throughput and not counters):
            continue
        info = {"tp": throughput, "counters": counters,
                "ref": None, "kind": "default"}
        with_tp = [r for r in results if "msg_per_s" in r]
        if with_tp:
            info["ref"] = entry_key(with_tp[0])
            info["kind"] = variant_kind(with_tp[0])
        benches[name] = info
    cores = doc.get("meta", {}).get("cores")
    return benches, cores


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative-throughput deviation (default 0.25)")
    args = ap.parse_args()

    cur, cur_cores = load(args.current)
    base, base_cores = load(args.baseline)
    cores_differ = (cur_cores is not None and base_cores is not None
                    and cur_cores != base_cores)

    common = sorted(set(cur) & set(base))
    for name in sorted(set(cur) ^ set(base)):
        where = args.current if name in cur else args.baseline
        print(f"  note: {name} only in {where}, skipped")
    if not common:
        print("compare.py: no common benches; nothing to gate")
        return 0

    failures = 0
    checked = 0
    for name in common:
        c, b = cur[name], base[name]

        # throughput: relative to the bench's reference entry
        if cores_differ and b["kind"] in SCALING_SENSITIVE:
            print(f"  warn: {name} is scaling-sensitive (variant "
                  f"'{b['kind']}') and core counts differ "
                  f"(current {cur_cores}, baseline {base_cores}); skipped")
        else:
            ref = b["ref"]
            if ref is None or ref not in c["tp"] or \
                    c["tp"].get(ref, 0) <= 0 or b["tp"].get(ref, 0) <= 0:
                if b["tp"]:
                    print(f"  note: {name} reference entry {ref} missing, "
                          f"skipped")
            else:
                print(f"{name} (normalized by {ref}):")
                for key in sorted(b["tp"]):
                    if key == ref or key not in c["tp"]:
                        continue
                    rel_c = c["tp"][key] / c["tp"][ref]
                    rel_b = b["tp"][key] / b["tp"][ref]
                    dev = rel_c / rel_b - 1.0
                    checked += 1
                    ok = abs(dev) <= args.tolerance
                    status = "ok" if ok else "FAIL"
                    if not ok:
                        failures += 1
                    print(f"  {status:4s} {key:14s} relative {rel_c:6.3f} "
                          f"(baseline {rel_b:6.3f}, {dev:+.1%}, "
                          f"raw {c['tp'][key]:.0f} vs {b['tp'][key]:.0f} "
                          f"msg/s)")

        # counters: zero-ness must agree
        counter_keys = sorted(set(b["counters"]) & set(c["counters"]))
        if counter_keys:
            print(f"{name} (counters, zero-ness gated):")
            for key in counter_keys:
                for ck in sorted(set(b["counters"][key])
                                 & set(c["counters"][key])):
                    bv = b["counters"][key][ck]
                    cv = c["counters"][key][ck]
                    checked += 1
                    ok = (bv == 0) == (cv == 0)
                    status = "ok" if ok else "FAIL"
                    if not ok:
                        failures += 1
                    print(f"  {status:4s} {key:14s} {ck}: {cv} "
                          f"(baseline {bv})")

    if failures:
        print(f"compare.py: {failures}/{checked} entries outside "
              f"±{args.tolerance:.0%} of {args.baseline}")
        return 1
    print(f"compare.py: {checked} entries within ±{args.tolerance:.0%} "
          f"of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

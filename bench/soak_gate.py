#!/usr/bin/env python3
"""Overload-soak gate: prove the node sheds under overload and recovers.

Usage:
  python3 bench/soak_gate.py UNDER.json OVER.json RECOVER.json \
      --stats-url http://127.0.0.1:PORT/stats.json \
      [--fanout 6] [--p99-bound 250] [--drain-timeout 30]

The three JSON files are `demaqd loadgen --json` artifacts from the three
phases of the rate-step soak: comfortably under the knee, at ~2x the
knee, and back under it. The gate holds the adaptive runtime to its
contract:

  1. under the knee the admission gate stays open — zero 429s, zero
     errors, zero drops;
  2. over the knee the gate sheds (429s observed) but the node never
     *fails* — zero errors, zero timeouts turning into transport faults;
  3. after the step-down shedding stops again and p99 recovers below the
     bound — saturation is a state the node leaves, not a ratchet;
  4. zero accepted-then-lost: every 202 across all three phases must be
     processed. The live node's /stats.json is polled until
     demaq_processed_total reaches fanout * total_accepted (each accepted
     order multiplies into `fanout` processed messages under the
     order-fanout program); stabilizing below that is exactly the
     "accepted then lost under pressure" bug this soak exists to catch.
     The node's own shed counter must also cover every 429 the client saw.

Exit status: 0 when every gate holds, 1 on a violation, 2 on bad input.
"""

import argparse
import json
import sys
import time
import urllib.request

FANOUT_DEFAULT = 6  # order-fanout: 1 order + 5 derived messages


def load_phase(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"soak_gate.py: cannot read {path}: {e}")
    entries = []
    for bench in doc.get("benches", []):
        entries.extend(bench.get("results", []))
    if not entries:
        sys.exit(f"soak_gate.py: no results in {path}")
    return {
        "ok": sum(e.get("ok", 0) for e in entries),
        "rejected": sum(e.get("rejected", 0) for e in entries),
        "errors": sum(e.get("errors", 0) for e in entries),
        "dropped": sum(e.get("dropped", 0) for e in entries),
        "p99_ms": max((e.get("p99_ms") or 0.0) for e in entries),
    }


def scrape(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return json.load(resp)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("under")
    ap.add_argument("over")
    ap.add_argument("recover")
    ap.add_argument("--stats-url", required=True)
    ap.add_argument("--fanout", type=int, default=FANOUT_DEFAULT)
    ap.add_argument("--p99-bound", type=float, default=250.0)
    ap.add_argument("--drain-timeout", type=float, default=30.0)
    args = ap.parse_args()

    phases = {name: load_phase(path) for name, path in
              [("under", args.under), ("over", args.over),
               ("recover", args.recover)]}
    for name, p in phases.items():
        print(f"{name:8s} ok={p['ok']} rejected={p['rejected']} "
              f"errors={p['errors']} dropped={p['dropped']} "
              f"p99={p['p99_ms']:.1f}ms")

    failures = []

    def gate(cond, msg):
        status = "ok  " if cond else "FAIL"
        print(f"  {status} {msg}")
        if not cond:
            failures.append(msg)

    u, o, r = phases["under"], phases["over"], phases["recover"]
    # 429s only while over the knee
    gate(u["rejected"] == 0, f"no shedding under the knee "
         f"(rejected={u['rejected']})")
    gate(o["rejected"] > 0, f"overload actually shed "
         f"(rejected={o['rejected']})")
    gate(r["rejected"] == 0, f"shedding stopped after step-down "
         f"(rejected={r['rejected']})")
    # overload degrades to 429, never to failure
    for name, p in phases.items():
        gate(p["errors"] == 0, f"{name}: zero errors (errors={p['errors']})")
        gate(p["dropped"] == 0, f"{name}: zero client-side drops "
             f"(dropped={p['dropped']})")
    # p99 recovers once the pressure is gone
    gate(r["p99_ms"] <= args.p99_bound,
         f"recovery p99 {r['p99_ms']:.1f}ms within {args.p99_bound:.0f}ms")

    # zero accepted-then-lost: poll the live node until every accepted
    # message (and its fanout) has been processed
    total_ok = sum(p["ok"] for p in phases.values())
    total_rejected = sum(p["rejected"] for p in phases.values())
    expected = args.fanout * total_ok
    deadline = time.monotonic() + args.drain_timeout
    processed, shed = -1, -1
    while time.monotonic() < deadline:
        try:
            stats = scrape(args.stats_url)
        except OSError as e:
            sys.exit(f"soak_gate.py: cannot scrape {args.stats_url}: {e}")
        processed = int(stats.get("demaq_processed_total", -1))
        shed = int(stats.get("demaq_gate_shed_total", -1))
        if processed >= expected:
            break
        time.sleep(0.5)
    gate(processed == expected,
         f"zero accepted-then-lost: processed {processed} == "
         f"{args.fanout} x {total_ok} accepted")
    gate(shed >= total_rejected,
         f"node shed counter covers every client 429 "
         f"({shed} >= {total_rejected})")

    if failures:
        print(f"soak_gate.py: {len(failures)} gate(s) violated")
        return 1
    print("soak_gate.py: all gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

(* The Demaq benchmark harness.

   The CIDR 2007 paper is a vision paper with no quantitative tables; its
   performance content is the set of design claims in §2-§4. Each bench
   below (B1-B10, indexed in DESIGN.md §5) regenerates the comparison one
   of those claims implies, prints a paper-style table, and registers a
   Bechamel micro-benchmark. Absolute numbers depend on this machine; the
   *shape* (who wins, how the gap scales) is the reproduction target and
   is recorded in EXPERIMENTS.md.

   Run with:  dune exec bench/main.exe            (all benches)
              dune exec bench/main.exe -- B3 B7   (a selection)
              dune exec bench/main.exe -- --quick (smaller sweeps)
*)

module Tree = Demaq.Xml.Tree
module Value = Demaq.Value
module Store = Demaq.Store.Message_store
module Wal = Demaq.Store.Wal
module Btree = Demaq.Store.Btree
module Lock = Demaq.Store.Lock_manager
module Defs = Demaq.Mq.Defs
module Qm = Demaq.Mq.Queue_manager
module Message = Demaq.Message
module Xq = Demaq.Xquery.Parser
module Net = Demaq.Network
module S = Demaq.Server
module Ctx = Demaq.Baseline.Context_engine

let quick = ref false
let scale n = if !quick then max 1 (n / 5) else n

(* Machine-readable results: benches push JSON objects here and --json
   FILE writes them out (the PR trajectory data, e.g. BENCH_PR2.json). *)
let json_entries : string list ref = ref []
let json_add entry = json_entries := !json_entries @ [ entry ]

(* Results are only comparable across PRs if we know what produced them:
   stamp every JSON file with the commit, the date, and the engine config
   knobs that shape the numbers. *)
let command_output cmd =
  try
    let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> ""

let iso_date () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let json_meta () =
  Printf.sprintf
    "{\n\
    \    \"git_commit\": \"%s\",\n\
    \    \"date\": \"%s\",\n\
    \    \"ocaml\": \"%s\",\n\
    \    \"cores\": %d,\n\
    \    \"config\": {\"workers\": %d, \"batch_size\": %d, \"group_commit\": %b, \"lock_granularity\": \"%s\"}\n\
    \  }"
    (command_output "git rev-parse --short HEAD")
    (iso_date ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    S.default_config.S.workers S.default_config.S.batch_size
    S.default_config.S.group_commit
    (match S.default_config.S.lock_granularity with
     | `Queue -> "queue"
     | `Slice -> "slice")

let write_json file =
  let oc = open_out file in
  Printf.fprintf oc
    "{\n  \"suite\": \"demaq-bench\",\n  \"quick\": %b,\n  \"meta\": %s,\n  \"benches\": [\n%s\n  ]\n}\n"
    !quick (json_meta ())
    (String.concat ",\n" (List.map (fun e -> "    " ^ e) !json_entries));
  close_out oc;
  Printf.printf "\nwrote %s\n" file

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let secs f =
  let _, t = time_it f in
  t

let headline id claim =
  Printf.printf "\n%s\n%s  %s\n%s\n" (String.make 78 '=') id claim
    (String.make 78 '=')

let table_header cols =
  let line =
    String.concat " | " (List.map (fun (name, width) -> Printf.sprintf "%*s" width name) cols)
  in
  Printf.printf "%s\n%s\n" line (String.make (String.length line) '-')

let row cells = print_endline (String.concat " | " cells)

let cell width fmt = Printf.ksprintf (fun s -> Printf.sprintf "%*s" width s) fmt

(* Bechamel registry: one Test.make per bench. *)
let bechamel_tests : Bechamel.Test.t list ref = ref []

let register_bechamel name fn =
  bechamel_tests :=
    !bechamel_tests @ [ Bechamel.Test.make ~name (Bechamel.Staged.stage fn) ]

(* ------------------------------------------------------------------ *)
(* Shared workload builders                                            *)
(* ------------------------------------------------------------------ *)

let order_payload key i =
  Printf.sprintf
    "<order><orderID>%s</orderID><seq>%d</seq><customer>c%d</customer><item>glue</item></order>"
    key i (i mod 7)

(* A queue manager with one queue, one computed property and one slicing,
   loaded with [n] messages over [keys] distinct slice keys. *)
let sliced_fixture ~n ~keys =
  let st = Store.open_store Store.default_config in
  let qm = Qm.create st in
  Qm.add_queue qm (Defs.queue "orders");
  Qm.add_property qm
    {
      Defs.pname = "orderID";
      ptype = Value.T_string;
      disposition = Defs.Fixed;
      per_queue = [ ([ "orders" ], Xq.parse "//orderID") ];
    };
  Qm.add_slicing qm { Defs.sname = "byOrder"; slice_property = "orderID" };
  let txn = Store.begin_txn st in
  for i = 1 to n do
    let key = Printf.sprintf "k%d" (i mod keys) in
    match
      Qm.enqueue qm txn ~queue:"orders"
        ~payload:(Demaq.xml (order_payload key i))
        ()
    with
    | Ok _ -> ()
    | Error e -> failwith (Qm.error_to_string e)
  done;
  Store.commit txn;
  qm

(* ------------------------------------------------------------------ *)
(* B1: materialized slice index vs scan (§4.3)                         *)
(* ------------------------------------------------------------------ *)

let b1 () =
  headline "B1 slice_access"
    "materialized slices (B-tree) vs merging the slice definition into rules (scan)";
  table_header
    [ ("messages", 9); ("keys", 6); ("index us/lookup", 16); ("scan us/lookup", 15);
      ("speedup", 8) ];
  List.iter
    (fun n ->
      let keys = max 4 (n / 20) in
      let qm = sliced_fixture ~n ~keys in
      let lookups = 200 in
      let bench use_index =
        secs (fun () ->
            for i = 1 to lookups do
              ignore
                (Qm.slice_messages qm ~use_index
                   ~slicing:"byOrder"
                   ~key:(Printf.sprintf "k%d" (i mod keys))
                   ())
            done)
      in
      let t_index = bench true and t_scan = bench false in
      row
        [
          cell 9 "%d" n; cell 6 "%d" keys;
          cell 16 "%.1f" (t_index *. 1e6 /. float lookups);
          cell 15 "%.1f" (t_scan *. 1e6 /. float lookups);
          cell 8 "%.1fx" (t_scan /. t_index);
        ])
    [ scale 200; scale 1000; scale 4000 ];
  let qm = sliced_fixture ~n:(scale 1000) ~keys:50 in
  register_bechamel "B1/slice-index-lookup" (fun () ->
      ignore (Qm.slice_messages qm ~use_index:true ~slicing:"byOrder" ~key:"k7" ()));
  register_bechamel "B1/slice-scan-lookup" (fun () ->
      ignore (Qm.slice_messages qm ~use_index:false ~slicing:"byOrder" ~key:"k7" ()))

(* ------------------------------------------------------------------ *)
(* B2: merged per-queue plans vs per-rule evaluation (§4.4.1)          *)
(* ------------------------------------------------------------------ *)

(* [rules] rules spread over 4 distinct conditions: a realistic rule set
   where several reactions share a trigger condition. The merged plan
   factors each shared condition into a single evaluation (§3.3/§4.4.1);
   per-rule evaluation re-tests it for every rule. *)
let b2_program rules =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "create queue in kind basic mode persistent\ncreate queue out kind basic mode persistent\n";
  for i = 1 to rules do
    Buffer.add_string buf
      (Printf.sprintf
         "create rule r%d for in if (//order[seq mod %d = 0][customer != 'nobody']) then do enqueue <hit n=\"%d\"/> into out\n"
         i ((i mod 4) + 1) i)
  done;
  Buffer.contents buf

let b2_run ~rules ~messages ~merged =
  let cfg = { S.default_config with S.merged_plans = merged } in
  let srv = S.deploy ~config:cfg (b2_program rules) in
  for i = 1 to messages do
    ignore (S.inject srv ~queue:"in" (Demaq.xml (order_payload "k" i)))
  done;
  secs (fun () -> ignore (S.run srv))

let b2 () =
  headline "B2 rule_merging"
    "one merged execution plan per queue vs independent per-rule evaluation";
  table_header
    [ ("rules", 6); ("messages", 9); ("per-rule msg/s", 15); ("merged msg/s", 13);
      ("speedup", 8) ];
  List.iter
    (fun rules ->
      let messages = scale 400 in
      let t_per_rule = b2_run ~rules ~messages ~merged:false in
      let t_merged = b2_run ~rules ~messages ~merged:true in
      row
        [
          cell 6 "%d" rules; cell 9 "%d" messages;
          cell 15 "%.0f" (float messages /. t_per_rule);
          cell 13 "%.0f" (float messages /. t_merged);
          cell 8 "%.2fx" (t_per_rule /. t_merged);
        ])
    [ 2; 8; 32 ];
  register_bechamel "B2/per-rule-16rules-20msgs" (fun () ->
      ignore (b2_run ~rules:16 ~messages:20 ~merged:false));
  register_bechamel "B2/merged-16rules-20msgs" (fun () ->
      ignore (b2_run ~rules:16 ~messages:20 ~merged:true))

(* ------------------------------------------------------------------ *)
(* B3: slice-granularity vs queue-granularity locking (§4.3)           *)
(* ------------------------------------------------------------------ *)

(* Simulated concurrency: [txns] transactions each want to process one
   message of the same queue; a transaction locks either the whole queue
   or just its message's slice. Execution proceeds in rounds: every
   still-pending transaction tries to acquire its lock; the ones that
   succeed complete this round. Effective parallelism = txns / rounds. *)
let b3_simulate ~txns ~keys granularity =
  let lm = Lock.create () in
  let pending = ref (List.init txns (fun i -> (i + 1, Printf.sprintf "k%d" (i mod keys)))) in
  let rounds = ref 0 in
  let conflicts = ref 0 in
  while !pending <> [] do
    incr rounds;
    let winners =
      List.filter
        (fun (txn, key) ->
          let resource =
            match granularity with
            | `Queue -> Lock.Queue_lock "orders"
            | `Slice -> Lock.Slice_lock ("byOrder", key)
          in
          match Lock.acquire lm ~txn resource Lock.Exclusive with
          | Lock.Granted -> true
          | Lock.Conflict _ ->
            incr conflicts;
            false)
        !pending
    in
    (* the granted transactions commit and release at end of round *)
    List.iter (fun (txn, _) -> Lock.release_all lm ~txn) winners;
    pending := List.filter (fun t -> not (List.mem t winners)) !pending
  done;
  (!rounds, !conflicts)

let b3 () =
  headline "B3 slice_locking"
    "slice-granularity locks admit more concurrency than queue-level locks";
  table_header
    [ ("txns", 6); ("slice keys", 10); ("queue-lock rounds", 17);
      ("slice-lock rounds", 17); ("parallelism", 11) ];
  List.iter
    (fun keys ->
      let txns = scale 200 in
      let q_rounds, _ = b3_simulate ~txns ~keys `Queue in
      let s_rounds, _ = b3_simulate ~txns ~keys `Slice in
      row
        [
          cell 6 "%d" txns; cell 10 "%d" keys;
          cell 17 "%d" q_rounds; cell 17 "%d" s_rounds;
          cell 11 "%.1fx" (float q_rounds /. float s_rounds);
        ])
    [ 2; 10; 50 ];
  register_bechamel "B3/queue-locks-100txn" (fun () ->
      ignore (b3_simulate ~txns:100 ~keys:10 `Queue));
  register_bechamel "B3/slice-locks-100txn" (fun () ->
      ignore (b3_simulate ~txns:100 ~keys:10 `Slice))

(* ------------------------------------------------------------------ *)
(* B4: state as messages vs per-instance contexts with dehydration     *)
(* (§2.1)                                                              *)
(* ------------------------------------------------------------------ *)

let b4_demaq ~instances ~steps =
  let program = {|
    create queue proc kind basic mode persistent
    create queue out kind basic mode persistent
    create property pid as xs:string fixed queue proc value //pid
    create slicing byInstance on pid
    create rule track for byInstance
      if (qs:message()//step = "last") then
        do enqueue <done>
            <pid>{string(qs:slicekey())}</pid>
            <steps>{count(qs:slice())}</steps>
          </done> into out
  |} in
  let srv = S.deploy program in
  secs (fun () ->
      for s = 1 to steps do
        for i = 1 to instances do
          let step = if s = steps then "last" else string_of_int s in
          ignore
            (S.inject srv ~queue:"proc"
               (Demaq.xml
                  (Printf.sprintf "<m><pid>p%d</pid><step>%s</step><data>%s</data></m>" i
                     step (String.make 40 'x'))))
        done;
        ignore (S.run srv)
      done)

let b4_context ~instances ~steps ~dehydrate =
  let correlate msg = Tree.tree_string_value (Option.get (Tree.find_child msg "pid")) in
  let step ~context ~msg =
    (* append the message into the monolithic context, BPEL-variable style *)
    let children =
      match context with Tree.Element e -> e.Tree.children | _ -> []
    in
    let context' =
      Tree.Element
        { name = Demaq.Xml.Name.make "context"; attrs = []; children = children @ [ msg ] }
    in
    let outputs =
      match Tree.find_child msg "step" with
      | Some s when Tree.tree_string_value s = "last" ->
        [ Tree.elem "done" [ Tree.text (string_of_int (List.length children + 1)) ] ]
      | _ -> []
    in
    (context', outputs)
  in
  let engine = Ctx.create ~dehydrate ~correlate ~step () in
  secs (fun () ->
      for s = 1 to steps do
        for i = 1 to instances do
          let stepname = if s = steps then "last" else string_of_int s in
          ignore
            (Ctx.deliver engine
               (Demaq.xml
                  (Printf.sprintf "<m><pid>p%d</pid><step>%s</step><data>%s</data></m>" i
                     stepname (String.make 40 'x'))))
        done
      done)

let b4 () =
  headline "B4 state_as_messages"
    "queues-as-state vs BPEL-style instance contexts with a dehydration store";
  table_header
    [ ("instances", 9); ("steps", 6); ("demaq ms", 9); ("contexts ms", 11);
      ("dehydrated ms", 13) ];
  List.iter
    (fun steps ->
      let instances = scale 50 in
      let t_demaq = b4_demaq ~instances ~steps in
      let t_live = b4_context ~instances ~steps ~dehydrate:false in
      let t_dehyd = b4_context ~instances ~steps ~dehydrate:true in
      row
        [
          cell 9 "%d" instances; cell 6 "%d" steps;
          cell 9 "%.1f" (t_demaq *. 1e3);
          cell 11 "%.1f" (t_live *. 1e3);
          cell 13 "%.1f" (t_dehyd *. 1e3);
        ])
    [ 2; 8; 24 ];
  register_bechamel "B4/demaq-10x4" (fun () -> ignore (b4_demaq ~instances:10 ~steps:4));
  register_bechamel "B4/dehydration-10x4" (fun () ->
      ignore (b4_context ~instances:10 ~steps:4 ~dehydrate:true))

(* ------------------------------------------------------------------ *)
(* B5: decoupled retention GC vs eager per-message cleanup (§2.3.3)    *)
(* ------------------------------------------------------------------ *)

let b5_program = {|
  create queue in kind basic mode persistent
  create queue out kind basic mode persistent
  create rule fwd for in if (//m) then do enqueue <ack/> into out
|}

let b5_run ~messages ~gc_every =
  let cfg = { S.default_config with S.gc_every } in
  let srv = S.deploy ~config:cfg b5_program in
  for i = 1 to messages do
    ignore (S.inject srv ~queue:"in" (Demaq.xml (Printf.sprintf "<m n='%d'/>" i)))
  done;
  let t = secs (fun () -> ignore (S.run srv)) in
  let t_gc = secs (fun () -> ignore (S.gc srv)) in
  (t, t_gc)

let b5 () =
  headline "B5 retention_gc"
    "deferred, decoupled garbage collection vs eager per-message cleanup";
  table_header
    [ ("messages", 9); ("eager total ms", 14); ("deferred proc ms", 16);
      ("deferred gc ms", 14); ("speedup", 8) ];
  List.iter
    (fun messages ->
      let t_eager, _ = b5_run ~messages ~gc_every:1 in
      let t_def, t_def_gc = b5_run ~messages ~gc_every:0 in
      row
        [
          cell 9 "%d" messages;
          cell 14 "%.1f" (t_eager *. 1e3);
          cell 16 "%.1f" (t_def *. 1e3);
          cell 14 "%.1f" (t_def_gc *. 1e3);
          cell 8 "%.1fx" (t_eager /. (t_def +. t_def_gc));
        ])
    [ scale 200; scale 800; scale 2000 ];
  register_bechamel "B5/eager-gc-100msgs" (fun () ->
      ignore (b5_run ~messages:100 ~gc_every:1));
  register_bechamel "B5/deferred-gc-100msgs" (fun () ->
      ignore (b5_run ~messages:100 ~gc_every:0))

(* ------------------------------------------------------------------ *)
(* B6: append-only logging without deletion records (§4.1)             *)
(* ------------------------------------------------------------------ *)

let b6_dir tag =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bench-b6-%s-%d" tag (Unix.getpid ())) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let b6_run ~messages ~log_deletions =
  let dir = b6_dir (if log_deletions then "logged" else "unlogged") in
  let cfg = Store.durable_config ~sync:Wal.Sync_never ~log_deletions dir in
  let st = Store.open_store cfg in
  (* insert, process and retire every message: retirement is what either
     hits the log (mode A) or is left to be re-derived (mode B) *)
  let txn = Store.begin_txn st in
  let rids =
    List.init messages (fun i ->
        Store.insert txn ~queue:"q"
          ~payload:(Printf.sprintf "<m n='%d'>%s</m>" i (String.make 64 'y'))
          ~extra:"" ~enqueued_at:i ~durable:true)
  in
  Store.commit txn;
  List.iter
    (fun rid ->
      let txn = Store.begin_txn st in
      Store.mark_processed txn rid;
      Store.delete txn rid;
      Store.commit txn)
    rids;
  let stats = Store.stats st in
  let wal_bytes = stats.Store.wal_bytes in
  let wal_syncs = stats.Store.wal_syncs in
  Store.close st;
  let t_recover = secs (fun () -> Store.close (Store.open_store cfg)) in
  (wal_bytes, wal_syncs, t_recover)

let b6 () =
  headline "B6 recovery"
    "not logging deletions (retention is re-derived) shrinks the log (§4.1)";
  table_header
    [ ("messages", 9); ("log KB (deletes logged)", 23);
      ("log KB (re-derived)", 19); ("delta KB", 9); ("syncs A/B", 9);
      ("recover ms A", 12); ("recover ms B", 12) ];
  List.iter
    (fun messages ->
      let bytes_a, syncs_a, rec_a = b6_run ~messages ~log_deletions:true in
      let bytes_b, syncs_b, rec_b = b6_run ~messages ~log_deletions:false in
      row
        [
          cell 9 "%d" messages;
          cell 23 "%.1f" (float bytes_a /. 1024.);
          cell 19 "%.1f" (float bytes_b /. 1024.);
          cell 9 "%.1f" (float (bytes_a - bytes_b) /. 1024.);
          cell 9 "%d/%d" syncs_a syncs_b;
          cell 12 "%.2f" (rec_a *. 1e3);
          cell 12 "%.2f" (rec_b *. 1e3);
        ];
      json_add
        (Printf.sprintf
           "{\"bench\": \"B6\", \"messages\": %d, \"wal_bytes_logged\": %d, \"wal_bytes_rederived\": %d, \"wal_syncs_logged\": %d, \"wal_syncs_rederived\": %d}"
           messages bytes_a bytes_b syncs_a syncs_b))
    [ scale 500; scale 2000 ];
  register_bechamel "B6/retire-with-delete-log" (fun () ->
      ignore (b6_run ~messages:50 ~log_deletions:true));
  register_bechamel "B6/retire-rederived" (fun () ->
      ignore (b6_run ~messages:50 ~log_deletions:false))

(* ------------------------------------------------------------------ *)
(* B7: priority scheduling vs FIFO (§4.4.2)                            *)
(* ------------------------------------------------------------------ *)

let b7_program priority = Printf.sprintf {|
  create queue bulk kind basic mode persistent priority 0
  create queue urgent kind basic mode persistent priority %d
  create queue out kind basic mode persistent
  create rule rb for bulk if (//m) then do enqueue <b/> into out
  create rule ru for urgent if (//m) then do enqueue <u/> into out
|} priority

let b7_delay ~backlog ~priority =
  let srv = S.deploy (b7_program priority) in
  for i = 1 to backlog do
    ignore (S.inject srv ~queue:"bulk" (Demaq.xml (Printf.sprintf "<m n='%d'/>" i)))
  done;
  ignore (S.inject srv ~queue:"urgent" (Demaq.xml "<m/>"));
  (* count messages processed before the urgent one *)
  let position = ref 0 in
  let found = ref false in
  while not !found do
    match S.step srv with
    | S.Processed m ->
      if m.Message.queue = "urgent" then found := true else incr position
    | S.Idle -> found := true
  done;
  !position

let b7 () =
  headline "B7 scheduler_priority"
    "priority scheduling lets urgent messages overtake an older backlog";
  table_header
    [ ("backlog", 8); ("FIFO delay (msgs)", 17); ("priority delay (msgs)", 21) ];
  List.iter
    (fun backlog ->
      let fifo = b7_delay ~backlog ~priority:0 in
      let prio = b7_delay ~backlog ~priority:10 in
      row [ cell 8 "%d" backlog; cell 17 "%d" fifo; cell 21 "%d" prio ])
    [ scale 100; scale 1000; scale 4000 ];
  register_bechamel "B7/priority-urgent-under-backlog" (fun () ->
      ignore (b7_delay ~backlog:100 ~priority:10))

(* ------------------------------------------------------------------ *)
(* B8: property precomputation at enqueue vs recomputing on access     *)
(* (§2.2 / §4.4.1 fixed-property inlining)                             *)
(* ------------------------------------------------------------------ *)

let b8_program = {|
  create queue in kind basic mode persistent
  create queue out kind basic mode persistent
  create property oid as xs:string fixed queue in value //deep//orderID
  create rule classify for in
    if (qs:property("oid") and
        qs:property("oid") != "none" and
        string-length(qs:property("oid")) > 2) then
      do enqueue <routed>{qs:property("oid")}</routed> into out
|}

let b8_payload depth i =
  let rec nest d inner = if d = 0 then inner else "<deep>" ^ nest (d - 1) inner ^ "</deep>" in
  Printf.sprintf "<m>%s<pad>%s</pad></m>"
    (nest depth (Printf.sprintf "<orderID>ord-%d</orderID>" i))
    (String.make 200 'z')

let b8_run ~messages ~depth ~optimize =
  let cfg = { S.default_config with S.optimize } in
  let srv = S.deploy ~config:cfg b8_program in
  for i = 1 to messages do
    ignore (S.inject srv ~queue:"in" (Demaq.xml (b8_payload depth i)))
  done;
  secs (fun () -> ignore (S.run srv))

let b8 () =
  headline "B8 fixed_property_inlining"
    "stored property lookup vs inlining the value expression (recompute per access)";
  table_header
    [ ("messages", 9); ("nesting", 8); ("lookup ms", 10); ("inlined ms", 11);
      ("inline cost", 11) ];
  List.iter
    (fun depth ->
      let messages = scale 300 in
      let t_lookup = b8_run ~messages ~depth ~optimize:false in
      let t_inline = b8_run ~messages ~depth ~optimize:true in
      row
        [
          cell 9 "%d" messages; cell 8 "%d" depth;
          cell 10 "%.1f" (t_lookup *. 1e3);
          cell 11 "%.1f" (t_inline *. 1e3);
          cell 11 "%.2fx" (t_inline /. t_lookup);
        ])
    [ 1; 8; 24 ];
  register_bechamel "B8/stored-property-lookup" (fun () ->
      ignore (b8_run ~messages:30 ~depth:8 ~optimize:false));
  register_bechamel "B8/inlined-property-recompute" (fun () ->
      ignore (b8_run ~messages:30 ~depth:8 ~optimize:true))

(* ------------------------------------------------------------------ *)
(* B9: end-to-end procurement throughput (§1/§4 viability)             *)
(* ------------------------------------------------------------------ *)

let b9_program = {|
create queue crm kind basic mode persistent
create queue finance kind basic mode persistent
create queue legal kind basic mode persistent
create queue supplier kind outgoingGateway mode persistent
create queue supplierIn kind incomingGateway mode persistent
create queue customer kind outgoingGateway mode persistent
create property requestID as xs:string fixed
  queue crm, customer value //requestID
  queue supplierIn value //requestID
create slicing requestMsgs on requestID
create rule forkChecks for crm
  if (//offerRequest) then
    let $rid := string(//offerRequest/requestID)
    return (
      do enqueue <creditCheck><requestID>{$rid}</requestID></creditCheck> into finance,
      do enqueue <restrictionCheck><requestID>{$rid}</requestID></restrictionCheck> into legal,
      do enqueue <capacityRequest><requestID>{$rid}</requestID></capacityRequest> into supplier
    )
create rule credit for finance
  if (//creditCheck) then
    do enqueue <customerInfoResult><requestID>{string(//requestID)}</requestID><accept/></customerInfoResult> into crm
create rule legalCheck for legal
  if (//restrictionCheck) then
    do enqueue <restrictionsResult><requestID>{string(//requestID)}</requestID></restrictionsResult> into crm
create rule capacity for supplierIn
  if (//capacityResult) then
    do enqueue <capacityResult><requestID>{string(//requestID)}</requestID><accept/></capacityResult> into crm
create rule joinOrder for requestMsgs
  if (qs:slice()[/customerInfoResult] and qs:slice()[/restrictionsResult] and
      qs:slice()[/capacityResult] and not(qs:slice()[/offer])) then
    do enqueue <offer><requestID>{string(qs:slicekey())}</requestID></offer> into customer
create rule cleanup for requestMsgs
  if (qs:slice()[/offer]) then do reset
|}

let b9_world () =
  let net = Net.create () in
  Net.register net ~name:"supplier" ~handler:(fun ~sender:_ body ->
      match Tree.find_child body "requestID" with
      | Some rid -> [ Tree.elem "capacityResult" [ rid ] ]
      | None -> []);
  Net.register net ~name:"customer" ~handler:(fun ~sender:_ _ -> []);
  let srv = S.deploy ~network:net b9_program in
  S.bind_gateway srv ~queue:"supplier" ~endpoint:"supplier" ~replies_to:"supplierIn" ();
  S.bind_gateway srv ~queue:"customer" ~endpoint:"customer" ();
  srv

let b9_run requests =
  let srv = b9_world () in
  let t =
    secs (fun () ->
        for i = 1 to requests do
          ignore
            (S.inject srv ~queue:"crm"
               (Demaq.xml
                  (Printf.sprintf
                     "<offerRequest><requestID>r%d</requestID><customerID>c%d</customerID></offerRequest>"
                     i (i mod 20))));
          ignore (S.run srv)
        done;
        ignore (S.gc srv))
  in
  let st = S.stats srv in
  (t, st.S.processed)

let b9 () =
  headline "B9 throughput_e2e"
    "full procurement pipeline (fork, gateways, slicing join, reset, GC)";
  table_header
    [ ("requests", 9); ("messages", 9); ("total s", 8); ("requests/s", 11);
      ("messages/s", 11) ];
  List.iter
    (fun requests ->
      let t, processed = b9_run requests in
      row
        [
          cell 9 "%d" requests; cell 9 "%d" processed;
          cell 8 "%.2f" t;
          cell 11 "%.0f" (float requests /. t);
          cell 11 "%.0f" (float processed /. t);
        ])
    [ scale 25; scale 100; scale 400 ];
  register_bechamel "B9/procurement-request" (fun () -> ignore (b9_run 3))

(* ------------------------------------------------------------------ *)
(* B10: transient vs persistent queues (§2.1.1)                        *)
(* ------------------------------------------------------------------ *)

let b10_dir tag =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bench-b10-%s-%d" tag (Unix.getpid ())) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let b10_run ~messages mode =
  let st, durable =
    match mode with
    | `Transient -> (Store.open_store Store.default_config, false)
    | `Nosync ->
      (Store.open_store (Store.durable_config ~sync:Wal.Sync_never (b10_dir "nosync")), true)
    | `Fsync ->
      (Store.open_store (Store.durable_config ~sync:Wal.Sync_always (b10_dir "fsync")), true)
  in
  let payload = "<m>" ^ String.make 128 'p' ^ "</m>" in
  let t =
    secs (fun () ->
        for i = 1 to messages do
          let txn = Store.begin_txn st in
          ignore (Store.insert txn ~queue:"q" ~payload ~extra:"" ~enqueued_at:i ~durable);
          Store.commit txn
        done)
  in
  Store.close st;
  t

let b10 () =
  headline "B10 transient_vs_persistent"
    "transient queues trade durability for enqueue speed (§2.1.1)";
  table_header
    [ ("messages", 9); ("transient msg/s", 15); ("wal msg/s", 12);
      ("wal+fsync msg/s", 15) ];
  List.iter
    (fun messages ->
      let fsync_messages = min messages 300 in
      let t_tr = b10_run ~messages `Transient in
      let t_ns = b10_run ~messages `Nosync in
      let t_fs = b10_run ~messages:fsync_messages `Fsync in
      row
        [
          cell 9 "%d" messages;
          cell 15 "%.0f" (float messages /. t_tr);
          cell 12 "%.0f" (float messages /. t_ns);
          cell 15 "%.0f" (float fsync_messages /. t_fs);
        ])
    [ scale 2000; scale 10000 ];
  register_bechamel "B10/transient-enqueue" (fun () ->
      ignore (b10_run ~messages:50 `Transient));
  register_bechamel "B10/persistent-enqueue" (fun () ->
      ignore (b10_run ~messages:50 `Nosync))

(* ------------------------------------------------------------------ *)
(* B11: group commit — fsync amortized over a batch (§4.1; Gray,       *)
(* "Queues Are Databases")                                             *)
(* ------------------------------------------------------------------ *)

let b11_dir tag =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bench-b11-%s-%d" tag (Unix.getpid ())) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

(* One durable single-insert transaction per message — the §3.1 shape —
   with the WAL either syncing every commit or amortizing the fsync over
   [batch] commits via the auto-barrier, plus a final hardening barrier. *)
let b11_store_run ~messages ~batch =
  let sync =
    if batch <= 1 then Wal.Sync_always
    else Wal.Sync_batch { max_records = batch; max_bytes = 0 }
  in
  let st =
    Store.open_store (Store.durable_config ~sync (b11_dir (string_of_int batch)))
  in
  let payload = "<m>" ^ String.make 128 'p' ^ "</m>" in
  let t =
    secs (fun () ->
        for i = 1 to messages do
          let txn = Store.begin_txn st in
          ignore (Store.insert txn ~queue:"q" ~payload ~extra:"" ~enqueued_at:i ~durable:true);
          Store.commit txn
        done;
        (* harden the tail: the run is not durable until the last barrier *)
        ignore (Store.barrier st))
  in
  let syncs = (Store.stats st).Store.wal_syncs in
  Store.close st;
  (t, syncs)

(* End-to-end: the server's batched run loop over a durable store, one
   durability barrier per batch, transmissions deferred past it. *)
let b11_engine_run ~messages ~batch =
  let program = {|
    create queue in kind basic mode persistent
    create queue out kind basic mode persistent
    create rule fwd for in if (//m) then do enqueue <ack/> into out
  |} in
  let group = batch > 1 in
  let sync =
    if group then Wal.Sync_batch { max_records = batch; max_bytes = 0 }
    else Wal.Sync_always
  in
  let store = Store.open_store (Store.durable_config ~sync (b11_dir (Printf.sprintf "e2e-%d" batch))) in
  let cfg = { S.default_config with S.batch_size = batch; group_commit = group } in
  let srv = S.deploy ~config:cfg ~store program in
  for i = 1 to messages do
    ignore (S.inject srv ~queue:"in" (Demaq.xml (Printf.sprintf "<m n='%d'/>" i)))
  done;
  let t = secs (fun () -> ignore (S.run srv)) in
  let st = S.stats srv in
  Store.close store;
  (t, st.S.syncs_per_message, st.S.batch_fill)

let b11 () =
  headline "B11 group_commit"
    "group commit: one fsync per batch of commits instead of one per message";
  table_header
    [ ("batch", 6); ("messages", 9); ("msg/s", 10); ("fsyncs", 7);
      ("syncs/msg", 10); ("speedup", 8) ];
  let messages = scale 1000 in
  let t_base = ref 0. in
  let results =
    List.map
      (fun batch ->
        let t, syncs = b11_store_run ~messages ~batch in
        if batch = 1 then t_base := t;
        let speedup = !t_base /. t in
        row
          [
            cell 6 "%d" batch; cell 9 "%d" messages;
            cell 10 "%.0f" (float messages /. t);
            cell 7 "%d" syncs;
            cell 10 "%.3f" (float syncs /. float messages);
            cell 8 "%.1fx" speedup;
          ];
        Printf.sprintf
          "{\"batch\": %d, \"messages\": %d, \"msg_per_s\": %.0f, \"wal_syncs\": %d, \"speedup\": %.2f}"
          batch messages (float messages /. t) syncs speedup)
      [ 1; 8; 32; 128; 256 ]
  in
  json_add
    (Printf.sprintf "{\"bench\": \"B11\", \"mode\": \"store\", \"results\": [%s]}"
       (String.concat ", " results));
  Printf.printf "\nend-to-end (batched run loop, barrier before transmissions):\n";
  table_header
    [ ("batch", 6); ("messages", 9); ("msg/s", 10); ("syncs/msg", 10);
      ("batch fill", 10) ];
  let e2e_messages = scale 500 in
  let e2e =
    List.map
      (fun batch ->
        let t, spm, fill = b11_engine_run ~messages:e2e_messages ~batch in
        row
          [
            cell 6 "%d" batch; cell 9 "%d" e2e_messages;
            cell 10 "%.0f" (float e2e_messages /. t);
            cell 10 "%.3f" spm;
            cell 10 "%.1f" fill;
          ];
        Printf.sprintf
          "{\"batch\": %d, \"messages\": %d, \"msg_per_s\": %.0f, \"syncs_per_message\": %.3f, \"batch_fill\": %.1f}"
          batch e2e_messages (float e2e_messages /. t) spm fill)
      [ 1; 32; 128 ]
  in
  json_add
    (Printf.sprintf "{\"bench\": \"B11\", \"mode\": \"engine\", \"results\": [%s]}"
       (String.concat ", " e2e));
  register_bechamel "B11/sync-always-20msgs" (fun () ->
      ignore (b11_store_run ~messages:20 ~batch:1));
  register_bechamel "B11/group-commit-20msgs" (fun () ->
      ignore (b11_store_run ~messages:20 ~batch:32))

(* ------------------------------------------------------------------ *)
(* B12: worker-pool scaling (PR 3; Gray's server pool over one queue   *)
(* database)                                                           *)
(* ------------------------------------------------------------------ *)

let b12_dir tag =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bench-b12-%s-%d" tag (Unix.getpid ())) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

(* [queues] independent input queues, one CPU-heavy rule each. Distinct
   queues means distinct conflict resources, so the dispatcher can hand
   the backlog to distinct workers; [sum(1 to N)] forces real evaluator
   work per message (the workload the pool is supposed to parallelize —
   WAL appends stay serialized behind the single-writer mutex). *)
let b12_program queues =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "create queue out kind basic mode persistent\n";
  for i = 1 to queues do
    Buffer.add_string buf
      (Printf.sprintf "create queue in%d kind basic mode persistent\n" i);
    Buffer.add_string buf
      (Printf.sprintf
         "create rule crunch%d for in%d if (sum(1 to 20000) > string-length(string(//n))) then do enqueue <done q=\"%d\"/> into out\n"
         i i i)
  done;
  Buffer.contents buf

let b12_run ~messages ~queues ~workers =
  let dir = b12_dir (Printf.sprintf "w%d" workers) in
  let store =
    Store.open_store
      (Store.durable_config
         ~sync:(Wal.Sync_batch { max_records = 1000; max_bytes = 0 })
         dir)
  in
  let cfg =
    { S.default_config with S.batch_size = 32; group_commit = true; workers }
  in
  let srv = S.deploy ~config:cfg ~store (b12_program queues) in
  for i = 1 to messages do
    ignore
      (S.inject srv
         ~queue:(Printf.sprintf "in%d" ((i mod queues) + 1))
         (Demaq.xml (Printf.sprintf "<m><n>%d</n></m>" i)))
  done;
  let t = secs (fun () -> ignore (S.run srv)) in
  let produced = List.length (S.queue_contents srv "out") in
  Store.close store;
  if produced <> messages then
    failwith
      (Printf.sprintf "B12: %d messages in, %d outputs out" messages produced);
  t

let b12 () =
  headline "B12 worker_scaling"
    "worker-pool scaling: conflict-free queues drained by 1..8 domains";
  Printf.printf "(%d hardware cores available to this process)\n"
    (Domain.recommended_domain_count ());
  table_header
    [ ("workers", 8); ("queues", 7); ("messages", 9); ("msg/s", 10);
      ("speedup", 8) ];
  let messages = scale 400 and queues = 8 in
  let t_base = ref 0. in
  let results =
    List.map
      (fun workers ->
        let t = b12_run ~messages ~queues ~workers in
        if workers = 1 then t_base := t;
        let speedup = !t_base /. t in
        row
          [
            cell 8 "%d" workers; cell 7 "%d" queues; cell 9 "%d" messages;
            cell 10 "%.0f" (float messages /. t);
            cell 8 "%.2fx" speedup;
          ];
        Printf.sprintf
          "{\"workers\": %d, \"messages\": %d, \"msg_per_s\": %.0f, \"speedup\": %.2f}"
          workers messages (float messages /. t) speedup)
      [ 1; 2; 4; 8 ]
  in
  json_add
    (Printf.sprintf
       "{\"bench\": \"B12\", \"queues\": %d, \"cores\": %d, \"results\": [%s]}"
       queues
       (Domain.recommended_domain_count ())
       (String.concat ", " results));
  register_bechamel "B12/pool-4workers-16msgs" (fun () ->
      ignore (b12_run ~messages:16 ~queues:4 ~workers:4))

(* ------------------------------------------------------------------ *)
(* B13: observability overhead (PR 4) — counters are always live, so   *)
(* the measurable cost is the timing path (clock reads + histogram     *)
(* observations) and span recording on top of it                       *)
(* ------------------------------------------------------------------ *)

let b13_dir tag =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bench-b13-%s-%d" tag (Unix.getpid ())) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

(* The B11 end-to-end engine config (batch 32, group commit, durable
   Sync_batch store): observability overhead is only meaningful against
   the configuration the engine actually ships with. *)
let b13_run ~messages ~mode =
  let program = {|
    create queue in kind basic mode persistent
    create queue out kind basic mode persistent
    create rule fwd for in if (//m) then do enqueue <ack/> into out
  |} in
  let metrics, trace_capacity, tag =
    match mode with
    | `Off -> (false, 0, "off")
    | `Metrics -> (true, 0, "metrics")
    | `Tracing -> (true, 1024, "tracing")
  in
  let store =
    Store.open_store
      (Store.durable_config
         ~sync:(Wal.Sync_batch { max_records = 256; max_bytes = 0 })
         (b13_dir tag))
  in
  (* batch 256 (the top of B11's sweep): few enough fsyncs that the
     engine's own per-message cost — where the modes differ — is the
     bulk of the run, not ext4 journal latency *)
  let cfg =
    { S.default_config with
      S.batch_size = 256; group_commit = true; metrics; trace_capacity }
  in
  let srv = S.deploy ~config:cfg ~store program in
  for i = 1 to messages do
    ignore (S.inject srv ~queue:"in" (Demaq.xml (Printf.sprintf "<m n='%d'/>" i)))
  done;
  (* a major slice landing inside one run and not another would swamp
     the few-percent effect under measurement *)
  Gc.full_major ();
  let t = secs (fun () -> ignore (S.run srv)) in
  Store.close store;
  t

let b13 () =
  headline "B13 obs_overhead"
    "observability overhead: metrics timing and span recording vs the bare engine";
  table_header
    [ ("mode", 10); ("messages", 9); ("msg/s", 10); ("overhead", 9) ];
  let messages = scale 8000 in
  (* the box is 1 core, shared, and its interference only ever ADDS
     time, so the truth is each mode's floor: interleave the modes
     (order rotated per round, so drift hits all alike) and compare low
     quantiles — the 2nd-smallest keeps the floor estimate while
     shrugging off a single lucky outlier *)
  let modes = [ `Off; `Metrics; `Tracing ] in
  let n_modes = List.length modes in
  let reps = if !quick then 1 else 21 in
  let rounds =
    List.init reps (fun r ->
        let times = Array.make n_modes 0. in
        List.iter
          (fun i -> times.(i) <- b13_run ~messages ~mode:(List.nth modes i))
          (List.init n_modes (fun k -> (k + r) mod n_modes));
        times)
  in
  let floor_of i =
    let a = Array.of_list (List.map (fun r -> r.(i)) rounds) in
    Array.sort compare a;
    a.(min 1 (Array.length a - 1))
  in
  let t_off = floor_of 0 in
  let results =
    List.mapi
      (fun i mode ->
        let name =
          match mode with
          | `Off -> "off" | `Metrics -> "metrics" | `Tracing -> "tracing"
        in
        let t = floor_of i in
        let overhead = (t /. t_off -. 1.) *. 100. in
        row
          [
            cell 10 "%s" name; cell 9 "%d" messages;
            cell 10 "%.0f" (float messages /. t);
            cell 9 "%+.1f%%" overhead;
          ];
        Printf.sprintf
          "{\"mode\": \"%s\", \"messages\": %d, \"msg_per_s\": %.0f, \"overhead_pct\": %.1f}"
          name messages (float messages /. t) overhead)
      modes
  in
  json_add
    (Printf.sprintf "{\"bench\": \"B13\", \"results\": [%s]}"
       (String.concat ", " results));
  register_bechamel "B13/metrics-on-20msgs" (fun () ->
      ignore (b13_run ~messages:20 ~mode:`Metrics))

(* ------------------------------------------------------------------ *)
(* B15: binary XML hot path (PR 7) — compact encoded payloads in the   *)
(* store, streaming admission from the synopsis, lazy tree decode.     *)
(* ROADMAP target: the Natix-style binary representation is what makes *)
(* the 1M msg/s in-memory drain rate plausible; this bench tracks the  *)
(* codec gap (decode vs re-parse) and the end-to-end effect on a       *)
(* low-match-rate restart drain.                                       *)
(* ------------------------------------------------------------------ *)

module Bxml = Demaq.Xml.Bxml
module Xml_serializer = Demaq.Xml.Serializer
module Xml_parser = Demaq.Xml.Parser

(* A representative ~2 KB order document: nested structure, attributes,
   repeated line items — the B1-B10 workload shape, not a toy. *)
let b15_doc =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "<order><orderID>ord-4711</orderID><customer><name>ACME Corp</name>\
     <tier>gold</tier></customer><items>";
  for i = 1 to 12 do
    Buffer.add_string buf
      (Printf.sprintf
         "<item sku=\"SKU-%04d\" qty=\"%d\"><desc>industrial glue \
          cartridge</desc><price>19.95</price></item>"
         i ((i mod 5) + 1))
  done;
  Buffer.add_string buf
    "</items><shipTo><street>1 Infinite Loop</street><city>Walldorf</city>\
     </shipTo></order>";
  Buffer.contents buf

(* Codec throughput must be comparable whether B15 runs standalone or
   after 14 other benches have dirtied the major heap: collect the heap
   before every sample and keep the best of several, so the number is
   each operation's clean floor rather than a snapshot of GC luck. The
   iteration count is auto-calibrated per mode (~0.2 s per sample). *)
let b15_ops f =
  ignore (f ());
  (* warm the scratch arenas before the clock starts *)
  let t1 = secs (fun () -> ignore (f ())) in
  let n = max 100 (min 200_000 (int_of_float (0.2 /. Float.max 1e-7 t1))) in
  let n = if !quick then max 50 (n / 5) else n in
  let reps = if !quick then 2 else 5 in
  let best = ref 0. in
  for _ = 1 to reps do
    Gc.full_major ();
    let ops =
      float n /. secs (fun () -> for _ = 1 to n do ignore (f ()) done)
    in
    if ops > !best then best := ops
  done;
  !best

let b15_micro () =
  let tree = Xml_parser.parse b15_doc in
  let bin = Bxml.encode tree in
  Printf.printf "payload bytes: text %d, binary %d (%.0f%% of text)\n\n"
    (String.length b15_doc) (String.length bin)
    (100. *. float (String.length bin) /. float (String.length b15_doc));
  let modes =
    [ ("text_parse", fun () -> ignore (Xml_parser.parse b15_doc));
      ("bxml_decode", fun () -> ignore (Bxml.decode bin));
      ("bxml_encode", fun () -> ignore (Bxml.encode tree));
      ("text_serialize", fun () -> ignore (Xml_serializer.to_string tree));
      ("synopsis_scan", fun () -> ignore (Bxml.synopsis bin)) ]
  in
  table_header [ ("mode", 15); ("ops/s", 12); ("us/op", 8); ("vs parse", 9) ];
  let ref_ops = ref 0. in
  let results =
    List.map
      (fun (name, f) ->
        let ops = b15_ops f in
        if !ref_ops = 0. then ref_ops := ops;
        row
          [
            cell 15 "%s" name;
            cell 12 "%.0f" ops;
            cell 8 "%.2f" (1e6 /. ops);
            cell 9 "%.1fx" (ops /. !ref_ops);
          ];
        Printf.sprintf "{\"mode\": \"%s\", \"msg_per_s\": %.0f, \"speedup_vs_parse\": %.2f}"
          name ops (ops /. !ref_ops))
      modes
  in
  json_add
    (Printf.sprintf
       "{\"bench\": \"B15\", \"doc_bytes\": %d, \"binary_bytes\": %d, \"results\": [%s]}"
       (String.length b15_doc) (String.length bin)
       (String.concat ", " results))

let b15_dir tag =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bench-b15-%s-%d" tag (Unix.getpid ())) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

(* 16 rules whose conditions each require a distinct element name the
   bulk of the traffic does not contain: the §4.4.1 prefilter decides
   admission from the payload synopsis, so a non-matching message should
   drain without ever materializing its tree. One message in 32 carries
   [<recall/>] and exercises the full decode + evaluate path. *)
let b15_program =
  let rules =
    List.init 16 (fun i ->
        let elem = if i = 7 then "recall" else Printf.sprintf "audit%02d" i in
        Printf.sprintf
          "create rule r%02d for in if (//%s) then do enqueue <hit n=\"%d\"/> into out"
          i elem i)
  in
  "create queue in kind basic mode persistent\n\
   create queue out kind basic mode persistent\n"
  ^ String.concat "\n" rules

(* Restart drain: enqueue durably, close, reopen — every message is then
   faulted back in from the store in the *stored* representation, which
   is exactly where the text-vs-binary choice lives. *)
let b15_e2e_run ~messages ~format =
  let tag = match format with `Text -> "text" | `Binary -> "binary" in
  let dir = b15_dir ("e2e-" ^ tag) in
  (* Sync_never: B11 owns fsync behaviour; here the fsyncs would only
     add jitter to the short binary drain and blur the decode-path
     difference under measurement *)
  let sync = Wal.Sync_never in
  let cfg = { S.default_config with S.batch_size = 256 } in
  let store = Store.open_store (Store.durable_config ~sync dir) in
  let srv = S.deploy ~config:cfg ~store ~payload_format:format b15_program in
  for i = 1 to messages do
    let extra = if i mod 32 = 0 then "<recall/>" else "" in
    let doc =
      "<order>" ^ extra ^ String.sub b15_doc 7 (String.length b15_doc - 7)
    in
    ignore (S.inject srv ~queue:"in" (Demaq.xml doc))
  done;
  Store.close store;
  (* restart: recover the backlog from the WAL and drain it *)
  let store = Store.open_store (Store.durable_config ~sync dir) in
  let srv = S.deploy ~config:cfg ~store ~payload_format:format b15_program in
  Gc.full_major ();
  let t = secs (fun () -> ignore (S.run srv)) in
  let processed = (S.stats srv).S.processed in
  let scans, decodes, decoded_bytes = S.admission_stats srv in
  Store.close store;
  (t, processed, scans, decodes, decoded_bytes)

let b15_e2e () =
  Printf.printf
    "\nend-to-end restart drain (16 low-match rules, 1/32 messages match):\n";
  table_header
    [ ("format", 7); ("msg/s", 10); ("scans", 7); ("decodes", 8);
      ("decoded MB", 10); ("speedup", 8) ];
  let messages = scale 6000 in
  (* even --quick needs the floor estimate: a single drain sample's
     ratio swings far too much to gate on *)
  let reps = if !quick then 3 else 5 in
  let formats = [ `Text; `Binary ] in
  (* shared 1-core box: interleave the formats and take each one's
     2nd-smallest time (the B13 floor estimate) *)
  let rounds =
    List.init reps (fun r ->
        let times = Array.make 2 (0., 0, 0, 0, 0) in
        List.iter
          (fun i ->
            times.(i) <- b15_e2e_run ~messages ~format:(List.nth formats i))
          (List.init 2 (fun k -> (k + r) mod 2));
        times)
  in
  let floor_of i =
    let a = Array.of_list (List.map (fun r -> r.(i)) rounds) in
    Array.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b) a;
    a.(min 1 (Array.length a - 1))
  in
  let t_text, _, _, _, _ = floor_of 0 in
  let results =
    List.mapi
      (fun i format ->
        let name = match format with `Text -> "text" | `Binary -> "binary" in
        let t, processed, scans, decodes, decoded_bytes = floor_of i in
        row
          [
            cell 7 "%s" name;
            cell 10 "%.0f" (float processed /. t);
            cell 7 "%d" scans;
            cell 8 "%d" decodes;
            cell 10 "%.2f" (float decoded_bytes /. 1e6);
            cell 8 "%.2fx" (t_text /. t);
          ];
        Printf.sprintf
          "{\"mode\": \"%s\", \"messages\": %d, \"msg_per_s\": %.0f, \
           \"admission_scans\": %d, \"trees_decoded\": %d, \
           \"decoded_bytes\": %d}"
          name processed (float processed /. t) scans decodes decoded_bytes)
      formats
  in
  json_add
    (Printf.sprintf "{\"bench\": \"B15e\", \"results\": [%s]}"
       (String.concat ", " results))

let b15 () =
  headline "B15 binary_xml"
    "binary XML hot path: decode vs re-parse, synopsis admission, e2e drain";
  b15_micro ();
  b15_e2e ();
  let tree = Xml_parser.parse b15_doc in
  let bin = Bxml.encode tree in
  register_bechamel "B15/text-parse-2kb" (fun () ->
      ignore (Xml_parser.parse b15_doc));
  register_bechamel "B15/bxml-decode-2kb" (fun () -> ignore (Bxml.decode bin));
  register_bechamel "B15/synopsis-scan-2kb" (fun () ->
      ignore (Bxml.synopsis bin))

(* ------------------------------------------------------------------ *)
(* B16: compile-on-deploy rule plans (PR 8)                            *)
(* ------------------------------------------------------------------ *)

module Compiler = Demaq.Lang.Compiler
module Qdl = Demaq.Lang.Qdl
module Dispatch = Demaq.Engine.Dispatch

(* Part 1: the guarded plan vs per-rule interpretation. [rules] rules
   share two guards and one common count-sum subexpression; the compiled
   plan evaluates each guard and the hoisted sum once per message, while
   per-rule interpretation re-evaluates them for every rule. Unlike B2
   (which measures the legacy factored merge on condition-only sharing),
   this measures the full pipeline: guard sharing + CSE hoisting. *)
let b16_program rules =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "create queue in kind basic mode persistent\ncreate queue out kind basic mode persistent\n";
  for i = 1 to rules do
    Buffer.add_string buf
      (Printf.sprintf
         "create rule r%d for in if (//order[seq mod %d = 0][customer != \"nobody\"]) \
          then do enqueue <hit n=\"%d\">{count(//item) + count(//seq) + count(//customer)}</hit> into out\n"
         i ((i mod 2) + 1) i)
  done;
  Buffer.contents buf

let b16_run ~rules ~messages ~merged =
  let cfg = { S.default_config with S.merged_plans = merged; S.workers = 1 } in
  let srv = S.deploy ~config:cfg (b16_program rules) in
  for i = 1 to messages do
    ignore (S.inject srv ~queue:"in" (Demaq.xml (order_payload "k" i)))
  done;
  secs (fun () -> ignore (S.run srv))

(* Part 2: conflict-set width. An [n]-way fanout queue whose rules each
   write a different output queue: under queue-granularity dispatch every
   message conflicts with every other on ["q:in"]; under the compiled
   footprints messages admitted by different rules are disjoint. The
   dispatcher is drained in waves — pop every dispatchable rid before
   completing any — and the wave size is the achievable concurrency. *)
let b16_fanout n =
  "create queue in kind basic mode persistent\n"
  ^ String.concat "\n"
      (List.init n (fun i ->
           Printf.sprintf "create queue o%d kind basic mode persistent" i))
  ^ "\n"
  ^ String.concat "\n"
      (List.init n (fun i ->
           Printf.sprintf
             "create rule r%d for in if (//t%d) then do enqueue <y/> into o%d" i i i))

let b16_width_run ~n ~messages ~granularity =
  let c = Compiler.compile (Qdl.parse_program (b16_fanout n)) in
  let plan = Option.get (Compiler.plan_for c "in") in
  let footprint_res i =
    match snd plan.Compiler.conflicts.(i) with
    | Compiler.Conflict_resources { res; own_queue } ->
      if own_queue then plan.Compiler.queue_resource :: res else res
    | Compiler.Conflict_top -> Compiler.all_queue_resources c
  in
  let d = Dispatch.create () in
  for j = 0 to messages - 1 do
    let resources =
      match granularity with
      | `Queue -> [ plan.Compiler.queue_resource ]
      | `Footprint -> footprint_res (j mod n)
    in
    Dispatch.schedule d ~priority:0 ~resources j
  done;
  let widths = ref [] in
  let rec wave acc =
    match Dispatch.next d with
    | Dispatch.Ready rid -> wave (rid :: acc)
    | Dispatch.Busy | Dispatch.Empty -> acc
  in
  let rec drain () =
    match wave [] with
    | [] -> ()
    | batch ->
      widths := List.length batch :: !widths;
      List.iter (Dispatch.complete d) batch;
      drain ()
  in
  drain ();
  let l = !widths in
  let maxw = List.fold_left max 0 l in
  let avg = float (List.fold_left ( + ) 0 l) /. float (max 1 (List.length l)) in
  (avg, maxw)

let b16 () =
  headline "B16 rule_compilation"
    "compiled guarded plans: shared guards + hoisted CSE vs per-rule; conflict-set width";
  table_header
    [ ("rules", 6); ("messages", 9); ("per-rule msg/s", 15); ("compiled msg/s", 15);
      ("speedup", 8) ];
  let rules = 8 in
  let messages = scale 400 in
  let t_per_rule = b16_run ~rules ~messages ~merged:false in
  let t_merged = b16_run ~rules ~messages ~merged:true in
  row
    [
      cell 6 "%d" rules; cell 9 "%d" messages;
      cell 15 "%.0f" (float messages /. t_per_rule);
      cell 15 "%.0f" (float messages /. t_merged);
      cell 8 "%.2fx" (t_per_rule /. t_merged);
    ];
  json_add
    (Printf.sprintf
       "{\"bench\": \"B16\", \"results\": [{\"mode\": \"per_rule\", \"rules\": %d, \
        \"messages\": %d, \"msg_per_s\": %.0f}, {\"mode\": \"merged\", \"rules\": %d, \
        \"messages\": %d, \"msg_per_s\": %.0f, \"speedup\": %.2f}]}"
       rules messages
       (float messages /. t_per_rule)
       rules messages
       (float messages /. t_merged)
       (t_per_rule /. t_merged));
  Printf.printf "\nconflict-set width (%d-way fanout, dispatcher waves):\n" 8;
  table_header
    [ ("granularity", 11); ("messages", 9); ("avg width", 10); ("max width", 10) ];
  let messages = 256 in
  let width_results =
    List.map
      (fun (name, granularity) ->
        let avg, maxw = b16_width_run ~n:8 ~messages ~granularity in
        row
          [
            cell 11 "%s" name; cell 9 "%d" messages;
            cell 10 "%.2f" avg; cell 10 "%d" maxw;
          ];
        Printf.sprintf
          "{\"granularity\": \"%s\", \"messages\": %d, \"avg_width\": %.2f, \
           \"max_width\": %d}"
          name messages avg maxw)
      [ ("queue", `Queue); ("footprint", `Footprint) ]
  in
  (* no msg_per_s on purpose: width is a shape, not a throughput —
     recorded for EXPERIMENTS.md, never gated by compare.py *)
  json_add
    (Printf.sprintf "{\"bench\": \"B16w\", \"results\": [%s]}"
       (String.concat ", " width_results));
  register_bechamel "B16/per-rule-8rules-20msgs" (fun () ->
      ignore (b16_run ~rules:8 ~messages:20 ~merged:false));
  register_bechamel "B16/compiled-8rules-20msgs" (fun () ->
      ignore (b16_run ~rules:8 ~messages:20 ~merged:true))

(* ------------------------------------------------------------------ *)
(* Ablations: design choices called out in DESIGN.md §7                *)
(* ------------------------------------------------------------------ *)

(* A1: B-tree node order. The slice index's fan-out trades tree depth
   against per-node scan cost. *)
let a1 () =
  headline "A1 btree_order" "slice-index B-tree fan-out ablation";
  table_header [ ("order", 6); ("height", 7); ("insert us", 10); ("lookup us", 10) ];
  let n = scale 20000 in
  List.iter
    (fun order ->
      let t = Btree.create ~order () in
      let t_insert =
        secs (fun () ->
            for i = 1 to n do
              Btree.add t (Printf.sprintf "key-%08d" (i * 7919 mod n)) i
            done)
      in
      let lookups = 20000 in
      let t_lookup =
        secs (fun () ->
            for i = 1 to lookups do
              ignore (Btree.find t (Printf.sprintf "key-%08d" (i * 104729 mod n)))
            done)
      in
      row
        [
          cell 6 "%d" order;
          cell 7 "%d" (Btree.height t);
          cell 10 "%.3f" (t_insert *. 1e6 /. float n);
          cell 10 "%.3f" (t_lookup *. 1e6 /. float lookups);
        ])
    [ 4; 16; 64; 256 ];
  register_bechamel "A1/btree-order-64-insert" (fun () ->
      let t = Btree.create ~order:64 () in
      for i = 1 to 500 do
        Btree.add t (string_of_int i) i
      done)

(* A2: XML codec throughput — every message crosses the parser and the
   serializer at least once (store, gateways). *)
let a2 () =
  headline "A2 xml_codec" "XML parse/serialize throughput vs document size";
  table_header
    [ ("elements", 9); ("bytes", 8); ("parse MB/s", 11); ("serialize MB/s", 14) ];
  List.iter
    (fun elems ->
      let doc =
        "<doc>"
        ^ String.concat ""
            (List.init elems (fun i ->
                 Printf.sprintf "<item id=\"%d\"><name>part-%d</name><qty>%d</qty></item>"
                   i i (i mod 9)))
        ^ "</doc>"
      in
      let bytes = String.length doc in
      let reps = max 1 (scale 400000 / max bytes 1) in
      let t_parse =
        secs (fun () -> for _ = 1 to reps do ignore (Demaq.xml doc) done)
      in
      let tree = Demaq.xml doc in
      let t_ser =
        secs (fun () -> for _ = 1 to reps do ignore (Demaq.xml_to_string tree) done)
      in
      let mbs t = float (bytes * reps) /. t /. 1e6 in
      row
        [
          cell 9 "%d" elems; cell 8 "%d" bytes;
          cell 11 "%.1f" (mbs t_parse);
          cell 14 "%.1f" (mbs t_ser);
        ])
    [ 5; 50; 500 ];
  register_bechamel "A2/parse-50-elements" (fun () ->
      ignore
        (Demaq.xml
           ("<doc>"
           ^ String.concat ""
               (List.init 50 (fun i -> Printf.sprintf "<item>%d</item>" i))
           ^ "</doc>")))

(* A3: checkpoint interval — frequent checkpoints bound the log and the
   recovery replay at the cost of snapshot writes. *)
let a3_dir tag =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bench-a3-%s-%d" tag (Unix.getpid ())) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let a3 () =
  headline "A3 checkpoint_interval"
    "checkpoint frequency: ingest cost vs log size vs recovery time";
  table_header
    [ ("interval", 9); ("ingest ms", 10); ("final log KB", 12); ("recover ms", 11) ];
  let messages = scale 3000 in
  List.iter
    (fun interval ->
      let dir = a3_dir (string_of_int interval) in
      let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
      let st = Store.open_store cfg in
      let t_ingest =
        secs (fun () ->
            for i = 1 to messages do
              let txn = Store.begin_txn st in
              ignore
                (Store.insert txn ~queue:"q"
                   ~payload:(Printf.sprintf "<m n='%d'>%s</m>" i (String.make 64 'c'))
                   ~extra:"" ~enqueued_at:i ~durable:true);
              Store.commit txn;
              if interval > 0 && i mod interval = 0 then Store.checkpoint st
            done)
      in
      let log_kb = float (Store.stats st).Store.wal_bytes /. 1024. in
      Store.close st;
      let t_recover = secs (fun () -> Store.close (Store.open_store cfg)) in
      row
        [
          (if interval = 0 then cell 9 "never" else cell 9 "%d" interval);
          cell 10 "%.1f" (t_ingest *. 1e3);
          cell 12 "%.1f" log_kb;
          cell 11 "%.2f" (t_recover *. 1e3);
        ])
    [ 0; 2000; 500; 100 ];
  register_bechamel "A3/checkpoint" (fun () ->
      let dir = a3_dir "bech" in
      let st = Store.open_store (Store.durable_config ~sync:Wal.Sync_never dir) in
      let txn = Store.begin_txn st in
      for i = 1 to 50 do
        ignore (Store.insert txn ~queue:"q" ~payload:"<m/>" ~extra:"" ~enqueued_at:i ~durable:true)
      done;
      Store.commit txn;
      Store.checkpoint st;
      Store.close st)

(* A4: condition pre-filtering (XML filtering, §4.4.1). A brokering rule
   set where each rule triggers on one message type: without the filter
   every message evaluates every rule. *)
let a4_program rules =
  "create queue in kind basic mode persistent\ncreate queue out kind basic mode persistent\n"
  ^ String.concat "\n"
      (List.init rules (fun i ->
           Printf.sprintf
             "create rule r%d for in if (//type%d and //priority) then do enqueue <hit n=\"%d\"/> into out"
             i i i))

let a4_run ~rules ~messages ~use_prefilter =
  let cfg = { S.default_config with S.use_prefilter } in
  let srv = S.deploy ~config:cfg (a4_program rules) in
  for i = 1 to messages do
    ignore
      (S.inject srv ~queue:"in"
         (Demaq.xml
            (Printf.sprintf "<msg><type%d/><priority/><pad>%s</pad></msg>"
               (i mod rules) (String.make 100 'f'))))
  done;
  secs (fun () -> ignore (S.run srv))

let a4 () =
  headline "A4 condition_prefilter"
    "XML-filtering fast path: skip rules whose required elements are absent";
  table_header
    [ ("rules", 6); ("messages", 9); ("no filter msg/s", 15);
      ("filtered msg/s", 14); ("speedup", 8) ];
  List.iter
    (fun rules ->
      let messages = scale 400 in
      let t_off = a4_run ~rules ~messages ~use_prefilter:false in
      let t_on = a4_run ~rules ~messages ~use_prefilter:true in
      row
        [
          cell 6 "%d" rules; cell 9 "%d" messages;
          cell 15 "%.0f" (float messages /. t_off);
          cell 14 "%.0f" (float messages /. t_on);
          cell 8 "%.2fx" (t_off /. t_on);
        ])
    [ 4; 16; 64 ];
  register_bechamel "A4/broker-nofilter" (fun () ->
      ignore (a4_run ~rules:16 ~messages:20 ~use_prefilter:false));
  register_bechamel "A4/broker-filtered" (fun () ->
      ignore (a4_run ~rules:16 ~messages:20 ~use_prefilter:true))

(* A5: large-payload spill. Bodies above the threshold live in the
   slotted-page heap file; the working set holds only references. *)
let a5_dir tag =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bench-a5-%s-%d" tag (Unix.getpid ())) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let a5_run ~messages ~payload_bytes ~spill =
  let dir = a5_dir (if spill then "spill" else "inline") in
  let cfg =
    if spill then Store.durable_config ~sync:Wal.Sync_never ~spill_threshold:512 dir
    else Store.durable_config ~sync:Wal.Sync_never dir
  in
  let st = Store.open_store cfg in
  let payload = "<blob>" ^ String.make payload_bytes 'D' ^ "</blob>" in
  let t_insert =
    secs (fun () ->
        for i = 1 to messages do
          let txn = Store.begin_txn st in
          ignore (Store.insert txn ~queue:"q" ~payload ~extra:"" ~enqueued_at:i ~durable:true);
          Store.commit txn
        done)
  in
  let inline_bytes = (Store.stats st).Store.inline_bytes in
  (* random-access read-back of 200 bodies *)
  let rids = Store.queue_rids st "q" in
  let arr = Array.of_list rids in
  let t_read =
    secs (fun () ->
        for i = 1 to 200 do
          let m = Option.get (Store.get st arr.(i * 7919 mod Array.length arr)) in
          ignore (Store.payload st m)
        done)
  in
  Store.close st;
  (t_insert, t_read, inline_bytes)

let a5 () =
  headline "A5 payload_spill"
    "out-of-line storage of large message bodies (heap file + buffer pool)";
  table_header
    [ ("payload B", 10); ("inline MB in RAM", 16); ("spill MB in RAM", 15);
      ("spill insert ms", 15); ("spill read us", 13) ];
  List.iter
    (fun payload_bytes ->
      let messages = scale 500 in
      let _, _, inline_mem = a5_run ~messages ~payload_bytes ~spill:false in
      let t_ins, t_read, spill_mem = a5_run ~messages ~payload_bytes ~spill:true in
      row
        [
          cell 10 "%d" payload_bytes;
          cell 16 "%.2f" (float inline_mem /. 1e6);
          cell 15 "%.2f" (float spill_mem /. 1e6);
          cell 15 "%.1f" (t_ins *. 1e3);
          cell 13 "%.1f" (t_read *. 1e6 /. 200.);
        ])
    [ 1000; 8000; 64000 ];
  register_bechamel "A5/spill-insert-8k" (fun () ->
      ignore (a5_run ~messages:20 ~payload_bytes:8000 ~spill:true));
  register_bechamel "A5/inline-insert-8k" (fun () ->
      ignore (a5_run ~messages:20 ~payload_bytes:8000 ~spill:false))

(* ------------------------------------------------------------------ *)
(* B17: causal flow tracing overhead (PR 9) — every enqueue mints or   *)
(* derives a provenance triple, appends it to the stored extra blob    *)
(* (more WAL bytes) and feeds the bounded flow store; this bench holds *)
(* that full path against the same engine with flow_tracing off.       *)
(* Budget: <= 5%, like B13's timing path.                              *)
(* ------------------------------------------------------------------ *)

let b17_dir tag =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bench-b17-%s-%d" tag (Unix.getpid ())) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

(* B13's shipped configuration (batch 256, group commit, durable
   Sync_batch store), with a one-hop cascade so the derived-provenance
   path (inherit flow, parent rid, causing rule) runs once per input
   message on top of the minting path. *)
let b17_run ~messages ~flow_tracing =
  let program = {|
    create queue in kind basic mode persistent
    create queue out kind basic mode persistent
    create rule fwd for in if (//m) then do enqueue <ack/> into out
  |} in
  let tag = if flow_tracing then "on" else "off" in
  let store =
    Store.open_store
      (Store.durable_config
         ~sync:(Wal.Sync_batch { max_records = 256; max_bytes = 0 })
         (b17_dir tag))
  in
  let cfg =
    { S.default_config with
      S.batch_size = 256; group_commit = true; flow_tracing }
  in
  let srv = S.deploy ~config:cfg ~store program in
  for i = 1 to messages do
    ignore (S.inject srv ~queue:"in" (Demaq.xml (Printf.sprintf "<m n='%d'/>" i)))
  done;
  Gc.full_major ();
  let t = secs (fun () -> ignore (S.run srv)) in
  Store.close store;
  t

let b17 () =
  headline "B17 flow_overhead"
    "causal flow tracing: provenance mint/derive/persist vs flow_tracing off";
  table_header
    [ ("mode", 10); ("messages", 9); ("msg/s", 10); ("overhead", 9) ];
  let messages = scale 8000 in
  (* B13's floor-of-interleaved-rounds estimator breaks down for a
     few-percent effect on a 1-core shared box: the two modes' floors
     come from different rounds, so an interference burst landing on
     one mode's quietest round biases the difference by more than the
     effect under measurement. The two modes of a round run
     back-to-back (~0.1 s each), so a burst hits both: the per-round
     on/off ratio is robust to drift, and the median of those paired
     ratios is the overhead estimate. Floors still report msg/s. *)
  let modes = [ false; true ] in
  let n_modes = List.length modes in
  let reps = if !quick then 1 else 21 in
  let rounds =
    List.init reps (fun r ->
        let times = Array.make n_modes 0. in
        List.iter
          (fun i ->
            times.(i) <- b17_run ~messages ~flow_tracing:(List.nth modes i))
          (List.init n_modes (fun k -> (k + r) mod n_modes));
        times)
  in
  let floor_of i =
    let a = Array.of_list (List.map (fun r -> r.(i)) rounds) in
    Array.sort compare a;
    a.(min 1 (Array.length a - 1))
  in
  let median_ratio i =
    let a = Array.of_list (List.map (fun r -> r.(i) /. r.(0)) rounds) in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let results =
    List.mapi
      (fun i flow_tracing ->
        let name = if flow_tracing then "on" else "off" in
        let t = floor_of i in
        let overhead = (median_ratio i -. 1.) *. 100. in
        row
          [
            cell 10 "%s" name; cell 9 "%d" messages;
            cell 10 "%.0f" (float messages /. t);
            cell 9 "%+.1f%%" overhead;
          ];
        Printf.sprintf
          "{\"mode\": \"%s\", \"messages\": %d, \"msg_per_s\": %.0f, \"overhead_pct\": %.1f}"
          name messages (float messages /. t) overhead)
      modes
  in
  json_add
    (Printf.sprintf "{\"bench\": \"B17\", \"results\": [%s]}"
       (String.concat ", " results));
  register_bechamel "B17/flow-on-20msgs" (fun () ->
      ignore (b17_run ~messages:20 ~flow_tracing:true))

(* ------------------------------------------------------------------ *)
(* B18: adaptive runtime (PR 10) — the AIMD group-commit controller    *)
(* discovering fsync-amortization headroom from a deliberately conser- *)
(* vative start (batch target 1), against the same engine with the     *)
(* controller off; plus the admission gate's deterministic mechanics   *)
(* and the GC/compaction path that keeps the store bounded.            *)
(* ------------------------------------------------------------------ *)

module Gate = Demaq.Engine.Gate

let b18_dir tag =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bench-b18-%s-%d" tag (Unix.getpid ())) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let b18_program = {|
    create queue in kind basic mode persistent
    create queue out kind basic mode persistent
    create rule fwd for in if (//m) then do enqueue <ack/> into out
  |}

type b18_result = {
  b18_t : float;
  b18_batch_final : int;
  b18_increases : int;
  b18_decreases : int;
  b18_gc_collected : int;
  b18_live_after : int;
  b18_wal_before : int;
  b18_wal_after : int;
}

(* Arrivals in bursts of [chunk] with a drain (and, when adaptive, a
   controller tick) between bursts — the shape a serving node sees. Both
   modes start at batch target 1: off stays there (fsync per message),
   on climbs as far as the observed barrier p99 allows. *)
let b18_run ~messages ~adaptive =
  let tag = if adaptive then "on" else "off" in
  let store =
    Store.open_store
      (Store.durable_config
         ~sync:(Wal.Sync_batch { max_records = 256; max_bytes = 1 lsl 20 })
         (b18_dir tag))
  in
  let cfg =
    { S.default_config with
      S.batch_size = 1; group_commit = true; metrics = true }
  in
  let srv = S.deploy ~config:cfg ~store b18_program in
  let ctl = if adaptive then Some (S.enable_adaptive srv) else None in
  let payload = Demaq.xml "<m/>" in
  Gc.full_major ();
  let chunk = 50 in
  let t =
    secs (fun () ->
        let injected = ref 0 in
        while !injected < messages do
          let n = min chunk (messages - !injected) in
          for _ = 1 to n do
            ignore (S.inject srv ~queue:"in" payload)
          done;
          injected := !injected + n;
          ignore (S.run srv);
          if adaptive then ignore (S.controller_tick srv)
        done)
  in
  let batch_final = S.batch_target srv in
  let increases, decreases =
    match ctl with
    | Some c ->
      (Demaq.Engine.Controller.increases c, Demaq.Engine.Controller.decreases c)
    | None -> (0, 0)
  in
  (* the bounded-store story: incremental GC in budgeted steps until a
     full cursor cycle finds nothing, then one compaction folding the
     retired log into a fresh snapshot *)
  let wal_before = (Store.stats store).Store.wal_bytes in
  let budget = 1024 in
  let live = (Store.stats store).Store.live_messages in
  let gc_collected = ref 0 in
  for _ = 0 to (live / budget) + 2 do
    let collected, _ = S.maintain ~gc_budget:budget srv in
    gc_collected := !gc_collected + collected
  done;
  let _, _reclaimed = S.maintain ~max_wal_bytes:1 srv in
  let wal_after = (Store.stats store).Store.wal_bytes in
  let live_after = (Store.stats store).Store.live_messages in
  Store.close store;
  {
    b18_t = t;
    b18_batch_final = batch_final;
    b18_increases = increases;
    b18_decreases = decreases;
    b18_gc_collected = !gc_collected;
    b18_live_after = live_after;
    b18_wal_before = wal_before;
    b18_wal_after = wal_after;
  }

(* The gate's mechanics, deterministically: with the WAL-byte threshold
   at one byte, the first unhardened commit saturates the gate, so of
   [n] arrivals consulted one-by-one exactly one is admitted and the
   rest shed hard — on every machine, every run. *)
let b18_gate () =
  let store =
    Store.open_store
      (Store.durable_config
         ~sync:(Wal.Sync_batch { max_records = 1024; max_bytes = 0 })
         (b18_dir "gate"))
  in
  let cfg =
    { S.default_config with S.batch_size = 256; group_commit = true }
  in
  let srv = S.deploy ~config:cfg ~store b18_program in
  let gate =
    S.enable_gate
      ~cfg:{ Gate.default_config with Gate.max_pending = max_int;
             max_wal_bytes = 1 }
      srv
  in
  let payload = Demaq.xml "<m/>" in
  for _ = 1 to 100 do
    match S.admission srv ~queue:"in" with
    | Gate.Admit -> ignore (S.inject srv ~queue:"in" payload)
    | Gate.Shed _ -> ()
  done;
  let admitted = Gate.admitted gate in
  let shed = Gate.shed gate in
  let shed_hard = Gate.shed_hard gate in
  ignore (S.run srv);
  Store.close store;
  (admitted, shed, shed_hard)

let b18 () =
  headline "B18 adaptive_runtime"
    "AIMD group-commit controller vs fixed batch 1; admission gate; GC + compaction";
  table_header
    [ ("mode", 10); ("messages", 9); ("msg/s", 10); ("batch", 6);
      ("gc", 7); ("wal-after", 10) ];
  let messages = scale 6000 in
  let off = b18_run ~messages ~adaptive:false in
  let on = b18_run ~messages ~adaptive:true in
  let entry name (r : b18_result) =
    row
      [
        cell 10 "%s" name; cell 9 "%d" messages;
        cell 10 "%.0f" (float messages /. r.b18_t);
        cell 6 "%d" r.b18_batch_final;
        cell 7 "%d" r.b18_gc_collected;
        cell 10 "%d" r.b18_wal_after;
      ];
    Printf.sprintf
      "{\"mode\": \"%s\", \"messages\": %d, \"msg_per_s\": %.0f, \
       \"batch_final\": %d, \"increases\": %d, \"decreases\": %d, \
       \"gc_collected\": %d, \"live_after\": %d, \"wal_before\": %d, \
       \"wal_after\": %d}"
      name messages (float messages /. r.b18_t)
      r.b18_batch_final r.b18_increases r.b18_decreases r.b18_gc_collected
      r.b18_live_after r.b18_wal_before r.b18_wal_after
  in
  let off_json = entry "off" off in
  let on_json = entry "on" on in
  let admitted, shed, shed_hard = b18_gate () in
  Printf.printf
    "gate mechanics: admitted=%d shed=%d (hard %d) of 100 arrivals\n"
    admitted shed shed_hard;
  Printf.printf "controller speedup: %.2fx (batch 1 -> %d)\n"
    (off.b18_t /. on.b18_t) on.b18_batch_final;
  let gate_json =
    Printf.sprintf
      "{\"mode\": \"gate\", \"admitted\": %d, \"shed\": %d, \"shed_hard\": %d}"
      admitted shed shed_hard
  in
  json_add
    (Printf.sprintf "{\"bench\": \"B18\", \"results\": [%s, %s, %s]}"
       off_json on_json gate_json);
  register_bechamel "B18/adaptive-200msgs" (fun () ->
      ignore (b18_run ~messages:200 ~adaptive:true))

(* ------------------------------------------------------------------ *)
(* Bechamel run                                                        *)
(* ------------------------------------------------------------------ *)

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  headline "Bechamel" "micro-benchmark estimates (ns per run, OLS fit)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500
      ~quota:(Time.second (if !quick then 0.1 else 0.3))
      ~kde:None ~stabilize:true ()
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let names = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) results []) in
      List.iter
        (fun name ->
          match Analyze.OLS.estimates (Hashtbl.find results name) with
          | Some (e :: _) -> Printf.printf "  %-45s %14.0f ns/run\n" name e
          | _ -> Printf.printf "  %-45s   (no estimate)\n" name)
        names)
    !bechamel_tests

(* ------------------------------------------------------------------ *)

let all_benches =
  [ ("B1", b1); ("B2", b2); ("B3", b3); ("B4", b4); ("B5", b5); ("B6", b6);
    ("B7", b7); ("B8", b8); ("B9", b9); ("B10", b10); ("B11", b11);
    ("B12", b12); ("B13", b13); ("B15", b15); ("B16", b16); ("B17", b17);
    ("B18", b18);
    ("A1", a1); ("A2", a2); ("A3", a3); ("A4", a4); ("A5", a5) ]

let () =
  let json_file = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let selected =
    if args = [] then all_benches
    else List.filter (fun (id, _) -> List.mem id args) all_benches
  in
  Printf.printf
    "Demaq benchmark suite — regenerating the paper's performance claims\n";
  Printf.printf "(see DESIGN.md section 5 for the bench index, EXPERIMENTS.md for results)\n";
  let _, total = time_it (fun () -> List.iter (fun (_, f) -> f ()) selected) in
  if args = [] then run_bechamel ();
  Option.iter write_json !json_file;
  Printf.printf "\ntotal bench time: %.1f s\n" total

(* Tests for the lock manager: compatibility, upgrades, deadlock detection. *)

module Lock = Demaq.Store.Lock_manager

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let q = Lock.Queue_lock "q"
let s1 = Lock.Slice_lock ("orders", "k1")
let s2 = Lock.Slice_lock ("orders", "k2")

let granted = function Lock.Granted -> true | Lock.Conflict _ -> false

let test_shared_compatible () =
  let t = Lock.create () in
  check bool_ "t1 S" true (granted (Lock.acquire t ~txn:1 q Lock.Shared));
  check bool_ "t2 S" true (granted (Lock.acquire t ~txn:2 q Lock.Shared));
  match Lock.acquire t ~txn:3 q Lock.Exclusive with
  | Lock.Conflict holders ->
    check bool_ "both holders reported" true
      (List.sort compare holders = [ 1; 2 ])
  | Lock.Granted -> Alcotest.fail "X granted over S holders"

let test_exclusive_blocks () =
  let t = Lock.create () in
  check bool_ "t1 X" true (granted (Lock.acquire t ~txn:1 q Lock.Exclusive));
  check bool_ "t2 S conflicts" false (granted (Lock.acquire t ~txn:2 q Lock.Shared));
  check bool_ "t2 X conflicts" false (granted (Lock.acquire t ~txn:2 q Lock.Exclusive))

let test_reentrant_and_upgrade () =
  let t = Lock.create () in
  check bool_ "S" true (granted (Lock.acquire t ~txn:1 q Lock.Shared));
  check bool_ "re-acquire S" true (granted (Lock.acquire t ~txn:1 q Lock.Shared));
  check bool_ "upgrade to X" true (granted (Lock.acquire t ~txn:1 q Lock.Exclusive));
  check bool_ "other blocked" false (granted (Lock.acquire t ~txn:2 q Lock.Shared));
  (* after upgrade, re-acquiring S must not silently downgrade *)
  check bool_ "S after X" true (granted (Lock.acquire t ~txn:1 q Lock.Shared));
  check bool_ "other still blocked" false (granted (Lock.acquire t ~txn:2 q Lock.Shared))

let test_upgrade_blocked_by_other_reader () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 q Lock.Shared);
  ignore (Lock.acquire t ~txn:2 q Lock.Shared);
  check bool_ "upgrade blocked" false (granted (Lock.acquire t ~txn:1 q Lock.Exclusive))

let test_release_all () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 q Lock.Exclusive);
  ignore (Lock.acquire t ~txn:1 s1 Lock.Exclusive);
  check int_ "held" 2 (List.length (Lock.held t ~txn:1));
  Lock.release_all t ~txn:1;
  check int_ "released" 0 (List.length (Lock.held t ~txn:1));
  check bool_ "free" true (granted (Lock.acquire t ~txn:2 q Lock.Exclusive));
  check int_ "table compacted" 1 (Lock.active_locks t)

let test_slice_independence () =
  (* §4.3: slice locks do not conflict across different keys. *)
  let t = Lock.create () in
  check bool_ "t1 slice k1" true (granted (Lock.acquire t ~txn:1 s1 Lock.Exclusive));
  check bool_ "t2 slice k2" true (granted (Lock.acquire t ~txn:2 s2 Lock.Exclusive));
  check bool_ "t2 slice k1 conflicts" false (granted (Lock.acquire t ~txn:2 s1 Lock.Exclusive))

let test_deadlock_detection () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 s1 Lock.Exclusive);
  ignore (Lock.acquire t ~txn:2 s2 Lock.Exclusive);
  (* txn 1 waits for s2 (held by 2) *)
  Lock.wait_on t ~txn:1 s2;
  (* if txn 2 now waited for s1 (held by 1) we'd have a cycle *)
  check bool_ "cycle detected" true (Lock.would_deadlock t ~txn:2 s1);
  (* no cycle for an independent transaction *)
  check bool_ "no cycle for t3" false (Lock.would_deadlock t ~txn:3 s1);
  Lock.stop_waiting t ~txn:1;
  check bool_ "cycle gone after stop_waiting" false (Lock.would_deadlock t ~txn:2 s1)

let test_deadlock_three_party () =
  let t = Lock.create () in
  let r1 = Lock.Queue_lock "a"
  and r2 = Lock.Queue_lock "b"
  and r3 = Lock.Queue_lock "c" in
  ignore (Lock.acquire t ~txn:1 r1 Lock.Exclusive);
  ignore (Lock.acquire t ~txn:2 r2 Lock.Exclusive);
  ignore (Lock.acquire t ~txn:3 r3 Lock.Exclusive);
  Lock.wait_on t ~txn:1 r2;
  Lock.wait_on t ~txn:2 r3;
  check bool_ "3-cycle detected" true (Lock.would_deadlock t ~txn:3 r1)

let test_resource_names () =
  check bool_ "queue" true (Lock.resource_to_string q = "queue:q");
  check bool_ "slice" true (Lock.resource_to_string s1 = "slice:orders/k1");
  check bool_ "message" true
    (Lock.resource_to_string (Lock.Message_lock 7) = "message:7")

(* ---- qcheck: holder bookkeeping under arbitrary interleavings ----

   A pure model of the manager's contract: per resource, the holder list
   with Shared/Shared the only compatible pair and upgrades keeping the
   stronger mode. Arbitrary sequences of acquire/upgrade/release across
   four transactions are replayed against both; after every operation the
   real manager must agree with the model — no holder entry lost or
   duplicated, the compatibility matrix never violated, conflicts
   reporting exactly the incompatible holders. *)

let prop_resources = [| q; s1; s2; Lock.Message_lock 7 |]

let compatible m1 m2 =
  match m1, m2 with Lock.Shared, Lock.Shared -> true | _ -> false

let model_acquire model ~txn res mode =
  let holders = Option.value ~default:[] (Hashtbl.find_opt model res) in
  let others = List.filter (fun (id, _) -> id <> txn) holders in
  let mine = List.filter (fun (id, _) -> id = txn) holders in
  let incompat = List.filter (fun (_, m) -> not (compatible mode m)) others in
  if incompat <> [] then Lock.Conflict (List.map fst incompat)
  else begin
    let merged =
      match mine with (_, Lock.Exclusive) :: _ -> Lock.Exclusive | _ -> mode
    in
    Hashtbl.replace model res ((txn, merged) :: others);
    Lock.Granted
  end

let model_release model ~txn =
  Hashtbl.iter
    (fun res holders ->
      Hashtbl.replace model res (List.filter (fun (id, _) -> id <> txn) holders))
    (Hashtbl.copy model);
  Hashtbl.iter
    (fun res holders -> if holders = [] then Hashtbl.remove model res)
    (Hashtbl.copy model)

let model_held model ~txn =
  Hashtbl.fold
    (fun res holders acc ->
      match List.find_opt (fun (id, _) -> id = txn) holders with
      | Some (_, m) -> (res, m) :: acc
      | None -> acc)
    model []

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (frequency
         [
           ( 4,
             map3
               (fun txn r x ->
                 `Acquire (txn, r, if x then Lock.Exclusive else Lock.Shared))
               (int_range 1 4)
               (int_range 0 (Array.length prop_resources - 1))
               bool );
           (1, map (fun txn -> `Release txn) (int_range 1 4));
         ]))

let same_outcome a b =
  match a, b with
  | Lock.Granted, Lock.Granted -> true
  | Lock.Conflict xs, Lock.Conflict ys ->
    List.sort_uniq compare xs = List.sort_uniq compare ys
  | _ -> false

let check_agreement t model =
  (* no holder lost or duplicated: per txn, held = model held, dup-free *)
  List.for_all
    (fun txn ->
      let real = List.sort compare (Lock.held t ~txn) in
      let modeled = List.sort compare (model_held model ~txn) in
      let dedup = List.sort_uniq compare real in
      real = modeled && real = dedup)
    [ 1; 2; 3; 4 ]
  && (* the two-mode matrix: an exclusive holder is always alone *)
  Hashtbl.fold
    (fun _ holders ok ->
      ok
      && (not (List.exists (fun (_, m) -> m = Lock.Exclusive) holders)
          || List.length holders <= 1))
    model true
  && Lock.active_locks t = Hashtbl.length model

let prop_holders =
  QCheck.Test.make ~name:"no holder lost or duplicated; matrix holds" ~count:300
    (QCheck.make gen_ops ~print:(fun ops ->
         String.concat "; "
           (List.map
              (function
                | `Acquire (txn, r, m) ->
                  Printf.sprintf "acquire t%d %s %s" txn
                    (Lock.resource_to_string prop_resources.(r))
                    (match m with Lock.Exclusive -> "X" | Lock.Shared -> "S")
                | `Release txn -> Printf.sprintf "release t%d" txn)
              ops)))
    (fun ops ->
      let t = Lock.create () in
      let model = Hashtbl.create 8 in
      List.for_all
        (fun op ->
          (match op with
           | `Acquire (txn, r, mode) ->
             let res = prop_resources.(r) in
             let real = Lock.acquire t ~txn res mode in
             let modeled = model_acquire model ~txn res mode in
             same_outcome real modeled
           | `Release txn ->
             Lock.release_all t ~txn;
             model_release model ~txn;
             true)
          && check_agreement t model)
        ops)

(* Domain-safety smoke: four domains hammer overlapping resources with
   exclusive acquire/release cycles; afterwards nothing may be leaked and
   a fresh transaction must see every resource free. *)
let test_concurrent_stress () =
  let t = Lock.create () in
  let worker txn =
    Domain.spawn (fun () ->
        let rng = Random.State.make [| txn |] in
        for _ = 1 to 500 do
          let res = prop_resources.(Random.State.int rng (Array.length prop_resources)) in
          (match Lock.acquire t ~txn res Lock.Exclusive with
           | Lock.Granted -> Lock.release_all t ~txn
           | Lock.Conflict _ -> ())
        done;
        Lock.release_all t ~txn)
  in
  let doms = List.map worker [ 1; 2; 3; 4 ] in
  List.iter Domain.join doms;
  check int_ "no leaked locks" 0 (Lock.active_locks t);
  Array.iter
    (fun res ->
      check bool_ "free after stress" true
        (granted (Lock.acquire t ~txn:9 res Lock.Exclusive)))
    prop_resources

(* ---- footprint dispatch: conflicting messages never run together ----

   The dispatcher is what keeps footprint-driven dispatch safe: two rids
   whose conflict resource sets overlap must never both be in flight.
   Pinned regression first, then a qcheck model over arbitrary
   schedule/next/complete interleavings with footprint-style resource
   sets (queue and slice strings, including the empty set). *)

module Dispatch = Demaq.Engine.Dispatch

let test_dispatch_footprint_disjoint () =
  let d = Dispatch.create () in
  (* rids 1 and 3 write queue o1; rid 2 only writes o2 *)
  Dispatch.schedule d ~priority:0 ~resources:[ "q:o1" ] 1;
  Dispatch.schedule d ~priority:0 ~resources:[ "q:o2" ] 2;
  Dispatch.schedule d ~priority:0 ~resources:[ "q:o1"; "q:o2" ] 3;
  check bool_ "first out" true (Dispatch.next d = Dispatch.Ready 1);
  (* disjoint footprint: runs alongside rid 1 *)
  check bool_ "disjoint runs concurrently" true (Dispatch.next d = Dispatch.Ready 2);
  (* rid 3 overlaps both running rids: parked, not handed out *)
  check bool_ "conflicting parked" true (Dispatch.next d = Dispatch.Busy);
  Dispatch.complete d 1;
  check bool_ "still blocked on rid 2" true (Dispatch.next d = Dispatch.Busy);
  Dispatch.complete d 2;
  check bool_ "revived once both free" true (Dispatch.next d = Dispatch.Ready 3);
  Dispatch.complete d 3;
  check bool_ "drained" true (Dispatch.next d = Dispatch.Empty)

let fp_resources = [| "q:a"; "q:b"; "s:sl/k1"; "s:sl/k2" |]

let fp_subset mask =
  List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list fp_resources)

let gen_dispatch_ops =
  QCheck.Gen.(
    list_size (int_range 1 80)
      (frequency
         [
           ( 3,
             map2 (fun mask prio -> `Schedule (mask land 15, prio)) (int_range 0 15)
               (int_range 0 2) );
           (3, return `Next);
           (2, map (fun k -> `Complete k) (int_range 0 3));
         ]))

let print_dispatch_ops ops =
  String.concat "; "
    (List.map
       (function
         | `Schedule (mask, prio) ->
           Printf.sprintf "schedule p%d {%s}" prio (String.concat "," (fp_subset mask))
         | `Next -> "next"
         | `Complete k -> Printf.sprintf "complete #%d" k)
       ops)

let disjoint a b = not (List.exists (fun r -> List.mem r b) a)

let prop_dispatch_disjoint =
  QCheck.Test.make
    ~name:"dispatcher never runs overlapping footprints concurrently" ~count:300
    (QCheck.make gen_dispatch_ops ~print:print_dispatch_ops)
    (fun ops ->
      let d = Dispatch.create () in
      let resources_of = Hashtbl.create 16 in
      let running = ref [] in
      let scheduled = ref 0 and finished = ref 0 in
      let next_rid = ref 0 in
      let take () =
        match Dispatch.next d with
        | Dispatch.Ready rid ->
          let res = Hashtbl.find resources_of rid in
          (* the invariant: a handed-out rid conflicts with nothing in flight *)
          if not (List.for_all (fun (_, r) -> disjoint res r) !running) then
            failwith
              (Printf.sprintf "rid %d dispatched over a conflicting in-flight rid" rid);
          running := (rid, res) :: !running;
          true
        | Dispatch.Busy ->
          if !running = [] then failwith "Busy with nothing in flight";
          false
        | Dispatch.Empty -> false
      in
      List.iter
        (function
          | `Schedule (mask, prio) ->
            incr next_rid;
            let rid = !next_rid in
            Hashtbl.replace resources_of rid (fp_subset mask);
            Dispatch.schedule d ~priority:prio ~resources:(fp_subset mask) rid;
            incr scheduled
          | `Next -> ignore (take ())
          | `Complete k ->
            (match !running with
             | [] -> ()
             | l ->
               let rid, _ = List.nth l (k mod List.length l) in
               Dispatch.complete d rid;
               running := List.filter (fun (r, _) -> r <> rid) l;
               incr finished))
        ops;
      (* drain: everything scheduled must eventually be handed out exactly
         once — parked entries revive as their conflicts clear *)
      let guard = ref 0 in
      while
        incr guard;
        if !guard > 10_000 then failwith "drain did not terminate";
        (match !running with
         | (rid, _) :: rest ->
           Dispatch.complete d rid;
           running := rest;
           incr finished
         | [] -> ());
        take () || !running <> []
      do
        ()
      done;
      !finished = !scheduled && Dispatch.pending d = 0)

let suite =
  [
    ("shared locks compatible", `Quick, test_shared_compatible);
    ("exclusive blocks", `Quick, test_exclusive_blocks);
    ("re-entrant and upgrade", `Quick, test_reentrant_and_upgrade);
    ("upgrade blocked by other reader", `Quick, test_upgrade_blocked_by_other_reader);
    ("release all", `Quick, test_release_all);
    ("slice lock independence", `Quick, test_slice_independence);
    ("deadlock detection", `Quick, test_deadlock_detection);
    ("three-party deadlock", `Quick, test_deadlock_three_party);
    ("resource names", `Quick, test_resource_names);
    QCheck_alcotest.to_alcotest prop_holders;
    ("concurrent stress", `Quick, test_concurrent_stress);
    ("dispatcher: footprint disjointness (pinned)", `Quick,
     test_dispatch_footprint_disjoint);
    QCheck_alcotest.to_alcotest prop_dispatch_disjoint;
  ]

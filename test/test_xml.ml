(* Tests for lib/xml: tree model, parser, serializer, schema. *)

module Name = Demaq.Xml.Name
module Tree = Demaq.Xml.Tree
module Parser = Demaq.Xml.Parser
module Serializer = Demaq.Xml.Serializer
module Schema = Demaq.Xml.Schema

let contains_sub ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check = Alcotest.check
let string_ = Alcotest.string
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let parse = Parser.parse
let to_string = Serializer.to_string

let roundtrip s = to_string (parse s)

(* ---- names ---- *)

let test_name_roundtrip () =
  let n = Name.make ~uri:"http://x" "local" in
  check string_ "clark" "{http://x}local" (Name.to_string n);
  check bool_ "of_string inverse" true (Name.equal n (Name.of_string "{http://x}local"));
  check string_ "no ns" "plain" (Name.to_string (Name.of_string "plain"))

let test_name_compare () =
  let a = Name.make ~uri:"a" "x" and b = Name.make ~uri:"b" "x" in
  check bool_ "uri ordered first" true (Name.compare a b < 0);
  check int_ "equal" 0 (Name.compare a a)

(* ---- parser ---- *)

let test_parse_simple () =
  check string_ "roundtrip" "<a><b>hi</b></a>" (roundtrip "<a><b>hi</b></a>")

let test_parse_attributes () =
  let t = parse {|<a x="1" y='two'/>|} in
  check (Alcotest.option string_) "x" (Some "1") (Tree.attribute_value t "x");
  check (Alcotest.option string_) "y" (Some "two") (Tree.attribute_value t "y");
  check (Alcotest.option string_) "missing" None (Tree.attribute_value t "z")

let test_parse_entities () =
  let t = parse "<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>" in
  check string_ "decoded" "<>&\"'AB" (Tree.tree_string_value t)

let test_parse_cdata () =
  let t = parse "<a><![CDATA[<not-a-tag> & raw]]></a>" in
  check string_ "cdata" "<not-a-tag> & raw" (Tree.tree_string_value t)

let test_parse_comments_pis () =
  let t = parse "<a><!--note--><?target data?><b/></a>" in
  match t with
  | Tree.Element e ->
    check int_ "children" 3 (List.length e.Tree.children);
    (match e.Tree.children with
     | [ Tree.Comment c; Tree.Pi { target; data }; Tree.Element _ ] ->
       check string_ "comment" "note" c;
       check string_ "pi target" "target" target;
       check string_ "pi data" "data" data
     | _ -> Alcotest.fail "unexpected shape")
  | _ -> Alcotest.fail "not an element"

let test_parse_prolog_doctype () =
  let t =
    parse
      {|<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE doc [ <!ELEMENT doc (#PCDATA)> ]>
<!-- leading comment -->
<doc>x</doc><!-- trailing -->|}
  in
  check string_ "root" "doc" (Name.local (Option.get (Tree.element_name t)))

let test_parse_whitespace_strip () =
  let t = parse "<a>\n  <b/>\n  <c/>\n</a>" in
  (match t with
   | Tree.Element e -> check int_ "stripped" 2 (List.length e.Tree.children)
   | _ -> Alcotest.fail "no element");
  let t = Parser.parse ~preserve_space:true "<a>\n  <b/>\n</a>" in
  match t with
  | Tree.Element e -> check int_ "preserved" 3 (List.length e.Tree.children)
  | _ -> Alcotest.fail "no element"

let test_parse_namespaces () =
  let t =
    parse
      {|<root xmlns="http://default" xmlns:p="http://pre"><p:child a="1" p:b="2"/></root>|}
  in
  let root_name = Option.get (Tree.element_name t) in
  check string_ "default ns applies" "http://default" (Name.uri root_name);
  match t with
  | Tree.Element e -> (
    match e.Tree.children with
    | [ Tree.Element c ] ->
      check string_ "prefixed child" "http://pre" (Name.uri c.Tree.name);
      let attr_ns =
        List.map
          (fun a -> (Name.local a.Tree.attr_name, Name.uri a.Tree.attr_name))
          c.Tree.attrs
      in
      (* unprefixed attributes take no namespace, prefixed take theirs *)
      check bool_ "a no-ns" true (List.mem ("a", "") attr_ns);
      check bool_ "b prefixed" true (List.mem ("b", "http://pre") attr_ns)
    | _ -> Alcotest.fail "no child")
  | _ -> Alcotest.fail "no element"

let test_parse_errors () =
  let fails s =
    match Parser.parse_result s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %s" s
  in
  fails "<a><b></a>";
  fails "<a";
  fails "no markup";
  fails "<a>&unknown;</a>";
  fails "<a></a><b></b>";
  fails "<a foo></a>"

let test_parse_error_position () =
  match Parser.parse_result "<a>\n<b></c>\n</a>" with
  | Error msg ->
    check bool_ "mentions line 2" true
      (contains_sub ~sub:"2:" msg)
  | Ok _ -> Alcotest.fail "expected error"

(* ---- serializer ---- *)

let test_escaping () =
  let t = Tree.elem "a" ~attrs:[ ("k", "x\"<>&") ] [ Tree.text "<&>" ] in
  check string_ "escaped" {|<a k="x&quot;&lt;&gt;&amp;">&lt;&amp;&gt;</a>|} (to_string t)

let test_serialize_ns () =
  let t =
    Tree.elem_ns
      (Name.make ~uri:"http://x" "a")
      [ Tree.elem_ns (Name.make ~uri:"http://x" "b") [] ]
  in
  let s = to_string t in
  check bool_ "has decl" true (contains_sub ~sub:"xmlns:ns1=\"http://x\"" s);
  (* re-parsing yields the same expanded names *)
  let t' = parse s in
  check bool_ "roundtrip ns" true (Tree.equal_tree t t')

let test_pretty () =
  let t = parse "<a><b>x</b><c><d/></c></a>" in
  let pretty = Serializer.to_string_pretty t in
  check bool_ "multiline" true (String.contains pretty '\n');
  check bool_ "reparses equal" true (Tree.equal_tree t (parse pretty))

let test_decl () =
  let s = Serializer.to_string ~decl:true (parse "<a/>") in
  check bool_ "decl" true (contains_sub ~sub:"<?xml" (String.sub s 0 5))

(* ---- tree navigation ---- *)

let test_navigation () =
  let t = parse "<a><b>1</b><c><b>2</b></c></a>" in
  let doc = Tree.doc t in
  let root = Tree.root_node doc in
  let all = Tree.descendants root in
  let elements = List.filter Tree.is_element all in
  check int_ "elements" 4 (List.length elements);
  let bs =
    List.filter
      (fun n ->
        match Tree.node_name n with Some nm -> Name.local nm = "b" | None -> false)
      all
  in
  check int_ "two b's" 2 (List.length bs);
  (match bs with
   | [ b1; b2 ] ->
     check bool_ "doc order" true (Tree.doc_order b1 b2 < 0);
     check string_ "string values" "1" (Tree.string_value b1);
     check string_ "string values" "2" (Tree.string_value b2);
     let p = Option.get (Tree.parent b2) in
     check string_ "parent of b2" "c" (Name.local (Option.get (Tree.node_name p)))
   | _ -> Alcotest.fail "expected two b elements");
  check string_ "doc string value" "12" (Tree.string_value root)

let test_attributes_nodes () =
  let t = parse {|<a x="1" y="2"><b/></a>|} in
  let doc = Tree.doc t in
  let a = List.hd (Tree.children (Tree.root_node doc)) in
  let attrs = Tree.attributes a in
  check int_ "two attrs" 2 (List.length attrs);
  let b = List.hd (Tree.children a) in
  (* attributes order before children *)
  check bool_ "attr < child" true (Tree.doc_order (List.hd attrs) b < 0);
  check string_ "attr value" "1" (Tree.string_value (List.hd attrs));
  (* descendants never include attributes *)
  check bool_ "no attrs in descendants" true
    (List.for_all
       (fun n -> match Tree.focus n with Tree.Fattribute _ -> false | _ -> true)
       (Tree.descendants (Tree.root_node doc)))

let test_equal_tree () =
  let a = parse {|<a x="1" y="2"><b/></a>|} in
  let b = parse {|<a y="2" x="1"><b/></a>|} in
  let c = parse {|<a x="1"><b/></a>|} in
  check bool_ "attr order irrelevant" true (Tree.equal_tree a b);
  check bool_ "missing attr differs" false (Tree.equal_tree a c)

(* ---- schema ---- *)

let schema_src = {|
element offerRequest { requestID, customerID, items }
element items { item* }
element item { text }
element note { mixed }
element flag { empty }
element pair { first, second? }
|}

let schema () =
  match Schema.parse schema_src with
  | Ok s -> s
  | Error e -> Alcotest.failf "schema parse: %s" e

let valid s doc = Result.is_ok (Schema.validate s (parse doc))

let test_schema_valid () =
  let s = schema () in
  check bool_ "ok doc" true
    (valid s
       "<offerRequest><requestID>r</requestID><customerID>c</customerID><items><item>i</item><item>j</item></items></offerRequest>");
  check bool_ "empty star ok" true
    (valid s
       "<offerRequest><requestID>r</requestID><customerID>c</customerID><items/></offerRequest>")

let test_schema_violations () =
  let s = schema () in
  check bool_ "missing required" false
    (valid s "<offerRequest><customerID>c</customerID><items/></offerRequest>");
  check bool_ "wrong order" false
    (valid s
       "<offerRequest><customerID>c</customerID><requestID>r</requestID><items/></offerRequest>");
  check bool_ "text only" false (valid s "<item><sub/></item>");
  check bool_ "empty" false (valid s "<flag>x</flag>");
  check bool_ "optional missing ok" true (valid s "<pair><first/></pair>");
  check bool_ "optional too many" false
    (valid s "<pair><first/><second/><second/></pair>");
  check bool_ "undeclared elements open" true (valid s "<whatever><x/></whatever>");
  check bool_ "mixed anything" true (valid s "<note>text <b/> more</note>")

let test_schema_root_restriction () =
  let s = schema () in
  check bool_ "allowed root" true
    (Result.is_ok (Schema.root_allowed s [ "item" ] (parse "<item>x</item>")));
  check bool_ "wrong root" false
    (Result.is_ok (Schema.root_allowed s [ "item" ] (parse "<note/>")))

let test_schema_parse_errors () =
  check bool_ "garbage" true (Result.is_error (Schema.parse "element x { !!! }"));
  check bool_ "unterminated" true (Result.is_error (Schema.parse "element x { a, b"))

let test_schema_example () =
  (* generated samples must themselves validate against the schema that
     produced them (that is what lets the load generator synthesize
     admissible ingress messages from deployed queue schemas) *)
  let src =
    {|
element order { orderID, customerID, priority?, items }
element orderID { text }
element customerID { text }
element priority { text }
element items { item+ }
element item { sku, qty }
element sku { text }
element qty { text }
|}
  in
  let s =
    match Schema.parse src with
    | Ok s -> s
    | Error e -> Alcotest.failf "schema parse: %s" e
  in
  (match Schema.example s "order" with
  | None -> Alcotest.fail "no example produced"
  | Some doc ->
    check bool_ "example validates" true (Result.is_ok (Schema.validate s doc));
    check bool_ "rooted correctly" true
      (Result.is_ok (Schema.root_allowed s [ "order" ] doc)));
  (* varying the seed still validates, and produces different documents *)
  let render v =
    match Schema.example ~vary:v s "order" with
    | Some doc -> Serializer.to_string doc
    | None -> Alcotest.fail "no example"
  in
  List.iter
    (fun v ->
      match Schema.example ~vary:v s "order" with
      | Some doc ->
        check bool_
          (Printf.sprintf "vary %d validates" v)
          true
          (Result.is_ok (Schema.validate s doc))
      | None -> Alcotest.fail "no example")
    [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  check bool_ "variation changes the document" true (render 0 <> render 1);
  (* a recursive schema terminates at the depth bound *)
  let rec_s =
    match Schema.parse "element tree { label, tree? } element label { text }" with
    | Ok s -> s
    | Error e -> Alcotest.failf "schema parse: %s" e
  in
  check bool_ "recursive schema yields a doc" true
    (Option.is_some (Schema.example rec_s "tree"));
  check bool_ "unknown element" true (Schema.example s "nothere" = None)

(* ---- qcheck properties ---- *)

let gen_tree =
  let open QCheck.Gen in
  let leaf_name = oneofl [ "a"; "b"; "c"; "order"; "item" ] in
  let text_gen = oneofl [ "x"; "hello world"; "<&>\""; "42"; "" ] in
  fix
    (fun self depth ->
      if depth = 0 then map Tree.text text_gen
      else
        frequency
          [
            (2, map Tree.text text_gen);
            ( 3,
              map3
                (fun name attrs children ->
                  let attrs =
                    List.sort_uniq (fun (a, _) (b, _) -> compare a b) attrs
                  in
                  Tree.elem name ~attrs children)
                leaf_name
                (small_list (pair (oneofl [ "k"; "v" ]) text_gen))
                (list_size (int_bound 3) (self (depth - 1))) );
          ])
    2

let arb_tree =
  QCheck.make gen_tree ~print:(fun t -> Serializer.to_string t)

(* Text nodes generated above may be empty or whitespace-only; normalize by
   merging/dropping for comparison the same way the parser does. *)
let rec normalize t =
  match t with
  | Tree.Element e ->
    let children =
      List.filter_map
        (fun c ->
          match c with
          | Tree.Text s when String.trim s = "" -> None
          | c -> Some (normalize c))
        e.Tree.children
    in
    (* merge adjacent text *)
    let rec merge = function
      | Tree.Text a :: Tree.Text b :: rest -> merge (Tree.Text (a ^ b) :: rest)
      | x :: rest -> x :: merge rest
      | [] -> []
    in
    Tree.Element { e with Tree.children = merge children }
  | t -> t

let prop_roundtrip =
  QCheck.Test.make ~name:"serialize/parse roundtrip" ~count:300 arb_tree (fun t ->
      let t = normalize (Tree.elem "root" [ t ]) in
      Tree.equal_tree t (parse (to_string t)))

(* Pretty printing reindents mixed content, so compare modulo surrounding
   whitespace in text nodes. *)
let rec trim_text t =
  match t with
  | Tree.Element e ->
    let children =
      List.filter_map
        (fun c ->
          match trim_text c with
          | Tree.Text s when String.trim s = "" -> None
          | c -> Some c)
        e.Tree.children
    in
    Tree.Element { e with Tree.children }
  | Tree.Text s -> Tree.Text (String.trim s)
  | t -> t

let prop_pretty_roundtrip =
  QCheck.Test.make ~name:"pretty serialize preserves element structure" ~count:200
    arb_tree (fun t ->
      let t = normalize (Tree.elem "root" [ t ]) in
      Tree.equal_tree (trim_text t) (trim_text (normalize (parse (Serializer.to_string_pretty t)))))

let prop_doc_order_total =
  QCheck.Test.make ~name:"doc order is a total order on descendants" ~count:100
    arb_tree (fun t ->
      let doc = Tree.doc (normalize (Tree.elem "root" [ t ])) in
      let nodes = Tree.descendant_or_self (Tree.root_node doc) in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let ab = Tree.doc_order a b and ba = Tree.doc_order b a in
              (ab = 0) = (ba = 0) && (ab < 0) = (ba > 0))
            nodes)
        nodes)

let suite =
  [
    ("name roundtrip", `Quick, test_name_roundtrip);
    ("name compare", `Quick, test_name_compare);
    ("parse simple", `Quick, test_parse_simple);
    ("parse attributes", `Quick, test_parse_attributes);
    ("parse entities", `Quick, test_parse_entities);
    ("parse cdata", `Quick, test_parse_cdata);
    ("parse comments and PIs", `Quick, test_parse_comments_pis);
    ("parse prolog and doctype", `Quick, test_parse_prolog_doctype);
    ("whitespace stripping", `Quick, test_parse_whitespace_strip);
    ("namespaces", `Quick, test_parse_namespaces);
    ("parse errors", `Quick, test_parse_errors);
    ("parse error positions", `Quick, test_parse_error_position);
    ("escaping", `Quick, test_escaping);
    ("serialize namespaces", `Quick, test_serialize_ns);
    ("pretty printing", `Quick, test_pretty);
    ("xml declaration", `Quick, test_decl);
    ("navigation", `Quick, test_navigation);
    ("attribute nodes", `Quick, test_attributes_nodes);
    ("structural equality", `Quick, test_equal_tree);
    ("schema: valid documents", `Quick, test_schema_valid);
    ("schema: violations", `Quick, test_schema_violations);
    ("schema: root restriction", `Quick, test_schema_root_restriction);
    ("schema: parse errors", `Quick, test_schema_parse_errors);
    ("schema: generated example validates", `Quick, test_schema_example);
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_pretty_roundtrip;
    QCheck_alcotest.to_alcotest prop_doc_order_total;
  ]

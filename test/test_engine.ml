(* Tests for the Demaq server: the §3.1 execution model, the scheduler,
   echo-queue timers, error handling (§3.6), gateways and recovery. *)

module Tree = Demaq.Xml.Tree
module Value = Demaq.Value
module Store = Demaq.Store.Message_store
module Wal = Demaq.Store.Wal
module Message = Demaq.Message
module Net = Demaq.Network
module S = Demaq.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let xml = Demaq.xml

let bodies srv q =
  List.map (fun m -> Demaq.xml_to_string (Message.body m)) (S.queue_contents srv q)

let inject_ok ?props srv queue payload =
  match S.inject srv ?props ~queue (xml payload) with
  | Ok m -> m
  | Error e -> Alcotest.failf "inject: %s" (Demaq.Mq.Queue_manager.error_to_string e)

(* ---- basic rule execution ---- *)

let ping_pong = {|
create queue in kind basic mode persistent
create queue out kind basic mode persistent
create rule pong for in
  if (//ping) then do enqueue <pong>{string(//ping)}</pong> into out
|}

let test_basic_flow () =
  let srv = S.deploy ping_pong in
  ignore (inject_ok srv "in" "<ping>x</ping>");
  let n = S.run srv in
  check int_ "two messages processed" 2 n;
  check bool_ "pong produced" true (bodies srv "out" = [ "<pong>x</pong>" ]);
  let st = S.stats srv in
  check int_ "created" 2 st.S.messages_created;
  check int_ "no errors" 0 st.S.errors_raised

let test_exactly_once () =
  let srv = S.deploy ping_pong in
  ignore (inject_ok srv "in" "<ping>1</ping>");
  ignore (S.run srv);
  (* a second run must not reprocess anything *)
  check int_ "idle" 0 (S.run srv);
  check int_ "still one pong" 1 (List.length (bodies srv "out"));
  check bool_ "all processed" true
    (List.for_all (fun m -> m.Message.processed) (S.queue_contents srv "in"))

let test_step_idle () =
  let srv = S.deploy ping_pong in
  (match S.step srv with
   | S.Idle -> ()
   | S.Processed _ -> Alcotest.fail "expected idle");
  ignore (inject_ok srv "in" "<ping>1</ping>");
  match S.step srv with
  | S.Processed m -> check string_ "processed the ping" "in" m.Message.queue
  | S.Idle -> Alcotest.fail "expected processing"

let test_rule_cascade () =
  (* chained queues: a -> b -> c *)
  let srv =
    S.deploy
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create queue c kind basic mode persistent
        create rule ab for a if (//m) then do enqueue <m2/> into b
        create rule bc for b if (//m2) then do enqueue <m3/> into c|}
  in
  ignore (inject_ok srv "a" "<m/>");
  ignore (S.run srv);
  check bool_ "cascade reached c" true (bodies srv "c" = [ "<m3/>" ])

let test_multiple_rules_same_queue () =
  let srv =
    S.deploy
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create rule r1 for a if (//m) then do enqueue <from1/> into b
        create rule r2 for a if (//m) then do enqueue <from2/> into b|}
  in
  ignore (inject_ok srv "a" "<m/>");
  ignore (S.run srv);
  check bool_ "both rules fired in order" true
    (bodies srv "b" = [ "<from1/>"; "<from2/>" ])

(* ---- scheduler priorities (§4.4.2) ---- *)

let test_priority_order () =
  let srv =
    S.deploy
      {|create queue low kind basic mode persistent priority 0
        create queue high kind basic mode persistent priority 10
        create queue log kind basic mode persistent
        create rule rl for low if (//m) then do enqueue <done q="low">{string(//m)}</done> into log
        create rule rh for high if (//m) then do enqueue <done q="high">{string(//m)}</done> into log|}
  in
  (* enqueue low first; high must overtake it *)
  ignore (inject_ok srv "low" "<m>1</m>");
  ignore (inject_ok srv "low" "<m>2</m>");
  ignore (inject_ok srv "high" "<m>3</m>");
  ignore (S.run srv);
  match bodies srv "log" with
  | [ first; second; third ] ->
    check bool_ "high first" true
      (let has s sub =
         let n = String.length sub in
         let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       has first "high" && has second "low" && has third "low");
    (* FIFO within the same priority *)
    check bool_ "fifo" true
      (let has s sub =
         let n = String.length sub in
         let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       has second ">1<" && has third ">2<")
  | l -> Alcotest.failf "expected 3 log entries, got %d" (List.length l)

(* ---- snapshot semantics (§3.1) ---- *)

let test_snapshot_semantics () =
  (* Two rules on the same queue: the second must NOT see messages the
     first one enqueued while processing the same trigger. *)
  let srv =
    S.deploy
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create queue log kind basic mode persistent
        create rule writer for a if (//m) then do enqueue <side/> into b
        create rule reader for a
          if (//m) then do enqueue <observed>{count(qs:queue("b"))}</observed> into log|}
  in
  ignore (inject_ok srv "a" "<m/>");
  (* process only the trigger message *)
  (match S.step srv with S.Processed _ -> () | S.Idle -> Alcotest.fail "no step");
  check bool_ "reader saw the pre-state" true
    (bodies srv "log" = [ "<observed>0</observed>" ])

let test_updates_apply_after_all_rules () =
  (* A rule enqueues into the queue it watches; the new message is
     processed in a later cycle, not recursively. *)
  let srv =
    S.deploy
      {|create queue a kind basic mode persistent
        create rule once for a
          if (//seed) then do enqueue <derived/> into a|}
  in
  ignore (inject_ok srv "a" "<seed/>");
  let n = S.run srv in
  check int_ "two cycles" 2 n;
  check int_ "no runaway" 2 (List.length (bodies srv "a"))

(* ---- slicing rules on the engine ---- *)

let slicing_program = {|
create queue q1 kind basic mode persistent
create queue q2 kind basic mode persistent
create queue joined kind basic mode persistent
create property key as xs:string fixed
  queue q1 value //k
  queue q2 value //k
  queue joined value string(@k)
create slicing pairs on key
create rule join for pairs
  if (qs:slice()[/left] and qs:slice()[/right] and not(qs:slice()[/pair])) then
    do enqueue <pair k="{string(qs:slicekey())}"/> into joined
create rule sweep for pairs
  if (qs:slice()[/pair]) then do reset
|}

let test_slice_join () =
  let srv = S.deploy slicing_program in
  ignore (inject_ok srv "q1" "<left><k>a</k></left>");
  ignore (S.run srv);
  check int_ "no join yet" 0 (List.length (bodies srv "joined"));
  ignore (inject_ok srv "q2" "<right><k>a</k></right>");
  ignore (S.run srv);
  check bool_ "joined once" true (bodies srv "joined" = [ {|<pair k="a"/>|} ]);
  (* different key stays separate *)
  ignore (inject_ok srv "q1" "<left><k>b</k></left>");
  ignore (S.run srv);
  check int_ "still one pair" 1 (List.length (bodies srv "joined"))

let test_slice_reset_and_gc () =
  let srv = S.deploy slicing_program in
  ignore (inject_ok srv "q1" "<left><k>a</k></left>");
  ignore (inject_ok srv "q2" "<right><k>a</k></right>");
  ignore (S.run srv);
  (* the sweep rule reset the slice once the pair message arrived; the
     left/right messages are processed and no longer in any live slice *)
  let collected = S.gc srv in
  check bool_ "gc collects the pair's inputs" true (collected >= 2);
  check int_ "q1 emptied" 0 (List.length (bodies srv "q1"));
  check int_ "q2 emptied" 0 (List.length (bodies srv "q2"))

(* ---- echo queues / timers (§2.1.3, Fig. 9) ---- *)

let echo_program = {|
create queue work kind basic mode persistent
create queue timer kind echo mode persistent
create queue alerts kind basic mode persistent
create rule startTimer for work
  if (//job) then
    do enqueue <timeoutNotification>{string(//job/id)}</timeoutNotification> into timer
      with timeout value 10
      with target value "alerts"
|}

let test_echo_queue () =
  let srv = S.deploy echo_program in
  ignore (inject_ok srv "work" "<job><id>j1</id></job>");
  ignore (S.run srv);
  check int_ "timer holds the message" 1 (List.length (bodies srv "timer"));
  check int_ "nothing fired yet" 0 (List.length (bodies srv "alerts"));
  S.advance_time srv 5;
  ignore (S.run srv);
  check int_ "still pending" 0 (List.length (bodies srv "alerts"));
  S.advance_time srv 10;
  ignore (S.run srv);
  check bool_ "timeout delivered" true
    (bodies srv "alerts" = [ "<timeoutNotification>j1</timeoutNotification>" ]);
  check int_ "timer fired stat" 1 (S.stats srv).S.timers_fired;
  (* firing again must not duplicate *)
  S.advance_time srv 100;
  ignore (S.run srv);
  check int_ "fired once" 1 (List.length (bodies srv "alerts"))

let test_echo_missing_props () =
  let srv =
    S.deploy
      {|create queue timer kind echo mode persistent
        create queue sysErrors kind basic mode persistent|}
  in
  (* inject directly without timeout/target: must raise a routed error *)
  let srv2 =
    S.deploy
      ~config:{ S.default_config with S.system_error_queue = Some "sysErrors" }
      {|create queue timer kind echo mode persistent
        create queue sysErrors kind basic mode persistent|}
  in
  ignore srv;
  ignore (S.inject srv2 ~queue:"timer" (xml "<x/>"));
  check int_ "error raised" 1 (S.stats srv2).S.errors_raised;
  check int_ "error message routed" 1 (List.length (bodies srv2 "sysErrors"))

(* ---- error handling (§3.6) ---- *)

let test_rule_error_routed () =
  let srv =
    S.deploy
      {|create queue a kind basic mode persistent
        create queue errs kind basic mode persistent
        create rule bad for a errorqueue errs
          if (//m) then do enqueue <x>{1 idiv 0}</x> into a|}
  in
  ignore (inject_ok srv "a" "<m/>");
  ignore (S.run srv);
  match S.queue_contents srv "errs" with
  | [ err ] ->
    let body = Demaq.xml_to_string (Message.body err) in
    let has sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length body && (String.sub body i n = sub || go (i + 1)) in
      go 0
    in
    check bool_ "kind element" true (has "<evaluationError/>");
    check bool_ "names the rule" true (has "<rule>bad</rule>");
    check bool_ "embeds the trigger" true (has "<initialMessage><m/></initialMessage>")
  | l -> Alcotest.failf "expected one error message, got %d" (List.length l)

let test_error_queue_hierarchy () =
  (* rule-level beats queue-level beats system-level *)
  let program level = Printf.sprintf
    {|create queue a kind basic mode persistent %s
      create queue ruleQ kind basic mode persistent
      create queue queueQ kind basic mode persistent
      create queue sysQ kind basic mode persistent
      create rule bad for a %s
        if (//m) then do enqueue <x>{1 idiv 0}</x> into a|}
    (if level = `Queue || level = `System then "errorqueue queueQ" else "")
    (if level = `Rule then "errorqueue ruleQ" else "")
  in
  let run level sysq =
    let cfg = { S.default_config with S.system_error_queue = sysq } in
    let srv = S.deploy ~config:cfg (program level) in
    ignore (inject_ok srv "a" "<m/>");
    ignore (S.run srv);
    (List.length (bodies srv "ruleQ"), List.length (bodies srv "queueQ"),
     List.length (bodies srv "sysQ"))
  in
  check bool_ "rule level wins" true (run `Rule (Some "sysQ") = (1, 0, 0));
  check bool_ "queue level next" true (run `Queue (Some "sysQ") = (0, 1, 0));
  check bool_ "system level last" true (run `System None = (0, 1, 0));
  let cfg = { S.default_config with S.system_error_queue = Some "sysQ" } in
  let srv =
    S.deploy ~config:cfg
      {|create queue a kind basic mode persistent
        create queue sysQ kind basic mode persistent
        create rule bad for a if (//m) then do enqueue <x>{1 idiv 0}</x> into a|}
  in
  ignore (inject_ok srv "a" "<m/>");
  ignore (S.run srv);
  check int_ "system queue catches" 1 (List.length (bodies srv "sysQ"))

let test_error_message_is_processable () =
  (* error queues are ordinary queues: rules react to failures (Fig. 10) *)
  let srv =
    S.deploy
      {|create queue a kind basic mode persistent
        create queue errs kind basic mode persistent
        create queue notify kind basic mode persistent
        create rule bad for a errorqueue errs
          if (//m) then do enqueue <x>{error("kaboom")}</x> into a
        create rule report for errs
          if (/error/evaluationError) then
            do enqueue <alert>{string(/error/description)}</alert> into notify|}
  in
  ignore (inject_ok srv "a" "<m/>");
  ignore (S.run srv);
  check bool_ "error handled by rule" true (bodies srv "notify" = [ "<alert>kaboom</alert>" ])

let test_schema_error_on_enqueue () =
  let srv =
    S.deploy
      {|create queue a kind basic mode persistent
        create queue strict kind basic mode persistent
          schema { element ok { text } }
        create queue errs kind basic mode persistent
        create rule forward for a errorqueue errs
          if (//m) then do enqueue <wrong><nested/></wrong> into strict|}
  in
  ignore (inject_ok srv "a" "<m/>");
  ignore (S.run srv);
  check int_ "nothing in strict" 0 (List.length (bodies srv "strict"));
  check int_ "schema violation routed" 1 (List.length (bodies srv "errs"))

let test_error_loop_protection () =
  (* an error raised while processing its own error queue is not re-queued
     into the same queue forever *)
  let srv =
    S.deploy
      {|create queue errs kind basic mode persistent errorqueue errs
        create rule explode for errs
          if (//x or //error) then do enqueue <y>{1 idiv 0}</y> into errs|}
  in
  ignore (inject_ok srv "errs" "<x/>");
  let n = S.run ~max_steps:50 srv in
  check bool_ "terminates" true (n < 50)

(* ---- gateways ---- *)

let gateway_program = {|
create queue out kind outgoingGateway mode persistent
  using WS-ReliableMessaging policy pol.xml
create queue replies kind incomingGateway mode persistent
create queue errs kind basic mode persistent
create queue work kind basic mode persistent
create rule send for work errorqueue errs
  if (//order) then do enqueue <request>{string(//order/id)}</request> into out
create rule got for replies
  if (//ack) then do enqueue <logged/> into work
|}

let test_gateway_roundtrip () =
  let net = Net.create () in
  Net.register net ~name:"partner" ~handler:(fun ~sender:_ body ->
      [ Tree.elem "ack" [ Tree.text (Tree.tree_string_value body) ] ]);
  let srv = S.deploy ~network:net gateway_program in
  S.bind_gateway srv ~queue:"out" ~endpoint:"partner" ~replies_to:"replies" ();
  ignore (inject_ok srv "work" "<order><id>7</id></order>");
  ignore (S.run srv);
  check bool_ "reply received" true (bodies srv "replies" = [ "<ack>7</ack>" ]);
  check int_ "one transmission" 1 (S.stats srv).S.transmissions;
  (* sender property recorded on the reply *)
  let reply = List.hd (S.queue_contents srv "replies") in
  check bool_ "sender prop" true
    (Message.property reply Demaq.Mq.Defs.Sysprop.sender = Some (Value.String "partner"))

let test_gateway_disconnected_error () =
  (* Fig. 10: a disconnected endpoint becomes an /error/disconnectedTransport
     message routed to the errorqueue of the rule that created the message.
     The gateway is reliable, so the error only appears once the retry
     budget is spent (retries are re-armed through the virtual clock). *)
  let net = Net.create () in
  Net.register net ~name:"partner" ~handler:(fun ~sender:_ _ -> []);
  Net.set_connected net "partner" false;
  let srv = S.deploy ~network:net gateway_program in
  S.bind_gateway srv ~queue:"out" ~endpoint:"partner" ();
  ignore (inject_ok srv "work" "<order><id>9</id></order>");
  ignore (S.run srv);
  check int_ "no error while retries remain" 0 (List.length (bodies srv "errs"));
  for _ = 1 to 8 do
    S.advance_time srv 10;
    ignore (S.run srv)
  done;
  check int_ "dead-lettered after retries" 1 (S.stats srv).S.dead_letters;
  match S.queue_contents srv "errs" with
  | [ err ] ->
    let body = Demaq.xml_to_string (Message.body err) in
    let has sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length body && (String.sub body i n = sub || go (i + 1)) in
      go 0
    in
    check bool_ "disconnectedTransport kind" true (has "<disconnectedTransport/>");
    check bool_ "initial message embedded" true (has "<request>9</request>");
    check bool_ "creating rule named" true (has "<rule>send</rule>")
  | l -> Alcotest.failf "expected one error, got %d" (List.length l)

let test_gateway_unresolvable () =
  let net = Net.create () in
  let cfg = { S.default_config with S.system_error_queue = Some "errs" } in
  let srv = S.deploy ~network:net ~config:cfg gateway_program in
  (* no binding, no endpoint registered under queue name *)
  ignore (inject_ok srv "work" "<order><id>1</id></order>");
  ignore (S.run srv);
  check int_ "name resolution error" 1 (List.length (bodies srv "errs"))

(* ---- recovery ---- *)

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-engine-%s-%d" tag (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let test_recovery_resumes_processing () =
  let dir = fresh_dir "resume" in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let srv = S.deploy ~store:st ping_pong in
  ignore (inject_ok srv "in" "<ping>a</ping>");
  ignore (inject_ok srv "in" "<ping>b</ping>");
  (* process only one, then "crash" *)
  ignore (S.step srv);
  Store.close st;
  (* restart: the unprocessed ping must be picked up again *)
  let st2 = Store.open_store cfg in
  let srv2 = S.deploy ~store:st2 ping_pong in
  ignore (S.run srv2);
  let all =
    List.sort compare (bodies srv2 "out")
  in
  check bool_ "both pongs exist exactly once" true
    (all = [ "<pong>a</pong>"; "<pong>b</pong>" ]);
  Store.close st2

let test_recovery_echo_timer () =
  let dir = fresh_dir "echo" in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let srv = S.deploy ~store:st echo_program in
  ignore (inject_ok srv "work" "<job><id>j9</id></job>");
  ignore (S.run srv);
  check int_ "registered, not fired" 0 (List.length (bodies srv "alerts"));
  Store.close st;
  (* restart: the pending timeout must be re-registered and fire *)
  let st2 = Store.open_store cfg in
  let srv2 = S.deploy ~store:st2 echo_program in
  S.advance_time srv2 1000;
  ignore (S.run srv2);
  check int_ "fires after restart" 1 (List.length (bodies srv2 "alerts"));
  Store.close st2

(* ---- config toggles ---- *)

let test_merged_plans_equivalent () =
  let run merged =
    let cfg = { S.default_config with S.merged_plans = merged } in
    let srv =
      S.deploy ~config:cfg
        {|create queue a kind basic mode persistent
          create queue b kind basic mode persistent
          create rule r1 for a if (//m) then do enqueue <x1/> into b
          create rule r2 for a if (//m) then do enqueue <x2/> into b|}
    in
    ignore (inject_ok srv "a" "<m/>");
    ignore (S.run srv);
    bodies srv "b"
  in
  check bool_ "merged = per-rule output" true (run true = run false)

let test_scan_vs_index_equivalent () =
  let run use_index =
    let cfg = { S.default_config with S.use_slice_index = use_index } in
    let srv = S.deploy ~config:cfg slicing_program in
    ignore (inject_ok srv "q1" "<left><k>z</k></left>");
    ignore (inject_ok srv "q2" "<right><k>z</k></right>");
    ignore (S.run srv);
    bodies srv "joined"
  in
  check bool_ "index = scan behaviour" true (run true = run false)

let test_gc_every () =
  let cfg = { S.default_config with S.gc_every = 1 } in
  let srv =
    S.deploy ~config:cfg
      {|create queue a kind basic mode persistent
        create rule noop for a if (//never) then do enqueue <x/> into a|}
  in
  ignore (inject_ok srv "a" "<m/>");
  ignore (inject_ok srv "a" "<m/>");
  ignore (S.run srv);
  (* messages are unsliced and processed: automatic GC collected them *)
  check bool_ "auto gc ran" true ((S.stats srv).S.gc_collected >= 1)

let test_deployment_errors () =
  (match S.deploy "create queue q kind bogus mode persistent" with
   | _ -> Alcotest.fail "expected deployment error"
   | exception S.Deployment_error _ -> ());
  match
    S.deploy
      {|create queue a kind basic mode persistent
        create rule r for ghost if (//x) then do enqueue <y/> into a|}
  with
  | _ -> Alcotest.fail "expected semantic deployment error"
  | exception S.Deployment_error msg ->
    check bool_ "mentions target" true
      (let n = String.length "ghost" in
       let rec go i = i + n <= String.length msg && (String.sub msg i n = "ghost" || go (i + 1)) in
       go 0)

let test_explain_available () =
  let srv = S.deploy ping_pong in
  check bool_ "explain mentions plan" true
    (let text = S.explain srv in
     let n = String.length "plan for in" in
     let rec go i = i + n <= String.length text && (String.sub text i n = "plan for in" || go (i + 1)) in
     go 0)

let suite =
  [
    ("basic rule flow", `Quick, test_basic_flow);
    ("exactly-once processing", `Quick, test_exactly_once);
    ("step on empty agenda", `Quick, test_step_idle);
    ("rule cascade", `Quick, test_rule_cascade);
    ("multiple rules per queue", `Quick, test_multiple_rules_same_queue);
    ("priority scheduling (§4.4.2)", `Quick, test_priority_order);
    ("snapshot semantics (§3.1)", `Quick, test_snapshot_semantics);
    ("updates apply after evaluation", `Quick, test_updates_apply_after_all_rules);
    ("slice join (Fig. 7 pattern)", `Quick, test_slice_join);
    ("slice reset + gc (Fig. 8 pattern)", `Quick, test_slice_reset_and_gc);
    ("echo queue timers (Fig. 9 pattern)", `Quick, test_echo_queue);
    ("echo queue missing properties", `Quick, test_echo_missing_props);
    ("rule errors become messages (§3.6)", `Quick, test_rule_error_routed);
    ("error queue hierarchy", `Quick, test_error_queue_hierarchy);
    ("error messages are processable (Fig. 10)", `Quick, test_error_message_is_processable);
    ("schema errors on enqueue", `Quick, test_schema_error_on_enqueue);
    ("error loop protection", `Quick, test_error_loop_protection);
    ("gateway roundtrip", `Quick, test_gateway_roundtrip);
    ("gateway disconnect error (Fig. 10)", `Quick, test_gateway_disconnected_error);
    ("gateway unresolvable endpoint", `Quick, test_gateway_unresolvable);
    ("recovery resumes processing", `Quick, test_recovery_resumes_processing);
    ("recovery re-registers echo timers", `Quick, test_recovery_echo_timer);
    ("merged plans equivalent", `Quick, test_merged_plans_equivalent);
    ("index vs scan equivalent", `Quick, test_scan_vs_index_equivalent);
    ("automatic gc", `Quick, test_gc_every);
    ("deployment errors", `Quick, test_deployment_errors);
    ("plan explain", `Quick, test_explain_available);
  ]

(* ---- execution tracing (§2.3.3 "tracing system behavior") ---- *)

let test_trace_records_activations () =
  let cfg = { S.default_config with S.trace_capacity = 10 } in
  let srv =
    S.deploy ~config:cfg
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create rule hit for a if (//m) then do enqueue <x/> into b
        create rule miss for a if (//nothing) then do enqueue <y/> into b|}
  in
  ignore (inject_ok srv "a" "<m/>");
  ignore (S.run srv);
  let entries = S.trace srv in
  check bool_ "has entries" true (List.length entries >= 2);
  let find rule = List.find (fun e -> e.S.tr_rule = rule) entries in
  check int_ "hit produced one update" 1 (find "hit").S.tr_updates;
  check int_ "miss produced none" 0 (find "miss").S.tr_updates;
  check string_ "queue recorded" "a" (find "hit").S.tr_queue;
  (* pretty printer is total *)
  List.iter (fun e -> ignore (Format.asprintf "%a" S.pp_trace_entry e)) entries

let test_trace_records_prefilter_skips () =
  let cfg = { S.default_config with S.trace_capacity = 10 } in
  let srv =
    S.deploy ~config:cfg
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create rule needsOther for a
          if (//neverThere) then do enqueue <x/> into b|}
  in
  ignore (inject_ok srv "a" "<m/>");
  ignore (S.run srv);
  check bool_ "skip traced" true
    (List.exists (fun e -> e.S.tr_skipped && e.S.tr_rule = "needsOther") (S.trace srv))

let test_trace_bounded () =
  let cfg = { S.default_config with S.trace_capacity = 5 } in
  let srv =
    S.deploy ~config:cfg
      {|create queue a kind basic mode persistent
        create rule r for a if (//m) then do enqueue <m2/> into a|}
  in
  for _ = 1 to 30 do
    ignore (inject_ok srv "a" "<m/>")
  done;
  ignore (S.run srv);
  check bool_ "bounded" true (List.length (S.trace srv) <= 5)

let test_trace_disabled_by_default () =
  let srv = S.deploy ping_pong in
  ignore (inject_ok srv "in" "<ping>x</ping>");
  ignore (S.run srv);
  check int_ "no trace" 0 (List.length (S.trace srv))

let suite =
  suite
  @ [
      ("trace records activations", `Quick, test_trace_records_activations);
      ("trace records prefilter skips", `Quick, test_trace_records_prefilter_skips);
      ("trace bounded", `Quick, test_trace_bounded);
      ("trace disabled by default", `Quick, test_trace_disabled_by_default);
    ]

(* ---- second batch: interplay of features ---- *)

let test_merged_plans_with_slicing_program () =
  (* the full slicing program behaves identically under merged plans *)
  let run merged =
    let cfg = { S.default_config with S.merged_plans = merged } in
    let srv = S.deploy ~config:cfg slicing_program in
    ignore (inject_ok srv "q1" "<left><k>m</k></left>");
    ignore (inject_ok srv "q2" "<right><k>m</k></right>");
    ignore (S.run srv);
    (bodies srv "joined", S.gc srv)
  in
  check bool_ "same results" true (run true = run false)

let test_error_message_schema () =
  (* the error schema has the Fig. 10 shape: kind marker, description,
     rule, queue, initialMessage *)
  let srv =
    S.deploy
      {|create queue a kind basic mode persistent
        create queue errs kind basic mode persistent
        create rule bad for a errorqueue errs
          if (//m) then do enqueue <x>{1 idiv 0}</x> into a|}
  in
  ignore (inject_ok srv "a" "<m/>");
  ignore (S.run srv);
  let err = List.hd (S.queue_contents srv "errs") in
  let body = Message.body err in
  check bool_ "root is error" true
    (match Tree.element_name body with
     | Some n -> Demaq.Xml.Name.local n = "error"
     | None -> false);
  List.iter
    (fun child ->
      check bool_ ("has " ^ child) true (Tree.find_child body child <> None))
    [ "evaluationError"; "description"; "rule"; "queue"; "initialMessage" ]

let test_evolution_preserves_timers () =
  (* pending echo timers survive an evolution *)
  let srv = S.deploy echo_program in
  ignore (inject_ok srv "work" "<job><id>j1</id></job>");
  ignore (S.run srv);
  (match
     S.evolve srv
       {|create queue audit kind basic mode persistent
         create rule log for alerts
           if (//timeoutNotification) then do enqueue <logged/> into audit|}
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  S.advance_time srv 20;
  ignore (S.run srv);
  check int_ "timer fired after evolution" 1 (List.length (bodies srv "alerts"));
  check int_ "new rule saw the timeout" 1 (List.length (bodies srv "audit"))

let test_queue_lock_granularity_config () =
  (* queue-level locking config executes correctly (bookkeeping path) *)
  let cfg = { S.default_config with S.lock_granularity = `Queue } in
  let srv = S.deploy ~config:cfg ping_pong in
  ignore (inject_ok srv "in" "<ping>q</ping>");
  ignore (S.run srv);
  check bool_ "processed under queue locks" true (bodies srv "out" = [ "<pong>q</pong>" ])

let test_pending_messages_counter () =
  let srv = S.deploy ping_pong in
  ignore (inject_ok srv "in" "<ping>1</ping>");
  ignore (inject_ok srv "in" "<ping>2</ping>");
  check int_ "two pending" 2 (S.pending_messages srv);
  ignore (S.run srv);
  check int_ "drained" 0 (S.pending_messages srv)

let test_inherited_props_through_echo () =
  (* properties propagate through the echo round trip (trigger chaining) *)
  let srv =
    S.deploy
      {|create queue start kind basic mode persistent
        create queue timer kind echo mode persistent
        create queue landed kind basic mode persistent
        create property flavour as xs:string inherited
          queue start, timer, landed value "plain"
        create rule arm for start
          if (//go) then
            do enqueue <wake/> into timer
              with timeout value 5 with target value "landed"|}
  in
  ignore
    (S.inject srv
       ~props:[ ("flavour", Demaq.Value.String "spicy") ]
       ~queue:"start" (xml "<go/>"));
  ignore (S.run srv);
  S.advance_time srv 6;
  ignore (S.run srv);
  match S.queue_contents srv "landed" with
  | [ m ] ->
    check bool_ "flavour inherited through echo" true
      (Message.property m "flavour" = Some (Demaq.Value.String "spicy"))
  | l -> Alcotest.failf "expected one landed message, got %d" (List.length l)

let suite =
  suite
  @ [
      ("merged plans with slicing program", `Quick, test_merged_plans_with_slicing_program);
      ("error message schema (Fig. 10 shape)", `Quick, test_error_message_schema);
      ("evolution preserves timers", `Quick, test_evolution_preserves_timers);
      ("queue lock granularity config", `Quick, test_queue_lock_granularity_config);
      ("pending message counter", `Quick, test_pending_messages_counter);
      ("inherited properties through echo", `Quick, test_inherited_props_through_echo);
    ]

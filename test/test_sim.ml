(* The deterministic simulation harness, tested from the outside: same
   schedule, same episode — bit for bit — plus pinned-seed regressions for
   the three schedule families that have historically found bugs
   (crash-restart with torn tails, endpoint partitions, seeded
   interleaving picks) and a self-test of the shrinker against a
   manufactured durability violation. *)

module Sim = Demaq.Sim.Sim
module Schedule = Demaq.Sim.Schedule

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let violations_of (o : Sim.outcome) =
  List.map (fun v -> v.Sim.invariant ^ ": " ^ v.Sim.detail) o.Sim.violations

let clean name (o : Sim.outcome) =
  check (Alcotest.list string_) (name ^ " holds all invariants") []
    (violations_of o)

let final_line (o : Sim.outcome) =
  match List.rev o.Sim.trace with
  | last :: _ -> last
  | [] -> Alcotest.fail "empty trace"

let contains s sub =
  let n = String.length sub in
  let last = String.length s - n in
  let rec go i = i <= last && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---- determinism ---- *)

let test_bit_reproducible () =
  (* the acceptance bar for every artifact this harness saves: running the
     same schedule twice (fresh store each time) produces identical traces
     and identical verdicts *)
  List.iter
    (fun seed ->
      let s = Schedule.generate ~seed () in
      let a = Sim.run s and b = Sim.run s in
      check (Alcotest.list string_)
        (Printf.sprintf "seed %d trace reproducible" seed)
        a.Sim.trace b.Sim.trace;
      check (Alcotest.list string_)
        (Printf.sprintf "seed %d verdict reproducible" seed)
        (violations_of a) (violations_of b))
    [ 1; 7; 42; 1000 ]

let test_generator_deterministic () =
  let a = Schedule.generate ~seed:99 ~events:60 () in
  let b = Schedule.generate ~seed:99 ~events:60 () in
  check string_ "same seed, same schedule" (Schedule.to_string a)
    (Schedule.to_string b);
  let c = Schedule.generate ~seed:100 ~events:60 () in
  check bool_ "different seed, different schedule" true
    (Schedule.to_string a <> Schedule.to_string c)

let test_roundtrip () =
  let s = Schedule.generate ~seed:12345 ~events:80 () in
  match Schedule.of_string (Schedule.to_string s) with
  | Error e -> Alcotest.fail e
  | Ok s' ->
    check int_ "seed survives" s.Schedule.seed s'.Schedule.seed;
    check bool_ "events survive" true (s.Schedule.events = s'.Schedule.events);
    (match Schedule.of_string "# comment\nseed 3\n\ninject qa\nstep 7\n" with
     | Ok p ->
       check int_ "comments and blanks skipped" 2
         (List.length p.Schedule.events)
     | Error e -> Alcotest.fail e);
    (match Schedule.of_string "seed 1\nfrobnicate\n" with
     | Ok _ -> Alcotest.fail "junk accepted"
     | Error e -> check bool_ "error names the line" true (contains e "line 2"))

let test_clean_sweep () =
  match Sim.sweep ~seed:500 ~iters:30 () with
  | Sim.Clean n -> check int_ "30 schedules clean" 30 n
  | Sim.Failed { seed; outcome; _ } ->
    Alcotest.fail
      (Printf.sprintf "seed %d violated: %s" seed
         (String.concat "; " (violations_of outcome)))

(* ---- pinned schedules ---- *)

(* Crash-restart: a durable message survives a capped torn tail, is
   re-processed exactly once after recovery, and its output appears. *)
let test_pinned_crash_restart () =
  let open Schedule in
  let s =
    {
      seed = 0;
      events =
        [
          Inject "qa";
          Inject "qb";
          Barrier;
          Crash 128;
          Step 0;
          Step 0;
          Step 0;
          Step 0;
          Barrier;
          Inject "qa";
          Crash 9999;
        ];
    }
  in
  let o = Sim.run s in
  clean "pinned crash-restart" o;
  let fin = final_line o in
  check bool_ ("one output in outq: " ^ fin) true (contains fin "outq=1");
  (* delivered twice: the second crash wipes the in-memory sent table, so
     recovery refills the gateway outbox and the reliable channel
     redelivers — at-least-once across incarnations, exactly-once within *)
  check bool_ ("qb delivered: " ^ fin) true (contains fin "delivered=2");
  check bool_ ("no errors: " ^ fin) true (contains fin "errs=0");
  (* both runs of the same pinned schedule agree line for line *)
  check (Alcotest.list string_) "pinned schedule reproducible" o.Sim.trace
    (Sim.run s).Sim.trace

(* Partition: transmissions fail while the endpoint is gone, retries are
   armed through the timer wheel, and the final drain (which reconnects)
   delivers everything with no dead letters. *)
let test_pinned_partition () =
  let open Schedule in
  let s =
    {
      seed = 0;
      events =
        [
          Inject "qb";
          Partition "partner";
          Step 0;
          Barrier;
          Advance 8;
          Inject "qb";
          Step 0;
          Barrier;
          Reconnect "partner";
          Advance 8;
        ];
    }
  in
  let o = Sim.run s in
  clean "pinned partition" o;
  let fin = final_line o in
  check bool_ ("both qb messages delivered: " ^ fin) true
    (contains fin "delivered=2");
  check bool_ ("nothing dead-lettered: " ^ fin) true
    (contains fin "dead-letters=0")

(* Interleaving: with work runnable in several queues at the same priority
   (qb and the gateway queue), the schedule's pick chooses which runs
   next; different picks give different (but individually deterministic
   and invariant-clean) interleavings, and the high-priority queue always
   preempts both. *)
let test_pinned_interleaving () =
  let open Schedule in
  let prefix = [ Inject "qb"; Inject "qb"; Step 0 ] in
  (* after the prefix: qb holds one unprocessed message, gw holds the
     produced request — two runnable queues at priority 0 *)
  let run_with k = Sim.run { seed = 0; events = prefix @ [ Step k; Step k ] } in
  let a = run_with 0 and b = run_with 1 in
  clean "interleaving pick 0" a;
  clean "interleaving pick 1" b;
  check bool_ "picks change the interleaving" true (a.Sim.trace <> b.Sim.trace);
  check (Alcotest.list string_) "pick 0 deterministic" a.Sim.trace
    (run_with 0).Sim.trace;
  check (Alcotest.list string_) "pick 1 deterministic" b.Sim.trace
    (run_with 1).Sim.trace;
  (* priority: with a qa message waiting, no pick may run qb or gw first *)
  let s =
    { seed = 0; events = [ Inject "qb"; Inject "qa"; Step 1; Step 0; Step 0 ] }
  in
  let o = Sim.run s in
  clean "priority preemption" o;
  let first_step =
    List.find (fun l -> contains l "step") o.Sim.trace
  in
  check bool_ ("qa runs first: " ^ first_step) true (contains first_step "qa")

(* ---- shrinker ---- *)

let test_shrinker () =
  (* blind tears skip the unsynced-tail cap, so this padded schedule
     destroys a synced commit — a manufactured durability violation the
     checker must flag and the shrinker must reduce to its 3-event core:
     inject, barrier (making it durable), crash (losing it) *)
  let open Schedule in
  let padded =
    {
      seed = 0;
      events =
        [
          Advance 3;
          Inject "qb";
          Step 4;
          Barrier;
          Inject "qa";
          Advance 2;
          Crash 4096;
          Step 1;
          Barrier;
          Reconnect "partner";
        ];
    }
  in
  let o = Sim.run ~blind_tear:true padded in
  check bool_ "padded schedule fails under blind tear" true
    (o.Sim.violations <> []);
  check bool_ "durability named" true
    (List.exists (fun v -> v.Sim.invariant = "durability") o.Sim.violations);
  let shrunk = Sim.shrink ~blind_tear:true padded in
  check bool_
    (Printf.sprintf "shrunk to a minimal core (%d events)"
       (List.length shrunk.Schedule.events))
    true
    (List.length shrunk.Schedule.events <= 3);
  check bool_ "shrunk schedule keeps the crash" true
    (List.exists
       (function Crash _ -> true | _ -> false)
       shrunk.Schedule.events);
  check bool_ "shrunk schedule still fails" true
    ((Sim.run ~blind_tear:true shrunk).Sim.violations <> []);
  (* honest tears are capped at the unsynced tail, so the very same
     schedule cannot lose the synced commit — the engine, not the
     checker, is what makes the sweep green *)
  clean "honest tear is capped" (Sim.run shrunk);
  (* a passing schedule comes back unchanged *)
  let ok = Schedule.generate ~seed:500 () in
  check bool_ "clean schedule not shrunk" true
    (Sim.shrink ok == ok)

let suite =
  [
    ("bit-reproducible runs", `Quick, test_bit_reproducible);
    ("generator is seed-deterministic", `Quick, test_generator_deterministic);
    ("schedule artifact round-trips", `Quick, test_roundtrip);
    ("30-seed sweep holds invariants", `Quick, test_clean_sweep);
    ("pinned: crash-restart", `Quick, test_pinned_crash_restart);
    ("pinned: partition and retry", `Quick, test_pinned_partition);
    ("pinned: seeded interleaving picks", `Quick, test_pinned_interleaving);
    ("shrinker reduces a blind-tear failure", `Quick, test_shrinker);
  ]

(* Crash-safety tests: seeded fault injection (Fault) driven through the
   engine. The contract under test is the one §3.1/§3.6 imply together:
   whatever goes wrong while a message is processed — evaluator exceptions,
   failures while pending updates are applied, torn WAL tails, abrupt
   restarts, partitioned endpoints — the transaction aborts cleanly, all
   locks are released, the failure becomes an error message, and the engine
   keeps running. *)

module Tree = Demaq.Xml.Tree
module Store = Demaq.Store.Message_store
module Wal = Demaq.Store.Wal
module Lock = Demaq.Store.Lock_manager
module Message = Demaq.Message
module Net = Demaq.Network
module S = Demaq.Server
module Fault = Demaq.Engine.Fault
module Clock = Demaq.Engine.Clock
module Value = Demaq.Value
module Sysprop = Demaq.Mq.Defs.Sysprop

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let xml = Demaq.xml

let bodies srv q =
  List.map (fun m -> Demaq.xml_to_string (Message.body m)) (S.queue_contents srv q)

let inject_ok ?props srv queue payload =
  match S.inject srv ?props ~queue (xml payload) with
  | Ok m -> m
  | Error e -> Alcotest.failf "inject: %s" (Demaq.Mq.Queue_manager.error_to_string e)

let active_locks srv = Lock.active_locks (Store.locks (S.store srv))

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-crash-%s-%d" tag (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

(* ---- evaluator exceptions ---- *)

let ping_pong = {|
create queue in kind basic mode persistent
create queue out kind basic mode persistent
create queue errs kind basic mode persistent
create rule pong for in errorqueue errs
  if (//ping) then do enqueue <pong>{string(//ping)}</pong> into out
|}

let test_eval_fault_aborts () =
  (* An arbitrary (non-Eval_error) exception during rule evaluation must
     abort the transaction, release every lock, surface as an evaluation
     error message, and leave the engine able to process the next
     message. *)
  let srv = S.deploy ping_pong in
  let f = Fault.create () in
  Fault.fail_on_eval f 1;
  S.set_fault srv (Some f);
  ignore (inject_ok srv "in" "<ping>doomed</ping>");
  ignore (inject_ok srv "in" "<ping>fine</ping>");
  ignore (S.run srv);
  check int_ "fault fired once" 1 (Fault.injected f);
  check bool_ "transaction aborted" true ((S.stats srv).S.txn_aborts >= 1);
  check int_ "lock table empty" 0 (active_locks srv);
  check int_ "failure became an error message" 1 (List.length (bodies srv "errs"));
  (* the faulted message produced nothing; the next one went through *)
  check bool_ "engine kept running" true (bodies srv "out" = [ "<pong>fine</pong>" ]);
  check int_ "idle afterwards" 0 (S.run srv)

let two_rules = {|
create queue in kind basic mode persistent
create queue out kind basic mode persistent
create queue errs kind basic mode persistent
create rule first for in errorqueue errs
  if (//ping) then do enqueue <a/> into out
create rule second for in errorqueue errs
  if (//ping) then do enqueue <b/> into out
|}

let test_apply_fault_rolls_back () =
  (* Both rules evaluate against the snapshot, then both pending updates
     apply in the same transaction. Failing the second application must
     also undo the first — no partially applied update list survives. *)
  let srv = S.deploy two_rules in
  let f = Fault.create () in
  Fault.fail_on_apply f 2;
  S.set_fault srv (Some f);
  ignore (inject_ok srv "in" "<ping/>");
  ignore (S.run srv);
  check int_ "fault fired" 1 (Fault.injected f);
  check int_ "first enqueue rolled back with the second" 0
    (List.length (bodies srv "out"));
  check int_ "error routed" 1 (List.length (bodies srv "errs"));
  check int_ "lock table empty" 0 (active_locks srv);
  (* disarmed, the same input processes normally *)
  Fault.disarm f;
  ignore (inject_ok srv "in" "<ping/>");
  ignore (S.run srv);
  check int_ "both updates applied after disarm" 2 (List.length (bodies srv "out"))

let test_flaky_evaluator_drains () =
  (* Random evaluator failures under load: every abort routes an error and
     nothing wedges — the agenda still drains and the lock table ends
     empty. *)
  let srv = S.deploy ping_pong in
  let f = Fault.create ~seed:7 () in
  Fault.set_eval_failure_rate f 0.3;
  S.set_fault srv (Some f);
  for i = 1 to 40 do
    ignore (inject_ok srv "in" (Printf.sprintf "<ping>%d</ping>" i))
  done;
  ignore (S.run srv);
  check bool_ "some faults actually fired" true (Fault.injected f >= 1);
  check int_ "aborts match injected faults" (Fault.injected f)
    (S.stats srv).S.txn_aborts;
  check int_ "every abort routed an error" (Fault.injected f)
    (List.length (bodies srv "errs"));
  check int_ "survivors all produced output" (40 - Fault.injected f)
    (List.length (bodies srv "out"));
  check int_ "lock table empty" 0 (active_locks srv);
  check int_ "agenda drained" 0 (S.pending_messages srv)

(* ---- transmission retry and dead-lettering ---- *)

let gateway_program = {|
create queue out kind outgoingGateway mode persistent
  using WS-ReliableMessaging policy pol.xml
create queue errs kind basic mode persistent
create queue work kind basic mode persistent
create rule send for work errorqueue errs
  if (//order) then do enqueue <request>{string(//order/id)}</request> into out
|}

let test_retry_after_reconnect () =
  (* A partitioned endpoint that comes back: the failed transmission is
     re-armed through the timer wheel and delivered after reconnection —
     exactly once, with no error message. *)
  let net = Net.create () in
  let received = ref [] in
  Net.register net ~name:"partner" ~handler:(fun ~sender:_ body ->
      received := Demaq.xml_to_string body :: !received;
      []);
  let srv = S.deploy ~network:net gateway_program in
  S.bind_gateway srv ~queue:"out" ~endpoint:"partner" ();
  Fault.partition net "partner";
  ignore (inject_ok srv "work" "<order><id>44</id></order>");
  ignore (S.run srv);
  check int_ "nothing delivered while partitioned" 0 (List.length !received);
  Fault.reconnect net "partner";
  S.advance_time srv 10;
  ignore (S.run srv);
  check bool_ "delivered exactly once after reconnect" true
    (!received = [ "<request>44</request>" ]);
  check bool_ "a retry was used" true ((S.stats srv).S.transmit_retries >= 1);
  check int_ "no dead letter" 0 (S.stats srv).S.dead_letters;
  check int_ "no error message" 0 (List.length (bodies srv "errs"))

let test_dead_letter_after_exhaustion () =
  (* An endpoint that never comes back: after the retry budget the message
     is dead-lettered to the rule's error queue instead of being silently
     dropped or wedging the engine. *)
  let net = Net.create () in
  let received = ref 0 in
  Net.register net ~name:"partner" ~handler:(fun ~sender:_ _ ->
      incr received;
      []);
  let srv = S.deploy ~network:net gateway_program in
  S.bind_gateway srv ~queue:"out" ~endpoint:"partner" ();
  Fault.partition net "partner";
  ignore (inject_ok srv "work" "<order><id>45</id></order>");
  ignore (S.run srv);
  for _ = 1 to 8 do
    S.advance_time srv 10;
    ignore (S.run srv)
  done;
  check int_ "never delivered" 0 !received;
  check int_ "dead-lettered once" 1 (S.stats srv).S.dead_letters;
  check int_ "retry budget spent" (S.config srv).S.transmit_retries
    (S.stats srv).S.transmit_retries;
  check int_ "one error message" 1 (List.length (bodies srv "errs"));
  (* the engine is still alive for ordinary traffic *)
  Fault.reconnect net "partner";
  ignore (inject_ok srv "work" "<order><id>46</id></order>");
  ignore (S.run srv);
  check int_ "later message delivered" 1 !received

let test_duplicate_delivery_dedup () =
  (* The reliable transport really re-invokes the endpoint handler when an
     acknowledgement is lost — duplicates are not just a counter. *)
  let net = Net.create ~seed:3 () in
  let invocations = ref 0 in
  Net.register net ~name:"dup" ~handler:(fun ~sender:_ _ ->
      incr invocations;
      []);
  Net.set_drop_rate net "dup" 0.5;
  for _ = 1 to 20 do
    ignore (Net.send net ~reliable:true ~from_:"me" ~to_:"dup" (xml "<m/>"))
  done;
  let st = Net.stats net in
  check bool_ "acks were lost" true (st.Net.duplicates >= 1);
  check int_ "every delivery hit the handler" st.Net.delivered !invocations;
  check bool_ "handler saw more than one delivery per message" true
    (!invocations > st.Net.delivered - st.Net.duplicates)

(* ---- crash/restart ---- *)

let test_crash_restart_exactly_once () =
  (* Kill-and-redeploy without a checkpoint: committed work is preserved,
     interrupted work is redone — each input yields exactly one output. *)
  let dir = fresh_dir "restart" in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let srv = S.deploy ~store:st ping_pong in
  ignore (inject_ok srv "in" "<ping>a</ping>");
  ignore (inject_ok srv "in" "<ping>b</ping>");
  ignore (S.step srv);
  let st2 = Fault.crash_restart cfg st in
  let srv2 = S.deploy ~store:st2 ping_pong in
  ignore (S.run srv2);
  check bool_ "both pongs exactly once" true
    (List.sort compare (bodies srv2 "out") = [ "<pong>a</pong>"; "<pong>b</pong>" ]);
  check int_ "lock table empty" 0 (active_locks srv2);
  Store.close st2

let test_torn_wal_tail () =
  (* A crash mid-append leaves a torn final record: recovery must keep the
     intact prefix and drop only the damaged transaction. *)
  let dir = fresh_dir "torn" in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let srv = S.deploy ~store:st ping_pong in
  ignore (inject_ok srv "in" "<ping>keep</ping>");
  ignore (S.run srv);
  (* this inject's commit record gets torn: the message never happened *)
  ignore (inject_ok srv "in" "<ping>torn</ping>");
  let st2 = Fault.crash_restart ~tear_bytes:3 cfg st in
  let srv2 = S.deploy ~store:st2 ping_pong in
  ignore (S.run srv2);
  check bool_ "intact prefix survives, torn txn is gone" true
    (bodies srv2 "out" = [ "<pong>keep</pong>" ]);
  check int_ "idle" 0 (S.run srv2);
  Store.close st2

let test_corrupt_binary_payload_recovery () =
  (* PR 7 pins: a corrupt *binary* payload reaching recovery (bit rot, a
     buggy producer, pre-checksum memory corruption) must degrade exactly
     like a torn tail — the record is skipped with a logged warning,
     everything else replays, and the engine deploys and drains the
     survivors. Replay must never crash on it. Both recovery paths are
     exercised: WAL replay and snapshot load. *)
  let dir = fresh_dir "corrupt-bxml" in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let extra = Demaq.Message.encode_extra ~props:[] ~memberships:[] () in
  let good s = Demaq.Xml.Bxml.encode (xml ("<ping>" ^ s ^ "</ping>")) in
  let corrupt = Demaq.Xml.Bxml.magic ^ String.make 24 '\xee' in
  let ins store payload at =
    let txn = Store.begin_txn store in
    ignore
      (Store.insert txn ~queue:"in" ~payload ~extra ~enqueued_at:at
         ~durable:true);
    Store.commit txn
  in
  ins st (good "a") 1;
  ins st corrupt 2;
  ins st (good "b") 3;
  (* WAL replay path: the corrupt record is dropped, its neighbours kept *)
  let st2 = Fault.crash_restart cfg st in
  check int_ "WAL replay skips the corrupt record" 2
    (List.length (Store.all_messages st2));
  (* snapshot path: checkpoint a store holding a corrupt payload, reload *)
  ins st2 corrupt 4;
  Store.checkpoint st2;
  let st3 = Fault.crash_restart cfg st2 in
  check int_ "snapshot load skips the corrupt record" 2
    (List.length (Store.all_messages st3));
  let srv = S.deploy ~store:st3 ping_pong in
  ignore (S.run srv);
  check bool_ "survivors drain normally" true
    (List.sort compare (bodies srv "out")
    = [ "<pong>a</pong>"; "<pong>b</pong>" ]);
  Store.close st3

let test_clock_monotonic_after_restart () =
  (* Recovery resumes the virtual clock at the MAXIMUM stored timestamp,
     regardless of the order unprocessed messages are listed in — a
     restarted node must never observe time running backwards. *)
  let dir = fresh_dir "clock" in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let srv = S.deploy ~store:st ping_pong in
  ignore
    (inject_ok srv ~props:[ (Sysprop.timestamp, Value.Integer 50) ] "in"
       "<ping>late</ping>");
  ignore
    (inject_ok srv ~props:[ (Sysprop.timestamp, Value.Integer 10) ] "in"
       "<ping>early</ping>");
  let st2 = Fault.crash_restart cfg st in
  let srv2 = S.deploy ~store:st2 ping_pong in
  check int_ "clock resumed at max timestamp" 50 (Clock.now (S.clock srv2));
  ignore (S.run srv2);
  check int_ "both processed" 2 (List.length (bodies srv2 "out"));
  Store.close st2

(* ---- group commit (Sync_batch) ---- *)

let batch_cfg dir =
  (* a threshold high enough that no auto-barrier fires: the tests place
     every barrier themselves *)
  Store.durable_config
    ~sync:(Wal.Sync_batch { max_records = 1000; max_bytes = 0 })
    dir

let test_group_commit_torn_batch () =
  (* A crash tearing the WAL mid-batch: everything up to the last barrier
     replays, the commit record torn mid-write is dropped WHOLE (a
     multi-insert transaction must not be half-replayed), and everything
     after it is gone. *)
  let dir = fresh_dir "group-torn" in
  let cfg = batch_cfg dir in
  let st = Store.open_store cfg in
  (* txn A, then a barrier: the synced prefix *)
  let txn = Store.begin_txn st in
  ignore (Store.insert txn ~queue:"q" ~payload:"<m>a</m>" ~extra:"" ~enqueued_at:1 ~durable:true);
  Store.commit txn;
  check int_ "A pending before the barrier" 1 (Store.unsynced_commits st);
  check bool_ "barrier synced" true (Store.barrier st);
  check int_ "no exposure after the barrier" 0 (Store.unsynced_commits st);
  let durable_after_a = Store.durable_upto st in
  (* txn B: two inserts in ONE commit record, unsynced *)
  let txn = Store.begin_txn st in
  ignore (Store.insert txn ~queue:"q" ~payload:"<m>b1</m>" ~extra:"" ~enqueued_at:2 ~durable:true);
  ignore (Store.insert txn ~queue:"q" ~payload:"<m>b2</m>" ~extra:"" ~enqueued_at:3 ~durable:true);
  Store.commit txn;
  let bytes_after_b = (Store.stats st).Store.wal_bytes in
  (* txn C: also unsynced *)
  let txn = Store.begin_txn st in
  ignore (Store.insert txn ~queue:"q" ~payload:"<m>c</m>" ~extra:"" ~enqueued_at:4 ~durable:true);
  Store.commit txn;
  check int_ "durable watermark stuck at A" durable_after_a (Store.durable_upto st);
  check int_ "B and C exposed" 2 (Store.unsynced_commits st);
  let bytes_total = (Store.stats st).Store.wal_bytes in
  (* tear all of C plus 3 bytes of B's record tail: mid-batch, mid-record *)
  let st2 =
    Fault.crash_restart ~tear_bytes:(bytes_total - bytes_after_b + 3) cfg st
  in
  let survivors = List.map (fun m -> Store.payload st2 m) (Store.all_messages st2) in
  check bool_ "synced prefix replays; torn txn dropped whole" true
    (survivors = [ "<m>a</m>" ]);
  Store.close st2

let test_no_transmission_before_barrier () =
  (* The correctness crux of group commit: a gateway transmission must
     never precede the barrier covering the transaction that created the
     message. The endpoint handler checks the store's exposure window at
     every single delivery. *)
  let dir = fresh_dir "group-barrier" in
  let cfg = batch_cfg dir in
  let st = Store.open_store cfg in
  let net = Net.create () in
  let received = ref 0 in
  let max_exposure = ref 0 in
  Net.register net ~name:"partner" ~handler:(fun ~sender:_ _ ->
      incr received;
      max_exposure := max !max_exposure (Store.unsynced_commits st);
      []);
  let config = { S.default_config with S.batch_size = 16; group_commit = true } in
  let srv = S.deploy ~config ~store:st ~network:net gateway_program in
  S.bind_gateway srv ~queue:"out" ~endpoint:"partner" ();
  for i = 1 to 40 do
    ignore (inject_ok srv "work" (Printf.sprintf "<order><id>%d</id></order>" i))
  done;
  ignore (S.run srv);
  check int_ "all deliveries arrived" 40 !received;
  check int_ "no delivery ever saw an unsynced commit" 0 !max_exposure;
  let stats = S.stats srv in
  check bool_ "barriers actually grouped" true (stats.S.wal_group_syncs >= 1);
  (* 40 injects + 40 processing commits: far fewer fsyncs than commits *)
  check bool_ "fsyncs amortized over batches" true
    ((Store.stats st).Store.wal_syncs < 40);
  check bool_ "batch fill above one" true (stats.S.batch_fill > 1.0);
  Store.close st

let test_group_commit_crash_restart_exactly_once () =
  (* Group commit must not weaken the exactly-once contract: kill the node
     mid-batch (tail beyond the last barrier torn off) and redeploy — every
     surviving input yields exactly one output, nothing is duplicated. *)
  let dir = fresh_dir "group-restart" in
  let cfg = batch_cfg dir in
  let st = Store.open_store cfg in
  let config = { S.default_config with S.batch_size = 8; group_commit = true } in
  let srv = S.deploy ~config ~store:st ping_pong in
  ignore (inject_ok srv "in" "<ping>a</ping>");
  ignore (inject_ok srv "in" "<ping>b</ping>");
  ignore (S.run srv);
  (* a commit after the final barrier, torn off by the crash *)
  ignore (inject_ok srv "in" "<ping>lost</ping>");
  let st2 = Fault.crash_restart ~tear_bytes:3 cfg st in
  let srv2 = S.deploy ~config ~store:st2 ping_pong in
  ignore (S.run srv2);
  check bool_ "committed work exactly once, torn inject gone" true
    (List.sort compare (bodies srv2 "out") = [ "<pong>a</pong>"; "<pong>b</pong>" ]);
  check int_ "lock table empty" 0 (active_locks srv2);
  Store.close st2

(* ---- multi-worker pool (PR 3) ----

   The same crash contracts, but with a 4-domain worker pool draining the
   dispatcher: torn-WAL prefix replay, exactly-once outputs across a
   kill/redeploy, and barrier-before-transmission must all survive
   parallel execution. *)

let test_multi_worker_crash_restart_exactly_once () =
  (* Kill the node mid-run with 4 workers and a torn batch tail, redeploy
     (again with 4 workers): every surviving input yields exactly one
     output — no duplicate from a message committed by one worker and
     replayed after restart, no loss from one committed but unsynced. *)
  let dir = fresh_dir "mw-restart" in
  let cfg = batch_cfg dir in
  let st = Store.open_store cfg in
  let config =
    { S.default_config with S.batch_size = 8; group_commit = true; workers = 4 }
  in
  let srv = S.deploy ~config ~store:st ping_pong in
  check int_ "pool really has 4 workers" 4 (S.workers srv);
  for i = 1 to 12 do
    ignore (inject_ok srv "in" (Printf.sprintf "<ping>%d</ping>" i))
  done;
  (* process part of the backlog — the crash lands mid-workload *)
  ignore (S.run ~max_steps:6 srv);
  (* a commit after the final barrier, torn off by the crash *)
  ignore (inject_ok srv "in" "<ping>lost</ping>");
  let st2 = Fault.crash_restart ~tear_bytes:3 cfg st in
  let srv2 = S.deploy ~config ~store:st2 ping_pong in
  ignore (S.run srv2);
  let expected =
    List.sort compare
      (List.init 12 (fun i -> Printf.sprintf "<pong>%d</pong>" (i + 1)))
  in
  check bool_ "12 pongs exactly once, torn inject gone" true
    (List.sort compare (bodies srv2 "out") = expected);
  check int_ "lock table empty" 0 (active_locks srv2);
  check int_ "idle afterwards" 0 (S.run srv2);
  Store.close st2

let test_multi_worker_barrier_before_transmission () =
  (* Group commit's externalization rule under parallelism: whichever
     worker committed the transaction that created an outgoing message,
     the transmission must still wait for the covering barrier. The
     endpoint handler checks the exposure window on every delivery. *)
  let dir = fresh_dir "mw-barrier" in
  let cfg = batch_cfg dir in
  let st = Store.open_store cfg in
  let net = Net.create () in
  let received = ref 0 in
  let max_exposure = ref 0 in
  Net.register net ~name:"partner" ~handler:(fun ~sender:_ _ ->
      incr received;
      max_exposure := max !max_exposure (Store.unsynced_commits st);
      []);
  let config =
    { S.default_config with S.batch_size = 16; group_commit = true; workers = 4 }
  in
  let srv = S.deploy ~config ~store:st ~network:net gateway_program in
  S.bind_gateway srv ~queue:"out" ~endpoint:"partner" ();
  for i = 1 to 40 do
    ignore (inject_ok srv "work" (Printf.sprintf "<order><id>%d</id></order>" i))
  done;
  ignore (S.run srv);
  check int_ "all deliveries arrived" 40 !received;
  check int_ "no delivery ever saw an unsynced commit" 0 !max_exposure;
  check int_ "lock table empty" 0 (active_locks srv);
  let per_worker = S.worker_stats srv in
  check int_ "stats row per worker" 4 (List.length per_worker);
  check int_ "worker counters account for all processed"
    (S.stats srv).S.processed
    (List.fold_left
       (fun acc (w : Demaq.Engine.Worker_pool.worker_stats) ->
         acc + w.Demaq.Engine.Worker_pool.w_processed)
       0 per_worker);
  Store.close st

(* ---- retention GC and the per-rid caches ---- *)

let test_gc_purges_caches () =
  (* Collecting messages must also purge every in-memory per-rid cache; a
     long-running node otherwise leaks node trees, names and sent-markers
     for messages that no longer exist. *)
  let srv = S.deploy ping_pong in
  for i = 1 to 10 do
    ignore (inject_ok srv "in" (Printf.sprintf "<ping>%d</ping>" i))
  done;
  ignore (S.run srv);
  check bool_ "caches populated during processing" true
    (List.exists (fun (_, n) -> n > 0) (S.cache_sizes srv));
  let collected = S.gc srv in
  check bool_ "everything collectible was collected" true (collected >= 20);
  List.iter
    (fun (name, n) -> check int_ (Printf.sprintf "%s cache purged" name) 0 n)
    (S.cache_sizes srv)

(* ---- torn compaction ---- *)

let test_torn_compaction_keeps_state () =
  (* Compaction dies at its commit point — on either side of the snapshot
     rename — and a restart must still see every hardened message exactly
     once (before the rename: the old snapshot + full log replay; after
     it: the new snapshot + an idempotent replay of the stale log), with
     the stray tmp file cleaned up and the rid high-water mark intact. *)
  List.iter
    (fun stage ->
      let tag =
        match stage with
        | Store.Before_rename -> "before-rename"
        | Store.After_rename -> "after-rename"
      in
      let dir = fresh_dir ("torn-compact-" ^ tag) in
      let cfg =
        Store.durable_config
          ~sync:(Wal.Sync_batch { max_records = 100; max_bytes = 0 })
          dir
      in
      let st = Store.open_store cfg in
      let rids =
        List.init 5 (fun i ->
            let txn = Store.begin_txn st in
            let r =
              Store.insert txn ~queue:"q"
                ~payload:(Printf.sprintf "<m n='%d'/>" i)
                ~extra:"" ~enqueued_at:1 ~durable:true
            in
            Store.commit txn;
            r)
      in
      ignore (Store.barrier st);
      Store.set_compaction_fault st
        (Some (fun s -> if s = stage then failwith "torn compaction"));
      (match Store.compact st with
       | _ -> Alcotest.fail (tag ^ ": fault did not fire")
       | exception Failure _ -> ());
      (* the node is dead mid-compaction: restart from the disk image *)
      let st2 = Fault.crash_restart cfg st in
      List.iter
        (fun r ->
          check bool_ (Printf.sprintf "%s: rid %d survives" tag r) true
            (Store.get st2 r <> None))
        rids;
      check int_ (tag ^ ": exactly once, no replay duplicates") 5
        (List.length (Store.queue_rids st2 "q"));
      check bool_ (tag ^ ": stray snapshot tmp cleaned") false
        (Sys.file_exists (Filename.concat dir "snapshot.bin.tmp"));
      let txn = Store.begin_txn st2 in
      let r_new =
        Store.insert txn ~queue:"q" ~payload:"<new/>" ~extra:""
          ~enqueued_at:2 ~durable:true
      in
      Store.commit txn;
      check bool_ (tag ^ ": rid high-water mark intact") true
        (r_new > List.fold_left max 0 rids);
      Store.close st2)
    [ Store.Before_rename; Store.After_rename ]

let suite =
  [
    ("eval fault aborts cleanly", `Quick, test_eval_fault_aborts);
    ("apply fault rolls back prior updates", `Quick, test_apply_fault_rolls_back);
    ("flaky evaluator under load drains", `Quick, test_flaky_evaluator_drains);
    ("retry after reconnect", `Quick, test_retry_after_reconnect);
    ("dead letter after retry exhaustion", `Quick, test_dead_letter_after_exhaustion);
    ("lost acks re-invoke the handler", `Quick, test_duplicate_delivery_dedup);
    ("crash/restart processes exactly once", `Quick, test_crash_restart_exactly_once);
    ("torn WAL tail keeps intact prefix", `Quick, test_torn_wal_tail);
    ("corrupt binary payload degrades like torn tail", `Quick,
     test_corrupt_binary_payload_recovery);
    ("group commit: torn mid-batch keeps synced prefix", `Quick,
     test_group_commit_torn_batch);
    ("group commit: no transmission before its barrier", `Quick,
     test_no_transmission_before_barrier);
    ("group commit: crash/restart exactly once", `Quick,
     test_group_commit_crash_restart_exactly_once);
    ("multi-worker crash/restart exactly once", `Quick,
     test_multi_worker_crash_restart_exactly_once);
    ("multi-worker: no transmission before its barrier", `Quick,
     test_multi_worker_barrier_before_transmission);
    ("clock monotonic after restart", `Quick, test_clock_monotonic_after_restart);
    ("gc purges per-rid caches", `Quick, test_gc_purges_caches);
    ("torn compaction keeps hardened state", `Quick,
     test_torn_compaction_keeps_state);
  ]

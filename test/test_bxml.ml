(* Tests for lib/xml/bxml: the compact binary payload representation.

   The properties pin the contracts the engine's hot path relies on:
   decode is an exact inverse of encode (no normalization slack — the
   stored form must be lossless), the header synopsis agrees with a full
   tree walk, and prefilter admission decided from the synopsis agrees
   with admission decided from the materialized tree. *)

module Tree = Demaq.Xml.Tree
module Parser = Demaq.Xml.Parser
module Serializer = Demaq.Xml.Serializer
module Bxml = Demaq.Xml.Bxml
module Prefilter = Demaq.Lang.Prefilter
module Store = Demaq.Store.Message_store
module S = Demaq.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let order_doc =
  "<order><orderID>ord-1</orderID><customer tier=\"gold\">ACME</customer>\
   <items><item sku=\"S-1\" qty=\"2\"><price>19.95</price></item>\
   <item sku=\"S-2\" qty=\"1\"><price>5.00</price></item></items></order>"

(* ---- format discrimination ---- *)

let test_is_binary () =
  let bin = Bxml.encode (Parser.parse order_doc) in
  check bool_ "encoded is binary" true (Bxml.is_binary bin);
  check bool_ "text is not" false (Bxml.is_binary order_doc);
  check bool_ "empty is not" false (Bxml.is_binary "");
  check bool_ "leading whitespace is not" false (Bxml.is_binary "  <a/>");
  (* the magic's NUL first byte can never start well-formed text XML *)
  check int_ "magic starts with NUL" 0 (Char.code Bxml.magic.[0])

let test_decode_any () =
  let t = Parser.parse order_doc in
  check bool_ "decode_any on text parses" true
    (Tree.equal_tree t (Bxml.decode_any order_doc));
  check bool_ "decode_any on binary decodes" true
    (Tree.equal_tree t (Bxml.decode_any (Bxml.encode t)))

(* ---- exact round-trip on handwritten corners ---- *)

let test_roundtrip_corners () =
  List.iter
    (fun src ->
      let t = Parser.parse src in
      check bool_ ("roundtrip: " ^ src) true
        (Tree.equal_tree t (Bxml.decode (Bxml.encode t))))
    [
      "<a/>";
      "<a x=\"1\" y=\"two\"/>";
      "<a>&lt;&amp;&gt;\"'</a>";
      "<a><!--note--><?target data?><b/></a>";
      "<ns:a xmlns:ns=\"urn:x\"><ns:b/><c/></ns:a>";
      "<a><b>deep<c>er</c></b>tail</a>";
      order_doc;
    ]

let test_corrupt_rejected () =
  let bin = Bxml.encode (Parser.parse order_doc) in
  let truncated = String.sub bin 0 (String.length bin - 3) in
  check bool_ "truncated fails check" true (not (Bxml.validate truncated));
  (match Bxml.decode truncated with
  | exception Bxml.Decode_error _ -> ()
  | _ -> Alcotest.fail "truncated payload decoded");
  (* garbage behind the magic *)
  let garbage = Bxml.magic ^ String.make 16 '\xff' in
  check bool_ "garbage fails check" true (not (Bxml.validate garbage));
  (match Bxml.decode garbage with
  | exception Bxml.Decode_error _ -> ()
  | _ -> Alcotest.fail "garbage payload decoded");
  check bool_ "intact passes check" true (Bxml.validate bin)

(* ---- streaming readers ---- *)

let test_synopsis () =
  let bin = Bxml.encode (Parser.parse order_doc) in
  let names = List.sort compare (Bxml.synopsis bin) in
  check (Alcotest.list string_) "element names, attrs excluded"
    [ "customer"; "item"; "items"; "order"; "orderID"; "price" ]
    names

let test_root_children () =
  let bin = Bxml.encode (Parser.parse order_doc) in
  check (Alcotest.list string_) "top-level children"
    [ "orderID"; "customer"; "items" ]
    (Bxml.root_children bin)

let test_iter_names () =
  let bin = Bxml.encode (Parser.parse order_doc) in
  let seen = ref 0 in
  Bxml.iter_names bin (fun _ -> incr seen);
  (* order, orderID, customer, items, 2x item, 2x price *)
  check int_ "every element start visited" 8 !seen

(* ---- parse_many (batch ingress bodies) ---- *)

let test_parse_many () =
  let docs = Parser.parse_many "<a/><b>x</b>  <!-- sep --> <c n='1'/>" in
  check int_ "three documents" 3 (List.length docs);
  check bool_ "in order" true
    (List.map Serializer.to_string docs = [ "<a/>"; "<b>x</b>"; "<c n=\"1\"/>" ]);
  check int_ "single document" 1 (List.length (Parser.parse_many "<a/>"));
  match Parser.parse_many "<a/> trailing junk" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "junk between documents accepted"

(* ---- qcheck properties ---- *)

(* Unlike serialize/parse (which merges and strips whitespace text), the
   binary codec must be EXACTLY lossless: no normalization before the
   comparison. *)
let prop_bxml_roundtrip =
  QCheck.Test.make ~name:"decode . encode = id (exact)" ~count:300
    Test_xml.arb_tree (fun t ->
      let t = Tree.elem "root" [ t ] in
      Tree.equal_tree t (Bxml.decode (Bxml.encode t)))

let prop_synopsis_agrees =
  QCheck.Test.make ~name:"header synopsis = tree-walk synopsis" ~count:300
    Test_xml.arb_tree (fun t ->
      let t = Tree.elem "root" [ t ] in
      let streamed =
        List.fold_left
          (fun acc n -> Prefilter.Names.add n acc)
          Prefilter.Names.empty
          (Bxml.synopsis (Bxml.encode t))
      in
      Prefilter.Names.equal streamed (Prefilter.element_names t))

let prop_admission_agrees =
  (* the engine-level contract: admission decided from the stored payload
     (streaming path) is the same decision as from the materialized tree *)
  QCheck.Test.make ~name:"prefilter admission: synopsis = tree" ~count:300
    QCheck.(pair Test_xml.arb_tree (small_list (oneofl [ "a"; "b"; "order"; "zzz" ])))
    (fun (t, requirements) ->
      let t = Tree.elem "root" [ t ] in
      let from_tree =
        Prefilter.may_match ~requirements ~names:(Prefilter.element_names t)
      in
      match Prefilter.payload_names (Bxml.encode t) with
      | None -> false (* binary payloads must always yield a synopsis *)
      | Some names -> Prefilter.may_match ~requirements ~names = from_tree)

let prop_payload_names_text_none =
  QCheck.Test.make ~name:"payload_names on text is None (fallback path)"
    ~count:100 Test_xml.arb_tree (fun t ->
      let t = Tree.elem "root" [ t ] in
      Prefilter.payload_names (Serializer.to_string t) = None)

(* ---- engine integration: deferred materialization counters ---- *)

let test_admission_counters () =
  (* 1 matching + 3 non-matching recovered messages under a rule needing
     //ping: the non-matching ones must drain as synopsis-only admission
     scans, never materializing a tree. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-bxml-adm-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let program = {|
    create queue in kind basic mode persistent
    create queue out kind basic mode persistent
    create rule pong for in if (//ping) then do enqueue <pong/> into out
  |} in
  let cfg = Store.durable_config dir in
  let st = Store.open_store cfg in
  let srv = S.deploy ~store:st program in
  List.iter
    (fun doc ->
      match S.inject srv ~queue:"in" (Demaq.xml doc) with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "inject failed")
    [ "<noise a='1'/>"; "<ping/>"; "<noise b='2'/>"; "<noise c='3'/>" ];
  Store.close st;
  (* restart: payloads now fault in from the store in binary form *)
  let st = Store.open_store cfg in
  let srv = S.deploy ~store:st program in
  ignore (S.run srv);
  let scans, decodes, decoded_bytes = S.admission_stats srv in
  check int_ "one pong" 1 (List.length (S.queue_contents srv "out"));
  check int_ "3 noise messages admitted without a tree" 3 scans;
  check int_ "only the ping decoded" 1 decodes;
  check bool_ "decoded bytes counted" true (decoded_bytes > 0);
  Store.close st

let suite =
  [
    ("is_binary discrimination", `Quick, test_is_binary);
    ("decode_any accepts both formats", `Quick, test_decode_any);
    ("round-trip corners", `Quick, test_roundtrip_corners);
    ("corrupt payloads rejected", `Quick, test_corrupt_rejected);
    ("header synopsis", `Quick, test_synopsis);
    ("root children scan", `Quick, test_root_children);
    ("iter_names visits every element", `Quick, test_iter_names);
    ("parse_many batch bodies", `Quick, test_parse_many);
    ("admission counters after restart", `Quick, test_admission_counters);
    QCheck_alcotest.to_alcotest prop_bxml_roundtrip;
    QCheck_alcotest.to_alcotest prop_synopsis_agrees;
    QCheck_alcotest.to_alcotest prop_admission_agrees;
    QCheck_alcotest.to_alcotest prop_payload_names_text_none;
  ]

(* Tests for the real-socket HTTP layer: the multi-connection server, the
   POST ingress path, the two regression bugs the load generator flushed
   out (partial-head close clobbering responses; a stalled client wedging
   the accept loop), and an end-to-end open-loop loadgen smoke. *)

module Http = Demaq.Net.Http
module Loadgen = Demaq.Net.Loadgen
module Ingress = Demaq.Engine.Ingress
module Gate = Demaq.Engine.Gate
module Store = Demaq.Store.Message_store
module Wal = Demaq.Store.Wal
module S = Demaq.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let echo_handler (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | Http.GET, "/ping" -> Some (Http.ok "pong\n")
  | Http.POST, "/echo" ->
    Some (Http.ok ~content_type:"application/xml" req.Http.body)
  | _ -> None

let with_server ?pool ?read_timeout ?max_body handler f =
  match Http.start ?pool ?read_timeout ?max_body ~port:0 handler with
  | Error msg -> Alcotest.failf "http start: %s" msg
  | Ok server ->
    Fun.protect ~finally:(fun () -> Http.stop server) (fun () -> f server)

(* Raw client: send [chunks] (with [gap] seconds between them), then read
   the whole response to EOF. *)
let raw_roundtrip ~port ?(gap = 0.) chunks =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      List.iteri
        (fun i c ->
          if i > 0 && gap > 0. then Unix.sleepf gap;
          ignore (Unix.write_substring sock c 0 (String.length c)))
        chunks;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Buffer.contents buf)

(* ---- POST round-trips ---- *)

let test_post_exact () =
  with_server echo_handler (fun server ->
      let port = Http.port server in
      let body = "<order><id>42</id></order>" in
      let status, got = Http.post ~port "/echo" body in
      check int_ "202/200" 200 (Http.status_code status);
      check string_ "body echoed" body got)

let test_post_split_body () =
  (* head and body arriving in separate packets must reassemble *)
  with_server echo_handler (fun server ->
      let port = Http.port server in
      let body = String.concat "" (List.init 64 (fun i -> Printf.sprintf "<i>%d</i>" i)) in
      let head =
        Printf.sprintf "POST /echo HTTP/1.0\r\nContent-Length: %d\r\n\r\n"
          (String.length body)
      in
      let half = String.length body / 2 in
      let response =
        raw_roundtrip ~port ~gap:0.05
          [ head; String.sub body 0 half;
            String.sub body half (String.length body - half) ]
      in
      check bool_ "200" true (contains response "200");
      check bool_ "full body echoed" true
        (contains response (String.sub body half (String.length body - half))))

let test_post_oversized () =
  with_server ~max_body:1024 echo_handler (fun server ->
      let port = Http.port server in
      let response =
        raw_roundtrip ~port
          [ "POST /echo HTTP/1.0\r\nContent-Length: 999999\r\n\r\n" ]
      in
      check bool_ "413" true (contains response "413"))

let test_post_missing_length () =
  with_server echo_handler (fun server ->
      let port = Http.port server in
      let response = raw_roundtrip ~port [ "POST /echo HTTP/1.0\r\n\r\n" ] in
      check bool_ "411" true (contains response "411"))

let test_post_bad_length_forms () =
  (* regression: int_of_string accepts OCaml literal forms ("0x10",
     "0o17", "1_0", leading '+'), which are not valid HTTP — only plain
     decimal digits may be honored *)
  with_server echo_handler (fun server ->
      let port = Http.port server in
      List.iter
        (fun v ->
          let response =
            raw_roundtrip ~port
              [ Printf.sprintf
                  "POST /echo HTTP/1.0\r\nContent-Length: %s\r\n\r\nxx" v ]
          in
          check bool_ (Printf.sprintf "%S rejected with 400" v) true
            (contains response "400"))
        [ "0x10"; "0o17"; "1_0"; "+2"; "-1"; "two"; "" ])

(* ---- regression: a peer that resets mid-exchange must not kill the
   process. Unix.write to a reset connection raises SIGPIPE unless the
   signal is ignored; before the fix each iteration here could terminate
   the whole test binary (in production: the whole node). ---- *)

let test_peer_reset_does_not_kill () =
  with_server echo_handler (fun server ->
      let port = Http.port server in
      let body = String.make 65536 'x' in
      let req =
        Printf.sprintf "POST /echo HTTP/1.0\r\nContent-Length: %d\r\n\r\n%s"
          (String.length body) body
      in
      for _ = 1 to 5 do
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        (* linger 0: close sends RST, discarding the in-flight response,
           so the server's next write hits a dead connection *)
        Unix.setsockopt_optint sock Unix.SO_LINGER (Some 0);
        ignore (Unix.write_substring sock req 0 (String.length req));
        Unix.close sock
      done;
      Unix.sleepf 0.1;
      (* the pool survived every reset and still serves *)
      let status, body = Http.get ~port "/ping" in
      check int_ "alive after resets" 200 (Http.status_code status);
      check string_ "pong" "pong\n" body)

(* ---- regression: the full request head is drained before responding.

   The seed server stopped reading at the first '\n' and closed with the
   rest of the head unread; on Linux that close sends RST, which can
   destroy the in-flight response for any client sending ordinary
   multi-header requests (this exact shape failed before the fix). *)

let test_multi_header_request_intact () =
  with_server echo_handler (fun server ->
      let port = Http.port server in
      let headers =
        String.concat ""
          (List.init 24 (fun i ->
               Printf.sprintf "X-Header-%02d: %s\r\n" i (String.make 80 'v')))
      in
      let req = "GET /ping HTTP/1.0\r\n" ^ headers ^ "\r\n" in
      check bool_ "well over one read chunk" true (String.length req > 1024);
      for _ = 1 to 10 do
        let response = raw_roundtrip ~port [ req ] in
        check bool_ "status intact" true (contains response "200 OK");
        check bool_ "body intact" true (contains response "pong\n")
      done)

let test_head_too_large () =
  with_server echo_handler (fun server ->
      let port = Http.port server in
      let response =
        raw_roundtrip ~port
          [ "GET /ping HTTP/1.0\r\nX-Pad: " ^ String.make 9000 'x' ^ "\r\n\r\n" ]
      in
      check bool_ "431" true (contains response "431"))

(* ---- regression: a stalled client cannot wedge the endpoint.

   The seed server did blocking reads with no deadline on a single accept
   loop, so one connect-and-idle (slow loris) client blocked every
   subsequent scrape forever. Now each connection has a receive deadline
   (408 on expiry) and the accept pool keeps other connections moving
   meanwhile. *)

let test_slow_loris_gets_408 () =
  with_server ~read_timeout:0.3 echo_handler (fun server ->
      let port = Http.port server in
      (* send a partial request line and stall; the server must answer 408
         once the deadline passes *)
      let response = raw_roundtrip ~port [ "GET /pi" ] in
      check bool_ "408" true (contains response "408");
      check int_ "timeout counted" 1 (Http.timeouts server))

let test_slow_loris_does_not_block_scrapes () =
  with_server ~read_timeout:5. echo_handler (fun server ->
      let port = Http.port server in
      (* park an idle connection occupying one pool slot *)
      let idle = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close idle with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect idle (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          Unix.sleepf 0.05;
          (* a normal request must complete long before the idle
             connection's 5 s deadline *)
          let t0 = Unix.gettimeofday () in
          let status, body = Http.get ~port "/ping" in
          let dt = Unix.gettimeofday () -. t0 in
          check bool_ "200" true (contains status "200");
          check string_ "body" "pong\n" body;
          check bool_ "served while loris idles" true (dt < 2.)))

(* ---- status paths and pool concurrency ---- *)

let test_404_400_405 () =
  with_server echo_handler (fun server ->
      let port = Http.port server in
      let status, _ = Http.get ~port "/nope" in
      check int_ "404" 404 (Http.status_code status);
      let response = raw_roundtrip ~port [ "NONSENSE\r\n\r\n" ] in
      check bool_ "400" true (contains response "400");
      let response = raw_roundtrip ~port [ "BREW /ping HTTP/1.0\r\n\r\n" ] in
      check bool_ "405" true (contains response "405"))

let test_concurrent_scrapes () =
  with_server ~pool:4 echo_handler (fun server ->
      let port = Http.port server in
      let per_domain = 10 in
      let domains =
        Array.init 4 (fun _ ->
            Domain.spawn (fun () ->
                let ok = ref 0 in
                for _ = 1 to per_domain do
                  let status, body = Http.get ~port "/ping" in
                  if contains status "200" && body = "pong\n" then incr ok
                done;
                !ok))
      in
      let total = Array.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
      check int_ "all scrapes served" (4 * per_domain) total;
      check bool_ "counter saw them" true
        (Http.connections_served server >= 4 * per_domain))

(* ---- ingress: POST /enqueue/<queue> through the transactional path ---- *)

let ingress_program = {|
create queue orders kind basic mode persistent
  schema {
    element order { orderID }
    element orderID { text }
  }
create queue acks kind basic mode persistent
create rule acknowledge for orders
  if (//order) then
    do enqueue <ack>{string(//order/orderID)}</ack> into acks
|}

let test_ingress_enqueue () =
  let srv = S.deploy ingress_program in
  with_server (Ingress.handler srv) (fun server ->
      let port = Http.port server in
      let status, body =
        Http.post ~port "/enqueue/orders" "<order><orderID>7</orderID></order>"
      in
      check int_ "202 accepted" 202 (Http.status_code status);
      check bool_ "rid returned" true (contains body "rid=");
      (* malformed XML *)
      let status, _ = Http.post ~port "/enqueue/orders" "<order" in
      check int_ "400 bad xml" 400 (Http.status_code status);
      (* unknown queue *)
      let status, _ = Http.post ~port "/enqueue/nothere" "<x/>" in
      check int_ "404 unknown queue" 404 (Http.status_code status);
      (* schema violation: permanent admission rejection, not retryable *)
      let status, _ = Http.post ~port "/enqueue/orders" "<order><bogus/></order>" in
      check int_ "422 rejected" 422 (Http.status_code status);
      (* observability endpoints ride along *)
      let status, _ = Http.get ~port "/metrics" in
      check int_ "metrics" 200 (Http.status_code status);
      let status, body = Http.get ~port "/healthz" in
      check int_ "healthz" 200 (Http.status_code status);
      check string_ "healthz body" "ok\n" body;
      (* the accepted message processes through the engine *)
      ignore (S.run srv);
      check int_ "ack produced" 1 (List.length (S.queue_contents srv "acks")))

let test_ingress_batch_enqueue () =
  (* A body holding several concatenated documents is admitted as one
     batch: per-document transactions, per-document result report, one
     parser pass and one lock acquisition. *)
  let srv = S.deploy ingress_program in
  with_server (Ingress.handler srv) (fun server ->
      let port = Http.port server in
      let status, body =
        Http.post ~port "/enqueue/orders"
          "<order><orderID>1</orderID></order>\
           <order><orderID>2</orderID></order>\
           <!-- sep --><order><orderID>3</orderID></order>"
      in
      check int_ "202 all accepted" 202 (Http.status_code status);
      check bool_ "batch report" true (contains body "accepted=\"3\"");
      (* mixed batch: the schema violation rejects only its own document *)
      let status, body =
        Http.post ~port "/enqueue/orders"
          "<order><orderID>4</orderID></order><order><bogus/></order>"
      in
      check int_ "422 mixed outcome" 422 (Http.status_code status);
      check bool_ "one accepted" true (contains body "accepted=\"1\"");
      check bool_ "one rejected" true (contains body "rejected=\"1\"");
      (* whole batch against an unknown queue: plain 404 *)
      let status, _ = Http.post ~port "/enqueue/nothere" "<x/><y/>" in
      check int_ "404 unknown queue" 404 (Http.status_code status);
      (* malformed XML anywhere rejects the whole body before admission *)
      let status, _ =
        Http.post ~port "/enqueue/orders"
          "<order><orderID>9</orderID></order><oops"
      in
      check int_ "400 bad xml" 400 (Http.status_code status);
      ignore (S.run srv);
      check int_ "3 + 1 admitted documents produced acks" 4
        (List.length (S.queue_contents srv "acks")))

(* ---- admission gate at the HTTP layer: shed before the body ---- *)

let test_gate_shed_drains_and_closes () =
  (* a gate that sheds every enqueue POST: the 429 must carry
     Retry-After, set Connection: close, and the server must drain the
     declared body before responding so the client's in-flight write
     never dies on an RST *)
  let gate (req : Http.request) =
    match (req.Http.meth, req.Http.path) with
    | Http.POST, "/enqueue/q" ->
      Some
        (Http.response ~status:429
           ~headers:[ ("Retry-After", "3") ]
           "overloaded\n")
    | _ -> None
  in
  match Http.start ~gate ~port:0 echo_handler with
  | Error msg -> Alcotest.failf "http start: %s" msg
  | Ok server ->
    Fun.protect
      ~finally:(fun () -> Http.stop server)
      (fun () ->
        let port = Http.port server in
        (* large body: the drain has real work to do *)
        let big = String.make 200_000 'x' in
        let head, body = Http.post_full ~port "/enqueue/q" big in
        check int_ "shed answered 429" 429 (Http.status_code head);
        check bool_ "retry hint present" true
          (Http.header "Retry-After" head = Some "3");
        check bool_ "connection closed after shed" true
          (Http.header "Connection" head = Some "close");
        check bool_ "shed body names the condition" true
          (contains body "overloaded");
        (* ungated paths on the same server stay live *)
        let status, echoed = Http.post ~port "/echo" "<x/>" in
        check int_ "echo past the gate" 200 (Http.status_code status);
        check string_ "echo body intact" "<x/>" echoed;
        let status, _ = Http.get ~port "/ping" in
        check int_ "GET never gated" 200 (Http.status_code status))

let test_ingress_gate_end_to_end () =
  (* wire the real admission gate under the real ingress handler over a
     durable store: the first enqueue is admitted, the unsynced WAL bytes
     it leaves behind push saturation past the hard band (threshold 1
     byte), the next enqueue is shed 429, and a barrier reopens the
     valve.  Observability stays readable throughout. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-http-gate-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let store =
    Store.open_store
      (Store.durable_config
         ~sync:(Wal.Sync_batch { max_records = 1000; max_bytes = 0 })
         dir)
  in
  let srv = S.deploy ~store ingress_program in
  ignore
    (S.enable_gate
       ~cfg:{ Gate.default_config with Gate.max_pending = max_int; max_wal_bytes = 1 }
       srv);
  match
    Http.start ~gate:(Ingress.gate srv) ~port:0 (Ingress.handler srv)
  with
  | Error msg -> Alcotest.failf "http start: %s" msg
  | Ok server ->
    Fun.protect
      ~finally:(fun () ->
        Http.stop server;
        Store.close store)
      (fun () ->
        let port = Http.port server in
        let status, _ =
          Http.post ~port "/enqueue/orders" "<order><orderID>1</orderID></order>"
        in
        check int_ "first enqueue admitted" 202 (Http.status_code status);
        let head, _ =
          Http.post_full ~port "/enqueue/orders"
            "<order><orderID>2</orderID></order>"
        in
        check int_ "unsynced log sheds the next" 429 (Http.status_code head);
        check bool_ "transient marker present" true
          (Http.header "Retry-After" head <> None);
        (* the node must stay observable precisely while shedding *)
        let status, _ = Http.get ~port "/metrics" in
        check int_ "metrics scrape during overload" 200
          (Http.status_code status);
        (* a barrier retires the unsynced bytes: traffic flows again *)
        ignore (Store.barrier store);
        let status, _ =
          Http.post ~port "/enqueue/orders" "<order><orderID>3</orderID></order>"
        in
        check int_ "post-barrier enqueue admitted" 202 (Http.status_code status);
        ignore (S.run srv);
        check int_ "only admitted messages produced acks" 2
          (List.length (S.queue_contents srv "acks")))

(* ---- loadgen smoke: low rate against a live node ---- *)

let test_loadgen_smoke () =
  let srv = S.deploy ingress_program in
  with_server (Ingress.handler srv) (fun server ->
      let port = Http.port server in
      (* pump domain: drain the dispatcher while requests arrive *)
      let stop = Atomic.make false in
      let pump =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              ignore (S.run srv);
              Unix.sleepf 0.001
            done)
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          Domain.join pump)
        (fun () ->
          let cfg =
            {
              Loadgen.default_config with
              Loadgen.port;
              rate = 50.;
              duration = 2.;
              arrival = Loadgen.Constant;
            }
          in
          let gen i =
            {
              Loadgen.sp_path = "/enqueue/orders";
              sp_body = Printf.sprintf "<order><orderID>%d</orderID></order>" i;
              sp_flow = (if i mod 2 = 0 then Printf.sprintf "lg-%d" i else "");
            }
          in
          let r = Loadgen.run cfg gen in
          check int_ "100 arrivals at 50/s for 2s" 100 r.Loadgen.r_offered;
          check int_ "nothing dropped" 0 r.Loadgen.r_dropped;
          check int_ "no errors" 0 r.Loadgen.r_errors;
          check int_ "all accepted" r.Loadgen.r_sent r.Loadgen.r_ok;
          check bool_ "p50 populated" true (r.Loadgen.r_p50_ms > 0.);
          check bool_ "percentiles ordered" true
            (r.Loadgen.r_p50_ms <= r.Loadgen.r_p99_ms
             && r.Loadgen.r_p99_ms <= r.Loadgen.r_p999_ms
             && r.Loadgen.r_p999_ms <= r.Loadgen.r_max_ms +. 0.001);
          (* every 202 really enqueued: drain and count the acks *)
          Unix.sleepf 0.05;
          ignore (S.run srv);
          check int_ "every accepted request processed" r.Loadgen.r_ok
            (List.length (S.queue_contents srv "acks"))))

let suite =
  [
    ("post roundtrip exact", `Quick, test_post_exact);
    ("post body split across packets", `Quick, test_post_split_body);
    ("post oversized content-length", `Quick, test_post_oversized);
    ("post missing content-length", `Quick, test_post_missing_length);
    ("post non-decimal content-length", `Quick, test_post_bad_length_forms);
    ("peer reset does not kill the process", `Quick,
     test_peer_reset_does_not_kill);
    ("multi-header request gets intact response", `Quick,
     test_multi_header_request_intact);
    ("oversized head refused", `Quick, test_head_too_large);
    ("slow loris answered 408", `Quick, test_slow_loris_gets_408);
    ("slow loris does not block scrapes", `Quick,
     test_slow_loris_does_not_block_scrapes);
    ("404/400/405 paths", `Quick, test_404_400_405);
    ("concurrent scrapes under the accept pool", `Quick,
     test_concurrent_scrapes);
    ("ingress enqueue paths", `Quick, test_ingress_enqueue);
    ("ingress batch enqueue", `Quick, test_ingress_batch_enqueue);
    ("gate shed drains body, closes connection", `Quick,
     test_gate_shed_drains_and_closes);
    ("ingress gate end to end over durable store", `Quick,
     test_ingress_gate_end_to_end);
    ("loadgen smoke", `Slow, test_loadgen_smoke);
  ]

(* Tests for the compile-on-deploy rule plans: guarded merged plans,
   common-subexpression hoisting, static unsatisfiability pruning,
   conflict footprints and footprint-driven dispatch. *)

module Ast = Demaq.Xquery.Ast
module Plan_ir = Demaq.Xquery.Plan
module Qdl = Demaq.Lang.Qdl
module Analysis = Demaq.Lang.Analysis
module Compiler = Demaq.Lang.Compiler
module Message = Demaq.Message
module S = Demaq.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let compile src = Compiler.compile (Qdl.parse_program src)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- guard sharing and common-subexpression hoisting ---- *)

let test_guard_sharing_and_cse () =
  let c =
    compile
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create rule r1 for a if (//x)
          then do enqueue <y1>{count(//p) + count(//q) + count(//r)}</y1> into b
        create rule r2 for a if (//x)
          then do enqueue <y2>{count(//p) + count(//q) + count(//r)}</y2> into b
        create rule r3 for a if (//z) then do enqueue <y3/> into b|}
  in
  let plan = Option.get (Compiler.plan_for c "a") in
  let exec = plan.Compiler.exec in
  (match Plan_ir.rules exec with
   | [ g1; g2; g3 ] ->
     check bool_ "r1 and r2 share a guard id" true
       (g1.Plan_ir.g_guard_id = g2.Plan_ir.g_guard_id);
     check bool_ "r3 has its own guard id" true
       (g3.Plan_ir.g_guard_id <> g1.Plan_ir.g_guard_id);
     check bool_ "r1 uses a hoisted binding" true (g1.Plan_ir.g_bindings <> []);
     (* r3 shares only the hoisted //-root, not the count sum *)
     check bool_ "r1 needs more bindings than r3" true
       (List.length g1.Plan_ir.g_bindings > List.length g3.Plan_ir.g_bindings)
   | l -> Alcotest.failf "expected three guarded rules, got %d" (List.length l));
  check int_ "two distinct guard evaluations" 2 exec.Plan_ir.p_n_guards;
  check bool_ "shared count-sum hoisted into a plan binding" true
    (Plan_ir.bindings exec <> []);
  check bool_ "explain shows the binding" true
    (contains (Compiler.explain c) "binding $__plan")

let test_unstable_guard_not_shared () =
  (* qs:queue() reads the store: identical text, but evaluating it once
     for two rules is unsound, so each keeps its own guard id. *)
  let c =
    compile
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create rule r1 for a if (qs:queue()[//x]) then do enqueue <y1/> into b
        create rule r2 for a if (qs:queue()[//x]) then do enqueue <y2/> into b|}
  in
  let plan = Option.get (Compiler.plan_for c "a") in
  check int_ "no sharing of unstable guards" 2 plan.Compiler.exec.Plan_ir.p_n_guards

(* ---- static unsatisfiability pruning ---- *)

let pruning_program =
  {|create queue a kind basic mode persistent
      schema { element m { text } }
    create queue b kind basic mode persistent
    create rule live for a if (//m) then do enqueue <hit/> into b
    create rule dead for a if (//ghost) then do enqueue <miss/> into b|}

let test_pruning () =
  let c = compile pruning_program in
  let plan = Option.get (Compiler.plan_for c "a") in
  check int_ "one surviving rule" 1 (List.length plan.Compiler.rules);
  check bool_ "live survived" true
    ((List.hd plan.Compiler.rules).Compiler.cr_name = "live");
  (match plan.Compiler.pruned with
   | [ (name, reason) ] ->
     check bool_ "dead pruned" true (name = "dead");
     check bool_ "reason names the element" true (contains reason "ghost")
   | l -> Alcotest.failf "expected one pruned rule, got %d" (List.length l));
  check int_ "exec plan dropped it too" 1 (List.length (Plan_ir.rules plan.Compiler.exec));
  check bool_ "explain reports the pruning" true
    (contains (Compiler.explain c) "pruned rule dead")

let test_pruned_rule_never_runs () =
  let srv = S.deploy pruning_program in
  ignore (S.inject srv ~queue:"a" (Demaq.xml "<m>x</m>"));
  ignore (S.run srv);
  let bodies q =
    List.map (fun m -> Demaq.xml_to_string (Message.body m)) (S.queue_contents srv q)
  in
  check bool_ "live fired" true (bodies "b" = [ "<hit/>" ]);
  check int_ "exactly one rule evaluation" 1 (S.stats srv).S.rule_evaluations

let test_no_pruning_under_open_vocabulary () =
  (* no schema: the vocabulary is open, nothing may be pruned *)
  let c =
    compile
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create rule dead for a if (//ghost) then do enqueue <miss/> into b|}
  in
  let plan = Option.get (Compiler.plan_for c "a") in
  check int_ "nothing pruned" 0 (List.length plan.Compiler.pruned);
  check int_ "rule kept" 1 (List.length plan.Compiler.rules)

let test_analysis_warns_on_dead_rule () =
  let r = Analysis.analyze (Qdl.parse_program pruning_program) in
  check bool_ "still deployable" true r.Analysis.ok;
  let warnings =
    List.filter (fun d -> d.Analysis.severity = Analysis.Warning) r.Analysis.diagnostics
  in
  check bool_ "warns that the rule is statically dead" true
    (List.exists (fun d -> contains d.Analysis.message "statically dead") warnings)

(* ---- conflict footprints ---- *)

let test_footprints () =
  let c =
    compile
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create queue c kind basic mode persistent
        create property p as xs:string queue a value //id
        create slicing sl on p
        create rule stat for a if (//x) then do enqueue <y/> into b
        create rule dyn for a
          if (qs:queue(string(//target))//x) then do enqueue <y/> into c
        create rule cut for a if (//z) then do reset slicing sl key "k1"|}
  in
  let plan = Option.get (Compiler.plan_for c "a") in
  (match plan.Compiler.footprints with
   | [ f_stat; f_dyn; f_cut ] ->
     check bool_ "static enqueue -> its queue" true
       ((not f_stat.Compiler.fp_top) && f_stat.Compiler.fp_queues = [ "b" ]);
     check bool_ "dynamic queue name -> top" true f_dyn.Compiler.fp_top;
     check bool_ "literal-key reset -> slice" true
       (f_cut.Compiler.fp_slices = [ ("sl", "k1") ] && f_cut.Compiler.fp_queues = [ "c" ]
       || f_cut.Compiler.fp_slices = [ ("sl", "k1") ])
   | l -> Alcotest.failf "expected three footprints, got %d" (List.length l));
  (match plan.Compiler.conflicts.(0) with
   | reqs, Compiler.Conflict_resources { res; own_queue } ->
     check bool_ "requirements cached" true (reqs = [ "x" ]);
     check bool_ "resource string" true (res = [ "q:b" ]);
     check bool_ "no own-queue read" false own_queue
   | _, Compiler.Conflict_top -> Alcotest.fail "static rule must not be top");
  (match plan.Compiler.conflicts.(1) with
   | _, Compiler.Conflict_top -> ()
   | _ -> Alcotest.fail "dynamic rule must be top");
  check bool_ "union is top" true (plan.Compiler.conflict_union = Compiler.Conflict_top);
  check bool_ "queue resource cached" true (plan.Compiler.queue_resource = "q:a");
  check bool_ "top prints as such" true
    (contains (Compiler.footprint_to_string (List.nth plan.Compiler.footprints 1)) "⊤");
  check bool_ "every queue becomes a resource" true
    (List.sort compare (Compiler.all_queue_resources c) = [ "q:a"; "q:b"; "q:c" ])

(* ---- merged guarded plan == per-rule interpretation (qcheck) ----

   Programs are drawn from pools of conditions and bodies chosen to
   exercise every compiler pass: shared guards, hoistable common
   subexpressions, pre-filterable requirements, guards and bodies that
   raise at runtime (fallback re-evaluation, §3.6 attribution), else
   branches and rule-level error queues. The same message sequence runs
   through two engines differing only in [merged_plans]; every queue's
   serialized contents and the error/evaluation counters must agree. *)

let conditions =
  [|
    "//a";
    "//b";
    "//a and //b";
    "count(//a) > 0";
    "//nope";
    "1 = 1";
    "1 idiv 0 = 1" (* guard raises: exercises memoized-failure fallback *);
  |]

let rule_then i body =
  match body with
  | 0 -> Printf.sprintf "do enqueue <r%d/> into o1" i
  | 1 -> Printf.sprintf "do enqueue <r%d>{string((//a)[1])}</r%d> into o2" i i
  | 2 -> Printf.sprintf "do enqueue <r%d>{1 idiv 0}</r%d> into o1" i i
  | 3 ->
    Printf.sprintf "(do enqueue <r%d/> into o1, do enqueue <r%d/> into o2)" i i
  | _ ->
    (* shared across rules: the hoisting pass must not change results *)
    Printf.sprintf "do enqueue <r%d>{count(//a) + count(//b) + count(//c)}</r%d> into o1"
      i i

let payloads =
  [| "<m><a/></m>"; "<m><b>x</b></m>"; "<m><a>1</a><b/></m>"; "<m><c/></m>"; "<m/>" |]

type gen_rule = { cond : int; body : int; has_else : bool; has_errq : bool }

let program_of rules =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    {|create queue q kind basic mode persistent
create queue o1 kind basic mode persistent
create queue o2 kind basic mode persistent
create queue errs kind basic mode persistent
|};
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "create rule r%d for q %sif (%s) then %s%s\n" i
           (if r.has_errq then "errorqueue errs " else "")
           conditions.(r.cond mod Array.length conditions)
           (rule_then i (r.body mod 5))
           (if r.has_else then Printf.sprintf " else do enqueue <e%d/> into o2" i
            else "")))
    rules;
  Buffer.contents buf

let observe ~merged program msgs =
  let config = { S.default_config with S.merged_plans = merged; S.workers = 1 } in
  let srv = S.deploy ~config program in
  List.iter
    (fun p ->
      match S.inject srv ~queue:"q" (Demaq.xml payloads.(p mod Array.length payloads)) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "inject: %s" (Demaq.Mq.Queue_manager.error_to_string e))
    msgs;
  ignore (S.run srv);
  let bodies q =
    List.map (fun m -> Demaq.xml_to_string (Message.body m)) (S.queue_contents srv q)
  in
  let st = S.stats srv in
  ( List.map bodies [ "q"; "o1"; "o2"; "errs" ],
    (st.S.processed, st.S.rule_evaluations, st.S.errors_raised, st.S.messages_created) )

let gen_case =
  QCheck.Gen.(
    pair
      (list_size (int_range 1 4)
         (map
            (fun (cond, body, (has_else, has_errq)) -> { cond; body; has_else; has_errq })
            (triple (int_range 0 20) (int_range 0 20) (pair bool bool))))
      (list_size (int_range 1 5) (int_range 0 20)))

let print_case (rules, msgs) =
  Printf.sprintf "%s\nmessages: %s" (program_of rules)
    (String.concat ", "
       (List.map (fun p -> payloads.(p mod Array.length payloads)) msgs))

let prop_merged_equivalent =
  QCheck.Test.make ~name:"guarded plan == per-rule interpretation" ~count:40
    (QCheck.make gen_case ~print:print_case)
    (fun (rules, msgs) ->
      let program = program_of rules in
      observe ~merged:true program msgs = observe ~merged:false program msgs)

(* ---- footprint-driven dispatch: pinned end-to-end regression ---- *)

let fanout_program =
  {|create queue inq kind basic mode persistent
    create queue o1 kind basic mode persistent
    create queue o2 kind basic mode persistent
    create rule ra for inq if (//a) then do enqueue <ya/> into o1
    create rule rb for inq if (//b) then do enqueue <yb/> into o2|}

let run_fanout ~footprint ~workers =
  let config =
    {
      S.default_config with
      S.footprint_dispatch = footprint;
      S.workers = workers;
      S.merged_plans = true;
    }
  in
  let srv = S.deploy ~config fanout_program in
  List.iter
    (fun p -> ignore (S.inject srv ~queue:"inq" (Demaq.xml p)))
    [ "<m><a/></m>"; "<m><b/></m>"; "<m><a/></m>"; "<m><b/></m>" ];
  ignore (S.run srv);
  let bodies q =
    List.map (fun m -> Demaq.xml_to_string (Message.body m)) (S.queue_contents srv q)
  in
  (bodies "o1", bodies "o2", (S.stats srv).S.errors_raised)

let test_footprint_dispatch_end_to_end () =
  (* same outputs with and without footprint partitioning; under
     footprint dispatch messages admitted by disjoint-resource rules may
     reorder across, but never within, a resource *)
  let base = run_fanout ~footprint:false ~workers:1 in
  let fp = run_fanout ~footprint:true ~workers:1 in
  check bool_ "single worker: identical" true (base = fp);
  let o1, o2, errors = run_fanout ~footprint:true ~workers:2 in
  check bool_ "o1 order preserved" true (o1 = [ "<ya/>"; "<ya/>" ]);
  check bool_ "o2 order preserved" true (o2 = [ "<yb/>"; "<yb/>" ]);
  check int_ "no errors" 0 errors

let suite =
  [
    ("guard sharing and CSE hoisting", `Quick, test_guard_sharing_and_cse);
    ("unstable guards are not shared", `Quick, test_unstable_guard_not_shared);
    ("unsatisfiable rules pruned", `Quick, test_pruning);
    ("pruned rule never runs", `Quick, test_pruned_rule_never_runs);
    ("open vocabulary disables pruning", `Quick, test_no_pruning_under_open_vocabulary);
    ("analysis warns on dead rules", `Quick, test_analysis_warns_on_dead_rule);
    ("conflict footprints", `Quick, test_footprints);
    QCheck_alcotest.to_alcotest prop_merged_equivalent;
    ("footprint dispatch end to end", `Quick, test_footprint_dispatch_end_to_end);
  ]

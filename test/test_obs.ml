(* Observability tests: the sharded metrics registry, the Prometheus
   exposition, lifecycle spans, and the scrape endpoint.

   The registry's contract is "exact at quiescence": shards are mutated
   without synchronization by the domain they are bound to, and reads
   aggregate across shards — after every writer has been joined the
   aggregate must equal the sum of everything recorded. The exposition
   and [Server.stats] must both be derivable from the same registry (one
   source of truth), and spans must stay well-formed through aborts and
   crash-restarts. *)

module M = Demaq.Obs.Metrics
module Trace = Demaq.Obs.Trace
module Http = Demaq.Net.Http
module S = Demaq.Server
module Store = Demaq.Store.Message_store
module Wal = Demaq.Store.Wal
module Fault = Demaq.Engine.Fault

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-obs-%s-%d" tag (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let inject_ok srv queue payload =
  match S.inject srv ~queue (Demaq.xml payload) with
  | Ok m -> m
  | Error e -> Alcotest.failf "inject: %s" (Demaq.Mq.Queue_manager.error_to_string e)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

(* ---- registry: sharded counters ---- *)

let test_counter_basics () =
  let reg = M.create ~shards:3 () in
  let c = M.counter reg "demaq_test_total" in
  check int_ "zero" 0 (M.value c);
  M.incr c;
  M.add c 41;
  check int_ "42" 42 (M.value c);
  let d = M.counter reg "demaq_other_total" in
  check int_ "independent" 0 (M.value d)

let test_shard_binding_aggregates () =
  (* four domains, each bound to its own shard, hammer one counter; the
     read-side aggregate must be the exact total once they are joined *)
  let reg = M.create ~shards:5 () in
  let c = M.counter reg "demaq_test_total" in
  let per_domain = 10_000 in
  let doms =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            M.bind_shard reg (i + 1);
            for _ = 1 to per_domain do
              M.incr c
            done))
  in
  Array.iter Domain.join doms;
  M.incr c (* coordinator writes shard 0 *);
  check int_ "sum across shards" ((4 * per_domain) + 1) (M.value c)

let prop_sharded_totals =
  QCheck.Test.make ~name:"registry totals = sum of per-shard increments"
    ~count:30
    QCheck.(
      quad (small_list small_nat) (small_list small_nat)
        (small_list small_nat) (small_list small_nat))
    (fun (a, b, c, d) ->
      let reg = M.create ~shards:5 () in
      let ctr = M.counter reg "demaq_test_total" in
      let h = M.histogram reg "demaq_test_seconds" in
      let parts = [| a; b; c; d |] in
      let doms =
        Array.mapi
          (fun i amounts ->
            Domain.spawn (fun () ->
                M.bind_shard reg (i + 1);
                List.iter
                  (fun n ->
                    M.add ctr n;
                    M.observe h n)
                  amounts))
          parts
      in
      Array.iter Domain.join doms;
      let expected =
        Array.fold_left (fun acc l -> acc + List.fold_left ( + ) 0 l) 0 parts
      in
      let observations = Array.fold_left (fun acc l -> acc + List.length l) 0 parts in
      M.value ctr = expected
      && match M.histogram_totals h with count, _ -> count = observations)

let test_unbound_domain_falls_back_to_shard_zero () =
  let reg = M.create ~shards:2 () in
  let c = M.counter reg "demaq_test_total" in
  let d = Domain.spawn (fun () -> M.incr c (* never bound: shard 0 *)) in
  Domain.join d;
  check int_ "recorded" 1 (M.value c)

let test_histogram_buckets () =
  let reg = M.create ~shards:1 () in
  (* shift -1, scale 1: bucket i covers values up to 2^i *)
  let h = M.histogram reg "demaq_test_records" ~shift:(-1) ~scale:1. in
  List.iter (M.observe h) [ 1; 2; 3; 900 ];
  let count, sum = M.histogram_totals h in
  check int_ "count" 4 count;
  check int_ "sum" 906 sum;
  let sample =
    List.find_map
      (function
        | M.Histogram { name = "demaq_test_records"; buckets; count; sum; _ } ->
          Some (buckets, count, sum)
        | _ -> None)
      (M.snapshot reg)
  in
  match sample with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some (buckets, count, sum) ->
    check int_ "snapshot count" 4 count;
    check bool_ "snapshot sum" true (abs_float (sum -. 906.) < 1e-9);
    (* cumulative, exclusive upper bounds: bucket [b] counts raw < b *)
    let le bound =
      match Array.find_opt (fun (b, _) -> b >= bound) buckets with
      | Some (_, n) -> n
      | None -> Alcotest.fail "bucket missing"
    in
    check int_ "under 1" 0 (le 1.);
    check int_ "under 2" 1 (le 2.);
    check int_ "under 4" 3 (le 4.);
    check int_ "under 1024" 4 (le 1024.)

let test_percentiles () =
  let reg = M.create ~shards:1 () in
  let h = M.histogram reg "demaq_test_records" ~shift:(-1) ~scale:1. in
  check bool_ "empty histogram is nan" true (Float.is_nan (M.percentile h 0.5));
  (* every observation in the (2,4] bucket: any quantile lands inside it *)
  for _ = 1 to 100 do
    M.observe h 3
  done;
  List.iter
    (fun q ->
      let v = M.percentile h q in
      check bool_ (Printf.sprintf "q=%.3f inside bucket" q) true
        (v > 2. && v <= 4.))
    [ 0.1; 0.5; 0.99; 1.0 ];
  (* a spread of observations: quantiles are monotone in q and bracket
     the observed range *)
  let h2 = M.histogram reg "demaq_test_spread" ~shift:(-1) ~scale:1. in
  for v = 1 to 1000 do
    M.observe h2 v
  done;
  let ps = M.percentiles h2 [ 0.5; 0.99; 0.999 ] in
  (match ps with
  | [ p50; p99; p999 ] ->
    check bool_ "monotone" true (p50 <= p99 && p99 <= p999);
    check bool_ "p50 near the middle" true (p50 > 256. && p50 <= 1024.);
    check bool_ "p999 below the top bucket bound" true (p999 <= 1024.)
  | _ -> Alcotest.fail "percentiles arity");
  (* an overflow observation (beyond the last bucket) still yields a
     finite estimate *)
  let h3 = M.histogram reg "demaq_test_over" ~shift:(-1) ~scale:1. in
  M.observe h3 max_int;
  check bool_ "overflow finite" true (Float.is_finite (M.percentile h3 0.99))

let test_timing_gate () =
  (* with timing off, [time] must not observe (and must not read a clock) *)
  let reg = M.create ~timing:false ~shards:1 () in
  let h = M.histogram reg "demaq_test_seconds" in
  check string_ "42" "42" (M.time h (fun () -> "42"));
  check bool_ "no observation" true (M.histogram_totals h = (0, 0));
  M.set_timing reg true;
  ignore (M.time h (fun () -> ()));
  check int_ "observed once enabled" 1 (fst (M.histogram_totals h))

(* ---- exposition / render ---- *)

(* first "<name> <value>" line of the exposition, as an int *)
let scrape_int exposition name =
  let prefix = name ^ " " in
  let lines = String.split_on_char '\n' exposition in
  match
    List.find_opt
      (fun l -> String.length l > String.length prefix
                && String.sub l 0 (String.length prefix) = prefix)
      lines
  with
  | None -> Alcotest.failf "metric %s not in exposition" name
  | Some l ->
    let v =
      String.sub l (String.length prefix) (String.length l - String.length prefix)
    in
    int_of_float (float_of_string (String.trim v))

let obs_program = {|
create queue in kind basic mode persistent
create queue out kind basic mode persistent
create queue errs kind basic mode persistent
create rule pong for in errorqueue errs
  if (//ping) then do enqueue <pong>{string(//ping)}</pong> into out
|}

let test_exposition_roundtrip () =
  (* every [Server.stats] counter must be derivable from the exposition:
     the registry is the single source of truth for both *)
  let config = { S.default_config with S.trace_capacity = 16 } in
  let srv = S.deploy ~config obs_program in
  for i = 1 to 5 do
    ignore (inject_ok srv "in" (Printf.sprintf "<ping>%d</ping>" i))
  done;
  ignore (S.run srv);
  let st = S.stats srv in
  let ex = S.exposition srv in
  let pairs =
    [
      ("demaq_processed_total", st.S.processed);
      ("demaq_rule_evaluations_total", st.S.rule_evaluations);
      ("demaq_messages_created_total", st.S.messages_created);
      ("demaq_errors_raised_total", st.S.errors_raised);
      ("demaq_transmissions_total", st.S.transmissions);
      ("demaq_timers_fired_total", st.S.timers_fired);
      ("demaq_gc_collected_total", st.S.gc_collected);
      ("demaq_prefilter_skips_total", st.S.prefilter_skips);
      ("demaq_txn_aborts_total", st.S.txn_aborts);
      ("demaq_transmit_retries_total", st.S.transmit_retries);
      ("demaq_dead_letters_total", st.S.dead_letters);
      ("demaq_wal_group_syncs_total", st.S.wal_group_syncs);
    ]
  in
  List.iter (fun (name, v) -> check int_ name v (scrape_int ex name)) pairs;
  check bool_ "something was processed" true (st.S.processed > 0);
  (* per-worker counters cover the engine's processed total *)
  let worker_sum =
    List.fold_left
      (fun acc (w : Demaq.Engine.Worker_pool.worker_stats) ->
        acc + w.Demaq.Engine.Worker_pool.w_processed)
      0 (S.worker_stats srv)
  in
  check int_ "worker counters sum to processed" st.S.processed worker_sum

let test_exposition_format () =
  let srv = S.deploy obs_program in
  ignore (inject_ok srv "in" "<ping>x</ping>");
  ignore (S.run srv);
  let ex = S.exposition srv in
  let lines = String.split_on_char '\n' ex in
  let has prefix =
    List.exists
      (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      lines
  in
  check bool_ "HELP present" true (has "# HELP demaq_processed_total");
  check bool_ "TYPE counter" true (has "# TYPE demaq_processed_total counter");
  check bool_ "TYPE histogram" true (has "# TYPE demaq_phase_eval_seconds histogram");
  check bool_ "+Inf bucket" true (contains ex {|le="+Inf"|})

let test_stats_json_shape () =
  let srv = S.deploy obs_program in
  ignore (inject_ok srv "in" "<ping>x</ping>");
  ignore (S.run srv);
  let js = S.stats_json srv in
  check bool_ "object" true
    (String.length js > 2 && js.[0] = '{' && js.[String.length js - 1] = '}');
  check bool_ "processed" true (contains js "\"demaq_processed_total\":2");
  check bool_ "derived ratio" true (contains js "\"syncs_per_message\":")

(* ---- lifecycle spans ---- *)

let well_formed (sp : Trace.span) =
  sp.Trace.sp_rid > 0
  && sp.Trace.sp_queue <> ""
  && sp.Trace.sp_lock_ns >= 0
  && sp.Trace.sp_eval_ns >= 0
  && sp.Trace.sp_apply_ns >= 0
  && sp.Trace.sp_barrier_ns >= 0
  && List.for_all (fun a -> a.Trace.a_rule <> "") sp.Trace.sp_activations

let test_spans_recorded () =
  let config = { S.default_config with S.trace_capacity = 8; metrics = true } in
  let srv = S.deploy ~config obs_program in
  ignore (inject_ok srv "in" "<ping>x</ping>");
  ignore (S.run srv);
  let spans = S.spans srv in
  check int_ "one span per processed message" 2 (List.length spans);
  check bool_ "well-formed" true (List.for_all well_formed spans);
  let on_in =
    List.find (fun sp -> sp.Trace.sp_queue = "in") spans
  in
  check int_ "rule fired" 1 (List.length on_in.Trace.sp_activations);
  check bool_ "committed" true (on_in.Trace.sp_outcome = Trace.Committed);
  check bool_ "timed" true (on_in.Trace.sp_eval_ns > 0);
  (* the JSONL dump has one line per span *)
  let jsonl = S.spans_jsonl srv in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  check int_ "jsonl lines" 2 (List.length lines);
  List.iter
    (fun l ->
      check bool_ "line is an object" true
        (l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

let test_spans_bounded () =
  let config = { S.default_config with S.trace_capacity = 3 } in
  let srv = S.deploy ~config obs_program in
  for i = 1 to 10 do
    ignore (inject_ok srv "in" (Printf.sprintf "<ping>%d</ping>" i))
  done;
  ignore (S.run srv);
  check int_ "ring bounded" 3 (List.length (S.spans srv))

let test_span_abort_outcome () =
  let config = { S.default_config with S.trace_capacity = 8 } in
  let srv = S.deploy ~config obs_program in
  let f = Fault.create () in
  Fault.fail_on_eval f 1;
  S.set_fault srv (Some f);
  ignore (inject_ok srv "in" "<ping>x</ping>");
  ignore (S.run srv);
  let aborted =
    List.filter
      (fun sp -> match sp.Trace.sp_outcome with Trace.Aborted _ -> true | _ -> false)
      (S.spans srv)
  in
  check int_ "abort recorded" 1 (List.length aborted);
  check bool_ "abort in jsonl" true (contains (S.spans_jsonl srv) "\"aborted:");
  check int_ "abort counter" 1 (S.stats srv).S.txn_aborts

let test_spans_across_crash_restart () =
  (* recovery reschedules unprocessed messages; the restarted server's
     spans must be well-formed and cover exactly the recovered work *)
  let dir = fresh_dir "spans" in
  let cfg = Store.durable_config ~sync:Wal.Sync_always dir in
  let st = Store.open_store cfg in
  let config = { S.default_config with S.trace_capacity = 16 } in
  let srv = S.deploy ~config ~store:st obs_program in
  ignore (inject_ok srv "in" "<ping>a</ping>");
  ignore (inject_ok srv "in" "<ping>b</ping>");
  ignore (S.step srv) (* process one, "crash" with one pending *);
  let st2 = Fault.crash_restart cfg st in
  let srv2 = S.deploy ~config ~store:st2 obs_program in
  ignore (S.run srv2);
  let spans = S.spans srv2 in
  check bool_ "recovered spans well-formed" true
    (spans <> [] && List.for_all well_formed spans);
  check bool_ "all committed" true
    (List.for_all (fun sp -> sp.Trace.sp_outcome = Trace.Committed) spans);
  check int_ "registry matches recovered work" (List.length spans)
    (S.stats srv2).S.processed;
  Store.close st2

(* ---- JSONL escaping ---- *)

let nasty_span =
  {
    Trace.sp_rid = 1;
    sp_queue = "q\"uote";
    sp_flow = "f\\low";
    sp_parent = -1;
    sp_cause = "in\ngress";
    sp_tick = 0;
    sp_worker = 0;
    sp_start_ns = 0;
    sp_wait_ns = 0;
    sp_lock_ns = 0;
    sp_decode_ns = 0;
    sp_eval_ns = 0;
    sp_apply_ns = 0;
    sp_barrier_ns = 0;
    sp_activations =
      [ { Trace.a_rule = "rule\twith\ttabs"; a_updates = 1; a_skipped = false } ];
    sp_actions = 1;
    sp_batch = 1;
    sp_outcome = Trace.Aborted "ctrl\x01char and \"quote\"";
  }

let test_jsonl_escaping () =
  check string_ "quote" {|a\"b|} (Trace.json_escape {|a"b|});
  check string_ "backslash" {|a\\b|} (Trace.json_escape {|a\b|});
  check string_ "newline" {|a\nb|} (Trace.json_escape "a\nb");
  check string_ "control" {|a\u0001b|} (Trace.json_escape "a\x01b");
  let js = Trace.span_json nasty_span in
  (* a line of JSONL must never contain a raw control character or an
     unescaped quote inside a string body *)
  String.iter
    (fun c ->
      check bool_ "no raw control chars" true (Char.code c >= 0x20))
    js;
  check bool_ "queue quote escaped" true (contains js {|"queue":"q\"uote"|});
  check bool_ "flow backslash escaped" true (contains js {|"flow":"f\\low"|});
  check bool_ "cause newline escaped" true (contains js {|in\ngress|});
  check bool_ "rule tabs escaped" true (contains js {|rule\twith\ttabs|});
  check bool_ "abort reason escaped" true
    (contains js {|ctrl\u0001char and \"quote\"|});
  (* the ring dumps it as one well-formed line *)
  let ring = Trace.create ~capacity:4 in
  Trace.record ring nasty_span;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Trace.dump_jsonl ring))
  in
  check int_ "one line" 1 (List.length lines);
  List.iter
    (fun l ->
      check bool_ "line is an object" true
        (l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

(* ---- flow/wait metrics in the exposition ---- *)

let test_flow_metrics_exposition () =
  let config =
    { S.default_config with S.trace_capacity = 2; metrics = true }
  in
  let srv = S.deploy ~config obs_program in
  for i = 1 to 5 do
    ignore (inject_ok srv "in" (Printf.sprintf "<ping>%d</ping>" i))
  done;
  ignore (S.run srv);
  let ex = S.exposition srv in
  (* queue-wait histograms: per-queue series, with HELP/TYPE on the
     label-free family name *)
  check bool_ "wait histogram present" true
    (contains ex "demaq_queue_wait_seconds{queue=");
  check bool_ "wait family typed" true
    (contains ex "# TYPE demaq_queue_wait_seconds histogram");
  (* span-ring drop accounting: 5 pings -> 10 spans, capacity 2 *)
  check int_ "trace drops exposed" 8 (scrape_int ex "demaq_trace_dropped_total");
  check bool_ "trace drops typed" true
    (contains ex "# TYPE demaq_trace_dropped_total counter");
  (* build info + uptime *)
  check bool_ "build info labels" true
    (contains ex "demaq_build_info{version=\"");
  check bool_ "uptime gauge" true (contains ex "demaq_uptime_seconds");
  (* and all of it round-trips into the JSON snapshot *)
  let js = S.stats_json srv in
  check bool_ "drops in stats json" true
    (contains js "\"demaq_trace_dropped_total\":8")

(* ---- flow store: trees, bounds, critical path ---- *)

module Flow = Demaq.Obs.Flow

let span_for ?(wait = 0) ?(eval = 0) ~flow ~rid ~parent ~cause () =
  {
    nasty_span with
    Trace.sp_rid = rid;
    sp_queue = "q";
    sp_flow = flow;
    sp_parent = parent;
    sp_cause = cause;
    sp_wait_ns = wait;
    sp_eval_ns = eval;
    sp_activations = [];
    sp_outcome = Trace.Committed;
  }

let test_flow_store_trees () =
  let t = Flow.create ~max_flows:2 ~max_nodes_per_flow:3 () in
  let edge ~rid ~parent ~cause flow =
    Flow.observe t ~rid ~queue:"q" ~flow ~parent ~cause ~tick:rid
  in
  edge ~rid:1 ~parent:(-1) ~cause:"ingress" "f1";
  edge ~rid:2 ~parent:1 ~cause:"a" "f1";
  edge ~rid:3 ~parent:1 ~cause:"b" "f1";
  edge ~rid:1 ~parent:(-1) ~cause:"ingress" "f1" (* idempotent per rid *);
  edge ~rid:4 ~parent:2 ~cause:"c" "f1" (* over the per-flow cap *);
  check int_ "per-flow cap holds" 3 (List.length (Flow.nodes t "f1"));
  check int_ "overflow counted" 1 (Flow.dropped t "f1");
  check (Alcotest.option string_) "reverse index" (Some "f1")
    (Flow.flow_of_rid t 2);
  (* spans attach by flow + rid; the slow branch wins the critical path *)
  Flow.attach t (span_for ~wait:10 ~flow:"f1" ~rid:1 ~parent:(-1) ~cause:"ingress" ());
  Flow.attach t (span_for ~wait:5 ~flow:"f1" ~rid:2 ~parent:1 ~cause:"a" ());
  Flow.attach t (span_for ~wait:100 ~eval:50 ~flow:"f1" ~rid:3 ~parent:1 ~cause:"b" ());
  (match Flow.forest_of_nodes (Flow.nodes t "f1") with
   | [ root ] ->
     check int_ "root rid" 1 root.Flow.t_node.Flow.n_rid;
     check int_ "two children" 2 (List.length root.Flow.t_children);
     let total, path = Flow.critical_path root in
     check int_ "critical path cost" 160 total;
     check (Alcotest.list int_) "critical path rids" [ 1; 3 ] path
   | forest -> Alcotest.failf "expected one root, got %d" (List.length forest));
  let ascii = Flow.render_ascii "f1" (Flow.nodes t "f1") in
  check bool_ "ascii names the cause" true (contains ascii "<-ingress");
  check bool_ "ascii marks critical path" true (contains ascii "*");
  (* FIFO flow eviction: two more flows push f1 out *)
  edge ~rid:10 ~parent:(-1) ~cause:"ingress" "f2";
  edge ~rid:11 ~parent:(-1) ~cause:"ingress" "f3";
  check int_ "f1 evicted" 0 (List.length (Flow.nodes t "f1"));
  check int_ "one eviction" 1 (Flow.evicted t);
  check (Alcotest.option string_) "evicted rid unindexed" None
    (Flow.flow_of_rid t 2);
  check int_ "nothing overwritten" 0 (Flow.overwritten t)

(* ---- provenance across crash-restart ---- *)

let test_provenance_across_crash_restart () =
  let dir = fresh_dir "prov" in
  let cfg = Store.durable_config ~sync:Wal.Sync_always dir in
  let st = Store.open_store cfg in
  let config = { S.default_config with S.trace_capacity = 16 } in
  let srv = S.deploy ~config ~store:st obs_program in
  let root = inject_ok srv "in" "<ping>a</ping>" in
  let rid = root.Demaq.Message.rid in
  ignore (S.run srv);
  let flow =
    match S.flow_id_of_rid srv rid with
    | Some f -> f
    | None -> Alcotest.fail "no flow for the injected root"
  in
  check int_ "cascade recorded" 2 (List.length (S.flow_nodes srv flow));
  (* crash: reopen the store; the provenance triples must come back from
     the WAL even though the span ring and flow store restart empty *)
  let st2 = Fault.crash_restart cfg st in
  let srv2 = S.deploy ~config ~store:st2 obs_program in
  check (Alcotest.option string_) "rid still resolves" (Some flow)
    (S.flow_id_of_rid srv2 rid);
  let nodes = S.flow_nodes srv2 flow in
  check int_ "both hops survive" 2 (List.length nodes);
  let child =
    match List.find_opt (fun n -> n.Flow.n_rid <> rid) nodes with
    | Some n -> n
    | None -> Alcotest.fail "child hop missing"
  in
  check int_ "edge intact" rid child.Flow.n_parent;
  check string_ "cause intact" "pong" child.Flow.n_cause;
  check string_ "same flow" flow child.Flow.n_flow;
  (* pre-crash timings are gone, never invented *)
  check bool_ "pre-crash hops render pending" true
    (contains (S.flow_ascii srv2 flow) "pending");
  Store.close st2

(* ---- scrape endpoint ---- *)

let test_http_endpoint () =
  let srv = S.deploy obs_program in
  ignore (inject_ok srv "in" "<ping>x</ping>");
  ignore (S.run srv);
  let handler (req : Http.request) =
    match req.Http.path with
    | "/metrics" ->
      Some
        (Http.ok ~content_type:"text/plain; version=0.0.4" (S.exposition srv))
    | _ -> None
  in
  match Http.start ~port:0 handler with
  | Error msg -> Alcotest.failf "http start: %s" msg
  | Ok server ->
    Fun.protect
      ~finally:(fun () -> Http.stop server)
      (fun () ->
        let port = Http.port server in
        check bool_ "ephemeral port assigned" true (port > 0);
        let status, body = Http.get ~port "/metrics" in
        check bool_ "200" true (contains status "200");
        check int_ "scraped processed total" (S.stats srv).S.processed
          (scrape_int body "demaq_processed_total");
        let status, _ = Http.get ~port "/nope" in
        check bool_ "404" true (contains status "404"))

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "shard binding aggregates" `Quick
      test_shard_binding_aggregates;
    QCheck_alcotest.to_alcotest prop_sharded_totals;
    Alcotest.test_case "unbound domain falls back to shard 0" `Quick
      test_unbound_domain_falls_back_to_shard_zero;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "timing gate" `Quick test_timing_gate;
    Alcotest.test_case "exposition round-trips Server.stats" `Quick
      test_exposition_roundtrip;
    Alcotest.test_case "exposition format" `Quick test_exposition_format;
    Alcotest.test_case "stats json shape" `Quick test_stats_json_shape;
    Alcotest.test_case "spans recorded" `Quick test_spans_recorded;
    Alcotest.test_case "spans bounded" `Quick test_spans_bounded;
    Alcotest.test_case "span abort outcome" `Quick test_span_abort_outcome;
    Alcotest.test_case "spans across crash-restart" `Quick
      test_spans_across_crash_restart;
    Alcotest.test_case "jsonl escaping" `Quick test_jsonl_escaping;
    Alcotest.test_case "flow/wait metrics exposition" `Quick
      test_flow_metrics_exposition;
    Alcotest.test_case "flow store trees" `Quick test_flow_store_trees;
    Alcotest.test_case "provenance across crash-restart" `Quick
      test_provenance_across_crash_restart;
    Alcotest.test_case "http endpoint" `Quick test_http_endpoint;
  ]

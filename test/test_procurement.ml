(* The paper's running example: the distributed procurement scenario of
   §3 (Figs. 3-10), executed end to end on the engine.

   - Fig. 3/4: the workflow and message flow between crm, finance, legal,
     supplier, customer queues.
   - Fig. 5 (Example 3.1): forking the three checks.
   - Fig. 6 (Example 3.2): credit rating against the invoices queue.
   - Fig. 7 (Example 3.3): joining the parallel checks with a slicing.
   - Fig. 8: resetting the slice after completion.
   - Fig. 9 (Example 3.4): invoice retention + reminders via an echo queue.
   - Fig. 10 (Example 3.5): error handling for disconnected endpoints.

   The QML below follows the paper's listings closely; where the paper
   elides code ("..." / "(:problems:)") we fill in the obvious content.
   One deliberate deviation, noted inline: joinOrder carries a
   "not yet answered" guard so the offer is produced exactly once (the
   paper's listing would fire again when the offer message itself arrives
   in the slice). *)

module Tree = Demaq.Xml.Tree
module Value = Demaq.Value
module Message = Demaq.Message
module Net = Demaq.Network
module S = Demaq.Server
module Defs = Demaq.Mq.Defs

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let xml = Demaq.xml

let program = {|
(: ---- queues (Fig. 1 bottom pane, §2.1) ---- :)
create queue crm kind basic mode persistent
create queue finance kind basic mode persistent
create queue legal kind basic mode persistent
create queue invoices kind basic mode persistent
create queue supplier kind outgoingGateway mode persistent
  interface supplier.wsdl port CapacityRequestPort
  using WS-ReliableMessaging policy wsrmpol.xml
create queue supplierIn kind incomingGateway mode persistent
create queue customer kind outgoingGateway mode persistent
create queue postalService kind outgoingGateway mode persistent
create queue echoQueue kind echo mode persistent
create queue crmErrors kind basic mode persistent

(: ---- properties and slicings (§2.2, Fig. 7, Fig. 9) ---- :)
create property requestID as xs:string fixed
  queue crm, customer value //requestID
  queue supplierIn value //requestID
create slicing requestMsgs on requestID

create property messageRequestID as xs:string fixed
  queue invoices, finance value //requestID
create slicing invoiceRetention on messageRequestID

(: ---- Fig. 5 / Example 3.1: fork the three checks ---- :)
create rule forkChecks for crm
  if (//offerRequest) then
    let $rid := string(//offerRequest/requestID)
    let $cid := string(//offerRequest/customerID)
    return (
      do enqueue <creditCheck><requestID>{$rid}</requestID><customerID>{$cid}</customerID></creditCheck>
        into finance,
      do enqueue <restrictionCheck><requestID>{$rid}</requestID><items>{//offerRequest/items/item}</items></restrictionCheck>
        into legal,
      do enqueue <capacityRequest><requestID>{$rid}</requestID></capacityRequest>
        into supplier
        with Sender value "demaq-node"
    )

(: ---- Fig. 6 / Example 3.2: credit rating against the invoices queue ---- :)
create rule creditRating for finance
  if (//creditCheck) then
    let $cid := string(//creditCheck/customerID)
    let $unpaid := qs:queue("invoices")[//customerID = $cid][not(//paid)]
    return
      if (count($unpaid) < 2) then
        do enqueue <customerInfoResult><requestID>{string(//creditCheck/requestID)}</requestID><accept/></customerInfoResult>
          into crm
      else
        do enqueue <customerInfoResult><requestID>{string(//creditCheck/requestID)}</requestID><reject/></customerInfoResult>
          into crm

create rule exportRestrictions for legal
  if (//restrictionCheck) then
    do enqueue <restrictionsResult>
        <requestID>{string(//restrictionCheck/requestID)}</requestID>
        {//restrictionCheck/items/item[. = "plutonium"]/<restrictedItem/>}
      </restrictionsResult> into crm

create rule capacityReply for supplierIn
  if (//capacityResult) then
    do enqueue <capacityResult><requestID>{string(//requestID)}</requestID>{//accept}{//reject}</capacityResult>
      into crm

(: ---- Fig. 7 / Example 3.3: join the parallel control flows ---- :)
create rule joinOrder for requestMsgs
  if (qs:slice()[/customerInfoResult] and
      qs:slice()[/restrictionsResult] and
      qs:slice()[/capacityResult] and
      (: deviation: fire exactly once per request :)
      not(qs:slice()[/offer] or qs:slice()[/refusal])) then
    if (qs:slice()[/customerInfoResult/accept] and
        not(qs:slice()[/restrictionsResult//restrictedItem]) and
        qs:slice()[/capacityResult//accept]) then
      let $request := qs:queue("crm")/offerRequest
      let $items := $request[//requestID = qs:slicekey()]/items
      let $pricelist := collection("crm")[/pricelist]
      let $offer := <offer>
          <requestID>{string(qs:slicekey())}</requestID>
          {$items}
          <total>{sum(for $i in $items/item return number($pricelist//price[@item = string($i)]))}</total>
        </offer>
      return do enqueue $offer into customer
    else (: problems :)
      do enqueue <refusal><requestID>{string(qs:slicekey())}</requestID></refusal>
        into customer

(: ---- Fig. 8: reset once answered ---- :)
create rule cleanupRequest for requestMsgs
  if (qs:slice()[/offer] or qs:slice()[/refusal]) then
    do reset

(: ---- Fig. 9 / Example 3.4: invoice retention and payment reminders ---- :)
create rule resetPayedInvoices for invoiceRetention
  if (qs:slice()[//timeoutNotification]
      and qs:slice()[/paymentConfirmation]) then
    do reset

create rule startPaymentTimer for invoices
  if (//invoice) then
    do enqueue <timeoutNotification><requestID>{string(//requestID)}</requestID></timeoutNotification>
      into echoQueue
      with timeout value 30
      with target value "finance"

create rule checkPayment for finance
  if (//timeoutNotification) then
    let $mRID := qs:message()//requestID
    let $payments := qs:queue()[/paymentConfirmation]
    return
      if (not($payments[//requestID = $mRID])) then
        let $invoice := qs:queue("invoices")[//requestID = $mRID]
        let $reminder := <reminder>
            <requestID>{string($mRID)}</requestID>
            {$invoice//amount}
          </reminder>
        return do enqueue $reminder into customer
      else ()

(: ---- Fig. 10 / Example 3.5: error handling ---- :)
create rule confirmOrder for crm errorqueue crmErrors
  if (//customerOrder) then (: send confirmation :)
    let $confirmation := <confirmation>{//orderID}</confirmation>
    return do enqueue $confirmation into customer

create rule deadLink for crmErrors
  if (/error/disconnectedTransport) then
    (: send confirmation via snail mail :)
    let $orders := qs:queue("crm")//customerOrder
    let $initialOrderID := /error/initialMessage//orderID
    let $address := $orders[orderID = $initialOrderID]/address
    let $requestMail := <sendMessage>{$address}{/error/initialMessage/*}</sendMessage>
    return do enqueue $requestMail into postalService
|}

(* ---- fixture: the remote partners of Fig. 3 ---- *)

type world = {
  srv : S.t;
  net : Net.t;
  customer_inbox : Tree.tree list ref;
  postal_inbox : Tree.tree list ref;
  supplier_accepts : bool ref;
}

let make_world () =
  let net = Net.create () in
  let customer_inbox = ref [] in
  let postal_inbox = ref [] in
  let supplier_accepts = ref true in
  Net.register net ~name:"supplier" ~handler:(fun ~sender:_ body ->
      match Tree.find_child body "requestID" with
      | Some rid ->
        [ Tree.elem "capacityResult"
            [ rid; Tree.elem (if !supplier_accepts then "accept" else "reject") [] ] ]
      | None -> []);
  Net.register net ~name:"customer" ~handler:(fun ~sender:_ body ->
      customer_inbox := !customer_inbox @ [ body ];
      []);
  Net.register net ~name:"postalService" ~handler:(fun ~sender:_ body ->
      postal_inbox := !postal_inbox @ [ body ];
      []);
  let srv = S.deploy ~network:net program in
  S.bind_gateway srv ~queue:"supplier" ~endpoint:"supplier" ~replies_to:"supplierIn" ();
  S.bind_gateway srv ~queue:"customer" ~endpoint:"customer" ();
  S.bind_gateway srv ~queue:"postalService" ~endpoint:"postalService" ();
  (* master data for Fig. 7's collection("crm") *)
  S.set_collection srv "crm"
    [ xml "<pricelist><price item=\"glue\">5</price><price item=\"paint\">12</price><price item=\"plutonium\">100000</price></pricelist>" ];
  { srv; net; customer_inbox; postal_inbox; supplier_accepts }

let offer_request ?(items = [ "glue"; "paint" ]) rid =
  Printf.sprintf
    "<offerRequest><requestID>%s</requestID><customerID>c7</customerID><items>%s</items></offerRequest>"
    rid
    (String.concat "" (List.map (fun i -> "<item>" ^ i ^ "</item>") items))

let inject_ok w queue payload =
  match S.inject w.srv ~queue (xml payload) with
  | Ok m -> m
  | Error e -> Alcotest.failf "inject: %s" (Demaq.Mq.Queue_manager.error_to_string e)

let names trees = List.map (fun t ->
    match Tree.element_name t with
    | Some n -> Demaq.Xml.Name.local n
    | None -> "?") trees

(* ---- the happy path: Figs. 3, 4, 5, 6, 7 ---- *)

let test_happy_path_offer () =
  let w = make_world () in
  ignore (inject_ok w "crm" (offer_request "r1"));
  ignore (S.run w.srv);
  (* Fig. 4's flow: one offer reaches the customer *)
  (match !(w.customer_inbox) with
   | [ offer ] ->
     check string_ "offer element" "offer"
       (Demaq.Xml.Name.local (Option.get (Tree.element_name offer)));
     check string_ "request correlated" "r1"
       (Tree.tree_string_value (Option.get (Tree.find_child offer "requestID")));
     (* price list join: glue 5 + paint 12 *)
     check string_ "total priced from collection" "17"
       (Tree.tree_string_value (Option.get (Tree.find_child offer "total")))
   | l -> Alcotest.failf "expected one offer, got %s" (String.concat "," (names l)));
  (* intermediate queues saw the expected messages (Fig. 4) *)
  let queue_elems q =
    List.map (fun m ->
        Demaq.Xml.Name.local (Option.get (Tree.element_name (Message.body m))))
      (S.queue_contents w.srv q)
  in
  check bool_ "finance got creditCheck" true (List.mem "creditCheck" (queue_elems "finance"));
  check bool_ "legal got restrictionCheck" true
    (List.mem "restrictionCheck" (queue_elems "legal"));
  check bool_ "crm collected the three results" true
    (List.sort compare
       (List.filter (fun n -> n <> "offerRequest") (queue_elems "crm"))
     = [ "capacityResult"; "customerInfoResult"; "restrictionsResult" ])

let test_refusal_on_restricted_item () =
  let w = make_world () in
  ignore (inject_ok w "crm" (offer_request ~items:[ "glue"; "plutonium" ] "r2"));
  ignore (S.run w.srv);
  match !(w.customer_inbox) with
  | [ t ] -> check string_ "refusal" "refusal"
      (Demaq.Xml.Name.local (Option.get (Tree.element_name t)))
  | l -> Alcotest.failf "expected one refusal, got %s" (String.concat "," (names l))

let test_refusal_on_supplier_reject () =
  let w = make_world () in
  w.supplier_accepts := false;
  ignore (inject_ok w "crm" (offer_request "r3"));
  ignore (S.run w.srv);
  check bool_ "refused" true (names !(w.customer_inbox) = [ "refusal" ])

let test_refusal_on_bad_credit () =
  let w = make_world () in
  (* Fig. 6: two unpaid invoices for the customer block the order *)
  ignore (inject_ok w "invoices" "<invoice><requestID>old1</requestID><customerID>c7</customerID><amount>10</amount></invoice>");
  ignore (inject_ok w "invoices" "<invoice><requestID>old2</requestID><customerID>c7</customerID><amount>20</amount></invoice>");
  ignore (S.run w.srv);
  S.advance_time w.srv 1000;  (* let their payment timers fire and pass *)
  ignore (S.run w.srv);
  w.customer_inbox := [];
  ignore (inject_ok w "crm" (offer_request "r4"));
  ignore (S.run w.srv);
  check bool_ "refusal for bad credit" true (List.mem "refusal" (names !(w.customer_inbox)))

let test_exactly_one_offer () =
  let w = make_world () in
  ignore (inject_ok w "crm" (offer_request "r5"));
  ignore (S.run w.srv);
  ignore (S.run w.srv);
  check int_ "one message at customer" 1 (List.length !(w.customer_inbox))

let test_parallel_requests_isolated () =
  (* Fig. 2: several transactions, each slice isolated by its key *)
  let w = make_world () in
  List.iter (fun rid -> ignore (inject_ok w "crm" (offer_request rid)))
    [ "a"; "b"; "c"; "d" ];
  ignore (S.run w.srv);
  check int_ "four answers" 4 (List.length !(w.customer_inbox));
  let rids =
    List.sort compare
      (List.map (fun t ->
           Tree.tree_string_value (Option.get (Tree.find_child t "requestID")))
         !(w.customer_inbox))
  in
  check bool_ "all four correlated" true (rids = [ "a"; "b"; "c"; "d" ])

(* ---- Fig. 8: retention after the slice reset ---- *)

let test_cleanup_and_gc () =
  let w = make_world () in
  ignore (inject_ok w "crm" (offer_request "r6"));
  ignore (S.run w.srv);
  (* cleanupRequest has reset the slice; all request messages are
     processed, so the GC can drop them (§2.3.3) *)
  let collected = S.gc w.srv in
  check bool_ "slice members collected" true (collected >= 4);
  check int_ "crm drained" 0 (List.length (S.queue_contents w.srv "crm"))

let test_retention_before_answer () =
  let w = make_world () in
  (* without the capacity reply the slice stays live: nothing may be GCed *)
  Net.set_connected w.net "supplier" false;
  ignore (inject_ok w "crm" (offer_request "r7"));
  ignore (S.run w.srv);
  check int_ "no answer yet" 0 (List.length !(w.customer_inbox));
  ignore (S.gc w.srv);
  check bool_ "request retained" true
    (List.exists
       (fun m ->
         Demaq.Xml.Name.local (Option.get (Tree.element_name (Message.body m)))
         = "offerRequest")
       (S.queue_contents w.srv "crm"))

(* ---- Fig. 9: payment reminders through the echo queue ---- *)

let test_payment_reminder () =
  let w = make_world () in
  ignore (inject_ok w "invoices" "<invoice><requestID>inv1</requestID><customerID>c9</customerID><amount>250</amount></invoice>");
  ignore (S.run w.srv);
  (* no payment arrives; the timeout fires after 30 ticks *)
  S.advance_time w.srv 31;
  ignore (S.run w.srv);
  (match !(w.customer_inbox) with
   | [ reminder ] ->
     check string_ "reminder sent" "reminder"
       (Demaq.Xml.Name.local (Option.get (Tree.element_name reminder)));
     check string_ "invoice data included" "250"
       (Tree.tree_string_value (Option.get (Tree.find_child reminder "amount")))
   | l -> Alcotest.failf "expected one reminder, got %s" (String.concat "," (names l)))

let test_no_reminder_when_paid () =
  let w = make_world () in
  ignore (inject_ok w "invoices" "<invoice><requestID>inv2</requestID><customerID>c9</customerID><amount>99</amount></invoice>");
  ignore (S.run w.srv);
  (* the payment confirmation arrives before the timeout *)
  ignore (inject_ok w "finance" "<paymentConfirmation><requestID>inv2</requestID></paymentConfirmation>");
  ignore (S.run w.srv);
  S.advance_time w.srv 31;
  ignore (S.run w.srv);
  check int_ "no reminder" 0 (List.length !(w.customer_inbox));
  (* Fig. 9's retention: once both timeout and payment are in the slice,
     resetPayedInvoices resets it and the GC can clean up *)
  ignore (S.gc w.srv);
  check int_ "invoices drained" 0 (List.length (S.queue_contents w.srv "invoices"))

(* ---- Fig. 10: the dead-link compensation ---- *)

let test_dead_link_snail_mail () =
  let w = make_world () in
  Net.set_connected w.net "customer" false;
  ignore
    (inject_ok w "crm"
       "<customerOrder><orderID>o77</orderID><address>12 Main St</address></customerOrder>");
  ignore (S.run w.srv);
  (* electronic confirmation failed; deadLink reroutes via postalService *)
  check int_ "no electronic delivery" 0 (List.length !(w.customer_inbox));
  (match !(w.postal_inbox) with
   | [ mail ] ->
     check string_ "sendMessage element" "sendMessage"
       (Demaq.Xml.Name.local (Option.get (Tree.element_name mail)));
     let text = Demaq.xml_to_string mail in
     let has sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length text && (String.sub text i n = sub || go (i + 1)) in
       go 0
     in
     check bool_ "address recovered from crm queue" true (has "12 Main St");
     check bool_ "original confirmation embedded" true (has "<confirmation>")
   | l -> Alcotest.failf "expected one letter, got %s" (String.concat "," (names l)));
  (* the error itself is documented in crmErrors *)
  check int_ "error message recorded" 1 (List.length (S.queue_contents w.srv "crmErrors"))

let test_gateway_uses_reliable_messaging () =
  (* the supplier gateway declares WS-ReliableMessaging: a lossy wire must
     still deliver the capacity request *)
  let w = make_world () in
  Net.set_drop_rate w.net "supplier" 0.5;
  ignore (inject_ok w "crm" (offer_request "r8"));
  ignore (S.run w.srv);
  check bool_ "offer still produced" true (List.length !(w.customer_inbox) = 1)

let test_reliable_retries_exhausted () =
  (* a fully dead wire: the transport retries a bounded number of times per
     transmission, the engine re-arms the transmission with backoff a
     bounded number of times, and only then is the delivery timeout
     reported as an error message (no silent drop) *)
  let w = make_world () in
  Net.set_drop_rate w.net "supplier" 1.0;
  ignore (inject_ok w "crm" (offer_request "r8x"));
  ignore (S.run w.srv);
  check int_ "wire-level retries used" 5 (Net.stats w.net).Net.attempts;
  for _ = 1 to 8 do
    S.advance_time w.srv 10;
    ignore (S.run w.srv)
  done;
  let retries = (S.config w.srv).S.transmit_retries in
  check int_ "engine-level retries used" (5 * (retries + 1)) (Net.stats w.net).Net.attempts;
  check bool_ "timeout surfaced as error" true ((S.stats w.srv).S.errors_raised >= 1);
  check int_ "dead-lettered" 1 (S.stats w.srv).S.dead_letters;
  check int_ "no answer" 0 (List.length !(w.customer_inbox))

let test_stats_plausible () =
  let w = make_world () in
  ignore (inject_ok w "crm" (offer_request "r9"));
  ignore (S.run w.srv);
  let st = S.stats w.srv in
  check bool_ "messages processed" true (st.S.processed >= 7);
  check bool_ "rules evaluated" true (st.S.rule_evaluations >= st.S.processed);
  check int_ "no errors on happy path" 0 st.S.errors_raised

let suite =
  [
    ("happy path produces a priced offer (Figs. 3-7)", `Quick, test_happy_path_offer);
    ("restricted item refusal (Fig. 7 else)", `Quick, test_refusal_on_restricted_item);
    ("supplier reject refusal", `Quick, test_refusal_on_supplier_reject);
    ("bad credit refusal (Fig. 6)", `Quick, test_refusal_on_bad_credit);
    ("exactly one answer per request", `Quick, test_exactly_one_offer);
    ("parallel requests isolated (Fig. 2)", `Quick, test_parallel_requests_isolated);
    ("cleanup + retention GC (Fig. 8)", `Quick, test_cleanup_and_gc);
    ("retention while undecided", `Quick, test_retention_before_answer);
    ("payment reminder on timeout (Fig. 9)", `Quick, test_payment_reminder);
    ("no reminder when paid (Fig. 9)", `Quick, test_no_reminder_when_paid);
    ("dead link snail mail (Fig. 10)", `Quick, test_dead_link_snail_mail);
    ("reliable messaging on lossy wire (§2.1.2)", `Quick, test_gateway_uses_reliable_messaging);
    ("reliable retries exhausted", `Quick, test_reliable_retries_exhausted);
    ("pipeline statistics", `Quick, test_stats_plausible);
  ]

let () =
  Alcotest.run "demaq"
    [
      ("xml", Test_xml.suite);
      ("bxml", Test_bxml.suite);
      ("value", Test_value.suite);
      ("xquery", Test_xquery.suite);
      ("xquery-ext", Test_xquery_ext.suite);
      ("store", Test_store.suite);
      ("btree", Test_btree.suite);
      ("heap-file", Test_heap_file.suite);
      ("locks", Test_locks.suite);
      ("net", Test_net.suite);
      ("wsdl", Test_wsdl.suite);
      ("mq", Test_mq.suite);
      ("lang", Test_lang.suite);
      ("plan", Test_plan.suite);
      ("engine", Test_engine.suite);
      ("crash", Test_crash.suite);
      ("procurement", Test_procurement.suite);
      ("baseline", Test_baseline.suite);
      ("evolution", Test_evolution.suite);
      ("time", Test_time.suite);
      ("robustness", Test_robustness.suite);
      ("prefilter", Test_prefilter.suite);
      ("obs", Test_obs.suite);
      ("adaptive", Test_adaptive.suite);
      ("http", Test_http.suite);
      ("sim", Test_sim.suite);
    ]

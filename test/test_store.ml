(* Tests for lib/store: codec, CRC, WAL, transactions, recovery, checkpoints. *)

module Codec = Demaq.Store.Codec
module Crc32 = Demaq.Store.Crc32
module Wal = Demaq.Store.Wal
module Vec = Demaq.Store.Vec
module Store = Demaq.Store.Message_store

let check = Alcotest.check
let string_ = Alcotest.string
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Unix.mkdir dir 0o755;
  dir

(* ---- vec ---- *)

let test_vec () =
  let v = Vec.create ~dummy:0 in
  for i = 1 to 100 do Vec.push v i done;
  check int_ "length" 100 (Vec.length v);
  check int_ "get" 42 (Vec.get v 41);
  check int_ "fold" 5050 (Vec.fold ( + ) 0 v);
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  check int_ "filtered" 50 (Vec.length v);
  check bool_ "to_list ordered" true
    (Vec.to_list v = List.init 50 (fun i -> 2 * (i + 1)))

(* ---- crc ---- *)

let test_crc32 () =
  (* Known value: CRC32("123456789") = 0xCBF43926 *)
  check int_ "standard check value" 0xCBF43926 (Crc32.string "123456789");
  check bool_ "differs on change" true (Crc32.string "a" <> Crc32.string "b")

(* ---- codec ---- *)

let test_codec_roundtrip () =
  let buf = Buffer.create 64 in
  Codec.put_int buf (-42);
  Codec.put_string buf "hello \x00 world";
  Codec.put_bool buf true;
  Codec.put_list buf Codec.put_int [ 1; 2; 3 ];
  let r = Codec.reader (Buffer.contents buf) in
  check int_ "int" (-42) (Codec.get_int r);
  check string_ "string with NUL" "hello \x00 world" (Codec.get_string r);
  check bool_ "bool" true (Codec.get_bool r);
  check bool_ "list" true (Codec.get_list r Codec.get_int = [ 1; 2; 3 ]);
  check bool_ "at end" true (Codec.at_end r)

let test_codec_truncation () =
  let r = Codec.reader "\x01\x02" in
  match Codec.get_int r with
  | _ -> Alcotest.fail "expected decode error"
  | exception Codec.Decode_error _ -> ()

(* ---- wal ---- *)

let sample_ops =
  [
    Wal.Insert { rid = 1; queue = "q"; payload = "<m/>"; extra = "x"; enqueued_at = 5 };
    Wal.Mark_processed { rid = 1 };
    Wal.Slice_reset { slicing = "s"; key = "k"; lifetime = 2 };
    Wal.Delete { rid = 1; image = "<m/>" };
  ]

let test_wal_roundtrip () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "wal.log" in
  let wal = Wal.open_log ~sync:Wal.Sync_never path in
  Wal.append wal (Wal.Commit { txn = 7; ops = sample_ops });
  Wal.append wal Wal.Checkpoint;
  Wal.close wal;
  let records = ref [] in
  ignore (Wal.replay path (fun r -> records := r :: !records));
  match List.rev !records with
  | [ Wal.Commit { txn = 7; ops }; Wal.Checkpoint ] ->
    check bool_ "ops roundtrip" true (ops = sample_ops)
  | _ -> Alcotest.fail "unexpected replay"

let test_wal_torn_tail () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "wal.log" in
  let wal = Wal.open_log ~sync:Wal.Sync_never path in
  Wal.append wal (Wal.Commit { txn = 1; ops = sample_ops });
  Wal.append wal (Wal.Commit { txn = 2; ops = sample_ops });
  Wal.close wal;
  (* Truncate mid-record: only the first commit must replay. *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - 7);
  Unix.close fd;
  let n = ref 0 in
  ignore (Wal.replay path (fun _ -> incr n));
  check int_ "only intact record" 1 !n

let test_wal_corruption () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "wal.log" in
  let wal = Wal.open_log ~sync:Wal.Sync_never path in
  Wal.append wal (Wal.Commit { txn = 1; ops = sample_ops });
  Wal.close wal;
  (* Flip a byte in the body: CRC must reject the record. *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 20 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xFF") 0 1);
  Unix.close fd;
  let n = ref 0 in
  ignore (Wal.replay path (fun _ -> incr n));
  check int_ "corrupt record dropped" 0 !n

let test_wal_reset () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "wal.log" in
  let wal = Wal.open_log ~sync:Wal.Sync_never path in
  Wal.append wal (Wal.Commit { txn = 1; ops = sample_ops });
  Wal.reset wal;
  Wal.append wal (Wal.Commit { txn = 2; ops = [] });
  Wal.close wal;
  let txns = ref [] in
  ignore
    (Wal.replay path (function
      | Wal.Commit { txn; _ } -> txns := txn :: !txns
      | Wal.Checkpoint -> ()));
  check bool_ "only post-reset" true (!txns = [ 2 ])

(* ---- message store: in-memory transactions ---- *)

let mem_store () = Store.open_store Store.default_config

let insert_msg txn queue payload =
  Store.insert txn ~queue ~payload ~extra:"" ~enqueued_at:1 ~durable:true

let test_store_basic () =
  let st = mem_store () in
  let txn = Store.begin_txn st in
  let r1 = insert_msg txn "q" "<a/>" in
  let r2 = insert_msg txn "q" "<b/>" in
  Store.commit txn;
  check bool_ "rids increase" true (r2 > r1);
  check int_ "queue length" 2 (Store.queue_length st "q");
  check bool_ "order" true (Store.queue_rids st "q" = [ r1; r2 ]);
  let m = Option.get (Store.get st r1) in
  check string_ "payload" "<a/>" (Store.payload st m);
  check bool_ "unprocessed" true (not m.Store.processed);
  check int_ "two unprocessed" 2 (List.length (Store.unprocessed st))

let test_store_abort () =
  let st = mem_store () in
  let txn = Store.begin_txn st in
  let r = insert_msg txn "q" "<a/>" in
  Store.abort txn;
  check bool_ "insert undone" true (Store.get st r = None);
  check int_ "queue empty" 0 (Store.queue_length st "q");
  (* processed flag rollback *)
  let txn = Store.begin_txn st in
  let r = insert_msg txn "q" "<a/>" in
  Store.commit txn;
  let txn = Store.begin_txn st in
  Store.mark_processed txn r;
  check bool_ "marked inside txn" true (Option.get (Store.get st r)).Store.processed;
  Store.abort txn;
  check bool_ "unmarked after abort" true
    (not (Option.get (Store.get st r)).Store.processed)

let test_store_slice_lifetimes () =
  let st = mem_store () in
  check int_ "initial lifetime" 0 (Store.slice_lifetime st ~slicing:"s" ~key:"k");
  let txn = Store.begin_txn st in
  Store.slice_reset txn ~slicing:"s" ~key:"k";
  Store.commit txn;
  check int_ "incremented" 1 (Store.slice_lifetime st ~slicing:"s" ~key:"k");
  let txn = Store.begin_txn st in
  Store.slice_reset txn ~slicing:"s" ~key:"k";
  Store.abort txn;
  check int_ "abort rolls back" 1 (Store.slice_lifetime st ~slicing:"s" ~key:"k")

let test_store_delete_tombstone () =
  let st = mem_store () in
  let txn = Store.begin_txn st in
  let r = insert_msg txn "q" "<a/>" in
  Store.commit txn;
  let txn = Store.begin_txn st in
  Store.delete txn r;
  Store.commit txn;
  check bool_ "invisible" true (Store.get st r = None);
  check int_ "not in queue" 0 (Store.queue_length st "q");
  check int_ "tombstone counted" 1 (Store.stats st).Store.tombstones;
  Store.checkpoint st;
  check int_ "dropped at checkpoint" 0 (Store.stats st).Store.tombstones

let test_store_finished_txn () =
  let st = mem_store () in
  let txn = Store.begin_txn st in
  Store.commit txn;
  match insert_msg txn "q" "<a/>" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---- durability and recovery ---- *)

let test_recovery () =
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  let r1 = insert_msg txn "q" "<a/>" in
  let _r2 = insert_msg txn "other" "<b/>" in
  Store.slice_reset txn ~slicing:"s" ~key:"k";
  Store.commit txn;
  let txn = Store.begin_txn st in
  Store.mark_processed txn r1;
  Store.commit txn;
  Store.close st;
  (* Re-open: everything committed must be back. *)
  let st2 = Store.open_store cfg in
  check int_ "q recovered" 1 (Store.queue_length st2 "q");
  check int_ "other recovered" 1 (Store.queue_length st2 "other");
  check bool_ "processed flag recovered" true
    (Option.get (Store.get st2 r1)).Store.processed;
  check int_ "slice lifetime recovered" 1
    (Store.slice_lifetime st2 ~slicing:"s" ~key:"k");
  (* rid allocation continues past recovered ones *)
  let txn = Store.begin_txn st2 in
  let r3 = insert_msg txn "q" "<c/>" in
  Store.commit txn;
  check bool_ "fresh rid" true (r3 > r1);
  Store.close st2

let test_recovery_uncommitted_invisible () =
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  ignore (insert_msg txn "q" "<a/>");
  Store.commit txn;
  let txn2 = Store.begin_txn st in
  ignore (insert_msg txn2 "q" "<b/>");
  (* no commit: simulate crash by reopening without closing the txn *)
  Store.close st;
  let st2 = Store.open_store cfg in
  check int_ "only committed" 1 (Store.queue_length st2 "q");
  Store.close st2

let test_recovery_transient_skipped () =
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  ignore (Store.insert txn ~queue:"t" ~payload:"<x/>" ~extra:"" ~enqueued_at:1 ~durable:false);
  ignore (insert_msg txn "q" "<a/>");
  Store.commit txn;
  check int_ "transient visible live" 1 (Store.queue_length st "t");
  Store.close st;
  let st2 = Store.open_store cfg in
  check int_ "transient gone after restart" 0 (Store.queue_length st2 "t");
  check int_ "durable kept" 1 (Store.queue_length st2 "q");
  Store.close st2

let test_checkpoint_and_log_truncation () =
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  for i = 1 to 20 do
    let txn = Store.begin_txn st in
    ignore (insert_msg txn "q" (Printf.sprintf "<m n='%d'/>" i));
    Store.commit txn
  done;
  let before = (Store.stats st).Store.wal_bytes in
  Store.checkpoint st;
  let after = (Store.stats st).Store.wal_bytes in
  check bool_ "log truncated" true (after < before);
  Store.close st;
  let st2 = Store.open_store cfg in
  check int_ "snapshot loads all" 20 (Store.queue_length st2 "q");
  (* and the combination snapshot + new log entries works *)
  let txn = Store.begin_txn st2 in
  ignore (insert_msg txn "q" "<extra/>");
  Store.commit txn;
  Store.close st2;
  let st3 = Store.open_store cfg in
  check int_ "snapshot + tail" 21 (Store.queue_length st3 "q");
  Store.close st3

let test_deletions_unlogged_by_default () =
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  let r = insert_msg txn "q" "<a/>" in
  Store.commit txn;
  let before = (Store.stats st).Store.wal_bytes in
  let txn = Store.begin_txn st in
  Store.delete txn r;
  Store.commit txn;
  let after = (Store.stats st).Store.wal_bytes in
  (* §4.1: deletes are not logged; re-derived after recovery *)
  check int_ "no delete bytes" before after;
  Store.close st;
  (* after restart the message is back (tombstone was volatile) — the
     retention GC re-deletes it from derived state *)
  let st2 = Store.open_store cfg in
  check int_ "delete not replayed" 1 (Store.queue_length st2 "q");
  Store.close st2

let test_deletions_logged_when_configured () =
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never ~log_deletions:true dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  let r = insert_msg txn "q" "<a/>" in
  Store.commit txn;
  let txn = Store.begin_txn st in
  Store.delete txn r;
  Store.commit txn;
  Store.close st;
  let st2 = Store.open_store cfg in
  check int_ "delete replayed" 0 (Store.queue_length st2 "q");
  Store.close st2

let test_sync_modes () =
  let dir = fresh_dir () in
  let st = Store.open_store (Store.durable_config ~sync:Wal.Sync_always dir) in
  let txn = Store.begin_txn st in
  ignore (insert_msg txn "q" "<a/>");
  Store.commit txn;
  check bool_ "fsync counted" true ((Store.stats st).Store.wal_syncs >= 1);
  check int_ "Sync_always leaves nothing pending" 0 (Store.unsynced_commits st);
  check bool_ "barrier is a no-op outside Sync_batch" false (Store.barrier st);
  Store.close st

let test_sync_batch_auto_barrier () =
  (* The record-count trigger: every [max_records]th commit fires an
     automatic barrier; the rest stay pending until an explicit one. *)
  let dir = fresh_dir () in
  let cfg =
    Store.durable_config ~sync:(Wal.Sync_batch { max_records = 4; max_bytes = 0 }) dir
  in
  let st = Store.open_store cfg in
  for i = 1 to 10 do
    let txn = Store.begin_txn st in
    ignore (insert_msg txn "q" (Printf.sprintf "<m n='%d'/>" i));
    Store.commit txn
  done;
  let stats = Store.stats st in
  check int_ "auto-barrier fired at 4 and 8" 2 stats.Store.wal_group_syncs;
  check int_ "two commits still exposed" 2 (Store.unsynced_commits st);
  check bool_ "explicit barrier syncs the tail" true (Store.barrier st);
  check int_ "nothing exposed after the barrier" 0 (Store.unsynced_commits st);
  check bool_ "watermark covers every commit" true (Store.durable_upto st > 0);
  check bool_ "second barrier has nothing to do" false (Store.barrier st);
  Store.close st;
  let st2 = Store.open_store cfg in
  check int_ "all ten survive the restart" 10 (Store.queue_length st2 "q");
  Store.close st2

let test_sync_batch_byte_trigger () =
  let dir = fresh_dir () in
  let cfg =
    Store.durable_config ~sync:(Wal.Sync_batch { max_records = 0; max_bytes = 64 }) dir
  in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  ignore (insert_msg txn "q" ("<m>" ^ String.make 100 'x' ^ "</m>"));
  Store.commit txn;
  (* one record already exceeds 64 pending bytes: synced immediately *)
  check int_ "byte threshold fired the barrier" 0 (Store.unsynced_commits st);
  check bool_ "counted as a group sync" true
    ((Store.stats st).Store.wal_group_syncs >= 1);
  Store.close st

let snapshot_ino dir =
  (Unix.stat (Filename.concat dir "snapshot.bin")).Unix.st_ino

let test_checkpoint_skip_when_clean () =
  (* A checkpoint with no WAL records and no dirty pages since the last one
     must not rewrite (or fsync) the snapshot; with new work it must. *)
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  ignore (insert_msg txn "q" "<a/>");
  Store.commit txn;
  Store.checkpoint st;
  let ino1 = snapshot_ino dir in
  Store.checkpoint st;
  check int_ "clean checkpoint skipped the snapshot write" ino1 (snapshot_ino dir);
  check int_ "but was still counted" 2 (Store.stats st).Store.checkpoints;
  let txn = Store.begin_txn st in
  ignore (insert_msg txn "q" "<b/>");
  Store.commit txn;
  Store.checkpoint st;
  check bool_ "new work forces a fresh snapshot" true (snapshot_ino dir <> ino1);
  Store.close st;
  (* a recovered non-empty log must be truncated by the next checkpoint
     even when this session wrote nothing new *)
  let txn_log = Store.open_store cfg in
  let txn = Store.begin_txn txn_log in
  ignore (insert_msg txn "q" "<c/>");
  Store.commit txn;
  Store.close txn_log;
  let st2 = Store.open_store cfg in
  check bool_ "log non-empty after recovery" true ((Store.stats st2).Store.wal_bytes > 0);
  Store.checkpoint st2;
  check int_ "checkpoint truncated the recovered log" 0
    (Store.stats st2).Store.wal_bytes;
  Store.close st2;
  let st3 = Store.open_store cfg in
  check int_ "snapshot alone restores everything" 3 (Store.queue_length st3 "q");
  Store.close st3

(* qcheck: the store agrees with a trivial model under random op sequences *)

type model_op =
  | M_insert of string
  | M_process of int  (* index into inserted list *)
  | M_delete of int
  | M_abort_insert of string

let gen_ops =
  QCheck.Gen.(
    small_list
      (frequency
         [
           (4, map (fun q -> M_insert q) (oneofl [ "a"; "b" ]));
           (2, map (fun i -> M_process i) (int_bound 20));
           (1, map (fun i -> M_delete i) (int_bound 20));
           (1, map (fun q -> M_abort_insert q) (oneofl [ "a"; "b" ]));
         ]))

let prop_store_model =
  QCheck.Test.make ~name:"store matches list model" ~count:100
    (QCheck.make gen_ops)
    (fun ops ->
      let st = mem_store () in
      (* model: (rid, queue, processed, deleted) list *)
      let model = ref [] in
      List.iter
        (fun op ->
          let txn = Store.begin_txn st in
          (match op with
           | M_insert q ->
             let rid = insert_msg txn q "<m/>" in
             model := !model @ [ (rid, q, ref false, ref false) ]
           | M_abort_insert q ->
             ignore (insert_msg txn q "<m/>");
             Store.abort txn
           | M_process i -> (
             match List.nth_opt !model i with
             | Some (rid, _, p, _) ->
               Store.mark_processed txn rid;
               p := true
             | None -> ())
           | M_delete i -> (
             match List.nth_opt !model i with
             | Some (rid, _, _, d) ->
               Store.delete txn rid;
               d := true
             | None -> ()));
          (match op with M_abort_insert _ -> () | _ -> Store.commit txn))
        ops;
      List.for_all
        (fun q ->
          let expected =
            List.filter_map
              (fun (rid, q', _, d) -> if q' = q && not !d then Some rid else None)
              !model
          in
          Store.queue_rids st q = expected)
        [ "a"; "b" ]
      && List.for_all
           (fun (rid, _, p, d) ->
             match Store.get st rid with
             | None -> !d
             | Some m -> (not !d) && m.Store.processed = !p)
           !model)

let suite =
  [
    ("vec", `Quick, test_vec);
    ("crc32 known value", `Quick, test_crc32);
    ("codec roundtrip", `Quick, test_codec_roundtrip);
    ("codec truncation", `Quick, test_codec_truncation);
    ("wal roundtrip", `Quick, test_wal_roundtrip);
    ("wal torn tail ignored", `Quick, test_wal_torn_tail);
    ("wal corruption detected", `Quick, test_wal_corruption);
    ("wal reset", `Quick, test_wal_reset);
    ("store basics", `Quick, test_store_basic);
    ("txn abort undoes", `Quick, test_store_abort);
    ("slice lifetimes", `Quick, test_store_slice_lifetimes);
    ("delete tombstones", `Quick, test_store_delete_tombstone);
    ("finished txn rejected", `Quick, test_store_finished_txn);
    ("recovery", `Quick, test_recovery);
    ("recovery: uncommitted invisible", `Quick, test_recovery_uncommitted_invisible);
    ("recovery: transient skipped", `Quick, test_recovery_transient_skipped);
    ("checkpoint truncates log", `Quick, test_checkpoint_and_log_truncation);
    ("deletions unlogged by default", `Quick, test_deletions_unlogged_by_default);
    ("deletions logged when configured", `Quick, test_deletions_logged_when_configured);
    ("sync modes", `Quick, test_sync_modes);
    ("sync batch: auto barrier on record count", `Quick, test_sync_batch_auto_barrier);
    ("sync batch: auto barrier on byte size", `Quick, test_sync_batch_byte_trigger);
    ("checkpoint skipped when clean", `Quick, test_checkpoint_skip_when_clean);
    QCheck_alcotest.to_alcotest prop_store_model;
  ]

(* ---- large-payload spill (heap file integration) ---- *)

let big_payload n seed = Printf.sprintf "<blob n='%d'>%s</blob>" seed (String.make n 'B')

let test_spill_roundtrip () =
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never ~spill_threshold:256 dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  let small = insert_msg txn "q" "<small/>" in
  let rid = Store.insert txn ~queue:"q" ~payload:(big_payload 5000 1) ~extra:""
      ~enqueued_at:1 ~durable:true in
  Store.commit txn;
  let m = Option.get (Store.get st rid) in
  check bool_ "spilled out of line" true
    (match m.Store.stored with Store.Spilled _ -> true | Store.Inline _ -> false);
  check int_ "length tracked" (String.length (big_payload 5000 1)) (Store.payload_length m);
  check string_ "read back through pool" (big_payload 5000 1) (Store.payload st m);
  let sm = Option.get (Store.get st small) in
  check bool_ "small stays inline" true
    (match sm.Store.stored with Store.Inline _ -> true | Store.Spilled _ -> false);
  check int_ "stats count spill" 1 (Store.stats st).Store.spilled_payloads;
  Store.close st

let test_spill_survives_checkpoint_and_restart () =
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never ~spill_threshold:256 dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  let r1 = Store.insert txn ~queue:"q" ~payload:(big_payload 9000 7) ~extra:""
      ~enqueued_at:1 ~durable:true in
  Store.commit txn;
  Store.checkpoint st;
  Store.close st;
  (* reopen from snapshot: the body must still resolve through the heap *)
  let st2 = Store.open_store cfg in
  let m = Option.get (Store.get st2 r1) in
  check string_ "spilled body after snapshot restart" (big_payload 9000 7)
    (Store.payload st2 m);
  check bool_ "still out of line" true
    (match m.Store.stored with Store.Spilled _ -> true | _ -> false);
  Store.close st2

let test_spill_recovery_from_wal_only () =
  (* crash before any checkpoint: the WAL holds the full payload; recovery
     keeps it inline, the next checkpoint re-spills, orphan records from
     before the crash are swept *)
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never ~spill_threshold:256 dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  let r1 = Store.insert txn ~queue:"q" ~payload:(big_payload 4000 3) ~extra:""
      ~enqueued_at:1 ~durable:true in
  Store.commit txn;
  Store.close st;
  let st2 = Store.open_store cfg in
  let m = Option.get (Store.get st2 r1) in
  check string_ "recovered body" (big_payload 4000 3) (Store.payload st2 m);
  Store.checkpoint st2;
  let m = Option.get (Store.get st2 r1) in
  check bool_ "re-spilled at checkpoint" true
    (match m.Store.stored with Store.Spilled _ -> true | _ -> false);
  check string_ "body after re-spill" (big_payload 4000 3) (Store.payload st2 m);
  Store.close st2

let test_spill_freed_by_gc () =
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never ~spill_threshold:256 dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  let r1 = Store.insert txn ~queue:"q" ~payload:(big_payload 4000 9) ~extra:""
      ~enqueued_at:1 ~durable:true in
  Store.commit txn;
  let txn = Store.begin_txn st in
  Store.delete txn r1;
  Store.commit txn;
  Store.checkpoint st;  (* drops tombstones, frees heap records *)
  check int_ "no spilled left" 0 (Store.stats st).Store.spilled_payloads;
  Store.close st

let test_spill_abort_frees () =
  let dir = fresh_dir () in
  let cfg = Store.durable_config ~sync:Wal.Sync_never ~spill_threshold:256 dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  ignore (Store.insert txn ~queue:"q" ~payload:(big_payload 4000 5) ~extra:""
            ~enqueued_at:1 ~durable:true);
  Store.abort txn;
  check int_ "nothing live" 0 (Store.stats st).Store.live_messages;
  check int_ "no spill retained" 0 (Store.stats st).Store.spilled_payloads;
  Store.close st

let spill_suite =
  [
    ("spill: roundtrip and threshold", `Quick, test_spill_roundtrip);
    ("spill: checkpoint + restart", `Quick, test_spill_survives_checkpoint_and_restart);
    ("spill: WAL-only recovery + re-spill", `Quick, test_spill_recovery_from_wal_only);
    ("spill: freed by tombstone drop", `Quick, test_spill_freed_by_gc);
    ("spill: abort frees", `Quick, test_spill_abort_frees);
  ]

let suite = suite @ spill_suite

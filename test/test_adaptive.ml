(* Tests for the adaptive runtime (PR 10): the AIMD group-commit
   controller as a pure state machine, the ingress admission gate's
   decision bands, the budget-bounded incremental GC, and the rid
   high-water mark across compaction and restart. The crash-side of
   compaction (torn at the commit point) lives in test_crash.ml. *)

module Controller = Demaq.Engine.Controller
module Gate = Demaq.Engine.Gate
module Store = Demaq.Store.Message_store
module Wal = Demaq.Store.Wal
module S = Demaq.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-adaptive-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

(* ---- the AIMD controller ---- *)

let ctl_cfg =
  {
    Controller.min_batch = 1;
    max_batch = 9;
    target_barrier_ms = 5.;
    fill_ratio = 0.5;
    increase = 4;
    decrease = 0.5;
    cooldown = 4;
    min_flush_ms = 1.;
    max_flush_ms = 50.;
  }

let good = ("fill full, fast barriers", 1.0)
let tick_good c = Controller.tick c ~fill:(float_of_int (Controller.batch c)) ~barrier_p99_ms:(snd good)
let tick_congested c = Controller.tick c ~fill:(float_of_int (Controller.batch c)) ~barrier_p99_ms:50.

let test_controller_climbs_and_clamps () =
  let c = Controller.create ~cfg:ctl_cfg () in
  check int_ "starts at the floor" 1 (Controller.batch c);
  check bool_ "first tick increases" true (tick_good c = Controller.Increased);
  check int_ "additive step" 5 (Controller.batch c);
  check bool_ "second tick increases" true (tick_good c = Controller.Increased);
  check int_ "clamped at max" 9 (Controller.batch c);
  (* at the ceiling: hold, never overshoot *)
  for _ = 1 to 10 do
    check bool_ "held at max" true (tick_good c = Controller.Held)
  done;
  check int_ "batch still at max" 9 (Controller.batch c);
  check int_ "two increases counted" 2 (Controller.increases c);
  check bool_ "flush deadline clamped" true
    (Controller.flush_ms c <= ctl_cfg.Controller.max_flush_ms)

let test_controller_idle_never_inflates () =
  (* no barriers, no commits: a nan/nan observation must never grow the
     batch target on no evidence *)
  let c = Controller.create ~cfg:ctl_cfg () in
  for _ = 1 to 20 do
    check bool_ "idle tick held" true
      (Controller.tick c ~fill:Float.nan ~barrier_p99_ms:Float.nan
       = Controller.Held)
  done;
  check int_ "batch unchanged" 1 (Controller.batch c);
  (* sparse load that cannot fill half the target: also no growth *)
  let c2 = Controller.create ~cfg:ctl_cfg ~batch:8 () in
  for _ = 1 to 20 do
    ignore (Controller.tick c2 ~fill:1.0 ~barrier_p99_ms:1.0)
  done;
  check int_ "under-filled batch target unchanged" 8 (Controller.batch c2)

let test_controller_cuts_and_recovers_monotonically () =
  let c = Controller.create ~cfg:ctl_cfg ~batch:8 () in
  check bool_ "congestion cuts" true (tick_congested c = Controller.Decreased);
  check int_ "multiplicative cut" 4 (Controller.batch c);
  (* cooldown: good signal is held for [cooldown] ticks after a cut *)
  for i = 1 to ctl_cfg.Controller.cooldown do
    check bool_
      (Printf.sprintf "cooldown tick %d held" i)
      true
      (tick_good c = Controller.Held)
  done;
  (* then recovery is monotone: only Increased/Held until the max, and
     never a decrease while the signal stays good *)
  let floor_batch = ref (Controller.batch c) in
  for _ = 1 to 20 do
    (match tick_good c with
     | Controller.Decreased -> Alcotest.fail "decrease on a good signal"
     | Controller.Increased | Controller.Held -> ());
    check bool_ "recovery is monotone" true (Controller.batch c >= !floor_batch);
    floor_batch := Controller.batch c
  done;
  check int_ "recovered to max" 9 (Controller.batch c)

let test_controller_holds_at_floor () =
  let c = Controller.create ~cfg:ctl_cfg () in
  (* batch already at min: congestion can still shorten the flush
     deadline, but once both hit their floors the controller holds *)
  for _ = 1 to 20 do
    ignore (tick_congested c)
  done;
  check int_ "batch at the floor" 1 (Controller.batch c);
  check bool_ "flush at the floor" true
    (Controller.flush_ms c = ctl_cfg.Controller.min_flush_ms);
  let d = Controller.decreases c in
  for _ = 1 to 10 do
    check bool_ "held at the floors" true
      (tick_congested c = Controller.Held)
  done;
  check int_ "no further decreases" d (Controller.decreases c)

let test_controller_no_oscillation_on_step_load () =
  (* Synthetic plant with a knee: barriers stay fast while the batch
     target is at most 6, blow the budget above it. AIMD must settle into
     a bounded probe cycle around the knee, not a full-depth flap. *)
  let cfg = { ctl_cfg with Controller.increase = 1; max_batch = 32 } in
  let c = Controller.create ~cfg () in
  let p99 b = if b <= 6 then 1.0 else 20.0 in
  let lo = ref max_int in
  let hi = ref 0 in
  for i = 1 to 100 do
    ignore
      (Controller.tick c
         ~fill:(float_of_int (Controller.batch c))
         ~barrier_p99_ms:(p99 (Controller.batch c)));
    if i > 10 then begin
      lo := min !lo (Controller.batch c);
      hi := max !hi (Controller.batch c)
    end
  done;
  check bool_ "stays near the knee (lower)" true (!lo >= 3);
  check bool_ "stays near the knee (upper)" true (!hi <= 7);
  (* cooldown bounds the probe frequency: a cut at most every
     cooldown+2 ticks, not every tick *)
  check bool_ "decreases bounded by the cooldown" true
    (Controller.decreases c <= 100 / (cfg.Controller.cooldown + 2) + 2)

(* ---- the admission gate ---- *)

let gate_cfg =
  {
    Gate.max_pending = 100;
    max_wal_bytes = 1000;
    hard = 2.;
    priority_floor = 0;
    retry_after = 1;
  }

let test_gate_bands () =
  let g = Gate.create ~cfg:gate_cfg () in
  (* under the knee: everyone is admitted *)
  check bool_ "clear: admit" true
    (Gate.decide g ~pending:50 ~unsynced_bytes:0 ~priority:0 = Gate.Admit);
  (* soft band: priorities at the floor shed, higher ones pass *)
  (match Gate.decide g ~pending:100 ~unsynced_bytes:0 ~priority:0 with
   | Gate.Shed { hard = false; retry_after } ->
     check int_ "soft shed retry-after" 1 retry_after
   | _ -> Alcotest.fail "saturated floor-priority arrival not soft-shed");
  check bool_ "soft band spares high priority" true
    (Gate.decide g ~pending:100 ~unsynced_bytes:0 ~priority:5 = Gate.Admit);
  (* hard band: nobody passes, including high priority *)
  (match Gate.decide g ~pending:200 ~unsynced_bytes:0 ~priority:5 with
   | Gate.Shed { hard = true; retry_after } ->
     check int_ "hard shed retry-after scales" 2 retry_after
   | _ -> Alcotest.fail "high-priority arrival not shed in the hard band");
  (* either axis saturates the gate: WAL exposure alone sheds too *)
  check bool_ "wal axis sheds" true
    (Gate.decide g ~pending:0 ~unsynced_bytes:2000 ~priority:5 <> Gate.Admit);
  (* counters saw all of it *)
  check int_ "admitted counted" 2 (Gate.admitted g);
  check int_ "shed counted" 3 (Gate.shed g);
  check int_ "hard shed counted" 2 (Gate.shed_hard g)

let test_gate_retry_after_cap () =
  let g = Gate.create ~cfg:gate_cfg () in
  match Gate.decide g ~pending:100_000 ~unsynced_bytes:0 ~priority:0 with
  | Gate.Shed { retry_after; _ } ->
    check int_ "retry-after capped at 30s" 30 retry_after
  | Gate.Admit -> Alcotest.fail "1000x saturation admitted"

(* ---- incremental GC ---- *)

let fwd_program = {|
create queue in kind basic mode persistent
create queue out kind basic mode persistent
create rule fwd for in if (//m) then do enqueue <ack/> into out
|}

let inject_n srv n =
  for i = 1 to n do
    ignore (S.inject srv ~queue:"in" (Demaq.xml (Printf.sprintf "<m n='%d'/>" i)))
  done

let test_gc_step_budget_and_total () =
  (* the incremental GC must collect exactly what the full GC would,
     never exceeding its per-step budget, and leave the caches empty *)
  let full = S.deploy fwd_program in
  inject_n full 20;
  ignore (S.run full);
  let expected = S.gc full in
  let srv = S.deploy fwd_program in
  inject_n srv 20;
  ignore (S.run srv);
  let total = ref 0 in
  let steps = ref 0 in
  while
    !steps < 100
    &&
    let collected, _ = S.maintain ~gc_budget:7 srv in
    check bool_ "step within budget" true (collected <= 7);
    total := !total + collected;
    incr steps;
    collected > 0 || !steps < 8
  do
    ()
  done;
  check int_ "incremental total equals full GC" expected !total;
  List.iter
    (fun (name, n) ->
      check int_ (Printf.sprintf "%s cache shrunk to zero" name) 0 n)
    (S.cache_sizes srv)

let test_gc_step_zero_budget_is_noop () =
  let srv = S.deploy fwd_program in
  inject_n srv 5;
  ignore (S.run srv);
  let collected, reclaimed = S.maintain srv in
  check int_ "no budget, nothing collected" 0 collected;
  check int_ "no threshold, nothing compacted" 0 reclaimed

let test_maintain_flushes_idle_stragglers () =
  (* regression: after a burst stops dead, the group-commit tail left
     unsynced by an idle drain must not hold the WAL axis of the
     admission gate closed forever — the maintenance tick flushes it *)
  let dir = fresh_dir () in
  let store =
    Store.open_store
      (Store.durable_config
         ~sync:(Wal.Sync_batch { max_records = 1000; max_bytes = 0 })
         dir)
  in
  let srv = S.deploy ~store fwd_program in
  ignore
    (S.enable_gate
       ~cfg:
         {
           Gate.default_config with
           Gate.max_pending = max_int;
           max_wal_bytes = 1;
         }
       srv);
  ignore (S.inject srv ~queue:"in" (Demaq.xml "<m/>"));
  check bool_ "unsynced tail outstanding" true (Store.unsynced_bytes store > 0);
  check bool_ "gate closed on the tail" true
    (S.admission srv ~queue:"in" <> Gate.Admit);
  ignore (S.maintain srv);
  check int_ "maintenance hardened the tail" 0 (Store.unsynced_bytes store);
  check bool_ "gate reopened" true (S.admission srv ~queue:"in" = Gate.Admit);
  Store.close store

(* ---- rid high-water mark across compaction + restart ---- *)

let test_rid_hwm_survives_compaction () =
  let dir = fresh_dir () in
  let cfg =
    Store.durable_config
      ~sync:(Wal.Sync_batch { max_records = 100; max_bytes = 0 })
      dir
  in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  let r1 = Store.insert txn ~queue:"q" ~payload:"<a/>" ~extra:"" ~enqueued_at:1 ~durable:true in
  let r2 = Store.insert txn ~queue:"q" ~payload:"<b/>" ~extra:"" ~enqueued_at:1 ~durable:true in
  let r3 = Store.insert txn ~queue:"q" ~payload:"<c/>" ~extra:"" ~enqueued_at:1 ~durable:true in
  Store.commit txn;
  check bool_ "rids ascend" true (r1 < r2 && r2 < r3);
  (* tombstone the top rid, then compact: the snapshot drops the
     tombstone but must keep the high-water mark *)
  let txn = Store.begin_txn st in
  Store.delete txn r3;
  Store.commit txn;
  let reclaimed = Store.compact st in
  check bool_ "compaction retired log bytes" true (reclaimed > 0);
  check int_ "tombstones dropped" 0 (Store.stats st).Store.tombstones;
  Store.close st;
  let st = Store.open_store cfg in
  check bool_ "live survivors" true (Store.get st r1 <> None && Store.get st r2 <> None);
  check bool_ "tombstoned rid stays dead" true (Store.get st r3 = None);
  let txn = Store.begin_txn st in
  let r4 = Store.insert txn ~queue:"q" ~payload:"<d/>" ~extra:"" ~enqueued_at:2 ~durable:true in
  Store.commit txn;
  check bool_ "rid high-water mark preserved" true (r4 > r3);
  Store.close st

let test_compaction_due_threshold () =
  let dir = fresh_dir () in
  let cfg =
    Store.durable_config
      ~sync:(Wal.Sync_batch { max_records = 100; max_bytes = 0 })
      dir
  in
  let st = Store.open_store cfg in
  check bool_ "empty log not due" false (Store.compaction_due st ~max_wal_bytes:1);
  let txn = Store.begin_txn st in
  ignore (Store.insert txn ~queue:"q" ~payload:"<a/>" ~extra:"" ~enqueued_at:1 ~durable:true);
  Store.commit txn;
  check bool_ "grown log due at 1 byte" true (Store.compaction_due st ~max_wal_bytes:1);
  check bool_ "zero threshold disables" false (Store.compaction_due st ~max_wal_bytes:0);
  ignore (Store.compact st);
  check bool_ "compacted log no longer due" false
    (Store.compaction_due st ~max_wal_bytes:1);
  Store.close st;
  (* in-memory stores are never due *)
  let mem = Store.open_store Store.default_config in
  check bool_ "in-memory never due" false (Store.compaction_due mem ~max_wal_bytes:1);
  check int_ "in-memory compaction reclaims nothing" 0 (Store.compact mem);
  Store.close mem

let suite =
  [
    ("controller climbs and clamps", `Quick, test_controller_climbs_and_clamps);
    ("controller never inflates when idle", `Quick,
     test_controller_idle_never_inflates);
    ("controller cuts and recovers monotonically", `Quick,
     test_controller_cuts_and_recovers_monotonically);
    ("controller holds at the floor", `Quick, test_controller_holds_at_floor);
    ("controller does not oscillate on a step load", `Quick,
     test_controller_no_oscillation_on_step_load);
    ("gate decision bands", `Quick, test_gate_bands);
    ("gate retry-after cap", `Quick, test_gate_retry_after_cap);
    ("incremental gc: budget respected, total exact", `Quick,
     test_gc_step_budget_and_total);
    ("maintenance without knobs is a no-op", `Quick,
     test_gc_step_zero_budget_is_noop);
    ("maintenance flushes idle stragglers", `Quick,
     test_maintain_flushes_idle_stragglers);
    ("rid high-water mark survives compaction", `Quick,
     test_rid_hwm_survives_compaction);
    ("compaction trigger thresholds", `Quick, test_compaction_due_threshold);
  ]

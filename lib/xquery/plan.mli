(** The guarded-plan IR: what the rule compiler lowers a target's rule
    set into, and what the executor evaluates instead of interpreting
    rules one at a time.

    A plan fuses every rule of one queue or slicing while preserving each
    rule's guard, error queue and pre-filter requirements, so error
    attribution (§3.6) and condition pre-filtering survive the merge.
    Plan-level {!t.p_bindings} hold common subexpressions hoisted across
    rule bodies; rules with structurally identical stable guards share a
    guard id and therefore a single evaluation per plan instance.

    {!eval} is observationally equivalent to per-rule interpretation:
    rules run in declaration order and report through the callbacks at
    their own turn, memoized bindings/guards are restricted to pure,
    stable expressions by the compiler, and if a shared evaluation fails
    each dependent rule re-evaluates its original body inline so the
    per-rule error (content and position) is reproduced exactly. *)

type guarded = {
  g_name : string;
  g_error_queue : string option;
  g_guard : Ast.expr option;
      (** split-out condition; [None] = unconditional body *)
  g_guard_id : int;  (** shared by structurally identical stable guards *)
  g_then : Ast.expr;
  g_else : Ast.expr;
  g_bindings : int list;
      (** plan-binding indices the rule needs; ascending, transitively
          closed *)
  g_fallback : Ast.expr;
      (** original (un-hoisted) body, evaluated inline when a shared
          binding or guard fails *)
  g_requirements : string list;
      (** condition pre-filter requirements; empty = always evaluate *)
}

type t = {
  p_bindings : (string * Ast.expr) list;
      (** hoisted subexpressions in dependency order *)
  p_guarded : guarded list;  (** declaration order *)
  p_n_guards : int;
}

type outcome =
  | Updates of Update.t list
  | Failed of string  (** dynamic error to route per §3.6 *)

val rules : t -> guarded list
val bindings : t -> (string * Ast.expr) list

val of_rules : (string * string option * Ast.expr * string list) list -> t
(** Trivial plan from [(name, error_queue, body, requirements)] rules: no
    hoisting, no guard splitting — per-rule semantics verbatim. *)

val to_expr : t -> Ast.expr
(** Lower the plan to a single expression ({!Ast.Bind} around the guarded
    bodies); used by explain output and tests. *)

val eval :
  admitted:(int -> guarded -> bool) ->
  before:(guarded -> unit) ->
  emit:(guarded -> outcome -> unit) ->
  Context.env ->
  t ->
  unit
(** Evaluate the plan for one message. [admitted] is the pre-filter
    verdict, given the rule's position in {!t.p_guarded} (skipped rules
    are not evaluated and not reported); [before]
    fires at each admitted rule's turn (metrics, blame tracking); [emit]
    delivers that rule's outcome inline, so the caller can route errors
    between rules exactly as per-rule interpretation would. *)

module Tree = Demaq_xml.Tree
module Name = Demaq_xml.Name
open Ast
open Value
open Context

exception Eval_error = Context.Eval_error

let err = eval_error

let node_of_tree tree =
  match Tree.children (Tree.root_node (Tree.doc tree)) with
  | [ n ] -> n
  | _ -> assert false

let doc_node_of_tree tree = Tree.root_node (Tree.doc tree)

(* A standalone attribute node (result of a computed attribute
   constructor): materialized as the sole attribute of a hidden holder
   element so it has a position in a document. *)
let attribute_node name value =
  let holder =
    Tree.Element
      {
        name = Name.make "#attribute-holder";
        attrs = [ { Tree.attr_name = Name.make name; attr_value = value } ];
        children = [];
      }
  in
  match Tree.attributes (node_of_tree holder) with
  | [ a ] -> a
  | _ -> assert false

let is_attribute_node n =
  match Tree.focus n with Tree.Fattribute _ -> true | _ -> false

(* [instance of] item matching. xs:integer is derived from xs:decimal in
   the XDM type hierarchy, so integers match both. *)
let item_matches item (it : Ast.item_type) =
  match it, item with
  | Ast.It_item, _ -> true
  | Ast.It_anyatomic, Atom _ -> true
  | Ast.It_untyped, Atom a -> (match a with Untyped _ -> true | _ -> false)
  | Ast.It_atomic ty, Atom a -> (
    match ty, a with
    | Value.T_string, String _ -> true
    | Value.T_integer, Integer _ -> true
    | Value.T_decimal, (Decimal _ | Integer _) -> true
    | Value.T_boolean, Boolean _ -> true
    | (Value.T_string | Value.T_integer | Value.T_decimal | Value.T_boolean), _ ->
      false)
  | (Ast.It_atomic _ | Ast.It_untyped | Ast.It_anyatomic), Node _ -> false
  | Ast.It_node, Node _ -> true
  | Ast.It_text, Node n -> Tree.is_text n
  | Ast.It_document, Node n ->
    (match Tree.focus n with Tree.Fdocument -> true | _ -> false)
  | Ast.It_element name, Node n -> (
    match Tree.focus n with
    | Tree.Ftree (Tree.Element e) ->
      (match name with Some nm -> Name.local e.Tree.name = nm | None -> true)
    | _ -> false)
  | Ast.It_attribute name, Node n -> (
    match Tree.focus n with
    | Tree.Fattribute a ->
      (match name with Some nm -> Name.local a.Tree.attr_name = nm | None -> true)
    | _ -> false)
  | (Ast.It_node | Ast.It_text | Ast.It_document | Ast.It_element _
    | Ast.It_attribute _), Atom _ -> false

let seq_matches v (st : Ast.seq_type) =
  match st with
  | Ast.St_empty -> v = []
  | Ast.St (it, occ) ->
    let n = List.length v in
    let count_ok =
      match occ with
      | `One -> n = 1
      | `Optional -> n <= 1
      | `Star -> true
      | `Plus -> n >= 1
    in
    count_ok && List.for_all (fun item -> item_matches item it) v

(* Deep copy of a node into a standalone tree (XQuery constructors copy
   their content). *)
let tree_of_node n =
  match Tree.node_tree n with
  | Some t -> t
  | None -> Tree.Text (Tree.string_value n)

let axis_nodes axis n =
  match axis with
  | Child -> Tree.children n
  | Descendant -> Tree.descendants n
  | Descendant_or_self -> Tree.descendant_or_self n
  | Self -> [ n ]
  | Parent -> (match Tree.parent n with Some p -> [ p ] | None -> [])
  | Attribute -> Tree.attributes n

let test_node test n =
  match test with
  | Node_kind_test -> true
  | Wildcard -> Tree.is_element n || (match Tree.focus n with Tree.Fattribute _ -> true | _ -> false)
  | Text_test -> Tree.is_text n
  | Comment_test -> (match Tree.focus n with Tree.Ftree (Tree.Comment _) -> true | _ -> false)
  | Name_test local -> (
    match Tree.focus n, Tree.node_name n with
    | (Tree.Ftree (Tree.Element _) | Tree.Fattribute _), Some name ->
      String.equal (Name.local name) local
    | _ -> false)

let rec eval env expr : Value.t =
  match expr with
  | Literal a -> [ Atom a ]
  | Empty_seq -> []
  | Var v -> lookup env v
  | Context_item -> [ context_item env ]
  | Root ->
    let n = context_node env in
    [ Node (Tree.root_node (Tree.node_document n)) ]
  | Sequence es -> List.concat_map (eval env) es
  | Path (a, b) ->
    let base = eval env a in
    let size = List.length base in
    let results =
      List.concat
        (List.mapi
           (fun i item -> eval (with_item env item (i + 1) size) b)
           base)
    in
    if all_nodes results then doc_order_dedup results else results
  | Axis_step (axis, test, preds) ->
    let n = context_node env in
    let candidates = List.filter (test_node test) (axis_nodes axis n) in
    apply_predicates env preds (List.map (fun n -> Node n) candidates)
  | Filter (e, preds) -> apply_predicates env preds (eval env e)
  | Call (name, args) -> Functions.call env name (List.map (eval env) args)
  | If (c, t, e) -> if ebv (eval env c) then eval env t else eval env e
  | Flwor (clauses, ret) ->
    let tuples = eval_clauses env [ env ] clauses in
    List.concat_map (fun env' -> eval env' ret) tuples
  | Quantified (q, binds, sat) ->
    let rec go env = function
      | [] -> ebv (eval env sat)
      | (v, e) :: rest ->
        let items = eval env e in
        let test item = go (bind env v [ item ]) rest in
        (match q with
         | `Some -> List.exists test items
         | `Every -> List.for_all test items)
    in
    [ Atom (Boolean (go env binds)) ]
  | Binary (op, a, b) -> eval_binary env op a b
  | Neg a -> (
    match atomize (eval env a) with
    | [] -> []
    | [ x ] -> (
      match x with
      | Integer i -> [ Atom (Integer (-i)) ]
      | _ ->
        let f = number_of_atomic x in
        if Float.is_nan f then err "unary minus on non-numeric value"
        else [ Atom (Decimal (-.f)) ])
    | _ -> err "unary minus on multi-item sequence")
  | Range (a, b) -> (
    match atomize (eval env a), atomize (eval env b) with
    | [], _ | _, [] -> []
    | [ x ], [ y ] ->
      let lo = int_of_float (number_of_atomic x)
      and hi = int_of_float (number_of_atomic y) in
      if lo > hi then []
      else List.init (hi - lo + 1) (fun i -> Atom (Integer (lo + i)))
    | _ -> err "'to' over multi-item sequence")
  | Direct_elem d -> [ Node (node_of_tree (construct env d)) ]
  | Computed_elem (name_expr, content_expr) ->
    let name = constructor_name env name_expr in
    let attrs, children = content_items env (eval env content_expr) in
    [ Node (node_of_tree (Tree.Element { name = Name.make name; attrs; children })) ]
  | Computed_attr (name_expr, value_expr) ->
    let name = constructor_name env name_expr in
    let value =
      String.concat " " (List.map string_of_atomic (atomize (eval env value_expr)))
    in
    [ Node (attribute_node name value) ]
  | Computed_text content_expr -> (
    match atomize (eval env content_expr) with
    | [] -> []
    | atoms ->
      let text = String.concat " " (List.map string_of_atomic atoms) in
      [ Node (node_of_tree_text text) ])
  | Cast (e, ty, kind) -> (
    match atomize (eval env e), kind with
    | [], `Cast -> []
    | [], `Castable -> [ Atom (Boolean true) ]
    | [ a ], `Cast -> (
      match Value.cast ty a with
      | Ok a -> [ Atom a ]
      | Error msg -> err "%s" msg)
    | [ a ], `Castable -> [ Atom (Boolean (Result.is_ok (Value.cast ty a))) ]
    | _, `Cast -> err "cast of a multi-item sequence"
    | _, `Castable -> [ Atom (Boolean false) ])
  | Instance_of (e, st) -> [ Atom (Boolean (seq_matches (eval env e) st)) ]
  | Treat_as (e, st) ->
    let v = eval env e in
    if seq_matches v st then v
    else err "treat as: value does not match %s" (Pp.seq_type_name st)
  | Enqueue { payload; queue; props } ->
    let tree = payload_tree env (eval env payload) in
    let props =
      List.map
        (fun (name, e) ->
          match atomize (eval env e) with
          | [ a ] -> (name, a)
          | [] -> err "property %s: value expression returned empty sequence" name
          | _ -> err "property %s: value expression returned multiple items" name)
        props
    in
    emit env (Update.Enqueue { payload = tree; queue; props });
    []
  | Reset None ->
    emit env (Update.Reset { slicing = None; key = None });
    []
  | Reset (Some (slicing, key_expr)) ->
    let key =
      match atomize (eval env key_expr) with
      | [ a ] -> a
      | _ -> err "do reset: slice key must be a single atomic value"
    in
    emit env (Update.Reset { slicing = Some slicing; key = Some key });
    []
  | Bind (binds, body) ->
    let env =
      List.fold_left (fun env (v, e) -> bind env v (eval env e)) env binds
    in
    eval env body

and constructor_name env name_expr =
  match atomize (eval env name_expr) with
  | [ a ] ->
    let name = string_of_atomic a in
    if name = "" then err "constructor: empty element/attribute name" else name
  | _ -> err "constructor: name expression must be a single atomic value"

and node_of_tree_text text =
  match Tree.children (Tree.root_node (Tree.doc_of_forest [ Tree.Text text ])) with
  | [ n ] -> n
  | _ -> assert false

and payload_tree _env v =
  match v with
  | [ Node n ] -> (
    match Tree.focus n with
    | Tree.Ftree (Tree.Element _ as t) -> t
    | Tree.Fdocument -> (
      match Tree.document_element (Tree.node_document n) with
      | Some t -> t
      | None -> err "do enqueue: document has no element")
    | _ -> err "do enqueue: payload must be an element node")
  | [ Atom _ ] -> err "do enqueue: payload must be an element node, not an atomic value"
  | [] -> err "do enqueue: payload expression returned the empty sequence"
  | _ -> err "do enqueue: payload expression returned multiple items"
  [@@warning "-27"]

and apply_predicates env preds items =
  List.fold_left
    (fun items pred ->
      let size = List.length items in
      List.concat
        (List.mapi
           (fun i item ->
             let env' = with_item env item (i + 1) size in
             let r = eval env' pred in
             let keep =
               match r with
               | [ Atom ((Integer _ | Decimal _) as a) ] ->
                 int_of_float (number_of_atomic a) = i + 1
               | _ -> ebv r
             in
             if keep then [ item ] else [])
           items))
    items preds

and eval_clauses env tuples clauses =
  match clauses with
  | [] -> tuples
  | For binds :: rest ->
    let expand_bind tuples (v, pos_var, e) =
      List.concat_map
        (fun env' ->
          List.mapi
            (fun i item ->
              let env'' = bind env' v [ item ] in
              match pos_var with
              | Some p -> bind env'' p [ Atom (Integer (i + 1)) ]
              | None -> env'')
            (eval env' e))
        tuples
    in
    eval_clauses env (List.fold_left expand_bind tuples binds) rest
  | Let binds :: rest ->
    let tuples =
      List.map
        (fun env' ->
          List.fold_left (fun env'' (v, e) -> bind env'' v (eval env'' e)) env' binds)
        tuples
    in
    eval_clauses env tuples rest
  | Where e :: rest ->
    eval_clauses env (List.filter (fun env' -> ebv (eval env' e)) tuples) rest
  | Order_by keys :: rest ->
    let decorated =
      List.map
        (fun env' ->
          let ks =
            List.map
              (fun (e, dir, empty_policy) ->
                let k = match atomize (eval env' e) with [ a ] -> Some a | _ -> None in
                (k, dir, empty_policy))
              keys
          in
          (ks, env'))
        tuples
    in
    let cmp (ka, _) (kb, _) =
      let rec go = function
        | [] -> 0
        | ((a, dir, empty_policy), (b, _, _)) :: rest ->
          let empty_c = match empty_policy with `Empty_least -> -1 | `Empty_greatest -> 1 in
          let c =
            match a, b with
            | None, None -> 0
            | None, Some _ -> empty_c
            | Some _, None -> -empty_c
            | Some a, Some b -> compare_atomic a b
          in
          let c = match dir with `Asc -> c | `Desc -> -c in
          if c <> 0 then c else go rest
      in
      go (List.combine ka kb)
    in
    eval_clauses env (List.map snd (List.stable_sort cmp decorated)) rest

and eval_binary env op a b =
  match op with
  | Or -> [ Atom (Boolean (ebv (eval env a) || ebv (eval env b))) ]
  | And -> [ Atom (Boolean (ebv (eval env a) && ebv (eval env b))) ]
  | Gen_cmp c -> [ Atom (Boolean (general_compare c (eval env a) (eval env b))) ]
  | Val_cmp c -> value_compare c (eval env a) (eval env b)
  | Add -> arith `Add (eval env a) (eval env b)
  | Sub -> arith `Sub (eval env a) (eval env b)
  | Mul -> arith `Mul (eval env a) (eval env b)
  | Div -> arith `Div (eval env a) (eval env b)
  | Idiv -> arith `Idiv (eval env a) (eval env b)
  | Mod -> arith `Mod (eval env a) (eval env b)
  | Union ->
    let l = eval env a and r = eval env b in
    if all_nodes l && all_nodes r then doc_order_dedup (l @ r)
    else err "union over non-node sequences"
  | Intersect | Except ->
    let l = eval env a and r = eval env b in
    if not (all_nodes l && all_nodes r) then
      err "intersect/except over non-node sequences"
    else begin
      let rnodes = List.filter_map (function Node n -> Some n | Atom _ -> None) r in
      let in_r n = List.exists (Tree.same_node n) rnodes in
      let keep = match op with Intersect -> in_r | _ -> fun n -> not (in_r n) in
      doc_order_dedup
        (List.filter (function Node n -> keep n | Atom _ -> false) l)
    end
  | Node_cmp cmp -> (
    let single side v =
      match v with
      | [] -> None
      | [ Node n ] -> Some n
      | _ -> err "%s operand of a node comparison must be a single node" side
    in
    match single "left" (eval env a), single "right" (eval env b) with
    | None, _ | _, None -> []
    | Some x, Some y ->
      let result =
        match cmp with
        | `Is -> Tree.same_node x y
        | `Precedes -> Tree.doc_order x y < 0
        | `Follows -> Tree.doc_order x y > 0
      in
      [ Atom (Boolean result) ])

(* ---- direct element constructors ---- *)

and construct env d : Tree.tree =
  let attrs =
    List.map
      (fun (name, pieces) ->
        let value =
          String.concat ""
            (List.map
               (function
                 | A_text s -> s
                 | A_expr e ->
                   String.concat " "
                     (List.map string_of_atomic (atomize (eval env e))))
               pieces)
        in
        { Tree.attr_name = Name.make (local_name name); attr_value = value })
      d.dattrs
  in
  let extra_attrs, children =
    List.fold_left
      (fun (attrs_acc, kids_acc) piece ->
        match piece with
        | C_text s -> (attrs_acc, kids_acc @ [ Tree.Text s ])
        | C_expr e ->
          let new_attrs, new_kids = content_items env (eval env e) in
          (attrs_acc @ new_attrs, kids_acc @ new_kids))
      ([], []) d.dcontent
  in
  (* Merge adjacent text nodes, as constructors must. *)
  let rec merge = function
    | Tree.Text a :: Tree.Text b :: rest -> merge (Tree.Text (a ^ b) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  Tree.Element
    {
      name = Name.make (local_name d.tag);
      attrs = attrs @ extra_attrs;
      children = merge children;
    }

and local_name tag =
  match String.index_opt tag ':' with
  | Some i -> String.sub tag (i + 1) (String.length tag - i - 1)
  | None -> tag

and content_items env items : Tree.attribute list * Tree.tree list =
  (* Per XQuery: node items are copied (attribute nodes become attributes
     of the constructed element); consecutive atomic items are joined with
     single spaces into one text node. *)
  let rec go = function
    | [] -> ([], [])
    | Node n :: rest when is_attribute_node n ->
      let name =
        match Tree.node_name n with Some nm -> nm | None -> Name.make "attr"
      in
      let attrs, kids = go rest in
      ({ Tree.attr_name = name; attr_value = Tree.string_value n } :: attrs, kids)
    | Node n :: rest ->
      let attrs, kids = go rest in
      (attrs, tree_of_node n :: kids)
    | Atom a :: rest ->
      let buf = Buffer.create 16 in
      Buffer.add_string buf (string_of_atomic a);
      let rec atoms = function
        | Atom b :: rest ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_atomic b);
          atoms rest
        | rest -> rest
      in
      let rest = atoms rest in
      let attrs, kids = go rest in
      (attrs, Tree.Text (Buffer.contents buf) :: kids)
  in
  ignore env;
  go items

(* Dynamic type errors from the value model surface as evaluation errors. *)
let eval env expr =
  try eval env expr with Value.Type_error msg -> err "%s" msg

let eval_with_updates env expr =
  let env = { env with updates = ref [] } in
  let v = eval env expr in
  (v, pending env)

let run ?host ?(vars = []) ?context src =
  let expr = Parser.parse src in
  let env = Context.make ?host () in
  let env =
    match context with
    | Some tree -> { env with item = Some (Node (node_of_tree tree)) }
    | None -> env
  in
  let env = List.fold_left (fun e (v, value) -> bind e v value) env vars in
  eval_with_updates env expr

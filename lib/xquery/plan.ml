(* The guarded-plan IR: the execution artifact the rule compiler lowers a
   queue's rule set into. All rules of one target are fused into a single
   plan while each rule keeps its own guard, so §3.6 error attribution
   survives the merge; common subexpressions hoisted out of the rule
   bodies become plan-level bindings, and structurally identical guards
   share one evaluation.

   Evaluation preserves per-rule observational semantics exactly:

   - rules run in declaration order, each reported through the caller's
     callbacks at its own turn (so mid-plan error routing interleaves
     with later rules the same way per-rule interpretation does);
   - a hoisted binding or shared guard is evaluated once and memoized,
     but the compiler only hoists pure, stable expressions (no updates,
     no state-reading host calls), so sharing cannot change values;
   - if a memoized binding or guard evaluation FAILS, the plan does not
     guess which error the rule would have reported: every rule that
     depends on it falls back to evaluating its original un-substituted
     body inline, reproducing the per-rule error (and its position in
     the error stream) exactly. *)

type guarded = {
  g_name : string;  (* rule name, for attribution *)
  g_error_queue : string option;  (* rule-level error queue (§3.6) *)
  g_guard : Ast.expr option;
      (* split-out condition; [None] = evaluate [g_then] unconditionally *)
  g_guard_id : int;
      (* rules with structurally identical stable guards share an id —
         and therefore one evaluation per plan instance *)
  g_then : Ast.expr;
  g_else : Ast.expr;
  g_bindings : int list;
      (* indices of the plan bindings the rule needs, ascending;
         transitively closed, so earlier bindings a later one references
         are always present *)
  g_fallback : Ast.expr;
      (* the rule's rewritten body with no hoisting applied: evaluated
         inline when a shared binding or guard fails *)
  g_requirements : string list;
      (* condition pre-filter requirements (element names), as for
         per-rule evaluation; empty = always evaluate *)
}

type t = {
  p_bindings : (string * Ast.expr) list;
      (* hoisted common subexpressions, in evaluation (dependency) order *)
  p_guarded : guarded list;  (* declaration order *)
  p_n_guards : int;  (* distinct guard ids *)
}

type outcome =
  | Updates of Update.t list  (* pending updates, in emission order *)
  | Failed of string  (* dynamic error description, to route per §3.6 *)

let rules t = t.p_guarded
let bindings t = t.p_bindings

let of_rules rules =
  {
    p_bindings = [];
    p_guarded =
      List.mapi
        (fun i (g_name, g_error_queue, body, g_requirements) ->
          {
            g_name;
            g_error_queue;
            g_guard = None;
            g_guard_id = i;
            g_then = body;
            g_else = Ast.Empty_seq;
            g_bindings = [];
            g_fallback = body;
            g_requirements;
          })
        rules;
    p_n_guards = List.length rules;
  }

(* Lower the plan back to a single expression (explain output, tests):
   the hoisted bindings become an [Ast.Bind] around the guarded bodies. *)
let to_expr t =
  let body_of g =
    match g.g_guard with
    | None -> g.g_then
    | Some c -> Ast.If (c, g.g_then, g.g_else)
  in
  let body = Ast.Sequence (List.map body_of t.p_guarded) in
  match t.p_bindings with [] -> body | binds -> Ast.Bind (binds, body)

let eval ~admitted ~before ~emit env t =
  let binds = Array.of_list t.p_bindings in
  let b_memo = Array.make (Array.length binds) None in
  let g_memo = Array.make (max 1 t.p_n_guards) None in
  (* Evaluate binding [i] (memoized) given an env that already holds every
     binding it references. *)
  let force_binding env i =
    match b_memo.(i) with
    | Some r -> r
    | None ->
      let name, expr = binds.(i) in
      let r =
        match Eval.eval env expr with
        | v -> Ok (name, v)
        | exception Context.Eval_error d -> Error d
      in
      b_memo.(i) <- Some r;
      r
  in
  let run_body g env body =
    match Eval.eval_with_updates env body with
    | _, updates -> emit g (Updates updates)
    | exception Context.Eval_error d -> emit g (Failed d)
  in
  List.iteri
    (fun idx g ->
      if admitted idx g then begin
        before g;
        let env_r =
          List.fold_left
            (fun env_r i ->
              match env_r with
              | Error _ as e -> e
              | Ok env -> (
                match force_binding env i with
                | Ok (name, v) -> Ok (Context.bind env name v)
                | Error _ as e -> e))
            (Ok env) g.g_bindings
        in
        match env_r with
        | Error _ ->
          (* a hoisted expression this rule depends on failed: replay the
             rule's original body so the error surfaces exactly where (and
             with the description) per-rule evaluation would produce it *)
          run_body g env g.g_fallback
        | Ok env -> (
          let branch =
            match g.g_guard with
            | None -> Ok g.g_then
            | Some guard -> (
              let r =
                match g_memo.(g.g_guard_id) with
                | Some r -> r
                | None ->
                  let r =
                    match Value.ebv (Eval.eval env guard) with
                    | b -> Ok b
                    | exception Context.Eval_error d -> Error d
                    | exception Value.Type_error d -> Error d
                  in
                  g_memo.(g.g_guard_id) <- Some r;
                  r
              in
              match r with
              | Ok b -> Ok (if b then g.g_then else g.g_else)
              | Error d -> Error d)
          in
          match branch with
          | Ok body -> run_body g env body
          | Error _ -> run_body g env g.g_fallback)
      end)
    t.p_guarded

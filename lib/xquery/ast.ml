(* Abstract syntax of the QML expression language: the XQuery subset plus
   the Demaq queue update primitives ([do enqueue], [do reset]). *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Attribute

type node_test =
  | Name_test of string (* local name; namespaces resolved by serialization *)
  | Wildcard
  | Text_test
  | Node_kind_test
  | Comment_test

type binop =
  | Or
  | And
  | Gen_cmp of [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ]
  | Val_cmp of [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ]
  | Node_cmp of [ `Is | `Precedes | `Follows ]
  | Add
  | Sub
  | Mul
  | Div
  | Idiv
  | Mod
  | Union
  | Intersect
  | Except

(* Sequence types for [instance of] (XQuery 1.0 SequenceType syntax). *)
type item_type =
  | It_atomic of Value.atomic_type
  | It_untyped  (* xs:untypedAtomic *)
  | It_anyatomic  (* xs:anyAtomicType *)
  | It_element of string option
  | It_attribute of string option
  | It_text
  | It_document
  | It_node
  | It_item

type seq_type =
  | St_empty  (* empty-sequence() *)
  | St of item_type * [ `One | `Optional | `Star | `Plus ]

type expr =
  | Literal of Value.atomic
  | Empty_seq
  | Var of string
  | Context_item
  | Root  (** the document node of the context item's tree (leading [/]) *)
  | Sequence of expr list
  | Path of expr * expr
      (** [e1/e2]: evaluate [e2] once per item of [e1]; doc-order dedup *)
  | Axis_step of axis * node_test * expr list  (** axis step with predicates *)
  | Filter of expr * expr list  (** primary expression with predicates *)
  | Call of string * expr list  (** function call, possibly prefixed name *)
  | If of expr * expr * expr
  | Flwor of clause list * expr
  | Quantified of [ `Some | `Every ] * (string * expr) list * expr
  | Binary of binop * expr * expr
  | Neg of expr
  | Range of expr * expr
  | Direct_elem of direct_element
  | Computed_elem of expr * expr  (** element {name} {content} *)
  | Computed_attr of expr * expr  (** attribute {name} {value} *)
  | Computed_text of expr  (** text {content} *)
  | Cast of expr * Value.atomic_type * [ `Cast | `Castable ]
  | Instance_of of expr * seq_type
  | Treat_as of expr * seq_type
      (** runtime type assertion: identity if the value matches, dynamic
          error otherwise *)
  | Enqueue of { payload : expr; queue : string; props : (string * expr) list }
  | Reset of (string * expr) option  (** slicing name and key, if explicit *)
  | Bind of (string * expr) list * expr
      (** compiler-introduced plan-level let: sequential bindings (each may
          reference the previous), no tuple stream and no focus change —
          unlike a FLWOR [let] clause. Never produced by the parser; the
          rule compiler hoists common subexpressions into these. *)

and clause =
  | For of (string * string option * expr) list
      (** variable, optional positional variable ([at $i]), domain *)
  | Let of (string * expr) list
  | Where of expr
  | Order_by of (expr * [ `Asc | `Desc ] * [ `Empty_least | `Empty_greatest ]) list

and direct_element = {
  tag : string;
  dattrs : (string * attr_piece list) list;
  dcontent : content_piece list;
}

and attr_piece = A_text of string | A_expr of expr

and content_piece = C_text of string | C_expr of expr

(* Fold over all sub-expressions, used by the rewriter and the compiler's
   dependency analysis. *)
let rec fold_expr f acc e =
  let acc = f acc e in
  let fold_list = List.fold_left (fold_expr f) in
  match e with
  | Literal _ | Empty_seq | Var _ | Context_item | Root -> acc
  | Sequence es -> fold_list acc es
  | Path (a, b) | Binary (_, a, b) | Range (a, b) -> fold_expr f (fold_expr f acc a) b
  | Axis_step (_, _, preds) -> fold_list acc preds
  | Filter (p, preds) -> fold_list (fold_expr f acc p) preds
  | Call (_, args) -> fold_list acc args
  | If (c, t, e') -> fold_expr f (fold_expr f (fold_expr f acc c) t) e'
  | Flwor (clauses, ret) ->
    let acc =
      List.fold_left
        (fun acc c ->
          match c with
          | For binds ->
            List.fold_left (fun acc (_, _, e) -> fold_expr f acc e) acc binds
          | Let binds ->
            List.fold_left (fun acc (_, e) -> fold_expr f acc e) acc binds
          | Where e -> fold_expr f acc e
          | Order_by keys ->
            List.fold_left (fun acc (e, _, _) -> fold_expr f acc e) acc keys)
        acc clauses
    in
    fold_expr f acc ret
  | Quantified (_, binds, sat) ->
    let acc =
      List.fold_left (fun acc (_, e) -> fold_expr f acc e) acc binds
    in
    fold_expr f acc sat
  | Neg a -> fold_expr f acc a
  | Direct_elem d ->
    let acc =
      List.fold_left
        (fun acc (_, pieces) ->
          List.fold_left
            (fun acc p -> match p with A_text _ -> acc | A_expr e -> fold_expr f acc e)
            acc pieces)
        acc d.dattrs
    in
    List.fold_left
      (fun acc p -> match p with C_text _ -> acc | C_expr e -> fold_expr f acc e)
      acc d.dcontent
  | Computed_elem (a, b) | Computed_attr (a, b) ->
    fold_expr f (fold_expr f acc a) b
  | Computed_text a | Cast (a, _, _) | Instance_of (a, _) | Treat_as (a, _) ->
    fold_expr f acc a
  | Enqueue { payload; props; _ } ->
    List.fold_left (fun acc (_, e) -> fold_expr f acc e) (fold_expr f acc payload) props
  | Reset None -> acc
  | Reset (Some (_, key)) -> fold_expr f acc key
  | Bind (binds, body) ->
    let acc = List.fold_left (fun acc (_, e) -> fold_expr f acc e) acc binds in
    fold_expr f acc body

(* Bottom-up rewriting. *)
let rec map_expr f e =
  let m = map_expr f in
  let e' =
    match e with
    | Literal _ | Empty_seq | Var _ | Context_item | Root -> e
    | Sequence es -> Sequence (List.map m es)
    | Path (a, b) -> Path (m a, m b)
    | Axis_step (ax, t, preds) -> Axis_step (ax, t, List.map m preds)
    | Filter (p, preds) -> Filter (m p, List.map m preds)
    | Call (name, args) -> Call (name, List.map m args)
    | If (c, t, el) -> If (m c, m t, m el)
    | Flwor (clauses, ret) ->
      let mc = function
        | For binds -> For (List.map (fun (v, p, e) -> (v, p, m e)) binds)
        | Let binds -> Let (List.map (fun (v, e) -> (v, m e)) binds)
        | Where e -> Where (m e)
        | Order_by keys -> Order_by (List.map (fun (e, d, ep) -> (m e, d, ep)) keys)
      in
      Flwor (List.map mc clauses, m ret)
    | Quantified (q, binds, sat) ->
      Quantified (q, List.map (fun (v, e) -> (v, m e)) binds, m sat)
    | Binary (op, a, b) -> Binary (op, m a, m b)
    | Neg a -> Neg (m a)
    | Range (a, b) -> Range (m a, m b)
    | Direct_elem d ->
      Direct_elem
        { d with
          dattrs =
            List.map
              (fun (n, pieces) ->
                ( n,
                  List.map
                    (function A_text _ as t -> t | A_expr e -> A_expr (m e))
                    pieces ))
              d.dattrs;
          dcontent =
            List.map
              (function C_text _ as t -> t | C_expr e -> C_expr (m e))
              d.dcontent }
    | Computed_elem (a, b) -> Computed_elem (m a, m b)
    | Computed_attr (a, b) -> Computed_attr (m a, m b)
    | Computed_text a -> Computed_text (m a)
    | Cast (a, ty, k) -> Cast (m a, ty, k)
    | Instance_of (a, st) -> Instance_of (m a, st)
    | Treat_as (a, st) -> Treat_as (m a, st)
    | Enqueue { payload; queue; props } ->
      Enqueue
        { payload = m payload;
          queue;
          props = List.map (fun (n, e) -> (n, m e)) props }
    | Reset None -> Reset None
    | Reset (Some (s, key)) -> Reset (Some (s, m key))
    | Bind (binds, body) ->
      Bind (List.map (fun (v, e) -> (v, m e)) binds, m body)
  in
  f e'

let contains_update e =
  fold_expr
    (fun acc e -> acc || match e with Enqueue _ | Reset _ -> true | _ -> false)
    false e

let called_functions e =
  fold_expr
    (fun acc e -> match e with Call (name, _) -> name :: acc | _ -> acc)
    [] e

(* Pretty-printer for the expression AST, used by plan explain output and
   in tests (parse/print round-trips). Output is valid QML surface syntax. *)

open Ast

let cmp_name = function
  | `Eq -> "=" | `Ne -> "!=" | `Lt -> "<" | `Le -> "<=" | `Gt -> ">" | `Ge -> ">="

let val_cmp_name = function
  | `Eq -> "eq" | `Ne -> "ne" | `Lt -> "lt" | `Le -> "le" | `Gt -> "gt" | `Ge -> "ge"

let binop_name = function
  | Or -> "or"
  | And -> "and"
  | Gen_cmp c -> cmp_name c
  | Val_cmp c -> val_cmp_name c
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Idiv -> "idiv"
  | Mod -> "mod"
  | Union -> "|"
  | Intersect -> "intersect"
  | Except -> "except"
  | Node_cmp `Is -> "is"
  | Node_cmp `Precedes -> "<<"
  | Node_cmp `Follows -> ">>"

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Parent -> "parent"
  | Attribute -> "attribute"

let test_name = function
  | Name_test n -> n
  | Wildcard -> "*"
  | Text_test -> "text()"
  | Node_kind_test -> "node()"
  | Comment_test -> "comment()"

let seq_type_name = function
  | St_empty -> "empty-sequence()"
  | St (it, occ) ->
    let base =
      match it with
      | It_atomic ty -> Value.atomic_type_name ty
      | It_untyped -> "xs:untypedAtomic"
      | It_anyatomic -> "xs:anyAtomicType"
      | It_element (Some n) -> Printf.sprintf "element(%s)" n
      | It_element None -> "element()"
      | It_attribute (Some n) -> Printf.sprintf "attribute(%s)" n
      | It_attribute None -> "attribute()"
      | It_text -> "text()"
      | It_document -> "document-node()"
      | It_node -> "node()"
      | It_item -> "item()"
    in
    base ^ (match occ with `One -> "" | `Optional -> "?" | `Star -> "*" | `Plus -> "+")

let escape_string s =
  String.concat "" (List.map (function '"' -> "\"\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let rec pp fmt e =
  match e with
  | Literal (Value.String s) -> Format.fprintf fmt "\"%s\"" (escape_string s)
  | Literal a -> Format.pp_print_string fmt (Value.string_of_atomic a)
  | Empty_seq -> Format.pp_print_string fmt "()"
  | Var v -> Format.fprintf fmt "$%s" v
  | Context_item -> Format.pp_print_string fmt "."
  | Root -> Format.pp_print_string fmt "/"
  | Sequence es ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp)
      es
  | Path (Root, b) -> Format.fprintf fmt "/%a" pp b
  | Path (a, (Axis_step (Descendant_or_self, Node_kind_test, []) as _dos)) ->
    Format.fprintf fmt "%a//" pp_path_base a
  | Path (Path (a, Axis_step (Descendant_or_self, Node_kind_test, [])), b) ->
    (match a with
     | Root -> Format.fprintf fmt "//%a" pp b
     | _ -> Format.fprintf fmt "%a//%a" pp_path_base a pp b)
  | Path (a, b) -> Format.fprintf fmt "%a/%a" pp_path_base a pp b
  | Axis_step (Child, test, preds) ->
    Format.fprintf fmt "%s%a" (test_name test) pp_preds preds
  | Axis_step (Attribute, test, preds) ->
    Format.fprintf fmt "@%s%a" (test_name test) pp_preds preds
  | Axis_step (Parent, Node_kind_test, preds) ->
    Format.fprintf fmt "..%a" pp_preds preds
  | Axis_step (axis, test, preds) ->
    Format.fprintf fmt "%s::%s%a" (axis_name axis) (test_name test) pp_preds preds
  | Filter (e, preds) -> Format.fprintf fmt "%a%a" pp_primary e pp_preds preds
  | Call (name, args) ->
    Format.fprintf fmt "%s(%a)" name
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp)
      args
  | If (c, t, Empty_seq) -> Format.fprintf fmt "if (%a) then %a else ()" pp c pp t
  | If (c, t, e) -> Format.fprintf fmt "if (%a) then %a else %a" pp c pp t pp e
  | Flwor (clauses, ret) ->
    List.iter (pp_clause fmt) clauses;
    Format.fprintf fmt "return %a" pp ret
  | Quantified (q, binds, sat) ->
    Format.fprintf fmt "%s %a satisfies %a"
      (match q with `Some -> "some" | `Every -> "every")
      pp_binds binds pp sat
  | Binary (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp a (binop_name op) pp b
  | Neg a -> Format.fprintf fmt "-%a" pp a
  | Range (a, b) -> Format.fprintf fmt "(%a to %a)" pp a pp b
  | Direct_elem d -> pp_ctor fmt d
  | Computed_elem (name, content) ->
    Format.fprintf fmt "element {%a} {%a}" pp name pp content
  | Computed_attr (name, value) ->
    Format.fprintf fmt "attribute {%a} {%a}" pp name pp value
  | Computed_text content -> Format.fprintf fmt "text {%a}" pp content
  | Cast (e, ty, `Cast) ->
    Format.fprintf fmt "(%a cast as %s)" pp e (Value.atomic_type_name ty)
  | Cast (e, ty, `Castable) ->
    Format.fprintf fmt "(%a castable as %s)" pp e (Value.atomic_type_name ty)
  | Instance_of (e, st) ->
    Format.fprintf fmt "(%a instance of %s)" pp e (seq_type_name st)
  | Treat_as (e, st) ->
    Format.fprintf fmt "(%a treat as %s)" pp e (seq_type_name st)
  | Enqueue { payload; queue; props } ->
    Format.fprintf fmt "do enqueue %a into %s" pp payload queue;
    List.iter (fun (n, e) -> Format.fprintf fmt " with %s value %a" n pp e) props
  | Reset None -> Format.pp_print_string fmt "do reset"
  | Reset (Some (s, k)) -> Format.fprintf fmt "do reset slicing %s key %a" s pp k
  | Bind (binds, body) ->
    (* prints as FLWOR surface syntax; Bind is compiler-introduced and
       semantically a chain of sequential lets *)
    List.iter (fun (v, e) -> Format.fprintf fmt "let $%s := %a " v pp e) binds;
    Format.fprintf fmt "return %a" pp body

and pp_path_base fmt = function
  | Root -> () (* a leading "/" is printed by the Path case *)
  | e -> pp fmt e

and pp_primary fmt = function
  | (Literal _ | Var _ | Context_item | Call _ | Sequence _ | Empty_seq | Direct_elem _) as e ->
    pp fmt e
  | e -> Format.fprintf fmt "(%a)" pp e

and pp_preds fmt preds =
  List.iter (fun p -> Format.fprintf fmt "[%a]" pp p) preds

and pp_binds fmt binds =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.fprintf f ", ")
    (fun f (v, e) -> Format.fprintf f "$%s in %a" v pp e)
    fmt binds

and pp_for_binds fmt binds =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.fprintf f ", ")
    (fun f (v, pos, e) ->
      match pos with
      | Some p -> Format.fprintf f "$%s at $%s in %a" v p pp e
      | None -> Format.fprintf f "$%s in %a" v pp e)
    fmt binds

and pp_clause fmt = function
  | For binds ->
    Format.fprintf fmt "for %a " pp_for_binds binds
  | Let binds ->
    Format.fprintf fmt "let %a "
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f ", ")
         (fun f (v, e) -> Format.fprintf f "$%s := %a" v pp e))
      binds
  | Where e -> Format.fprintf fmt "where %a " pp e
  | Order_by keys ->
    Format.fprintf fmt "order by %a "
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f ", ")
         (fun f (e, dir, empty_policy) ->
           Format.fprintf f "%a%s%s" pp e
             (match dir with `Asc -> "" | `Desc -> " descending")
             (match empty_policy with
              | `Empty_least -> ""
              | `Empty_greatest -> " empty greatest")))
      keys

and pp_ctor fmt d =
  Format.fprintf fmt "<%s" d.tag;
  List.iter
    (fun (name, pieces) ->
      Format.fprintf fmt " %s=\"" name;
      List.iter
        (function
          | A_text s -> Format.pp_print_string fmt s
          | A_expr e -> Format.fprintf fmt "{%a}" pp e)
        pieces;
      Format.fprintf fmt "\"")
    d.dattrs;
  if d.dcontent = [] then Format.fprintf fmt "/>"
  else begin
    Format.fprintf fmt ">";
    List.iter
      (function
        | C_text s -> Format.pp_print_string fmt s
        | C_expr (Direct_elem d') -> pp_ctor fmt d'
        | C_expr e -> Format.fprintf fmt "{%a}" pp e)
      d.dcontent;
    Format.fprintf fmt "</%s>" d.tag
  end

let to_string e = Format.asprintf "%a" pp e

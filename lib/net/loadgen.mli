(** Open-loop HTTP load generator with latency percentiles.

    Drives an {!Http}-served node (the [POST /enqueue/<queue>] ingress) at
    a configured {e arrival rate}: request send times come from a fixed
    arrival process (constant spacing or Poisson), decided before any
    response is seen, and the generator never waits for a response before
    dispatching the next request. This is the open-loop discipline Gray's
    queueing analysis assumes — a closed loop (send, wait, send) silently
    self-throttles when the server slows down and hides exactly the tail
    latency the measurement exists to expose (coordinated omission).

    Two guards keep the loop honest rather than unbounded:
    - a hard in-flight cap: an arrival that would exceed it is {e counted
      as dropped} and skipped — never delayed, so the arrival process is
      undistorted and the drop counter itself is a load signal;
    - per-request latency is measured from the {e scheduled} arrival time,
      so any dispatch delay inside the generator charges the measurement,
      not the server's alibi.

    Single-domain, [select]-based, no dependencies beyond [Unix]. *)

type arrival = Constant | Poisson

type config = {
  host : Unix.inet_addr;
  port : int;
  rate : float;  (** arrivals per second *)
  duration : float;  (** seconds of arrivals *)
  arrival : arrival;
  max_inflight : int;  (** cap on open connections (clamped to 512) *)
  timeout_s : float;  (** per-request response deadline *)
  seed : int;  (** Poisson inter-arrival seed *)
}

val default_config : config
(** loopback, 100 req/s for 5 s, Poisson, 256 in flight, 10 s timeout. *)

type spec = { sp_path : string; sp_body : string; sp_flow : string }
(** One request: POST [sp_body] to [sp_path] ([sp_body = ""] sends GET).
    A non-empty [sp_flow] is stamped as an [X-Demaq-Flow] header, so the
    server adopts it as the message's causal flow id. *)

type results = {
  r_offered : int;  (** arrivals the process generated *)
  r_sent : int;  (** requests actually dispatched *)
  r_dropped : int;  (** arrivals refused by the in-flight cap *)
  r_ok : int;  (** 2xx responses *)
  r_rejected : int;
      (** 429s — shed by the admission gate; excluded from both [r_errors]
          and the latency distribution (backpressure is not failure) *)
  r_errors : int;  (** non-2xx/non-429 responses plus transport failures *)
  r_timeouts : int;  (** requests with no response within [timeout_s] *)
  r_statuses : (int * int) list;  (** status code -> count, sorted *)
  r_p50_ms : float;
  r_p99_ms : float;
  r_p999_ms : float;
  r_mean_ms : float;
  r_max_ms : float;
  r_elapsed_s : float;  (** first scheduled arrival to last completion *)
  r_achieved_rate : float;  (** completed (ok + errors) per elapsed second *)
}

val run : config -> (int -> spec) -> results
(** [run cfg gen] drives the full arrival schedule; [gen i] supplies the
    i-th request. Returns once every dispatched request completed, failed,
    or timed out. End-to-end latency (scheduled arrival -> last response
    byte) is recorded in a log-scale {!Demaq_obs.Metrics} histogram;
    percentiles in the results come from
    {!Demaq_obs.Metrics.percentile}. *)

val report : results -> string
(** Human-readable latency/SLO table. *)

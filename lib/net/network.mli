(** The simulated communication subsystem.

    Substitute for the paper's Web-Service transport stack (§4.2): an
    in-process registry of remote endpoints with scripted handlers,
    deterministic failure injection (disconnected endpoints, dropped
    packets, unresolvable names), and two delivery semantics:

    - best-effort: a dropped message is silently lost;
    - reliable (WS-ReliableMessaging stand-in): delivery is retried up to a
      bounded number of times and reports a timeout failure if every
      attempt is dropped. The acknowledgement travels the same lossy wire:
      when a delivered attempt's ack is lost, the sender retries and the
      endpoint handler is {e invoked again} — receiver-side deduplication
      really is exercised, faithful to at-least-once semantics. Every
      delivery past the first counts in [stats.duplicates].

    Messages travel as serialized SOAP envelopes, so the gateway path
    exercises real XML serialization and parsing on both sides. *)

module Tree := Demaq_xml.Tree

type failure =
  | Name_resolution of string  (** no such endpoint *)
  | Disconnected of string  (** endpoint exists but is down *)
  | Timeout of string  (** reliable delivery exhausted its retries *)

val failure_to_string : failure -> string

type send_result =
  | Sent of Tree.tree list  (** delivered; replies from the endpoint *)
  | Lost  (** best-effort send dropped on the wire *)
  | Failed of failure

type t

val create : ?seed:int -> ?max_retries:int -> unit -> t
(** [seed] makes the drop lottery deterministic (default 42).
    [max_retries] bounds reliable redelivery (default 5). *)

val register :
  t -> name:string -> handler:(sender:string -> Tree.tree -> Tree.tree list) -> unit
(** Scripted remote endpoint: receives the payload (SOAP body) and returns
    reply payloads, which the transport routes back to the sender. *)

val unregister : t -> string -> unit
val set_connected : t -> string -> bool -> unit

val connected : t -> string -> bool
(** Whether the endpoint exists and is currently connected. *)

val endpoint_names : t -> string list
(** Registered endpoints, sorted — a deterministic partition-target list
    for the simulation's schedule generator. *)

val set_drop_rate : t -> string -> float -> unit
(** Probability in [0, 1] that one transmission attempt is dropped. *)

val send :
  t -> ?reliable:bool -> from_:string -> to_:string -> Tree.tree -> send_result
(** Wrap the payload in a SOAP envelope, push it across the simulated wire,
    invoke the endpoint handler, and return its replies (unwrapped). *)

type stats = {
  attempts : int;  (** transmissions including retries *)
  delivered : int;
  dropped : int;
  duplicates : int;  (** redundant deliveries caused by retries *)
  failures : int;
  bytes : int;  (** serialized envelope bytes pushed over the wire *)
}

val stats : t -> stats

val wire_log : t -> string list
(** Serialized envelopes in transmission order (most recent last); for
    tests and debugging. Capped at the last 1000 entries. *)

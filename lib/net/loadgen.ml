(* The open-loop generator: a single-domain select loop.

   The schedule of send times is fixed up front by the arrival process;
   the loop's only job is to honor it. Each iteration (1) dispatches every
   arrival whose scheduled time has passed — opening a nonblocking
   connection per request, or counting a drop if the in-flight cap is
   reached, (2) expires requests past their response deadline, and
   (3) selects on the in-flight sockets to pump connect/write/read state
   machines. A request is complete at EOF (the server answers HTTP/1.0
   with Connection: close), and its latency is measured from the
   *scheduled* arrival time into a log-scale metrics histogram. *)

module Metrics = Demaq_obs.Metrics

type arrival = Constant | Poisson

type config = {
  host : Unix.inet_addr;
  port : int;
  rate : float;
  duration : float;
  arrival : arrival;
  max_inflight : int;
  timeout_s : float;
  seed : int;
}

let default_config =
  {
    host = Unix.inet_addr_loopback;
    port = 0;
    rate = 100.;
    duration = 5.;
    arrival = Poisson;
    max_inflight = 256;
    timeout_s = 10.;
    seed = 1;
  }

type spec = { sp_path : string; sp_body : string; sp_flow : string }

type results = {
  r_offered : int;
  r_sent : int;
  r_dropped : int;
  r_ok : int;
  r_rejected : int;  (* 429s: shed by the admission gate, not failures *)
  r_errors : int;
  r_timeouts : int;
  r_statuses : (int * int) list;
  r_p50_ms : float;
  r_p99_ms : float;
  r_p999_ms : float;
  r_mean_ms : float;
  r_max_ms : float;
  r_elapsed_s : float;
  r_achieved_rate : float;
}

type conn_state = Connecting | Sending | Receiving

type conn = {
  fd : Unix.file_descr;
  scheduled_ns : int;
  mutable state : conn_state;
  mutable out : Bytes.t;
  mutable out_off : int;
  inbuf : Buffer.t;
}

let request_bytes spec =
  let flow_header =
    if spec.sp_flow = "" then ""
    else Printf.sprintf "X-Demaq-Flow: %s\r\n" spec.sp_flow
  in
  if spec.sp_body = "" then
    Bytes.of_string
      (Printf.sprintf "GET %s HTTP/1.0\r\n%s\r\n" spec.sp_path flow_header)
  else
    Bytes.of_string
      (Printf.sprintf
         "POST %s HTTP/1.0\r\nContent-Type: application/xml\r\n%s\
          Content-Length: %d\r\n\r\n%s"
         spec.sp_path flow_header
         (String.length spec.sp_body)
         spec.sp_body)

let status_of_response buf =
  let s = Buffer.contents buf in
  match String.index_opt s ' ' with
  | None -> 0
  | Some i -> (
    let rest = String.sub s (i + 1) (min 3 (String.length s - i - 1)) in
    match int_of_string_opt rest with Some c -> c | None -> 0)

let run cfg gen =
  (* a server that answers-and-closes early (413/431) makes our next
     write EPIPE; without this that write is a process-killing SIGPIPE *)
  Http.ignore_sigpipe ();
  let rate = Float.max 0.001 cfg.rate in
  let cap = max 1 (min 512 cfg.max_inflight) in
  let timeout_ns = int_of_float (cfg.timeout_s *. 1e9) in
  let rng = Random.State.make [| cfg.seed |] in
  let reg = Metrics.create ~shards:1 () in
  let hist =
    Metrics.histogram reg ~help:"end-to-end request latency" ~shift:7
      ~scale:1e-9 "loadgen_latency_seconds"
  in
  let t0 = Metrics.now_ns () in
  let horizon = t0 + int_of_float (cfg.duration *. 1e9) in
  (* the arrival process: the next scheduled send time, ns. Constant
     spacing is derived from the arrival index (no drift accumulation);
     Poisson draws exponential inter-arrival gaps. *)
  let next_scheduled = ref t0 in
  let arrivals_done = ref false in
  let advance_arrival i =
    match cfg.arrival with
    | Constant ->
      next_scheduled := t0 + int_of_float (float_of_int (i + 1) *. 1e9 /. rate)
    | Poisson ->
      let u = 1. -. Random.State.float rng 1. (* (0,1] *) in
      next_scheduled :=
        !next_scheduled + int_of_float (-.Float.log u /. rate *. 1e9)
  in
  let offered = ref 0 in
  let sent = ref 0 in
  let dropped = ref 0 in
  let ok = ref 0 in
  let rejected = ref 0 in
  let errors = ref 0 in
  let timeouts = ref 0 in
  let statuses : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let max_lat = ref 0 in
  let last_completion = ref t0 in
  let inflight : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let addr = Unix.ADDR_INET (cfg.host, cfg.port) in
  let close_conn c =
    Hashtbl.remove inflight c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let note_status code =
    Hashtbl.replace statuses code
      (1 + Option.value ~default:0 (Hashtbl.find_opt statuses code))
  in
  let complete c now =
    let code = status_of_response c.inbuf in
    note_status code;
    (* a 429 is backpressure working as designed, not a failure, and not
       service either: it stays out of both the error count and the
       latency distribution (a refusal is fast by construction — mixing
       it in would flatter the over-knee percentiles) *)
    if code = 429 then incr rejected
    else begin
      if code >= 200 && code < 300 then incr ok else incr errors;
      let lat = now - c.scheduled_ns in
      Metrics.observe hist lat;
      if lat > !max_lat then max_lat := lat
    end;
    last_completion := now;
    close_conn c
  in
  let fail c = (* transport error: no status line *)
    note_status 0;
    incr errors;
    close_conn c
  in
  let start_request i scheduled_ns =
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> incr errors
    | fd ->
      Unix.set_nonblock fd;
      let c =
        {
          fd;
          scheduled_ns;
          state = Connecting;
          out = request_bytes (gen i);
          out_off = 0;
          inbuf = Buffer.create 256;
        }
      in
      incr sent;
      Hashtbl.replace inflight fd c;
      (match Unix.connect fd addr with
       | () -> c.state <- Sending
       | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
         ->
         ()
       | exception Unix.Unix_error _ -> fail c)
  in
  let pump_write c =
    (* first writability after a nonblocking connect doubles as the
       connect completion signal *)
    if c.state = Connecting then begin
      match Unix.getsockopt_error c.fd with
      | Some _ -> fail c
      | None -> c.state <- Sending
    end;
    if c.state = Sending then begin
      match
        Unix.write c.fd c.out c.out_off (Bytes.length c.out - c.out_off)
      with
      | n ->
        c.out_off <- c.out_off + n;
        if c.out_off >= Bytes.length c.out then c.state <- Receiving
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error _ -> fail c
    end
  in
  let read_chunk = Bytes.create 4096 in
  let pump_read c now =
    match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 -> complete c now
    | n -> Buffer.add_subbytes c.inbuf read_chunk 0 n
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ ->
      (* connection reset with a partial response counts as an error
         unless a full status line already arrived *)
      if Buffer.length c.inbuf > 0 then complete c now else fail c
  in
  let rec loop () =
    let now = Metrics.now_ns () in
    (* 1. dispatch every arrival whose time has come *)
    let rec dispatch now =
      if (not !arrivals_done) && !next_scheduled <= now then begin
        if !next_scheduled >= horizon then arrivals_done := true
        else begin
          let i = !offered in
          incr offered;
          let scheduled = !next_scheduled in
          if Hashtbl.length inflight >= cap then incr dropped
          else start_request i scheduled;
          advance_arrival i;
          if !next_scheduled >= horizon then arrivals_done := true;
          dispatch now
        end
      end
    in
    dispatch now;
    (* 2. expire requests past the response deadline *)
    let stale =
      Hashtbl.fold
        (fun _ c acc ->
          if now - c.scheduled_ns > timeout_ns then c :: acc else acc)
        inflight []
    in
    List.iter
      (fun c ->
        incr timeouts;
        incr errors;
        note_status 0;
        close_conn c)
      stale;
    if !arrivals_done && Hashtbl.length inflight = 0 then ()
    else begin
      (* 3. pump the in-flight sockets *)
      let rd, wr =
        Hashtbl.fold
          (fun fd c (rd, wr) ->
            match c.state with
            | Receiving -> (fd :: rd, wr)
            | Connecting | Sending -> (rd, fd :: wr))
          inflight ([], [])
      in
      let wait_ns =
        if !arrivals_done then 10_000_000
        else max 0 (min (!next_scheduled - now) 10_000_000)
      in
      match Unix.select rd wr [] (float_of_int wait_ns /. 1e9) with
      | rd_ready, wr_ready, _ ->
        let now = Metrics.now_ns () in
        List.iter
          (fun fd ->
            match Hashtbl.find_opt inflight fd with
            | Some c -> pump_write c
            | None -> ())
          wr_ready;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt inflight fd with
            | Some c -> pump_read c now
            | None -> ())
          rd_ready;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ();
  let count, sum = Metrics.histogram_totals hist in
  (* the bucket estimate can overshoot the true tail by up to a bucket
     width; the recorded maximum is a tighter bound *)
  let pct q =
    Float.min (Metrics.percentile hist q) (float_of_int !max_lat /. 1e9)
    *. 1e3
  in
  let elapsed_ns = max 1 (!last_completion - t0) in
  {
    r_offered = !offered;
    r_sent = !sent;
    r_dropped = !dropped;
    r_ok = !ok;
    r_rejected = !rejected;
    r_errors = !errors;
    r_timeouts = !timeouts;
    r_statuses =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) statuses []);
    r_p50_ms = pct 0.5;
    r_p99_ms = pct 0.99;
    r_p999_ms = pct 0.999;
    r_mean_ms =
      (if count = 0 then Float.nan
       else float_of_int sum /. float_of_int count /. 1e6);
    r_max_ms = float_of_int !max_lat /. 1e6;
    r_elapsed_s = float_of_int elapsed_ns /. 1e9;
    r_achieved_rate =
      float_of_int (!ok + !errors) /. (float_of_int elapsed_ns /. 1e9);
  }

let report r =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "offered %d  sent %d  dropped(cap) %d  ok %d  rejected(429) %d  \
     errors %d  timeouts %d\n"
    r.r_offered r.r_sent r.r_dropped r.r_ok r.r_rejected r.r_errors
    r.r_timeouts;
  if r.r_statuses <> [] then
    Printf.bprintf b "statuses: %s\n"
      (String.concat "  "
         (List.map
            (fun (c, n) ->
              Printf.sprintf "%s=%d" (if c = 0 then "fail" else string_of_int c) n)
            r.r_statuses));
  Printf.bprintf b
    "latency (end-to-end, from scheduled arrival):\n\
    \  p50 %8.2f ms\n\
    \  p99 %8.2f ms\n\
    \  p999 %7.2f ms\n\
    \  mean %7.2f ms   max %8.2f ms\n"
    r.r_p50_ms r.r_p99_ms r.r_p999_ms r.r_mean_ms r.r_max_ms;
  Printf.bprintf b "elapsed %.2f s   achieved %.1f req/s\n" r.r_elapsed_s
    r.r_achieved_rate;
  Buffer.contents b

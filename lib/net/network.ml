module Tree = Demaq_xml.Tree
module Serializer = Demaq_xml.Serializer
module Xml_parser = Demaq_xml.Parser

type failure =
  | Name_resolution of string
  | Disconnected of string
  | Timeout of string

let failure_to_string = function
  | Name_resolution host -> Printf.sprintf "cannot resolve endpoint %s" host
  | Disconnected host -> Printf.sprintf "transport endpoint %s is disconnected" host
  | Timeout host -> Printf.sprintf "delivery to %s timed out" host

type send_result =
  | Sent of Tree.tree list
  | Lost
  | Failed of failure

type endpoint = {
  mutable handler : sender:string -> Tree.tree -> Tree.tree list;
  mutable connected : bool;
  mutable drop_rate : float;
}

type stats = {
  attempts : int;
  delivered : int;
  dropped : int;
  duplicates : int;
  failures : int;
  bytes : int;
}

type t = {
  endpoints : (string, endpoint) Hashtbl.t;
  rng : Random.State.t;
  max_retries : int;
  mutable attempts : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicates : int;
  mutable failures : int;
  mutable bytes : int;
  mutable log : string list;  (* reversed *)
  mutable log_len : int;
}

let create ?(seed = 42) ?(max_retries = 5) () =
  {
    endpoints = Hashtbl.create 16;
    rng = Random.State.make [| seed |];
    max_retries;
    attempts = 0;
    delivered = 0;
    dropped = 0;
    duplicates = 0;
    failures = 0;
    bytes = 0;
    log = [];
    log_len = 0;
  }

let register t ~name ~handler =
  Hashtbl.replace t.endpoints name { handler; connected = true; drop_rate = 0.0 }

let unregister t name = Hashtbl.remove t.endpoints name

let with_endpoint t name f =
  match Hashtbl.find_opt t.endpoints name with
  | Some ep -> f ep
  | None -> invalid_arg (Printf.sprintf "no endpoint named %s" name)

let set_connected t name connected =
  with_endpoint t name (fun ep -> ep.connected <- connected)

let connected t name =
  match Hashtbl.find_opt t.endpoints name with
  | Some ep -> ep.connected
  | None -> false

let endpoint_names t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.endpoints [])

let set_drop_rate t name rate =
  with_endpoint t name (fun ep -> ep.drop_rate <- rate)

let log_wire t s =
  t.log <- s :: t.log;
  t.log_len <- t.log_len + 1;
  if t.log_len > 1000 then begin
    t.log <- List.filteri (fun i _ -> i < 1000) t.log;
    t.log_len <- 1000
  end

(* One transmission attempt: serialize, maybe drop, deserialize, invoke. *)
let attempt t ep ~from_ ~to_ payload =
  t.attempts <- t.attempts + 1;
  let envelope =
    Soap.envelope ~headers:[ Soap.header_field "From" from_; Soap.header_field "To" to_ ]
      payload
  in
  let wire = Serializer.to_string envelope in
  t.bytes <- t.bytes + String.length wire;
  log_wire t wire;
  if ep.drop_rate > 0.0 && Random.State.float t.rng 1.0 < ep.drop_rate then begin
    t.dropped <- t.dropped + 1;
    None
  end
  else begin
    t.delivered <- t.delivered + 1;
    (* The receiving side parses the wire form back into a tree: the
       round-trip is part of what the gateway path must exercise. *)
    let received = Xml_parser.parse wire in
    let body = Soap.body received in
    Some (ep.handler ~sender:from_ body)
  end

let send t ?(reliable = false) ~from_ ~to_ payload =
  match Hashtbl.find_opt t.endpoints to_ with
  | None ->
    t.failures <- t.failures + 1;
    Failed (Name_resolution to_)
  | Some ep ->
    if not ep.connected then begin
      t.failures <- t.failures + 1;
      Failed (Disconnected to_)
    end
    else if not reliable then begin
      match attempt t ep ~from_ ~to_ payload with
      | Some replies -> Sent replies
      | None -> Lost
    end
    else begin
      (* At-least-once: retry until acknowledged or retries exhausted. The
         acknowledgement travels the same lossy wire, so a delivered attempt
         whose ack is dropped makes the sender retry — and the endpoint
         handler really is invoked again, so receiver-side deduplication is
         exercised. Every delivery past the first counts as a duplicate. *)
      let finish delivered_replies deliveries =
        match delivered_replies with
        | Some replies ->
          if deliveries > 1 then t.duplicates <- t.duplicates + (deliveries - 1);
          Sent replies
        | None ->
          t.failures <- t.failures + 1;
          Failed (Timeout to_)
      in
      let rec go tries delivered_replies deliveries =
        if tries > t.max_retries then finish delivered_replies deliveries
        else
          match attempt t ep ~from_ ~to_ payload with
          | None -> go (tries + 1) delivered_replies deliveries
          | Some replies ->
            let delivered_replies =
              match delivered_replies with Some _ as r -> r | None -> Some replies
            in
            let ack_lost =
              ep.drop_rate > 0.0 && Random.State.float t.rng 1.0 < ep.drop_rate
            in
            if ack_lost then go (tries + 1) delivered_replies (deliveries + 1)
            else finish delivered_replies (deliveries + 1)
      in
      go 1 None 0
    end

let stats t =
  {
    attempts = t.attempts;
    delivered = t.delivered;
    dropped = t.dropped;
    duplicates = t.duplicates;
    failures = t.failures;
    bytes = t.bytes;
  }

let wire_log t = List.rev t.log

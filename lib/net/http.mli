(** Minimal HTTP/1.0 server for the observability endpoints.

    Serves GET only, one connection at a time, on a dedicated accept-loop
    domain. {!Network} remains the (simulated) message transport; this is
    solely for Prometheus scrapes and stats/trace dumps. *)

type t

type handler = path:string -> (string * string) option
(** [handler ~path] returns [Some (content_type, body)] to answer 200, or
    [None] for 404. Called on the accept-loop domain, serially. The path
    has any query string already stripped. *)

val start :
  ?addr:Unix.inet_addr -> port:int -> handler -> (t, string) result
(** Bind (default loopback) and start serving. [port = 0] picks an
    ephemeral port — read it back with {!port}. *)

val port : t -> int

val stop : t -> unit
(** Close the socket and join the accept domain. Idempotent. *)

val get : port:int -> string -> string * string
(** One-shot loopback client for tests/CI smoke: returns
    [(status_line, body)]. Raises [Unix.Unix_error] on connect failure. *)

(** Small HTTP/1.0 server for the observability endpoints and the message
    ingress.

    {!Network} remains the (simulated) message transport; this module is
    the one place the engine touches real sockets. It serves GET and POST
    (with [Content-Length] bodies) on a fixed pool of accept-loop domains,
    with a per-connection receive deadline so a stalled client can never
    wedge the server — enough for Prometheus scrapes and the
    [POST /enqueue/<queue>] gateway the load generator drives. *)

type meth = GET | POST

type request = {
  meth : meth;
  path : string;  (** query string already stripped *)
  query : string;  (** raw query string, without the ['?'] ("" if none) *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;  (** "" for GET *)
}

type response = {
  status : int;  (** e.g. 200, 202, 404 *)
  content_type : string;
  extra_headers : (string * string) list;
      (** additional response headers, e.g. [Retry-After] on a 429 *)
  resp_body : string;
}

val ok : ?content_type:string -> string -> response
(** 200 with the given body (default content type [text/plain]). *)

val response :
  status:int ->
  ?content_type:string ->
  ?headers:(string * string) list ->
  string ->
  response

type handler = request -> response option
(** [handler req] returns [Some response], or [None] for 404. May be
    called concurrently from several accept-pool domains. *)

type t

val ignore_sigpipe : unit -> unit
(** Set [SIGPIPE] to ignore (once; later calls are no-ops) so a write to
    a peer that closed or reset its end raises [EPIPE] instead of
    delivering a process-killing signal. {!start}, the one-shot clients
    and {!Loadgen.run} call this themselves; exposed for other socket
    writers. *)

val start :
  ?addr:Unix.inet_addr ->
  ?pool:int ->
  ?read_timeout:float ->
  ?max_body:int ->
  ?gate:(request -> response option) ->
  port:int ->
  handler ->
  (t, string) result
(** Bind (default loopback) and start serving on [pool] accept domains
    (default 4, min 1). [port = 0] picks an ephemeral port — read it back
    with {!port}.

    [read_timeout] (seconds, default 10.) bounds every socket read of one
    connection: a client that stalls mid-request is answered [408 Request
    Timeout] and closed, so a slow-loris connection costs one pool slot
    for at most the deadline instead of wedging the accept loop forever.

    [max_body] (default 1 MiB) caps [Content-Length]; larger requests are
    refused with [413]. Request heads are bounded at 8 KiB ([431]).

    [gate] is consulted after the head is parsed but {e before} the body
    is read ([request.body] is [""] at that point): returning
    [Some response] sheds the request — the declared body is drained
    (bounded, discarded) so the refusal arrives intact rather than racing
    an RST, then the response is written. The admission gate answers
    [429 + Retry-After] through this hook without paying for body
    transfer or XML parsing on a request it is about to refuse. *)

val port : t -> int

val connections_served : t -> int
(** Total connections accepted and answered, across the pool. *)

val timeouts : t -> int
(** Connections dropped by the receive deadline (408s sent). *)

val stop : t -> unit
(** Close the socket and join the accept domains. Idempotent. *)

(** {1 One-shot loopback clients (tests, CI smoke, loadgen warmup)} *)

val get : port:int -> string -> string * string
(** [get ~port path] returns [(status_line, body)]. Raises
    [Unix.Unix_error] on connect failure. *)

val post :
  port:int -> ?content_type:string -> string -> string -> string * string
(** [post ~port path body] returns [(status_line, body)]. *)

val post_full :
  port:int -> ?content_type:string -> string -> string -> string * string
(** Like {!post} but the first component is the whole response head
    (status line + headers) — pick headers out with {!header}. *)

val header : string -> string -> string option
(** [header name head] finds a header value (case-insensitive name) in a
    response head as returned by {!post_full}. *)

val status_code : string -> int
(** Parse the numeric code out of a status line ("HTTP/1.0 202 Accepted"
    -> 202); 0 if unparseable. *)

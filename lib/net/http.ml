(* A deliberately small HTTP/1.0 server for the observability endpoints
   and the message ingress.

   [Network] stays a simulated transport (deterministic tests, fault
   injection); this module is the one place the engine touches real
   sockets. The server is a fixed pool of accept-loop domains sharing one
   listening socket: a Prometheus scrape and an ingress POST are both
   single short-lived requests, so per-connection state never outlives a
   pool iteration, and the kernel spreads accepts across the idle domains.

   Robustness lessons are encoded here rather than in callers:

   - The whole request head is drained (up to the blank-line terminator,
     bounded at 8 KiB) before any response is written. Responding after
     only the request line leaves the rest of the head unread in the
     socket buffer, and the later close then sends RST, which can destroy
     the in-flight response for any client that sends ordinary
     multi-header requests.
   - Every read carries a receive deadline (SO_RCVTIMEO): a stalled or
     dead client is answered 408 and closed instead of occupying its pool
     slot forever (one slow-loris connection used to block every
     subsequent scrape).
   - Head scanning is incremental (resumes where the last fill stopped)
     instead of re-materializing the buffer per chunk, which was a
     quadratic scan.
   - SIGPIPE is ignored process-wide before any socket writing: a peer
     that resets mid-response (an aborted curl, a loadgen client past its
     deadline) turns the next write into EPIPE, which every write site
     handles, instead of a signal that kills the node. *)

let log = Logs.Src.create "demaq.http" ~doc:"Demaq HTTP endpoint"

module Log = (val Logs.src_log log : Logs.LOG)

(* Writing to a peer that already closed or reset its end (a loadgen
   client past its response deadline, a curl aborted mid-/trace) must
   surface as EPIPE — which every write site here handles — not as
   SIGPIPE, whose default disposition kills the whole process. Forced by
   the server, the one-shot clients and the load generator before their
   first socket write. *)
let sigpipe_ignored =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> () (* platform without signals *))

let ignore_sigpipe () = Lazy.force sigpipe_ignored

type meth = GET | POST

type request = {
  meth : meth;
  path : string;
  query : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  extra_headers : (string * string) list;  (* e.g. Retry-After on a 429 *)
  resp_body : string;
}

let response ~status ?(content_type = "text/plain") ?(headers = []) resp_body =
  { status; content_type; extra_headers = headers; resp_body }

let ok ?(content_type = "text/plain") body = response ~status:200 ~content_type body

type handler = request -> response option

type t = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  served : int Atomic.t;
  timed_out : int Atomic.t;
  mutable pool : unit Domain.t array;
      (* written once by [start] before it returns, read only by [stop];
         never touched from the pool domains themselves *)
}

let max_head = 8192

let reason_phrase = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 411 -> "Length Required"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Content"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

(* ---- reading the request ---- *)

type head_result =
  | Head of { head : string; leftover : string }
  | Closed  (* EOF before a complete head; includes the empty request *)
  | Head_too_large
  | Read_timeout

(* [read_head fd] drains the request head through the first blank line.
   The terminator scan resumes at the previous buffer end (minus the
   3 bytes a split "\r\n\r\n" can straddle), so the total scan cost is
   linear in the head size. Bytes past the terminator (the start of a
   request body) are returned as [leftover]. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  (* find the end of "\r\n\r\n" or "\n\n" at or after [from]; the
     terminator's first byte may start up to 3 bytes before [from] *)
  let find_terminator from =
    let n = Buffer.length buf in
    let at i = Buffer.nth buf i in
    let rec go i =
      if i >= n then None
      else if at i = '\n' then
        if i + 1 < n && at (i + 1) = '\n' then Some (i + 2)
        else if i + 2 < n && at (i + 1) = '\r' && at (i + 2) = '\n' then
          Some (i + 3)
        else go (i + 1)
      else go (i + 1)
    in
    go (max 0 (from - 3))
  in
  let rec fill scanned =
    match find_terminator scanned with
    | Some stop ->
      let all = Buffer.contents buf in
      Head
        {
          head = String.sub all 0 stop;
          leftover = String.sub all stop (String.length all - stop);
        }
    | None ->
      if Buffer.length buf >= max_head then Head_too_large
      else begin
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Closed
        | n ->
          let scanned = Buffer.length buf in
          Buffer.add_subbytes buf chunk 0 n;
          fill scanned
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill scanned
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          Read_timeout
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          Closed
      end
  in
  fill 0

type body_result = Body of string | Body_closed | Body_timeout

let read_body fd ~leftover ~length =
  if String.length leftover >= length then Body (String.sub leftover 0 length)
  else begin
    let buf = Buffer.create length in
    Buffer.add_string buf leftover;
    let chunk = Bytes.create 4096 in
    let rec fill () =
      if Buffer.length buf >= length then Body (Buffer.contents buf)
      else
        match
          Unix.read fd chunk 0
            (min (Bytes.length chunk) (length - Buffer.length buf))
        with
        | 0 -> Body_closed
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          fill ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          Body_timeout
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          Body_closed
    in
    fill ()
  end

(* ---- parsing ---- *)

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> None
  | request_line :: header_lines ->
    let request_line = String.trim request_line in
    let headers =
      List.filter_map
        (fun line ->
          let line = String.trim line in
          match String.index_opt line ':' with
          | Some i when i > 0 ->
            Some
              ( String.lowercase_ascii (String.sub line 0 i),
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)) )
          | _ -> None)
        header_lines
    in
    (match String.split_on_char ' ' request_line with
     | meth :: target :: _ ->
       let path, query =
         match String.index_opt target '?' with
         | Some i ->
           ( String.sub target 0 i,
             String.sub target (i + 1) (String.length target - i - 1) )
         | None -> (target, "")
       in
       Some (meth, path, query, headers)
     | _ -> None)

type length = No_length | Bad_length | Length of int

(* Strictly plain decimal: [int_of_string_opt] alone would honor OCaml
   literal forms ("0x10", "0o17", "1_000", leading '+'). *)
let content_length headers =
  match List.assoc_opt "content-length" headers with
  | None -> No_length
  | Some v -> (
    let v = String.trim v in
    if v = "" || not (String.for_all (fun c -> c >= '0' && c <= '9') v) then
      Bad_length
    else
      match int_of_string_opt v with
      | Some n -> Length n
      | None -> Bad_length (* overflow *))

(* ---- writing the response ---- *)

let write_all fd payload =
  let len = Bytes.length payload in
  let rec go off =
    if off < len then
      match Unix.write fd payload off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let respond fd { status; content_type; extra_headers; resp_body } =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) extra_headers)
  in
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%s\
       Connection: close\r\n\r\n"
      status (reason_phrase status) content_type (String.length resp_body)
      extra
  in
  write_all fd (Bytes.of_string (head ^ resp_body))

(* Close without clobbering the response: signal end-of-response with a
   write shutdown, then drain (briefly, bounded) whatever request bytes
   the client is still sending, so the final close never has unread data
   that would turn it into an RST racing the response across the wire. *)
let lingering_close fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0
   with Unix.Unix_error _ -> ());
  let chunk = Bytes.create 4096 in
  let rec drain budget =
    if budget > 0 then
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n -> drain (budget - n)
      | exception Unix.Unix_error _ -> ()
  in
  drain 65536

(* ---- per-connection servicing ---- *)

(* Read and discard up to [n] request-body bytes. The shed path (an
   admission-gate 429) uses this before answering: responding while the
   client is still streaming its body and then closing turns the unread
   data into an RST that can destroy the 429 on the wire — the client
   would see a connection error instead of the backpressure signal it is
   supposed to honor. Gives up quietly on EOF/timeout/reset; the
   lingering close mops up any remainder. *)
let drain_body fd n =
  let chunk = Bytes.create 4096 in
  let rec go remaining =
    if remaining > 0 then
      match Unix.read fd chunk 0 (min (Bytes.length chunk) remaining) with
      | 0 -> ()
      | k -> go (remaining - k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go remaining
      | exception Unix.Unix_error _ -> ()
  in
  go n

let serve_conn t ~read_timeout ~max_body ~gate handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout
       with Unix.Unix_error _ -> ());
      let finish resp =
        Atomic.incr t.served;
        (try respond fd resp with Unix.Unix_error _ -> ());
        lingering_close fd
      in
      let timeout () =
        Atomic.incr t.timed_out;
        Atomic.incr t.served;
        (try respond fd (response ~status:408 "request timeout\n")
         with Unix.Unix_error _ -> ())
        (* no lingering close: the peer is stalled, just drop it *)
      in
      let dispatch req =
        match handler req with
        | Some resp -> finish resp
        | None -> finish (response ~status:404 "not found\n")
        | exception e ->
          Log.warn (fun f ->
              f "handler raised on %s: %s" req.path (Printexc.to_string e));
          finish (response ~status:500 "internal error\n")
      in
      match read_head fd with
      | Closed -> (* nothing to answer *) ()
      | Read_timeout -> timeout ()
      | Head_too_large ->
        finish (response ~status:431 "request head too large\n")
      | Head { head; leftover } -> (
        match parse_head head with
        | None -> finish (response ~status:400 "bad request\n")
        | Some (meth, path, query, headers) -> (
          (* shed before the body is read: drain what the client declared
             (bounded at [max_body]; oversized requests would have been
             413 anyway) so the refusal arrives intact, then answer *)
          let shed resp =
            (match content_length headers with
             | Length n when n > 0 ->
               drain_body fd (min n max_body - String.length leftover)
             | Length _ | No_length | Bad_length -> ());
            finish resp
          in
          match meth with
          | "GET" -> (
            let req = { meth = GET; path; query; headers; body = "" } in
            match gate req with
            | Some resp -> shed resp
            | None -> dispatch req)
          | "POST" -> (
            match gate { meth = POST; path; query; headers; body = "" } with
            | Some resp -> shed resp
            | None -> (
              match content_length headers with
              | No_length -> finish (response ~status:411 "length required\n")
              | Bad_length ->
                finish (response ~status:400 "bad content-length\n")
              | Length n when n > max_body ->
                finish (response ~status:413 "payload too large\n")
              | Length n -> (
                match read_body fd ~leftover ~length:n with
                | Body_timeout -> timeout ()
                | Body_closed ->
                  finish (response ~status:400 "truncated body\n")
                | Body body ->
                  dispatch { meth = POST; path; query; headers; body })))
          | _ -> finish (response ~status:405 "method not allowed\n"))))

let accept_loop t ~read_timeout ~max_body ~gate handler =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.accept t.sock with
       | conn, _ -> (
         try serve_conn t ~read_timeout ~max_body ~gate handler conn
         with e ->
           Log.warn (fun f ->
               f "request handling failed: %s" (Printexc.to_string e)))
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error _ when Atomic.get t.stopping -> ()
       | exception Unix.Unix_error (err, _, _) ->
         Log.warn (fun f -> f "accept failed: %s" (Unix.error_message err));
         Unix.sleepf 0.01);
      loop ()
    end
  in
  loop ()

let start ?(addr = Unix.inet_addr_loopback) ?(pool = 4) ?(read_timeout = 10.)
    ?(max_body = 1 lsl 20) ?(gate = fun _ -> None) ~port handler =
  ignore_sigpipe ();
  let pool = max 1 pool in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (addr, port));
    Unix.listen sock 128
  with
  | () ->
    let port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    let stopping = Atomic.make false in
    let served = Atomic.make 0 in
    let timed_out = Atomic.make 0 in
    (* construct [t] fully before spawning: Domain.spawn orders every
       prior write before the child runs, so the pool domains see an
       initialized record with no publication handshake *)
    let t = { sock; port; stopping; served; timed_out; pool = [||] } in
    t.pool <-
      Array.init pool (fun _ ->
          Domain.spawn (fun () ->
              accept_loop t ~read_timeout ~max_body ~gate handler));
    Log.info (fun f -> f "http endpoint listening on port %d (%d accept domains)" port pool);
    Ok t
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot bind http port %d: %s" port
         (Unix.error_message err))

let port t = t.port
let connections_served t = Atomic.get t.served
let timeouts t = Atomic.get t.timed_out

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* closing the listening socket makes the blocked accepts fail out *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    Array.iter Domain.join t.pool
  end

(* ---- one-shot loopback clients ---- *)

(* find the end of the response head ("\r\n\r\n") *)
let find_header_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

(* Like {!roundtrip} but keeps the whole response head (status line +
   headers) — for callers that need a header, e.g. Retry-After on 429. *)
let roundtrip_full ~port req =
  ignore_sigpipe ();
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (* the server may answer-and-close before reading the whole request
         (413/431): keep going and drain whatever response made it out *)
      (try ignore (Unix.write_substring sock req 0 (String.length req))
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      let response = Buffer.contents buf in
      match find_header_end response with
      | Some i ->
        ( String.sub response 0 i,
          String.sub response i (String.length response - i) )
      | None -> (response, ""))

let roundtrip ~port req =
  let head, body = roundtrip_full ~port req in
  let status =
    match String.index_opt head '\r' with
    | Some eol -> String.sub head 0 eol
    | None -> head
  in
  (status, body)

let get ~port path =
  roundtrip ~port (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path)

let post_request ?(content_type = "application/xml") path body =
  Printf.sprintf
    "POST %s HTTP/1.0\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n%s"
    path content_type (String.length body) body

let post ~port ?content_type path body =
  roundtrip ~port (post_request ?content_type path body)

let post_full ~port ?content_type path body =
  roundtrip_full ~port (post_request ?content_type path body)

let header name head =
  let name = String.lowercase_ascii name in
  String.split_on_char '\n' head
  |> List.find_map (fun line ->
         match String.index_opt line ':' with
         | Some i when String.lowercase_ascii (String.sub line 0 i) = name ->
           Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
         | _ -> None)

let status_code status_line =
  match String.split_on_char ' ' status_line with
  | _ :: code :: _ -> ( match int_of_string_opt code with Some c -> c | None -> 0)
  | _ -> 0

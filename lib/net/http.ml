(* A deliberately small HTTP/1.0 server for the observability endpoints.

   [Network] stays a simulated transport (deterministic tests, fault
   injection); this module is the one place the engine touches real
   sockets, and it serves only GET with a response the handler renders
   per request — enough for a Prometheus scrape of /metrics, nothing
   more. One accept-loop domain, one connection at a time: a scrape is a
   single short-lived request, and serializing them means the handler
   (which aggregates registry shards) never runs concurrently with
   itself. *)

let log = Logs.Src.create "demaq.http" ~doc:"Demaq metrics endpoint"

module Log = (val Logs.src_log log : Logs.LOG)

type handler = path:string -> (string * string) option
(* [handler ~path] returns [Some (content_type, body)] or [None] for 404. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  accept_domain : unit Domain.t;
}

let read_request_path fd =
  (* Read until the end of the request head (blank line) or EOF; the
     request line is all we use. *)
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec fill () =
    if Buffer.length buf < 8192
       && not (let s = Buffer.contents buf in
               String.length s >= 4
               && (String.index_opt s '\n' <> None))
    then begin
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        fill ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
    end
  in
  fill ();
  let line = Buffer.contents buf in
  match String.index_opt line '\n' with
  | None -> None
  | Some eol -> (
    let line = String.trim (String.sub line 0 eol) in
    match String.split_on_char ' ' line with
    | "GET" :: path :: _ -> Some path
    | _ -> None)

let respond fd status headers body =
  let head =
    Printf.sprintf "HTTP/1.0 %s\r\n%sContent-Length: %d\r\nConnection: close\r\n\r\n"
      status
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
      (String.length body)
  in
  let payload = Bytes.of_string (head ^ body) in
  let len = Bytes.length payload in
  let rec write_all off =
    if off < len then
      match Unix.write fd payload off (len - off) with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
  in
  write_all 0

let serve_one handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request_path fd with
      | None -> respond fd "400 Bad Request" [] "bad request\n"
      | Some path -> (
        (* strip the query string; the endpoints take no parameters *)
        let path =
          match String.index_opt path '?' with
          | Some i -> String.sub path 0 i
          | None -> path
        in
        match handler ~path with
        | Some (content_type, body) ->
          respond fd "200 OK" [ ("Content-Type", content_type) ] body
        | None -> respond fd "404 Not Found" [] "not found\n"))

let accept_loop t handler =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.accept t.sock with
       | conn, _ -> (
         try serve_one handler conn
         with e ->
           Log.warn (fun f ->
               f "request handling failed: %s" (Printexc.to_string e)))
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error _ when Atomic.get t.stopping -> ());
      loop ()
    end
  in
  loop ()

let start ?(addr = Unix.inet_addr_loopback) ~port handler =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (addr, port));
    Unix.listen sock 16
  with
  | () ->
    let port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    let stopping = Atomic.make false in
    let t_ref = ref None in
    let t =
      {
        sock;
        port;
        stopping;
        accept_domain =
          Domain.spawn (fun () ->
              (* wait for [t] to be published before entering the loop *)
              let rec get () =
                match !t_ref with Some t -> t | None -> Domain.cpu_relax (); get ()
              in
              accept_loop (get ()) handler);
      }
    in
    t_ref := Some t;
    Log.info (fun f -> f "metrics endpoint listening on port %d" port);
    Ok t
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot bind metrics port %d: %s" port
             (Unix.error_message err))

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* closing the listening socket makes the blocked accept fail out *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    Domain.join t.accept_domain
  end

(* find the end of the response head ("\r\n\r\n") *)
let find_header_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

(* A one-shot client, for tests and CI smoke: fetch [path] and return
   (status line, body). *)
let get ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let response = Buffer.contents buf in
      match find_header_end response with
      | Some i ->
        let status =
          match String.index_opt response '\r' with
          | Some eol -> String.sub response 0 eol
          | None -> response
        in
        (status, String.sub response i (String.length response - i))
      | None -> (response, ""))

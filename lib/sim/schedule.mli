(** Seeded chaos schedules for the deterministic simulation harness.

    A schedule is a finite list of events drawn from the engine's existing
    injection points — message arrival, one dispatcher step with a seeded
    pick, virtual-time advance, a durability barrier with a gateway pump,
    kill-and-redeploy with a (capped) torn WAL tail, endpoint partitions,
    and armed evaluator/apply faults. One integer seed generates the whole
    schedule; the event list alone then fully determines the episode, so a
    failing schedule can be saved, shrunk, and replayed bit-for-bit. *)

type event =
  | Inject of string  (** deliver the next workload message into a queue *)
  | Step of int
      (** one dispatcher step; the integer seeds the pick among the
          messages that could legally run next *)
  | Advance of int  (** advance the virtual clock, firing due timers *)
  | Barrier  (** force a durability barrier, then pump the gateways *)
  | Crash of int
      (** kill-and-redeploy; the integer is the requested WAL tear in
          bytes, capped at the unsynced tail unless the run is blind *)
  | Partition of string  (** disconnect a network endpoint *)
  | Reconnect of string
  | Fail_eval  (** arm an injected fault on the next rule evaluation *)
  | Fail_apply  (** arm a fault on the next pending-update application *)
  | Burst of int
      (** a load spike: that many arrivals pushed through the admission
          gate back-to-back; messages the gate sheds are counted but never
          injected *)
  | Compact
      (** log compaction: harden the group-commit batch and fold the WAL
          into a fresh snapshot *)
  | Torn_compact of int
      (** a compaction that dies at its commit point — before the snapshot
          rename when the integer is even, just after it when odd — then a
          restart from whatever is on disk *)

type t = { seed : int; events : event list }

val generate : seed:int -> ?events:int -> unit -> t
(** Derive a schedule of [events] events (default 40) from the seed alone.
    Same seed, same schedule — always. *)

val event_to_string : event -> string
val event_of_string : string -> (event, string) result

val to_string : t -> string
(** The replayable artifact: a [seed N] header line followed by one event
    per line. [#] starts a comment; blank lines are ignored. *)

val of_string : string -> (t, string) result
(** Parse {!to_string}'s format; errors name the offending line. *)

(* Seeded chaos schedules (see schedule.mli). The generator is the only
   place randomness enters the simulation: once a schedule exists, running
   it is purely deterministic, which is what makes shrinking and replay
   possible. *)

type event =
  | Inject of string
  | Step of int
  | Advance of int
  | Barrier
  | Crash of int
  | Partition of string
  | Reconnect of string
  | Fail_eval
  | Fail_apply
  | Burst of int
  | Compact
  | Torn_compact of int

type t = { seed : int; events : event list }

(* Weights out of 100. Steps dominate — interleaving choice is where the
   interesting bugs hide — with a steady drip of arrivals so there is
   always work to interleave, and rarer catastrophic events. Bursts and
   compactions are rare enough that most schedules still exercise the
   steady-state paths, common enough that a modest sweep hits them. *)
let generate ~seed ?(events = 40) () =
  let rng = Random.State.make [| 0x51; seed |] in
  let gen_event () =
    let r = Random.State.int rng 100 in
    if r < 24 then Inject (if Random.State.bool rng then "qa" else "qb")
    else if r < 55 then Step (Random.State.int rng 1024)
    else if r < 63 then Advance (1 + Random.State.int rng 12)
    else if r < 72 then Barrier
    else if r < 77 then Crash (Random.State.int rng 97)
    else if r < 81 then Partition "partner"
    else if r < 85 then Reconnect "partner"
    else if r < 89 then Fail_eval
    else if r < 92 then Fail_apply
    else if r < 96 then Burst (4 + Random.State.int rng 28)
    else if r < 99 then Compact
    else Torn_compact (Random.State.int rng 2)
  in
  { seed; events = List.init events (fun _ -> gen_event ()) }

let event_to_string = function
  | Inject q -> "inject " ^ q
  | Step n -> Printf.sprintf "step %d" n
  | Advance n -> Printf.sprintf "advance %d" n
  | Barrier -> "barrier"
  | Crash n -> Printf.sprintf "crash %d" n
  | Partition e -> "partition " ^ e
  | Reconnect e -> "reconnect " ^ e
  | Fail_eval -> "fail-eval"
  | Fail_apply -> "fail-apply"
  | Burst n -> Printf.sprintf "burst %d" n
  | Compact -> "compact"
  | Torn_compact n -> Printf.sprintf "torn-compact %d" n

let event_of_string line =
  let fail () = Error (Printf.sprintf "unrecognized event %S" line) in
  let int_arg s k =
    match int_of_string_opt s with Some n -> Ok (k n) | None -> fail ()
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ "inject"; q ] -> Ok (Inject q)
  | [ "step"; n ] -> int_arg n (fun n -> Step n)
  | [ "advance"; n ] -> int_arg n (fun n -> Advance n)
  | [ "barrier" ] -> Ok Barrier
  | [ "crash"; n ] -> int_arg n (fun n -> Crash n)
  | [ "partition"; e ] -> Ok (Partition e)
  | [ "reconnect"; e ] -> Ok (Reconnect e)
  | [ "fail-eval" ] -> Ok Fail_eval
  | [ "fail-apply" ] -> Ok Fail_apply
  | [ "burst"; n ] -> int_arg n (fun n -> Burst n)
  | [ "compact" ] -> Ok Compact
  | [ "torn-compact"; n ] -> int_arg n (fun n -> Torn_compact n)
  | _ -> fail ()

let to_string t =
  String.concat "\n"
    (Printf.sprintf "seed %d" t.seed :: List.map event_to_string t.events)
  ^ "\n"

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno seed events = function
    | [] -> Ok { seed; events = List.rev events }
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go (lineno + 1) seed events rest
      else
        match String.split_on_char ' ' line with
        | [ "seed"; n ] -> (
          match int_of_string_opt n with
          | Some s -> go (lineno + 1) s events rest
          | None -> Error (Printf.sprintf "line %d: bad seed %S" lineno n))
        | _ -> (
          match event_of_string line with
          | Ok ev -> go (lineno + 1) seed (ev :: events) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)))
  in
  go 1 0 [] lines

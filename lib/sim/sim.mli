(** The deterministic simulation harness.

    One {!Schedule.t} drives a complete engine episode in virtual time:
    a fixed two-queue workload (a high-priority queue [qa] whose rule
    produces into [outq], a default-priority queue [qb] whose rule sends
    through a reliable outgoing gateway [gw] to the endpoint [partner],
    both with error queue [errs]) runs on a durable group-commit store
    while the schedule injects messages, picks dispatcher steps, tears WAL
    tails across crash-restarts, partitions the endpoint, arms evaluator
    faults, pushes load bursts through the admission gate, and compacts
    the log — including compactions torn at their commit point. Same
    schedule, same trace — bit for bit.

    After every event, and again after the final drain, the harness checks
    the §3.1/§3.6 invariants:

    - {b exactly-once}: no workload id yields two outputs; every processed
      id yields its output or an error message;
    - {b order}: per-queue FIFO by rid within an incarnation, and no step
      processes below the highest runnable priority;
    - {b barrier-before-transmission}: the endpoint never observes
      unsynced commits at delivery time;
    - {b durability}: no message whose commit was synced disappears across
      a crash-restart — including a restart after a compaction torn on
      either side of its snapshot rename;
    - {b abort-error}: the error queue grew by exactly one message per
      transaction abort and per dead-lettered transmission;
    - {b shed-isolation}: an arrival the admission gate refused leaves no
      trace in the store, in this incarnation or any later one. *)

type violation = { invariant : string; detail : string }

type outcome = {
  schedule : Schedule.t;
  trace : string list;  (** one line per event, deterministic *)
  violations : violation list;
}

val run : ?blind_tear:bool -> ?footprint:bool -> Schedule.t -> outcome
(** Execute the schedule against a fresh store in a temp directory
    (cleaned up afterwards). [blind_tear] applies [Crash] tears without
    capping them at the unsynced WAL tail — the tear may then destroy
    synced commits, which is a deliberately detectable durability
    violation used to validate the checker and the shrinker.
    [footprint] runs the episode with conflict-footprint-driven dispatch
    ([footprint_dispatch]); every invariant must hold unchanged — the
    workload's producing rules all touch their output resource, so even
    the relaxed ordering discipline preserves outq FIFO. *)

val shrink : ?blind_tear:bool -> ?footprint:bool -> Schedule.t -> Schedule.t
(** Greedy delta-debugging: repeatedly drop event chunks (halving the
    chunk size down to 1) while the schedule still produces at least one
    violation. Returns a 1-minimal failing schedule, or the input
    unchanged if it does not fail. *)

val report : outcome -> string
(** Human-readable: the schedule, the trace, and the verdicts. *)

type sweep_result =
  | Clean of int  (** iterations run, all invariants held *)
  | Failed of {
      seed : int;  (** the failing iteration's schedule seed *)
      outcome : outcome;
      shrunk : Schedule.t;
      shrunk_outcome : outcome;
    }

val sweep :
  ?blind_tear:bool ->
  ?footprint:bool ->
  ?events:int ->
  ?progress:(int -> unit) ->
  seed:int ->
  iters:int ->
  unit ->
  sweep_result
(** Generate and run [iters] schedules from seeds [seed], [seed+1], …;
    stop at the first violation and hand back both the original failing
    outcome and its shrunk counterexample. [progress] is called with each
    iteration index before it runs. *)

(* The deterministic simulation harness (see sim.mli).

   Everything the episode touches runs on controlled time and controlled
   randomness: the engine clock is linked to a virtual Time_source, the
   dispatcher's step choice comes from the schedule (Dispatch's picked
   mode), faults/tears/partitions are schedule events, and the network's
   drop lottery never fires (no drop rates are set). The only state that
   survives a [Crash] is the store directory and the outside world (the
   network registry and the harness's own accounting) — exactly what
   survives a real kill-and-redeploy. *)

module Store = Demaq_store.Message_store
module Wal = Demaq_store.Wal
module Net = Demaq_net.Network
module S = Demaq_engine.Server
module Gate = Demaq_engine.Gate
module Fault = Demaq_engine.Fault
module Clock = Demaq_engine.Clock
module Message = Demaq_mq.Message
module Qm = Demaq_mq.Queue_manager
module Defs = Demaq_mq.Defs
module Time_source = Demaq_obs.Time_source
module Xml_parser = Demaq_xml.Parser
module Serializer = Demaq_xml.Serializer

exception Torn_compaction

type violation = { invariant : string; detail : string }

type outcome = {
  schedule : Schedule.t;
  trace : string list;
  violations : violation list;
}

(* The fixed workload (see sim.mli): a high-priority queue [qa] producing
   into [outq], a default-priority queue [qb] sending through a reliable
   gateway [gw] to the endpoint [partner], both with error queue [errs]. *)
let workload = {|
create queue qa kind basic mode persistent priority 10
create queue qb kind basic mode persistent
create queue outq kind basic mode persistent
create queue errs kind basic mode persistent
create queue gw kind outgoingGateway mode persistent
  using WS-ReliableMessaging policy pol.xml
create rule ra for qa errorqueue errs
  if (//m) then do enqueue <out>{string(//m/id)}</out> into outq
create rule rb for qb errorqueue errs
  if (//m) then do enqueue <req>{string(//m/id)}</req> into gw
|}

(* [workers = 1] is load-bearing twice over: the cooperative (picked)
   dispatch mode only applies to inline drains, and $DEMAQ_WORKERS must
   not leak nondeterminism into the episode. *)
let sim_config =
  {
    S.default_config with
    S.batch_size = 4;
    group_commit = true;
    workers = 1;
    transmit_retries = 3;
    retry_backoff = 1;
  }

(* ---- small helpers ---- *)

let contains s sub =
  let n = String.length sub in
  let last = String.length s - n in
  let rec go i = i <= last && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Workload payloads carry exactly one number, so "the digits of the
   serialized body" recovers the id for <m><id>7</id></m>, <out>7</out>
   and <req>7</req> alike. *)
let digits s =
  String.of_seq (Seq.filter (fun c -> c >= '0' && c <= '9') (String.to_seq s))

let body_string m = Serializer.to_string (Message.body m)
let id_of_tree tree = int_of_string_opt (digits (Serializer.to_string tree))

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-sim-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let cleanup_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* ---- the episode ---- *)

let run ?(blind_tear = false) ?(footprint = false) (sched : Schedule.t) =
  let dir = fresh_dir () in
  let cfg =
    Store.durable_config
      ~sync:(Wal.Sync_batch { max_records = 1000; max_bytes = 0 })
      dir
  in
  let ts = Time_source.virtual_ () in
  let net = Net.create () in
  let fault = Fault.create ~seed:sched.Schedule.seed () in
  let store = ref (Store.open_store cfg) in
  let trace = ref [] in
  let violations = ref [] in
  let emit line = trace := line :: !trace in
  let violate invariant detail = violations := { invariant; detail } :: !violations in
  (* cumulative deliveries at [partner] (id -> count), and the ids
     delivered within the current incarnation: the reliable transport is
     exactly-once per incarnation, at-least-once across a crash (the
     outbox is refilled on redeploy, WS-RM style) *)
  let delivered = Hashtbl.create 64 in
  let delivered_inc = Hashtbl.create 16 in
  (* ids the admission gate shed during a [Burst]: they were never
     injected, so they must never surface anywhere in the store — not
     even across crash-restarts (the table outlives incarnations) *)
  let shed_ids = Hashtbl.create 16 in
  Net.register net ~name:"partner" ~handler:(fun ~sender:_ body ->
      let exposure = Store.unsynced_commits !store in
      if exposure > 0 then
        violate "barrier-before-transmission"
          (Printf.sprintf "a delivery observed %d unsynced commits" exposure);
      (match id_of_tree body with
       | None -> ()
       | Some id ->
         if Hashtbl.mem delivered_inc id then
           violate "exactly-once"
             (Printf.sprintf "id %d delivered twice in one incarnation" id);
         Hashtbl.replace delivered_inc id ();
         Hashtbl.replace delivered id
           (1 + Option.value ~default:0 (Hashtbl.find_opt delivered id)));
      []);
  let deploy () =
    let srv =
      S.deploy
        ~config:{ sim_config with S.footprint_dispatch = footprint }
        ~time_source:ts ~store:!store ~network:net workload
    in
    S.bind_gateway srv ~queue:"gw" ~endpoint:"partner" ();
    S.set_fault srv (Some fault);
    (* the admission gate, driven purely by unsynced WAL bytes so its
       decisions are deterministic (pending dispatch depth is always 0
       with one cooperative worker). [qb] (priority 0) sheds first; [qa]
       (priority 10) only in the hard band at twice the threshold. *)
    ignore
      (S.enable_gate
         ~cfg:{ Gate.default_config with Gate.max_pending = max_int; max_wal_bytes = 4096 }
         srv);
    srv
  in
  let srv = ref (deploy ()) in
  let errs_len () = List.length (S.queue_contents !srv "errs") in
  let errs_base = ref (errs_len ()) in
  let queue_ids q =
    List.filter_map
      (fun m -> int_of_string_opt (digits (body_string m)))
      (S.queue_contents !srv q)
  in
  let queue_priority name =
    match Qm.find_queue (S.queue_manager !srv) name with
    | Some q -> q.Defs.priority
    | None -> 0
  in
  (* Everything on disk and synced right now: the floor a crash-restart
     must preserve. Refreshed whenever the exposure window is empty. *)
  let snapshot () =
    List.map
      (fun (m : Store.message) ->
        (m.Store.rid, m.Store.queue, Store.payload !store m, m.Store.processed))
      (Store.all_messages !store)
  in
  let durable = ref [] in
  let next_id = ref 1 in
  (* kill-and-redeploy (shared by [Crash] and [Torn_compact]): reopen the
     store from disk, check the durability floor, then bring a fresh
     server up on the surviving state *)
  let restart ~tear_bytes =
    let st2 = Fault.crash_restart ~tear_bytes cfg !store in
    store := st2;
    List.iter
      (fun (rid, queue, payload, processed) ->
        match Store.get st2 rid with
        | None ->
          violate "durability"
            (Printf.sprintf "synced rid=%d (queue %s) lost across restart" rid
               queue)
        | Some m ->
          if m.Store.queue <> queue || Store.payload st2 m <> payload then
            violate "durability"
              (Printf.sprintf "synced rid=%d changed across restart" rid)
          else if processed && not m.Store.processed then
            violate "durability"
              (Printf.sprintf "synced rid=%d lost its processed mark" rid))
      !durable;
    Hashtbl.reset delivered_inc;
    srv := deploy ();
    errs_base := errs_len ();
    durable := snapshot ()
  in
  (* invariants checked after every event *)
  let check () =
    (* order: qa is drained FIFO, and its outputs land in [outq] in
       processing order, so the id sequence must be strictly increasing —
       at every point of the episode, including across crash-redo (a WAL
       tear only ever removes a suffix) *)
    let rec ascending = function
      | a :: b :: _ when a >= b -> false
      | _ :: rest -> ascending rest
      | [] -> true
    in
    let out = queue_ids "outq" in
    if not (ascending out) then
      violate "order"
        ("outq ids out of FIFO order: "
        ^ String.concat "," (List.map string_of_int out));
    (* abort-error: within one incarnation nothing is ever lost, so the
       error queue's growth must equal the §3.6 routings performed *)
    let st = S.stats !srv in
    let expected = !errs_base + st.S.txn_aborts + st.S.dead_letters in
    let actual = errs_len () in
    if actual <> expected then
      violate "abort-error"
        (Printf.sprintf
           "error queue has %d messages, expected %d (base %d + %d aborts + %d \
            dead letters)"
           actual expected !errs_base st.S.txn_aborts st.S.dead_letters);
    (* provenance: every message's durable causal edge is well-formed —
       a recorded parent implies a non-empty flow id, the parent rid is
       strictly smaller (edges acyclic), it still exists (the sim never
       GCs), and it carries the same flow id. Checked after every event,
       so it also holds across crash-redo with a torn WAL tail: a tear
       removes a suffix, and a child's parent always has a smaller rid. *)
    let prov_by_rid = Hashtbl.create 64 in
    let all = Store.all_messages !store in
    List.iter
      (fun (sm : Store.message) ->
        let _, _, p = Message.decode_extra sm.Store.extra in
        Hashtbl.replace prov_by_rid sm.Store.rid p)
      all;
    List.iter
      (fun (sm : Store.message) ->
        let p = Hashtbl.find prov_by_rid sm.Store.rid in
        if p.Message.p_parent >= 0 then begin
          if p.Message.p_flow = "" then
            violate "provenance"
              (Printf.sprintf "rid=%d has a parent but no flow id" sm.Store.rid);
          if p.Message.p_parent >= sm.Store.rid then
            violate "provenance"
              (Printf.sprintf "rid=%d has parent %d >= itself (cycle)"
                 sm.Store.rid p.Message.p_parent);
          match Hashtbl.find_opt prov_by_rid p.Message.p_parent with
          | None ->
            violate "provenance"
              (Printf.sprintf "rid=%d's parent %d is not in the store"
                 sm.Store.rid p.Message.p_parent)
          | Some pp ->
            if pp.Message.p_flow <> p.Message.p_flow then
              violate "provenance"
                (Printf.sprintf
                   "rid=%d (flow %s) and its parent %d (flow %s) disagree"
                   sm.Store.rid p.Message.p_flow p.Message.p_parent
                   pp.Message.p_flow)
        end)
      all;
    (* shed-isolation: a message the gate refused was never admitted, so
       no trace of its id may exist in the store — shedding must not
       half-apply. Match the exact workload element shapes (an error-queue
       body embeds other messages plus numeric metadata, so folding all
       its digits into one number would cry wolf). *)
    let leaked body id =
      contains body (Printf.sprintf "<id>%d</id>" id)
      || contains body (Printf.sprintf "<out>%d</out>" id)
      || contains body (Printf.sprintf "<req>%d</req>" id)
    in
    List.iter
      (fun (sm : Store.message) ->
        let body = Store.payload !store sm in
        Hashtbl.iter
          (fun id () ->
            if leaked body id then
              violate "shed-isolation"
                (Printf.sprintf
                   "shed id %d surfaced in the store (rid=%d queue=%s)" id
                   sm.Store.rid sm.Store.queue))
          shed_ids)
      all;
    if Store.unsynced_commits !store = 0 then durable := snapshot ()
  in
  let apply_event (ev : Schedule.event) =
    match ev with
    | Schedule.Inject q -> (
      let id = !next_id in
      incr next_id;
      let payload = Xml_parser.parse (Printf.sprintf "<m><id>%d</id></m>" id) in
      match S.inject !srv ~queue:q payload with
      | Ok m -> emit (Printf.sprintf "inject %s id=%d rid=%d" q id m.Message.rid)
      | Error e ->
        emit
          (Printf.sprintf "inject %s id=%d rejected: %s" q id
             (Qm.error_to_string e)))
    | Schedule.Step k -> (
      (* the highest priority among unprocessed messages is the floor the
         picked dispatcher must respect: with one cooperative worker,
         nothing is in flight between events, so every unprocessed message
         is a runnable candidate *)
      let best =
        List.fold_left
          (fun acc (m : Message.t) -> max acc (queue_priority m.Message.queue))
          min_int
          (Qm.unprocessed (S.queue_manager !srv))
      in
      S.set_picker !srv (Some (fun n -> k mod n));
      match S.step !srv with
      | S.Processed m ->
        let p = queue_priority m.Message.queue in
        if p < best then
          violate "priority"
            (Printf.sprintf
               "step processed %s (priority %d) while priority %d work was \
                runnable"
               m.Message.queue p best);
        emit (Printf.sprintf "step %d -> rid=%d %s" k m.Message.rid m.Message.queue)
      | S.Idle -> emit (Printf.sprintf "step %d -> idle" k))
    | Schedule.Advance n ->
      S.advance_time !srv n;
      emit (Printf.sprintf "advance %d -> t=%d" n (Clock.now (S.clock !srv)))
    | Schedule.Barrier ->
      let synced = Store.barrier !store in
      let sent = S.pump_gateways !srv in
      emit (Printf.sprintf "barrier synced=%b sent=%d" synced sent)
    | Schedule.Partition e ->
      if List.mem e (Net.endpoint_names net) then begin
        Fault.partition net e;
        emit ("partition " ^ e)
      end
      else emit (Printf.sprintf "partition %s (unknown endpoint)" e)
    | Schedule.Reconnect e ->
      if List.mem e (Net.endpoint_names net) then begin
        Fault.reconnect net e;
        emit ("reconnect " ^ e)
      end
      else emit (Printf.sprintf "reconnect %s (unknown endpoint)" e)
    | Schedule.Fail_eval ->
      Fault.fail_next_eval fault;
      emit "fail-eval armed"
    | Schedule.Fail_apply ->
      Fault.fail_next_apply fault;
      emit "fail-apply armed"
    | Schedule.Crash n ->
      (* An honest crash can only lose WAL bytes past the last fsync; the
         requested tear is capped there. [blind_tear] skips the cap (up to
         the whole log) to manufacture detectable durability violations —
         the self-test of this checker and the shrinker. *)
      let tear =
        if blind_tear then min n (Store.stats !store).Store.wal_bytes
        else min n (Store.unsynced_bytes !store)
      in
      restart ~tear_bytes:tear;
      emit
        (Printf.sprintf "crash tear=%d -> live=%d unprocessed=%d" tear
           (List.length (Store.all_messages !store))
           (List.length (Store.unprocessed !store)))
    | Schedule.Burst n ->
      (* a load spike through the admission gate: alternate the default-
         priority and high-priority queues so the priority floor is
         exercised — in the soft band only [qb] arrivals are refused *)
      let accepted = ref 0 in
      let shed = ref 0 in
      for i = 1 to n do
        let q = if i mod 2 = 0 then "qa" else "qb" in
        let id = !next_id in
        incr next_id;
        match S.admission !srv ~queue:q with
        | Gate.Shed _ ->
          incr shed;
          Hashtbl.replace shed_ids id ()
        | Gate.Admit -> (
          let payload =
            Xml_parser.parse (Printf.sprintf "<m><id>%d</id></m>" id)
          in
          match S.inject !srv ~queue:q payload with
          | Ok _ -> incr accepted
          | Error _ -> ())
      done;
      emit (Printf.sprintf "burst %d accepted=%d shed=%d" n !accepted !shed)
    | Schedule.Compact ->
      (* [compact] hardens the pending batch first, so pumping the
         gateways right after is barrier-safe — same shape as [Barrier] *)
      let reclaimed = Store.compact !store in
      let sent = S.pump_gateways !srv in
      emit (Printf.sprintf "compact reclaimed=%d sent=%d" reclaimed sent)
    | Schedule.Torn_compact n ->
      (* die at the compaction commit point, then restart from whatever
         the disk holds. The barrier below runs before the fault can
         fire, so the entire pre-compaction state is the durability
         floor the restart must preserve — on either side of the
         rename. *)
      ignore (Store.barrier !store);
      durable := snapshot ();
      let stage =
        if n mod 2 = 0 then Store.Before_rename else Store.After_rename
      in
      Store.set_compaction_fault !store
        (Some (fun s -> if s = stage then raise Torn_compaction));
      (try ignore (Store.compact !store) with Torn_compaction -> ());
      restart ~tear_bytes:0;
      emit
        (Printf.sprintf "torn-compact %s -> live=%d"
           (match stage with
           | Store.Before_rename -> "before-rename"
           | Store.After_rename -> "after-rename")
           (List.length (Store.all_messages !store)))
  in
  let finish () =
    (* final drain: heal the world, then run every retry and timer to
       quiescence so completeness can be judged *)
    S.set_picker !srv None;
    List.iter
      (fun e -> if not (Net.connected net e) then Fault.reconnect net e)
      (Net.endpoint_names net);
    let guard = ref 0 in
    let continue_ = ref true in
    while !continue_ && !guard < 1000 do
      incr guard;
      let n = S.run !srv in
      match S.next_timer_due !srv with
      | Some due ->
        let now = Clock.now (S.clock !srv) in
        S.advance_time !srv (max 1 (due - now))
      | None -> if n = 0 then continue_ := false
    done;
    ignore (Store.barrier !store);
    ignore (S.pump_gateways !srv);
    check ();
    (* completeness: every surviving workload id is fully accounted for *)
    (match Store.unprocessed !store with
     | [] -> ()
     | left ->
       violate "exactly-once"
         (Printf.sprintf "%d messages left unprocessed after the final drain"
            (List.length left)));
    let errs_bodies = List.map body_string (S.queue_contents !srv "errs") in
    let errored id =
      List.exists
        (fun b ->
          contains b (Printf.sprintf "<id>%d</id>" id)
          || contains b (Printf.sprintf "<req>%d</req>" id))
        errs_bodies
    in
    let out_ids = queue_ids "outq" in
    let qa_ids = queue_ids "qa" in
    let qb_ids = queue_ids "qb" in
    List.iter
      (fun id ->
        let outs = List.length (List.filter (( = ) id) out_ids) in
        let err = if errored id then 1 else 0 in
        if outs + err <> 1 then
          violate "exactly-once"
            (Printf.sprintf "qa id %d: %d outputs, %d error messages" id outs err))
      qa_ids;
    List.iter
      (fun id ->
        if not (List.mem id qa_ids) then
          violate "exactly-once" (Printf.sprintf "output for unknown id %d" id))
      out_ids;
    List.iter
      (fun id ->
        let n = Option.value ~default:0 (Hashtbl.find_opt delivered id) in
        if n = 0 && not (errored id) then
          violate "exactly-once"
            (Printf.sprintf "qb id %d neither delivered nor errored" id))
      qb_ids;
    let total_delivered = Hashtbl.fold (fun _ n acc -> acc + n) delivered 0 in
    let st = S.stats !srv in
    emit
      (Printf.sprintf
         "final processed=%d aborts=%d dead-letters=%d outq=%d errs=%d \
          delivered=%d"
         st.S.processed st.S.txn_aborts st.S.dead_letters
         (List.length out_ids) (List.length errs_bodies) total_delivered)
  in
  (try
     List.iter
       (fun ev ->
         apply_event ev;
         check ())
       sched.Schedule.events;
     finish ()
   with e ->
     (* the engine must survive everything a schedule throws at it: an
        escaped exception is itself a finding *)
     violate "engine-exception" (Printexc.to_string e));
  (try Store.close !store with _ -> ());
  cleanup_dir dir;
  { schedule = sched; trace = List.rev !trace; violations = List.rev !violations }

(* ---- shrinking ---- *)

let fails ?blind_tear ?footprint events (s : Schedule.t) =
  (run ?blind_tear ?footprint { s with Schedule.events }).violations <> []

(* One left-to-right pass removing aligned [chunk]-sized windows wherever
   the schedule still fails without them. *)
let shrink_pass ?blind_tear ?footprint (s : Schedule.t) chunk events =
  let rec go i events =
    if i >= List.length events then events
    else
      let candidate =
        List.filteri (fun j _ -> j < i || j >= i + chunk) events
      in
      if List.length candidate < List.length events
         && fails ?blind_tear ?footprint candidate s
      then go i candidate
      else go (i + chunk) events
  in
  go 0 events

let shrink ?blind_tear ?footprint (s : Schedule.t) =
  if not (fails ?blind_tear ?footprint s.Schedule.events s) then s
  else begin
    let events = ref s.Schedule.events in
    let chunk = ref (max 1 ((List.length !events + 1) / 2)) in
    while !chunk >= 1 do
      let shrunk = shrink_pass ?blind_tear ?footprint s !chunk !events in
      let progress = List.length shrunk < List.length !events in
      events := shrunk;
      (* on progress, retry the same granularity: a removal can unlock
         neighbours; otherwise halve down to single events *)
      if not progress then chunk := (if !chunk = 1 then 0 else !chunk / 2)
    done;
    { s with Schedule.events = !events }
  end

(* ---- reporting ---- *)

let report (o : outcome) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "# schedule: seed %d, %d events\n" o.schedule.Schedule.seed
       (List.length o.schedule.Schedule.events));
  Buffer.add_string b (Schedule.to_string o.schedule);
  Buffer.add_string b "# trace\n";
  List.iter (fun l -> Buffer.add_string b ("  " ^ l ^ "\n")) o.trace;
  (match o.violations with
   | [] -> Buffer.add_string b "# verdict: all invariants held\n"
   | vs ->
     Buffer.add_string b
       (Printf.sprintf "# verdict: %d violation(s)\n" (List.length vs));
     List.iter
       (fun v ->
         Buffer.add_string b
           (Printf.sprintf "  VIOLATION %s: %s\n" v.invariant v.detail))
       vs);
  Buffer.contents b

(* ---- sweeping ---- *)

type sweep_result =
  | Clean of int
  | Failed of {
      seed : int;
      outcome : outcome;
      shrunk : Schedule.t;
      shrunk_outcome : outcome;
    }

let sweep ?blind_tear ?footprint ?(events = 40) ?(progress = fun _ -> ()) ~seed
    ~iters () =
  let rec go i =
    if i >= iters then Clean iters
    else begin
      progress i;
      let s = Schedule.generate ~seed:(seed + i) ~events () in
      let o = run ?blind_tear ?footprint s in
      if o.violations = [] then go (i + 1)
      else begin
        let shrunk = shrink ?blind_tear ?footprint s in
        Failed
          {
            seed = seed + i;
            outcome = o;
            shrunk;
            shrunk_outcome = run ?blind_tear ?footprint shrunk;
          }
      end
    end
  in
  go 0

(* The metrics registry: counters, gauges, and log-scale histograms,
   sharded per worker domain.

   The hot path is a counter increment or a histogram observation from a
   worker domain in the middle of a message transaction, so the design
   goal is that recording NEVER contends with other domains and costs a
   handful of plain loads/stores:

   - Each registry owns [shards] independent slabs of plain [int array]s.
     A domain binds itself to one shard ([bind_shard], done by the worker
     pool at worker start; the domain that created the registry owns
     shard 0) and all its mutations hit only that slab — no atomics, no
     cache-line ping-pong between workers.
   - Reads ([value], [snapshot]) aggregate across shards at read time.
     They race benignly with writers: an in-flight increment may or may
     not be visible, which is the usual monitoring contract. Exact totals
     are guaranteed at quiescence (e.g. after [Domain.join] of all
     workers, which is when [Server.stats] reads).
   - Wall-clock timing ([now_ns], histogram observation) is the only
     per-event cost that is not a couple of stores; [set_timing]/
     [timing_on] lets the engine skip the clock calls entirely when
     metrics are disabled, leaving counters (which tests and [stats]
     depend on) always live.

   The current-domain -> shard binding lives in one global domain-local
   slot keyed by registry id: a worker drains exactly one server at a
   time, so remembering only the latest binding is enough, and a domain
   that never bound (or bound another registry) falls back to shard 0. *)

type def = { d_name : string; d_help : string }

type shard = {
  mutable tick : int;  (* drives [sampled]; only its owner domain writes *)
  counters : int array;
  (* histogram storage, flattened: histogram [h] owns the slots
     [h * buckets_per_histogram .. (h+1) * buckets_per_histogram - 1];
     per-histogram running count and sum (in raw units) ride alongside. *)
  hbuckets : int array;
  hcount : int array;
  hsum : int array;
}

let max_counters = 128
let max_histograms = 32

(* 28 power-of-two buckets; bucket [i] counts observations whose raw value
   is < 2^(shift + i + 1). With shift 7 and nanosecond observations that
   spans 256 ns .. ~34 s, which covers everything from a cache-hot lock
   acquisition to a stuck fsync. *)
let n_buckets = 28

type histogram_def = {
  h_def : def;
  h_shift : int;  (* first bucket boundary is 2^(shift+1) raw units *)
  h_scale : float;  (* raw unit -> exposed unit (1e-9 for ns -> s) *)
}

type registry = {
  id : int;
  ts : Time_source.t;
  mutable timing : bool;
  shards : shard array;
  mu : Mutex.t;  (* guards the definition tables, not the shards *)
  mutable cdefs : def array;  (* counter id -> definition *)
  mutable n_counters : int;
  mutable hdefs : histogram_def array;
  mutable n_histograms : int;
  mutable gauges : (def * (unit -> float)) list;  (* newest first *)
  mutable counter_fns : (def * (unit -> float)) list;
}

type counter = { c_reg : registry; c_id : int }
type histogram = { h_reg : registry; h_id : int; h_hshift : int }

let next_id = Atomic.make 1

let dummy_def = { d_name = ""; d_help = "" }
let dummy_hdef = { h_def = dummy_def; h_shift = 0; h_scale = 1. }

let create ?(timing = true) ?(time_source = Time_source.real) ?(shards = 2) ()
    =
  let shards = max 1 shards in
  {
    id = Atomic.fetch_and_add next_id 1;
    ts = time_source;
    timing;
    shards =
      Array.init shards (fun _ ->
          {
            tick = 0;
            counters = Array.make max_counters 0;
            hbuckets = Array.make (max_histograms * n_buckets) 0;
            hcount = Array.make max_histograms 0;
            hsum = Array.make max_histograms 0;
          });
    mu = Mutex.create ();
    cdefs = Array.make max_counters dummy_def;
    n_counters = 0;
    hdefs = Array.make max_histograms dummy_hdef;
    n_histograms = 0;
    gauges = [];
    counter_fns = [];
  }

let set_timing reg on = reg.timing <- on
let timing_on reg = reg.timing
let time_source reg = reg.ts
let shard_count reg = Array.length reg.shards

(* ---- the domain -> shard binding ---- *)

let binding : (int * int) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (0, 0))

let bind_shard reg idx =
  let idx = if idx < 0 || idx >= Array.length reg.shards then 0 else idx in
  Domain.DLS.get binding := (reg.id, idx)

let shard_index reg =
  let id, idx = !(Domain.DLS.get binding) in
  if id = reg.id then idx else 0

let my_shard reg = reg.shards.(shard_index reg)

(* ---- registration ---- *)

let counter reg ?(help = "") name =
  Mutex.protect reg.mu @@ fun () ->
  if reg.n_counters >= max_counters then
    invalid_arg "Metrics.counter: registry counter capacity exhausted";
  let id = reg.n_counters in
  reg.cdefs.(id) <- { d_name = name; d_help = help };
  reg.n_counters <- id + 1;
  { c_reg = reg; c_id = id }

let histogram reg ?(help = "") ?(shift = 7) ?(scale = 1e-9) name =
  Mutex.protect reg.mu @@ fun () ->
  if reg.n_histograms >= max_histograms then
    invalid_arg "Metrics.histogram: registry histogram capacity exhausted";
  let id = reg.n_histograms in
  reg.hdefs.(id) <- { h_def = { d_name = name; d_help = help }; h_shift = shift; h_scale = scale };
  reg.n_histograms <- id + 1;
  { h_reg = reg; h_id = id; h_hshift = shift }

let gauge_fn reg ?(help = "") name read =
  Mutex.protect reg.mu @@ fun () ->
  reg.gauges <- ({ d_name = name; d_help = help }, read) :: reg.gauges

let counter_fn reg ?(help = "") name read =
  Mutex.protect reg.mu @@ fun () ->
  reg.counter_fns <- ({ d_name = name; d_help = help }, read) :: reg.counter_fns

(* ---- recording ---- *)

let add c n =
  let s = my_shard c.c_reg in
  Array.unsafe_set s.counters c.c_id (Array.unsafe_get s.counters c.c_id + n)

let incr c = add c 1

let sample_mask = 7 (* 1 in 8 *)

let sampled reg =
  let s = my_shard reg in
  let t = s.tick in
  s.tick <- t + 1;
  t land sample_mask = 0

let value c =
  Array.fold_left (fun acc s -> acc + s.counters.(c.c_id)) 0 c.c_reg.shards

(* log2 bucket: observations land in the first bucket whose upper bound
   2^(shift+i+1) exceeds them; everything past the last bucket only counts
   toward count/sum (the +Inf bucket of the exposition). *)
let bucket_for ~shift v =
  let rec go i bound =
    if i >= n_buckets then n_buckets
    else if v < bound then i
    else go (i + 1) (bound * 2)
  in
  go 0 (1 lsl (shift + 1))

let observe h raw =
  let raw = max 0 raw in
  let s = my_shard h.h_reg in
  let b = bucket_for ~shift:h.h_hshift raw in
  if b < n_buckets then begin
    let slot = (h.h_id * n_buckets) + b in
    Array.unsafe_set s.hbuckets slot (Array.unsafe_get s.hbuckets slot + 1)
  end;
  s.hcount.(h.h_id) <- s.hcount.(h.h_id) + 1;
  s.hsum.(h.h_id) <- s.hsum.(h.h_id) + raw

(* Percentile estimation from the log-scale buckets: find the bucket the
   rank lands in, then interpolate linearly inside it (the bucket bounds
   are powers of two, so the estimate is exact at bucket boundaries and
   at worst off by half a bucket width inside). Observations past the
   last bucket only exist in count/sum, so ranks landing there report the
   last bucket's upper bound — a lower bound on the true quantile. *)
let percentile h q =
  let reg = h.h_reg in
  let hd = reg.hdefs.(h.h_id) in
  let count =
    Array.fold_left (fun acc s -> acc + s.hcount.(h.h_id)) 0 reg.shards
  in
  if count = 0 then Float.nan
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = q *. float_of_int count in
    let bucket_count b =
      Array.fold_left
        (fun acc s -> acc + s.hbuckets.((h.h_id * n_buckets) + b))
        0 reg.shards
    in
    let rec go b cumulative =
      if b >= n_buckets then
        float_of_int (1 lsl (hd.h_shift + n_buckets)) *. hd.h_scale
      else begin
        let in_bucket = bucket_count b in
        let cumulative' = cumulative + in_bucket in
        if float_of_int cumulative' >= rank && in_bucket > 0 then begin
          let upper = float_of_int (1 lsl (hd.h_shift + b + 1)) in
          let lower = if b = 0 then 0. else upper /. 2. in
          let frac = (rank -. float_of_int cumulative) /. float_of_int in_bucket in
          (lower +. (frac *. (upper -. lower))) *. hd.h_scale
        end
        else go (b + 1) cumulative'
      end
    in
    go 0 0
  end

let percentiles h qs = List.map (percentile h) qs

let histogram_totals h =
  let count =
    Array.fold_left (fun acc s -> acc + s.hcount.(h.h_id)) 0 h.h_reg.shards
  in
  let sum =
    Array.fold_left (fun acc s -> acc + s.hsum.(h.h_id)) 0 h.h_reg.shards
  in
  (count, sum)

(* ---- windowed reads ----

   A controller reacting to *current* conditions must not average over the
   whole process lifetime: one overloaded minute buried under an hour of
   calm would vanish from the cumulative percentile. A window remembers
   the per-bucket counts at its last flush; [window_delta] estimates the
   quantile of only the observations recorded since, then advances the
   baseline. Reads race benignly with writers, like every other read. *)

type window = {
  w_hist : histogram;
  mutable w_buckets : int array;  (* per-bucket counts at the last flush *)
  mutable w_count : int;
}

let bucket_totals h =
  let reg = h.h_reg in
  Array.init n_buckets (fun b ->
      Array.fold_left
        (fun acc s -> acc + s.hbuckets.((h.h_id * n_buckets) + b))
        0 reg.shards)

let window h =
  {
    w_hist = h;
    w_buckets = bucket_totals h;
    w_count = fst (histogram_totals h);
  }

let window_delta w q =
  let h = w.w_hist in
  let hd = h.h_reg.hdefs.(h.h_id) in
  let buckets = bucket_totals h in
  let count = fst (histogram_totals h) in
  let n = count - w.w_count in
  let result =
    if n <= 0 then (0, Float.nan)
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let rank = q *. float_of_int n in
      let rec go b cumulative =
        if b >= n_buckets then
          (n, float_of_int (1 lsl (hd.h_shift + n_buckets)) *. hd.h_scale)
        else begin
          let in_bucket = buckets.(b) - w.w_buckets.(b) in
          let cumulative' = cumulative + in_bucket in
          if float_of_int cumulative' >= rank && in_bucket > 0 then begin
            let upper = float_of_int (1 lsl (hd.h_shift + b + 1)) in
            let lower = if b = 0 then 0. else upper /. 2. in
            let frac =
              (rank -. float_of_int cumulative) /. float_of_int in_bucket
            in
            (n, (lower +. (frac *. (upper -. lower))) *. hd.h_scale)
          end
          else go (b + 1) cumulative'
        end
      in
      go 0 0
    end
  in
  w.w_buckets <- buckets;
  w.w_count <- count;
  result

let now_ns () = Time_source.now_ns Time_source.real
let now reg = Time_source.now_ns reg.ts

let time h f =
  if h.h_reg.timing then begin
    let ts = h.h_reg.ts in
    let t0 = Time_source.now_ns ts in
    let finally () = observe h (Time_source.now_ns ts - t0) in
    Fun.protect ~finally f
  end
  else f ()

(* ---- read side ---- *)

type sample =
  | Counter of { name : string; help : string; value : float }
  | Gauge of { name : string; help : string; value : float }
  | Histogram of {
      name : string;
      help : string;
      buckets : (float * int) array;  (* (upper bound, cumulative count) *)
      sum : float;
      count : int;
    }

let sample_name = function
  | Counter { name; _ } | Gauge { name; _ } | Histogram { name; _ } -> name

let snapshot reg =
  let n_counters, n_histograms, gauges, counter_fns =
    Mutex.protect reg.mu (fun () ->
        (reg.n_counters, reg.n_histograms, reg.gauges, reg.counter_fns))
  in
  let counters =
    List.init n_counters (fun id ->
        let d = reg.cdefs.(id) in
        let v =
          Array.fold_left (fun acc s -> acc + s.counters.(id)) 0 reg.shards
        in
        Counter { name = d.d_name; help = d.d_help; value = float_of_int v })
  in
  let histograms =
    List.init n_histograms (fun id ->
        let hd = reg.hdefs.(id) in
        let count =
          Array.fold_left (fun acc s -> acc + s.hcount.(id)) 0 reg.shards
        in
        let sum =
          Array.fold_left (fun acc s -> acc + s.hsum.(id)) 0 reg.shards
        in
        let cumulative = ref 0 in
        let buckets =
          Array.init n_buckets (fun b ->
              let per_bucket =
                Array.fold_left
                  (fun acc s -> acc + s.hbuckets.((id * n_buckets) + b))
                  0 reg.shards
              in
              cumulative := !cumulative + per_bucket;
              let bound =
                float_of_int (1 lsl (hd.h_shift + b + 1)) *. hd.h_scale
              in
              (bound, !cumulative))
        in
        Histogram
          {
            name = hd.h_def.d_name;
            help = hd.h_def.d_help;
            buckets;
            sum = float_of_int sum *. hd.h_scale;
            count;
          })
  in
  let fns =
    List.rev_map
      (fun (d, read) ->
        Counter { name = d.d_name; help = d.d_help; value = read () })
      counter_fns
    @ List.rev_map
        (fun (d, read) ->
          Gauge { name = d.d_name; help = d.d_help; value = read () })
        gauges
  in
  counters @ histograms @ fns

(* ---- Prometheus text exposition (version 0.0.4) ---- *)

(* A registered name may carry labels ("x_total{worker=\"0\"}"); HELP/TYPE
   lines apply to the bare family name and are emitted once per family. *)
let family name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let labeled name label_kv =
  match String.index_opt name '{' with
  | Some i ->
    (* splice into the existing label set *)
    String.sub name 0 i ^ "{" ^ label_kv ^ ","
    ^ String.sub name (i + 1) (String.length name - i - 1)
  | None -> name ^ "{" ^ label_kv ^ "}"

let render_sample buf seen sample =
  let header name kind help =
    let fam = family name in
    if not (Hashtbl.mem seen fam) then begin
      Hashtbl.replace seen fam ();
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" fam help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam kind)
    end
  in
  match sample with
  | Counter { name; help; value } ->
    header name "counter" help;
    Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt_float value))
  | Gauge { name; help; value } ->
    header name "gauge" help;
    Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt_float value))
  | Histogram { name; help; buckets; sum; count } ->
    header name "histogram" help;
    Array.iter
      (fun (le, cumulative) ->
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n"
             (labeled (name ^ "_bucket") (Printf.sprintf "le=\"%s\"" (fmt_float le)))
             cumulative))
      buckets;
    Buffer.add_string buf
      (Printf.sprintf "%s %d\n" (labeled (name ^ "_bucket") "le=\"+Inf\"") count);
    Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" name (fmt_float sum));
    Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name count)

let render reg =
  let buf = Buffer.create 4096 in
  let seen = Hashtbl.create 64 in
  List.iter (render_sample buf seen) (snapshot reg);
  Buffer.contents buf

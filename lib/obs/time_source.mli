(** The time seam: every wall-clock read in the system goes through one of
    these, so a simulation can substitute a virtual source and make a whole
    engine run — phase timings, lifecycle spans, fsync latencies —
    deterministic under a seed.

    Two implementations:

    - {!real}: a monotonic clock. OCaml's [Unix] offers only
      [gettimeofday], which can jump backwards under NTP adjustment; the
      real source clamps it through a process-wide CAS-max so consecutive
      reads never decrease (the Mtime-style contract span and histogram
      arithmetic assumes).
    - {!virtual_}: a plain nanosecond counter advanced explicitly (by the
      engine {!Demaq_engine.Clock} as virtual ticks pass, or directly by a
      simulation harness). Reads never touch the OS. *)

type t

val real : t
(** The process clock, monotonic by construction (never decreases even if
    the wall clock is stepped backwards). *)

val virtual_ : ?start_ns:int -> unit -> t
(** A fresh virtual source, starting at [start_ns] (default 0). *)

val is_virtual : t -> bool

val now_ns : t -> int
(** Current time in nanoseconds. Monotonic for both implementations. *)

val advance_ns : t -> int -> unit
(** Advance a virtual source by the given number of nanoseconds; a no-op
    on {!real} (real time advances itself). Thread-safe. *)

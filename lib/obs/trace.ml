(* Per-message lifecycle tracing (§2.3.3): every transaction the executor
   runs emits one span — which message, which queue, how long each §3.1
   phase took (lock/setup, snapshot evaluation, atomic apply, durability
   barrier), which rules fired or were pre-filtered away, how many actions
   applied, and the outcome — into a bounded ring. The ring is a plain
   circular buffer under its own mutex: recording is O(1), the capacity
   bounds retention exactly (unlike the old 2x-slack trace list), and a
   capacity of 0 disables tracing entirely. *)

type activation = {
  a_rule : string;
  a_updates : int;  (* pending updates the evaluation produced *)
  a_skipped : bool;  (* suppressed by the condition pre-filter *)
}

type outcome = Committed | Aborted of string

type span = {
  sp_rid : int;
  sp_queue : string;
  sp_flow : string;  (* causal flow id; "" when the message is untraced *)
  sp_parent : int;  (* rid of the causing message; -1 = cascade root *)
  sp_cause : string;  (* rule (or origin kind) that enqueued the message *)
  sp_tick : int;  (* logical clock at commit/abort *)
  sp_worker : int;  (* metrics shard of the processing domain; 0 = main *)
  sp_start_ns : int;  (* wall clock at setup start; 0 when timing is off *)
  sp_wait_ns : int;  (* enqueue/schedule -> dispatch queueing delay *)
  sp_lock_ns : int;  (* setup: fetch + lock acquisition + plan lookup *)
  sp_decode_ns : int;  (* lazy payload decode within setup (a sub-interval
                          of [sp_lock_ns]; 0 when admission resolved from
                          the payload synopsis without materializing) *)
  sp_eval_ns : int;  (* unlocked snapshot rule evaluation *)
  sp_apply_ns : int;  (* locked apply + commit *)
  sp_barrier_ns : int;  (* abort-path hardening; batch barriers are per
                           batch and recorded in the barrier histogram *)
  sp_activations : activation list;  (* in evaluation order *)
  sp_actions : int;  (* updates applied (enqueues + resets) *)
  sp_batch : int;  (* group-commit batch target in force at dispatch; the
                      adaptive controller moves it, so spans record which
                      regime the message ran under *)
  sp_outcome : outcome;
}

type t = {
  capacity : int;
  mu : Mutex.t;
  ring : span option array;  (* slot [pos] is the next write target *)
  mutable pos : int;
  mutable total : int;  (* spans ever recorded, for drop accounting *)
}

let create ~capacity =
  let capacity = max 0 capacity in
  {
    capacity;
    mu = Mutex.create ();
    ring = Array.make (max 1 capacity) None;
    pos = 0;
    total = 0;
  }

let enabled t = t.capacity > 0
let capacity t = t.capacity
let total t = Mutex.protect t.mu (fun () -> t.total)

let record t span =
  if t.capacity > 0 then
    Mutex.protect t.mu @@ fun () ->
    t.ring.(t.pos) <- Some span;
    t.pos <- (t.pos + 1) mod t.capacity;
    t.total <- t.total + 1

(* Newest first, like the trace log it replaces. *)
let spans t =
  if t.capacity = 0 then []
  else
    Mutex.protect t.mu @@ fun () ->
    let acc = ref [] in
    for i = 0 to t.capacity - 1 do
      (* walk oldest -> newest starting at [pos], consing reverses *)
      match t.ring.((t.pos + i) mod t.capacity) with
      | Some s -> acc := s :: !acc
      | None -> ()
    done;
    !acc

(* ---- JSONL ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let activation_json a =
  Printf.sprintf "{\"rule\":\"%s\",\"updates\":%d,\"skipped\":%b}"
    (json_escape a.a_rule) a.a_updates a.a_skipped

let span_json s =
  let outcome =
    match s.sp_outcome with
    | Committed -> "\"committed\""
    | Aborted reason -> Printf.sprintf "\"aborted:%s\"" (json_escape reason)
  in
  Printf.sprintf
    "{\"rid\":%d,\"queue\":\"%s\",\"flow\":\"%s\",\"parent\":%d,\
     \"cause\":\"%s\",\"tick\":%d,\"worker\":%d,\"start_ns\":%d,\
     \"wait_ns\":%d,\"lock_ns\":%d,\"decode_ns\":%d,\"eval_ns\":%d,\
     \"apply_ns\":%d,\"barrier_ns\":%d,\"rules\":[%s],\"actions\":%d,\
     \"batch\":%d,\"outcome\":%s}"
    s.sp_rid (json_escape s.sp_queue) (json_escape s.sp_flow) s.sp_parent
    (json_escape s.sp_cause) s.sp_tick s.sp_worker s.sp_start_ns s.sp_wait_ns
    s.sp_lock_ns s.sp_decode_ns s.sp_eval_ns s.sp_apply_ns s.sp_barrier_ns
    (String.concat "," (List.map activation_json s.sp_activations))
    s.sp_actions s.sp_batch outcome

(* Oldest first — a JSONL dump reads naturally top to bottom. *)
let dump_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf (span_json s);
      Buffer.add_char buf '\n')
    (List.rev (spans t));
  Buffer.contents buf

let pp_span fmt s =
  let fired =
    List.filter (fun a -> not a.a_skipped) s.sp_activations |> List.length
  in
  let skipped =
    List.filter (fun a -> a.a_skipped) s.sp_activations |> List.length
  in
  Format.fprintf fmt "t=%d #%d %s w%d rules=%d%s actions=%d %s" s.sp_tick
    s.sp_rid s.sp_queue s.sp_worker fired
    (if skipped > 0 then Printf.sprintf " (+%d prefiltered)" skipped else "")
    s.sp_actions
    (match s.sp_outcome with
     | Committed -> "committed"
     | Aborted reason -> "ABORTED: " ^ reason)

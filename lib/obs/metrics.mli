(** Sharded metrics registry: counters, gauges, and log-scale histograms.

    Each registry carries one shard per worker domain plus shard 0 for the
    coordinator. Recording is a plain (unsynchronized) mutation of the
    calling domain's own shard — no atomics, no contention; reads aggregate
    across shards and are exact at quiescence (all workers joined).
    Counters are always live; [set_timing false] disables only the
    wall-clock/histogram path so the hot path costs nothing measurable when
    metrics are off. *)

type registry
type counter
type histogram

val create :
  ?timing:bool -> ?time_source:Time_source.t -> ?shards:int -> unit -> registry
(** [create ~shards:n ()] makes a registry with [n] shards (min 1).
    Shard 0 belongs to the creating/coordinator domain; bind worker [i]
    to shard [i+1] with {!bind_shard}. [time_source] (default
    {!Time_source.real}) is the clock behind {!time}, {!now} and every
    span/phase timing taken against this registry — pass a virtual source
    to make them deterministic under simulation. *)

val set_timing : registry -> bool -> unit
(** Enable/disable the timing path (histogram observations, clock reads).
    Counters are unaffected and always record. *)

val timing_on : registry -> bool
val shard_count : registry -> int

val time_source : registry -> Time_source.t
(** The clock this registry reads. *)

val bind_shard : registry -> int -> unit
(** [bind_shard reg i] routes this domain's subsequent recordings to shard
    [i] (clamped to shard 0 if out of range). Called by worker domains at
    startup; unbound domains record into shard 0. *)

val shard_index : registry -> int
(** Shard the calling domain currently records into (0 if unbound). *)

(** {1 Registration} — call once at setup, keep the handle. *)

val counter : registry -> ?help:string -> string -> counter

val histogram :
  registry -> ?help:string -> ?shift:int -> ?scale:float -> string -> histogram
(** Log-scale histogram with power-of-two buckets: bucket [i] has upper
    bound [2^(shift+i+1)] raw units, 28 buckets. [scale] converts raw units
    to the exposed unit (default [1e-9]: observe nanoseconds, expose
    seconds). For count-valued histograms (e.g. batch fill) use
    [~shift:(-1) ~scale:1.]. *)

val gauge_fn : registry -> ?help:string -> string -> (unit -> float) -> unit
(** Register a gauge sampled at snapshot time (queue depth, parked count). *)

val counter_fn : registry -> ?help:string -> string -> (unit -> float) -> unit
(** Like {!gauge_fn} but exposed as a counter — for monotone totals that
    already live elsewhere (WAL byte counters, per-worker stats). The name
    may embed labels, e.g. ["demaq_worker_drains_total{worker=\"0\"}"]. *)

(** {1 Recording} — safe from any domain, hits only the caller's shard. *)

val incr : counter -> unit
val add : counter -> int -> unit

val sampled : registry -> bool
(** [sampled reg] ticks the caller's shard and reports true once every
    8 calls. Hot paths use this to pay for wall-clock timing on a
    sample of events rather than every one: latency histograms stay
    representative while the per-event cost stays at a couple of plain
    stores. *)

val observe : histogram -> int -> unit
(** [observe h raw] records one observation in raw units (negative clamps
    to 0). Call sites should gate clock reads on {!timing_on}. *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] observes [f]'s duration in ns (against the registry's time
    source) if timing is on, otherwise just runs [f]. *)

val now : registry -> int
(** Current time in integer nanoseconds on the registry's time source —
    virtual under simulation, monotonic real time otherwise. *)

val now_ns : unit -> int
(** Process real time in integer nanoseconds, monotonic (CAS-max clamped;
    never decreases even if the wall clock steps backwards). Prefer {!now}
    anywhere a registry is in reach so simulation stays deterministic. *)

(** {1 Reading} *)

val value : counter -> int
(** Sum of the counter across all shards. *)

val histogram_totals : histogram -> int * int
(** [(count, sum)] across all shards, in raw (unscaled) units. *)

val percentile : histogram -> float -> float
(** [percentile h q] estimates the [q]-quantile ([0. <= q <= 1.]) of the
    recorded observations, in exposed units (raw × scale), by walking the
    cumulative log-scale buckets and interpolating linearly inside the
    bucket the rank lands in. The estimate is a true value's bucket, so
    the relative error is bounded by the bucket width (a factor of 2 at
    worst, typically much less after interpolation). [nan] when no
    observation was recorded; ranks past the last bucket report its upper
    bound. *)

val percentiles : histogram -> float list -> float list
(** [percentiles h [0.5; 0.99; 0.999]] — {!percentile}, mapped. *)

type window
(** A movable baseline over one histogram, for windowed quantiles: the
    adaptive controller reacts to the barrier latency of the last control
    interval, not the whole process lifetime. *)

val window : histogram -> window
(** Open a window whose baseline is the histogram's current contents. *)

val window_delta : window -> float -> int * float
(** [window_delta w q] estimates the [q]-quantile (exposed units, same
    bucket-interpolation contract as {!percentile}) of only the
    observations recorded since the window's baseline, returns it with
    their count ([(0, nan)] when none), and advances the baseline. *)

type sample =
  | Counter of { name : string; help : string; value : float }
  | Gauge of { name : string; help : string; value : float }
  | Histogram of {
      name : string;
      help : string;
      buckets : (float * int) array;  (** (upper bound, cumulative count) *)
      sum : float;
      count : int;
    }

val sample_name : sample -> string
val snapshot : registry -> sample list
(** Aggregate every metric across shards and sample every gauge_fn /
    counter_fn. *)

val render : registry -> string
(** Prometheus text exposition (format 0.0.4) of {!snapshot}. *)

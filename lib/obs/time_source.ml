(* The time seam (see time_source.mli). The real source clamps
   [Unix.gettimeofday] through a process-wide CAS-max: gettimeofday is the
   only clock the stdlib offers, and it may be stepped backwards by NTP;
   span and histogram arithmetic (elapsed = t1 - t0) needs reads that never
   decrease. The clamp trades a frozen reading during a backwards step for
   never producing a negative duration. *)

type t =
  | Real
  | Virtual of int Atomic.t

(* Shared across every Real source in the process: monotonicity is a
   property of the clock, not of any one registry. *)
let real_floor = Atomic.make 0

let rec monotonic_now_ns () =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let prev = Atomic.get real_floor in
  if t > prev then
    if Atomic.compare_and_set real_floor prev t then t else monotonic_now_ns ()
  else prev

let real = Real
let virtual_ ?(start_ns = 0) () = Virtual (Atomic.make start_ns)
let is_virtual = function Real -> false | Virtual _ -> true

let now_ns = function
  | Real -> monotonic_now_ns ()
  | Virtual ns -> Atomic.get ns

let advance_ns t delta =
  match t with
  | Real -> ()
  | Virtual ns -> if delta > 0 then ignore (Atomic.fetch_and_add ns delta)

(** Per-message lifecycle spans in a bounded ring (§2.3.3).

    The executor records one {!span} per transaction: per-phase wall-clock
    timings for the §3.1 cycle, the rules that fired (or were
    pre-filtered), actions applied, and the outcome. Capacity 0 disables
    recording; otherwise the ring keeps exactly the last [capacity]
    spans. *)

type activation = {
  a_rule : string;
  a_updates : int;  (** pending updates the evaluation produced *)
  a_skipped : bool;  (** suppressed by the condition pre-filter *)
}

type outcome = Committed | Aborted of string

type span = {
  sp_rid : int;
  sp_queue : string;
  sp_flow : string;  (** causal flow id; [""] when the message is untraced *)
  sp_parent : int;  (** rid of the causing message; [-1] = cascade root *)
  sp_cause : string;
      (** rule (or origin kind: "ingress", "timer", ...) that enqueued the
          message *)
  sp_tick : int;  (** logical clock at commit/abort *)
  sp_worker : int;  (** metrics shard of the processing domain *)
  sp_start_ns : int;  (** wall clock at setup start; 0 when timing is off *)
  sp_wait_ns : int;
      (** enqueue/schedule → dispatch queueing delay: how long the message
          sat runnable before a worker picked it up (0 when timing is off) *)
  sp_lock_ns : int;  (** setup: fetch + lock acquisition + plan lookup *)
  sp_decode_ns : int;
      (** lazy payload decode within setup (sub-interval of [sp_lock_ns];
          0 when admission resolved from the synopsis without a tree) *)
  sp_eval_ns : int;  (** unlocked snapshot rule evaluation *)
  sp_apply_ns : int;  (** locked apply + commit *)
  sp_barrier_ns : int;  (** abort-path hardening *)
  sp_activations : activation list;  (** in evaluation order *)
  sp_actions : int;
  sp_batch : int;
      (** group-commit batch target in force when the message was
          dispatched; moves under the adaptive controller *)
  sp_outcome : outcome;
}

type t

val create : capacity:int -> t
val enabled : t -> bool
val capacity : t -> int

val total : t -> int
(** Spans ever recorded (recorded - capacity = dropped, if positive). *)

val record : t -> span -> unit
(** O(1); no-op when capacity is 0. Safe from any domain. *)

val spans : t -> span list
(** Retained spans, newest first. *)

val json_escape : string -> string
(** JSON string-body escaping (quotes, backslash, control characters) —
    shared by the span JSONL and the flow-tree renderers. *)

val span_json : span -> string
(** One span as a single-line JSON object. *)

val dump_jsonl : t -> string
(** All retained spans as JSONL, oldest first. *)

val pp_span : Format.formatter -> span -> unit

(* Causal flow store: assembles the provenance edges the engine observes
   (rid, queue, flow id, parent rid, causing rule) plus the spans the
   executor records into per-flow cascade trees with critical-path
   timing. The store is bounded on both axes — at most [max_flows] flows
   are retained (FIFO eviction: a long-running node forgets the oldest
   cascades first) and at most [max_nodes] messages per flow (fanouts
   beyond the cap are counted, not stored) — so tracing every message
   cannot grow memory without bound. *)

type node = {
  n_rid : int;
  n_queue : string;
  n_flow : string;
  n_parent : int;  (* rid of the causing message; -1 = cascade root *)
  n_cause : string;  (* rule name, or origin kind for roots *)
  mutable n_span : Trace.span option;  (* attached when the txn completes *)
}

(* Nodes live in a plain list (newest first): flows are small (bounded
   at [max_nodes], typically a handful of hops), and a list keeps the
   per-enqueue cost of [observe] — which runs on the engine's hot path
   for every traced message — to one cons, with dedup delegated to the
   O(1) [by_rid] index (rids are globally unique). *)
type flow = {
  f_id : string;
  mutable f_nodes_rev : node list;  (* newest first (insertion order) *)
  mutable f_count : int;
  mutable f_dropped : int;  (* nodes beyond [max_nodes], counted not kept *)
  mutable f_first_tick : int;
  mutable f_last_tick : int;
}

(* [observe] and [attach] run on the engine's hot path — per enqueue
   and per completed transaction respectively — so neither may pay for
   flow lookup, node search or eviction there: both only stage a record
   in a fixed ring, and the staged records are folded into the indexed
   structures when someone reads ([nodes], [summaries], ... — rare
   CLI/HTTP traffic). A burst longer than the ring between two reads
   overwrites the oldest staged records; those cascades simply arrive
   truncated in memory (the durable store still holds their
   provenance). Ring order preserves the edge-before-span invariant:
   a message is observed at enqueue, its span recorded at completion. *)
type edge = {
  e_rid : int;
  e_queue : string;
  e_flow : string;
  e_parent : int;
  e_cause : string;
  e_tick : int;
}

type staged = Nothing | Edge of edge | Span of Trace.span

let log_capacity = 4096

type t = {
  max_flows : int;
  max_nodes : int;
  mu : Mutex.t;
  flows : (string, flow) Hashtbl.t;
  by_rid : (int, node) Hashtbl.t;  (* reverse index: rid -> its node *)
  evict_q : string Queue.t;  (* flow ids, oldest first *)
  mutable evicted : int;  (* flows dropped by FIFO eviction *)
  log : staged array;  (* staging ring, drained into the index on read *)
  mutable log_start : int;  (* oldest undrained record *)
  mutable log_len : int;  (* undrained records, <= log_capacity *)
  mutable overwritten : int;  (* staged records lost to ring wrap *)
}

let create ?(max_flows = 256) ?(max_nodes_per_flow = 512) () =
  {
    max_flows = max 1 max_flows;
    max_nodes = max 1 max_nodes_per_flow;
    mu = Mutex.create ();
    flows = Hashtbl.create 64;
    by_rid = Hashtbl.create 256;
    evict_q = Queue.create ();
    evicted = 0;
    log = Array.make log_capacity Nothing;
    log_start = 0;
    log_len = 0;
    overwritten = 0;
  }

(* Stage one record in the ring (assumes [t.mu]). *)
let stage_locked t r =
  let i = (t.log_start + t.log_len) mod log_capacity in
  t.log.(i) <- r;
  if t.log_len = log_capacity then begin
    t.log_start <- (t.log_start + 1) mod log_capacity;
    t.overwritten <- t.overwritten + 1
  end
  else t.log_len <- t.log_len + 1

let evict_locked t =
  while Hashtbl.length t.flows > t.max_flows do
    let victim = Queue.pop t.evict_q in
    (match Hashtbl.find_opt t.flows victim with
     | Some f ->
       List.iter (fun n -> Hashtbl.remove t.by_rid n.n_rid) f.f_nodes_rev;
       Hashtbl.remove t.flows victim;
       t.evicted <- t.evicted + 1
     | None -> ())
  done

let observe t ~rid ~queue ~flow ~parent ~cause ~tick =
  if flow <> "" then
    Mutex.protect t.mu @@ fun () ->
    stage_locked t
      (Edge
         { e_rid = rid; e_queue = queue; e_flow = flow; e_parent = parent;
           e_cause = cause; e_tick = tick })

(* Attach a completed span to its node. Staged like [observe]; spans for
   evicted/over-cap/overwritten nodes are dropped silently at drain time
   (the span ring still holds them for [spans_jsonl]). *)
let attach t (span : Trace.span) =
  if span.Trace.sp_flow <> "" then
    Mutex.protect t.mu @@ fun () -> stage_locked t (Span span)

(* Fold one staged edge into the flow index (assumes [t.mu]). *)
let index_edge_locked t (e : edge) =
  let rid = e.e_rid and flow = e.e_flow and tick = e.e_tick in
  if not (Hashtbl.mem t.by_rid rid) then begin
    let f =
      match Hashtbl.find_opt t.flows flow with
      | Some f -> f
      | None ->
        let f =
          {
            f_id = flow;
            f_nodes_rev = [];
            f_count = 0;
            f_dropped = 0;
            f_first_tick = tick;
            f_last_tick = tick;
          }
        in
        Hashtbl.replace t.flows flow f;
        Queue.push flow t.evict_q;
        evict_locked t;
        f
    in
    f.f_last_tick <- max f.f_last_tick tick;
    f.f_first_tick <- min f.f_first_tick tick;
    if f.f_count >= t.max_nodes then f.f_dropped <- f.f_dropped + 1
    else begin
      let n =
        {
          n_rid = rid;
          n_queue = e.e_queue;
          n_flow = flow;
          n_parent = e.e_parent;
          n_cause = e.e_cause;
          n_span = None;
        }
      in
      f.f_nodes_rev <- n :: f.f_nodes_rev;
      f.f_count <- f.f_count + 1;
      Hashtbl.replace t.by_rid rid n
    end
  end

let index_span_locked t (span : Trace.span) =
  match Hashtbl.find_opt t.by_rid span.Trace.sp_rid with
  | None -> ()  (* node evicted, over-cap, or its edge overwritten *)
  | Some n ->
    n.n_span <- Some span;
    (match Hashtbl.find_opt t.flows n.n_flow with
     | Some f -> f.f_last_tick <- max f.f_last_tick span.Trace.sp_tick
     | None -> ())

let drain_locked t =
  for k = 0 to t.log_len - 1 do
    match t.log.((t.log_start + k) mod log_capacity) with
    | Nothing -> ()
    | Edge e -> index_edge_locked t e
    | Span s -> index_span_locked t s
  done;
  t.log_start <- 0;
  t.log_len <- 0

let flow_of_rid t rid =
  Mutex.protect t.mu @@ fun () ->
  drain_locked t;
  Option.map (fun n -> n.n_flow) (Hashtbl.find_opt t.by_rid rid)

let nodes t flow_id =
  Mutex.protect t.mu @@ fun () ->
  drain_locked t;
  match Hashtbl.find_opt t.flows flow_id with
  | None -> []
  | Some f -> List.rev f.f_nodes_rev (* oldest first *)

let dropped t flow_id =
  Mutex.protect t.mu @@ fun () ->
  drain_locked t;
  match Hashtbl.find_opt t.flows flow_id with
  | None -> 0
  | Some f -> f.f_dropped

let evicted t =
  Mutex.protect t.mu @@ fun () ->
  drain_locked t;
  t.evicted

let overwritten t = Mutex.protect t.mu @@ fun () -> t.overwritten

type summary = {
  s_flow : string;
  s_nodes : int;
  s_dropped : int;
  s_first_tick : int;
  s_last_tick : int;
}

(* Newest activity first. *)
let summaries t =
  Mutex.protect t.mu @@ fun () ->
  drain_locked t;
  Hashtbl.fold
    (fun _ f acc ->
      {
        s_flow = f.f_id;
        s_nodes = f.f_count;
        s_dropped = f.f_dropped;
        s_first_tick = f.f_first_tick;
        s_last_tick = f.f_last_tick;
      }
      :: acc)
    t.flows []
  |> List.sort (fun a b ->
         match compare b.s_last_tick a.s_last_tick with
         | 0 -> compare a.s_flow b.s_flow
         | c -> c)

(* ---- tree assembly (pure: works on any node list, so the engine can
   merge durable-store provenance with ring spans after a restart) ---- *)

type tree = { t_node : node; t_children : tree list }

let forest_of_nodes ns =
  let present = Hashtbl.create (List.length ns * 2) in
  List.iter (fun n -> Hashtbl.replace present n.n_rid ()) ns;
  let kids = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if n.n_parent >= 0 && Hashtbl.mem present n.n_parent then
        Hashtbl.replace kids n.n_parent
          (n :: (Option.value ~default:[] (Hashtbl.find_opt kids n.n_parent))))
    ns;
  let rec build n =
    let children =
      Option.value ~default:[] (Hashtbl.find_opt kids n.n_rid)
      |> List.sort (fun a b -> compare a.n_rid b.n_rid)
    in
    { t_node = n; t_children = List.map build children }
  in
  ns
  |> List.filter (fun n -> n.n_parent < 0 || not (Hashtbl.mem present n.n_parent))
  |> List.sort (fun a b -> compare a.n_rid b.n_rid)
  |> List.map build

(* Busy time: the phases the worker actually spent on the message. *)
let busy_ns (s : Trace.span) =
  s.Trace.sp_lock_ns + s.Trace.sp_eval_ns + s.Trace.sp_apply_ns
  + s.Trace.sp_barrier_ns

let node_cost n =
  match n.n_span with None -> 0 | Some s -> s.Trace.sp_wait_ns + busy_ns s

(* The root-to-leaf path maximizing cumulative wait + busy time — where
   the flow's end-to-end latency actually went. *)
let rec critical_path tr =
  let own = node_cost tr.t_node in
  match tr.t_children with
  | [] -> (own, [ tr.t_node.n_rid ])
  | cs ->
    let best_ns, best_path =
      List.fold_left
        (fun (bn, bp) c ->
          let n, p = critical_path c in
          if n > bn then (n, p) else (bn, bp))
        (min_int, []) cs
    in
    (own + best_ns, tr.t_node.n_rid :: best_path)

(* ---- rendering ---- *)

let fmt_ns ns =
  if ns <= 0 then "-"
  else if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then
    Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.3fs" (float_of_int ns /. 1e9)

let node_line ?(on_critical = false) n =
  let timing =
    match n.n_span with
    | None -> "pending"  (* observed but not yet (or never) processed *)
    | Some s ->
      let outcome =
        match s.Trace.sp_outcome with
        | Trace.Committed -> "committed"
        | Trace.Aborted r -> "ABORTED:" ^ r
      in
      Printf.sprintf "%s wait=%s lock=%s eval=%s apply=%s" outcome
        (fmt_ns s.Trace.sp_wait_ns) (fmt_ns s.Trace.sp_lock_ns)
        (fmt_ns s.Trace.sp_eval_ns)
        (fmt_ns (s.Trace.sp_apply_ns + s.Trace.sp_barrier_ns))
  in
  let cause = if n.n_cause = "" then "?" else n.n_cause in
  Printf.sprintf "#%d %s  <-%s  [%s]%s" n.n_rid n.n_queue cause timing
    (if on_critical then "  *" else "")

let render_ascii ?(header = true) flow_id ns =
  let buf = Buffer.create 1024 in
  let forest = forest_of_nodes ns in
  let crit =
    List.fold_left
      (fun (bn, bp) tr ->
        let n, p = critical_path tr in
        if n > bn then (n, p) else (bn, bp))
      (min_int, []) forest
  in
  let crit_ns, crit_path = crit in
  if header then
    Buffer.add_string buf
      (Printf.sprintf "flow %s  %d message%s  critical path %s (%s)\n" flow_id
         (List.length ns)
         (if List.length ns = 1 then "" else "s")
         (fmt_ns (max 0 crit_ns))
         (String.concat " -> "
            (List.map (fun r -> "#" ^ string_of_int r) crit_path)));
  let rec go prefix last tr =
    let connector = if prefix = "" then "" else if last then "`-- " else "|-- " in
    Buffer.add_string buf prefix;
    Buffer.add_string buf connector;
    Buffer.add_string buf
      (node_line ~on_critical:(List.mem tr.t_node.n_rid crit_path) tr.t_node);
    Buffer.add_char buf '\n';
    let child_prefix =
      if prefix = "" then "  " else prefix ^ (if last then "    " else "|   ")
    in
    let rec each = function
      | [] -> ()
      | [ c ] -> go child_prefix true c
      | c :: rest ->
        go child_prefix false c;
        each rest
    in
    each tr.t_children
  in
  List.iter (go "" true) forest;
  Buffer.contents buf

let node_json n =
  let span =
    match n.n_span with None -> "null" | Some s -> Trace.span_json s
  in
  Printf.sprintf
    "{\"rid\":%d,\"queue\":\"%s\",\"parent\":%d,\"cause\":\"%s\",\"span\":%s}"
    n.n_rid (Trace.json_escape n.n_queue) n.n_parent
    (Trace.json_escape n.n_cause) span

let render_json flow_id ns =
  let forest = forest_of_nodes ns in
  let crit_ns, crit_path =
    List.fold_left
      (fun (bn, bp) tr ->
        let n, p = critical_path tr in
        if n > bn then (n, p) else (bn, bp))
      (min_int, []) forest
  in
  let rec tree_json tr =
    Printf.sprintf "{\"node\":%s,\"children\":[%s]}" (node_json tr.t_node)
      (String.concat "," (List.map tree_json tr.t_children))
  in
  Printf.sprintf
    "{\"flow\":\"%s\",\"messages\":%d,\"critical_path_ns\":%d,\
     \"critical_path\":[%s],\"roots\":[%s]}"
    (Trace.json_escape flow_id) (List.length ns)
    (max 0 crit_ns)
    (String.concat "," (List.map string_of_int crit_path))
    (String.concat "," (List.map tree_json forest))

let summary_json s =
  Printf.sprintf
    "{\"flow\":\"%s\",\"messages\":%d,\"dropped\":%d,\"first_tick\":%d,\
     \"last_tick\":%d}"
    (Trace.json_escape s.s_flow) s.s_nodes s.s_dropped s.s_first_tick
    s.s_last_tick

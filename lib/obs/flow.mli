(** Causal flow store: cascade trees with critical-path timing.

    The engine reports every traced message's provenance edge
    ({!observe}) when it is enqueued and attaches the completed
    {!Trace.span} ({!attach}) when its transaction finishes. The store
    groups edges by flow id and is bounded on both axes: at most
    [max_flows] flows (FIFO eviction) and [max_nodes_per_flow] messages
    per flow (overflow is counted in {!dropped}, not stored).

    Tree assembly and rendering are pure over a plain {!node} list, so
    the engine can also rebuild trees from durable provenance (store
    scan) after a crash-restart, when the in-memory store is empty. *)

type node = {
  n_rid : int;
  n_queue : string;
  n_flow : string;
  n_parent : int;  (** rid of the causing message; [-1] = cascade root *)
  n_cause : string;  (** rule name, or origin kind for roots *)
  mutable n_span : Trace.span option;
}

type t

val create : ?max_flows:int -> ?max_nodes_per_flow:int -> unit -> t
(** Defaults: 256 flows, 512 messages per flow. *)

val observe :
  t ->
  rid:int ->
  queue:string ->
  flow:string ->
  parent:int ->
  cause:string ->
  tick:int ->
  unit
(** Record a provenance edge. No-op when [flow] is [""] (untraced).
    Idempotent per rid. Runs on the engine's enqueue path, so it only
    stages the edge in a fixed ring; the flow index is built lazily when
    a reader arrives. A burst longer than the ring between two reads
    loses its oldest staged records ({!overwritten}) — those cascades
    arrive truncated here, while their durable provenance survives in
    the message store. *)

val overwritten : t -> int
(** Staged records lost to ring wrap before any reader drained them. *)

val attach : t -> Trace.span -> unit
(** Attach a completed span to its node (matched by rid). Staged in the
    same ring as {!observe}; silently dropped if the node was evicted,
    over-cap, or its staged edge overwritten before a reader drained. *)

val flow_of_rid : t -> int -> string option
val nodes : t -> string -> node list
(** A flow's retained nodes, oldest first; [[]] for unknown flows. *)

val dropped : t -> string -> int
(** Nodes of this flow discarded by the per-flow cap. *)

val evicted : t -> int
(** Whole flows discarded by FIFO eviction since creation. *)

type summary = {
  s_flow : string;
  s_nodes : int;
  s_dropped : int;
  s_first_tick : int;
  s_last_tick : int;
}

val summaries : t -> summary list
(** All retained flows, most recent activity first. *)

(** {1 Trees} *)

type tree = { t_node : node; t_children : tree list }

val forest_of_nodes : node list -> tree list
(** Group by parent rid. Roots are nodes whose parent is absent from the
    list (or [-1]); children sort by rid. *)

val busy_ns : Trace.span -> int
(** lock + eval + apply + barrier: worker time spent on the message. *)

val node_cost : node -> int
(** wait + busy, or 0 for nodes without a span. *)

val critical_path : tree -> int * int list
(** The root-to-leaf path maximizing cumulative {!node_cost}:
    (total ns, rids along the path). *)

(** {1 Rendering} *)

val fmt_ns : int -> string
(** Human duration: ["-"] for 0, then ns/us/ms/s with sane precision. *)

val render_ascii : ?header:bool -> string -> node list -> string
(** ASCII cascade tree with per-hop outcome, wait and phase timings;
    critical-path nodes are marked with [*]. *)

val render_json : string -> node list -> string
(** The same tree as JSON: flow id, critical path, nested roots. *)

val summary_json : summary -> string

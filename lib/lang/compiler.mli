(** The rule compiler (§4.2/§4.4.1): deployment is a multi-pass
    compilation.

    Per-rule rewrites (unchanged since the first compiler):

    - {e fixed-property inlining}: [qs:property("p")] for a fixed property
      becomes its value expression for the rule's queue ("similar to
      conventional view merging, fixed properties are inlined");
    - {e default-parameter supply}: [qs:queue()] becomes
      [qs:queue("<this queue>")];
    - {e constant folding} of literal subexpressions;
    - {e condition pre-filter extraction} ({!Prefilter}).

    Plan passes, per target:

    + {e unsatisfiability pruning} — rules whose pre-filter requirements
      fall outside the target queue's closed schema vocabulary are
      statically dead and dropped (with the reason kept for explain);
    + {e guard splitting} — conditional rule bodies (§3.3) decompose into
      guard/then/else so the fused plan preserves per-rule error
      attribution (§3.6);
    + {e common-subexpression hoisting} — pure, stable expressions shared
      by several rules become plan-level bindings, evaluated once per
      message;
    + {e guard sharing} — structurally identical stable guards share one
      evaluation;
    + {e conflict footprints} — the queues/slices each rule can touch
      (⊤ for dynamic queue names), lowered to dispatcher resource strings
      and cached on the plan as the dispatch template.

    The legacy single-sequence [merged] expression (benchmark B2, with
    shared-condition factoring) is still built; the engine executes the
    guarded {!Demaq_xquery.Plan.t}. *)

type compiled_rule = {
  cr_name : string;
  cr_error_queue : string option;  (** rule-level error queue (§3.6) *)
  cr_body : Demaq_xquery.Ast.expr;  (** rewritten *)
  cr_original : Demaq_xquery.Ast.expr;  (** as written *)
  cr_requirements : string list;
      (** element names the triggering message must contain for the rule
          to possibly fire; empty = always evaluate *)
}

type footprint = {
  fp_top : bool;  (** ⊤: a dynamically computed queue name *)
  fp_queues : string list;  (** statically known queues read or written *)
  fp_slices : (string * string) list;
      (** slice resets with literal keys, as (slicing, key) *)
  fp_dynamic_reset : string list;
      (** slicings reset with a computed key *)
  fp_own_queue : bool;  (** reads the triggering message's own queue *)
}
(** The statically derived set of shared resources a rule's execution can
    touch — the conflict lattice element for footprint-driven dispatch. *)

type conflict =
  | Conflict_top  (** conflicts with every queue *)
  | Conflict_resources of { res : string list; own_queue : bool }
      (** dispatcher resource strings; [own_queue] adds the triggering
          message's own queue resource at schedule time *)

type plan = {
  target : string;  (** queue or slicing name *)
  on_slicing : bool;
  rules : compiled_rule list;  (** surviving rules, declaration order *)
  pruned : (string * string) list;
      (** statically dead rules: (name, reason) *)
  merged : Demaq_xquery.Ast.expr;  (** the legacy single merged plan *)
  exec : Demaq_xquery.Plan.t;  (** the guarded execution plan *)
  footprints : footprint list;  (** aligned with [exec]'s guarded rules *)
  conflicts : (string list * conflict) array;
      (** per guarded rule: (pre-filter requirements, conflict resources)
          — the cached dispatch template *)
  conflict_union : conflict;  (** union over all rules *)
  queue_resource : string;  (** ["q:" ^ target], interned once *)
}

type t

val compile : ?optimize:bool -> Qdl.program -> t
(** [optimize:false] keeps rule bodies verbatim (benchmarks B2/B8): no
    rewrites, no pruning, no hoisting; the guarded plan then has exactly
    per-rule semantics. *)

val plan_for : t -> string -> plan option
val plans : t -> plan list
(** All plans, sorted by target name. *)

val source_program : t -> Qdl.program
(** The program the plans were compiled from (used by runtime
    evolution). *)

val all_queue_resources : t -> string list
(** One ["q:" ^ name] resource per declared queue: what a ⊤ footprint
    expands to under footprint dispatch. *)

val explain : t -> string
(** Human-readable plan dump: hoisted bindings, per-rule guards and
    branches, error queues, pre-filter requirements, conflict footprints,
    and pruned rules with their unsatisfiability reason. *)

val footprint_to_string : footprint -> string
val conflict_to_string : conflict -> string

val factor_conditions : Demaq_xquery.Ast.expr list -> Demaq_xquery.Ast.expr
(** Merge rule bodies, evaluating structurally identical top-level
    conditions once. Exposed for tests. *)

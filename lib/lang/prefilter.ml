(* Condition pre-filtering (§4.4.1: "a variety of existing techniques can
   be leveraged to improve processing performance, including XML filtering
   [Diao & Franklin, VLDB'03]").

   A conservative static analysis extracts, for each rule, a set of element
   local names that MUST occur in the triggering message for the rule's
   condition to possibly hold. At runtime the engine intersects this with
   the message's element-name set (computed once per message) and skips the
   full XQuery evaluation when a required name is missing — the common case
   in brokering workloads where each message type triggers few of many
   rules.

   Soundness argument: a name is required only when derived from a path
   rooted at the triggering message (context item, [/], [qs:message()])
   whose effective boolean value or comparison operand must be non-empty
   for the condition to be true. [and] unions requirements, [or]
   intersects them; anything else contributes nothing (conservative). *)

module Ast = Demaq_xquery.Ast

(* Does a path expression start at the triggering message? *)
let rec rooted_at_message = function
  | Ast.Root | Ast.Context_item -> true
  | Ast.Call (("qs:message" | "message"), []) -> true
  | Ast.Axis_step _ -> true  (* relative step: context = the message *)
  | Ast.Path (base, _) -> rooted_at_message base
  | Ast.Filter (e, _) -> rooted_at_message e
  | _ -> false

(* Names required for [path] (rooted at the message) to be non-empty.
   Every child/descendant name-test step along the spine is required. *)
let rec path_names = function
  | Ast.Path (base, step) -> path_names base @ path_names step
  | Ast.Axis_step ((Ast.Child | Ast.Descendant | Ast.Descendant_or_self), Ast.Name_test n, _) ->
    [ n ]
  | Ast.Filter (e, _) -> path_names e
  | _ -> []

let inter a b = List.filter (fun x -> List.mem x b) a

(* Names that must occur in the message for [expr]'s EBV to be true. *)
let rec required_names expr =
  match expr with
  | Ast.Path _ | Ast.Axis_step _ | Ast.Filter _ ->
    if rooted_at_message expr then path_names expr else []
  | Ast.Binary (Ast.And, a, b) -> required_names a @ required_names b
  | Ast.Binary (Ast.Or, a, b) -> inter (required_names a) (required_names b)
  | Ast.Binary ((Ast.Gen_cmp _ | Ast.Val_cmp _), a, b) ->
    (* both operands must be non-empty for the comparison to hold *)
    operand_names a @ operand_names b
  | Ast.Call (("fn:exists" | "exists" | "fn:boolean" | "boolean"), [ e ]) ->
    required_names e
  | _ -> []

(* Names required for an expression used as a comparison operand to be
   non-empty; literals and anything non-path require nothing. *)
and operand_names expr =
  match expr with
  | Ast.Path _ | Ast.Axis_step _ | Ast.Filter _ ->
    if rooted_at_message expr then path_names expr else []
  | Ast.Call (("fn:string" | "string" | "fn:number" | "number" | "fn:data" | "data"), [ e ]) ->
    operand_names e
  | _ -> []

(* The names a whole rule body requires. Only the guard of a top-level
   conditional can be used, and only when the else-branch performs no
   updates (otherwise the rule does work even when the guard fails). *)
let rule_requirements body =
  match body with
  | Ast.If (cond, _, else_branch) when not (Ast.contains_update else_branch) ->
    List.sort_uniq compare (required_names cond)
  | _ -> []

(* ---- runtime side ---- *)

module Names = Set.Make (String)

(* All element local names occurring in a message body (the filter's
   document synopsis); computed once per message and cached by the
   engine. *)
let element_names tree =
  let rec go acc = function
    | Demaq_xml.Tree.Element e ->
      List.fold_left go
        (Names.add (Demaq_xml.Name.local e.Demaq_xml.Tree.name) acc)
        e.Demaq_xml.Tree.children
    | _ -> acc
  in
  go Names.empty tree

(* Streaming synopsis: binary payloads carry their element-name set in
   the encoding header (computed once, at encode time), so admission
   never has to materialize — or even token-scan — the message. [None]
   means the payload is legacy text or corrupt binary; the caller falls
   back to decoding and walking the tree. *)
let payload_names payload =
  if Demaq_xml.Bxml.is_binary payload then
    match Demaq_xml.Bxml.synopsis payload with
    | locals -> Some (List.fold_left (fun acc n -> Names.add n acc) Names.empty locals)
    | exception Demaq_xml.Bxml.Decode_error _ -> None
  else None

let may_match ~requirements ~names =
  List.for_all (fun n -> Names.mem n names) requirements

(* ---- static entailment against a queue schema ----

   [rule_requirements] gives the element names a message must contain for
   a rule to fire; a queue's schema (when present) bounds the element
   names any admitted message CAN contain. When the schema's vocabulary is
   closed and a required name falls outside it, the rule is statically
   unsatisfiable on that queue: the compiler prunes it from the plan and
   [Analysis] reports it as a dead rule.

   The vocabulary is closed only when every declared element has a closed
   content model (text, empty, or a sequence whose particles are all
   themselves declared). [mixed]/[any] content — or an undeclared particle,
   which validation treats as open — admits arbitrary descendants, and an
   empty schema places no restriction on the root, so both yield ⊤ (open)
   and suppress pruning. Admission ([Queue_manager.enqueue]) validates the
   payload with the root restricted to declared names, which is what makes
   the closed reading sound. *)

module Schema = Demaq_xml.Schema

type vocabulary = Open_vocabulary | Closed_vocabulary of Names.t

let schema_vocabulary schema =
  let declared = Schema.declared_names schema in
  if declared = [] then Open_vocabulary
  else
    let closed =
      List.for_all
        (fun name ->
          match Schema.declared schema name with
          | Some (Schema.Text_only | Schema.Empty) -> true
          | Some (Schema.Any | Schema.Mixed) | None -> false
          | Some (Schema.Sequence particles) ->
            List.for_all
              (fun p -> Schema.declared schema p.Schema.pname <> None)
              particles)
        declared
    in
    if closed then
      Closed_vocabulary (List.fold_left (fun acc n -> Names.add n acc) Names.empty declared)
    else Open_vocabulary

let unsatisfiable vocabulary requirements =
  match vocabulary with
  | Open_vocabulary -> None
  | Closed_vocabulary names -> (
    match List.filter (fun n -> not (Names.mem n names)) requirements with
    | [] -> None
    | missing ->
      Some
        (Printf.sprintf
           "condition requires element%s <%s> which the queue schema cannot produce"
           (if List.length missing = 1 then "" else "s")
           (String.concat ">, <" missing)))

(* The rule compiler (§4.2/§4.4.1): deployment is a multi-pass
   compilation, not a registration.

   Per-rule rewrites (pass 0, unchanged from the original compiler):

   - fixed-property inlining: a call [qs:property("p")] where [p] is a
     fixed property with a value expression for the rule's queue is
     replaced by that expression (the paper: "similar to conventional view
     merging, fixed properties are inlined");
   - default-parameter supply: [qs:queue()] becomes
     [qs:queue("<this queue>")] so the plan no longer depends on implicit
     rule context;
   - constant folding of literal boolean/arithmetic subexpressions.

   Plan passes, per target:

   1. unsatisfiability pruning — a rule whose condition requires an
      element name the target queue's schema can never admit
      ({!Prefilter.schema_vocabulary}) is dropped from the plan, with the
      reason kept for explain output;
   2. guard splitting — every rule body of the conditional shape the
      paper mandates in §3.3 is decomposed into guard/then/else, the
      per-rule guard preserved inside the fused plan so §3.6 error
      attribution survives the merge;
   3. common-subexpression hoisting — pure, stable expressions occurring
      in several rule bodies become plan-level bindings (an {!Ast.Bind}
      when lowered back to an expression), evaluated once per message;
   4. guard sharing — structurally identical stable guards get one guard
      id, hence one evaluation per message;
   5. conflict footprints — the set of queues/slices each rule's
      [do enqueue]/[qs:] calls can touch, with a ⊤ fallback for
      dynamically computed queue names; lowered to the dispatcher's
      conflict-resource strings and cached on the plan so the executor
      never recomputes them per dispatch.

   The legacy single-sequence [merged] expression (benchmark B2) is still
   built; the engine's execution artifact is the guarded
   {!Demaq_xquery.Plan.t}. *)

module Ast = Demaq_xquery.Ast
module Value = Demaq_xquery.Value
module Plan_ir = Demaq_xquery.Plan
module Defs = Demaq_mq.Defs
module Message = Demaq_mq.Message

type compiled_rule = {
  cr_name : string;
  cr_error_queue : string option;
  cr_body : Ast.expr;  (* rewritten *)
  cr_original : Ast.expr;
  cr_requirements : string list;
      (* element names the triggering message must contain for the rule to
         possibly fire (condition pre-filtering, §4.4.1); empty = always
         evaluate *)
}

(* The statically derived set of shared resources a rule's execution can
   touch. [fp_top] is the ⊤ element of the lattice: a dynamically computed
   queue name makes the rule conflict with everything. *)
type footprint = {
  fp_top : bool;
  fp_queues : string list;  (* statically known queues read or written *)
  fp_slices : (string * string) list;  (* slice resets with literal keys *)
  fp_dynamic_reset : string list;  (* slicings reset with a computed key *)
  fp_own_queue : bool;  (* reads the triggering message's own queue *)
}

type conflict =
  | Conflict_top  (* ⊤: conflicts with every queue *)
  | Conflict_resources of { res : string list; own_queue : bool }
      (* dispatcher resource strings; [own_queue] adds ["q:" ^ message
         queue] at schedule time (only dynamic for slicing rules) *)

type plan = {
  target : string;
  on_slicing : bool;
  rules : compiled_rule list;  (* surviving rules, declaration order *)
  pruned : (string * string) list;  (* statically dead: name, reason *)
  merged : Ast.expr;  (* all rule bodies as one sequence *)
  exec : Plan_ir.t;  (* the guarded execution plan *)
  footprints : footprint list;  (* aligned with [exec.p_guarded] *)
  conflicts : (string list * conflict) array;
      (* per guarded rule: (pre-filter requirements, conflict resources) —
         the dispatch template, cached here so the executor derives a
         message's resources by admission filtering alone *)
  conflict_union : conflict;  (* union over all rules (no-synopsis case) *)
  queue_resource : string;  (* "q:" ^ target, interned once *)
}

type t = {
  plans : (string, plan) Hashtbl.t;  (* by target *)
  program : Qdl.program;
  all_queue_resources : string list;
      (* "q:" per declared queue: the ⊤ footprint expands to these *)
}

(* ---- rewrites ---- *)

let literal_of_value = function
  | [ Value.Atom a ] -> Some (Ast.Literal a)
  | [] -> Some Ast.Empty_seq
  | _ -> None

let fold_constants expr =
  Ast.map_expr
    (fun e ->
      match e with
      | Ast.Binary (op, Ast.Literal a, Ast.Literal b) -> (
        let la = [ Value.Atom a ] and lb = [ Value.Atom b ] in
        match op with
        | Ast.And -> Ast.Literal (Value.Boolean (Value.ebv la && Value.ebv lb))
        | Ast.Or -> Ast.Literal (Value.Boolean (Value.ebv la || Value.ebv lb))
        | Ast.Gen_cmp c -> Ast.Literal (Value.Boolean (Value.general_compare c la lb))
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Idiv | Ast.Mod -> (
          let aop =
            match op with
            | Ast.Add -> `Add | Ast.Sub -> `Sub | Ast.Mul -> `Mul
            | Ast.Div -> `Div | Ast.Idiv -> `Idiv | _ -> `Mod
          in
          match Value.arith aop la lb with
          | v -> Option.value ~default:e (literal_of_value v)
          | exception Value.Type_error _ -> e)
        | _ -> e)
      | Ast.If (Ast.Literal (Value.Boolean true), t, _) -> t
      | Ast.If (Ast.Literal (Value.Boolean false), _, el) -> el
      | Ast.Call ("fn:not", [ Ast.Literal (Value.Boolean b) ])
      | Ast.Call ("not", [ Ast.Literal (Value.Boolean b) ]) ->
        Ast.Literal (Value.Boolean (not b))
      | e -> e)
    expr

(* Inline fixed properties: only safe for rules on a physical queue (the
   property expression for that specific queue is known statically). *)
let inline_fixed_properties properties queue expr =
  Ast.map_expr
    (fun e ->
      match e with
      | Ast.Call (("qs:property" | "property"), [ Ast.Literal (Value.String pname) ]) -> (
        match
          List.find_opt
            (fun p -> p.Defs.pname = pname && p.Defs.disposition = Defs.Fixed)
            properties
        with
        | Some p -> (
          match Defs.property_expr_for p queue with
          | Some value_expr ->
            (* The property value is the expression evaluated against the
               message body, atomized and cast; inline the expression and
               keep the cast via fn:string/number as appropriate. *)
            (match p.Defs.ptype with
             | Value.T_string -> Ast.Call ("fn:string", [ value_expr ])
             | Value.T_integer | Value.T_decimal -> Ast.Call ("fn:number", [ value_expr ])
             | Value.T_boolean -> Ast.Call ("fn:boolean", [ value_expr ]))
          | None -> e)
        | None -> e)
      | e -> e)
    expr

let supply_queue_default queue expr =
  Ast.map_expr
    (fun e ->
      match e with
      | Ast.Call (("qs:queue" | "queue") as f, []) ->
        Ast.Call (f, [ Ast.Literal (Value.String queue) ])
      | e -> e)
    expr

(* Group [if (c) then a_i else b_i] bodies by structurally equal condition,
   preserving the first-occurrence order of conditions and the relative
   order of the actions under each. Rules are independent ECA reactions,
   so reordering whole rule bodies is sound; the pending-update order
   within one rule is preserved. *)
let factor_conditions bodies =
  let groups : (Ast.expr option * Ast.expr list ref) list ref = ref [] in
  let condition_of = function
    | Ast.If (c, _, _) -> Some c
    | _ -> None
  in
  List.iter
    (fun body ->
      let cond = condition_of body in
      match List.find_opt (fun (c, _) -> c = cond && c <> None) !groups with
      | Some (_, bucket) -> bucket := body :: !bucket
      | None -> groups := !groups @ [ (cond, ref [ body ]) ])
    bodies;
  let merged_group (cond, bucket) =
    match cond, List.rev !bucket with
    | Some c, (_ :: _ :: _ as members) ->
      (* several rules share the condition: evaluate it once *)
      let thens = List.map (function Ast.If (_, t, _) -> t | e -> e) members in
      let elses =
        List.filter_map
          (function Ast.If (_, _, Ast.Empty_seq) -> None | Ast.If (_, _, e) -> Some e | _ -> None)
          members
      in
      let else_branch =
        match elses with [] -> Ast.Empty_seq | es -> Ast.Sequence es
      in
      [ Ast.If (c, Ast.Sequence thens, else_branch) ]
    | _, members -> members
  in
  Ast.Sequence (List.concat_map merged_group !groups)

(* ---- expression classification for hoisting and guard sharing ---- *)

let expr_size e = Ast.fold_expr (fun n _ -> n + 1) 0 e

(* Functions whose result depends on engine state or evaluation focus:
   sharing one evaluation across rules could observe a different state
   than per-rule interpretation would (error routing between rules
   changes queue contents; the virtual clock ticks concurrently). *)
let unstable_functions =
  [ "qs:queue"; "queue"; "qs:slice"; "slice"; "fn:collection"; "collection";
    "fn:current-dateTime"; "current-dateTime"; "fn:position"; "position";
    "fn:last"; "last" ]

let stable_expr e =
  not
    (List.exists
       (fun f -> List.mem f unstable_functions)
       (Ast.called_functions e))

let contains_constructor e =
  Ast.fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Ast.Direct_elem _ | Ast.Computed_elem _ | Ast.Computed_attr _
      | Ast.Computed_text _ ->
        true
      | _ -> false)
    false e

(* Hoisting candidates must be closed (no free variables), pure (no
   updates), stable, constructor-free (constructed nodes have identity),
   and big enough to be worth a binding. *)
let hoist_candidate e =
  expr_size e >= 3
  && (not (Ast.contains_update e))
  && stable_expr e
  && (not (contains_constructor e))
  && Analysis.free_variables e = []

(* Walk only the positions that evaluate in the SAME dynamic environment
   as the whole expression: no focus changes (right of a path, predicate),
   no variable scopes (FLWOR, quantifier, Bind). A hoisted binding
   substituted in such a position is guaranteed to denote the same value
   the inline expression would. *)
let rec scope_fold f acc e =
  let acc = f acc e in
  let go = scope_fold f in
  match e with
  | Ast.If (c, t, el) -> go (go (go acc c) t) el
  | Ast.Binary (_, a, b) | Ast.Range (a, b)
  | Ast.Computed_elem (a, b) | Ast.Computed_attr (a, b) ->
    go (go acc a) b
  | Ast.Sequence es | Ast.Call (_, es) -> List.fold_left go acc es
  | Ast.Neg a | Ast.Cast (a, _, _) | Ast.Instance_of (a, _)
  | Ast.Treat_as (a, _) | Ast.Computed_text a ->
    go acc a
  | Ast.Path (a, _) -> go acc a  (* the right side runs in a new focus *)
  | Ast.Filter (p, _) -> go acc p  (* predicates run in a new focus *)
  | Ast.Direct_elem d ->
    let acc =
      List.fold_left
        (fun acc (_, pieces) ->
          List.fold_left
            (fun acc p ->
              match p with Ast.A_text _ -> acc | Ast.A_expr e -> go acc e)
            acc pieces)
        acc d.Ast.dattrs
    in
    List.fold_left
      (fun acc p ->
        match p with Ast.C_text _ -> acc | Ast.C_expr e -> go acc e)
      acc d.Ast.dcontent
  | Ast.Enqueue { payload; props; _ } ->
    List.fold_left (fun acc (_, e) -> go acc e) (go acc payload) props
  | Ast.Reset (Some (_, key)) -> go acc key
  | Ast.Reset None | Ast.Literal _ | Ast.Empty_seq | Ast.Var _
  | Ast.Context_item | Ast.Root | Ast.Axis_step _ | Ast.Flwor _
  | Ast.Quantified _ | Ast.Bind _ ->
    acc

(* Replace every same-environment occurrence of [cand] with [Var name];
   same descent discipline as {!scope_fold}. *)
let rec scope_replace cand name e =
  if e = cand then Ast.Var name
  else
    let r = scope_replace cand name in
    match e with
    | Ast.If (c, t, el) -> Ast.If (r c, r t, r el)
    | Ast.Binary (op, a, b) -> Ast.Binary (op, r a, r b)
    | Ast.Range (a, b) -> Ast.Range (r a, r b)
    | Ast.Computed_elem (a, b) -> Ast.Computed_elem (r a, r b)
    | Ast.Computed_attr (a, b) -> Ast.Computed_attr (r a, r b)
    | Ast.Sequence es -> Ast.Sequence (List.map r es)
    | Ast.Call (f, es) -> Ast.Call (f, List.map r es)
    | Ast.Neg a -> Ast.Neg (r a)
    | Ast.Cast (a, ty, k) -> Ast.Cast (r a, ty, k)
    | Ast.Instance_of (a, st) -> Ast.Instance_of (r a, st)
    | Ast.Treat_as (a, st) -> Ast.Treat_as (r a, st)
    | Ast.Computed_text a -> Ast.Computed_text (r a)
    | Ast.Path (a, b) -> Ast.Path (r a, b)
    | Ast.Filter (p, preds) -> Ast.Filter (r p, preds)
    | Ast.Direct_elem d ->
      Ast.Direct_elem
        { d with
          Ast.dattrs =
            List.map
              (fun (n, pieces) ->
                ( n,
                  List.map
                    (function
                      | Ast.A_text _ as t -> t
                      | Ast.A_expr e -> Ast.A_expr (r e))
                    pieces ))
              d.Ast.dattrs;
          dcontent =
            List.map
              (function
                | Ast.C_text _ as t -> t
                | Ast.C_expr e -> Ast.C_expr (r e))
              d.Ast.dcontent }
    | Ast.Enqueue { payload; queue; props } ->
      Ast.Enqueue
        { payload = r payload;
          queue;
          props = List.map (fun (n, e) -> (n, r e)) props }
    | Ast.Reset (Some (s, key)) -> Ast.Reset (Some (s, r key))
    | Ast.Reset None | Ast.Literal _ | Ast.Empty_seq | Ast.Var _
    | Ast.Context_item | Ast.Root | Ast.Axis_step _ | Ast.Flwor _
    | Ast.Quantified _ | Ast.Bind _ ->
      e

let binding_prefix = "__plan"

let uses_reserved_vars e =
  Ast.fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Ast.Var v -> String.length v >= 6 && String.sub v 0 6 = binding_prefix
      | _ -> false)
    false e

(* ---- compilation ---- *)

let compile_rule ~properties ~on_slicing ~target (r : Qdl.rule_def) =
  let body = r.Qdl.body in
  let body = if on_slicing then body else supply_queue_default target body in
  let body = if on_slicing then body else inline_fixed_properties properties target body in
  let body = fold_constants body in
  {
    cr_name = r.Qdl.rname;
    cr_error_queue = r.Qdl.rule_error_queue;
    cr_body = body;
    cr_original = r.Qdl.body;
    cr_requirements = Prefilter.rule_requirements body;
  }

(* Pass 5: the conflict footprint of one rewritten rule body. *)
let footprint_of body =
  let top = ref false
  and queues = ref []
  and slices = ref []
  and dyn = ref []
  and own = ref false in
  Ast.fold_expr
    (fun () e ->
      match e with
      | Ast.Enqueue { queue; _ } -> queues := queue :: !queues
      | Ast.Call (("qs:queue" | "queue"), args) -> (
        match args with
        | [] -> own := true  (* slicing rule: the trigger's queue *)
        | [ Ast.Literal (Value.String q) ] -> queues := q :: !queues
        | _ -> top := true  (* dynamically computed queue name: ⊤ *))
      | Ast.Reset (Some (s, Ast.Literal key)) ->
        slices := (s, Message.key_string key) :: !slices
      | Ast.Reset (Some (s, _)) -> dyn := s :: !dyn
      | Ast.Reset None -> ()  (* the current slice; membership resources cover it *)
      | _ -> ())
    () body;
  {
    fp_top = !top;
    fp_queues = List.sort_uniq compare !queues;
    fp_slices = List.sort_uniq compare !slices;
    fp_dynamic_reset = List.sort_uniq compare !dyn;
    fp_own_queue = !own;
  }

let conflict_of fp =
  if fp.fp_top then Conflict_top
  else
    Conflict_resources
      {
        res =
          List.sort_uniq compare
            (List.map (fun q -> "q:" ^ q) fp.fp_queues
            @ List.map (fun (s, k) -> Printf.sprintf "s:%s/%s" s k) fp.fp_slices);
        (* a dynamic-key reset falls back to the legacy discipline: the
           message's own queue (plus its memberships, which the executor
           always includes under footprint dispatch) *)
        own_queue = fp.fp_own_queue || fp.fp_dynamic_reset <> [];
      }

let union_conflicts conflicts =
  if List.mem Conflict_top conflicts then Conflict_top
  else
    Conflict_resources
      {
        res =
          List.sort_uniq compare
            (List.concat_map
               (function
                 | Conflict_resources { res; _ } -> res
                 | Conflict_top -> [])
               conflicts);
        own_queue =
          List.exists
            (function
              | Conflict_resources { own_queue; _ } -> own_queue
              | Conflict_top -> false)
            conflicts;
      }

(* Pass 3: hoist common subexpressions across the rules of one plan.
   Returns the bindings (dependency order) and each rule's rewritten
   (guard, then, else). *)
let hoist_common decomposed =
  let skip =
    List.exists
      (fun (_, guard, then_, else_) ->
        List.exists
          (fun e -> match e with Some e -> uses_reserved_vars e | None -> false)
          [ guard; Some then_; Some else_ ])
      decomposed
  in
  if skip then ([], decomposed)
  else begin
    (* candidate -> number of distinct rules it occurs in *)
    let counts = Hashtbl.create 32 in
    List.iter
      (fun (_, guard, then_, else_) ->
        let occs =
          List.fold_left
            (fun acc e ->
              match e with
              | None -> acc
              | Some e -> scope_fold (fun acc e -> e :: acc) acc e)
            []
            [ guard; Some then_; Some else_ ]
        in
        List.iter
          (fun e ->
            Hashtbl.replace counts e (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)))
          (List.sort_uniq compare (List.filter hoist_candidate occs)))
      decomposed;
    let cands =
      Hashtbl.fold (fun e n acc -> if n >= 2 then e :: acc else acc) counts []
    in
    (* dependency order: smaller expressions first (a larger candidate can
       only reference a smaller one); replacement runs largest-first so
       nested candidates survive inside the bindings of their hosts *)
    let cands =
      List.sort
        (fun a b ->
          match compare (expr_size a) (expr_size b) with
          | 0 -> compare a b
          | c -> c)
        cands
    in
    let n = List.length cands in
    let arr = Array.of_list cands in
    let names = Array.init n (fun i -> Printf.sprintf "%s%d" binding_prefix i) in
    let bind_exprs = Array.copy arr in
    let rewritten = ref decomposed in
    for j = n - 1 downto 0 do
      let cand = arr.(j) and name = names.(j) in
      rewritten :=
        List.map
          (fun (meta, guard, then_, else_) ->
            ( meta,
              Option.map (scope_replace cand name) guard,
              scope_replace cand name then_,
              scope_replace cand name else_ ))
          !rewritten;
      for i = 0 to n - 1 do
        if i <> j then bind_exprs.(i) <- scope_replace cand name bind_exprs.(i)
      done
    done;
    (List.map2 (fun name e -> (name, e)) (Array.to_list names) (Array.to_list bind_exprs),
     !rewritten)
  end

(* Indices of the bindings an expression references, transitively closed
   over the bindings' own references; ascending, so evaluation order is a
   valid dependency order. *)
let binding_indices bindings exprs =
  let n = List.length bindings in
  let name_index =
    List.mapi (fun i (name, _) -> (name, i)) bindings
  in
  let direct e =
    Ast.fold_expr
      (fun acc e ->
        match e with
        | Ast.Var v -> (
          match List.assoc_opt v name_index with Some i -> i :: acc | None -> acc)
        | _ -> acc)
      [] e
  in
  let bind_refs =
    Array.of_list (List.map (fun (_, e) -> direct e) bindings)
  in
  let needed = Array.make (max 1 n) false in
  let rec mark i =
    if not needed.(i) then begin
      needed.(i) <- true;
      List.iter mark bind_refs.(i)
    end
  in
  List.iter (fun e -> List.iter mark (direct e)) exprs;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if needed.(i) then out := i :: !out
  done;
  !out

(* Passes 1-5 for one target's surviving rules. *)
let build_exec ~on_slicing rules =
  (* pass 2: guard splitting (opaque when the guard itself updates) *)
  let decomposed =
    List.map
      (fun cr ->
        match cr.cr_body with
        | Ast.If (c, t, e) when not (Ast.contains_update c) ->
          (cr, Some c, t, e)
        | body -> (cr, None, body, Ast.Empty_seq))
      rules
  in
  (* pass 3: hoisting *)
  let bindings, decomposed = hoist_common decomposed in
  (* pass 4: guard sharing (stable guards only; sharing an unstable guard
     could observe state a per-rule evaluation at this rule's turn would
     not) *)
  let guard_ids = Hashtbl.create 8 in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let guarded =
    List.map
      (fun (cr, guard, then_, else_) ->
        let g_guard_id =
          match guard with
          | Some g when stable_expr g -> (
            match Hashtbl.find_opt guard_ids g with
            | Some id -> id
            | None ->
              let id = fresh () in
              Hashtbl.replace guard_ids g id;
              id)
          | _ -> fresh ()
        in
        let exprs =
          (match guard with Some g -> [ g ] | None -> []) @ [ then_; else_ ]
        in
        {
          Plan_ir.g_name = cr.cr_name;
          g_error_queue = cr.cr_error_queue;
          g_guard = guard;
          g_guard_id;
          g_then = then_;
          g_else = else_;
          g_bindings = binding_indices bindings exprs;
          g_fallback = cr.cr_body;
          g_requirements = (if on_slicing then [] else cr.cr_requirements);
        })
      decomposed
  in
  { Plan_ir.p_bindings = bindings; p_guarded = guarded; p_n_guards = !next_id }

let finish_plan ~queues target plan =
  (* pass 1: unsatisfiability pruning against the target queue's schema *)
  let vocabulary =
    if plan.on_slicing then Prefilter.Open_vocabulary
    else
      match List.find_opt (fun q -> q.Defs.qname = target) queues with
      | Some { Defs.schema = Some schema; _ } -> Prefilter.schema_vocabulary schema
      | _ -> Prefilter.Open_vocabulary
  in
  let kept, pruned =
    List.partition_map
      (fun cr ->
        match Prefilter.unsatisfiable vocabulary cr.cr_requirements with
        | None -> Left cr
        | Some reason -> Right (cr.cr_name, reason))
      plan.rules
  in
  let exec = build_exec ~on_slicing:plan.on_slicing kept in
  let footprints = List.map (fun cr -> footprint_of cr.cr_body) kept in
  let conflicts =
    Array.of_list
      (List.map2
         (fun (g : Plan_ir.guarded) fp -> (g.Plan_ir.g_requirements, conflict_of fp))
         exec.Plan_ir.p_guarded footprints)
  in
  {
    plan with
    rules = kept;
    pruned;
    exec;
    footprints;
    conflicts;
    conflict_union =
      union_conflicts (Array.to_list (Array.map snd conflicts));
    queue_resource = "q:" ^ target;
  }

let empty_plan target on_slicing =
  {
    target;
    on_slicing;
    rules = [];
    pruned = [];
    merged = Ast.Empty_seq;
    exec = Plan_ir.of_rules [];
    footprints = [];
    conflicts = [||];
    conflict_union = Conflict_resources { res = []; own_queue = false };
    queue_resource = "q:" ^ target;
  }

let compile ?(optimize = true) (program : Qdl.program) : t =
  let slicing_names = List.map (fun s -> s.Defs.sname) (Qdl.slicings program) in
  let properties = Qdl.properties program in
  let queues = Qdl.queues program in
  let plans = Hashtbl.create 16 in
  List.iter
    (fun (r : Qdl.rule_def) ->
      let target = r.Qdl.target in
      let on_slicing = List.mem target slicing_names in
      let compiled =
        if optimize then compile_rule ~properties ~on_slicing ~target r
        else
          {
            cr_name = r.Qdl.rname;
            cr_error_queue = r.Qdl.rule_error_queue;
            cr_body = r.Qdl.body;
            cr_original = r.Qdl.body;
            cr_requirements = [];
          }
      in
      let plan =
        match Hashtbl.find_opt plans target with
        | Some p -> { p with rules = p.rules @ [ compiled ] }
        | None -> { (empty_plan target on_slicing) with rules = [ compiled ] }
      in
      Hashtbl.replace plans target plan)
    (Qdl.rules program);
  (* Plan passes per target. The merged expression factors identical
     conditions: §3.3 makes every rule body a conditional expression
     precisely "to facilitate the detection and optimization of conditions
     by the rule compiler". *)
  Hashtbl.iter
    (fun target plan ->
      let plan = if optimize then finish_plan ~queues target plan else plan in
      let plan =
        if optimize then plan
        else
          (* keep rule bodies verbatim: a trivial guarded plan with
             per-rule semantics and whole-body footprints *)
          let exec =
            Plan_ir.of_rules
              (List.map
                 (fun cr -> (cr.cr_name, cr.cr_error_queue, cr.cr_body, []))
                 plan.rules)
          in
          let footprints = List.map (fun cr -> footprint_of cr.cr_body) plan.rules in
          let conflicts =
            Array.of_list
              (List.map (fun fp -> ([], conflict_of fp)) footprints)
          in
          { plan with
            exec;
            footprints;
            conflicts;
            conflict_union =
              union_conflicts (Array.to_list (Array.map snd conflicts)) }
      in
      let merged =
        if optimize then factor_conditions (List.map (fun r -> r.cr_body) plan.rules)
        else Ast.Sequence (List.map (fun r -> r.cr_body) plan.rules)
      in
      Hashtbl.replace plans target { plan with merged })
    plans;
  {
    plans;
    program;
    all_queue_resources =
      List.sort_uniq compare (List.map (fun q -> "q:" ^ q.Defs.qname) queues);
  }

let plan_for t target = Hashtbl.find_opt t.plans target
let source_program t = t.program
let all_queue_resources t = t.all_queue_resources

let plans t =
  List.sort
    (fun a b -> compare a.target b.target)
    (Hashtbl.fold (fun _ p acc -> p :: acc) t.plans [])

(* ---- explain ---- *)

let footprint_to_string fp =
  if fp.fp_top then "⊤ (dynamic queue name)"
  else
    let parts =
      (match fp.fp_queues with
       | [] -> []
       | qs -> [ "queues: " ^ String.concat ", " qs ])
      @ (match fp.fp_slices with
         | [] -> []
         | ss ->
           [ "slices: "
             ^ String.concat ", " (List.map (fun (s, k) -> s ^ "/" ^ k) ss) ])
      @ (match fp.fp_dynamic_reset with
         | [] -> []
         | ss -> [ "dynamic resets: " ^ String.concat ", " ss ])
      @ (if fp.fp_own_queue then [ "own queue" ] else [])
    in
    if parts = [] then "∅" else "{" ^ String.concat "; " parts ^ "}"

let conflict_to_string = function
  | Conflict_top -> "⊤ (all queues)"
  | Conflict_resources { res; own_queue } ->
    let res = if own_queue then res @ [ "q:<own>" ] else res in
    (match res with [] -> "∅" | res -> String.concat ", " res)

let explain t =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun p ->
      pr "plan for %s%s (%d rule%s%s):\n" p.target
        (if p.on_slicing then " [slicing]" else "")
        (List.length p.rules)
        (if List.length p.rules = 1 then "" else "s")
        (match List.length p.pruned with
         | 0 -> ""
         | n -> Printf.sprintf ", %d pruned" n);
      List.iter
        (fun (name, expr) ->
          pr "  binding $%s := %s\n" name (Demaq_xquery.Pp.to_string expr))
        p.exec.Demaq_xquery.Plan.p_bindings;
      List.iteri
        (fun i (g : Demaq_xquery.Plan.guarded) ->
          let fp = List.nth p.footprints i in
          pr "  rule %s%s%s:\n" g.Demaq_xquery.Plan.g_name
            (match g.Demaq_xquery.Plan.g_error_queue with
             | Some q -> " (errors -> " ^ q ^ ")"
             | None -> "")
            (match g.Demaq_xquery.Plan.g_requirements with
             | [] -> ""
             | names -> " [requires <" ^ String.concat ">, <" names ^ ">]");
          (match g.Demaq_xquery.Plan.g_guard with
           | Some guard ->
             pr "    guard[%d]: %s\n" g.Demaq_xquery.Plan.g_guard_id
               (Demaq_xquery.Pp.to_string guard);
             pr "    then: %s\n"
               (Demaq_xquery.Pp.to_string g.Demaq_xquery.Plan.g_then);
             if g.Demaq_xquery.Plan.g_else <> Demaq_xquery.Ast.Empty_seq then
               pr "    else: %s\n"
                 (Demaq_xquery.Pp.to_string g.Demaq_xquery.Plan.g_else)
           | None ->
             pr "    body: %s\n"
               (Demaq_xquery.Pp.to_string g.Demaq_xquery.Plan.g_then));
          pr "    footprint: %s\n" (footprint_to_string fp))
        p.exec.Demaq_xquery.Plan.p_guarded;
      List.iter
        (fun (name, reason) -> pr "  pruned rule %s: %s\n" name reason)
        p.pruned;
      pr "  conflict resources: %s\n" (conflict_to_string p.conflict_union))
    (plans t);
  Buffer.contents buf

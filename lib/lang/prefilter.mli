(** Condition pre-filtering (§4.4.1 points to "XML filtering" à la Diao &
    Franklin for high-volume message brokering).

    A conservative static analysis extracts, per rule, a set of element
    local names that MUST occur in the triggering message for the rule's
    condition to possibly hold. At runtime the engine intersects it with
    the message's element-name synopsis and skips the full XQuery
    evaluation when a required name is missing.

    Soundness: a name is required only when derived from a path rooted at
    the triggering message ([.], [/], [qs:message()]) whose effective
    boolean value or comparison operand must be non-empty for the
    condition to be true; [and] unions requirements, [or] intersects
    them, everything else contributes nothing. *)

val rule_requirements : Demaq_xquery.Ast.expr -> string list
(** Requirements of a whole rule body: uses the guard of a top-level
    conditional whose else-branch performs no updates; sorted, distinct.
    [[]] means "always evaluate". *)

val required_names : Demaq_xquery.Ast.expr -> string list
(** Requirements of a boolean condition (not deduplicated). *)

module Names : Set.S with type elt = string

val element_names : Demaq_xml.Tree.tree -> Names.t
(** All element local names occurring in a message body (the per-message
    synopsis; the engine computes it once and caches it by rid). *)

val payload_names : string -> Names.t option
(** The same synopsis read directly from a stored payload: binary
    payloads carry their element-name set in the {!Demaq_xml.Bxml}
    header, so this costs O(header) and never builds a tree. [None] for
    legacy text payloads (or corrupt binary) — fall back to
    {!element_names} over the decoded body. *)

val may_match : requirements:string list -> names:Names.t -> bool
(** False only when the rule provably cannot fire on this message. *)

type vocabulary = Open_vocabulary | Closed_vocabulary of Names.t
(** The element names messages admitted to a queue can possibly contain:
    closed when the queue schema declares every reachable content model,
    open (⊤) when any content is [mixed]/[any], a particle is undeclared,
    or the schema is empty. *)

val schema_vocabulary : Demaq_xml.Schema.t -> vocabulary
(** Lift a queue schema to its element-name vocabulary; conservative
    (leans open). *)

val unsatisfiable : vocabulary -> string list -> string option
(** [unsatisfiable vocab requirements] is [Some reason] when some
    required element name provably cannot occur in any message the
    queue admits — the rule is statically dead on that queue. *)

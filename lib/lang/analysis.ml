(* Static semantic analysis of a Demaq program: name resolution and the
   context restrictions the paper states (e.g. qs:slice()/qs:slicekey()
   "are only available to rules defined on slicings", §3.5.2). *)

module Ast = Demaq_xquery.Ast
module Defs = Demaq_mq.Defs

type severity = Error | Warning

type diagnostic = { severity : severity; where : string; message : string }

let diag severity where fmt =
  Format.kasprintf (fun message -> { severity; where; message }) fmt

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s: %s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.where d.message

type result = {
  diagnostics : diagnostic list;
  ok : bool;  (* no errors (warnings allowed) *)
}

(* Free variables of a rule body: referenced but never bound by a FLWOR
   or quantifier clause in scope. QML rules have no external variable
   environment, so any free variable is a guaranteed runtime error. *)
let free_variables body =
  let rec go bound acc expr =
    match expr with
    | Ast.Var v -> if List.mem v bound then acc else v :: acc
    | Ast.Flwor (clauses, ret) ->
      let bound, acc =
        List.fold_left
          (fun (bound, acc) clause ->
            match clause with
            | Ast.For binds ->
              List.fold_left
                (fun (bound, acc) (v, pos, e) ->
                  let acc = go bound acc e in
                  let bound = v :: bound in
                  ((match pos with Some p -> p :: bound | None -> bound), acc))
                (bound, acc) binds
            | Ast.Let binds ->
              List.fold_left
                (fun (bound, acc) (v, e) -> (v :: bound, go bound acc e))
                (bound, acc) binds
            | Ast.Where e -> (bound, go bound acc e)
            | Ast.Order_by keys ->
              (bound, List.fold_left (fun acc (e, _, _) -> go bound acc e) acc keys))
          (bound, acc) clauses
      in
      go bound acc ret
    | Ast.Quantified (_, binds, sat) ->
      let bound, acc =
        List.fold_left
          (fun (bound, acc) (v, e) -> (v :: bound, go bound acc e))
          (bound, acc) binds
      in
      go bound acc sat
    | Ast.Sequence es -> List.fold_left (go bound) acc es
    | Ast.Path (a, b) | Ast.Binary (_, a, b) | Ast.Range (a, b)
    | Ast.Computed_elem (a, b) | Ast.Computed_attr (a, b) ->
      go bound (go bound acc a) b
    | Ast.Axis_step (_, _, preds) -> List.fold_left (go bound) acc preds
    | Ast.Filter (e, preds) -> List.fold_left (go bound) (go bound acc e) preds
    | Ast.Call (_, args) -> List.fold_left (go bound) acc args
    | Ast.If (c, t, e) -> go bound (go bound (go bound acc c) t) e
    | Ast.Neg e | Ast.Computed_text e | Ast.Cast (e, _, _) | Ast.Instance_of (e, _)
    | Ast.Treat_as (e, _) ->
      go bound acc e
    | Ast.Direct_elem d ->
      let acc =
        List.fold_left
          (fun acc (_, pieces) ->
            List.fold_left
              (fun acc p ->
                match p with Ast.A_text _ -> acc | Ast.A_expr e -> go bound acc e)
              acc pieces)
          acc d.Ast.dattrs
      in
      List.fold_left
        (fun acc p ->
          match p with Ast.C_text _ -> acc | Ast.C_expr e -> go bound acc e)
        acc d.Ast.dcontent
    | Ast.Enqueue { payload; props; _ } ->
      List.fold_left (fun acc (_, e) -> go bound acc e) (go bound acc payload) props
    | Ast.Reset (Some (_, key)) -> go bound acc key
    | Ast.Bind (binds, body) ->
      let bound, acc =
        List.fold_left
          (fun (bound, acc) (v, e) -> (v :: bound, go bound acc e))
          (bound, acc) binds
      in
      go bound acc body
    | Ast.Reset None | Ast.Literal _ | Ast.Empty_seq | Ast.Context_item | Ast.Root ->
      acc
  in
  List.sort_uniq compare (go [] [] body)

let enqueue_targets body =
  Ast.fold_expr
    (fun acc e -> match e with Ast.Enqueue { queue; _ } -> queue :: acc | _ -> acc)
    [] body

let analyze (program : Qdl.program) : result =
  let queues = Qdl.queues program in
  let properties = Qdl.properties program in
  let slicings = Qdl.slicings program in
  let rules = Qdl.rules program in
  let queue_names = List.map (fun q -> q.Defs.qname) queues in
  let slicing_names = List.map (fun s -> s.Defs.sname) slicings in
  let property_names = List.map (fun p -> p.Defs.pname) properties in
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let dup kind names =
    let sorted = List.sort compare names in
    let rec go = function
      | a :: (b :: _ as rest) ->
        if a = b then emit (diag Error kind "duplicate definition of %s" a);
        go rest
      | _ -> ()
    in
    go sorted
  in
  List.iter
    (function
      | Qdl.Drop_rule name ->
        emit
          (diag Error ("drop rule " ^ name)
             "drop statements are only valid in evolution scripts applied to a running server")
      | _ -> ())
    program;
  dup "queue" queue_names;
  dup "slicing" slicing_names;
  dup "property" property_names;
  dup "rule" (List.map (fun r -> r.Qdl.rname) rules);
  (* Queue-level checks. *)
  List.iter
    (fun q ->
      let where = "queue " ^ q.Defs.qname in
      (match q.Defs.error_queue with
       | Some eq when not (List.mem eq queue_names) ->
         emit (diag Error where "unknown error queue %s" eq)
       | _ -> ());
      (* §2.1.2: reliable messaging extensions require persistence. *)
      if q.Defs.mode = Defs.Transient
         && List.mem_assoc "WS-ReliableMessaging" q.Defs.extensions
      then
        emit
          (diag Error where
             "WS-ReliableMessaging requires a persistent queue (paper §2.1.2)"))
    queues;
  (* Property checks. *)
  List.iter
    (fun p ->
      let where = "property " ^ p.Defs.pname in
      List.iter
        (fun qn ->
          if not (List.mem qn queue_names) then
            emit (diag Error where "refers to unknown queue %s" qn))
        (Defs.property_queues p))
    properties;
  (* Slicing checks. *)
  List.iter
    (fun s ->
      let where = "slicing " ^ s.Defs.sname in
      if not (List.mem s.Defs.slice_property property_names) then
        emit (diag Error where "refers to unknown property %s" s.Defs.slice_property))
    slicings;
  (* Rule checks. *)
  List.iter
    (fun r ->
      let where = "rule " ^ r.Qdl.rname in
      let on_slicing = List.mem r.Qdl.target slicing_names in
      if (not on_slicing) && not (List.mem r.Qdl.target queue_names) then
        emit (diag Error where "unknown queue or slicing %s" r.Qdl.target);
      (match r.Qdl.rule_error_queue with
       | Some eq when not (List.mem eq queue_names) ->
         emit (diag Error where "unknown error queue %s" eq)
       | _ -> ());
      (* qs:slice / qs:slicekey only on slicing rules (§3.5.2) *)
      let calls = Ast.called_functions r.Qdl.body in
      if not on_slicing then
        List.iter
          (fun f ->
            if f = "qs:slice" || f = "qs:slicekey" then
              emit
                (diag Error where
                   "%s() is only available in rules attached to slicings" f))
          calls;
      (* enqueue targets must exist *)
      List.iter
        (fun q ->
          if not (List.mem q queue_names) then
            emit (diag Error where "do enqueue into unknown queue %s" q))
        (enqueue_targets r.Qdl.body);
      (* free variables fail at runtime with certainty *)
      List.iter
        (fun v -> emit (diag Error where "undefined variable $%s" v))
        (free_variables r.Qdl.body);
      (* A rule that can produce no update is almost certainly a mistake. *)
      if not (Ast.contains_update r.Qdl.body) then
        emit (diag Warning where "rule body contains no update primitive");
      (* Statically dead rules: the condition requires element names the
         target queue's (closed) schema vocabulary can never admit — the
         compiler prunes such rules from the plan at deployment. *)
      if not on_slicing then
        match List.find_opt (fun q -> q.Defs.qname = r.Qdl.target) queues with
        | Some { Defs.schema = Some schema; _ } -> (
          let vocabulary = Prefilter.schema_vocabulary schema in
          let requirements = Prefilter.rule_requirements r.Qdl.body in
          match Prefilter.unsatisfiable vocabulary requirements with
          | Some reason ->
            emit
              (diag Warning where
                 "statically dead on queue %s: %s (rule will be pruned from the plan)"
                 r.Qdl.target reason)
          | None -> ())
        | _ -> ())
    rules;
  let diagnostics = List.rev !ds in
  { diagnostics; ok = not (List.exists (fun d -> d.severity = Error) diagnostics) }

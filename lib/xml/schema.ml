type occurrence = One | Optional | Many | Many1

type particle = { pname : string; occ : occurrence }

type content =
  | Text_only
  | Empty
  | Any
  | Mixed
  | Sequence of particle list

module Smap = Map.Make (String)

type t = content Smap.t

let empty = Smap.empty
let declare t name content = Smap.add name content t
let declared t name = Smap.find_opt name t

(* ---- textual syntax ---- *)

let tokenize src =
  let toks = ref [] in
  let n = String.length src in
  let i = ref 0 in
  let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.'
  in
  while !i < n do
    let c = src.[!i] in
    if is_space c then incr i
    else if c = '{' || c = '}' || c = ',' || c = '?' || c = '*' || c = '+' then begin
      toks := String.make 1 c :: !toks;
      incr i
    end
    else if is_word c then begin
      let start = !i in
      while !i < n && is_word src.[!i] do incr i done;
      toks := String.sub src start (!i - start) :: !toks
    end
    else begin
      toks := Printf.sprintf "!bad:%c" c :: !toks;
      incr i
    end
  done;
  List.rev !toks

let parse src =
  let rec decls t = function
    | [] -> Ok t
    | "element" :: name :: "{" :: rest ->
      let rec body acc = function
        | "}" :: rest -> Ok (List.rev acc, rest)
        | "," :: rest -> body acc rest
        | w :: rest when String.length w > 0 && w.[0] <> '!' ->
          let occ, rest =
            match rest with
            | "?" :: r -> (Optional, r)
            | "*" :: r -> (Many, r)
            | "+" :: r -> (Many1, r)
            | r -> (One, r)
          in
          body ({ pname = w; occ } :: acc) rest
        | tok :: _ -> Error ("schema: unexpected token " ^ tok)
        | [] -> Error "schema: unterminated content model"
      in
      (match body [] rest with
       | Error e -> Error e
       | Ok (particles, rest) ->
         let content =
           match particles with
           | [ { pname = "text"; occ = One } ] -> Text_only
           | [ { pname = "empty"; occ = One } ] -> Empty
           | [ { pname = "any"; occ = One } ] -> Any
           | [ { pname = "mixed"; occ = One } ] -> Mixed
           | ps -> Sequence ps
         in
         decls (Smap.add name content t) rest)
    | tok :: _ -> Error ("schema: expected 'element', found " ^ tok)
  in
  decls Smap.empty (tokenize src)

(* ---- validation ---- *)

let child_element_names tree =
  List.filter_map
    (function Tree.Element e -> Some (Name.local e.Tree.name) | _ -> None)
    (match tree with Tree.Element e -> e.children | _ -> [])

let has_nonspace_text tree =
  match tree with
  | Tree.Element e ->
    List.exists
      (function
        | Tree.Text s -> String.exists (fun c -> not (List.mem c [ ' '; '\t'; '\n'; '\r' ])) s
        | _ -> false)
      e.children
  | _ -> false

(* Greedy matching of a child-name list against a particle sequence.
   Particles are matched in order; [*], [+] consume greedily. Greedy
   matching is exact here because consecutive particles in our content
   models never share a name. *)
let match_sequence particles names =
  let rec go ps names =
    match ps with
    | [] -> if names = [] then Ok () else Error ("unexpected element <" ^ List.hd names ^ ">")
    | { pname; occ } :: ps' ->
      let rec eat n names =
        match names with
        | x :: rest when x = pname -> eat (n + 1) rest
        | _ -> (n, names)
      in
      let count, rest = eat 0 names in
      let min_c, max_c =
        match occ with
        | One -> (1, 1)
        | Optional -> (0, 1)
        | Many -> (0, max_int)
        | Many1 -> (1, max_int)
      in
      if count < min_c then
        Error (Printf.sprintf "missing required element <%s>" pname)
      else if count > max_c then
        Error (Printf.sprintf "too many <%s> elements (%d)" pname count)
      else go ps' rest
  in
  go particles names

let rec validate_tree t tree =
  match tree with
  | Tree.Text _ | Tree.Comment _ | Tree.Pi _ -> Ok ()
  | Tree.Element e ->
    let name = Name.local e.Tree.name in
    let local_check =
      match Smap.find_opt name t with
      | None | Some Any | Some Mixed -> Ok ()
      | Some Empty ->
        if e.children = [] then Ok ()
        else Error (Printf.sprintf "<%s> must be empty" name)
      | Some Text_only ->
        if child_element_names tree = [] then Ok ()
        else Error (Printf.sprintf "<%s> must contain only text" name)
      | Some (Sequence ps) ->
        if has_nonspace_text tree then
          Error (Printf.sprintf "<%s> may not contain text" name)
        else begin
          match match_sequence ps (child_element_names tree) with
          | Ok () -> Ok ()
          | Error msg -> Error (Printf.sprintf "in <%s>: %s" name msg)
        end
    in
    (match local_check with
     | Error _ as e -> e
     | Ok () ->
       List.fold_left
         (fun acc c -> match acc with Error _ -> acc | Ok () -> validate_tree t c)
         (Ok ()) e.children)

let validate t tree = validate_tree t tree

let root_allowed t roots tree =
  match tree with
  | Tree.Element e ->
    let name = Name.local e.Tree.name in
    if roots <> [] && not (List.mem name roots) then
      Error (Printf.sprintf "root element <%s> not allowed; expected one of: %s"
               name (String.concat ", " roots))
    else validate t tree
  | _ -> Error "document root must be an element"

let declared_names t = List.map fst (Smap.bindings t)

(* ---- sample-message generation ----

   Walk a content model and synthesize an instance document — the
   basex-utils get-example-xml.xq idea: the deployed schema, not a
   hand-written corpus, determines the message shapes a workload sends.
   [vary] perturbs repetition counts and leaf values so a stream of
   generated messages is not byte-identical; generation is deterministic
   in (schema, name, vary). *)

let contains_word s sub =
  let s = String.lowercase_ascii s and n = String.length sub in
  let len = String.length s in
  let rec go i =
    i + n <= len && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let leaf_text name vary =
  if contains_word name "id" then string_of_int (100000 + (vary * 7919 mod 899999))
  else if
    contains_word name "count" || contains_word name "qty"
    || contains_word name "quantity" || contains_word name "priority"
  then string_of_int (1 + (vary mod 9))
  else if contains_word name "price" || contains_word name "amount"
          || contains_word name "total" then
    Printf.sprintf "%d.%02d" (10 + (vary mod 90)) (vary mod 100)
  else if contains_word name "time" || contains_word name "date"
          || contains_word name "deadline" then
    string_of_int (1 + (vary mod 120))
  else Printf.sprintf "%s-%d" name vary

let example ?(vary = 0) ?(max_depth = 8) t name =
  match Smap.find_opt name t with
  | None -> None
  | Some _ ->
    let rec build depth name vary =
      match if depth <= 0 then None else Some (Smap.find_opt name t) with
      | None | Some (Some Empty) -> Tree.elem name []
      | Some (None | Some (Any | Text_only | Mixed)) ->
        Tree.elem name [ Tree.text (leaf_text name vary) ]
      | Some (Some (Sequence ps)) ->
        Tree.elem name
          (List.concat
             (List.mapi
                (fun i { pname; occ } ->
                  let v = vary + i in
                  let n =
                    match occ with
                    | One -> 1
                    | Optional -> if v mod 3 = 2 then 0 else 1
                    | Many -> v mod 3  (* 0, 1 or 2 repetitions *)
                    | Many1 -> 1 + (v mod 2)
                  in
                  List.init n (fun j -> build (depth - 1) pname (v + (j * 13))))
                ps))
    in
    Some (build max_depth name vary)

(** A lightweight structural schema language for queue message validation.

    The paper attaches optional XML Schema definitions to queues (§2.1.1)
    and classifies schema-incompatible enqueues as message-related errors
    (§3.6). Full XML Schema is out of scope; this module implements a
    DTD-like structural subset that covers the message shapes used in the
    paper's scenarios.

    Textual syntax, one declaration per [element] keyword:

    {v
      element offerRequest { requestID, customerID, items }
      element items { item* }
      element item { text }
      element note { mixed }
      element flag { empty }
    v}

    Content models are comma-separated particles; each particle is a child
    element name with an optional occurrence indicator ([?] optional,
    [*] zero-or-more, [+] one-or-more), or one of the keywords [text]
    (text-only content), [mixed] (anything), [empty], [any]. Elements that
    appear in a document but have no declaration are treated as open
    ([any]). *)

type occurrence = One | Optional | Many | Many1

type particle = { pname : string; occ : occurrence }

type content =
  | Text_only
  | Empty
  | Any
  | Mixed
  | Sequence of particle list

type t

val empty : t
(** The schema with no declarations; every document validates. *)

val parse : string -> (t, string) result
(** Parse the textual syntax above. *)

val declare : t -> string -> content -> t
(** Programmatic declaration: [declare s name content]. *)

val declared : t -> string -> content option

val validate : t -> Tree.tree -> (unit, string) result
(** [validate s tree] checks [tree] and all descendants against the
    declarations in [s]. The error message names the offending element and
    what was expected. *)

val root_allowed : t -> string list -> Tree.tree -> (unit, string) result
(** Additionally restrict the root element's local name to the given list
    (empty list = no restriction). *)

val declared_names : t -> string list
(** All element names with a declaration, sorted. *)

val example : ?vary:int -> ?max_depth:int -> t -> string -> Tree.tree option
(** [example t name] synthesizes an instance document for the declared
    element [name] by walking its content model — sequences get one
    subtree per particle (repetition counts perturbed by [vary]),
    text-only elements get a plausible leaf value derived from the element
    name and [vary], undeclared children become text leaves. Generation is
    deterministic in [(t, name, vary)] and the result validates against
    [t] for non-recursive schemas (recursion is cut at [max_depth],
    default 8). [None] when [name] has no declaration. *)

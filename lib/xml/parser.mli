(** A namespace-aware, non-validating XML parser.

    Supports elements, attributes, character data, CDATA sections, comments,
    processing instructions, numeric and predefined entity references, an
    (ignored) document type declaration and the XML declaration. Namespace
    prefixes, including [xmlns] / [xmlns:p] declarations and the [xml]
    prefix, are resolved to URIs during parsing; prefixes themselves are not
    retained. *)

exception Parse_error of { line : int; col : int; msg : string }

val parse : ?preserve_space:bool -> string -> Tree.tree
(** [parse s] parses a complete XML document (or a bare element) and returns
    its root element. Whitespace-only text nodes between elements are
    dropped unless [preserve_space] is [true] (default [false]).

    @raise Parse_error on malformed input. *)

val parse_many : ?preserve_space:bool -> string -> Tree.tree list
(** [parse_many s] parses a sequence of concatenated XML documents
    (optionally separated by whitespace, comments or PIs) sharing one
    parser state — the batch-ingress form of {!parse}. At least one
    document is required.

    @raise Parse_error on malformed input. *)

val parse_document : ?preserve_space:bool -> string -> Tree.document
(** Like {!parse} but wraps the result as a fresh {!Tree.document}. *)

val parse_result : ?preserve_space:bool -> string -> (Tree.tree, string) result
(** Exception-free variant of {!parse}; the error string includes the
    position. *)

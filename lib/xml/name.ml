type t = { uri : string; local : string }

let make ?(uri = "") local = { uri; local }

(* Element and attribute names recur across every message a document
   parses; hash-consing them makes each distinct (uri, local) pair one
   shared allocation instead of one per occurrence. The table is bounded:
   past the cap, names fall back to fresh allocation (hostile input with
   unbounded distinct names cannot pin memory). The table is global and
   worker domains parse messages concurrently, so lookups and inserts are
   serialized under a mutex. *)
let interned : (string * string, t) Hashtbl.t = Hashtbl.create 256
let interned_mu = Mutex.create ()
let intern_cap = 4096

(* Per-domain read-through cache in front of the shared table: steady
   state interning (every element and attribute name of every message)
   touches only domain-local state — no mutex, no contention. Misses
   fill from the global table so all domains still share one value per
   name. *)
let local_cache : (string * string, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let intern ?(uri = "") local =
  let cache = Domain.DLS.get local_cache in
  let key = (uri, local) in
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
    let t =
      Mutex.protect interned_mu @@ fun () ->
      match Hashtbl.find_opt interned key with
      | Some t -> t
      | None ->
        let t = { uri; local } in
        if Hashtbl.length interned < intern_cap then Hashtbl.add interned key t;
        t
    in
    if Hashtbl.length cache < intern_cap then Hashtbl.add cache key t;
    t
let uri t = t.uri
let local t = t.local
let equal a b = String.equal a.uri b.uri && String.equal a.local b.local

let compare a b =
  let c = String.compare a.uri b.uri in
  if c <> 0 then c else String.compare a.local b.local

let hash t = Hashtbl.hash (t.uri, t.local)

let to_string t =
  if t.uri = "" then t.local else Printf.sprintf "{%s}%s" t.uri t.local

let of_string s =
  if String.length s > 0 && s.[0] = '{' then
    match String.index_opt s '}' with
    | Some i ->
      { uri = String.sub s 1 (i - 1);
        local = String.sub s (i + 1) (String.length s - i - 1) }
    | None -> { uri = ""; local = s }
  else { uri = ""; local = s }

let pp fmt t = Format.pp_print_string fmt (to_string t)

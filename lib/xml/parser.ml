exception Parse_error of { line : int; col : int; msg : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  preserve_space : bool;
  scratch : Buffer.t;
      (* shared accumulator for attribute values that contain entity
         references; attributes never nest, so one buffer suffices *)
}

let xml_ns = "http://www.w3.org/XML/1998/namespace"

let error st msg = raise (Parse_error { line = st.line; col = st.col; msg })
let at_end st = st.pos >= String.length st.src
let peek st = if at_end st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (at_end st) then begin
    (if st.src.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st = c then advance st
  else error st (Printf.sprintf "expected %C, found %C" c (peek st))

let expect_string st s =
  String.iter (fun c -> expect st c) s

(* Allocation-free prefix test: this runs once per content character in
   [parse_content], so the obvious [String.sub] formulation dominated
   the parser's allocation profile. *)
let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src
  &&
  let rec eq i =
    i = n || (String.unsafe_get st.src (st.pos + i) = String.unsafe_get s i && eq (i + 1))
  in
  eq 0

let skip_string st s =
  if looking_at st s then begin
    for _ = 1 to String.length s do advance st done;
    true
  end
  else false

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (at_end st)) && is_space (peek st) do advance st done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

(* A raw (possibly prefixed) name, before namespace resolution. *)
let read_raw_name st =
  if not (is_name_start (peek st)) then
    error st (Printf.sprintf "expected a name, found %C" (peek st));
  let start = st.pos in
  while (not (at_end st)) && (is_name_char (peek st) || peek st = ':') do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let split_prefix raw =
  match String.index_opt raw ':' with
  | Some i ->
    ( String.sub raw 0 i,
      String.sub raw (i + 1) (String.length raw - i - 1) )
  | None -> ("", raw)

(* UTF-8 encode a code point for numeric character references. *)
let utf8_encode buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let read_entity st buf =
  expect st '&';
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    while peek st <> ';' && not (at_end st) do advance st done;
    let digits = String.sub st.src start (st.pos - start) in
    expect st ';';
    let cp =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with _ -> error st ("bad character reference: " ^ digits)
    in
    utf8_encode buf cp
  end
  else begin
    let name = read_raw_name st in
    expect st ';';
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "quot" -> Buffer.add_char buf '"'
    | "apos" -> Buffer.add_char buf '\''
    | _ -> error st ("unknown entity: &" ^ name ^ ";")
  end

let read_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected attribute value";
  advance st;
  (* Fast path: scan to the closing quote and slice, one allocation.
     Only values containing an entity reference fall back to the shared
     scratch buffer. *)
  let start = st.pos in
  while (not (at_end st)) && peek st <> quote && peek st <> '&' do
    advance st
  done;
  if at_end st then error st "unterminated attribute value";
  if peek st = quote then begin
    let v = String.sub st.src start (st.pos - start) in
    advance st;
    v
  end
  else begin
    let buf = st.scratch in
    Buffer.clear buf;
    Buffer.add_substring buf st.src start (st.pos - start);
    let rec go () =
      if at_end st then error st "unterminated attribute value"
      else if peek st = quote then advance st
      else if peek st = '&' then begin
        read_entity st buf;
        go ()
      end
      else begin
        let start = st.pos in
        while
          (not (at_end st)) && peek st <> quote && peek st <> '&'
        do
          advance st
        done;
        Buffer.add_substring buf st.src start (st.pos - start);
        go ()
      end
    in
    go ();
    Buffer.contents buf
  end

(* Namespace environment: prefix -> uri bindings; innermost first. *)
let resolve_elem_name st env raw =
  let prefix, local = split_prefix raw in
  match List.assoc_opt prefix env with
  | Some uri -> Name.intern ~uri local
  | None ->
    if prefix = "" then Name.intern local
    else error st ("unbound namespace prefix: " ^ prefix)

let resolve_attr_name st env raw =
  let prefix, local = split_prefix raw in
  (* Unprefixed attributes are in no namespace, regardless of defaults. *)
  if prefix = "" then Name.intern local
  else
    match List.assoc_opt prefix env with
    | Some uri -> Name.intern ~uri local
    | None -> error st ("unbound namespace prefix: " ^ prefix)

let skip_comment st =
  expect_string st "<!--";
  let start = st.pos in
  let rec go () =
    if at_end st then error st "unterminated comment"
    else if looking_at st "-->" then begin
      let s = String.sub st.src start (st.pos - start) in
      ignore (skip_string st "-->");
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let read_pi st =
  expect_string st "<?";
  let target = read_raw_name st in
  skip_space st;
  let start = st.pos in
  let rec go () =
    if at_end st then error st "unterminated processing instruction"
    else if looking_at st "?>" then begin
      let s = String.sub st.src start (st.pos - start) in
      ignore (skip_string st "?>");
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  let data = go () in
  (target, data)

let read_cdata st =
  expect_string st "<![CDATA[";
  let start = st.pos in
  let rec go () =
    if at_end st then error st "unterminated CDATA section"
    else if looking_at st "]]>" then begin
      let s = String.sub st.src start (st.pos - start) in
      ignore (skip_string st "]]>");
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let skip_doctype st =
  expect_string st "<!DOCTYPE";
  let depth = ref 1 in
  while !depth > 0 && not (at_end st) do
    (match peek st with
     | '<' -> incr depth
     | '>' -> decr depth
     | _ -> ());
    advance st
  done

let is_all_space s =
  let ok = ref true in
  String.iter (fun c -> if not (is_space c) then ok := false) s;
  !ok

let rec parse_element st env =
  expect st '<';
  let raw = read_raw_name st in
  (* First pass over attributes to collect namespace declarations. *)
  let raw_attrs = ref [] in
  let env = ref env in
  let rec attrs () =
    skip_space st;
    match peek st with
    | '>' | '/' -> ()
    | _ ->
      let araw = read_raw_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let v = read_attr_value st in
      (match split_prefix araw with
       | "", "xmlns" -> env := ("", v) :: !env
       | "xmlns", p -> env := (p, v) :: !env
       | _ -> raw_attrs := (araw, v) :: !raw_attrs);
      attrs ()
  in
  attrs ();
  let env = ("xml", xml_ns) :: !env in
  let name = resolve_elem_name st env raw in
  let attrs =
    List.rev_map
      (fun (araw, v) ->
        { Tree.attr_name = resolve_attr_name st env araw; attr_value = v })
      !raw_attrs
  in
  if skip_string st "/>" then Tree.Element { name; attrs; children = [] }
  else begin
    expect st '>';
    let children = parse_content st env in
    expect_string st "</";
    let close = read_raw_name st in
    if close <> raw then
      error st (Printf.sprintf "mismatched end tag: expected </%s>, got </%s>" raw close);
    skip_space st;
    expect st '>';
    Tree.Element { name; attrs; children }
  end

and parse_content st env =
  let acc = ref [] in
  (* Text accumulation avoids a per-element buffer: the common case — one
     contiguous run with no entities or CDATA — is kept as a single
     zero-copy slice in [pending]; only a second piece (or an entity)
     promotes to a buffer. *)
  let pending = ref "" in
  let buf = ref None in
  let add_piece s =
    match !buf with
    | Some b -> Buffer.add_string b s
    | None ->
      if !pending = "" then pending := s
      else begin
        let b = Buffer.create (String.length !pending + String.length s + 16) in
        Buffer.add_string b !pending;
        Buffer.add_string b s;
        pending := "";
        buf := Some b
      end
  in
  let promote () =
    match !buf with
    | Some b -> b
    | None ->
      let b = Buffer.create 32 in
      Buffer.add_string b !pending;
      pending := "";
      buf := Some b;
      b
  in
  let flush_text () =
    let s =
      match !buf with
      | Some b ->
        let s = Buffer.contents b in
        buf := None;
        s
      | None ->
        let s = !pending in
        pending := "";
        s
    in
    if s <> "" && (st.preserve_space || not (is_all_space s)) then
      acc := Tree.Text s :: !acc
  in
  let rec go () =
    if at_end st then error st "unexpected end of input inside element"
    else if looking_at st "</" then flush_text ()
    else if looking_at st "<![CDATA[" then begin
      add_piece (read_cdata st);
      go ()
    end
    else if looking_at st "<!--" then begin
      flush_text ();
      acc := Tree.Comment (skip_comment st) :: !acc;
      go ()
    end
    else if looking_at st "<?" then begin
      flush_text ();
      let target, data = read_pi st in
      acc := Tree.Pi { target; data } :: !acc;
      go ()
    end
    else if peek st = '<' then begin
      flush_text ();
      acc := parse_element st env :: !acc;
      go ()
    end
    else if peek st = '&' then begin
      read_entity st (promote ());
      go ()
    end
    else begin
      let start = st.pos in
      while
        (not (at_end st)) && peek st <> '<' && peek st <> '&'
      do
        advance st
      done;
      add_piece (String.sub st.src start (st.pos - start));
      go ()
    end
  in
  go ();
  List.rev !acc

let parse_prolog st =
  skip_space st;
  if looking_at st "<?xml" && (is_space (st.src.[st.pos + 5]) || peek2 st = '?')
  then ignore (read_pi st);
  let rec misc () =
    skip_space st;
    if looking_at st "<!--" then begin
      ignore (skip_comment st);
      misc ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_doctype st;
      misc ()
    end
    else if looking_at st "<?" && not (looking_at st "<?xml") then begin
      ignore (read_pi st);
      misc ()
    end
  in
  misc ()

let make_state preserve_space src =
  { src; pos = 0; line = 1; col = 1; preserve_space; scratch = Buffer.create 64 }

let parse ?(preserve_space = false) src =
  let st = make_state preserve_space src in
  parse_prolog st;
  if peek st <> '<' then error st "expected document element";
  let root = parse_element st [] in
  skip_space st;
  (* Allow trailing comments / PIs after the root. *)
  let rec trailer () =
    skip_space st;
    if looking_at st "<!--" then begin
      ignore (skip_comment st);
      trailer ()
    end
    else if looking_at st "<?" then begin
      ignore (read_pi st);
      trailer ()
    end
    else if not (at_end st) then error st "content after document element"
  in
  trailer ();
  root

(* Batch form for the ingress path: a body holding several concatenated
   documents is parsed in one pass with one shared parser state, so
   buffer setup is amortized across the batch. *)
let parse_many ?(preserve_space = false) src =
  let st = make_state preserve_space src in
  parse_prolog st;
  if peek st <> '<' then error st "expected document element";
  let docs = ref [] in
  let rec misc () =
    skip_space st;
    if looking_at st "<!--" then begin
      ignore (skip_comment st);
      misc ()
    end
    else if looking_at st "<?" then begin
      ignore (read_pi st);
      misc ()
    end
  in
  let rec go () =
    docs := parse_element st [] :: !docs;
    misc ();
    if not (at_end st) then
      if peek st = '<' then go () else error st "content after document element"
  in
  go ();
  List.rev !docs

let parse_document ?preserve_space src = Tree.doc (parse ?preserve_space src)

let parse_result ?preserve_space src =
  match parse ?preserve_space src with
  | t -> Ok t
  | exception Parse_error { line; col; msg } ->
    Error (Printf.sprintf "XML parse error at %d:%d: %s" line col msg)

(* Compact binary XML: tokenized pre-order stream with an interned-name
   dictionary and fixed-width subtree lengths. See bxml.mli for the
   format layout. *)

exception Decode_error of string

let fail msg = raise (Decode_error msg)
let failf fmt = Printf.ksprintf fail fmt
let version = '\x01'
let magic = Printf.sprintf "\x00BX%c" version

(* Flag bits in the per-name header byte. *)
let flag_element = 0x01
let flag_has_uri = 0x02

let is_binary s =
  String.length s >= 3 && s.[0] = '\x00' && s.[1] = 'B' && s.[2] = 'X'

(* ------------------------------------------------------------------ *)
(* Encoder: per-domain scratch arena                                   *)
(* ------------------------------------------------------------------ *)

(* The token stream is built in a growable [Bytes.t] rather than a
   [Buffer.t] because element content lengths are backpatched: we
   reserve 4 bytes at the element header, encode the children, then
   write the length into the reservation. *)
type enc = {
  mutable tok : Bytes.t;
  mutable tlen : int;
  out : Buffer.t;
  tbl : (Name.t, int) Hashtbl.t;
  mutable names : Name.t array;
  mutable elem_used : Bytes.t; (* one flag byte per interned name *)
  mutable ncount : int;
}

let initial_tok = 1024
let scratch_cap = 1 lsl 20 (* shrink arenas bigger than 1 MiB after use *)
let no_name = Name.make ""

let make_enc () =
  {
    tok = Bytes.create initial_tok;
    tlen = 0;
    out = Buffer.create 256;
    tbl = Hashtbl.create 64;
    names = Array.make 16 no_name;
    elem_used = Bytes.make 16 '\x00';
    ncount = 0;
  }

let scratch_key = Domain.DLS.new_key make_enc

let reset e =
  e.tlen <- 0;
  Buffer.clear e.out;
  if e.ncount > 0 then begin
    Hashtbl.reset e.tbl;
    Bytes.fill e.elem_used 0 e.ncount '\x00';
    e.ncount <- 0
  end

(* Release oversized scratch after an unusually large message so one
   outlier doesn't pin memory for the domain's lifetime. *)
let shrink e =
  if Bytes.length e.tok > scratch_cap then e.tok <- Bytes.create initial_tok;
  if Buffer.length e.out > scratch_cap then Buffer.reset e.out

let ensure e n =
  if e.tlen + n > Bytes.length e.tok then begin
    let cap = ref (Bytes.length e.tok * 2) in
    while e.tlen + n > !cap do
      cap := !cap * 2
    done;
    let tok = Bytes.create !cap in
    Bytes.blit e.tok 0 tok 0 e.tlen;
    e.tok <- tok
  end

let put_u8 e b =
  ensure e 1;
  Bytes.unsafe_set e.tok e.tlen (Char.unsafe_chr (b land 0xff));
  e.tlen <- e.tlen + 1

let rec put_varint e v =
  if v < 0x80 then put_u8 e v
  else begin
    put_u8 e (0x80 lor (v land 0x7f));
    put_varint e (v lsr 7)
  end

let put_string e s =
  let n = String.length s in
  put_varint e n;
  ensure e n;
  Bytes.blit_string s 0 e.tok e.tlen n;
  e.tlen <- e.tlen + n

let reserve_u32 e =
  ensure e 4;
  let at = e.tlen in
  e.tlen <- e.tlen + 4;
  at

let patch_u32 e at v =
  if v > 0xFFFFFFFF then fail "subtree too large for u32 content length";
  Bytes.set_int32_le e.tok at (Int32.of_int v)

let name_id e ~elem name =
  let idx =
    match Hashtbl.find_opt e.tbl name with
    | Some i -> i
    | None ->
      let i = e.ncount in
      if i = Array.length e.names then begin
        let names = Array.make (2 * i) no_name in
        Array.blit e.names 0 names 0 i;
        e.names <- names;
        let elem_used = Bytes.make (2 * i) '\x00' in
        Bytes.blit e.elem_used 0 elem_used 0 i;
        e.elem_used <- elem_used
      end;
      e.names.(i) <- name;
      Hashtbl.add e.tbl name i;
      e.ncount <- i + 1;
      i
  in
  if elem then Bytes.set e.elem_used idx '\x01';
  idx

let tok_element = 0x01
let tok_text = 0x02
let tok_comment = 0x03
let tok_pi = 0x04

let rec encode_tree e t =
  match t with
  | Tree.Text s ->
    put_u8 e tok_text;
    put_string e s
  | Tree.Comment s ->
    put_u8 e tok_comment;
    put_string e s
  | Tree.Pi { target; data } ->
    put_u8 e tok_pi;
    put_string e target;
    put_string e data
  | Tree.Element { name; attrs; children } ->
    put_u8 e tok_element;
    put_varint e (name_id e ~elem:true name);
    put_varint e (List.length attrs);
    List.iter
      (fun { Tree.attr_name; attr_value } ->
        put_varint e (name_id e ~elem:false attr_name);
        put_string e attr_value)
      attrs;
    let at = reserve_u32 e in
    let start = e.tlen in
    List.iter (encode_tree e) children;
    patch_u32 e at (e.tlen - start)

let buf_varint b v =
  let rec go v =
    if v < 0x80 then Buffer.add_char b (Char.unsafe_chr v)
    else begin
      Buffer.add_char b (Char.unsafe_chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let encode t =
  let e = Domain.DLS.get scratch_key in
  reset e;
  encode_tree e t;
  Buffer.add_string e.out magic;
  buf_varint e.out e.ncount;
  for i = 0 to e.ncount - 1 do
    let n = e.names.(i) in
    let local = Name.local n and uri = Name.uri n in
    let flags =
      (if Bytes.get e.elem_used i <> '\x00' then flag_element else 0)
      lor if uri <> "" then flag_has_uri else 0
    in
    Buffer.add_char e.out (Char.unsafe_chr flags);
    buf_varint e.out (String.length local);
    Buffer.add_string e.out local;
    if uri <> "" then begin
      buf_varint e.out (String.length uri);
      Buffer.add_string e.out uri
    end
  done;
  buf_varint e.out e.tlen;
  Buffer.add_subbytes e.out e.tok 0 e.tlen;
  let s = Buffer.contents e.out in
  shrink e;
  s

(* ------------------------------------------------------------------ *)
(* Decoder                                                             *)
(* ------------------------------------------------------------------ *)

type rd = { s : string; mutable pos : int }

let u8 r limit =
  if r.pos >= limit then fail "truncated payload";
  let b = Char.code (String.unsafe_get r.s r.pos) in
  r.pos <- r.pos + 1;
  b

let varint r limit =
  let rec go shift acc =
    if shift > 56 then fail "varint too long";
    let b = u8 r limit in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then acc else go (shift + 7) acc
  in
  go 0 0

let read_str r limit =
  let n = varint r limit in
  if n < 0 || n > limit - r.pos then fail "string length out of bounds";
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let skip_str r limit =
  let n = varint r limit in
  if n < 0 || n > limit - r.pos then fail "string length out of bounds";
  r.pos <- r.pos + n

let u32 r limit =
  if limit - r.pos < 4 then fail "truncated u32";
  let v = Int32.to_int (String.get_int32_le r.s r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let check_magic s =
  if not (is_binary s) then fail "not a binary XML payload";
  if String.length s < 4 then fail "truncated magic";
  if s.[3] <> version then failf "unsupported binary XML version %d" (Char.code s.[3])

(* Header pass shared by the decoders: [on_name flags local uri_opt]. *)
let read_header r limit ~keep on_name =
  let count = varint r limit in
  if count > limit - r.pos then fail "name count out of bounds";
  for i = 0 to count - 1 do
    let flags = u8 r limit in
    if keep flags then begin
      let local = read_str r limit in
      let uri = if flags land flag_has_uri <> 0 then Some (read_str r limit) else None in
      on_name i flags local uri
    end
    else begin
      skip_str r limit;
      if flags land flag_has_uri <> 0 then skip_str r limit
    end
  done;
  count

let body_limit r =
  let total = String.length r.s in
  let blen = varint r total in
  if blen > total - r.pos then fail "truncated token stream";
  if r.pos + blen <> total then fail "trailing bytes after token stream";
  total

let name_table r limit =
  let names = ref [||] in
  let n =
    read_header r limit ~keep:(fun _ -> true) (fun i _ local uri ->
        if i = 0 then names := Array.make (max 1 16) no_name;
        if i >= Array.length !names then begin
          let bigger = Array.make (2 * Array.length !names) no_name in
          Array.blit !names 0 bigger 0 (Array.length !names);
          names := bigger
        end;
        !names.(i) <- (match uri with Some uri -> Name.intern ~uri local | None -> Name.intern local))
  in
  (!names, n)

let name_at names n idx =
  if idx < 0 || idx >= n then failf "name index %d out of range" idx;
  names.(idx)

let rec decode_seq r names n limit acc =
  if r.pos >= limit then List.rev acc
  else begin
    let t = decode_tree r names n limit in
    decode_seq r names n limit (t :: acc)
  end

and decode_tree r names n limit =
  match u8 r limit with
  | 0x01 ->
    let name = name_at names n (varint r limit) in
    let nattrs = varint r limit in
    if nattrs > limit - r.pos then fail "attribute count out of bounds";
    let attrs = decode_attrs r names n limit nattrs [] in
    let clen = u32 r limit in
    let cend = r.pos + clen in
    if cend > limit then fail "subtree length out of bounds";
    let children = decode_seq r names n cend [] in
    if r.pos <> cend then fail "subtree underrun";
    Tree.Element { name; attrs; children }
  | 0x02 -> Tree.Text (read_str r limit)
  | 0x03 -> Tree.Comment (read_str r limit)
  | 0x04 ->
    let target = read_str r limit in
    let data = read_str r limit in
    Tree.Pi { target; data }
  | t -> failf "unknown token 0x%02x" t

and decode_attrs r names n limit k acc =
  if k = 0 then List.rev acc
  else begin
    let attr_name = name_at names n (varint r limit) in
    let attr_value = read_str r limit in
    decode_attrs r names n limit (k - 1) ({ Tree.attr_name; attr_value } :: acc)
  end

let decode s =
  check_magic s;
  let r = { s; pos = 4 } in
  let names, n = name_table r (String.length s) in
  let limit = body_limit r in
  let t = decode_tree r names n limit in
  if r.pos <> limit then fail "trailing tokens after root";
  t

let decode_any s = if is_binary s then decode s else Parser.parse s

(* ------------------------------------------------------------------ *)
(* Streaming accessors: no tree construction                           *)
(* ------------------------------------------------------------------ *)

let synopsis s =
  check_magic s;
  let r = { s; pos = 4 } in
  let acc = ref [] in
  ignore
    (read_header r (String.length s)
       ~keep:(fun flags -> flags land flag_element <> 0)
       (fun _ _ local _ -> acc := local :: !acc));
  List.rev !acc

(* Header pass that keeps only local names (no interning): the table an
   element-token scan needs. *)
let local_table r limit =
  let locals = ref [||] in
  let n =
    read_header r limit ~keep:(fun _ -> true) (fun i _ local _ ->
        if i = 0 then locals := Array.make 16 "";
        if i >= Array.length !locals then begin
          let bigger = Array.make (2 * Array.length !locals) "" in
          Array.blit !locals 0 bigger 0 (Array.length !locals);
          locals := bigger
        end;
        !locals.(i) <- local)
  in
  (!locals, n)

(* The token stream is self-describing pre-order: a full scan just reads
   tokens linearly, never recursing — content lengths are only needed
   to *skip*. *)
let iter_names s f =
  check_magic s;
  let r = { s; pos = 4 } in
  let locals, n = local_table r (String.length s) in
  let limit = body_limit r in
  while r.pos < limit do
    match u8 r limit with
    | 0x01 ->
      let idx = varint r limit in
      if idx >= n then failf "name index %d out of range" idx;
      f locals.(idx);
      let nattrs = varint r limit in
      if nattrs > limit - r.pos then fail "attribute count out of bounds";
      for _ = 1 to nattrs do
        let aidx = varint r limit in
        if aidx >= n then failf "name index %d out of range" aidx;
        skip_str r limit
      done;
      ignore (u32 r limit)
    | 0x02 | 0x03 -> skip_str r limit
    | 0x04 ->
      skip_str r limit;
      skip_str r limit
    | t -> failf "unknown token 0x%02x" t
  done

(* Skip one attribute block + the subtree of the element whose tag byte
   was just consumed. *)
let skip_element_after_tag r n limit =
  let idx = varint r limit in
  if idx >= n then failf "name index %d out of range" idx;
  let nattrs = varint r limit in
  if nattrs > limit - r.pos then fail "attribute count out of bounds";
  for _ = 1 to nattrs do
    let aidx = varint r limit in
    if aidx >= n then failf "name index %d out of range" aidx;
    skip_str r limit
  done;
  let clen = u32 r limit in
  if clen > limit - r.pos then fail "subtree length out of bounds";
  idx, clen

let root_children s =
  check_magic s;
  let r = { s; pos = 4 } in
  let locals, n = local_table r (String.length s) in
  let limit = body_limit r in
  if u8 r limit <> tok_element then fail "root token is not an element";
  let _, clen = skip_element_after_tag r n limit in
  let cend = r.pos + clen in
  let acc = ref [] in
  while r.pos < cend do
    match u8 r cend with
    | 0x01 ->
      (* O(1) child skip: the content length jumps the whole subtree. *)
      let idx, clen = skip_element_after_tag r n cend in
      acc := locals.(idx) :: !acc;
      r.pos <- r.pos + clen
    | 0x02 | 0x03 -> skip_str r cend
    | 0x04 ->
      skip_str r cend;
      skip_str r cend
    | t -> failf "unknown token 0x%02x" t
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let check s =
  match
    check_magic s;
    let r = { s; pos = 4 } in
    let _, n = local_table r (String.length s) in
    let limit = body_limit r in
    (* Walk every token once, tracking the stack of enclosing subtree
       end offsets so lengths are checked to nest exactly. *)
    let stack = ref [] in
    let roots = ref 0 in
    while r.pos < limit do
      if !stack = [] then incr roots;
      (match u8 r limit with
      | 0x01 ->
        let _, clen = skip_element_after_tag r n limit in
        let cend = r.pos + clen in
        let enclosing = match !stack with e :: _ -> e | [] -> limit in
        if cend > enclosing then fail "subtree length out of bounds";
        if clen > 0 then stack := cend :: !stack
      | 0x02 | 0x03 -> skip_str r limit
      | 0x04 ->
        skip_str r limit;
        skip_str r limit
      | t -> failf "unknown token 0x%02x" t);
      let rec pop () =
        match !stack with
        | e :: rest when r.pos = e ->
          stack := rest;
          pop ()
        | e :: _ when r.pos > e -> fail "token overruns enclosing subtree"
        | _ -> ()
      in
      pop ()
    done;
    if !stack <> [] then fail "truncated subtree";
    if !roots <> 1 then failf "expected one root token, found %d" !roots
  with
  | () -> Ok ()
  | exception Decode_error msg -> Error msg

let validate s = match check s with Ok () -> true | Error _ -> false

(** Compact binary XML encoding — the stored payload representation.

    A [Bxml] payload is a self-contained byte string:

    {v
    magic   4 bytes   0x00 'B' 'X' version(0x01)
    header  varint name_count, then per name:
              flag byte   bit0 = used as an element name
                          bit1 = has a namespace URI
              varint len, local bytes
              [varint len, uri bytes]        (only when bit1 is set)
    body    varint byte length, then a pre-order token stream:
              0x01 element: varint name_idx, varint attr_count,
                            attr_count x (varint name_idx,
                                          varint len, value bytes),
                            u32-LE content length, then the children's
                            tokens (exactly that many bytes)
              0x02 text:    varint len, bytes
              0x03 comment: varint len, bytes
              0x04 pi:      varint len, target bytes,
                            varint len, data bytes
    v}

    The design gives three cheap operations that never build a tree:
    {!synopsis} reads only the header (the element-name set is computed
    once, at encode time); {!iter_names} is a single linear SAX-style
    pass over the tokens; and the fixed-width content length lets a
    scanner skip a whole subtree in O(1) ({!root_children}).

    The first magic byte is [0x00], which can never begin a textual XML
    document, so {!is_binary} distinguishes the two stored formats and
    {!decode_any} transparently accepts legacy text payloads.

    Encoding reuses a per-domain scratch arena (token buffer, name
    table, output buffer), so steady-state encoding allocates only the
    result string. *)

exception Decode_error of string

val magic : string
(** The 4-byte format prefix, version byte included. *)

val is_binary : string -> bool
(** [is_binary s] is true iff [s] starts with the binary magic (any
    version). Textual XML payloads always answer [false]. *)

val encode : Tree.tree -> string
(** Encode a tree. The per-domain scratch arena is reused across calls;
    only the returned string is freshly allocated. *)

val decode : string -> Tree.tree
(** Decode a binary payload. Names are resolved through {!Name.intern};
    text contents borrow nothing (OCaml strings are immutable, so
    substrings are copies, but no intermediate tokens are allocated).

    @raise Decode_error on a payload that is not well-formed binary XML. *)

val decode_any : string -> Tree.tree
(** [decode_any s] decodes [s] as binary XML when {!is_binary}, and
    otherwise parses it as textual XML — the compatibility seam that
    lets stores written before the binary format replay unchanged.

    @raise Decode_error on corrupt binary input.
    @raise Parser.Parse_error on malformed textual input. *)

val synopsis : string -> string list
(** [synopsis s] returns the distinct local names used as element names
    in the payload, read from the header alone — O(header), no token
    scan, no tree.

    @raise Decode_error if [s] is not a binary payload or the header is
    corrupt. *)

val iter_names : string -> (string -> unit) -> unit
(** [iter_names s f] calls [f] with the local name of every element
    start token, in document order, in one linear pass over the tokens.
    Duplicates are repeated; no tree is built.

    @raise Decode_error on corrupt input. *)

val root_children : string -> string list
(** Local names of the root element's child elements, in order, using
    the content-length field to skip each child's subtree in O(1) —
    the skip-scan the format exists for.

    @raise Decode_error on corrupt input or a non-element root. *)

val check : string -> (unit, string) result
(** Full structural validation in one streaming pass: magic/version,
    name-index bounds, token framing, and subtree lengths that nest
    exactly. Never builds a tree and never raises. *)

val validate : string -> bool
(** [validate s = Result.is_ok (check s)]. *)

(** Qualified XML names.

    A qualified name is a pair of a namespace URI and a local part. The
    prefix used in the serialized form is not part of the name's identity
    (per the XML Namespaces recommendation); it is kept separately by the
    parser/serializer. *)

type t = private { uri : string; local : string }

val make : ?uri:string -> string -> t
(** [make ?uri local] builds a qualified name. [uri] defaults to the empty
    string, i.e. "no namespace". *)

val intern : ?uri:string -> string -> t
(** Like {!make}, but hash-conses the result: repeated occurrences of the
    same (uri, local) pair share one value. Used by the parser, where a
    document repeats a handful of element/attribute names thousands of
    times. The intern table is bounded; past the cap this degrades to
    {!make}. *)

val uri : t -> string
val local : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** [to_string n] renders the name in James-Clark notation:
    ["{uri}local"] when the namespace is non-empty, else just ["local"]. *)

val of_string : string -> t
(** Inverse of {!to_string}. A leading ["{uri}"] sets the namespace. *)

val pp : Format.formatter -> t -> unit

(** A page file with a pinning buffer pool.

    Fixed-size pages backed by a single file, cached in a bounded pool with
    LRU eviction and dirty-page write-back. This is the classic database
    building block under the heap file ({!Heap_file}) that stores large
    message payloads out of line.

    Concurrency model: single-threaded (like the engine); pins exist to
    catch use-after-evict bugs, not for thread safety. *)

type t

val page_size : int
(** 8192 bytes. *)

val create : ?pool_pages:int -> string -> t
(** Open (or create) the page file at the given path. [pool_pages] bounds
    the buffer pool (default 64 pages). *)

val close : t -> unit
(** Flushes all dirty pages. *)

val page_count : t -> int

val allocate : t -> int
(** Append a fresh zeroed page; returns its page number. *)

type pin

val pin : t -> int -> pin
(** Fault the page into the pool (evicting an unpinned LRU page if full)
    and pin it. @raise Invalid_argument for out-of-range page numbers or
    when every pool frame is pinned. *)

val unpin : t -> pin -> unit

val contents : t -> pin -> Bytes.t
(** The live frame bytes; mutations must be followed by {!mark_dirty}.
    @raise Invalid_argument if the pin is stale (its frame was evicted). *)

val mark_dirty : t -> pin -> unit

val with_page : t -> int -> (Bytes.t -> 'a) -> 'a
(** Pin, read, unpin. *)

val update_page : t -> int -> (Bytes.t -> 'a) -> 'a
(** Pin, mutate, mark dirty, unpin. *)

val flush : t -> unit

val dirty_pages : t -> int
(** Frames in the pool awaiting write-back. A checkpoint with no dirty
    pages (and no new WAL records) can skip its flush entirely. *)

type stats = {
  pages : int;
  pool_hits : int;
  pool_misses : int;
  evictions : int;
  writebacks : int;
}

val stats : t -> stats

(** The recoverable XML message store (the Natix substitute, §4.1).

    The store keeps the working set in memory and achieves durability with
    a redo-only write-ahead log plus checkpoint snapshots — the design that
    Demaq's append-only queue model enables: messages are never modified
    after creation, so there are no in-place updates to undo on disk.

    A transaction buffers its operations; they are applied to the in-memory
    state immediately (with undo closures for abort) and written to the log
    as one atomic, CRC-protected commit record. Recovery loads the latest
    snapshot and replays the intact prefix of the log.

    The [extra] field of a message is an opaque blob owned by the queue
    layer (it carries properties and slice memberships); the store never
    interprets it. *)

type stored_payload =
  | Inline of string
  | Spilled of Heap_file.rid * int
      (** out-of-line body in the heap file (record id, length) *)

type message = private {
  rid : int;  (** record id, unique and monotonically increasing *)
  queue : string;
  mutable stored : stored_payload;  (** serialized XML, possibly out of line *)
  extra : string;  (** opaque: properties + slice memberships *)
  enqueued_at : int;  (** virtual-clock tick *)
  mutable processed : bool;
  mutable deleted : bool;  (** tombstone until the next checkpoint *)
}

val payload_length : message -> int

type config = {
  dir : string option;  (** [None]: purely in-memory, no durability *)
  sync : Wal.sync_mode;  (** fsync per commit, or leave to the OS *)
  log_deletions : bool;
      (** when [false] (the paper's design), GC deletes are not logged;
          deletable messages are re-derived after recovery *)
  spill_threshold : int option;
      (** bodies larger than this many bytes are stored out of line in a
          slotted-page heap file and faulted in on demand; requires [dir] *)
}

val default_config : config
(** In-memory, no logging: for tests and transient stores. *)

val durable_config :
  ?sync:Wal.sync_mode -> ?log_deletions:bool -> ?spill_threshold:int -> string ->
  config
(** Durable store rooted at the given directory. *)

type t

val open_store : config -> t
(** Opens (and recovers, if durable state exists) a store. *)

val payload : t -> message -> string
(** The serialized XML body; faulted in through the buffer pool when it
    was spilled to the heap file. *)

val close : t -> unit
val locks : t -> Lock_manager.t

(** {1 Transactions} *)

type txn

val begin_txn : t -> txn
val txn_id : txn -> int

val insert :
  txn -> queue:string -> payload:string -> extra:string -> enqueued_at:int ->
  durable:bool -> int
(** Returns the new message's rid. [durable:false] (transient queues) skips
    the log; such messages are lost on restart by design (§2.1.1). *)

val mark_processed : txn -> int -> unit
val slice_reset : txn -> slicing:string -> key:string -> unit
(** Begins a new lifetime for the slice (§2.3.2). *)

val delete : txn -> int -> unit
(** Tombstones a message (used by the retention GC). Logged only when the
    store was configured with [log_deletions = true]. *)

val commit : txn -> unit
val abort : txn -> unit

(** {1 Group commit}

    Under {!Wal.Sync_batch} a commit appends its log record immediately but
    the fsync is deferred; {!barrier} hardens everything logged so far with
    one fsync (Gray's group commit). Callers that externalize effects —
    network transmissions, timer-armed retries — must wait for the barrier
    covering the committing transaction, or a crash could lose a commit
    whose effects already escaped. *)

val barrier : t -> bool
(** One fsync covering every commit since the last barrier. Returns [true]
    iff a sync was actually performed (mode is [Sync_batch] and commits
    were pending). No-op under [Sync_always] (each commit already synced)
    and [Sync_never] (durability opted out). *)

val durable_upto : t -> int
(** The highest transaction id known hardened on disk: every transaction
    with [txn_id <= durable_upto] survives a crash. Always 0 for in-memory
    or [Sync_never] stores. *)

val unsynced_commits : t -> int
(** Commit records appended but not yet covered by a barrier — the
    exposure of the current batch. Always 0 outside [Sync_batch]. *)

val unsynced_bytes : t -> int
(** WAL bytes appended but not yet covered by a barrier. An honest crash
    can lose at most this much of the log tail; simulated crashes bound
    their tears by it. Always 0 outside [Sync_batch]. *)

val wal_group_syncs : t -> int
(** Barriers that actually synced, without the O(messages) fold of
    {!stats} — the adaptive controller samples this every tick. *)

(** {1 Reads} *)

val get : t -> int -> message option
(** Live (non-deleted) message by rid. *)

val queue_rids : t -> string -> int list
(** Rids of live messages in a queue, in arrival order. *)

val queue_length : t -> string -> int
val fold_queue : t -> string -> ('a -> message -> 'a) -> 'a -> 'a
val all_messages : t -> message list
val slice_lifetime : t -> slicing:string -> key:string -> int
(** Current lifetime counter of the slice; 0 if never reset. *)

val unprocessed : t -> message list

(** {1 Maintenance} *)

val checkpoint : t -> unit
(** Writes a snapshot, drops tombstoned messages, truncates the log. When
    nothing reached the log or the heap file since the last checkpoint the
    snapshot write and its fsync are skipped (tombstones are still
    dropped). *)

val compact : t -> int
(** Log compaction: harden the pending group-commit batch, fold the state
    into a fresh snapshot ({!checkpoint}), and return the WAL bytes that
    retired. The snapshot rename is the commit point — a crash on either
    side of it loses nothing (the stale log's replay is idempotent
    against snapshot-loaded state). [0] when the store is in-memory or
    nothing new reached the log. *)

val compaction_due : t -> max_wal_bytes:int -> bool
(** True when the log has grown past [max_wal_bytes] since the last
    checkpoint (false for in-memory stores or [max_wal_bytes <= 0]) — the
    trigger the background maintenance tick polls. *)

type compaction_stage = Before_rename | After_rename

val set_compaction_fault : t -> (compaction_stage -> unit) option -> unit
(** Crash-injection hook around the compaction commit point; tests raise
    from it to simulate a torn compaction. [None] clears it. *)

type stats = {
  live_messages : int;
  tombstones : int;
  wal_bytes : int;
  wal_records : int;
  wal_syncs : int;
  wal_group_syncs : int;  (** barriers that actually synced *)
  checkpoints : int;
  spilled_payloads : int;
  inline_bytes : int;  (** memory held by inline bodies *)
}

val stats : t -> stats

val instrument : t -> Demaq_obs.Metrics.registry -> unit
(** Register the store's metrics: WAL fsync-latency / batch-fill
    histograms (clock hooks installed only when the registry's timing path
    is on) and callback counters/gauges over {!stats}. Call once per
    store+registry pair. *)

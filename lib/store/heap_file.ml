(* Slotted-page heap file.

   Page layout (8192 bytes):
     0  u16  slot count
     2  u16  data_start (lowest data offset used on this page)
     4  u8   page kind: 0 = slotted heap page, 1 = overflow, 2 = free
     5..15   reserved
     16      slot directory: 4 bytes per slot (u16 offset, u16 length);
             offset 0 marks a free slot
     ...     free space
     ...     record data, growing downward from the page end

   Records that fit on one page are stored inline, prefixed with an 'I'
   marker byte. Larger records store a chain head ('L' marker + u32 first
   overflow page + u64 total length) and their bytes in a chain of
   dedicated overflow pages:
     0  u8   kind = 1
     1  u32  next overflow page + 1 (0 = end of chain)
     5  u16  fragment length
     16      fragment bytes

   Free-space bookkeeping (pages with slot room, free page list, record
   count) is kept in memory and rebuilt by scanning the file at open. *)

type t = {
  pager : Pager.t;
  mutable open_pages : int list;  (* slotted pages that may accept inserts *)
  mutable free_pages : int list;  (* recyclable pages *)
  mutable records : int;
}

type rid = { page : int; slot : int }

let rid_to_string rid = Printf.sprintf "%d.%d" rid.page rid.slot

let header_size = 16
let slot_size = 4
let page_size = Pager.page_size
let overflow_capacity = page_size - header_size

let kind_heap = 0
let kind_overflow = 1
let kind_free = 2

let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off v
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off)
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let slot_count b = get_u16 b 0
let set_slot_count b v = set_u16 b 0 v
let data_start b = get_u16 b 2
let set_data_start b v = set_u16 b 2 v
let page_kind b = Char.code (Bytes.get b 4)
let set_page_kind b v = Bytes.set b 4 (Char.chr v)

let slot_offset b i = get_u16 b (header_size + (slot_size * i))
let slot_length b i = get_u16 b (header_size + (slot_size * i) + 2)

let set_slot b i ~offset ~length =
  set_u16 b (header_size + (slot_size * i)) offset;
  set_u16 b (header_size + (slot_size * i) + 2) length

let init_heap_page b =
  Bytes.fill b 0 page_size '\000';
  set_page_kind b kind_heap;
  set_data_start b page_size

(* Free contiguous space on a slotted page if one more slot entry is
   added. *)
let free_space b =
  data_start b - (header_size + (slot_size * (slot_count b + 1)))

(* Find a free slot index, or the next fresh one. *)
let find_slot b =
  let n = slot_count b in
  let rec go i = if i >= n then n else if slot_offset b i = 0 then i else go (i + 1) in
  go 0

let create ?pool_pages path =
  let pager = Pager.create ?pool_pages path in
  let t = { pager; open_pages = []; free_pages = []; records = 0 } in
  for page = 0 to Pager.page_count pager - 1 do
    Pager.with_page pager page (fun b ->
        match page_kind b with
        | k when k = kind_heap ->
          if free_space b > 8 then t.open_pages <- page :: t.open_pages;
          for i = 0 to slot_count b - 1 do
            if slot_offset b i <> 0 then t.records <- t.records + 1
          done
        | k when k = kind_free -> t.free_pages <- page :: t.free_pages
        | _ -> ())
  done;
  t

let close t = Pager.close t.pager
let record_count t = t.records
let pager_stats t = Pager.stats t.pager

let fresh_page t =
  match t.free_pages with
  | page :: rest ->
    t.free_pages <- rest;
    page
  | [] -> Pager.allocate t.pager

(* Store [data] (already marker-prefixed) on some slotted page. *)
let insert_slotted t data =
  let need = String.length data in
  if need + header_size + slot_size > page_size then
    invalid_arg "Heap_file: inline record too large";
  let rec pick = function
    | page :: rest ->
      let ok = Pager.with_page t.pager page (fun b -> free_space b >= need) in
      if ok then (page, rest)
      else begin
        (* page is full for this record; drop it from the open list if it
           is nearly full in general *)
        let still_open = Pager.with_page t.pager page (fun b -> free_space b > 64) in
        let page', rest' = pick rest in
        (page', if still_open then page :: rest' else rest')
      end
    | [] ->
      let page = fresh_page t in
      Pager.update_page t.pager page init_heap_page;
      (page, [])
  in
  let page, others = pick t.open_pages in
  let slot =
    Pager.update_page t.pager page (fun b ->
        let slot = find_slot b in
        let offset = data_start b - need in
        Bytes.blit_string data 0 b offset need;
        set_data_start b offset;
        set_slot b slot ~offset ~length:need;
        if slot = slot_count b then set_slot_count b (slot + 1);
        slot)
  in
  t.open_pages <- page :: others;
  t.records <- t.records + 1;
  { page; slot }

(* Write [data] into a chain of overflow pages; returns the first page. *)
let write_chain t data =
  let len = String.length data in
  let rec go offset =
    if offset >= len then 0 (* encoded next+1 = 0 : end *)
    else begin
      let frag = min overflow_capacity (len - offset) in
      let page = fresh_page t in
      let next = go (offset + frag) in
      Pager.update_page t.pager page (fun b ->
          Bytes.fill b 0 page_size '\000';
          set_page_kind b kind_overflow;
          set_u32 b 8 next;
          set_u16 b 12 frag;
          Bytes.blit_string data offset b header_size frag);
      page + 1
    end
  in
  go 0 - 1

let inline_limit = page_size / 4

let insert t record =
  if String.length record <= inline_limit then insert_slotted t ("I" ^ record)
  else begin
    let first = write_chain t record in
    let head = Bytes.create 13 in
    Bytes.set head 0 'L';
    set_u32 head 1 first;
    Bytes.set_int64_le head 5 (Int64.of_int (String.length record));
    insert_slotted t (Bytes.to_string head)
  end

let slot_data t rid =
  Pager.with_page t.pager rid.page (fun b ->
      if page_kind b <> kind_heap then invalid_arg "Heap_file.read: not a heap page";
      if rid.slot >= slot_count b || slot_offset b rid.slot = 0 then
        invalid_arg (Printf.sprintf "Heap_file.read: free rid %s" (rid_to_string rid));
      Bytes.sub_string b (slot_offset b rid.slot) (slot_length b rid.slot))

let read_chain t first total =
  let buf = Buffer.create total in
  let rec go page =
    if page >= 0 then
      let next =
        Pager.with_page t.pager page (fun b ->
            if page_kind b <> kind_overflow then
              invalid_arg "Heap_file: corrupt overflow chain";
            let frag = get_u16 b 12 in
            Buffer.add_subbytes buf b header_size frag;
            get_u32 b 8 - 1)
      in
      go next
  in
  go first;
  Buffer.contents buf

let read t rid =
  let data = slot_data t rid in
  match data.[0] with
  | 'I' -> String.sub data 1 (String.length data - 1)
  | 'L' ->
    let b = Bytes.of_string data in
    let first = get_u32 b 1 in
    let total = Int64.to_int (Bytes.get_int64_le b 5) in
    read_chain t first total
  | c -> invalid_arg (Printf.sprintf "Heap_file: corrupt record marker %C" c)

let free_chain t first =
  let rec go page =
    if page >= 0 then begin
      let next =
        Pager.update_page t.pager page (fun b ->
            let next = get_u32 b 8 - 1 in
            Bytes.fill b 0 page_size '\000';
            set_page_kind b kind_free;
            next)
      in
      t.free_pages <- page :: t.free_pages;
      go next
    end
  in
  go first

let free t rid =
  let data = slot_data t rid in
  (match data.[0] with
   | 'L' ->
     let b = Bytes.of_string data in
     free_chain t (get_u32 b 1)
   | _ -> ());
  Pager.update_page t.pager rid.page (fun b ->
      set_slot b rid.slot ~offset:0 ~length:0;
      (* if the page emptied completely, reset it for reuse *)
      let all_free =
        let rec go i = i >= slot_count b || (slot_offset b i = 0 && go (i + 1)) in
        go 0
      in
      if all_free then begin
        set_slot_count b 0;
        set_data_start b page_size
      end);
  if not (List.mem rid.page t.open_pages) then
    t.open_pages <- rid.page :: t.open_pages;
  t.records <- t.records - 1

let iter t f =
  for page = 0 to Pager.page_count t.pager - 1 do
    let slots =
      Pager.with_page t.pager page (fun b ->
          if page_kind b <> kind_heap then []
          else
            List.filter_map
              (fun i -> if slot_offset b i <> 0 then Some i else None)
              (List.init (slot_count b) Fun.id))
    in
    List.iter (fun slot -> f { page; slot } (read t { page; slot })) slots
  done

let flush_pages t = Pager.flush t.pager
let dirty_pages t = Pager.dirty_pages t.pager

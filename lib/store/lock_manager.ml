type mode = Shared | Exclusive

type resource =
  | Queue_lock of string
  | Slice_lock of string * string
  | Message_lock of int

let resource_to_string = function
  | Queue_lock q -> "queue:" ^ q
  | Slice_lock (s, k) -> Printf.sprintf "slice:%s/%s" s k
  | Message_lock rid -> Printf.sprintf "message:%d" rid

type entry = { mutable holders : (int * mode) list }

(* All three tables are guarded by [mu]: transactions on different worker
   domains acquire and release concurrently, and a torn holder list would
   silently break strict 2PL. Public entry points take the mutex; the
   [_unlocked] internals assume it is held. *)
type t = {
  mu : Mutex.t;
  table : (resource, entry) Hashtbl.t;
  by_txn : (int, resource list) Hashtbl.t;
  waiting : (int, resource) Hashtbl.t;  (* txn -> resource it waits for *)
}

let create () =
  {
    mu = Mutex.create ();
    table = Hashtbl.create 64;
    by_txn = Hashtbl.create 16;
    waiting = Hashtbl.create 16;
  }

let locked t f = Mutex.protect t.mu f

type outcome = Granted | Conflict of int list

let compatible m1 m2 =
  match m1, m2 with Shared, Shared -> true | _ -> false

let note_held t txn resource =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.by_txn txn) in
  if not (List.mem resource existing) then
    Hashtbl.replace t.by_txn txn (resource :: existing)

let acquire t ~txn resource mode =
  locked t @@ fun () ->
  let entry =
    match Hashtbl.find_opt t.table resource with
    | Some e -> e
    | None ->
      let e = { holders = [] } in
      Hashtbl.replace t.table resource e;
      e
  in
  let others = List.filter (fun (id, _) -> id <> txn) entry.holders in
  let mine = List.filter (fun (id, _) -> id = txn) entry.holders in
  let conflicting = List.filter (fun (_, m) -> not (compatible mode m)) others in
  if conflicting <> [] then Conflict (List.map fst conflicting)
  else begin
    (* Grant, merging with any lock we already hold (upgrade keeps the
       stronger mode). *)
    let merged_mode =
      match mine with
      | (_, Exclusive) :: _ -> Exclusive
      | _ -> mode
    in
    entry.holders <- (txn, merged_mode) :: others;
    note_held t txn resource;
    Granted
  end

let release_all t ~txn =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.by_txn txn with
   | None -> ()
   | Some resources ->
     List.iter
       (fun r ->
         match Hashtbl.find_opt t.table r with
         | None -> ()
         | Some e ->
           e.holders <- List.filter (fun (id, _) -> id <> txn) e.holders;
           if e.holders = [] then Hashtbl.remove t.table r)
       resources;
     Hashtbl.remove t.by_txn txn);
  Hashtbl.remove t.waiting txn

let held t ~txn =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.by_txn txn with
  | None -> []
  | Some resources ->
    List.filter_map
      (fun r ->
        match Hashtbl.find_opt t.table r with
        | None -> None
        | Some e ->
          List.find_map (fun (id, m) -> if id = txn then Some (r, m) else None) e.holders)
      resources

let wait_on t ~txn resource = locked t (fun () -> Hashtbl.replace t.waiting txn resource)
let stop_waiting t ~txn = locked t (fun () -> Hashtbl.remove t.waiting txn)

let holders_of_unlocked t resource =
  match Hashtbl.find_opt t.table resource with
  | None -> []
  | Some e -> List.map fst e.holders

(* Cycle check: starting from the holders of [resource], follow
   waits-for -> holders edges; a path back to [txn] is a deadlock. *)
let would_deadlock t ~txn resource =
  locked t @@ fun () ->
  let visited = Hashtbl.create 16 in
  let rec reachable current =
    if current = txn then true
    else if Hashtbl.mem visited current then false
    else begin
      Hashtbl.replace visited current ();
      match Hashtbl.find_opt t.waiting current with
      | None -> false
      | Some r -> List.exists reachable (holders_of_unlocked t r)
    end
  in
  List.exists (fun h -> h <> txn && reachable h) (holders_of_unlocked t resource)

let active_locks t = locked t (fun () -> Hashtbl.length t.table)

let page_size = 8192

type frame = {
  mutable page_no : int;  (* -1 = free frame *)
  data : Bytes.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable last_use : int;  (* LRU clock *)
}

type t = {
  fd : Unix.file_descr;
  pool : frame array;
  by_page : (int, int) Hashtbl.t;  (* page number -> frame index *)
  mutable pages : int;
  mutable tick : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

type pin = { p_page : int; p_frame : int }

let create ?(pool_pages = 64) path =
  if pool_pages < 1 then invalid_arg "Pager.create: pool_pages must be >= 1";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  {
    fd;
    pool =
      Array.init pool_pages (fun _ ->
          { page_no = -1; data = Bytes.create page_size; dirty = false; pins = 0; last_use = 0 });
    by_page = Hashtbl.create 64;
    pages = size / page_size;
    tick = 0;
    pool_hits = 0;
    pool_misses = 0;
    evictions = 0;
    writebacks = 0;
  }

let page_count t = t.pages

let write_frame t frame =
  ignore (Unix.lseek t.fd (frame.page_no * page_size) Unix.SEEK_SET);
  let written = Unix.write t.fd frame.data 0 page_size in
  if written <> page_size then failwith "Pager: short write";
  t.writebacks <- t.writebacks + 1;
  frame.dirty <- false

let read_into t page_no frame =
  ignore (Unix.lseek t.fd (page_no * page_size) Unix.SEEK_SET);
  let rec fill off =
    if off < page_size then begin
      let n = Unix.read t.fd frame.data off (page_size - off) in
      if n = 0 then Bytes.fill frame.data off (page_size - off) '\000'
      else fill (off + n)
    end
  in
  fill 0

(* Choose a frame for [page_no]: an existing mapping, a free frame, or the
   least-recently-used unpinned frame (written back if dirty). *)
let frame_for t page_no =
  match Hashtbl.find_opt t.by_page page_no with
  | Some idx ->
    t.pool_hits <- t.pool_hits + 1;
    idx
  | None ->
    t.pool_misses <- t.pool_misses + 1;
    let victim = ref (-1) in
    Array.iteri
      (fun i frame ->
        if frame.pins = 0 then
          match !victim with
          | -1 -> victim := i
          | v ->
            (* prefer free frames, then oldest use *)
            let better =
              (frame.page_no = -1 && t.pool.(v).page_no <> -1)
              || (frame.page_no <> -1) = (t.pool.(v).page_no <> -1)
                 && frame.last_use < t.pool.(v).last_use
            in
            if better then victim := i)
      t.pool;
    (match !victim with
     | -1 -> invalid_arg "Pager: buffer pool exhausted (all frames pinned)"
     | idx ->
       let frame = t.pool.(idx) in
       if frame.page_no >= 0 then begin
         if frame.dirty then write_frame t frame;
         Hashtbl.remove t.by_page frame.page_no;
         t.evictions <- t.evictions + 1
       end;
       frame.page_no <- page_no;
       frame.dirty <- false;
       read_into t page_no frame;
       Hashtbl.replace t.by_page page_no idx;
       idx)

let allocate t =
  let page_no = t.pages in
  t.pages <- t.pages + 1;
  (* materialize the page in the pool as zeroes; written back on eviction *)
  let idx = frame_for t page_no in
  let frame = t.pool.(idx) in
  Bytes.fill frame.data 0 page_size '\000';
  frame.dirty <- true;
  page_no

let pin t page_no =
  if page_no < 0 || page_no >= t.pages then
    invalid_arg (Printf.sprintf "Pager.pin: page %d out of range" page_no);
  let idx = frame_for t page_no in
  let frame = t.pool.(idx) in
  frame.pins <- frame.pins + 1;
  t.tick <- t.tick + 1;
  frame.last_use <- t.tick;
  { p_page = page_no; p_frame = idx }

let frame_of t pin =
  let frame = t.pool.(pin.p_frame) in
  if frame.page_no <> pin.p_page then invalid_arg "Pager: stale pin";
  frame

let unpin t pin =
  let frame = frame_of t pin in
  if frame.pins <= 0 then invalid_arg "Pager.unpin: not pinned";
  frame.pins <- frame.pins - 1

let contents t pin = (frame_of t pin).data
let contents_of = contents

let mark_dirty t pin = (frame_of t pin).dirty <- true

let with_page t page_no f =
  let p = pin t page_no in
  Fun.protect ~finally:(fun () -> unpin t p) (fun () -> f (contents_of t p))

let update_page t page_no f =
  let p = pin t page_no in
  Fun.protect
    ~finally:(fun () -> unpin t p)
    (fun () ->
      let r = f (contents_of t p) in
      mark_dirty t p;
      r)

let flush t =
  Array.iter (fun frame -> if frame.page_no >= 0 && frame.dirty then write_frame t frame) t.pool

let dirty_pages t =
  Array.fold_left
    (fun n frame -> if frame.page_no >= 0 && frame.dirty then n + 1 else n)
    0 t.pool

let close t =
  flush t;
  Unix.close t.fd

type stats = {
  pages : int;
  pool_hits : int;
  pool_misses : int;
  evictions : int;
  writebacks : int;
}

let stats (t : t) =
  {
    pages = t.pages;
    pool_hits = t.pool_hits;
    pool_misses = t.pool_misses;
    evictions = t.evictions;
    writebacks = t.writebacks;
  }

(* The write-ahead log.

   Demaq's append-only queue model (§2.3.3, §4.1) lets the log stay
   redo-only: transactions buffer their operations in memory and write one
   self-contained, CRC-protected [Commit] record at commit time. A record
   that is fully present in the log is committed; a torn tail is ignored.

   Record framing: [8-byte length][8-byte crc32][body]. *)

type op =
  | Insert of {
      rid : int;
      queue : string;
      payload : string;
      extra : string;
      enqueued_at : int;
    }
  | Mark_processed of { rid : int }
  | Slice_reset of { slicing : string; key : string; lifetime : int }
  | Delete of { rid : int; image : string }
      (* [image] is the before-image of the deleted record. Demaq's
         append-only design never needs it (deletions are re-derived from
         retention state, §4.1); it is populated only when the store is
         configured to emulate traditional update-in-place logging, which
         must retain before-images for undo. *)

type record =
  | Commit of { txn : int; ops : op list }
  | Checkpoint

type sync_mode =
  | Sync_always
  | Sync_never
  | Sync_batch of { max_records : int; max_bytes : int }

(* Single-writer invariant: all appends and barriers funnel through [mu],
   so the log is a strictly serial byte stream even when transactions
   commit from several worker domains. The scratch buffer and header are
   safe to reuse for the same reason. *)
type t = {
  path : string;
  mu : Mutex.t;
  mutable oc : out_channel;
  mutable fd : Unix.file_descr;
  sync : sync_mode;
  scratch : Buffer.t;  (* record bodies are encoded into this, reused *)
  header : Bytes.t;  (* 16-byte length+crc frame header, reused *)
  mutable bytes : int;
  mutable records : int;
  mutable syncs : int;
  mutable group_syncs : int;
  mutable pending_records : int;  (* appended since the last fsync (Sync_batch) *)
  mutable pending_bytes : int;
  (* observability hooks (set by Message_store.instrument). [on_fsync]
     receives the wall-clock fsync duration in ns — the clock is only read
     when the hook is installed, so an uninstrumented log never pays for
     timing. [on_batch] receives the record count a sync covered. *)
  mutable on_fsync : (int -> unit) option;
  mutable on_batch : (int -> unit) option;
  mutable clock_ns : unit -> int;  (* times fsyncs for [on_fsync] *)
}

let encode_op buf op =
  match op with
  | Insert { rid; queue; payload; extra; enqueued_at } ->
    Buffer.add_char buf 'I';
    Codec.put_int buf rid;
    Codec.put_string buf queue;
    Codec.put_string buf payload;
    Codec.put_string buf extra;
    Codec.put_int buf enqueued_at
  | Mark_processed { rid } ->
    Buffer.add_char buf 'P';
    Codec.put_int buf rid
  | Slice_reset { slicing; key; lifetime } ->
    Buffer.add_char buf 'R';
    Codec.put_string buf slicing;
    Codec.put_string buf key;
    Codec.put_int buf lifetime
  | Delete { rid; image } ->
    Buffer.add_char buf 'D';
    Codec.put_int buf rid;
    Codec.put_string buf image

let read_tag r =
  if Codec.at_end r then raise (Codec.Decode_error "missing tag");
  let tag = r.Codec.src.[r.Codec.pos] in
  r.Codec.pos <- r.Codec.pos + 1;
  tag

(* Queue names recur in every [Insert] record; interning them makes a
   large-log replay share one string per distinct queue instead of
   allocating a copy per message. *)
let interned_queues : (string, string) Hashtbl.t = Hashtbl.create 32

let intern_queue s =
  match Hashtbl.find_opt interned_queues s with
  | Some s -> s
  | None ->
    if Hashtbl.length interned_queues < 1024 then Hashtbl.add interned_queues s s;
    s

let decode_op r =
  match read_tag r with
  | 'I' ->
    let rid = Codec.get_int r in
    let queue = intern_queue (Codec.get_string r) in
    let payload = Codec.get_string r in
    let extra = Codec.get_string r in
    let enqueued_at = Codec.get_int r in
    Insert { rid; queue; payload; extra; enqueued_at }
  | 'P' -> Mark_processed { rid = Codec.get_int r }
  | 'R' ->
    let slicing = Codec.get_string r in
    let key = Codec.get_string r in
    let lifetime = Codec.get_int r in
    Slice_reset { slicing; key; lifetime }
  | 'D' ->
    let rid = Codec.get_int r in
    let image = Codec.get_string r in
    Delete { rid; image }
  | c -> raise (Codec.Decode_error (Printf.sprintf "unknown op tag %C" c))

let encode_record_into buf rec_ =
  match rec_ with
  | Commit { txn; ops } ->
    Buffer.add_char buf 'C';
    Codec.put_int buf txn;
    Codec.put_list buf encode_op ops
  | Checkpoint -> Buffer.add_char buf 'K'

let decode_record body =
  let r = Codec.reader body in
  match read_tag r with
  | 'C' ->
    let txn = Codec.get_int r in
    let ops = Codec.get_list r decode_op in
    Commit { txn; ops }
  | 'K' -> Checkpoint
  | c -> raise (Codec.Decode_error (Printf.sprintf "unknown record tag %C" c))

let open_log ?(sync = Sync_always) path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  let fd = Unix.descr_of_out_channel oc in
  let bytes = (Unix.fstat fd).Unix.st_size in
  {
    path;
    mu = Mutex.create ();
    oc;
    fd;
    sync;
    scratch = Buffer.create 256;
    header = Bytes.create 16;
    bytes;
    records = 0;
    syncs = 0;
    group_syncs = 0;
    pending_records = 0;
    pending_bytes = 0;
    on_fsync = None;
    on_batch = None;
    clock_ns = (fun () -> int_of_float (Unix.gettimeofday () *. 1e9));
  }

let set_instruments t ?clock_ns ?on_fsync ?on_batch () =
  Mutex.protect t.mu @@ fun () ->
  (match clock_ns with Some c -> t.clock_ns <- c | None -> ());
  t.on_fsync <- on_fsync;
  t.on_batch <- on_batch

let do_fsync t =
  (match t.on_fsync with
   | None ->
     flush t.oc;
     Unix.fsync t.fd
   | Some observe ->
     let t0 = t.clock_ns () in
     flush t.oc;
     Unix.fsync t.fd;
     observe (t.clock_ns () - t0));
  (match t.on_batch with
   | Some observe when t.pending_records > 0 -> observe t.pending_records
   | _ -> ());
  t.syncs <- t.syncs + 1;
  t.pending_records <- 0;
  t.pending_bytes <- 0

(* One fsync covering every record appended since the last one. Commit
   records are self-contained (recovery replays whatever intact prefix is
   on disk), so Sync_batch can defer this barrier and amortize it over a
   whole batch of transactions — Gray's group commit. Because barriers are
   serialized with appends under [mu], one worker's barrier hardens every
   commit any worker appended before it: the fsync is amortized
   fleet-wide, not per-domain. *)
let barrier_unlocked t =
  match t.sync with
  | Sync_batch _ when t.pending_records > 0 ->
    do_fsync t;
    t.group_syncs <- t.group_syncs + 1;
    true
  | _ -> false

let barrier t = Mutex.protect t.mu (fun () -> barrier_unlocked t)

let append t rec_ =
  Mutex.protect t.mu @@ fun () ->
  Buffer.clear t.scratch;
  encode_record_into t.scratch rec_;
  let body = Buffer.contents t.scratch in
  Bytes.set_int64_le t.header 0 (Int64.of_int (String.length body));
  Bytes.set_int64_le t.header 8 (Int64.of_int (Crc32.string body));
  output_bytes t.oc t.header;
  output_string t.oc body;
  let total = 16 + String.length body in
  t.bytes <- t.bytes + total;
  t.records <- t.records + 1;
  match t.sync with
  | Sync_always -> do_fsync t
  | Sync_never -> flush t.oc
  | Sync_batch { max_records; max_bytes } ->
    t.pending_records <- t.pending_records + 1;
    t.pending_bytes <- t.pending_bytes + total;
    if
      (max_records > 0 && t.pending_records >= max_records)
      || (max_bytes > 0 && t.pending_bytes >= max_bytes)
    then ignore (barrier_unlocked t)

let bytes_written t = t.bytes
let records_written t = t.records
let syncs_performed t = t.syncs
let group_syncs_performed t = t.group_syncs
let pending_records t = Mutex.protect t.mu (fun () -> t.pending_records)
let pending_bytes t = Mutex.protect t.mu (fun () -> t.pending_bytes)

let close t =
  (* an orderly shutdown hardens the tail of the last batch *)
  ignore (barrier t);
  close_out t.oc

(* Truncate after a checkpoint: the snapshot now covers everything. *)
let reset t =
  close_out t.oc;
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 t.path in
  t.oc <- oc;
  t.fd <- Unix.descr_of_out_channel oc;
  t.bytes <- 0;
  t.pending_records <- 0;
  t.pending_bytes <- 0

(* Replay a log file, invoking [f] on every intact record. Stops silently at
   the first truncated or corrupt record (torn tail after a crash) and
   returns the byte length of the intact prefix. The caller that reopens
   the log for appending MUST truncate the file to that length first:
   [open_log] appends at the physical end of file, so bytes written after
   a surviving torn tail would be unreachable to every future replay. *)
let replay path f =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in_bin path in
    let size = in_channel_length ic in
    let contents = really_input_string ic size in
    close_in ic;
    let r = Codec.reader contents in
    let ok = ref true in
    let valid = ref 0 in
    while !ok && not (Codec.at_end r) do
      match
        let len = Codec.get_int r in
        let crc = Codec.get_int r in
        if len < 0 || r.Codec.pos + len > String.length contents then None
        else begin
          let body = String.sub contents r.Codec.pos len in
          r.Codec.pos <- r.Codec.pos + len;
          if Crc32.string body <> crc then None else Some (decode_record body)
        end
      with
      | Some rec_ ->
        f rec_;
        valid := r.Codec.pos
      | None -> ok := false
      | exception _ -> ok := false
    done;
    !valid
  end

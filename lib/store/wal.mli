(** The write-ahead log.

    Demaq's append-only queue model (§2.3.3, §4.1 of the paper) lets the
    log stay redo-only: transactions buffer their operations in memory and
    write one self-contained, CRC-protected [Commit] record at commit
    time. A record fully present in the log is committed; a torn tail
    (crash mid-write) is detected by length/CRC and ignored.

    Record framing: 8-byte length, 8-byte CRC-32, body.

    The append path is domain-safe with a single-writer discipline: an
    internal mutex serializes {!append} and {!barrier}, so transactions
    committing from several worker domains interleave whole records, never
    bytes, and one worker's barrier hardens every record appended before
    it (the group-commit fsync is shared fleet-wide). *)

type op =
  | Insert of {
      rid : int;
      queue : string;
      payload : string;
      extra : string;
      enqueued_at : int;
    }
  | Mark_processed of { rid : int }
  | Slice_reset of { slicing : string; key : string; lifetime : int }
  | Delete of { rid : int; image : string }
      (** [image] is the before-image of the deleted record. Demaq's
          append-only design never needs it (deletions are re-derived from
          retention state, §4.1); it is populated only when the store
          emulates traditional update-in-place logging (benchmark B6). *)

type record = Commit of { txn : int; ops : op list } | Checkpoint

type sync_mode =
  | Sync_always  (** fsync per appended record (commit durability) *)
  | Sync_never  (** leave flushing to the OS page cache *)
  | Sync_batch of { max_records : int; max_bytes : int }
      (** group commit: records append immediately but the fsync is
          deferred to the next {!barrier} (or to an automatic one when
          more than [max_records] records / [max_bytes] bytes are
          pending; 0 disables either trigger). Commit records are
          self-contained, so recovery is unchanged — a crash merely
          loses the unsynced tail of the current batch. *)

type t

val open_log : ?sync:sync_mode -> string -> t
(** Open (or create) the log file for appending. *)

val append : t -> record -> unit

val barrier : t -> bool
(** One fsync covering every record appended since the last one. Returns
    [true] iff a sync was actually performed — i.e. the mode is
    [Sync_batch] and records were pending. [Sync_always] needs no
    barrier; under [Sync_never] the caller opted out of durability and
    the barrier stays a no-op. *)

val close : t -> unit
(** Closes the log; in [Sync_batch] mode an orderly close performs a
    final barrier first. *)

val reset : t -> unit
(** Truncate after a checkpoint: the snapshot now covers everything. *)

val replay : string -> (record -> unit) -> int
(** Invoke the callback on every intact record of a log file, stopping
    silently at the first truncated or corrupt record. Missing files
    replay as empty. Returns the byte length of the intact prefix — a
    recovery that will append to the file again must truncate it to that
    length first, or the records it appends after the torn tail will be
    invisible to every future replay. *)

(** {1 Introspection (benchmarks B6/B10/B11)} *)

val bytes_written : t -> int
val records_written : t -> int
val syncs_performed : t -> int

val group_syncs_performed : t -> int
(** Barriers that actually synced (each covered a whole batch). *)

val pending_records : t -> int
(** Records appended since the last fsync — the exposure of the current
    batch. Always 0 outside [Sync_batch]. *)

val pending_bytes : t -> int
(** Bytes appended since the last fsync. A crash can lose at most this
    much of the tail; fault injection uses it to bound a simulated tear to
    data a real crash could actually have lost. *)

val set_instruments :
  t ->
  ?clock_ns:(unit -> int) ->
  ?on_fsync:(int -> unit) ->
  ?on_batch:(int -> unit) ->
  unit ->
  unit
(** Install observability hooks, called under the log mutex at each fsync:
    [on_fsync] gets the fsync duration in ns (the clock is not read when
    the hook is absent), [on_batch] the record count the sync covered
    (group commit batch fill). [clock_ns] replaces the clock that times
    fsyncs (default wall clock; a simulation passes its virtual source).
    Passing no hook clears both. *)

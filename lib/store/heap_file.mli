(** A slotted-page heap file over {!Pager}.

    Records are byte strings addressed by a RID (page number, slot index).
    Each page carries a slot directory growing from the page start and
    record data growing from the page end — the textbook layout. Records
    larger than one page are chained across overflow pages transparently.

    The message store uses this as its large-payload store: message bodies
    above a threshold live here, out of line from the in-memory working
    set, and are faulted in through the buffer pool on demand. *)

type t

type rid = { page : int; slot : int }

val rid_to_string : rid -> string

val create : ?pool_pages:int -> string -> t
(** Open (or create) the heap file at the given path. *)

val close : t -> unit

val insert : t -> string -> rid
(** Store a record; any size is accepted (large records chain overflow
    pages). *)

val read : t -> rid -> string
(** @raise Invalid_argument for a free or out-of-range rid. *)

val free : t -> rid -> unit
(** Release the record's space for reuse (including its overflow chain). *)

val iter : t -> (rid -> string -> unit) -> unit
(** All live records, in page/slot order. *)

val record_count : t -> int

val pager_stats : t -> Pager.stats

val flush_pages : t -> unit
(** Write all dirty pages back (used before a store checkpoint). *)

val dirty_pages : t -> int
(** Pages awaiting write-back; 0 means {!flush_pages} would be a no-op. *)

(* Message bodies are kept inline in memory, or spilled out of line to the
   slotted-page heap file when they exceed the configured threshold — the
   store then holds only a (page, slot) reference and the body is faulted
   in through the buffer pool on access. *)
type stored_payload =
  | Inline of string
  | Spilled of Heap_file.rid * int  (* record id in the heap file, length *)

let log = Logs.Src.create "demaq.store" ~doc:"Demaq message store"

module Log = (val Logs.src_log log : Logs.LOG)

type message = {
  rid : int;
  queue : string;
  mutable stored : stored_payload;
  extra : string;
  enqueued_at : int;
  mutable processed : bool;
  mutable deleted : bool;
}

type config = {
  dir : string option;
  sync : Wal.sync_mode;
  log_deletions : bool;
  spill_threshold : int option;
      (* payloads strictly larger than this many bytes live in the heap
         file; None keeps everything in memory. Requires [dir]. *)
}

let default_config =
  { dir = None; sync = Wal.Sync_never; log_deletions = false; spill_threshold = None }

let durable_config ?(sync = Wal.Sync_always) ?(log_deletions = false)
    ?spill_threshold dir =
  { dir = Some dir; sync; log_deletions; spill_threshold }

type t = {
  config : config;
  wal : Wal.t option;
  heap : Heap_file.t option;  (* large-payload store *)
  messages : (int, message) Hashtbl.t;
  queues : (string, int Vec.t) Hashtbl.t;
  slice_lifetimes : (string * string, int) Hashtbl.t;
  lock_mgr : Lock_manager.t;
  mutable next_rid : int;
  mutable next_txn : int;
  mutable checkpoints : int;
  mutable last_logged_txn : int;  (* highest txn with a WAL commit record *)
  mutable durable_txn : int;  (* highest txn known synced to disk *)
  mutable wal_records_at_checkpoint : int;
      (* [Wal.records_written] as of the last checkpoint; -1 forces the
         first checkpoint after a recovery replay (the log must still be
         truncated even if this session wrote nothing new) *)
  mutable compaction_fault : (compaction_stage -> unit) option;
      (* crash-injection hook for the checkpoint/compaction commit points
         (tests raise from it to simulate a torn compaction) *)
}

and compaction_stage = Before_rename | After_rename

let payload t m =
  match m.stored with
  | Inline s -> s
  | Spilled (rid, _) -> (
    match t.heap with
    | Some heap -> Heap_file.read heap rid
    | None -> invalid_arg "Message_store.payload: spilled payload without a heap file")

let payload_length m =
  match m.stored with Inline s -> String.length s | Spilled (_, len) -> len

(* Spill policy: configured, and worth it. *)
let should_spill t s =
  match t.config.spill_threshold, t.heap with
  | Some threshold, Some _ -> String.length s > threshold
  | _ -> false

let store_payload t s =
  if should_spill t s then
    match t.heap with
    | Some heap -> Spilled (Heap_file.insert heap s, String.length s)
    | None -> Inline s
  else Inline s

let locks t = t.lock_mgr

let queue_vec t queue =
  match Hashtbl.find_opt t.queues queue with
  | Some v -> v
  | None ->
    let v = Vec.create ~dummy:(-1) in
    Hashtbl.replace t.queues queue v;
    v

(* ---- applying operations to the in-memory state ---- *)

let apply_insert t ~rid ~queue ~stored ~extra ~enqueued_at =
  let m = { rid; queue; stored; extra; enqueued_at; processed = false; deleted = false } in
  Hashtbl.replace t.messages rid m;
  Vec.push (queue_vec t queue) rid;
  if rid >= t.next_rid then t.next_rid <- rid + 1;
  m

(* Recovery must degrade, never crash, on a corrupt payload (the same
   contract as torn-tail WAL truncation): a record whose binary payload
   fails structural validation is skipped with a warning, and later
   operations referencing its rid fall through harmlessly. Only binary
   payloads can be checked — they are self-describing; legacy text
   payloads stay opaque here and surface errors at decode time, where
   the executor's §3.6 error routing absorbs them. *)
let payload_replayable payload =
  (not (Demaq_xml.Bxml.is_binary payload)) || Demaq_xml.Bxml.validate payload

let apply_op t (op : Wal.op) =
  match op with
  | Wal.Insert { rid; queue; payload; extra; enqueued_at } ->
    if Hashtbl.mem t.messages rid then
      (* a crash between the snapshot rename and the WAL truncation
         leaves the old log alongside the new snapshot; replaying its
         inserts on top of the snapshot-loaded message would push the rid
         into the queue vec a second time and enumerate it twice *)
      ()
    else if payload_replayable payload then
      (* recovery replay keeps bodies inline; the next checkpoint re-spills
         anything above the threshold and the orphan sweep reclaims the
         pre-crash heap records *)
      ignore (apply_insert t ~rid ~queue ~stored:(Inline payload) ~extra ~enqueued_at)
    else
      Log.warn (fun f ->
          f "WAL replay: skipping #%d (queue %s): corrupt binary payload" rid queue)
  | Wal.Mark_processed { rid } -> (
    match Hashtbl.find_opt t.messages rid with
    | Some m -> m.processed <- true
    | None -> ())
  | Wal.Slice_reset { slicing; key; lifetime } ->
    Hashtbl.replace t.slice_lifetimes (slicing, key) lifetime
  | Wal.Delete { rid; _ } -> (
    match Hashtbl.find_opt t.messages rid with
    | Some m -> m.deleted <- true
    | None -> ())

(* ---- snapshots ---- *)

let snapshot_path dir = Filename.concat dir "snapshot.bin"
let wal_path dir = Filename.concat dir "wal.log"

let encode_snapshot t =
  let buf = Buffer.create 4096 in
  Codec.put_int buf t.next_rid;
  let live =
    Hashtbl.fold (fun _ m acc -> if m.deleted then acc else m :: acc) t.messages []
  in
  let live = List.sort (fun a b -> compare a.rid b.rid) live in
  Codec.put_list buf
    (fun buf m ->
      Codec.put_int buf m.rid;
      Codec.put_string buf m.queue;
      (* checkpoint is also when late (recovery-replayed) large bodies
         move out of line *)
      (match m.stored with
       | Inline s when should_spill t s ->
         (match t.heap with
          | Some heap ->
            m.stored <- Spilled (Heap_file.insert heap s, String.length s)
          | None -> ())
       | _ -> ());
      (match m.stored with
       | Inline s ->
         Codec.put_bool buf false;
         Codec.put_string buf s
       | Spilled (hrid, len) ->
         Codec.put_bool buf true;
         Codec.put_int buf hrid.Heap_file.page;
         Codec.put_int buf hrid.Heap_file.slot;
         Codec.put_int buf len);
      Codec.put_string buf m.extra;
      Codec.put_int buf m.enqueued_at;
      Codec.put_bool buf m.processed)
    live;
  let lifetimes =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.slice_lifetimes []
  in
  Codec.put_list buf
    (fun buf ((slicing, key), lifetime) ->
      Codec.put_string buf slicing;
      Codec.put_string buf key;
      Codec.put_int buf lifetime)
    lifetimes;
  Buffer.contents buf

let load_snapshot t path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let r = Codec.reader contents in
  t.next_rid <- Codec.get_int r;
  let messages =
    Codec.get_list r (fun r ->
        let rid = Codec.get_int r in
        let queue = Codec.get_string r in
        let stored =
          if Codec.get_bool r then begin
            let page = Codec.get_int r in
            let slot = Codec.get_int r in
            let len = Codec.get_int r in
            Spilled ({ Heap_file.page; slot }, len)
          end
          else Inline (Codec.get_string r)
        in
        let extra = Codec.get_string r in
        let enqueued_at = Codec.get_int r in
        let processed = Codec.get_bool r in
        (rid, queue, stored, extra, enqueued_at, processed))
  in
  List.iter
    (fun (rid, queue, stored, extra, enqueued_at, processed) ->
      (* same degrade-not-crash contract as WAL replay; spilled payloads
         stay out of line (unvalidated here — they fault in lazily) and
         surface any corruption at decode time instead *)
      match stored with
      | Inline payload when not (payload_replayable payload) ->
        Log.warn (fun f ->
            f "snapshot: skipping #%d (queue %s): corrupt binary payload" rid queue)
      | _ ->
        let m = apply_insert t ~rid ~queue ~stored ~extra ~enqueued_at in
        m.processed <- processed)
    messages;
  let lifetimes =
    Codec.get_list r (fun r ->
        let slicing = Codec.get_string r in
        let key = Codec.get_string r in
        let lifetime = Codec.get_int r in
        ((slicing, key), lifetime))
  in
  List.iter (fun (k, v) -> Hashtbl.replace t.slice_lifetimes k v) lifetimes

(* ---- open / recovery ---- *)

(* Reclaim heap records no live message references (left behind when a
   crash separated the WAL from the heap file). *)
let sweep_heap_orphans t =
  match t.heap with
  | None -> ()
  | Some heap ->
    let referenced = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ m ->
        match m.stored with
        | Spilled (hrid, _) -> Hashtbl.replace referenced hrid ()
        | Inline _ -> ())
      t.messages;
    let orphans = ref [] in
    Heap_file.iter heap (fun hrid _ ->
        if not (Hashtbl.mem referenced hrid) then orphans := hrid :: !orphans);
    List.iter (Heap_file.free heap) !orphans

let open_store config =
  let heap =
    match config.dir, config.spill_threshold with
    | Some dir, Some _ ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      Some (Heap_file.create (Filename.concat dir "payloads.db"))
    | _ -> None
  in
  let t =
    {
      config;
      wal = None;
      heap;
      messages = Hashtbl.create 1024;
      queues = Hashtbl.create 16;
      slice_lifetimes = Hashtbl.create 64;
      lock_mgr = Lock_manager.create ();
      next_rid = 1;
      next_txn = 1;
      checkpoints = 0;
      last_logged_txn = 0;
      durable_txn = 0;
      wal_records_at_checkpoint = 0;
      compaction_fault = None;
    }
  in
  match config.dir with
  | None -> t
  | Some dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    (* a crash mid-compaction can strand the half-written temporary
       snapshot; it was never renamed, so it is dead weight — the real
       snapshot + WAL still hold the authoritative state *)
    (let tmp = snapshot_path dir ^ ".tmp" in
     if Sys.file_exists tmp then Sys.remove tmp);
    if Sys.file_exists (snapshot_path dir) then load_snapshot t (snapshot_path dir);
    let valid =
      Wal.replay (wal_path dir) (function
        | Wal.Commit { ops; _ } -> List.iter (apply_op t) ops
        | Wal.Checkpoint -> ())
    in
    (* cut off any torn tail before reopening in append mode: records
       appended after surviving garbage would never replay *)
    (if Sys.file_exists (wal_path dir) then
       let size = (Unix.stat (wal_path dir)).Unix.st_size in
       if valid < size then Unix.truncate (wal_path dir) valid);
    sweep_heap_orphans t;
    let wal = Wal.open_log ~sync:config.sync (wal_path dir) in
    {
      t with
      wal = Some wal;
      (* a non-empty recovered log must be truncated by the next
         checkpoint even if no new records are written this session *)
      wal_records_at_checkpoint = (if Wal.bytes_written wal > 0 then -1 else 0);
    }

let close t =
  Option.iter Wal.close t.wal;
  Option.iter Heap_file.close t.heap

(* ---- transactions ---- *)

type txn = {
  id : int;
  store : t;
  mutable ops : Wal.op list;  (* reversed; only the durable ones *)
  mutable undo : (unit -> unit) list;
  mutable finished : bool;
}

let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  { id; store = t; ops = []; undo = []; finished = false }

let txn_id txn = txn.id

let check_active txn =
  if txn.finished then invalid_arg "transaction already finished"

let insert txn ~queue ~payload ~extra ~enqueued_at ~durable =
  check_active txn;
  let t = txn.store in
  let rid = t.next_rid in
  let stored = store_payload t payload in
  ignore (apply_insert t ~rid ~queue ~stored ~extra ~enqueued_at);
  if durable then
    txn.ops <- Wal.Insert { rid; queue; payload; extra; enqueued_at } :: txn.ops;
  txn.undo <-
    (fun () ->
      (match stored, t.heap with
       | Spilled (hrid, _), Some heap -> Heap_file.free heap hrid
       | _ -> ());
      Hashtbl.remove t.messages rid;
      Vec.filter_in_place (fun r -> r <> rid) (queue_vec t queue))
    :: txn.undo;
  rid

let mark_processed txn rid =
  check_active txn;
  match Hashtbl.find_opt txn.store.messages rid with
  | None -> ()
  | Some m ->
    if not m.processed then begin
      m.processed <- true;
      txn.ops <- Wal.Mark_processed { rid } :: txn.ops;
      txn.undo <- (fun () -> m.processed <- false) :: txn.undo
    end

let slice_reset txn ~slicing ~key =
  check_active txn;
  let t = txn.store in
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.slice_lifetimes (slicing, key)) in
  let lifetime = prev + 1 in
  Hashtbl.replace t.slice_lifetimes (slicing, key) lifetime;
  txn.ops <- Wal.Slice_reset { slicing; key; lifetime } :: txn.ops;
  txn.undo <-
    (fun () -> Hashtbl.replace t.slice_lifetimes (slicing, key) prev) :: txn.undo

let delete txn rid =
  check_active txn;
  let t = txn.store in
  match Hashtbl.find_opt t.messages rid with
  | None -> ()
  | Some m ->
    if not m.deleted then begin
      m.deleted <- true;
      if t.config.log_deletions then
        (* emulate update-in-place logging: the before-image rides along *)
        txn.ops <- Wal.Delete { rid; image = payload t m } :: txn.ops;
      txn.undo <- (fun () -> m.deleted <- false) :: txn.undo
    end

let commit txn =
  check_active txn;
  txn.finished <- true;
  let t = txn.store in
  (match t.wal with
   | Some wal when txn.ops <> [] ->
     Wal.append wal (Wal.Commit { txn = txn.id; ops = List.rev txn.ops });
     t.last_logged_txn <- txn.id;
     (* under [Sync_always] (or an auto-barrier that just fired) nothing is
        pending, so the commit is already hardened *)
     if t.config.sync <> Wal.Sync_never && Wal.pending_records wal = 0 then
       t.durable_txn <- txn.id
   | _ -> ());
  Lock_manager.release_all t.lock_mgr ~txn:txn.id

(* ---- group commit ---- *)

let barrier t =
  match t.wal with
  | None -> false
  | Some wal ->
    let synced = Wal.barrier wal in
    if t.config.sync <> Wal.Sync_never && Wal.pending_records wal = 0 then
      t.durable_txn <- t.last_logged_txn;
    synced

let durable_upto t = t.durable_txn
let unsynced_commits t =
  match t.wal with Some wal -> Wal.pending_records wal | None -> 0

let unsynced_bytes t =
  match t.wal with Some wal -> Wal.pending_bytes wal | None -> 0

(* cheap accessor for the adaptive controller's per-tick sampling: [stats]
   folds the whole message table, which a control loop must not pay for *)
let wal_group_syncs t =
  match t.wal with Some wal -> Wal.group_syncs_performed wal | None -> 0

let abort txn =
  check_active txn;
  txn.finished <- true;
  List.iter (fun undo -> undo ()) txn.undo;
  Lock_manager.release_all txn.store.lock_mgr ~txn:txn.id

(* ---- reads ---- *)

let get t rid =
  match Hashtbl.find_opt t.messages rid with
  | Some m when not m.deleted -> Some m
  | _ -> None

let queue_rids t queue =
  match Hashtbl.find_opt t.queues queue with
  | None -> []
  | Some v ->
    List.rev
      (Vec.fold
         (fun acc rid -> match get t rid with Some _ -> rid :: acc | None -> acc)
         [] v)

let fold_queue t queue f acc =
  match Hashtbl.find_opt t.queues queue with
  | None -> acc
  | Some v ->
    Vec.fold
      (fun acc rid -> match get t rid with Some m -> f acc m | None -> acc)
      acc v

let queue_length t queue = fold_queue t queue (fun n _ -> n + 1) 0

let all_messages t =
  let live =
    Hashtbl.fold (fun _ m acc -> if m.deleted then acc else m :: acc) t.messages []
  in
  List.sort (fun a b -> compare a.rid b.rid) live

let slice_lifetime t ~slicing ~key =
  Option.value ~default:0 (Hashtbl.find_opt t.slice_lifetimes (slicing, key))

let unprocessed t =
  List.filter (fun m -> not m.processed) (all_messages t)

(* ---- maintenance ---- *)

let drop_tombstones t =
  let doomed =
    Hashtbl.fold (fun rid m acc -> if m.deleted then rid :: acc else acc) t.messages []
  in
  List.iter
    (fun rid ->
      match Hashtbl.find_opt t.messages rid with
      | None -> ()
      | Some m ->
        (match m.stored, t.heap with
         | Spilled (hrid, _), Some heap -> Heap_file.free heap hrid
         | _ -> ());
        Hashtbl.remove t.messages rid;
        Vec.filter_in_place (fun r -> r <> rid) (queue_vec t m.queue))
    doomed

let checkpoint t =
  (match t.config.dir with
   | None -> ()
   | Some dir ->
     let wal_records =
       match t.wal with Some wal -> Wal.records_written wal | None -> 0
     in
     let heap_dirty =
       match t.heap with Some heap -> Heap_file.dirty_pages heap | None -> 0
     in
     if wal_records = t.wal_records_at_checkpoint && heap_dirty = 0 then
       (* nothing reached the log or the heap since the last checkpoint:
          the snapshot on disk is already current, skip the flush+fsync *)
       ()
     else begin
       (* the snapshot references heap rids: the heap must be durable first *)
       Option.iter Heap_file.flush_pages t.heap;
       let tmp = snapshot_path dir ^ ".tmp" in
       let oc = open_out_bin tmp in
       output_string oc (encode_snapshot t);
       flush oc;
       Unix.fsync (Unix.descr_of_out_channel oc);
       close_out oc;
       (* the rename is the commit point of the compaction: before it the
          old snapshot + full WAL are authoritative, after it the new
          snapshot is — either way a crash loses nothing. The fault hook
          lets tests crash on both sides of the point. *)
       (match t.compaction_fault with Some f -> f Before_rename | None -> ());
       Sys.rename tmp (snapshot_path dir);
       (match t.compaction_fault with Some f -> f After_rename | None -> ());
       Option.iter Wal.reset t.wal;
       t.wal_records_at_checkpoint <- wal_records;
       (* everything logged so far now lives in the fsynced snapshot *)
       t.durable_txn <- t.last_logged_txn
     end);
  drop_tombstones t;
  t.checkpoints <- t.checkpoints + 1

(* Compaction is checkpoint + WAL truncation viewed as space reclamation:
   harden the pending batch through the normal barrier, fold everything
   into a fresh snapshot, and report how many log bytes that retired. The
   rename inside [checkpoint] is the commit point, so compaction is
   crash-safe by construction — a torn run leaves either the old
   snapshot + full WAL or the new snapshot + stale WAL (whose replay is
   idempotent against snapshot-loaded state). *)
let compact t =
  ignore (barrier t);
  let wal_bytes () =
    match t.wal with Some w -> Wal.bytes_written w | None -> 0
  in
  let before = wal_bytes () in
  checkpoint t;
  max 0 (before - wal_bytes ())

let compaction_due t ~max_wal_bytes =
  max_wal_bytes > 0
  && (match t.wal with
     | Some w -> Wal.bytes_written w >= max_wal_bytes
     | None -> false)

let set_compaction_fault t fault = t.compaction_fault <- fault

type stats = {
  live_messages : int;
  tombstones : int;
  wal_bytes : int;
  wal_records : int;
  wal_syncs : int;
  wal_group_syncs : int;
  checkpoints : int;
  spilled_payloads : int;
  inline_bytes : int;
}

let stats t =
  let live, dead =
    Hashtbl.fold
      (fun _ m (live, dead) -> if m.deleted then (live, dead + 1) else (live + 1, dead))
      t.messages (0, 0)
  in
  let spilled, inline_bytes =
    Hashtbl.fold
      (fun _ m (spilled, bytes) ->
        match m.stored with
        | Spilled _ -> (spilled + 1, bytes)
        | Inline s -> (spilled, bytes + String.length s))
      t.messages (0, 0)
  in
  {
    live_messages = live;
    tombstones = dead;
    wal_bytes = (match t.wal with Some w -> Wal.bytes_written w | None -> 0);
    wal_records = (match t.wal with Some w -> Wal.records_written w | None -> 0);
    wal_syncs = (match t.wal with Some w -> Wal.syncs_performed w | None -> 0);
    wal_group_syncs =
      (match t.wal with Some w -> Wal.group_syncs_performed w | None -> 0);
    checkpoints = t.checkpoints;
    spilled_payloads = spilled;
    inline_bytes;
  }

(* Register the store's metrics with an observability registry: WAL
   fsync-latency and batch-fill histograms (via the log's hooks) plus
   callback counters/gauges over the counters the store already keeps.
   The fsync clock hook is only installed when the registry's timing path
   is enabled at instrumentation time — with metrics off the WAL keeps
   its zero-overhead fsync. *)
let instrument t reg =
  let module M = Demaq_obs.Metrics in
  (match t.wal with
   | None -> ()
   | Some wal ->
     let on_fsync =
       if M.timing_on reg then begin
         let h =
           M.histogram reg "demaq_wal_fsync_seconds"
             ~help:"WAL fsync wall-clock latency"
         in
         Some (fun ns -> M.observe h ns)
       end
       else None
     in
     let batch =
       M.histogram reg "demaq_wal_batch_records" ~shift:(-1) ~scale:1.
         ~help:"Commit records covered by each group-commit fsync"
     in
     Wal.set_instruments wal
       ~clock_ns:(fun () -> M.now reg)
       ?on_fsync
       ~on_batch:(fun n -> M.observe batch n)
       ());
  let s () = stats t in
  M.counter_fn reg "demaq_wal_bytes_total" ~help:"Bytes appended to the WAL"
    (fun () -> float_of_int (s ()).wal_bytes);
  M.counter_fn reg "demaq_wal_records_total" ~help:"Records appended to the WAL"
    (fun () -> float_of_int (s ()).wal_records);
  M.counter_fn reg "demaq_wal_syncs_total" ~help:"WAL fsyncs performed"
    (fun () -> float_of_int (s ()).wal_syncs);
  M.counter_fn reg "demaq_wal_group_syncs_total"
    ~help:"Group-commit barriers that actually synced"
    (fun () -> float_of_int (s ()).wal_group_syncs);
  M.counter_fn reg "demaq_store_checkpoints_total" ~help:"Checkpoints written"
    (fun () -> float_of_int (s ()).checkpoints);
  M.gauge_fn reg "demaq_store_live_messages" ~help:"Live messages in the store"
    (fun () -> float_of_int (s ()).live_messages);
  M.gauge_fn reg "demaq_store_tombstones" ~help:"Messages awaiting checkpoint drop"
    (fun () -> float_of_int (s ()).tombstones);
  M.gauge_fn reg "demaq_store_spilled_payloads"
    ~help:"Bodies stored out of line in the heap file"
    (fun () -> float_of_int (s ()).spilled_payloads);
  M.gauge_fn reg "demaq_store_inline_bytes" ~help:"Memory held by inline bodies"
    (fun () -> float_of_int (s ()).inline_bytes);
  M.gauge_fn reg "demaq_wal_unsynced_commits"
    ~help:"Commits appended but not yet covered by a barrier"
    (fun () -> float_of_int (unsynced_commits t))

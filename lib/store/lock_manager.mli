(** A strict two-phase lock manager with hierarchical resource names.

    The engine locks at two granularities, following §4.3 of the paper:
    whole queues, or individual slices ("by locking just the affected
    slices, full serializability of the individual message-processing
    transactions can be guaranteed without locking whole queues").

    The interface is non-blocking: {!acquire} either grants the lock or
    reports the conflicting holders, and the caller (the engine's scheduler
    or a benchmark driving simulated concurrency) decides whether to wait,
    retry, or abort. Wait-for edges registered via {!wait_on} feed the
    deadlock detector.

    The manager is domain-safe: every operation is atomic under an
    internal mutex, so transactions running on different worker domains
    may acquire and release concurrently. *)

type mode = Shared | Exclusive

type resource =
  | Queue_lock of string
  | Slice_lock of string * string  (** slicing name, slice key *)
  | Message_lock of int

val resource_to_string : resource -> string

type t

val create : unit -> t

type outcome = Granted | Conflict of int list
(** [Conflict txns] lists the transactions holding an incompatible lock. *)

val acquire : t -> txn:int -> resource -> mode -> outcome
(** Re-entrant; a shared lock held solely by [txn] upgrades to exclusive. *)

val release_all : t -> txn:int -> unit
(** Strict 2PL: all locks are released together at commit/abort. *)

val held : t -> txn:int -> (resource * mode) list

val wait_on : t -> txn:int -> resource -> unit
(** Record that [txn] is waiting for [resource] (for deadlock detection). *)

val stop_waiting : t -> txn:int -> unit

val would_deadlock : t -> txn:int -> resource -> bool
(** Would adding a wait-for edge from [txn] to the holders of [resource]
    close a cycle in the wait-for graph? *)

val active_locks : t -> int

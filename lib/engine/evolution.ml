(* Dynamic evolution (paper §5 future work).

   "Demaq applications currently rely on a static set of queues, slicings,
   and rule definitions that cannot be adapted during system runtime ...
   clearly, this is unacceptable for zero-downtime environments." [evolve]
   applies an incremental script (additional create statements and [drop
   rule] statements) to a running engine context: the combined program is
   re-analyzed as a whole, new definitions are registered, and the rule
   set is recompiled — without stopping the engine or touching stored
   messages. New rules apply to all messages processed from now on; new
   properties and slicings only affect messages enqueued after the
   evolution (property values and memberships are fixed at creation,
   §2.2). The swap happens under the executor's state lock, so no message
   is processed against a half-updated definition set. *)

module Qm = Demaq_mq.Queue_manager
module Qdl = Demaq_lang.Qdl
module Analysis = Demaq_lang.Analysis
module Compiler = Demaq_lang.Compiler

let evolve (ctx : Executor.t) src =
  match Qdl.parse_program_result src with
  | Error msg -> Error msg
  | Ok statements ->
    let drops =
      List.filter_map (function Qdl.Drop_rule n -> Some n | _ -> None) statements
    in
    let additions =
      List.filter (function Qdl.Drop_rule _ -> false | _ -> true) statements
    in
    let current = Compiler.source_program ctx.Executor.compiled in
    let existing_rules = List.map (fun r -> r.Qdl.rname) (Qdl.rules current) in
    let missing = List.filter (fun n -> not (List.mem n existing_rules)) drops in
    if missing <> [] then
      Error
        (Printf.sprintf "cannot drop unknown rule%s: %s"
           (if List.length missing = 1 then "" else "s")
           (String.concat ", " missing))
    else begin
      let base =
        List.filter
          (function
            | Qdl.Create_rule r -> not (List.mem r.Qdl.rname drops)
            | _ -> true)
          current
      in
      let combined = base @ additions in
      let analysis = Analysis.analyze combined in
      if not analysis.Analysis.ok then
        Error
          (String.concat "\n"
             (List.filter_map
                (fun d ->
                  if d.Analysis.severity = Analysis.Error then
                    Some (Format.asprintf "%a" Analysis.pp_diagnostic d)
                  else None)
                analysis.Analysis.diagnostics))
      else
        Executor.locked ctx (fun () ->
            List.iter
              (function
                | Qdl.Create_queue q -> Qm.add_queue ctx.Executor.qm q
                | Qdl.Create_property p -> Qm.add_property ctx.Executor.qm p
                | Qdl.Create_slicing s -> Qm.add_slicing ctx.Executor.qm s
                | Qdl.Create_rule _ | Qdl.Drop_rule _ -> ())
              additions;
            ctx.Executor.compiled <-
              Compiler.compile ~optimize:ctx.Executor.cfg.Executor.optimize combined;
            Ok ())
    end

(** The HTTP ingress: maps {!Demaq_net.Http} requests onto a running
    {!Server}.

    Observability endpoints (always served):
    - [GET /metrics] — Prometheus text exposition
    - [GET /stats.json] — full registry snapshot
    - [GET /trace] — retained lifecycle spans, JSONL; [?queue=<name>]
      and [?rid=<n>] narrow to one queue / one message
    - [GET /flows] — retained causal-flow summaries, JSON array
    - [GET /flow/<id>] — one flow's cascade tree as JSON; [<id>] is a
      flow id, or a bare rid (all digits) resolved to its flow first
    - [GET /healthz] — liveness probe

    Message ingress (when [enqueue] is on):
    - [POST /enqueue/<queue>] — parse the XML body and enqueue it through
      the transactional path ({!Server.inject}); answers [202 Accepted]
      with the assigned rid, [400] on malformed XML, [404] for an unknown
      queue, and [422] when the queue manager rejects the message (schema
      violation, property error — a permanent rejection a client must not
      retry; [429] stays reserved for genuine backpressure). An
      [X-Demaq-Flow] request header is adopted as the injected message's
      flow id, so a client can stitch its own end-to-end traces. The
      handler only enqueues; draining is the serve loop's job. *)

val handler : ?enqueue:bool -> Server.t -> Demaq_net.Http.handler
(** [handler srv] with [enqueue] defaulting to [true]. Safe to call from
    several accept-pool domains concurrently ({!Server.inject} is
    transactional and mutex-protected). *)

val gate :
  Server.t -> Demaq_net.Http.request -> Demaq_net.Http.response option
(** The admission gate as an [Http.start ?gate] hook: for an enqueue POST
    that {!Server.admission} sheds, answers [429] with a [Retry-After]
    header — before the request body is read, so a refused request costs
    a head parse and nothing else. [None] (admit) for everything else;
    observability GETs are never gated. *)

(* The self-tuning group-commit controller (ROADMAP item 5).

   Fixed [batch_size] is wrong most of the time: too small and every
   message pays a near-private fsync; too large and the durability
   barrier — which gates every externalized effect — grows a latency tail.
   The controller closes the loop from the metrics registry back into the
   engine, AIMD-style (the TCP congestion-avoidance shape, which is the
   right one here for the same reason it is there: the cost of
   overshooting is asymmetric):

   - additive increase: while barriers stay under the latency target and
     the observed batch fill keeps up with the current target (i.e. the
     offered load can actually use a bigger batch), grow the target by a
     fixed step;
   - multiplicative decrease: the moment the windowed barrier p99 blows
     the target, cut the batch target (and the flush deadline) by a
     factor and hold still for a cooldown, so one congested fsync device
     does not trigger a full-depth oscillation.

   The core is a pure state machine over explicit observations — no
   clocks, no registry — so the unit tests can drive it through overload
   steps deterministically. [sampler] is the small impure shim that
   derives those observations from the live metrics registry (windowed
   batch fill from counter deltas, windowed barrier p99 from histogram
   bucket deltas). *)

module Metrics = Demaq_obs.Metrics

type config = {
  min_batch : int;
  max_batch : int;
  target_barrier_ms : float;  (* windowed barrier p99 budget *)
  fill_ratio : float;
      (* grow only when observed fill >= fill_ratio * current target:
         an idle node never inflates its batch target on no evidence *)
  increase : int;  (* additive step, messages *)
  decrease : float;  (* multiplicative cut, in (0, 1) *)
  cooldown : int;  (* ticks to hold after a decrease *)
  min_flush_ms : float;
  max_flush_ms : float;
}

let default_config =
  {
    min_batch = 1;
    max_batch = 256;
    target_barrier_ms = 5.;
    fill_ratio = 0.5;
    increase = 4;
    decrease = 0.5;
    cooldown = 4;
    min_flush_ms = 1.;
    max_flush_ms = 50.;
  }

type decision = Increased | Decreased | Held

type t = {
  cfg : config;
  mutable batch : int;
  mutable flush_ms : float;
  mutable cooldown_left : int;
  mutable increases : int;
  mutable decreases : int;
}

let create ?(cfg = default_config) ?batch () =
  let batch =
    match batch with
    | Some b -> min cfg.max_batch (max cfg.min_batch b)
    | None -> cfg.min_batch
  in
  {
    cfg;
    batch;
    flush_ms = cfg.max_flush_ms;
    cooldown_left = 0;
    increases = 0;
    decreases = 0;
  }

let config t = t.cfg
let batch t = t.batch
let flush_ms t = t.flush_ms
let increases t = t.increases
let decreases t = t.decreases

(* One control tick. [fill] is the average messages per barrier over the
   window; [barrier_p99_ms] its barrier p99 (nan = no barriers observed,
   treated as "no congestion signal"). *)
let tick t ~fill ~barrier_p99_ms =
  let cfg = t.cfg in
  let congested =
    (not (Float.is_nan barrier_p99_ms)) && barrier_p99_ms > cfg.target_barrier_ms
  in
  if congested && (t.batch > cfg.min_batch || t.flush_ms > cfg.min_flush_ms)
  then begin
    t.batch <-
      max cfg.min_batch (int_of_float (float_of_int t.batch *. cfg.decrease));
    t.flush_ms <- Float.max cfg.min_flush_ms (t.flush_ms *. cfg.decrease);
    t.cooldown_left <- cfg.cooldown;
    t.decreases <- t.decreases + 1;
    Decreased
  end
  else if congested then begin
    (* already at the floor: keep holding, don't run the cooldown out *)
    t.cooldown_left <- cfg.cooldown;
    Held
  end
  else if t.cooldown_left > 0 then begin
    t.cooldown_left <- t.cooldown_left - 1;
    Held
  end
  else if
    t.batch < cfg.max_batch
    && (not (Float.is_nan fill))
    && fill >= cfg.fill_ratio *. float_of_int t.batch
  then begin
    t.batch <- min cfg.max_batch (t.batch + cfg.increase);
    t.flush_ms <- Float.min cfg.max_flush_ms (t.flush_ms *. 1.25);
    t.increases <- t.increases + 1;
    Increased
  end
  else Held

(* ---- deriving observations from the live registry ---- *)

(* Windowed rather than cumulative: the controller must see the last
   control interval, not the process lifetime — a cumulative batch-fill
   average would take thousands of barriers to notice a regime change. *)
type sampler = {
  ctl : t;
  barrier_window : Metrics.window;
  mutable last_processed : int;
  mutable last_group_syncs : int;
}

let sampler ctl ~barrier_hist ~processed ~group_syncs =
  {
    ctl;
    barrier_window = Metrics.window barrier_hist;
    last_processed = processed ();
    last_group_syncs = group_syncs ();
  }

(* Sample the window and run one control tick. [processed]/[group_syncs]
   read the cumulative counters; their deltas give the windowed fill. *)
let sample_and_tick s ~processed ~group_syncs =
  let p = processed () in
  let g = group_syncs () in
  let dp = p - s.last_processed in
  let dg = g - s.last_group_syncs in
  s.last_processed <- p;
  s.last_group_syncs <- g;
  let barriers, p99_s = Metrics.window_delta s.barrier_window 0.99 in
  let fill =
    if dg > 0 then float_of_int dp /. float_of_int dg
    else if dp > 0 then
      (* commits happened but no barrier synced (all no-ops / in-memory):
         report the full delta as one batch so fill still reflects load *)
      float_of_int dp
    else Float.nan
  in
  let barrier_p99_ms = if barriers > 0 then p99_s *. 1e3 else Float.nan in
  tick s.ctl ~fill ~barrier_p99_ms

let instrument t reg =
  Metrics.gauge_fn reg "demaq_controller_batch_target"
    ~help:"Group-commit batch target chosen by the adaptive controller"
    (fun () -> float_of_int t.batch);
  Metrics.gauge_fn reg "demaq_controller_flush_deadline_ms"
    ~help:"Flush deadline (ms) chosen by the adaptive controller"
    (fun () -> t.flush_ms);
  Metrics.counter_fn reg "demaq_controller_increases_total"
    ~help:"Additive batch-target increases" (fun () -> float_of_int t.increases);
  Metrics.counter_fn reg "demaq_controller_decreases_total"
    ~help:"Multiplicative batch-target decreases"
    (fun () -> float_of_int t.decreases)

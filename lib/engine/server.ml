module Tree = Demaq_xml.Tree
module Value = Demaq_xquery.Value
module Ast = Demaq_xquery.Ast
module Eval = Demaq_xquery.Eval
module Context = Demaq_xquery.Context
module Update = Demaq_xquery.Update
module Store = Demaq_store.Message_store
module Lock = Demaq_store.Lock_manager
module Qm = Demaq_mq.Queue_manager
module Message = Demaq_mq.Message
module Defs = Demaq_mq.Defs
module Qdl = Demaq_lang.Qdl
module Analysis = Demaq_lang.Analysis
module Compiler = Demaq_lang.Compiler
module Prefilter = Demaq_lang.Prefilter
module Network = Demaq_net.Network
module Wsdl = Demaq_net.Wsdl

let log = Logs.Src.create "demaq.server" ~doc:"Demaq server"

module Log = (val Logs.src_log log : Logs.LOG)

type config = {
  merged_plans : bool;
  use_slice_index : bool;
  lock_granularity : [ `Queue | `Slice ];
  use_prefilter : bool;
  trace_capacity : int;
  gc_every : int;
  system_error_queue : string option;
  optimize : bool;
  node_name : string;
  transmit_retries : int;
  retry_backoff : int;
  batch_size : int;
  group_commit : bool;
}

let default_config =
  {
    merged_plans = false;
    use_slice_index = true;
    lock_granularity = `Slice;
    use_prefilter = true;
    trace_capacity = 0;
    gc_every = 0;
    system_error_queue = None;
    optimize = true;
    node_name = "demaq-node";
    transmit_retries = 3;
    retry_backoff = 1;
    batch_size = 1;
    group_commit = false;
  }

type gateway_binding = { endpoint : string; replies_to : string option }

type trace_entry = {
  tr_tick : int;
  tr_rule : string;
  tr_trigger : int;  (* rid of the triggering message *)
  tr_queue : string;
  tr_updates : int;  (* pending updates the evaluation produced *)
  tr_skipped : bool;  (* suppressed by the condition pre-filter *)
}

type stats = {
  processed : int;
  rule_evaluations : int;
  messages_created : int;
  errors_raised : int;
  transmissions : int;
  timers_fired : int;
  gc_collected : int;
  prefilter_skips : int;
  txn_aborts : int;
  transmit_retries : int;
  dead_letters : int;
  wal_group_syncs : int;
  batch_fill : float;
  syncs_per_message : float;
}

type t = {
  cfg : config;
  qm : Qm.t;
  st : Store.t;
  net : Network.t;
  mutable compiled : Compiler.t;
  sched : Scheduler.t;
  timers : Timer_wheel.t;
  clk : Clock.t;
  node_cache : (int, Tree.node) Hashtbl.t;  (* rid -> body node *)
  name_cache : (int, Prefilter.Names.t) Hashtbl.t;
      (* rid -> element-name synopsis for condition pre-filtering *)
  collection_cache : (string, Value.t) Hashtbl.t;
  bindings : (string, gateway_binding) Hashtbl.t;  (* outgoing queue -> route *)
  interfaces : (string, Wsdl.t) Hashtbl.t;  (* WSDL file name -> parsed model *)
  sent : (int, unit) Hashtbl.t;  (* rids already handed to the transport *)
  outbox : (string, int Queue.t) Hashtbl.t;
      (* untransmitted rids per outgoing gateway queue, so the pump never
         rescans whole queues *)
  mutable s_processed : int;
  mutable s_rule_evaluations : int;
  mutable s_messages_created : int;
  mutable s_errors_raised : int;
  mutable s_transmissions : int;
  mutable s_timers_fired : int;
  mutable s_gc_collected : int;
  mutable s_prefilter_skips : int;
  mutable s_txn_aborts : int;
  mutable s_transmit_retries : int;
  mutable s_dead_letters : int;
  mutable fault : Fault.t option;  (* armed fault-injection points *)
  mutable blamed_rule : (string * string option) option;
      (* rule under evaluation/application (name, its error queue), so an
         exception escaping the transaction keeps rule-level error
         attribution (§3.6) *)
  mutable trace_log : trace_entry list;  (* newest first, bounded *)
  mutable trace_len : int;
}

exception Deployment_error of string

let queue_manager t = t.qm
let store t = t.st
let clock t = t.clk
let network t = t.net
let config t = t.cfg
let explain t = Compiler.explain t.compiled
let set_fault t fault = t.fault <- fault

(* Group commit (§4.1; Gray's "Queues Are Databases"): under
   [Wal.Sync_batch] commits append their log record but defer the fsync;
   [harden] issues the barrier that makes everything logged so far durable.
   The engine must call it before any effect escapes the process — gateway
   transmissions, timer-armed retries — so that no externalized action ever
   references a transaction a crash could still lose. *)
let harden t = if t.cfg.group_commit then ignore (Store.barrier t.st)

(* Crash safety (§3.1, §3.6): every state change runs inside [in_txn], so
   that an exception anywhere — evaluator bugs, injected faults, broken
   endpoint handlers — aborts the transaction and releases its locks via
   [Store.abort] instead of leaking them. The caller decides how to surface
   the re-raised exception (usually by routing an error message in a fresh
   transaction). *)
let in_txn t f =
  let txn = Store.begin_txn t.st in
  match f txn with
  | v ->
    Store.commit txn;
    v
  | exception e ->
    t.s_txn_aborts <- t.s_txn_aborts + 1;
    Store.abort txn;
    (* earlier transactions of the current batch are committed but possibly
       unsynced; an abort must not widen their exposure window *)
    harden t;
    raise e

let exn_description = function
  | Fault.Injected msg -> msg
  | Context.Eval_error msg -> msg
  | e -> Printexc.to_string e

let set_collection t name docs =
  Qm.set_collection t.qm name docs;
  Hashtbl.remove t.collection_cache name

let outbox_for t queue =
  match Hashtbl.find_opt t.outbox queue with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.outbox queue q;
    q

let note_outgoing t (m : Message.t) =
  match Qm.find_queue t.qm m.Message.queue with
  | Some { Defs.kind = Defs.Outgoing_gateway; _ } ->
    Queue.push m.Message.rid (outbox_for t m.Message.queue)
  | _ -> ()

let bind_gateway t ~queue ?endpoint ?replies_to () =
  let endpoint = Option.value ~default:queue endpoint in
  Hashtbl.replace t.bindings queue { endpoint; replies_to }

let register_interface t ~file text =
  match Wsdl.parse text with
  | Ok wsdl ->
    Hashtbl.replace t.interfaces file wsdl;
    Ok ()
  | Error _ as e -> e

(* The WSDL port declared on the message's gateway queue, if its interface
   file has been registered. *)
let gateway_port t (qdef : Defs.queue_def) =
  match qdef.Defs.interface, qdef.Defs.port with
  | Some file, Some port_name -> (
    match Hashtbl.find_opt t.interfaces file with
    | Some wsdl -> Wsdl.find_port wsdl port_name
    | None -> None)
  | _ -> None

(* ---- node handles for message bodies ---- *)

(* Rules see messages as document nodes (§3.4: qs:message() "returns the
   document node of the currently processed message"); one document per
   message, cached, so node identity and document order are stable across
   qs:queue()/qs:slice() calls. *)
let message_node t (m : Message.t) =
  match Hashtbl.find_opt t.node_cache m.Message.rid with
  | Some n -> n
  | None ->
    let n = Eval.doc_node_of_tree (Message.body m) in
    Hashtbl.replace t.node_cache m.Message.rid n;
    n

let collection_value t name =
  match Hashtbl.find_opt t.collection_cache name with
  | Some v -> v
  | None ->
    let v =
      List.map
        (fun tree -> Value.Node (Eval.doc_node_of_tree tree))
        (Qm.collection t.qm name)
    in
    Hashtbl.replace t.collection_cache name v;
    v

(* ---- evaluation host (the qs: library, §3.4/§3.5) ---- *)

let host_for t (m : Message.t) ~slice_ctx : Context.host =
  let queue_nodes name =
    List.map (fun msg -> Value.Node (message_node t msg)) (Qm.queue_messages t.qm name)
  in
  {
    Context.h_message = (fun () -> [ Value.Node (message_node t m) ]);
    h_queue =
      (fun name ->
        queue_nodes (Option.value ~default:m.Message.queue name));
    h_property =
      (fun name ->
        match Message.property m name with
        | Some a -> [ Value.Atom a ]
        | None -> []);
    h_slice =
      (fun () ->
        match slice_ctx with
        | None -> Context.eval_error "qs:slice() outside a slicing rule"
        | Some (slicing, key) ->
          List.map
            (fun msg -> Value.Node (message_node t msg))
            (Qm.slice_messages t.qm ~use_index:t.cfg.use_slice_index ~slicing ~key ()));
    h_slicekey =
      (fun () ->
        match slice_ctx with
        | None -> Context.eval_error "qs:slicekey() outside a slicing rule"
        | Some (slicing, _) -> (
          match Qm.find_slicing t.qm slicing with
          | None -> []
          | Some sdef -> (
            match Message.property m sdef.Defs.slice_property with
            | Some a -> [ Value.Atom a ]
            | None -> [])));
    h_collection = (fun name -> collection_value t name);
    h_now = (fun () -> Clock.now t.clk);
  }

(* ---- error routing (§3.6) ---- *)

let queue_priority t name =
  match Qm.find_queue t.qm name with Some q -> q.Defs.priority | None -> 0

let schedule_message t (m : Message.t) =
  Scheduler.add t.sched ~priority:(queue_priority t m.Message.queue) m.Message.rid

let record_trace t entry =
  if t.cfg.trace_capacity > 0 then begin
    t.trace_log <- entry :: t.trace_log;
    t.trace_len <- t.trace_len + 1;
    if t.trace_len > 2 * t.cfg.trace_capacity then begin
      t.trace_log <- List.filteri (fun i _ -> i < t.cfg.trace_capacity) t.trace_log;
      t.trace_len <- t.cfg.trace_capacity
    end
  end

let trace t = List.filteri (fun i _ -> i < t.cfg.trace_capacity) t.trace_log

let pp_trace_entry fmt e =
  Format.fprintf fmt "t=%d %s(%s#%d) -> %s" e.tr_tick e.tr_rule e.tr_queue
    e.tr_trigger
    (if e.tr_skipped then "prefiltered" else Printf.sprintf "%d updates" e.tr_updates)


let rec raise_error t txn ~kind ~description ?rule ?rule_error_queue
    ~source_queue ?initial_message () =
  t.s_errors_raised <- t.s_errors_raised + 1;
  let queue_error_queue =
    match Qm.find_queue t.qm source_queue with
    | Some q -> q.Defs.error_queue
    | None -> None
  in
  let target =
    match rule_error_queue, queue_error_queue, t.cfg.system_error_queue with
    | Some q, _, _ -> Some q
    | None, Some q, _ -> Some q
    | None, None, q -> q
  in
  (* An error raised while already processing the target error queue would
     loop; route it to the system queue, or drop it. *)
  let target =
    if target = Some source_queue then
      if t.cfg.system_error_queue <> Some source_queue then t.cfg.system_error_queue
      else None
    else target
  in
  match target with
  | None ->
    Log.warn (fun f ->
        f "dropping unroutable error (%s in %s): %s"
          (Errors.kind_element kind) source_queue description)
  | Some error_queue ->
    let payload =
      Errors.to_xml ~kind ~description ?rule ~queue:source_queue ?initial_message ()
    in
    enqueue_internal t txn ?rule ~trigger:None ~explicit:[] ~queue:error_queue
      ~payload ~origin_queue:source_queue ()

(* Enqueue + schedule + echo-timer registration; failures are routed as
   errors themselves (bounded by the loop protection above). *)
and enqueue_internal t txn ?rule ?rule_error_queue ?(trigger = None) ~explicit
    ~queue ~payload ~origin_queue () =
  match Qm.enqueue t.qm txn ?rule ?trigger ~explicit ~queue ~payload () with
  | Ok m ->
    t.s_messages_created <- t.s_messages_created + 1;
    schedule_message t m;
    note_outgoing t m;
    (match Qm.find_queue t.qm queue with
     | Some { Defs.kind = Defs.Echo; _ } -> register_echo_timer t txn ?rule m
     | _ -> ())
  | Error e ->
    let kind =
      match e with
      | Qm.Unknown_queue _ -> Errors.Unknown_queue
      | Qm.Schema_violation _ -> Errors.Schema_violation
      | Qm.Fixed_property_set _ | Qm.Property_error _ -> Errors.Property_error
    in
    raise_error t txn ~kind ~description:(Qm.error_to_string e) ?rule
      ?rule_error_queue ~source_queue:origin_queue ~initial_message:payload ()

and register_echo_timer t txn ?rule (m : Message.t) =
  let timeout =
    match Message.property m "timeout" with
    | Some a -> (
      match Value.cast Value.T_integer a with
      | Ok (Value.Integer n) -> Some n
      | _ -> None)
    | None -> None
  in
  let target =
    Option.map Value.string_of_atomic (Message.property m "target")
  in
  match timeout, target with
  | Some timeout, Some target ->
    Timer_wheel.schedule t.timers ~due:(m.Message.enqueued_at + timeout)
      ~rid:m.Message.rid ~target
  | _ ->
    raise_error t txn ~kind:Errors.Property_error
      ~description:
        "echo queue messages need integer 'timeout' and string 'target' properties"
      ?rule ~source_queue:m.Message.queue ~initial_message:(Message.body m) ()

(* ---- rule execution (§3.1) ---- *)

type eval_unit = {
  eu_rule : string;
  eu_error_queue : string option;
  eu_slice_ctx : (string * string) option;
  eu_body : Ast.expr;
  eu_requirements : string list;
}

let units_for t (m : Message.t) =
  let queue_units =
    match Compiler.plan_for t.compiled m.Message.queue with
    | None -> []
    | Some plan ->
      if t.cfg.merged_plans then
        [ { eu_rule = "<merged:" ^ plan.Compiler.target ^ ">";
            eu_error_queue = None;
            eu_slice_ctx = None;
            eu_body = plan.Compiler.merged;
            eu_requirements = [] } ]
      else
        List.map
          (fun (r : Compiler.compiled_rule) ->
            { eu_rule = r.cr_name;
              eu_error_queue = r.cr_error_queue;
              eu_slice_ctx = None;
              eu_body = r.cr_body;
              eu_requirements = r.cr_requirements })
          plan.Compiler.rules
  in
  let slice_units =
    List.concat_map
      (fun (mem : Message.membership) ->
        if not (Qm.membership_current t.qm m mem) then []
        else
          match Compiler.plan_for t.compiled mem.Message.m_slicing with
          | None -> []
          | Some plan ->
            let ctx = Some (mem.Message.m_slicing, mem.Message.m_key) in
            if t.cfg.merged_plans then
              [ { eu_rule = "<merged:" ^ plan.Compiler.target ^ ">";
                  eu_error_queue = None;
                  eu_slice_ctx = ctx;
                  eu_body = plan.Compiler.merged;
                  eu_requirements = [] } ]
            else
              List.map
                (fun (r : Compiler.compiled_rule) ->
                  { eu_rule = r.cr_name;
                    eu_error_queue = r.cr_error_queue;
                    eu_slice_ctx = ctx;
                    eu_body = r.cr_body;
                    (* slice rules react to slice membership, not only to
                       the triggering message's own content: conditions
                       usually inspect qs:slice(), so no prefiltering *)
                    eu_requirements = [] })
                plan.Compiler.rules)
      m.Message.memberships
  in
  queue_units @ slice_units

let acquire_locks t txn (m : Message.t) =
  let locks = Store.locks t.st in
  let txn_id = Store.txn_id txn in
  let resources =
    match t.cfg.lock_granularity with
    | `Queue -> [ Lock.Queue_lock m.Message.queue ]
    | `Slice ->
      Lock.Message_lock m.Message.rid
      :: List.map
           (fun (mem : Message.membership) ->
             Lock.Slice_lock (mem.Message.m_slicing, mem.Message.m_key))
           m.Message.memberships
  in
  List.iter (fun r -> ignore (Lock.acquire locks ~txn:txn_id r Lock.Exclusive)) resources

let apply_updates t txn (m : Message.t) tagged =
  List.iter
    (fun (eu, update) ->
      t.blamed_rule <- Some (eu.eu_rule, eu.eu_error_queue);
      Option.iter Fault.before_apply t.fault;
      match update with
      | Update.Enqueue { payload; queue; props } ->
        enqueue_internal t txn ~rule:eu.eu_rule ?rule_error_queue:eu.eu_error_queue
          ~trigger:(Some m) ~explicit:props ~queue ~payload
          ~origin_queue:m.Message.queue ()
      | Update.Reset { slicing; key } -> (
        let resolved =
          match slicing, key with
          | Some s, Some k -> Some (s, Message.key_string k)
          | Some s, None -> (
            (* explicit slicing, key of the current message *)
            match Qm.find_slicing t.qm s with
            | Some sdef -> (
              match Message.property m sdef.Defs.slice_property with
              | Some a -> Some (s, Message.key_string a)
              | None -> None)
            | None -> None)
          | None, _ -> eu.eu_slice_ctx
        in
        match resolved with
        | Some (slicing, key) -> Qm.reset_slice t.qm txn ~slicing ~key
        | None ->
          raise_error t txn ~kind:Errors.Evaluation_error
            ~description:"do reset: no slice in scope and none specified"
            ~rule:eu.eu_rule ?rule_error_queue:eu.eu_error_queue
            ~source_queue:m.Message.queue ~initial_message:(Message.body m) ()))
    tagged

(* Entries in the per-rid caches must die with their message: the retention
   GC reports what it collected and the engine purges the body/name caches,
   the sent table, and any stale outbox entries (§2.3.3 decouples physical
   cleanup from processing, but the caches must not outlive it). *)
let purge_collected t rids =
  if rids <> [] then begin
    let collected = Hashtbl.create (List.length rids) in
    List.iter
      (fun rid ->
        Hashtbl.replace collected rid ();
        Hashtbl.remove t.node_cache rid;
        Hashtbl.remove t.name_cache rid;
        Hashtbl.remove t.sent rid)
      rids;
    Hashtbl.iter
      (fun _ q ->
        let keep = Queue.create () in
        Queue.iter (fun rid -> if not (Hashtbl.mem collected rid) then Queue.push rid keep) q;
        Queue.clear q;
        Queue.transfer keep q)
      t.outbox
  end

let run_gc t =
  let rids = Qm.gc_collect t.qm in
  purge_collected t rids;
  let n = List.length rids in
  t.s_gc_collected <- t.s_gc_collected + n;
  n

let process_message t rid =
  match Qm.get t.qm rid with
  | None -> false  (* collected before its turn came *)
  | Some m when m.Message.processed -> false  (* rescheduled duplicate *)
  | Some m ->
    t.blamed_rule <- None;
    let work txn =
    acquire_locks t txn m;
    let units = units_for t m in
    let message_names =
      if t.cfg.use_prefilter
         && List.exists (fun eu -> eu.eu_requirements <> []) units
      then
        Some
          (match Hashtbl.find_opt t.name_cache m.Message.rid with
           | Some names -> names
           | None ->
             let names = Prefilter.element_names (Message.body m) in
             Hashtbl.replace t.name_cache m.Message.rid names;
             names)
      else None
    in
    let units =
      match message_names with
      | None -> units
      | Some names ->
        List.filter
          (fun eu ->
            if Prefilter.may_match ~requirements:eu.eu_requirements ~names then true
            else begin
              t.s_prefilter_skips <- t.s_prefilter_skips + 1;
              record_trace t
                {
                  tr_tick = Clock.now t.clk;
                  tr_rule = eu.eu_rule;
                  tr_trigger = m.Message.rid;
                  tr_queue = m.Message.queue;
                  tr_updates = 0;
                  tr_skipped = true;
                };
              false
            end)
          units
    in
    (* Phase 1: evaluate all pertinent rules against the same snapshot,
       accumulating the pending update list. *)
    let tagged =
      List.concat_map
        (fun eu ->
          t.s_rule_evaluations <- t.s_rule_evaluations + 1;
          t.blamed_rule <- Some (eu.eu_rule, eu.eu_error_queue);
          Option.iter Fault.before_eval t.fault;
          let host = host_for t m ~slice_ctx:eu.eu_slice_ctx in
          let env = Context.make ~host () in
          let env =
            { env with Context.item = Some (Value.Node (message_node t m)) }
          in
          match Eval.eval_with_updates env eu.eu_body with
          | _, updates ->
            record_trace t
              {
                tr_tick = Clock.now t.clk;
                tr_rule = eu.eu_rule;
                tr_trigger = m.Message.rid;
                tr_queue = m.Message.queue;
                tr_updates = List.length updates;
                tr_skipped = false;
              };
            List.map (fun u -> (eu, u)) updates
          | exception Context.Eval_error description ->
            raise_error t txn ~kind:Errors.Evaluation_error ~description
              ~rule:eu.eu_rule ?rule_error_queue:eu.eu_error_queue
              ~source_queue:m.Message.queue ~initial_message:(Message.body m) ();
            [])
        units
    in
    (* Phase 2: execute the pending actions. *)
    apply_updates t txn m tagged;
    (* Echo-queue messages stay unprocessed until their timer fires, so a
       restart can re-register the pending timeout (§2.1.3). *)
    let is_echo =
      match Qm.find_queue t.qm m.Message.queue with
      | Some { Defs.kind = Defs.Echo; _ } -> true
      | _ -> false
    in
    if not is_echo then Qm.mark_processed t.qm txn m
    in
    (match in_txn t work with
     | () -> ()
     | exception e ->
       (* [in_txn] already aborted the transaction and released its locks;
          §3.6 demands the failure become an error message rather than a
          wedged engine, so route it and neutralize the trigger in a fresh
          transaction, then keep processing. *)
       Log.warn (fun f ->
           f "processing of #%d aborted: %s" m.Message.rid (exn_description e));
       let rule, rule_error_queue =
         match t.blamed_rule with
         | Some (r, eq) -> (Some r, eq)
         | None -> (None, None)
       in
       (try
          in_txn t (fun txn ->
              raise_error t txn ~kind:Errors.Evaluation_error
                ~description:(exn_description e) ?rule ?rule_error_queue
                ~source_queue:m.Message.queue
                ~initial_message:(Message.body m) ();
              Qm.mark_processed t.qm txn m)
        with e2 ->
          Log.err (fun f ->
              f "error routing for #%d failed: %s" m.Message.rid
                (exn_description e2))));
    t.s_processed <- t.s_processed + 1;
    if t.cfg.gc_every > 0 && t.s_processed mod t.cfg.gc_every = 0 then
      ignore (run_gc t);
    true

(* ---- public driving API ---- *)

type step_result = Processed of Message.t | Idle

let rec step t =
  match Scheduler.pop t.sched with
  | None -> Idle
  | Some rid ->
    let m = Qm.get t.qm rid in
    if process_message t rid then Processed (Option.get m) else step t

let inject t ?(props = []) ~queue payload =
  match
    in_txn t (fun txn ->
        match Qm.enqueue t.qm txn ~explicit:props ~queue ~payload () with
        | Ok m ->
          t.s_messages_created <- t.s_messages_created + 1;
          schedule_message t m;
          note_outgoing t m;
          (match Qm.find_queue t.qm queue with
           | Some { Defs.kind = Defs.Echo; _ } -> register_echo_timer t txn m
           | _ -> ());
          m
        | Error e -> raise (Qm.Queue_error e))
  with
  | m -> Ok m
  | exception Qm.Queue_error e -> Error e

(* The errorqueue declared on the rule that created a message (used to
   route transport-time failures back to their originator, Fig. 10). *)
let creating_rule_route t (m : Message.t) =
  let creating_rule =
    Option.map Value.string_of_atomic (Message.property m Defs.Sysprop.rule)
  in
  let rule_error_queue =
    match creating_rule with
    | None -> None
    | Some rname ->
      List.find_map
        (fun plan ->
          List.find_map
            (fun (r : Compiler.compiled_rule) ->
              if r.cr_name = rname then r.cr_error_queue else None)
            plan.Compiler.rules)
        (Compiler.plans t.compiled)
  in
  (creating_rule, rule_error_queue)

let interface_check t (m : Message.t) (qdef : Defs.queue_def) =
  match gateway_port t qdef with
  | None -> Ok ()
  | Some port ->
    let root =
      match Tree.element_name (Message.body m) with
      | Some n -> Demaq_xml.Name.local n
      | None -> ""
    in
    if Wsdl.accepts_input port root then Ok ()
    else
      Error
        (Printf.sprintf
           "message <%s> is not an input of port %s (expected one of: %s)" root
           port.Wsdl.port_name (Wsdl.expected_inputs port))

(* Bounded exponential backoff before retrying the transmission whose
   [attempt]th try just failed. *)
let backoff_delay t attempt = t.cfg.retry_backoff * (1 lsl min (attempt - 1) 16)

(* A failure is worth retrying when the condition is plausibly transient: a
   partitioned endpoint can reconnect and a timed-out wire can clear, but
   an unresolvable name stays unresolvable. *)
let retryable_failure = function
  | Network.Disconnected _ | Network.Timeout _ -> true
  | Network.Name_resolution _ -> false

let transmit t ?(attempt = 1) (m : Message.t) (qdef : Defs.queue_def) =
  t.s_transmissions <- t.s_transmissions + 1;
  if attempt > 1 then t.s_transmit_retries <- t.s_transmit_retries + 1;
  let binding =
    match Hashtbl.find_opt t.bindings m.Message.queue with
    | Some b -> b
    | None -> { endpoint = m.Message.queue; replies_to = None }
  in
  let endpoint =
    match Message.property m "recipient" with
    | Some a -> Value.string_of_atomic a
    | None -> binding.endpoint
  in
  let reliable = List.mem_assoc "WS-ReliableMessaging" qdef.Defs.extensions in
  (* Delivery is confirmed only by the transport: the rid enters [t.sent]
     when the attempt succeeds or the message is given up on — never
     before, so a failed transmission is not forfeited. *)
  let dead_letter ~kind ~description =
    Hashtbl.replace t.sent m.Message.rid ();
    let creating_rule, rule_error_queue = creating_rule_route t m in
    in_txn t (fun txn ->
        raise_error t txn ~kind ~description ?rule:creating_rule
          ?rule_error_queue ~source_queue:m.Message.queue
          ~initial_message:(Message.body m) ())
  in
  match
    match interface_check t m qdef with
    | Error reason -> `Interface_error reason
    | Ok () -> (
      match
        Network.send t.net ~reliable ~from_:t.cfg.node_name ~to_:endpoint
          (Message.body m)
      with
      | result -> `Net result
      | exception e -> `Handler_error (exn_description e))
  with
  | `Interface_error description ->
    (* permanent: retrying cannot fix a schema mismatch *)
    Hashtbl.replace t.sent m.Message.rid ();
    let creating_rule, rule_error_queue = creating_rule_route t m in
    in_txn t (fun txn ->
        raise_error t txn ~kind:Errors.Interface_violation ~description
          ?rule:creating_rule ?rule_error_queue ~source_queue:m.Message.queue
          ~initial_message:(Message.body m) ())
  | `Handler_error description ->
    (* the endpoint handler itself blew up; treat as undeliverable rather
       than crash the pump loop *)
    t.s_dead_letters <- t.s_dead_letters + 1;
    dead_letter ~kind:Errors.System_error ~description
  | `Net result ->
  match result with
  | Network.Sent replies ->
    Hashtbl.replace t.sent m.Message.rid ();
    (match binding.replies_to with
     | Some incoming ->
       List.iter
         (fun reply ->
           match
             inject t
               ~props:[ (Defs.Sysprop.sender, Value.String endpoint) ]
               ~queue:incoming reply
           with
           | Ok _ -> ()
           | Error e ->
             in_txn t (fun txn ->
                 raise_error t txn ~kind:Errors.Schema_violation
                   ~description:(Qm.error_to_string e) ~source_queue:incoming
                   ~initial_message:reply ()))
         replies
     | None -> ())
  | Network.Lost ->
    (* best-effort send; nobody to tell *)
    Hashtbl.replace t.sent m.Message.rid ()
  | Network.Failed failure ->
    if reliable && retryable_failure failure && attempt <= t.cfg.transmit_retries
    then begin
      (* re-arm through the timer wheel; the message stays unsent and
         unforfeited until the retry budget is spent *)
      let due = Clock.now t.clk + backoff_delay t attempt in
      Log.debug (fun f ->
          f "transmission of #%d failed (%s); retry %d/%d at t=%d"
            m.Message.rid
            (Network.failure_to_string failure)
            attempt t.cfg.transmit_retries due);
      Timer_wheel.schedule_retransmit t.timers ~due ~rid:m.Message.rid
        ~attempt:(attempt + 1)
    end
    else begin
      if reliable then t.s_dead_letters <- t.s_dead_letters + 1;
      dead_letter
        ~kind:(Errors.of_network_failure failure)
        ~description:(Network.failure_to_string failure)
    end

let pump_gateways t =
  let count = ref 0 in
  List.iter
    (fun (qdef : Defs.queue_def) ->
      if qdef.Defs.kind = Defs.Outgoing_gateway then begin
        let outbox = outbox_for t qdef.Defs.qname in
        while not (Queue.is_empty outbox) do
          let rid = Queue.pop outbox in
          if not (Hashtbl.mem t.sent rid) then
            match Qm.get t.qm rid with
            | Some m ->
              incr count;
              (* no transmission may precede the barrier covering the
                 transaction that created (or error-routed) the message; a
                 no-op when nothing is pending *)
              harden t;
              transmit t m qdef
            | None -> ()  (* collected before transmission: nothing to do *)
        done
      end)
    (Qm.queue_defs t.qm);
  !count

let fire_echo t ~rid ~target =
  match Qm.get t.qm rid with
  | None -> ()
  | Some echo_msg -> (
    t.s_timers_fired <- t.s_timers_fired + 1;
    try
      in_txn t (fun txn ->
          enqueue_internal t txn ~trigger:(Some echo_msg) ~explicit:[]
            ~queue:target ~payload:(Message.body echo_msg)
            ~origin_queue:echo_msg.Message.queue ();
          Qm.mark_processed t.qm txn echo_msg)
    with e ->
      (* aborted and unlocked by [in_txn]; surface the failure as an error
         message and retire the echo message so it cannot loop *)
      Log.warn (fun f -> f "echo timer for #%d aborted: %s" rid (exn_description e));
      (try
         in_txn t (fun txn ->
             raise_error t txn ~kind:Errors.System_error
               ~description:(exn_description e)
               ~source_queue:echo_msg.Message.queue
               ~initial_message:(Message.body echo_msg) ();
             Qm.mark_processed t.qm txn echo_msg)
       with e2 ->
         Log.err (fun f ->
             f "error routing for echo #%d failed: %s" rid (exn_description e2))))

let advance_time t ticks =
  Clock.advance t.clk ticks;
  List.iter
    (function
      | Timer_wheel.Echo { rid; target } -> fire_echo t ~rid ~target
      | Timer_wheel.Retransmit { rid; attempt } -> (
        match Qm.get t.qm rid with
        | None -> ()  (* collected while awaiting retry: nothing to deliver *)
        | Some m -> (
          match Qm.find_queue t.qm m.Message.queue with
          | Some qdef ->
            (* a timer-armed retry externalizes like any transmission *)
            harden t;
            transmit t ~attempt m qdef
          | None -> ())))
    (Timer_wheel.due_entries t.timers ~now:(Clock.now t.clk))

let run ?(max_steps = max_int) t =
  let processed = ref 0 in
  let continue_ = ref true in
  let batch_size = max 1 t.cfg.batch_size in
  (* [max_steps] bounds processed messages only: rescheduled duplicates and
     collected rids are skipped inside [step] without touching the budget. *)
  while !continue_ && !processed < max_steps do
    (* drain up to [batch_size] messages back to back; their commits share
       one durability barrier instead of paying one fsync each *)
    let budget = min batch_size (max_steps - !processed) in
    let in_batch = ref 0 in
    let draining = ref true in
    while !draining && !in_batch < budget do
      match step t with
      | Processed _ -> incr in_batch
      | Idle -> draining := false
    done;
    processed := !processed + !in_batch;
    (* one barrier covers the whole batch; [pump_gateways] re-checks it
       before every transmission, so error-routing commits made while
       pumping are hardened before they can externalize *)
    harden t;
    let sent = pump_gateways t in
    if !in_batch = 0 && sent = 0 then continue_ := false
  done;
  !processed

let gc t = run_gc t

let stats t =
  let st = Store.stats t.st in
  let group_syncs = st.Store.wal_group_syncs in
  {
    processed = t.s_processed;
    rule_evaluations = t.s_rule_evaluations;
    messages_created = t.s_messages_created;
    errors_raised = t.s_errors_raised;
    transmissions = t.s_transmissions;
    timers_fired = t.s_timers_fired;
    gc_collected = t.s_gc_collected;
    prefilter_skips = t.s_prefilter_skips;
    txn_aborts = t.s_txn_aborts;
    transmit_retries = t.s_transmit_retries;
    dead_letters = t.s_dead_letters;
    wal_group_syncs = group_syncs;
    batch_fill =
      (if group_syncs > 0 then float_of_int t.s_processed /. float_of_int group_syncs
       else 0.);
    syncs_per_message =
      (if t.s_processed > 0 then
         float_of_int st.Store.wal_syncs /. float_of_int t.s_processed
       else 0.);
  }

let cache_sizes t =
  [
    ("node", Hashtbl.length t.node_cache);
    ("name", Hashtbl.length t.name_cache);
    ("sent", Hashtbl.length t.sent);
    ("outbox", Hashtbl.fold (fun _ q n -> n + Queue.length q) t.outbox 0);
  ]

let pending_messages t = Scheduler.length t.sched
let queue_contents t name = Qm.queue_messages t.qm name

(* ---- dynamic evolution (paper §5 future work) ----

   The paper notes that "Demaq applications currently rely on a static set
   of queues, slicings, and rule definitions that cannot be adapted during
   system runtime ... clearly, this is unacceptable for zero-downtime
   environments". [evolve] applies an incremental script (additional
   create statements and [drop rule] statements) to a running server:
   the combined program is re-analyzed as a whole, new definitions are
   registered, and the rule set is recompiled — without stopping the
   engine or touching stored messages.

   Semantics of additions: new rules apply to all messages processed from
   now on (including already-enqueued unprocessed ones); new properties
   and slicings only affect messages enqueued after the evolution, because
   property values and slice memberships are fixed at message creation
   (§2.2). *)

let evolve t src =
  match Qdl.parse_program_result src with
  | Error msg -> Error msg
  | Ok statements ->
    let drops =
      List.filter_map (function Qdl.Drop_rule n -> Some n | _ -> None) statements
    in
    let additions =
      List.filter (function Qdl.Drop_rule _ -> false | _ -> true) statements
    in
    let current = Compiler.source_program t.compiled in
    let existing_rules = List.map (fun r -> r.Qdl.rname) (Qdl.rules current) in
    let missing = List.filter (fun n -> not (List.mem n existing_rules)) drops in
    if missing <> [] then
      Error
        (Printf.sprintf "cannot drop unknown rule%s: %s"
           (if List.length missing = 1 then "" else "s")
           (String.concat ", " missing))
    else begin
      let base =
        List.filter
          (function
            | Qdl.Create_rule r -> not (List.mem r.Qdl.rname drops)
            | _ -> true)
          current
      in
      let combined = base @ additions in
      let analysis = Analysis.analyze combined in
      if not analysis.Analysis.ok then
        Error
          (String.concat "\n"
             (List.filter_map
                (fun d ->
                  if d.Analysis.severity = Analysis.Error then
                    Some (Format.asprintf "%a" Analysis.pp_diagnostic d)
                  else None)
                analysis.Analysis.diagnostics))
      else begin
        List.iter
          (function
            | Qdl.Create_queue q -> Qm.add_queue t.qm q
            | Qdl.Create_property p -> Qm.add_property t.qm p
            | Qdl.Create_slicing s -> Qm.add_slicing t.qm s
            | Qdl.Create_rule _ | Qdl.Drop_rule _ -> ())
          additions;
        t.compiled <- Compiler.compile ~optimize:t.cfg.optimize combined;
        Ok ()
      end
    end

(* ---- distribution (§2.1.2) ----

   "This also facilitates the distribution of applications over several
   nodes by replacing local queues with pairs of gateway queues that
   connect two sites." [expose] publishes one of this server's incoming
   gateway queues as a named endpoint on the simulated network, so another
   node's outgoing gateway can address it. *)

let expose t ~name ~queue =
  match Qm.find_queue t.qm queue with
  | Some { Defs.kind = Defs.Incoming_gateway; _ } ->
    Network.register t.net ~name ~handler:(fun ~sender body ->
        (match
           inject t
             ~props:[ (Defs.Sysprop.sender, Value.String sender) ]
             ~queue body
         with
         | Ok _ -> ()
         | Error e ->
           in_txn t (fun txn ->
               raise_error t txn ~kind:Errors.Schema_violation
                 ~description:(Qm.error_to_string e) ~source_queue:queue
                 ~initial_message:body ()));
        []);
    Ok ()
  | Some _ -> Error (Printf.sprintf "queue %s is not an incoming gateway" queue)
  | None -> Error (Printf.sprintf "unknown queue %s" queue)

(* ---- deployment ---- *)

let deploy ?(config = default_config) ?store:st ?network:net program_text =
  let program =
    try Qdl.parse_program program_text
    with Qdl.Qdl_error msg -> raise (Deployment_error msg)
  in
  let analysis = Analysis.analyze program in
  List.iter
    (fun d ->
      match d.Analysis.severity with
      | Analysis.Warning ->
        Log.warn (fun f -> f "%a" Analysis.pp_diagnostic d)
      | Analysis.Error -> ())
    analysis.Analysis.diagnostics;
  if not analysis.Analysis.ok then
    raise
      (Deployment_error
         (String.concat "\n"
            (List.filter_map
               (fun d ->
                 if d.Analysis.severity = Analysis.Error then
                   Some (Format.asprintf "%a" Analysis.pp_diagnostic d)
                 else None)
               analysis.Analysis.diagnostics)));
  let st = match st with Some s -> s | None -> Store.open_store Store.default_config in
  let clk = Clock.create () in
  let qm = Qm.create ~clock:(fun () -> Clock.now clk) st in
  List.iter (Qm.add_queue qm) (Qdl.queues program);
  List.iter (Qm.add_property qm) (Qdl.properties program);
  List.iter (Qm.add_slicing qm) (Qdl.slicings program);
  Qm.rebuild_indexes qm;
  let compiled = Compiler.compile ~optimize:config.optimize program in
  let net = match net with Some n -> n | None -> Network.create () in
  let t =
    {
      cfg = config;
      qm;
      st;
      net;
      compiled;
      sched = Scheduler.create ();
      timers = Timer_wheel.create ();
      clk;
      node_cache = Hashtbl.create 1024;
      name_cache = Hashtbl.create 1024;
      collection_cache = Hashtbl.create 8;
      bindings = Hashtbl.create 8;
      interfaces = Hashtbl.create 4;
      sent = Hashtbl.create 1024;
      outbox = Hashtbl.create 8;
      s_processed = 0;
      s_rule_evaluations = 0;
      s_messages_created = 0;
      s_errors_raised = 0;
      s_transmissions = 0;
      s_timers_fired = 0;
      s_gc_collected = 0;
      s_prefilter_skips = 0;
      s_txn_aborts = 0;
      s_transmit_retries = 0;
      s_dead_letters = 0;
      fault = None;
      blamed_rule = None;
      trace_log = [];
      trace_len = 0;
    }
  in
  (* Recovery: refill gateway outboxes (retransmission after restart is
     at-least-once, matching WS-ReliableMessaging semantics), resume the
     clock past every stored timestamp, reschedule unprocessed messages,
     and re-register pending echo timeouts. *)
  List.iter
    (fun (qdef : Defs.queue_def) ->
      if qdef.Defs.kind = Defs.Outgoing_gateway then
        List.iter (note_outgoing t) (Qm.queue_messages qm qdef.Defs.qname))
    (Qm.queue_defs qm);
  let unprocessed = Qm.unprocessed qm in
  (* Resume at the MAXIMUM stored timestamp in one step: list order is
     arrival order, not time order, so folding element-wise assignments
     could land on a stale tick and fire pending echo timers early. *)
  Clock.set clk
    (List.fold_left
       (fun acc (m : Message.t) -> max acc m.Message.enqueued_at)
       0 unprocessed);
  List.iter
    (fun (m : Message.t) ->
      match Qm.find_queue qm m.Message.queue with
      | Some { Defs.kind = Defs.Echo; _ } ->
        let txn = Store.begin_txn st in
        register_echo_timer t txn m;
        Store.commit txn
      | _ -> schedule_message t m)
    unprocessed;
  t

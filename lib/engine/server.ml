(* The Demaq server, as a composition root: parse/analyze/compile the
   program, wire config -> store -> executor -> dispatcher -> worker pool,
   and drive the batched run loop. The actual machinery lives in the
   layers it composes:

   - Executor: the single-message transaction (§3.1) and all shared
     engine state;
   - Externalizer: gateway pump, timers, retries (barrier before every
     transmission);
   - Dispatch: queue-partitioned scheduling (conflict-free parallelism,
     per-queue order);
   - Worker_pool: N domains draining the dispatcher; [workers = 1] is the
     deterministic mode whose observable behaviour matches the seed
     single-threaded engine. *)

module Store = Demaq_store.Message_store
module Qm = Demaq_mq.Queue_manager
module Message = Demaq_mq.Message
module Defs = Demaq_mq.Defs
module Qdl = Demaq_lang.Qdl
module Analysis = Demaq_lang.Analysis
module Compiler = Demaq_lang.Compiler
module Network = Demaq_net.Network
module Metrics = Demaq_obs.Metrics
module Obs_trace = Demaq_obs.Trace
module Flow = Demaq_obs.Flow

let log = Logs.Src.create "demaq.server" ~doc:"Demaq server"

module Log = (val Logs.src_log log : Logs.LOG)

type config = Executor.config = {
  merged_plans : bool;
  footprint_dispatch : bool;
  use_slice_index : bool;
  lock_granularity : [ `Queue | `Slice ];
  use_prefilter : bool;
  trace_capacity : int;
  flow_tracing : bool;
  gc_every : int;
  system_error_queue : string option;
  optimize : bool;
  node_name : string;
  transmit_retries : int;
  retry_backoff : int;
  batch_size : int;
  group_commit : bool;
  workers : int;
  metrics : bool;
}

(* DEMAQ_WORKERS lets a test run or CI job select the worker count without
   threading a flag through every call site (the CI matrix runs the whole
   suite at 1 and 4 workers this way). *)
let default_workers =
  match Sys.getenv_opt "DEMAQ_WORKERS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1

let default_config =
  {
    (* the compiled guarded plans are the default execution path; per-rule
       interpretation remains as the reference semantics (benchmark B16
       measures the gap) *)
    merged_plans = true;
    footprint_dispatch = false;
    use_slice_index = true;
    lock_granularity = `Slice;
    use_prefilter = true;
    trace_capacity = 0;
    (* provenance is three small extra-blob fields per message and one
       bounded-store insert; B17 holds the cascade overhead under 5% *)
    flow_tracing = true;
    gc_every = 0;
    system_error_queue = None;
    optimize = true;
    node_name = "demaq-node";
    transmit_retries = 3;
    retry_backoff = 1;
    batch_size = 1;
    group_commit = false;
    workers = default_workers;
    (* counters are always live; [metrics] adds the wall-clock/histogram
       path (phase latencies, fsync timing), so off keeps the default hot
       path free of clock reads *)
    metrics = false;
  }

type trace_entry = Executor.trace_entry = {
  tr_tick : int;
  tr_rule : string;
  tr_trigger : int;
  tr_queue : string;
  tr_updates : int;
  tr_skipped : bool;
}

type stats = {
  processed : int;
  rule_evaluations : int;
  messages_created : int;
  errors_raised : int;
  transmissions : int;
  timers_fired : int;
  gc_collected : int;
  prefilter_skips : int;
  txn_aborts : int;
  transmit_retries : int;
  dead_letters : int;
  wal_group_syncs : int;
  batch_fill : float;
  syncs_per_message : float;
}

(* The self-tuning state, when [enable_adaptive] switched it on: the AIMD
   controller plus the sampler that feeds it windowed observations. *)
type adaptive = {
  a_ctl : Controller.t;
  a_sampler : Controller.sampler;
  a_processed : unit -> int;
  a_group_syncs : unit -> int;
}

type t = {
  ctx : Executor.t;
  pool : Worker_pool.t;
  mutable adaptive : adaptive option;
  mutable gate : Gate.t option;
  mutable compactions : int;
  mutable compacted_bytes : int;
}

exception Deployment_error of string

let queue_manager t = t.ctx.Executor.qm
let store t = t.ctx.Executor.st
let clock t = t.ctx.Executor.clk
let network t = t.ctx.Executor.net
let config t = t.ctx.Executor.cfg
let explain t = Compiler.explain t.ctx.Executor.compiled
let set_fault t fault = Executor.set_fault t.ctx fault
let set_collection t name docs = Executor.set_collection t.ctx name docs
let bind_gateway t = Executor.bind_gateway t.ctx
let register_interface t = Executor.register_interface t.ctx
let inject t ?props ?flow ~queue payload =
  Executor.inject t.ctx ?props ?flow ~queue payload

let inject_batch t ?props ?flow ~queue payloads =
  Executor.inject_many t.ctx ?props ?flow ~queue payloads

let admission_stats t = Executor.admission_stats t.ctx
let pump_gateways t = Externalizer.pump_gateways t.ctx
let advance_time t ticks = Externalizer.advance_time t.ctx ticks
let gc t = Executor.run_gc t.ctx
let trace t = Executor.trace t.ctx
let pp_trace_entry = Executor.pp_trace_entry
let pending_messages t = Worker_pool.pending t.pool
let queue_contents t name = Qm.queue_messages t.ctx.Executor.qm name
let worker_stats t = Worker_pool.worker_stats t.pool
let workers t = Worker_pool.workers t.pool
let set_picker t picker = Worker_pool.set_picker t.pool picker
let timers_pending t = Timer_wheel.pending t.ctx.Executor.timers
let next_timer_due t = Timer_wheel.next_due t.ctx.Executor.timers

(* ---- driving ---- *)

type step_result = Processed of Message.t | Idle

(* budget 1 => the pool drains inline: deterministic, seed scheduler order *)
let step t =
  let picked = ref Idle in
  ignore
    (Worker_pool.drain t.pool ~budget:1
       ~process:(fun rid ->
         let m = Executor.message t.ctx rid in
         let ok = Executor.process t.ctx rid in
         (if ok then match m with Some m -> picked := Processed m | None -> ());
         ok));
  !picked

let run ?(max_steps = max_int) t =
  let processed = ref 0 in
  let continue_ = ref true in
  let reg = t.ctx.Executor.reg in
  let last_harden = ref (Metrics.now reg) in
  (* [max_steps] bounds processed messages only: rescheduled duplicates and
     collected rids are skipped inside the pool without touching the
     budget. *)
  while !continue_ && !processed < max_steps do
    (* drain up to the batch target (across all workers); their commits
       share one durability barrier instead of one fsync each. Read per
       iteration: the adaptive controller moves [batch_target] between
       drains. *)
    let batch_size = max 1 t.ctx.Executor.batch_target in
    let budget = min batch_size (max_steps - !processed) in
    let n =
      Worker_pool.drain t.pool ~budget ~process:(fun rid -> Executor.process t.ctx rid)
    in
    processed := !processed + n;
    (* one barrier covers the whole batch; the pump re-checks it before
       every transmission, so error-routing commits made while pumping are
       hardened before they can externalize. Under the adaptive
       controller a short drain (batch not filled) may defer the barrier
       until the flush deadline — safe, because every externalization
       path hardens for itself; the deferral only trades commit-to-disk
       latency for fewer fsyncs, bounded by the deadline. *)
    let flush_due =
      match t.adaptive with
      | None -> true  (* fixed batch: barrier per drain, the seed behaviour *)
      | Some a ->
        n >= batch_size
        || float_of_int (Metrics.now reg - !last_harden) /. 1e6
           >= Controller.flush_ms a.a_ctl
    in
    if flush_due then begin
      Executor.harden t.ctx;
      last_harden := Metrics.now reg
    end;
    let sent = Externalizer.pump_gateways t.ctx in
    if n = 0 && sent = 0 then continue_ := false
  done;
  !processed

(* ---- adaptive runtime ---- *)

let batch_target t = t.ctx.Executor.batch_target

let enable_adaptive ?cfg t =
  let ctx = t.ctx in
  let ctl = Controller.create ?cfg ~batch:ctx.Executor.batch_target () in
  Controller.instrument ctl ctx.Executor.reg;
  let a_processed () = Metrics.value ctx.Executor.met.Executor.m_processed in
  let a_group_syncs () = Store.wal_group_syncs ctx.Executor.st in
  let a_sampler =
    Controller.sampler ctl
      ~barrier_hist:ctx.Executor.met.Executor.m_barrier_seconds
      ~processed:a_processed ~group_syncs:a_group_syncs
  in
  ctx.Executor.batch_target <- Controller.batch ctl;
  t.adaptive <- Some { a_ctl = ctl; a_sampler; a_processed; a_group_syncs };
  ctl

let controller_tick t =
  match t.adaptive with
  | None -> None
  | Some a ->
    let d =
      Controller.sample_and_tick a.a_sampler ~processed:a.a_processed
        ~group_syncs:a.a_group_syncs
    in
    t.ctx.Executor.batch_target <- Controller.batch a.a_ctl;
    Some d

let enable_gate ?cfg t =
  let g = Gate.create ?cfg () in
  Gate.instrument g t.ctx.Executor.reg;
  t.gate <- Some g;
  g

(* One admission decision for a message bound for [queue]: dispatch depth
   and unsynced WAL bytes are the two unbounded queues overload would
   otherwise grow. Admit-all when no gate is enabled. *)
let admission t ~queue =
  match t.gate with
  | None -> Gate.Admit
  | Some g ->
    Gate.decide g
      ~pending:(Worker_pool.pending t.pool)
      ~unsynced_bytes:(Store.unsynced_bytes t.ctx.Executor.st)
      ~priority:(Executor.queue_priority t.ctx queue)

(* One background maintenance tick, called off the hot path (the serve
   loop, between drains): run the controller, spend a bounded GC budget,
   and compact the log when it has outgrown its bound. Returns
   [(collected, reclaimed_bytes)]. *)
let maintain ?(gc_budget = 0) ?(max_wal_bytes = 0) t =
  ignore (controller_tick t);
  (* straggler flush: [run] defers the group-commit barrier to the flush
     deadline, but an idle drain exits without ever reaching it — when a
     burst stops dead, the unsynced tail would otherwise linger
     indefinitely and hold the WAL axis of the admission gate closed on
     an idle node. The maintenance cadence is the idle-time bound on
     commit-to-disk latency. A direct barrier, not {!Executor.harden}:
     the tail exists under any [Sync_batch] policy (group commit or
     not), and an idle flush must not feed the controller's barrier-p99
     window a trivially fast sample. *)
  if Store.unsynced_bytes t.ctx.Executor.st > 0 then
    ignore (Store.barrier t.ctx.Executor.st);
  let collected =
    if gc_budget > 0 then Executor.run_gc_step t.ctx ~budget:gc_budget else 0
  in
  let reclaimed =
    if
      max_wal_bytes > 0
      && Store.compaction_due t.ctx.Executor.st ~max_wal_bytes
    then begin
      let b = Executor.locked t.ctx (fun () -> Store.compact t.ctx.Executor.st) in
      if b > 0 then begin
        t.compactions <- t.compactions + 1;
        t.compacted_bytes <- t.compacted_bytes + b
      end;
      b
    end
    else 0
  in
  (collected, reclaimed)

(* ---- introspection ---- *)

(* One source of truth: [stats] reads the same registry counters the
   exposition endpoint renders (aggregated across worker shards — exact
   here because the pool is quiescent between drains). *)
let stats t =
  let ctx = t.ctx in
  let met = ctx.Executor.met in
  let st = Store.stats ctx.Executor.st in
  let group_syncs = st.Store.wal_group_syncs in
  let processed = Metrics.value met.Executor.m_processed in
  {
    processed;
    rule_evaluations = Metrics.value met.Executor.m_rule_evaluations;
    messages_created = Metrics.value met.Executor.m_messages_created;
    errors_raised = Metrics.value met.Executor.m_errors_raised;
    transmissions = Metrics.value met.Executor.m_transmissions;
    timers_fired = Metrics.value met.Executor.m_timers_fired;
    gc_collected = Metrics.value met.Executor.m_gc_collected;
    prefilter_skips = Metrics.value met.Executor.m_prefilter_skips;
    txn_aborts = Metrics.value met.Executor.m_txn_aborts;
    transmit_retries = Metrics.value met.Executor.m_transmit_retries;
    dead_letters = Metrics.value met.Executor.m_dead_letters;
    wal_group_syncs = group_syncs;
    batch_fill =
      (if group_syncs > 0 then float_of_int processed /. float_of_int group_syncs
       else 0.);
    syncs_per_message =
      (if processed > 0 then
         float_of_int st.Store.wal_syncs /. float_of_int processed
       else 0.);
  }

(* ---- observability surface ---- *)

let registry t = t.ctx.Executor.reg
let exposition t = Metrics.render t.ctx.Executor.reg

let span_matches ?queue ?rid (s : Obs_trace.span) =
  (match queue with None -> true | Some q -> s.Obs_trace.sp_queue = q)
  && match rid with None -> true | Some r -> s.Obs_trace.sp_rid = r

let spans ?queue ?rid t =
  List.filter (span_matches ?queue ?rid) (Obs_trace.spans t.ctx.Executor.spans)

let spans_jsonl ?queue ?rid t =
  match queue, rid with
  | None, None -> Obs_trace.dump_jsonl t.ctx.Executor.spans
  | _ ->
    let buf = Buffer.create 1024 in
    List.iter
      (fun s ->
        Buffer.add_string buf (Obs_trace.span_json s);
        Buffer.add_char buf '\n')
      (List.rev (spans ?queue ?rid t));
    Buffer.contents buf

let pp_span = Obs_trace.pp_span

(* ---- causal flows ---- *)

let flow_store t = t.ctx.Executor.flows

(* Resolve a rid to its flow id: the in-memory store first, then durable
   provenance (survives both restart and flow-store eviction). *)
let flow_id_of_rid t rid =
  match Flow.flow_of_rid t.ctx.Executor.flows rid with
  | Some f -> Some f
  | None ->
    Executor.locked t.ctx (fun () ->
        match Qm.get t.ctx.Executor.qm rid with
        | Some m when m.Message.prov.Message.p_flow <> "" ->
          Some m.Message.prov.Message.p_flow
        | _ -> None)

(* A flow's nodes, merged from three sources so trees render across
   crash-restart: durable provenance (the store scan — survives
   everything), the bounded flow store (adds messages the GC already
   collected), and the span ring (timings for whatever it still holds). *)
let flow_nodes t flow_id =
  let ctx = t.ctx in
  let by_rid = Hashtbl.create 32 in
  Executor.locked ctx (fun () ->
      List.iter
        (fun (sm : Store.message) ->
          let _, _, prov = Message.decode_extra sm.Store.extra in
          if prov.Message.p_flow = flow_id then
            Hashtbl.replace by_rid sm.Store.rid
              {
                Flow.n_rid = sm.Store.rid;
                n_queue = sm.Store.queue;
                n_flow = flow_id;
                n_parent = prov.Message.p_parent;
                n_cause = prov.Message.p_cause;
                n_span = None;
              })
        (Store.all_messages ctx.Executor.st));
  List.iter
    (fun (n : Flow.node) ->
      match Hashtbl.find_opt by_rid n.Flow.n_rid with
      | Some stored -> stored.Flow.n_span <- n.Flow.n_span
      | None -> Hashtbl.replace by_rid n.Flow.n_rid n)
    (Flow.nodes ctx.Executor.flows flow_id);
  List.iter
    (fun (sp : Obs_trace.span) ->
      if sp.Obs_trace.sp_flow = flow_id then
        match Hashtbl.find_opt by_rid sp.Obs_trace.sp_rid with
        | Some n when n.Flow.n_span = None -> n.Flow.n_span <- Some sp
        | _ -> ())
    (Obs_trace.spans ctx.Executor.spans);
  Hashtbl.fold (fun _ n acc -> n :: acc) by_rid []
  |> List.sort (fun (a : Flow.node) b -> compare a.Flow.n_rid b.Flow.n_rid)

let flow_ascii t flow_id = Flow.render_ascii flow_id (flow_nodes t flow_id)
let flow_json t flow_id = Flow.render_json flow_id (flow_nodes t flow_id)

let flows_json t =
  "["
  ^ String.concat ","
      (List.map Flow.summary_json (Flow.summaries t.ctx.Executor.flows))
  ^ "]"

(* Machine-readable stats: the full registry snapshot (counters, sampled
   gauges, histogram count/sum) plus the derived ratios [stats] computes,
   as one JSON object. *)
let stats_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  let first = ref true in
  let field name v =
    if not !first then Buffer.add_char buf ',';
    first := false;
    (* labelled metric names embed quotes (worker="0"); escape for JSON *)
    let name = String.concat "\\\"" (String.split_on_char '"' name) in
    Buffer.add_string buf (Printf.sprintf "\"%s\":%s" name v)
  in
  let num v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.9g" v
  in
  List.iter
    (fun sample ->
      match sample with
      | Metrics.Counter { name; value; _ } | Metrics.Gauge { name; value; _ } ->
        field name (num value)
      | Metrics.Histogram { name; sum; count; _ } ->
        field (name ^ "_count") (string_of_int count);
        field (name ^ "_sum") (num sum))
    (Metrics.snapshot (registry t));
  let s = stats t in
  field "batch_fill" (num s.batch_fill);
  field "syncs_per_message" (num s.syncs_per_message);
  Buffer.add_char buf '}';
  Buffer.contents buf

let cache_sizes t =
  let ctx = t.ctx in
  Executor.locked ctx (fun () ->
      [
        ("node", Hashtbl.length ctx.Executor.node_cache);
        ("name", Hashtbl.length ctx.Executor.name_cache);
        ("sent", Hashtbl.length ctx.Executor.sent);
        ("outbox",
         Hashtbl.fold (fun _ q n -> n + Queue.length q) ctx.Executor.outbox 0);
      ])

let evolve t src = Evolution.evolve t.ctx src

(* ---- distribution (§2.1.2) ----

   "This also facilitates the distribution of applications over several
   nodes by replacing local queues with pairs of gateway queues that
   connect two sites." [expose] publishes one of this server's incoming
   gateway queues as a named endpoint on the simulated network. *)

let expose t ~name ~queue =
  let ctx = t.ctx in
  match Qm.find_queue ctx.Executor.qm queue with
  | Some { Defs.kind = Defs.Incoming_gateway; _ } ->
    Network.register ctx.Executor.net ~name ~handler:(fun ~sender body ->
        (match
           Executor.inject ctx
             ~props:[ (Defs.Sysprop.sender, Demaq_xquery.Value.String sender) ]
             ~queue body
         with
         | Ok _ -> ()
         | Error e ->
           Executor.with_txn ctx (fun txn ->
               Executor.raise_error ctx txn ~kind:Errors.Schema_violation
                 ~description:(Qm.error_to_string e) ~source_queue:queue
                 ~initial_message:body ()));
        []);
    Ok ()
  | Some _ -> Error (Printf.sprintf "queue %s is not an incoming gateway" queue)
  | None -> Error (Printf.sprintf "unknown queue %s" queue)

(* ---- deployment ---- *)

(* Build identity for demaq_build_info. The commit is stamped by the
   build/CI environment when available; there is no git at runtime. *)
let build_version = "0.9.0"

let build_commit =
  match Sys.getenv_opt "DEMAQ_BUILD_COMMIT" with
  | Some c when c <> "" -> c
  | _ -> "unknown"

let deploy ?(config = default_config) ?time_source ?store:st ?network:net
    ?payload_format program_text =
  let program =
    try Qdl.parse_program program_text
    with Qdl.Qdl_error msg -> raise (Deployment_error msg)
  in
  let analysis = Analysis.analyze program in
  List.iter
    (fun d ->
      match d.Analysis.severity with
      | Analysis.Warning -> Log.warn (fun f -> f "%a" Analysis.pp_diagnostic d)
      | Analysis.Error -> ())
    analysis.Analysis.diagnostics;
  if not analysis.Analysis.ok then
    raise
      (Deployment_error
         (String.concat "\n"
            (List.filter_map
               (fun d ->
                 if d.Analysis.severity = Analysis.Error then
                   Some (Format.asprintf "%a" Analysis.pp_diagnostic d)
                 else None)
               analysis.Analysis.diagnostics)));
  let st = match st with Some s -> s | None -> Store.open_store Store.default_config in
  let clk = Clock.create ?time_source () in
  let qm = Qm.create ~clock:(fun () -> Clock.now clk) ?payload_format st in
  List.iter (Qm.add_queue qm) (Qdl.queues program);
  List.iter (Qm.add_property qm) (Qdl.properties program);
  List.iter (Qm.add_slicing qm) (Qdl.slicings program);
  Qm.rebuild_indexes qm;
  let compiled = Compiler.compile ~optimize:config.optimize program in
  let net = match net with Some n -> n | None -> Network.create () in
  let ctx = Executor.create ~cfg:config ~qm ~st ~net ~compiled ~clk () in
  Store.instrument st ctx.Executor.reg;
  let reg = ctx.Executor.reg in
  Metrics.counter_fn reg "demaq_trace_dropped_total"
    ~help:"Lifecycle spans evicted from the bounded span ring"
    (fun () ->
      float_of_int
        (max 0
           (Obs_trace.total ctx.Executor.spans
           - Obs_trace.capacity ctx.Executor.spans)));
  Metrics.gauge_fn reg
    (Printf.sprintf "demaq_build_info{version=\"%s\",commit=\"%s\"}"
       build_version build_commit)
    ~help:"Build identity; the value is always 1" (fun () -> 1.);
  let started_ns = Metrics.now reg in
  Metrics.gauge_fn reg "demaq_uptime_seconds"
    ~help:"Seconds since this node deployed (virtual under simulation)"
    (fun () -> float_of_int (Metrics.now reg - started_ns) *. 1e-9);
  let pool =
    Worker_pool.create ~registry:ctx.Executor.reg ~workers:config.workers ()
  in
  ctx.Executor.schedule <-
    (fun ~priority ~resources rid -> Worker_pool.schedule pool ~priority ~resources rid);
  let t =
    { ctx; pool; adaptive = None; gate = None; compactions = 0; compacted_bytes = 0 }
  in
  Metrics.counter_fn reg "demaq_store_compactions_total"
    ~help:"Background WAL/snapshot compactions performed" (fun () ->
      float_of_int t.compactions);
  Metrics.counter_fn reg "demaq_store_compacted_bytes_total"
    ~help:"WAL bytes retired by background compaction" (fun () ->
      float_of_int t.compacted_bytes);
  (* Recovery: refill gateway outboxes (retransmission after restart is
     at-least-once, matching WS-ReliableMessaging semantics), resume the
     clock past every stored timestamp, reschedule unprocessed messages,
     and re-register pending echo timeouts. *)
  Executor.locked ctx (fun () ->
      List.iter
        (fun (qdef : Defs.queue_def) ->
          if qdef.Defs.kind = Defs.Outgoing_gateway then
            List.iter (Executor.note_outgoing ctx)
              (Qm.queue_messages qm qdef.Defs.qname))
        (Qm.queue_defs qm));
  let unprocessed = Qm.unprocessed qm in
  (* Resume at the MAXIMUM stored timestamp in one step: list order is
     arrival order, not time order, so folding element-wise assignments
     could land on a stale tick and fire pending echo timers early. *)
  Clock.set clk
    (List.fold_left
       (fun acc (m : Message.t) -> max acc m.Message.enqueued_at)
       0 unprocessed);
  List.iter
    (fun (m : Message.t) ->
      match Qm.find_queue qm m.Message.queue with
      | Some { Defs.kind = Defs.Echo; _ } ->
        Executor.with_txn ctx (fun txn -> Executor.register_echo_timer ctx txn m)
      | _ -> Executor.schedule_message ctx m)
    unprocessed;
  (* Refill the flow store from durable provenance so /flows and the flow
     trees pick up where the crashed process left off (spans are gone —
     those hops render without timings — but the causal edges survive). *)
  if config.flow_tracing then
    Executor.locked ctx (fun () ->
        Store.all_messages st
        |> List.sort (fun (a : Store.message) b -> compare a.Store.rid b.Store.rid)
        |> List.iter (fun (sm : Store.message) ->
               let _, _, prov = Message.decode_extra sm.Store.extra in
               if prov.Message.p_flow <> "" then
                 Flow.observe ctx.Executor.flows ~rid:sm.Store.rid
                   ~queue:sm.Store.queue ~flow:prov.Message.p_flow
                   ~parent:prov.Message.p_parent ~cause:prov.Message.p_cause
                   ~tick:sm.Store.enqueued_at));
  t

(* Deterministic fault injection (see fault.mli). The injection points are
   counted over the lifetime of the handle, so a test can arm "the 7th rule
   evaluation anywhere in the workload" and replay it exactly. *)

module Store = Demaq_store.Message_store
module Network = Demaq_net.Network

exception Injected of string

(* The counters are shared across worker domains (before_eval fires in the
   unlocked evaluation phase), so they are guarded by an internal mutex:
   fault ordinals stay exact — "the 7th evaluation" is still one specific
   evaluation — even when several workers evaluate concurrently. *)
type t = {
  mu : Mutex.t;
  rng : Random.State.t;
  mutable eval_faults : int list;  (* 1-based ordinals that raise *)
  mutable apply_faults : int list;
  mutable eval_failure_rate : float;
  mutable evals : int;
  mutable applies : int;
  mutable injected : int;
}

let create ?(seed = 0) () =
  {
    mu = Mutex.create ();
    rng = Random.State.make [| seed |];
    eval_faults = [];
    apply_faults = [];
    eval_failure_rate = 0.0;
    evals = 0;
    applies = 0;
    injected = 0;
  }

let locked t f = Mutex.protect t.mu f
let fail_on_eval t n = locked t (fun () -> t.eval_faults <- n :: t.eval_faults)
let fail_on_apply t n = locked t (fun () -> t.apply_faults <- n :: t.apply_faults)

(* Arm the very next injection point, wherever the counters currently
   stand — how a simulation schedule says "the next message processed
   fails" without tracking absolute ordinals across the whole run. *)
let fail_next_eval t = locked t (fun () -> t.eval_faults <- (t.evals + 1) :: t.eval_faults)
let fail_next_apply t =
  locked t (fun () -> t.apply_faults <- (t.applies + 1) :: t.apply_faults)
let set_eval_failure_rate t rate = locked t (fun () -> t.eval_failure_rate <- rate)

let disarm t =
  locked t @@ fun () ->
  t.eval_faults <- [];
  t.apply_faults <- [];
  t.eval_failure_rate <- 0.0

let raise_injected t what n =
  t.injected <- t.injected + 1;
  raise (Injected (Printf.sprintf "injected fault: %s #%d" what n))

let before_eval t =
  locked t @@ fun () ->
  t.evals <- t.evals + 1;
  if List.mem t.evals t.eval_faults then raise_injected t "rule evaluation" t.evals
  else if
    t.eval_failure_rate > 0.0
    && Random.State.float t.rng 1.0 < t.eval_failure_rate
  then raise_injected t "rule evaluation" t.evals

let before_apply t =
  locked t @@ fun () ->
  t.applies <- t.applies + 1;
  if List.mem t.applies t.apply_faults then
    raise_injected t "update application" t.applies

let injected t = locked t (fun () -> t.injected)
let evals t = locked t (fun () -> t.evals)
let applies t = locked t (fun () -> t.applies)

(* ---- crash simulation ---- *)

let tear_wal ~dir ~bytes =
  let path = Filename.concat dir "wal.log" in
  if Sys.file_exists path then begin
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    let len = (Unix.fstat fd).Unix.st_size in
    Unix.ftruncate fd (max 0 (len - bytes));
    Unix.close fd
  end

let crash_restart ?(tear_bytes = 0) config store =
  Store.close store;
  (match config.Store.dir with
   | Some dir when tear_bytes > 0 -> tear_wal ~dir ~bytes:tear_bytes
   | _ -> ());
  Store.open_store config

(* ---- network partitions ---- *)

let partition net name = Network.set_connected net name false
let reconnect net name = Network.set_connected net name true

(* The message scheduler (§4.4.2): "maintains a list of all unprocessed
   messages and chooses the next message to be handled, considering both
   their temporal ordering and the priority of the containing queues."

   Higher queue priority wins; within a priority level, arrival order
   (a monotone sequence number) gives FIFO behaviour. *)

type entry = { rid : int; priority : int; seq : int }

type t = { heap : entry Heap.t; mutable next_seq : int }

let compare_entries a b =
  (* higher priority first, then earlier arrival *)
  let c = compare b.priority a.priority in
  if c <> 0 then c else compare a.seq b.seq

let create () = { heap = Heap.create compare_entries; next_seq = 0 }

let add t ~priority rid =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap { rid; priority; seq }

let entry t ~priority rid =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  { rid; priority; seq }

let push t e = Heap.push t.heap e
let pop_entry t = Heap.pop t.heap
let pop t = Option.map (fun e -> e.rid) (Heap.pop t.heap)
let peek t = Option.map (fun e -> e.rid) (Heap.peek t.heap)
let peek_entry t = Heap.peek t.heap
let length t = Heap.length t.heap
let is_empty t = Heap.is_empty t.heap
let pending_rids t = List.map (fun e -> e.rid) (Heap.to_list t.heap)

(** Self-tuning group-commit controller (AIMD).

    Closes the loop from the metrics registry back into the engine: grows
    the group-commit batch target additively while the durability barrier
    stays within its latency budget and the observed batch fill shows the
    load can use a bigger batch; cuts it multiplicatively (and holds for a
    cooldown) when the windowed barrier p99 exceeds the budget. The core
    {!tick} is a pure state machine over explicit observations so tests
    can drive it deterministically; {!sampler} derives those observations
    from the live registry. *)

type config = {
  min_batch : int;
  max_batch : int;
  target_barrier_ms : float;  (** windowed barrier p99 budget *)
  fill_ratio : float;
      (** grow only when observed fill >= fill_ratio * current target *)
  increase : int;  (** additive step, messages *)
  decrease : float;  (** multiplicative cut, in (0, 1) *)
  cooldown : int;  (** ticks to hold after a decrease *)
  min_flush_ms : float;
  max_flush_ms : float;
}

val default_config : config

type decision = Increased | Decreased | Held
type t

val create : ?cfg:config -> ?batch:int -> unit -> t
(** [create ?cfg ?batch ()] starts at [batch] (clamped; default
    [cfg.min_batch]) with the flush deadline at [cfg.max_flush_ms]. *)

val config : t -> config
(** The (immutable) configuration the controller was created with. *)

val batch : t -> int
(** Current group-commit batch target. *)

val flush_ms : t -> float
(** Current flush deadline in milliseconds: how long the coordinator may
    defer a barrier waiting for the batch to fill. *)

val increases : t -> int
val decreases : t -> int

val tick : t -> fill:float -> barrier_p99_ms:float -> decision
(** One control tick. [fill] is the average messages per barrier over the
    last window ([nan] = no evidence, never grows); [barrier_p99_ms] the
    windowed barrier p99 ([nan] = no barriers observed, treated as no
    congestion signal). *)

(** {1 Sampling the live registry} *)

type sampler

val sampler :
  t ->
  barrier_hist:Demaq_obs.Metrics.histogram ->
  processed:(unit -> int) ->
  group_syncs:(unit -> int) ->
  sampler
(** Capture baselines: a {!Demaq_obs.Metrics.window} over the barrier
    histogram and the current cumulative counter values. *)

val sample_and_tick :
  sampler -> processed:(unit -> int) -> group_syncs:(unit -> int) -> decision
(** Read the counters, derive windowed fill and barrier p99 since the last
    call, advance the baselines, and run one {!tick}. *)

val instrument : t -> Demaq_obs.Metrics.registry -> unit
(** Register [demaq_controller_*] gauges/counters. *)

(* The engine's virtual clock. Demaq models time-based behaviour (echo
   queues, §2.1.3) through this injectable tick counter, which keeps tests
   and benchmarks deterministic; a deployment can drive it from wall-clock
   time instead.

   The counter is an [Atomic.t] so worker domains can timestamp messages
   while the coordinator advances time; both [advance] and [set] are
   CAS-retry monotone updates, so the clock never goes backwards even
   under concurrent writers.

   A clock may be linked to a {!Demaq_obs.Time_source}: every tick it
   gains also advances the source by [ns_per_tick], so span and histogram
   timestamps taken against that source move in lockstep with engine time.
   That is the simulation seam — link a virtual source and the entire
   observability layer runs on simulated time. Linking {!real} is a no-op
   (real time advances itself). *)

module Time_source = Demaq_obs.Time_source

type t = { now : int Atomic.t; ts : Time_source.t }

let ns_per_tick = 1_000_000

let create ?(time_source = Time_source.real) ?(start = 0) () =
  { now = Atomic.make start; ts = time_source }

let now t = Atomic.get t.now
let time_source t = t.ts

let rec bump_to t target =
  let cur = Atomic.get t.now in
  if target > cur then
    if Atomic.compare_and_set t.now cur target then
      (* Only the winning CAS advances the linked source, so concurrent
         bumps never double-count a tick. *)
      Time_source.advance_ns t.ts ((target - cur) * ns_per_tick)
    else bump_to t target

let advance t ticks = if ticks > 0 then bump_to t (Atomic.get t.now + ticks)
let set t tick = bump_to t tick

(* The engine's virtual clock. Demaq models time-based behaviour (echo
   queues, §2.1.3) through this injectable tick counter, which keeps tests
   and benchmarks deterministic; a deployment can drive it from wall-clock
   time instead.

   The counter is an [Atomic.t] so worker domains can timestamp messages
   while the coordinator advances time; both [advance] and [set] are
   CAS-retry monotone updates, so the clock never goes backwards even
   under concurrent writers. *)

type t = { now : int Atomic.t }

let create ?(start = 0) () = { now = Atomic.make start }
let now t = Atomic.get t.now

let rec bump_to t target =
  let cur = Atomic.get t.now in
  if target > cur && not (Atomic.compare_and_set t.now cur target) then
    bump_to t target

let advance t ticks = if ticks > 0 then bump_to t (Atomic.get t.now + ticks)
let set t tick = bump_to t tick

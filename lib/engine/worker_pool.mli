(** The worker pool: N OCaml 5 domains draining the dispatcher.

    Owns a {!Dispatch.t} behind a monitor; {!drain} runs up to [budget]
    messages through the supplied callback, spawning domains per call and
    joining them before returning. With [workers = 1] (or [budget = 1])
    the drain runs inline on the calling thread and is deterministic:
    message order matches the seed single-threaded scheduler exactly.

    The [process] callback receives a rid and returns whether the message
    was actually processed ([false] = skipped duplicate/collected rid,
    which does not count against the budget). An exception escaping
    [process] stops the drain and is re-raised from {!drain} after all
    workers have been joined. *)

type t

val create : ?registry:Demaq_obs.Metrics.registry -> workers:int -> unit -> t
(** [workers] is clamped to [1 .. 64]. With [registry], worker domain [i]
    binds metrics shard [i+1] at the start of each drain, and the pool
    registers dispatcher depth/parked gauges plus per-worker
    processed/idle/drain counters (labelled [worker="i"]). *)

val workers : t -> int

val set_picker : t -> (int -> int) option -> unit
(** Install (or clear) a seeded candidate chooser, passed to
    {!Dispatch.next} on inline drains — the simulation's cooperative
    single-domain mode, where "which worker won the race" becomes a
    reproducible pseudo-random choice. Ignored by parallel drains (real
    domains race for real). *)

val schedule : t -> priority:int -> resources:string list -> int -> unit
(** Thread-safe; wakes blocked workers. Callable from inside [process]
    (messages enqueued by a transaction schedule their successors). *)

val drain : t -> budget:int -> process:(int -> bool) -> int
(** Run until [budget] messages have been processed or no runnable work
    remains; returns the number processed. Not itself reentrant — one
    drain at a time. *)

val pending : t -> int
val pending_rids : t -> int list

type worker_stats = {
  mutable w_processed : int;  (** messages this worker completed *)
  mutable w_idle : int;  (** times it blocked waiting for compatible work *)
  mutable w_drains : int;  (** drain calls it participated in *)
}

val worker_stats : t -> worker_stats list
(** A snapshot, one entry per worker slot. *)

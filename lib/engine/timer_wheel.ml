(* Timers backing the echo queues (§2.1.3) and gateway retransmissions: a
   message placed into an echo queue is re-enqueued into a target queue
   once its timeout expires, and a failed reliable transmission is re-armed
   after its backoff delay. The wheel stores (due-tick, event) and releases
   the due entries as the virtual clock advances. *)

type event =
  | Echo of { rid : int; target : string }
  | Retransmit of { rid : int; attempt : int }

type entry = { due : int; seq : int; event : event }

type t = { heap : entry Heap.t; clock : Clock.t; mutable next_seq : int }

let compare_entries a b =
  let c = compare a.due b.due in
  if c <> 0 then c else compare a.seq b.seq

let create ~clock () =
  { heap = Heap.create compare_entries; clock; next_seq = 0 }

let push t ~due event =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap { due; seq; event }

let schedule t ~due ~rid ~target = push t ~due (Echo { rid; target })

let schedule_retransmit t ~due ~rid ~attempt =
  push t ~due (Retransmit { rid; attempt })

(* All entries due at or before the wheel's clock, in firing order. *)
let due_entries t =
  let now = Clock.now t.clock in
  let rec go acc =
    match Heap.peek t.heap with
    | Some e when e.due <= now ->
      ignore (Heap.pop t.heap);
      go (e.event :: acc)
    | _ -> List.rev acc
  in
  go []

let next_due t = Option.map (fun e -> e.due) (Heap.peek t.heap)
let pending t = Heap.length t.heap

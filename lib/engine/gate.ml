(* Bounded ingress: the admission gate (Gray: "a queue is the natural
   overload response — but the queue itself has to stay bounded").

   Unbounded admission converts overload into either an unbounded
   dispatch heap or an unbounded run of unsynced WAL bytes; both turn a
   throughput problem into a durability/latency problem. The gate watches
   exactly those two quantities and sheds *at the door*, before any state
   is touched, so a shed message is never half-applied: it was never
   admitted at all.

   Saturation is the worse of the two ratios (dispatch depth over its
   bound, unsynced WAL bytes over theirs). Two bands:

   - soft (saturation >= 1): shed only messages bound for queues at or
     below the priority floor — high-priority queues degrade last, which
     is the same policy the scheduler applies to messages already inside;
   - hard (saturation >= [hard]): shed everything until the node drains.

   Shedding is transient by construction (429 + Retry-After upstream),
   distinct from the permanent 422 admission rejection: the client did
   nothing wrong, the node is momentarily full. *)

module Metrics = Demaq_obs.Metrics

type config = {
  max_pending : int;  (* dispatch-heap depth where soft shedding starts *)
  max_wal_bytes : int;  (* unsynced WAL bytes where soft shedding starts *)
  hard : float;  (* saturation multiple where even priority won't help *)
  priority_floor : int;  (* soft band sheds queues with priority <= this *)
  retry_after : int;  (* seconds hinted at the base of the soft band *)
}

let default_config =
  {
    max_pending = 4096;
    max_wal_bytes = 8 * 1024 * 1024;
    hard = 2.;
    priority_floor = 0;
    retry_after = 1;
  }

type decision = Admit | Shed of { retry_after : int; hard : bool }

type t = {
  cfg : config;
  mutable saturation : float;  (* last computed; exposed as a gauge *)
  admitted : int Atomic.t;
  shed : int Atomic.t;
  shed_hard : int Atomic.t;
}

let create ?(cfg = default_config) () =
  {
    cfg;
    saturation = 0.;
    admitted = Atomic.make 0;
    shed = Atomic.make 0;
    shed_hard = Atomic.make 0;
  }

let saturation ~cfg ~pending ~unsynced_bytes =
  let ratio num den = if den <= 0 then 0. else float_of_int num /. float_of_int den in
  Float.max
    (ratio pending cfg.max_pending)
    (ratio unsynced_bytes cfg.max_wal_bytes)

let decide t ~pending ~unsynced_bytes ~priority =
  let cfg = t.cfg in
  let s = saturation ~cfg ~pending ~unsynced_bytes in
  t.saturation <- s;
  if s < 1. then begin
    Atomic.incr t.admitted;
    Admit
  end
  else if s >= cfg.hard then begin
    Atomic.incr t.shed;
    Atomic.incr t.shed_hard;
    (* deeper saturation -> back off longer; clamp to keep the hint sane *)
    Shed { retry_after = min 30 (cfg.retry_after * int_of_float s); hard = true }
  end
  else if priority <= cfg.priority_floor then begin
    Atomic.incr t.shed;
    Shed { retry_after = cfg.retry_after; hard = false }
  end
  else begin
    Atomic.incr t.admitted;
    Admit
  end

let admitted t = Atomic.get t.admitted
let shed t = Atomic.get t.shed
let shed_hard t = Atomic.get t.shed_hard

let instrument t reg =
  Metrics.counter_fn reg "demaq_gate_admitted_total"
    ~help:"Messages admitted through the ingress gate" (fun () ->
      float_of_int (Atomic.get t.admitted));
  Metrics.counter_fn reg "demaq_gate_shed_total"
    ~help:"Messages shed at the ingress gate (soft + hard)" (fun () ->
      float_of_int (Atomic.get t.shed));
  Metrics.counter_fn reg "demaq_gate_shed_hard_total"
    ~help:"Messages shed with the gate fully closed (hard band)" (fun () ->
      float_of_int (Atomic.get t.shed_hard));
  Metrics.gauge_fn reg "demaq_gate_saturation"
    ~help:"Ingress saturation (1.0 = soft shedding threshold)" (fun () ->
      t.saturation)

(** The Demaq server: deploys a program (QDL declarations + QML rules) and
    executes the §3.1 model: each unprocessed message is processed exactly
    once, in scheduler order; processing evaluates all rules that pertain
    to the message's queue (and the slices that contain it), collects the
    pending update list, and applies it — all in a single transaction
    against the message store. *)

module Tree := Demaq_xml.Tree
module Value := Demaq_xquery.Value
module Store := Demaq_store.Message_store

type config = Executor.config = {
  merged_plans : bool;
      (** evaluate the rule compiler's guarded plan per queue — merged
          bodies with per-rule guards, hoisted common subexpressions,
          shared guard evaluations (§4.4.1; benchmark B16). The default:
          observationally equivalent to per-rule interpretation, including
          precise rule-level error attribution (§3.6). [false] interprets
          rules one at a time (the reference semantics). *)
  footprint_dispatch : bool;
      (** partition dispatch on the compiled rules' static conflict
          footprints instead of whole queues: same-queue messages whose
          admitted rules touch disjoint resources run concurrently. Trades
          per-queue arrival order between disjoint messages for dispatch
          width; off by default. *)
  use_slice_index : bool;
      (** serve [qs:slice()] from the materialized B-tree index rather than
          scanning the underlying queues (§4.3; benchmark B1) *)
  lock_granularity : [ `Queue | `Slice ];
      (** lock whole queues or individual slices per transaction (§4.3;
          benchmark B3) *)
  use_prefilter : bool;
      (** skip evaluating rules whose condition requires element names the
          triggering message does not contain (XML filtering, §4.4.1;
          benchmark A4) *)
  trace_capacity : int;
      (** keep the last N rule activations for inspection (§2.3.3 names
          "tracing system behavior" as a retention concern); 0 disables *)
  flow_tracing : bool;
      (** causal flow tracing (on by default): every message carries a
          provenance triple — flow id minted at its cascade's origin (or
          adopted from an [X-Demaq-Flow] header), parent rid, causing
          rule — persisted through the extra blob so flows survive
          crash-restart, and assembled into cascade trees ({!flow_tree},
          [/flows]). Off writes extra blobs identical to pre-flow
          builds. *)
  gc_every : int;
      (** run the retention GC after every N processed messages;
          0 disables automatic GC ("physical cleanup is decoupled from
          message processing", §2.3.3) *)
  system_error_queue : string option;
      (** last-resort error queue (§3.6 "system level") *)
  optimize : bool;  (** enable the rule compiler's rewrites *)
  node_name : string;  (** this node's transport address *)
  transmit_retries : int;
      (** retries (beyond the first attempt) granted to a failed reliable
          transmission before the message is dead-lettered to its error
          queue chain; retries are re-armed through the timer wheel with
          bounded exponential backoff *)
  retry_backoff : int;
      (** base backoff in virtual-clock ticks; the delay before retry [n]
          is [retry_backoff * 2^(n-1)] *)
  batch_size : int;
      (** messages drained back to back per {!run} cycle before the pump;
          with [group_commit] their commits share one durability barrier
          (one fsync per batch instead of one per message) *)
  group_commit : bool;
      (** issue durability barriers ({!Store.barrier}) at batch boundaries
          and before every externalization (gateway transmission,
          timer-armed retry). Meaningful with a [Wal.Sync_batch] store:
          commits then defer their fsync to the next barrier, and the
          engine guarantees no transmission precedes the barrier covering
          the transaction that created the message. *)
  workers : int;
      (** worker domains draining the dispatcher per {!run} batch. 1 (the
          default) runs inline on the calling thread and is deterministic:
          observable behaviour matches the single-threaded engine. More
          workers process conflict-free messages (different queues, or
          different slices per [lock_granularity]) concurrently; per-queue
          arrival order and exactly-once externalization are preserved.
          Defaults to [$DEMAQ_WORKERS] when set. *)
  metrics : bool;
      (** enable the wall-clock side of observability: §3.1 phase-latency
          histograms (sampled 1-in-8 per worker; exact when tracing),
          WAL fsync timing, barrier timing. Counters (and therefore
          {!stats} and the exposition's totals) are always live
          regardless; off (the default) merely skips every clock read on
          the hot path. *)
}

val default_config : config

type t

exception Deployment_error of string

val deploy :
  ?config:config ->
  ?time_source:Demaq_obs.Time_source.t ->
  ?store:Store.t ->
  ?network:Demaq_net.Network.t ->
  ?payload_format:[ `Binary | `Text ] ->
  string ->
  t
(** Parse, analyze and compile the program text, register all definitions,
    and recover scheduler/timer state from the store (all unprocessed
    messages are rescheduled; pending echo timeouts are re-registered).
    [time_source] (default real time) is linked to the engine clock and
    becomes the registry/span clock — pass a virtual source to run the
    whole node on simulated time. [payload_format] selects the stored
    payload representation (default compact binary; reads accept both).
    @raise Deployment_error when parsing or semantic analysis fails. *)

val queue_manager : t -> Demaq_mq.Queue_manager.t
val store : t -> Store.t
val clock : t -> Clock.t
val network : t -> Demaq_net.Network.t
val config : t -> config
val explain : t -> string
(** The compiled execution plans, printed. *)

(** {1 Gateways} *)

val bind_gateway :
  t -> queue:string -> ?endpoint:string -> ?replies_to:string -> unit -> unit
(** Route an outgoing gateway queue to a named network endpoint (default:
    the queue name) and optionally deliver the endpoint's replies into an
    incoming gateway queue. *)

val register_interface : t -> file:string -> string -> (unit, string) result
(** Register the contents of a WSDL file named by a gateway queue's
    [interface <file> port <name>] declaration (§2.1.2). Once registered,
    outgoing messages on that gateway are validated as inputs of the
    declared port; violations become [interfaceViolation] error
    messages. *)

val set_collection : t -> string -> Tree.tree list -> unit

(** {1 Driving the node} *)

val inject :
  t ->
  ?props:(string * Value.atomic) list ->
  ?flow:string ->
  queue:string ->
  Tree.tree ->
  (Demaq_mq.Message.t, Demaq_mq.Queue_manager.error) result
(** Deliver an external message into a queue (e.g. a request arriving at an
    incoming gateway), in its own transaction. The message roots a causal
    flow: [flow] adopts a client-supplied id (the HTTP ingress passes the
    [X-Demaq-Flow] header through here), otherwise one is minted. *)

val inject_batch :
  t ->
  ?props:(string * Value.atomic) list ->
  ?flow:string ->
  queue:string ->
  Tree.tree list ->
  (Demaq_mq.Message.t, Demaq_mq.Queue_manager.error) result list
(** Batch {!inject}: one lock acquisition for the whole batch, one
    transaction per document, results in input order. Without [flow] each
    document mints its own flow id. *)

val admission_stats : t -> int * int * int
(** [(scans, decodes, decoded_bytes)]: rule admissions resolved from the
    payload synopsis without materializing a tree, payloads decoded into
    trees, and the bytes those decodes read. *)

type step_result = Processed of Demaq_mq.Message.t | Idle

val step : t -> step_result
(** Process the next scheduled message (§3.1), or report an empty agenda. *)

val pump_gateways : t -> int
(** Transmit pending messages in outgoing gateway queues; returns the
    number of transmissions attempted. Network failures become error
    messages routed per §3.6. *)

val advance_time : t -> int -> unit
(** Advance the virtual clock and fire due echo-queue timeouts (§2.1.3). *)

val timers_pending : t -> int
(** Entries (echo timeouts, armed retries) waiting in the timer wheel. *)

val next_timer_due : t -> int option
(** The earliest pending timer deadline, in clock ticks — what a
    simulation jumps time to when the node is otherwise quiescent. *)

val set_picker : t -> (int -> int) option -> unit
(** Install (or clear) the simulation's seeded dispatch chooser: on
    inline (single-worker) drains the dispatcher picks pseudo-randomly
    among all messages that could legally run next instead of strict
    scheduler order. See {!Worker_pool.set_picker}. *)

val run : ?max_steps:int -> t -> int
(** Drain up to [batch_size] messages, issue one durability barrier, then
    {!pump_gateways}; repeat until the node is quiescent (or the step bound
    is hit); returns the number of messages processed. [max_steps] counts
    processed messages only — rescheduled duplicates and already-collected
    rids are skipped for free. Does not advance time. *)

(** {1 Adaptive runtime}

    The self-tuning pieces are opt-in and composable: {!enable_adaptive}
    turns on the AIMD group-commit controller (the {!run} loop then reads
    its moving batch target and flush deadline), {!enable_gate} arms the
    ingress admission gate, and {!maintain} is the periodic background
    tick that drives the controller, a budgeted GC slice, and log
    compaction. *)

val enable_adaptive : ?cfg:Controller.config -> t -> Controller.t
(** Switch group commit to the AIMD controller, seeded at the configured
    [batch_size]. Registers the [demaq_controller_*] metrics. *)

val enable_gate : ?cfg:Gate.config -> t -> Gate.t
(** Arm the ingress admission gate (consulted by {!admission} /
    {!Ingress.gate}). Registers the [demaq_gate_*] metrics. *)

val admission : t -> queue:string -> Gate.decision
(** One admission decision for a message bound for [queue], from the
    current dispatch depth and unsynced WAL bytes. Always
    {!Gate.Admit} when no gate is enabled. *)

val controller_tick : t -> Controller.decision option
(** Sample the metrics window and run one controller tick, moving the
    run loop's batch target. [None] when adaptive mode is off. *)

val maintain : ?gc_budget:int -> ?max_wal_bytes:int -> t -> int * int
(** One background maintenance tick: {!controller_tick}, then a
    straggler flush (any unsynced group-commit tail left by an idle
    drain is hardened, so the WAL axis of the admission gate cannot
    stay closed on an idle node), then at most [gc_budget]
    incremental-GC deletability checks, then a log compaction if the
    WAL has outgrown [max_wal_bytes] (0 disables either). Returns
    [(messages collected, WAL bytes reclaimed)]. *)

val batch_target : t -> int
(** The group-commit batch target currently in force (fixed
    [batch_size], or the controller's choice under adaptive mode). *)

(** {1 Fault injection} *)

val set_fault : t -> Fault.t option -> unit
(** Arm (or clear) deterministic fault injection: the engine consults the
    handle before every rule evaluation and pending-update application.
    Injected exceptions must abort the transaction, release all locks,
    produce an error message (§3.6) and leave the engine running — the
    crash-recovery suite asserts exactly that. *)

val gc : t -> int
(** Run the retention garbage collector (§2.3.3); returns collected count. *)

(** {1 Introspection} *)

type stats = {
  processed : int;
  rule_evaluations : int;
  messages_created : int;
  errors_raised : int;
  transmissions : int;
  timers_fired : int;
  gc_collected : int;
  prefilter_skips : int;
  txn_aborts : int;
      (** transactions rolled back because an exception escaped — every one
          of them released its locks and became an error message *)
  transmit_retries : int;  (** transmission attempts beyond the first *)
  dead_letters : int;
      (** reliable messages given up on after the retry budget (or a
          crashed endpoint handler) and routed to the error queue chain *)
  wal_group_syncs : int;
      (** durability barriers that actually synced (group commit) *)
  batch_fill : float;
      (** average messages covered per barrier ([processed /
          wal_group_syncs]); 0 when no barrier synced *)
  syncs_per_message : float;
      (** total WAL fsyncs per processed message — 1.0 under
          [Sync_always], approaching [1/batch_size] under group commit *)
}

val stats : t -> stats
val pending_messages : t -> int

val workers : t -> int
(** The configured worker-pool size (clamped). *)

val worker_stats : t -> Worker_pool.worker_stats list
(** Per-worker counters: messages processed, idle waits, drains joined. *)

val cache_sizes : t -> (string * int) list
(** Current entry counts of the per-rid caches ([node], [name], [sent],
    [outbox]); the retention GC must shrink these alongside the store. *)

(** {1 Execution tracing} *)

type trace_entry = Executor.trace_entry = {
  tr_tick : int;  (** virtual-clock time of the activation *)
  tr_rule : string;
  tr_trigger : int;  (** rid of the triggering message *)
  tr_queue : string;
  tr_updates : int;  (** pending updates the evaluation produced *)
  tr_skipped : bool;  (** suppressed by the condition pre-filter *)
}

val trace : t -> trace_entry list
(** The most recent rule activations, newest first, bounded by
    [trace_capacity]. A projection of {!spans}: every span's per-rule
    activations, flattened. *)

val pp_trace_entry : Format.formatter -> trace_entry -> unit
val queue_contents : t -> string -> Demaq_mq.Message.t list

(** {1 Observability}

    The metrics registry is the single source of truth: {!stats} reads
    it, {!exposition} renders it for a Prometheus scrape, and
    {!stats_json} serializes the full snapshot. Lifecycle spans (one per
    processed message: per-phase timings, rules fired, outcome) are kept
    in a ring of the last [trace_capacity] spans; phase timings are
    nonzero only with [config.metrics] or tracing on. *)

val registry : t -> Demaq_obs.Metrics.registry

val exposition : t -> string
(** Prometheus text-format rendering of the registry. *)

val stats_json : t -> string
(** The registry snapshot (counters, gauges, histogram count/sum) plus
    derived ratios, as one JSON object. *)

val spans : ?queue:string -> ?rid:int -> t -> Demaq_obs.Trace.span list
(** Retained lifecycle spans, newest first, optionally scoped to one
    queue and/or one rid. *)

val spans_jsonl : ?queue:string -> ?rid:int -> t -> string
(** Retained spans as JSONL, oldest first, with the same filters. *)

val pp_span : Format.formatter -> Demaq_obs.Trace.span -> unit

(** {1 Causal flows}

    With [config.flow_tracing] (the default) every message carries a
    durable provenance triple; these assemble them into cascade trees.
    Tree queries merge three sources — durable provenance from the store
    scan (survives crash-restart), the bounded in-memory flow store
    (covers messages the retention GC already collected), and the span
    ring (per-hop wait/phase timings) — so a tree renders wherever any
    evidence of the flow remains. *)

val flow_store : t -> Demaq_obs.Flow.t

val flow_id_of_rid : t -> int -> string option
(** The flow a message belongs to, from the in-memory index or its
    durable provenance. *)

val flow_nodes : t -> string -> Demaq_obs.Flow.node list
(** All known nodes of a flow, rid order, spans attached where held. *)

val flow_ascii : t -> string -> string
(** ASCII cascade tree with per-hop outcome + wait/phase breakdown and
    the critical path marked ([demaqd flow], minus the rid resolution). *)

val flow_json : t -> string -> string
(** The same tree as JSON (the [/flow/<id>] endpoint body). *)

val flows_json : t -> string
(** JSON array of retained flow summaries (the [/flows] endpoint body),
    most recent activity first. *)

(** {1 Dynamic evolution (paper §5 future work)} *)

val evolve : t -> string -> (unit, string) result
(** Apply an incremental QDL/QML script — additional [create] statements
    and [drop rule <name>] statements — to the running server. The
    combined program is re-analyzed and recompiled atomically; stored
    messages, scheduler state and timers are untouched. New rules apply to
    every message processed from now on; new properties and slicings only
    affect messages enqueued after the evolution (property values and
    slice memberships are fixed at creation, §2.2).

    Evolution changes the {e running} server only: program text is not
    persisted in the store, so a process that re-deploys after a restart
    must re-apply its evolution scripts (or deploy the evolved program
    text) — the same contract as the paper's static deployment model. *)

(** {1 Distribution (§2.1.2)} *)

val expose : t -> name:string -> queue:string -> (unit, string) result
(** Publish one of this server's incoming gateway queues as a named
    endpoint on its network, so that another node's outgoing gateway can
    send to it ("replacing local queues with pairs of gateway queues that
    connect two sites"). The sending node's address arrives in the
    [system-sender] property. *)

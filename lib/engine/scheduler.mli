(** The message scheduler (§4.4.2): "maintains a list of all unprocessed
    messages and chooses the next message to be handled, considering both
    their temporal ordering and the priority of the containing queues."

    A binary heap ordered by (queue priority descending, arrival sequence
    ascending): higher-priority messages overtake older lower-priority
    ones; FIFO holds within a priority level. All operations are
    O(log n). *)

type t

type entry = { rid : int; priority : int; seq : int }
(** A scheduled message with its arrival sequence number. Exposed so the
    dispatcher can park an entry (queue busy on another worker) and later
    re-push it with its original [seq], preserving per-queue FIFO. *)

val create : unit -> t

val add : t -> priority:int -> int -> unit
(** Schedule a message rid at the given queue priority. *)

val entry : t -> priority:int -> int -> entry
(** Allocate the next arrival sequence number for a rid without pushing;
    pair with {!push}. *)

val push : t -> entry -> unit
(** (Re-)insert an entry, keeping whatever [seq] it carries. *)

val pop : t -> int option
(** The next rid per the scheduling order, removing it. *)

val pop_entry : t -> entry option
(** Like {!pop} but keeps the priority and sequence number attached. *)

val peek : t -> int option

val peek_entry : t -> entry option
(** Like {!peek} but with priority and sequence number attached. *)

val length : t -> int
val is_empty : t -> bool

val pending_rids : t -> int list
(** All scheduled rids in heap (not scheduling) order; for diagnostics. *)

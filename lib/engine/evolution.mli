(** Dynamic evolution (paper §5 future work): apply an incremental
    QDL/QML script — additional [create] statements and [drop rule]
    statements — to a running engine context. The combined program is
    re-analyzed and recompiled atomically under the executor's state
    lock; stored messages, scheduler state and timers are untouched. *)

val evolve : Executor.t -> string -> (unit, string) result

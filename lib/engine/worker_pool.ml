(* The worker pool: N OCaml 5 domains draining the dispatcher.

   Gray's queued-transaction-processing shape — a pool of servers pulling
   independent units of work off a shared queue — mapped onto domains.
   The pool owns the dispatcher and a monitor (mutex + condition): every
   dispatcher access goes through the monitor, workers block on the
   condition when all remaining work conflicts with in-flight messages,
   and every completion or new scheduling broadcasts so blocked workers
   re-examine the heap.

   Domains are spawned per [drain] call and joined before it returns
   (spawn cost is microseconds against a batch of message transactions;
   keeping domains parked between drains would pin OCaml's limited domain
   budget for no gain). Two paths are special-cased to run inline on the
   calling thread with no domains at all:

   - [workers = 1]: the deterministic mode. One worker that completes
     each message before asking for the next can never observe a
     conflict, so the dispatcher degenerates to the seed scheduler's
     exact pop order and the engine's observable behaviour (trace order,
     stats, externalization order) matches the single-threaded engine.
   - [budget = 1] (single-step driving, e.g. [Server.step]): same
     argument, regardless of the configured worker count.

   Budget semantics match the seed's [max_steps]: only messages whose
   processing callback returns [true] count; rescheduled duplicates and
   collected rids are skipped for free. A worker therefore stops only
   when the budget is exhausted by *completed* work — while claimed work
   is still in flight it waits, because an in-flight skip hands its
   budget slot back. *)

module Metrics = Demaq_obs.Metrics

let log = Logs.Src.create "demaq.worker_pool" ~doc:"Demaq worker pool"

module Log = (val Logs.src_log log : Logs.LOG)

type worker_stats = {
  mutable w_processed : int;  (* messages this worker completed *)
  mutable w_idle : int;  (* times it blocked waiting for compatible work *)
  mutable w_drains : int;  (* drain calls it participated in *)
}

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  dsp : Dispatch.t;
  workers : int;
  wstats : worker_stats array;
  registry : Metrics.registry option;
      (* worker i records into shard i+1; shard 0 stays the coordinator's *)
  (* per-drain monitor state, guarded by [mu] *)
  mutable in_flight : int;
  mutable done_ : int;
  mutable budget : int;
  mutable failure : exn option;
  mutable picker : (int -> int) option;
      (* simulation hook: seeded candidate chooser for inline drains *)
}

let create ?registry ~workers () =
  let workers = max 1 (min workers 64) in
  let t =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      dsp = Dispatch.create ();
      workers;
      wstats =
        Array.init workers (fun _ -> { w_processed = 0; w_idle = 0; w_drains = 0 });
      registry;
      in_flight = 0;
      done_ = 0;
      budget = 0;
      failure = None;
      picker = None;
    }
  in
  (match registry with
   | None -> ()
   | Some reg ->
     (* dispatcher depth is the engine's backlog signal; parked counts how
        much of it is blocked on conflicts rather than waiting for a slot *)
     Metrics.gauge_fn reg "demaq_dispatch_queued"
       ~help:"Messages in the dispatcher priority heap" (fun () ->
         float_of_int (Mutex.protect t.mu (fun () -> Dispatch.queued t.dsp)));
     Metrics.gauge_fn reg "demaq_dispatch_parked"
       ~help:"Messages parked on an in-flight conflict resource" (fun () ->
         float_of_int (Mutex.protect t.mu (fun () -> Dispatch.parked t.dsp)));
     Array.iteri
       (fun i w ->
         let name fam = Printf.sprintf "%s{worker=\"%d\"}" fam i in
         Metrics.counter_fn reg
           (name "demaq_worker_processed_total")
           ~help:"Messages completed per worker slot" (fun () ->
             float_of_int w.w_processed);
         Metrics.counter_fn reg
           (name "demaq_worker_idle_total")
           ~help:"Times a worker blocked waiting for compatible work"
           (fun () -> float_of_int w.w_idle);
         Metrics.counter_fn reg
           (name "demaq_worker_drains_total")
           ~help:"Drain calls a worker participated in" (fun () ->
             float_of_int w.w_drains))
       t.wstats);
  t

let workers t = t.workers
let set_picker t picker = t.picker <- picker
let locked t f = Mutex.protect t.mu f

let schedule t ~priority ~resources rid =
  locked t (fun () ->
      Dispatch.schedule t.dsp ~priority ~resources rid;
      Condition.broadcast t.cond)

let pending t = locked t (fun () -> Dispatch.pending t.dsp)
let pending_rids t = locked t (fun () -> Dispatch.pending_rids t.dsp)

let worker_stats t =
  Array.to_list
    (Array.map
       (fun w ->
         { w_processed = w.w_processed; w_idle = w.w_idle; w_drains = w.w_drains })
       t.wstats)

(* ---- inline (deterministic) drain ---- *)

let drain_inline t ~budget ~process =
  let ws = t.wstats.(0) in
  ws.w_drains <- ws.w_drains + 1;
  let done_ = ref 0 in
  let continue_ = ref true in
  while !continue_ && !done_ < budget do
    match locked t (fun () -> Dispatch.next ?pick:t.picker t.dsp) with
    | Dispatch.Ready rid ->
      let ok =
        match process rid with
        | ok -> ok
        | exception e ->
          locked t (fun () -> Dispatch.complete t.dsp rid);
          raise e
      in
      locked t (fun () -> Dispatch.complete t.dsp rid);
      if ok then begin
        incr done_;
        ws.w_processed <- ws.w_processed + 1
      end
    | Dispatch.Busy | Dispatch.Empty ->
      (* Busy is impossible with nothing in flight; treat it as drained *)
      continue_ := false
  done;
  !done_

(* ---- parallel drain ---- *)

let worker_loop t i ~process =
  (* route this domain's metric recordings to its own shard; the
     coordinator (and inline drains) keep shard 0 *)
  Option.iter (fun reg -> Metrics.bind_shard reg (i + 1)) t.registry;
  let ws = t.wstats.(i) in
  ws.w_drains <- ws.w_drains + 1;
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.mu;
    let rec decide () =
      if t.failure <> None || t.done_ >= t.budget then `Stop
      else if t.done_ + t.in_flight >= t.budget then
        if t.in_flight = 0 then `Stop
        else begin
          (* budget provisionally full, but an in-flight skip would hand a
             slot back: wait for completions rather than leave early *)
          ws.w_idle <- ws.w_idle + 1;
          Condition.wait t.cond t.mu;
          decide ()
        end
      else
        match Dispatch.next t.dsp with
        | Dispatch.Ready rid ->
          t.in_flight <- t.in_flight + 1;
          `Run rid
        | Dispatch.Busy | Dispatch.Empty ->
          if t.in_flight = 0 then `Stop
          else begin
            (* all remaining work conflicts with (or may be created by)
               running messages; their completion broadcasts *)
            ws.w_idle <- ws.w_idle + 1;
            Condition.wait t.cond t.mu;
            decide ()
          end
    in
    let action = decide () in
    Mutex.unlock t.mu;
    match action with
    | `Stop -> continue_ := false
    | `Run rid ->
      let result = match process rid with ok -> Ok ok | exception e -> Error e in
      Mutex.lock t.mu;
      t.in_flight <- t.in_flight - 1;
      Dispatch.complete t.dsp rid;
      (match result with
       | Ok true ->
         t.done_ <- t.done_ + 1;
         ws.w_processed <- ws.w_processed + 1
       | Ok false -> ()
       | Error e -> if t.failure = None then t.failure <- Some e);
      Condition.broadcast t.cond;
      Mutex.unlock t.mu
  done

let drain_parallel t ~budget ~process =
  t.done_ <- 0;
  t.in_flight <- 0;
  t.budget <- budget;
  t.failure <- None;
  Log.debug (fun f -> f "parallel drain: budget %d across %d workers" budget t.workers);
  let doms =
    Array.init t.workers (fun i -> Domain.spawn (fun () -> worker_loop t i ~process))
  in
  Array.iter Domain.join doms;
  match t.failure with Some e -> raise e | None -> t.done_

let drain t ~budget ~process =
  if budget <= 0 then 0
  else if t.workers = 1 || budget = 1 then drain_inline t ~budget ~process
  else drain_parallel t ~budget ~process

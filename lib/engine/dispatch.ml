(* The queue-partitioned dispatcher.

   Gray's "Queues Are Databases" runs a pool of servers draining one queue
   set in parallel; what keeps that sound in Demaq is a partitioning rule
   layered over the priority scheduler (§4.4.2): two messages that could
   conflict — same queue, or overlapping slices under slice-granularity
   locking — must never run concurrently, and within a queue the arrival
   order must survive parallel execution.

   Each scheduled message carries its conflict resources (queue name plus
   slice memberships, computed by the executor from [lock_granularity]).
   [next] pops the scheduler heap; an entry whose resources are all free
   starts running and claims them, an entry blocked on an in-flight
   resource is parked on that resource. Completion releases the resources
   and re-pushes every entry parked on them with its ORIGINAL sequence
   number, so a parked message re-enters the heap ahead of anything that
   arrived after it: per-queue FIFO and priority order are preserved
   exactly.

   Invariant: a parked entry is always attached to an in-flight resource,
   so [Busy] can only be observed while some message is running — a
   single worker that completes each message before asking for the next
   can never park anything, which makes one-worker mode degenerate to the
   seed scheduler's exact pop order.

   The dispatcher is NOT internally synchronized: the worker pool
   serializes all access under its own monitor mutex. *)

type slot = Ready of int | Busy | Empty

type t = {
  sched : Scheduler.t;
  resources_of : (int, string list) Hashtbl.t;
      (* rid -> conflict resources, while the rid is queued or parked *)
  parked : (string, Scheduler.entry Queue.t) Hashtbl.t;
      (* busy resource -> entries waiting for it, in pop (priority) order *)
  in_flight : (string, unit) Hashtbl.t;  (* resources of running messages *)
  running : (int, string list) Hashtbl.t;  (* rid -> resources it claimed *)
  mutable parked_count : int;
}

let create () =
  {
    sched = Scheduler.create ();
    resources_of = Hashtbl.create 64;
    parked = Hashtbl.create 16;
    in_flight = Hashtbl.create 16;
    running = Hashtbl.create 8;
    parked_count = 0;
  }

let schedule t ~priority ~resources rid =
  (* A rid already queued or running is a duplicate (e.g. rescheduled
     across a restart); scheduling it twice would let the second copy run
     unpartitioned, so it is dropped — the first copy's processing marks
     the message processed either way. *)
  if not (Hashtbl.mem t.resources_of rid || Hashtbl.mem t.running rid) then begin
    Hashtbl.replace t.resources_of rid resources;
    Scheduler.push t.sched (Scheduler.entry t.sched ~priority rid)
  end

let park t e busy =
  let q =
    match Hashtbl.find_opt t.parked busy with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace t.parked busy q;
      q
  in
  Queue.push e q;
  t.parked_count <- t.parked_count + 1

let claim t rid resources =
  List.iter (fun r -> Hashtbl.replace t.in_flight r ()) resources;
  Hashtbl.remove t.resources_of rid;
  Hashtbl.replace t.running rid resources;
  Ready rid

let rec next_fifo t =
  match Scheduler.pop_entry t.sched with
  | None -> if t.parked_count > 0 then Busy else Empty
  | Some e -> (
    let rid = e.Scheduler.rid in
    let resources =
      Option.value ~default:[] (Hashtbl.find_opt t.resources_of rid)
    in
    match List.find_opt (fun r -> Hashtbl.mem t.in_flight r) resources with
    | Some busy ->
      park t e busy;
      next_fifo t
    | None -> claim t rid resources)

(* Picked mode (simulation): instead of the heap's deterministic head,
   choose pseudo-randomly among every message that could LEGALLY run next
   — the runnable entries of the top priority level, keeping only the
   earliest entry per conflict resource. Restricting candidates this way
   makes priority and per-queue FIFO order hold by construction (exactly
   as in FIFO mode), while still exercising every cross-queue
   interleaving a real multi-worker run could produce. [f] is called once
   per successful choice with the candidate count; the schedule replays
   bit-identically when [f] is a seeded generator. *)
let rec next_picked t f =
  match Scheduler.pop_entry t.sched with
  | None -> if t.parked_count > 0 then Busy else Empty
  | Some first ->
    let prio = first.Scheduler.priority in
    (* candidates (reversed) with their resources; entries runnable but
       behind an earlier candidate on some resource go back untouched *)
    let candidates = ref [] in
    let n_candidates = ref 0 in
    let deferred = ref [] in
    let classify e =
      let rid = e.Scheduler.rid in
      let resources =
        Option.value ~default:[] (Hashtbl.find_opt t.resources_of rid)
      in
      match List.find_opt (fun r -> Hashtbl.mem t.in_flight r) resources with
      | Some busy -> park t e busy
      | None ->
        if
          List.exists
            (fun r ->
              List.exists (fun (_, res) -> List.mem r res) !candidates)
            resources
        then deferred := e :: !deferred
        else begin
          candidates := (e, resources) :: !candidates;
          incr n_candidates
        end
    in
    classify first;
    let rec drain () =
      match Scheduler.peek_entry t.sched with
      | Some e when e.Scheduler.priority = prio ->
        ignore (Scheduler.pop_entry t.sched);
        classify e;
        drain ()
      | _ -> ()
    in
    drain ();
    (match List.rev !candidates with
     | [] ->
       (* the whole level parked on in-flight resources (deferral needs a
          candidate, so [deferred] is empty too); fall through to the next
          priority level *)
       next_picked t f
     | cands ->
       let n = !n_candidates in
       let k = (((f n) mod n) + n) mod n in
       let chosen, resources = List.nth cands k in
       List.iteri
         (fun i (e, _) -> if i <> k then Scheduler.push t.sched e)
         cands;
       List.iter (Scheduler.push t.sched) !deferred;
       claim t chosen.Scheduler.rid resources)

let next ?pick t =
  match pick with None -> next_fifo t | Some f -> next_picked t f

let complete t rid =
  match Hashtbl.find_opt t.running rid with
  | None -> ()
  | Some resources ->
    Hashtbl.remove t.running rid;
    List.iter
      (fun r ->
        Hashtbl.remove t.in_flight r;
        match Hashtbl.find_opt t.parked r with
        | None -> ()
        | Some q ->
          Hashtbl.remove t.parked r;
          Queue.iter
            (fun e ->
              t.parked_count <- t.parked_count - 1;
              (* original seq: overtakes anything that arrived later *)
              Scheduler.push t.sched e)
            q)
      resources

let pending t = Scheduler.length t.sched + t.parked_count
let queued t = Scheduler.length t.sched
let parked t = t.parked_count

let pending_rids t =
  Scheduler.pending_rids t.sched
  @ Hashtbl.fold
      (fun _ q acc -> Queue.fold (fun acc e -> e.Scheduler.rid :: acc) acc q)
      t.parked []

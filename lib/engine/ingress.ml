(* HTTP ingress: the seam between [Demaq_net.Http] (real sockets, pool of
   accept domains) and the engine's transactional enqueue path. *)

module Http = Demaq_net.Http
module Qm = Demaq_mq.Queue_manager

let enqueue_prefix = "/enqueue/"

let handle_enqueue srv queue body =
  if queue = "" then
    Http.response ~status:404 "missing queue name\n"
  else
    match Demaq_xml.Parser.parse body with
    | exception Demaq_xml.Parser.Parse_error { msg; _ } ->
      Http.response ~status:400 (Printf.sprintf "bad XML: %s\n" msg)
    | payload -> (
      match Server.inject srv ~queue payload with
      | Ok m ->
        Http.response ~status:202 ~content_type:"application/xml"
          (Printf.sprintf "<accepted rid=\"%d\" queue=\"%s\"/>\n"
             m.Demaq_mq.Message.rid queue)
      | Error (Qm.Unknown_queue q) ->
        Http.response ~status:404 (Printf.sprintf "unknown queue %s\n" q)
      | Error e ->
        (* schema violation, property error: a permanent admission
           rejection — 422, not 429, so a well-behaved client won't
           retry a message that can never be admitted *)
        Http.response ~status:422 (Qm.error_to_string e ^ "\n"))

let handler ?(enqueue = true) srv (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | Http.GET, "/metrics" ->
    Some
      (Http.ok ~content_type:"text/plain; version=0.0.4"
         (Server.exposition srv))
  | Http.GET, "/stats.json" ->
    Some (Http.ok ~content_type:"application/json" (Server.stats_json srv))
  | Http.GET, "/trace" ->
    Some (Http.ok ~content_type:"application/jsonl" (Server.spans_jsonl srv))
  | Http.GET, "/healthz" -> Some (Http.ok "ok\n")
  | Http.POST, path
    when enqueue && String.starts_with ~prefix:enqueue_prefix path ->
    let queue =
      String.sub path (String.length enqueue_prefix)
        (String.length path - String.length enqueue_prefix)
    in
    Some (handle_enqueue srv queue req.Http.body)
  | _ -> None

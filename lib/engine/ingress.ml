(* HTTP ingress: the seam between [Demaq_net.Http] (real sockets, pool of
   accept domains) and the engine's transactional enqueue path. *)

module Http = Demaq_net.Http
module Qm = Demaq_mq.Queue_manager

let enqueue_prefix = "/enqueue/"
let flow_prefix = "/flow/"

(* Minimal query-string access: [k1=v1&k2=v2], with %XX and '+'
   decoding — enough for queue names and rids. *)
let query_params q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun kv ->
           match String.index_opt kv '=' with
           | None -> None
           | Some i ->
             let decode s =
               let b = Buffer.create (String.length s) in
               let n = String.length s in
               let i = ref 0 in
               while !i < n do
                 (match s.[!i] with
                 | '+' -> Buffer.add_char b ' '
                 | '%' when !i + 2 < n -> (
                   match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
                   | Some c ->
                     Buffer.add_char b (Char.chr c);
                     i := !i + 2
                   | None -> Buffer.add_char b '%')
                 | c -> Buffer.add_char b c);
                 incr i
               done;
               Buffer.contents b
             in
             Some
               ( String.sub kv 0 i,
                 decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let single_response queue = function
  | Ok m ->
    Http.response ~status:202 ~content_type:"application/xml"
      (Printf.sprintf "<accepted rid=\"%d\" queue=\"%s\"/>\n"
         m.Demaq_mq.Message.rid queue)
  | Error (Qm.Unknown_queue q) ->
    Http.response ~status:404 (Printf.sprintf "unknown queue %s\n" q)
  | Error e ->
    (* schema violation, property error: a permanent admission
       rejection — 422, not 429, so a well-behaved client won't
       retry a message that can never be admitted *)
    Http.response ~status:422 (Qm.error_to_string e ^ "\n")

(* A body holding several concatenated documents is admitted as a batch:
   one parser pass, one engine lock acquisition, per-document
   transactions. 202 only when every document was accepted; 404 when the
   whole batch names an unknown queue; 422 otherwise, with a per-document
   result report either way. *)
let batch_response srv ?flow queue payloads =
  let results = Server.inject_batch srv ?flow ~queue payloads in
  let accepted, rejected =
    List.fold_left
      (fun (a, r) res -> match res with Ok _ -> (a + 1, r) | Error _ -> (a, r + 1))
      (0, 0) results
  in
  let body = Buffer.create 256 in
  Buffer.add_string body
    (Printf.sprintf "<batch queue=\"%s\" accepted=\"%d\" rejected=\"%d\">\n" queue
       accepted rejected);
  List.iter
    (fun res ->
      Buffer.add_string body
        (match res with
        | Ok m ->
          Printf.sprintf "  <accepted rid=\"%d\"/>\n" m.Demaq_mq.Message.rid
        | Error e ->
          Printf.sprintf "  <rejected reason=\"%s\"/>\n" (Qm.error_to_string e)))
    results;
  Buffer.add_string body "</batch>\n";
  let status =
    if rejected = 0 then 202
    else if
      accepted = 0
      && List.for_all
           (function Error (Qm.Unknown_queue _) -> true | _ -> false)
           results
    then 404
    else 422
  in
  Http.response ~status ~content_type:"application/xml" (Buffer.contents body)

let handle_enqueue srv ?flow queue body =
  if queue = "" then
    Http.response ~status:404 "missing queue name\n"
  else
    match Demaq_xml.Parser.parse_many body with
    | exception Demaq_xml.Parser.Parse_error { msg; _ } ->
      Http.response ~status:400 (Printf.sprintf "bad XML: %s\n" msg)
    | [ payload ] ->
      single_response queue (Server.inject srv ?flow ~queue payload)
    | payloads -> batch_response srv ?flow queue payloads

(* [/flow/<id>] accepts either a flow id or a bare rid (all digits):
   the rid is resolved to its flow first, so "the flow this accepted
   message belongs to" is one request away from an /enqueue response. *)
let handle_flow srv id =
  let flow_id =
    match int_of_string_opt id with
    | Some rid -> Server.flow_id_of_rid srv rid
    | None -> Some id
  in
  match flow_id with
  | None -> Http.response ~status:404 (Printf.sprintf "unknown rid %s\n" id)
  | Some fid ->
    let body = Server.flow_json srv fid in
    if Server.flow_nodes srv fid = [] then
      Http.response ~status:404 (Printf.sprintf "unknown flow %s\n" fid)
    else Http.ok ~content_type:"application/json" body

(* The admission gate as an [Http.start ?gate] hook: consulted after the
   request head is parsed but before the body is read or an XML tree
   built, so a shed request costs the node a header parse and nothing
   else. Only enqueue POSTs are gated — the observability endpoints must
   stay readable precisely when the node is overloaded. 429 + Retry-After
   marks the rejection transient, in contrast to the permanent 422 the
   enqueue path answers for schema violations. *)
let gate srv (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | Http.POST, path when String.starts_with ~prefix:enqueue_prefix path ->
    let queue =
      String.sub path (String.length enqueue_prefix)
        (String.length path - String.length enqueue_prefix)
    in
    (match Server.admission srv ~queue with
     | Gate.Admit -> None
     | Gate.Shed { retry_after; hard } ->
       Some
         (Http.response ~status:429
            ~headers:[ ("Retry-After", string_of_int retry_after) ]
            (Printf.sprintf "overloaded (%s), retry after %ds\n"
               (if hard then "shedding all traffic"
                else "shedding below the priority floor")
               retry_after)))
  | _ -> None

let handler ?(enqueue = true) srv (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | Http.GET, "/metrics" ->
    Some
      (Http.ok ~content_type:"text/plain; version=0.0.4"
         (Server.exposition srv))
  | Http.GET, "/stats.json" ->
    Some (Http.ok ~content_type:"application/json" (Server.stats_json srv))
  | Http.GET, "/trace" ->
    let params = query_params req.Http.query in
    let queue = List.assoc_opt "queue" params in
    let rid = Option.bind (List.assoc_opt "rid" params) int_of_string_opt in
    Some
      (Http.ok ~content_type:"application/jsonl"
         (Server.spans_jsonl ?queue ?rid srv))
  | Http.GET, "/flows" ->
    Some (Http.ok ~content_type:"application/json" (Server.flows_json srv))
  | Http.GET, path when String.starts_with ~prefix:flow_prefix path ->
    let id =
      String.sub path (String.length flow_prefix)
        (String.length path - String.length flow_prefix)
    in
    Some (handle_flow srv id)
  | Http.GET, "/healthz" -> Some (Http.ok "ok\n")
  | Http.POST, path
    when enqueue && String.starts_with ~prefix:enqueue_prefix path ->
    let queue =
      String.sub path (String.length enqueue_prefix)
        (String.length path - String.length enqueue_prefix)
    in
    let flow =
      match List.assoc_opt "x-demaq-flow" req.Http.headers with
      | Some "" | None -> None
      | some -> some
    in
    Some (handle_enqueue srv ?flow queue req.Http.body)
  | _ -> None

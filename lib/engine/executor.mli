(** The executor: Demaq's single-message transaction (§3.1) behind a
    narrow interface, safe to run from several worker domains.

    {!process} is the paper's iterative cycle — evaluate every pertinent
    rule against a snapshot, collect the pending-action list, apply it in
    one transaction, route failures as error messages (§3.6). The shared
    engine context {!t} is exposed transparently so the externalizer and
    the composition root can reach its components; the locking contract
    is part of the interface:

    - [state_mu] guards the queue manager, store, caches, outboxes and
      timers. Functions documented "assumes the lock" must only be called
      from within {!locked} (or {!with_txn}); everything else locks
      internally. Rule evaluation inside {!process} runs WITHOUT the
      lock — that is the engine's CPU parallelism — with the qs: host
      callbacks re-acquiring it per call.
    - Statistics live in a sharded {!Demaq_obs.Metrics} registry (shard 0
      is the coordinator domain; the worker pool binds worker [i] to
      shard [i+1]); lifecycle spans in a bounded {!Demaq_obs.Trace} ring.
    - Lock order: [state_mu] before the span-ring/WAL/pool-monitor
      mutexes, never the reverse. *)

module Tree = Demaq_xml.Tree
module Value = Demaq_xquery.Value
module Ast = Demaq_xquery.Ast
module Context = Demaq_xquery.Context
module Store = Demaq_store.Message_store
module Qm = Demaq_mq.Queue_manager
module Message = Demaq_mq.Message
module Compiler = Demaq_lang.Compiler
module Prefilter = Demaq_lang.Prefilter
module Network = Demaq_net.Network
module Wsdl = Demaq_net.Wsdl
module Metrics = Demaq_obs.Metrics
module Trace = Demaq_obs.Trace
module Flow = Demaq_obs.Flow

type config = {
  merged_plans : bool;
      (** evaluate the compiler's guarded plans (the default) instead of
          interpreting rules one at a time; observationally equivalent,
          including §3.6 error attribution *)
  footprint_dispatch : bool;
      (** partition dispatch on the compiled rules' static conflict
          footprints instead of whole queues: same-queue messages whose
          admitted rules touch disjoint resources run concurrently, at
          the cost of per-queue arrival order between them *)
  use_slice_index : bool;
  lock_granularity : [ `Queue | `Slice ];
  use_prefilter : bool;
  trace_capacity : int;
  flow_tracing : bool;
      (** mint, propagate and durably persist the causal provenance
          triple (flow id, parent rid, causing rule) on every message,
          and feed the bounded flow store; off writes extra blobs
          identical to pre-flow builds *)
  gc_every : int;
  system_error_queue : string option;
  optimize : bool;
  node_name : string;
  transmit_retries : int;
  retry_backoff : int;
  batch_size : int;
  group_commit : bool;
  workers : int;
  metrics : bool;
      (** enables the wall-clock/histogram path (phase latencies, fsync
          timing); counters are always live *)
}

type gateway_binding = { endpoint : string; replies_to : string option }

(** The executor's registered instruments; the externalizer and the
    composition root record through these. *)
type metrics = {
  m_processed : Metrics.counter;
  m_rule_evaluations : Metrics.counter;
  m_messages_created : Metrics.counter;
  m_errors_raised : Metrics.counter;
  m_transmissions : Metrics.counter;
  m_timers_fired : Metrics.counter;
  m_gc_collected : Metrics.counter;
  m_prefilter_skips : Metrics.counter;
  m_txn_aborts : Metrics.counter;
  m_transmit_retries : Metrics.counter;
  m_dead_letters : Metrics.counter;
  m_admission_scans : Metrics.counter;
      (** rule admission resolved from the payload synopsis, no tree *)
  m_trees_materialized : Metrics.counter;
      (** stored payloads decoded into body trees *)
  m_decoded_bytes : Metrics.counter;
      (** payload bytes read by those decodes *)
  m_lock_seconds : Metrics.histogram;
  m_decode_seconds : Metrics.histogram;
  m_eval_seconds : Metrics.histogram;
  m_apply_seconds : Metrics.histogram;
  m_barrier_seconds : Metrics.histogram;
}

type trace_entry = {
  tr_tick : int;
  tr_rule : string;
  tr_trigger : int;
  tr_queue : string;
  tr_updates : int;
  tr_skipped : bool;
}

type t = {
  cfg : config;
  qm : Qm.t;
  st : Store.t;
  net : Network.t;
  mutable compiled : Compiler.t;
  timers : Timer_wheel.t;
  clk : Clock.t;
  state_mu : Mutex.t;
  node_cache : (int, Tree.node) Hashtbl.t;
  name_cache : (int, Prefilter.Names.t) Hashtbl.t;
  collection_cache : (string, Value.t) Hashtbl.t;
  bindings : (string, gateway_binding) Hashtbl.t;
  interfaces : (string, Wsdl.t) Hashtbl.t;
  sent : (int, unit) Hashtbl.t;
  outbox : (string, int Queue.t) Hashtbl.t;
  mutable schedule : priority:int -> resources:string list -> int -> unit;
  mutable batch_target : int;
      (** group-commit batch the coordinator drains per barrier; fixed at
          [cfg.batch_size] unless the adaptive controller is steering it *)
  reg : Metrics.registry;
  met : metrics;
  spans : Trace.t;
  flows : Flow.t;
      (** bounded causal flow store; fed on enqueue ({!note_flow} via the
          enqueue paths) and span completion when [flow_tracing] is on *)
  mutable flow_seq : int;
  pending_ns : (int, int) Hashtbl.t;
  wait_hists : (string, Metrics.histogram) Hashtbl.t;
  mutable fault : Fault.t option;
}

val create :
  cfg:config ->
  qm:Qm.t ->
  st:Store.t ->
  net:Network.t ->
  compiled:Compiler.t ->
  clk:Clock.t ->
  unit ->
  t

val locked : t -> (unit -> 'a) -> 'a
(** Run under [state_mu] (not reentrant). *)

val set_fault : t -> Fault.t option -> unit

val harden : t -> unit
(** Group-commit barrier; must precede any externalized effect. *)

val in_txn : t -> (Store.txn -> 'a) -> 'a
(** Commit on return, abort + harden + re-raise on exception. Assumes the
    lock. *)

val with_txn : t -> (Store.txn -> 'a) -> 'a
(** {!locked} + {!in_txn}. *)

val exn_description : exn -> string
val set_collection : t -> string -> Tree.tree list -> unit
val bind_gateway : t -> queue:string -> ?endpoint:string -> ?replies_to:string -> unit -> unit
val register_interface : t -> file:string -> string -> (unit, string) result

val outbox_for : t -> string -> int Queue.t
(** Assumes the lock. *)

val note_outgoing : t -> Message.t -> unit
(** Assumes the lock. *)

val queue_priority : t -> string -> int

val resources_for : t -> Message.t -> string list
(** The conflict resources the dispatcher partitions on: queue plus
    slices per [lock_granularity], or — under [footprint_dispatch] — the
    admitted rules' static conflict footprints from the compiled plan
    (membership slice resources always included; ⊤ expands to every
    declared queue). *)

val schedule_message : t -> Message.t -> unit
(** Route through the [schedule] hook (the worker pool). Safe under the
    lock: the hook only takes the pool monitor. *)

val trace : t -> trace_entry list
(** The rule-activation view, projected out of the lifecycle span ring:
    newest first, at most [trace_capacity] entries. *)

val pp_trace_entry : Format.formatter -> trace_entry -> unit

val raise_error :
  t ->
  Store.txn ->
  kind:Errors.kind ->
  description:string ->
  ?rule:string ->
  ?rule_error_queue:string ->
  ?provenance:Message.provenance ->
  source_queue:string ->
  ?initial_message:Tree.tree ->
  unit ->
  unit
(** §3.6 error routing. Assumes the lock. [provenance] links the routed
    error message into the failing message's causal flow; derive it with
    {!error_prov}. *)

val enqueue_internal :
  t ->
  Store.txn ->
  ?rule:string ->
  ?rule_error_queue:string ->
  ?trigger:Message.t option ->
  ?provenance:Message.provenance ->
  explicit:(string * Value.atomic) list ->
  queue:string ->
  payload:Tree.tree ->
  origin_queue:string ->
  unit ->
  unit
(** Enqueue + schedule + echo-timer registration. Assumes the lock.
    Without an explicit [provenance] the child's causal edge derives from
    [trigger]: inherit its flow id, parent = trigger rid, cause = [rule]. *)

val mint_flow : t -> origin:string -> string
(** Fresh node-unique flow id ("<node>-<origin>-<seq>"); deterministic,
    and collision-free across crash-restarts (the sequence is seeded past
    the store's rid high-water mark). Assumes the lock. *)

val root_prov :
  t -> ?flow:string -> origin:string -> unit -> Message.provenance
(** Provenance for a cascade root: adopt [flow] (e.g. an [X-Demaq-Flow]
    header value) or mint one. {!Message.no_provenance} when flow tracing
    is off. Assumes the lock. *)

val derived_prov : t -> cause:string -> Message.t -> Message.provenance
(** Child edge: inherit the causing message's flow, blame [cause]. *)

val error_prov : t -> ?rule:string -> Message.t -> Message.provenance option
(** Edge for a §3.6 error message caused by a failure while processing
    [m]; [None] when flow tracing is off. *)

val note_flow : t -> Message.t -> unit
(** Report a traced message's provenance edge to the flow store. Assumes
    the lock; called by the enqueue paths, exposed for recovery replay. *)

val register_echo_timer : t -> Store.txn -> ?rule:string -> Message.t -> unit
(** Assumes the lock. *)

val inject :
  t ->
  ?props:(string * Value.atomic) list ->
  ?flow:string ->
  ?origin:string ->
  queue:string ->
  Tree.tree ->
  (Message.t, Qm.error) result
(** Inject an external arrival in its own transaction (locks itself).
    The message becomes a cascade root: its flow id is [flow] when
    supplied (adopted from the client) or freshly minted; [origin]
    (default ["ingress"]) labels the root's cause. *)

val inject_many :
  t ->
  ?props:(string * Value.atomic) list ->
  ?flow:string ->
  ?origin:string ->
  queue:string ->
  Tree.tree list ->
  (Message.t, Qm.error) result list
(** Batch form of {!inject}: one lock acquisition for the whole batch,
    one transaction per document (a rejected document aborts only
    itself). Results are in input order. Each document is its own
    cascade root; without [flow] each mints its own flow id. *)

val admission_stats : t -> int * int * int
(** [(scans, decodes, decoded_bytes)]: messages whose admission resolved
    from the payload synopsis without materializing a tree, payloads
    decoded into trees, and the bytes those decodes read. *)

val run_gc : t -> int
(** Retention GC + cache purge (locks itself). *)

val run_gc_step : t -> budget:int -> int
(** Incremental slice of {!run_gc} for the background maintenance tick:
    at most [budget] deletability checks ({!Demaq_mq.Queue_manager.gc_step}),
    cursor-resumed, plus the cache purge for whatever was collected. *)

val message : t -> int -> Message.t option
(** Fetch a message and force its body parse, under the lock. *)

val process : t -> int -> bool
(** Process one scheduled message end to end; [false] means the rid was
    skipped (collected, or a rescheduled duplicate). Never raises for
    rule-level failures — those become error messages. *)

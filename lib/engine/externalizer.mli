(** The externalizer: gateway pump, timer-wheel retries, echo firings —
    every path by which an effect escapes the process.

    Maintains PR 2's discipline across worker domains: a group-commit
    {!Executor.harden} barrier precedes every transmission, and a rid is
    marked sent only once the transport confirms it (or the message is
    dead-lettered). Runs on the coordinator thread between drains; shared
    state is still touched under the executor's [state_mu], released
    around the actual network send so endpoint handlers may re-enter the
    engine. *)

module Defs = Demaq_mq.Defs
module Message = Demaq_mq.Message

val transmit :
  Executor.t -> ?attempt:int -> Message.t -> Defs.queue_def -> unit
(** One delivery attempt for a message of an outgoing gateway queue:
    interface check, send, reply injection, retry scheduling or
    dead-lettering per WS-ReliableMessaging declarations. *)

val pump_gateways : Executor.t -> int
(** Drain every outgoing gateway's outbox; returns the number of
    transmission attempts. *)

val fire_echo : Executor.t -> rid:int -> target:string -> unit
(** An echo-queue timeout fired: forward the stored message to its target
    queue and retire it (§2.1.3). *)

val advance_time : Executor.t -> int -> unit
(** Advance the virtual clock and run due timers (echo firings and
    transmission retries). *)

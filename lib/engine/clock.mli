(** The engine's virtual clock.

    Demaq models time-based behaviour (echo queues §2.1.3, time-based
    conditions §5) through this injectable tick counter, which keeps tests
    and benchmarks deterministic; a deployment can drive it from
    wall-clock time instead. The clock never goes backwards.

    The clock may be linked to a {!Demaq_obs.Time_source}: each tick
    gained also advances the source by {!ns_per_tick} nanoseconds, which
    is how a simulation makes span/histogram time move with engine time. *)

type t

val ns_per_tick : int
(** Nanoseconds a linked time source advances per clock tick (10{^6}: one
    tick is one simulated millisecond). *)

val create : ?time_source:Demaq_obs.Time_source.t -> ?start:int -> unit -> t
(** [time_source] defaults to {!Demaq_obs.Time_source.real}, which the
    clock never drives (real time advances itself); pass a virtual source
    to link it. *)

val now : t -> int

val time_source : t -> Demaq_obs.Time_source.t
(** The source this clock drives. *)

val advance : t -> int -> unit
(** Move forward by a number of ticks (negative amounts are ignored). *)

val set : t -> int -> unit
(** Jump forward to an absolute tick; ignored if it is in the past. *)

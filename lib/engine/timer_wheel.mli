(** Timers backing the echo queues (§2.1.3) and gateway retransmissions.

    A message placed into an echo queue reappears in its target queue once
    its timeout expires; a failed reliable transmission is retried after
    its backoff delay. Entries are (due tick, event) in a binary heap; ties
    fire in registration order. The engine re-registers pending echo timers
    from unprocessed echo-queue messages after a restart (retransmission
    state is rebuilt from the gateway outboxes instead). *)

type event =
  | Echo of { rid : int; target : string }
      (** re-enqueue echo message [rid] into [target] *)
  | Retransmit of { rid : int; attempt : int }
      (** retry transmitting gateway message [rid]; [attempt] is the
          1-based number of the attempt about to be made *)

type t

val create : clock:Clock.t -> unit -> t
(** The wheel reads the engine clock itself — real or virtual time is
    decided by whoever built the clock, not by each call site. *)

val schedule : t -> due:int -> rid:int -> target:string -> unit
(** Register an echo timeout. *)

val schedule_retransmit : t -> due:int -> rid:int -> attempt:int -> unit
(** Re-arm a failed reliable transmission. *)

val due_entries : t -> event list
(** Remove and return all events due at or before the clock's current
    tick, in firing order. *)

val next_due : t -> int option
(** The earliest pending deadline, if any. *)

val pending : t -> int

(* The externalizer: everything that lets effects escape the process —
   gateway transmissions, timer-driven retries, echo-queue firings.

   Two disciplines from the store layer survive intact across the move to
   worker domains:

   - Barrier before every transmission: no send may precede the
     group-commit barrier covering the transaction that created (or
     error-routed) the message, so a crash can never have externalized an
     action it is about to forget (PR 2's exactly-once argument).
   - Delivery is confirmed only by the transport: a rid enters the [sent]
     table when the attempt succeeds or the message is given up on —
     never before, so a failed transmission is not forfeited.

   The externalizer runs on the coordinator thread, between drains — the
   worker pool is quiescent while it pumps. Mutations of shared state
   still take [state_mu] (fine-grained, released around [Network.send]:
   an endpoint handler may re-enter the engine via [Executor.inject], as
   the reply path and [Server.expose] handlers do). *)

module E = Executor
module M = Demaq_obs.Metrics
module Value = Demaq_xquery.Value
module Tree = Demaq_xml.Tree
module Qm = Demaq_mq.Queue_manager
module Message = Demaq_mq.Message
module Defs = Demaq_mq.Defs
module Compiler = Demaq_lang.Compiler
module Network = Demaq_net.Network
module Wsdl = Demaq_net.Wsdl

let log = Logs.Src.create "demaq.externalizer" ~doc:"Demaq externalizer"

module Log = (val Logs.src_log log : Logs.LOG)

(* The WSDL port declared on the message's gateway queue, if its interface
   file has been registered. *)
let gateway_port (t : E.t) (qdef : Defs.queue_def) =
  match qdef.Defs.interface, qdef.Defs.port with
  | Some file, Some port_name -> (
    match Hashtbl.find_opt t.E.interfaces file with
    | Some wsdl -> Wsdl.find_port wsdl port_name
    | None -> None)
  | _ -> None

(* The errorqueue declared on the rule that created a message (used to
   route transport-time failures back to their originator, Fig. 10). *)
let creating_rule_route (t : E.t) (m : Message.t) =
  let creating_rule =
    Option.map Value.string_of_atomic (Message.property m Defs.Sysprop.rule)
  in
  let rule_error_queue =
    match creating_rule with
    | None -> None
    | Some rname ->
      List.find_map
        (fun plan ->
          List.find_map
            (fun (r : Compiler.compiled_rule) ->
              if r.cr_name = rname then r.cr_error_queue else None)
            plan.Compiler.rules)
        (Compiler.plans t.E.compiled)
  in
  (creating_rule, rule_error_queue)

let interface_check t (m : Message.t) (qdef : Defs.queue_def) =
  match gateway_port t qdef with
  | None -> Ok ()
  | Some port ->
    let root =
      match Tree.element_name (Message.body m) with
      | Some n -> Demaq_xml.Name.local n
      | None -> ""
    in
    if Wsdl.accepts_input port root then Ok ()
    else
      Error
        (Printf.sprintf
           "message <%s> is not an input of port %s (expected one of: %s)" root
           port.Wsdl.port_name (Wsdl.expected_inputs port))

(* Bounded exponential backoff before retrying the transmission whose
   [attempt]th try just failed. *)
let backoff_delay (t : E.t) attempt =
  t.E.cfg.E.retry_backoff * (1 lsl min (attempt - 1) 16)

(* A failure is worth retrying when the condition is plausibly transient: a
   partitioned endpoint can reconnect and a timed-out wire can clear, but
   an unresolvable name stays unresolvable. *)
let retryable_failure = function
  | Network.Disconnected _ | Network.Timeout _ -> true
  | Network.Name_resolution _ -> false

let transmit (t : E.t) ?(attempt = 1) (m : Message.t) (qdef : Defs.queue_def) =
  M.incr t.E.met.E.m_transmissions;
  if attempt > 1 then M.incr t.E.met.E.m_transmit_retries;
  let binding =
    match Hashtbl.find_opt t.E.bindings m.Message.queue with
    | Some b -> b
    | None -> { E.endpoint = m.Message.queue; replies_to = None }
  in
  let endpoint =
    match Message.property m "recipient" with
    | Some a -> Value.string_of_atomic a
    | None -> binding.E.endpoint
  in
  let reliable = List.mem_assoc "WS-ReliableMessaging" qdef.Defs.extensions in
  let dead_letter ~kind ~description =
    E.locked t (fun () ->
        Hashtbl.replace t.E.sent m.Message.rid ();
        let creating_rule, rule_error_queue = creating_rule_route t m in
        E.in_txn t (fun txn ->
            E.raise_error t txn ~kind ~description ?rule:creating_rule
              ?rule_error_queue
              ?provenance:(E.error_prov t ?rule:creating_rule m)
              ~source_queue:m.Message.queue
              ~initial_message:(Message.body m) ()))
  in
  match
    match interface_check t m qdef with
    | Error reason -> `Interface_error reason
    | Ok () -> (
      (* NOT under [state_mu]: the endpoint handler may re-enter the
         engine (an exposed incoming gateway injects right here) *)
      match
        Network.send t.E.net ~reliable ~from_:t.E.cfg.E.node_name ~to_:endpoint
          (Message.body m)
      with
      | result -> `Net result
      | exception e -> `Handler_error (E.exn_description e))
  with
  | `Interface_error description ->
    (* permanent: retrying cannot fix a schema mismatch *)
    dead_letter ~kind:Errors.Interface_violation ~description
  | `Handler_error description ->
    (* the endpoint handler itself blew up; treat as undeliverable rather
       than crash the pump loop *)
    M.incr t.E.met.E.m_dead_letters;
    dead_letter ~kind:Errors.System_error ~description
  | `Net result ->
  match result with
  | Network.Sent replies ->
    E.locked t (fun () -> Hashtbl.replace t.E.sent m.Message.rid ());
    (match binding.E.replies_to with
     | Some incoming ->
       (* a reply continues the causal flow of the transmission that
          solicited it, rather than starting a fresh cascade *)
       let flow =
         match m.Message.prov.Message.p_flow with
         | "" -> None
         | f -> Some f
       in
       List.iter
         (fun reply ->
           match
             E.inject t
               ~props:[ (Defs.Sysprop.sender, Value.String endpoint) ]
               ?flow ~origin:"reply" ~queue:incoming reply
           with
           | Ok _ -> ()
           | Error e ->
             E.with_txn t (fun txn ->
                 E.raise_error t txn ~kind:Errors.Schema_violation
                   ~description:(Qm.error_to_string e)
                   ?provenance:(E.error_prov t m) ~source_queue:incoming
                   ~initial_message:reply ()))
         replies
     | None -> ())
  | Network.Lost ->
    (* best-effort send; nobody to tell *)
    E.locked t (fun () -> Hashtbl.replace t.E.sent m.Message.rid ())
  | Network.Failed failure ->
    if reliable && retryable_failure failure && attempt <= t.E.cfg.E.transmit_retries
    then begin
      (* re-arm through the timer wheel; the message stays unsent and
         unforfeited until the retry budget is spent *)
      let due = Clock.now t.E.clk + backoff_delay t attempt in
      Log.debug (fun f ->
          f "transmission of #%d failed (%s); retry %d/%d at t=%d"
            m.Message.rid
            (Network.failure_to_string failure)
            attempt t.E.cfg.E.transmit_retries due);
      E.locked t (fun () ->
          Timer_wheel.schedule_retransmit t.E.timers ~due ~rid:m.Message.rid
            ~attempt:(attempt + 1))
    end
    else begin
      if reliable then M.incr t.E.met.E.m_dead_letters;
      dead_letter
        ~kind:(Errors.of_network_failure failure)
        ~description:(Network.failure_to_string failure)
    end

let pump_gateways (t : E.t) =
  let count = ref 0 in
  List.iter
    (fun (qdef : Defs.queue_def) ->
      if qdef.Defs.kind = Defs.Outgoing_gateway then begin
        let continue_ = ref true in
        while !continue_ do
          match
            E.locked t (fun () ->
                let outbox = E.outbox_for t qdef.Defs.qname in
                if Queue.is_empty outbox then None
                else begin
                  let rid = Queue.pop outbox in
                  if Hashtbl.mem t.E.sent rid then Some None
                  else
                    match Qm.get t.E.qm rid with
                    | Some m ->
                      ignore (Message.body m);
                      Some (Some m)
                    | None -> Some None
                      (* collected before transmission: nothing to do *)
                end)
          with
          | None -> continue_ := false
          | Some None -> ()
          | Some (Some m) ->
            incr count;
            (* no transmission may precede the barrier covering the
               transaction that created (or error-routed) the message; a
               no-op when nothing is pending *)
            E.harden t;
            transmit t m qdef
        done
      end)
    (Qm.queue_defs t.E.qm);
  !count

let fire_echo (t : E.t) ~rid ~target =
  match E.message t rid with
  | None -> ()
  | Some echo_msg -> (
    M.incr t.E.met.E.m_timers_fired;
    try
      E.with_txn t (fun txn ->
          E.enqueue_internal t txn ~trigger:(Some echo_msg)
            ~provenance:(E.derived_prov t ~cause:"timer" echo_msg)
            ~explicit:[] ~queue:target
            ~payload:(Message.body echo_msg)
            ~origin_queue:echo_msg.Message.queue ();
          Qm.mark_processed t.E.qm txn echo_msg)
    with e ->
      (* aborted and unlocked by [in_txn]; surface the failure as an error
         message and retire the echo message so it cannot loop *)
      Log.warn (fun f ->
          f "echo timer for #%d aborted: %s" rid (E.exn_description e));
      (try
         E.with_txn t (fun txn ->
             E.raise_error t txn ~kind:Errors.System_error
               ~description:(E.exn_description e)
               ?provenance:(E.error_prov t echo_msg)
               ~source_queue:echo_msg.Message.queue
               ~initial_message:(Message.body echo_msg) ();
             Qm.mark_processed t.E.qm txn echo_msg)
       with e2 ->
         Log.err (fun f ->
             f "error routing for echo #%d failed: %s" rid
               (E.exn_description e2))))

let advance_time (t : E.t) ticks =
  Clock.advance t.E.clk ticks;
  let due =
    E.locked t (fun () ->
        Timer_wheel.due_entries t.E.timers)
  in
  List.iter
    (function
      | Timer_wheel.Echo { rid; target } -> fire_echo t ~rid ~target
      | Timer_wheel.Retransmit { rid; attempt } -> (
        match
          E.locked t (fun () ->
              match Qm.get t.E.qm rid with
              | None -> None  (* collected while awaiting retry *)
              | Some m ->
                ignore (Message.body m);
                Option.map
                  (fun qdef -> (m, qdef))
                  (Qm.find_queue t.E.qm m.Message.queue))
        with
        | None -> ()
        | Some (m, qdef) ->
          (* a timer-armed retry externalizes like any transmission *)
          E.harden t;
          transmit t ~attempt m qdef))
    due

(** Ingress admission gate: bounded backpressure at the door.

    Watches dispatch depth and unsynced WAL bytes; saturation is the
    worse of the two ratios against their configured bounds. In the soft
    band ([1 <= saturation < hard]) only queues at or below the priority
    floor are shed — high-priority queues degrade last; in the hard band
    everything is shed until the node drains. A shed message was never
    admitted, so it is never half-applied. Upstream answers 429 +
    Retry-After (transient), distinct from the permanent 422 rejection. *)

type config = {
  max_pending : int;  (** dispatch-heap depth where soft shedding starts *)
  max_wal_bytes : int;  (** unsynced WAL bytes where soft shedding starts *)
  hard : float;  (** saturation multiple where even priority won't help *)
  priority_floor : int;
      (** soft band sheds queues with priority <= this *)
  retry_after : int;  (** seconds hinted at the base of the soft band *)
}

val default_config : config

type decision = Admit | Shed of { retry_after : int; hard : bool }
type t

val create : ?cfg:config -> unit -> t

val decide :
  t -> pending:int -> unsynced_bytes:int -> priority:int -> decision
(** One admission decision; updates the shed/admit counters and the
    saturation gauge. Safe from any domain. *)

val admitted : t -> int
val shed : t -> int
val shed_hard : t -> int

val instrument : t -> Demaq_obs.Metrics.registry -> unit
(** Register [demaq_gate_*] counters and the saturation gauge. *)

(** The queue-partitioned dispatcher.

    Sits between the priority scheduler (§4.4.2) and the worker pool:
    hands out ready messages such that two messages with overlapping
    conflict resources (queue name, slice memberships — per
    [lock_granularity]) never run concurrently, while preserving
    per-queue arrival order and queue priority. Entries blocked on an
    in-flight resource are parked and re-enter the heap with their
    original sequence number when the resource frees.

    NOT internally synchronized: callers (the worker pool's monitor)
    must serialize all access. *)

type t

val create : unit -> t

val schedule : t -> priority:int -> resources:string list -> int -> unit
(** Add a message rid with its conflict resources. A rid already queued
    or running is ignored (rescheduled duplicate). *)

type slot =
  | Ready of int  (** rid to run; its resources are now claimed *)
  | Busy  (** work exists but all of it conflicts with running messages *)
  | Empty  (** nothing queued or parked *)

val next : ?pick:(int -> int) -> t -> slot
(** Hand out the next message. Without [pick], strict scheduler order
    (priority desc, arrival seq asc). With [pick] — the simulation's
    seeded chooser — the dispatcher collects every entry that could
    legally run next (runnable entries of the top priority level, earliest
    per conflict resource) and runs candidate [pick n mod n]: priority and
    per-queue FIFO still hold by construction, but cross-queue
    interleaving is explored reproducibly. [pick] is invoked exactly once
    per [Ready] result. *)

val complete : t -> int -> unit
(** The rid finished (or was skipped): release its resources and revive
    entries parked on them. *)

val pending : t -> int
(** Queued + parked (excludes running). *)

val queued : t -> int
(** Entries in the priority heap, runnable or not. *)

val parked : t -> int
(** Entries blocked on an in-flight conflict resource. *)

val pending_rids : t -> int list

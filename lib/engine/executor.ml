(* The executor: Demaq's single-message transaction (§3.1), extracted from
   the engine monolith so it can run on a pool of worker domains.

   One message's processing is the paper's iterative cycle: evaluate every
   pertinent rule against a snapshot, accumulate the pending-action list,
   apply it atomically, with failures routed as error messages (§3.6). The
   executor owns the shared engine context [t] and makes that cycle safe
   to run concurrently from several domains:

   - [state_mu] guards all shared engine state (queue manager, store,
     caches, outboxes, timers). Functions suffixed [_unlocked] — and the
     whole error-routing family [raise_error]/[enqueue_internal]/
     [register_echo_timer] plus [in_txn] — assume it is HELD; public
     entry points take it.
   - [process] holds the lock only around the setup (fetch, lock
     acquisition, rule-plan lookup) and apply/commit phases. The
     CPU-heavy rule evaluation runs UNLOCKED: message trees are immutable
     once parsed, and the qs: host callbacks re-acquire [state_mu]
     per call. Same-queue and same-slice conflicts cannot run
     concurrently (the dispatcher partitions on exactly the resources
     [resources_for] reports), so a rule's view of its own queue and
     slices is serializable; reads of *other* queues see read-committed
     state, which single-worker mode — the deterministic reference —
     never exercises differently from the seed engine.
   - Statistics live in a sharded [Demaq_obs.Metrics] registry: workers
     mutate their own shard without synchronization, reads aggregate.
     Lifecycle spans go to a bounded [Demaq_obs.Trace] ring with its own
     mutex. Lock order: state_mu -> (span-ring mutex | wal mutex | pool
     monitor); never the reverse. *)

module Tree = Demaq_xml.Tree
module Value = Demaq_xquery.Value
module Ast = Demaq_xquery.Ast
module Eval = Demaq_xquery.Eval
module Context = Demaq_xquery.Context
module Update = Demaq_xquery.Update
module Store = Demaq_store.Message_store
module Lock = Demaq_store.Lock_manager
module Qm = Demaq_mq.Queue_manager
module Message = Demaq_mq.Message
module Defs = Demaq_mq.Defs
module Plan_ir = Demaq_xquery.Plan
module Compiler = Demaq_lang.Compiler
module Prefilter = Demaq_lang.Prefilter
module Network = Demaq_net.Network
module Wsdl = Demaq_net.Wsdl
module Metrics = Demaq_obs.Metrics
module Trace = Demaq_obs.Trace
module Flow = Demaq_obs.Flow

let log = Logs.Src.create "demaq.executor" ~doc:"Demaq executor"

module Log = (val Logs.src_log log : Logs.LOG)

type config = {
  merged_plans : bool;
  footprint_dispatch : bool;
      (* partition dispatch on the compiled rules' static conflict
         footprints instead of whole queues: same-queue messages whose
         admitted rules touch disjoint resources run concurrently *)
  use_slice_index : bool;
  lock_granularity : [ `Queue | `Slice ];
  use_prefilter : bool;
  trace_capacity : int;
  flow_tracing : bool;
      (* mint/propagate/persist the causal provenance triple (flow id,
         parent rid, causing rule) and feed the bounded flow store; off
         reproduces the pre-flow extra blobs byte for byte *)
  gc_every : int;
  system_error_queue : string option;
  optimize : bool;
  node_name : string;
  transmit_retries : int;
  retry_backoff : int;
  batch_size : int;
  group_commit : bool;
  workers : int;
  metrics : bool;
      (* enables the wall-clock/histogram path (phase latencies, fsync
         timing). Counters are always live — they cost two plain stores
         per event and [stats] depends on them. *)
}

type gateway_binding = { endpoint : string; replies_to : string option }

(* The executor's registered instruments. Counters mirror the seed
   engine's statistics one to one; histograms time the §3.1 phases. *)
type metrics = {
  m_processed : Metrics.counter;
  m_rule_evaluations : Metrics.counter;
  m_messages_created : Metrics.counter;
  m_errors_raised : Metrics.counter;
  m_transmissions : Metrics.counter;
  m_timers_fired : Metrics.counter;
  m_gc_collected : Metrics.counter;
  m_prefilter_skips : Metrics.counter;
  m_txn_aborts : Metrics.counter;
  m_transmit_retries : Metrics.counter;
  m_dead_letters : Metrics.counter;
  m_admission_scans : Metrics.counter;
      (* messages whose rule admission resolved from the payload synopsis
         without ever materializing a body tree *)
  m_trees_materialized : Metrics.counter;  (* payload decodes into trees *)
  m_decoded_bytes : Metrics.counter;  (* payload bytes those decodes read *)
  m_lock_seconds : Metrics.histogram;  (* setup: fetch + locks + plans *)
  m_decode_seconds : Metrics.histogram;  (* lazy body decode inside setup *)
  m_eval_seconds : Metrics.histogram;  (* unlocked snapshot evaluation *)
  m_apply_seconds : Metrics.histogram;  (* locked apply + commit *)
  m_barrier_seconds : Metrics.histogram;  (* group-commit barriers *)
}

type trace_entry = {
  tr_tick : int;
  tr_rule : string;
  tr_trigger : int;  (* rid of the triggering message *)
  tr_queue : string;
  tr_updates : int;  (* pending updates the evaluation produced *)
  tr_skipped : bool;  (* suppressed by the condition pre-filter *)
}

type t = {
  cfg : config;
  qm : Qm.t;
  st : Store.t;
  net : Network.t;
  mutable compiled : Compiler.t;
  timers : Timer_wheel.t;
  clk : Clock.t;
  state_mu : Mutex.t;  (* guards everything below except the atomics/trace *)
  node_cache : (int, Tree.node) Hashtbl.t;  (* rid -> body node *)
  name_cache : (int, Prefilter.Names.t) Hashtbl.t;
      (* rid -> element-name synopsis for condition pre-filtering *)
  collection_cache : (string, Value.t) Hashtbl.t;
  bindings : (string, gateway_binding) Hashtbl.t;  (* outgoing queue -> route *)
  interfaces : (string, Wsdl.t) Hashtbl.t;  (* WSDL file name -> parsed model *)
  sent : (int, unit) Hashtbl.t;  (* rids already handed to the transport *)
  outbox : (string, int Queue.t) Hashtbl.t;
      (* untransmitted rids per outgoing gateway queue, so the pump never
         rescans whole queues *)
  mutable schedule : priority:int -> resources:string list -> int -> unit;
      (* set by the composition root to the worker pool's scheduler *)
  mutable batch_target : int;
      (* group-commit batch the coordinator drains per barrier; fixed at
         cfg.batch_size unless the adaptive controller is steering it *)
  reg : Metrics.registry;  (* shard 0 = coordinator, i+1 = worker i *)
  met : metrics;
  spans : Trace.t;  (* per-message lifecycle ring (capacity from cfg) *)
  flows : Flow.t;  (* bounded causal flow store (cascade trees) *)
  mutable flow_seq : int;
      (* next flow-id sequence number; seeded past the store's rid
         high-water mark so ids minted after a crash-restart can never
         collide with flows persisted before it (every mint is followed
         by at least one rid allocation, so used seqs stay <= max rid) *)
  pending_ns : (int, int) Hashtbl.t;
      (* rid -> clock at schedule time, for enqueue->dispatch queue-wait
         attribution; populated only while timing or tracing is on *)
  wait_hists : (string, Metrics.histogram) Hashtbl.t;
      (* per-queue demaq_queue_wait_seconds, registered lazily *)
  mutable fault : Fault.t option;  (* armed fault-injection points *)
}

let make_metrics reg =
  {
    m_processed = Metrics.counter reg "demaq_processed_total" ~help:"Messages processed";
    m_rule_evaluations =
      Metrics.counter reg "demaq_rule_evaluations_total" ~help:"Rule bodies evaluated";
    m_messages_created =
      Metrics.counter reg "demaq_messages_created_total" ~help:"Messages enqueued";
    m_errors_raised =
      Metrics.counter reg "demaq_errors_raised_total" ~help:"Errors routed (§3.6)";
    m_transmissions =
      Metrics.counter reg "demaq_transmissions_total"
        ~help:"Gateway transmission attempts";
    m_timers_fired =
      Metrics.counter reg "demaq_timers_fired_total" ~help:"Echo timers fired";
    m_gc_collected =
      Metrics.counter reg "demaq_gc_collected_total"
        ~help:"Messages reclaimed by the retention GC";
    m_prefilter_skips =
      Metrics.counter reg "demaq_prefilter_skips_total"
        ~help:"Rule evaluations suppressed by the condition pre-filter";
    m_txn_aborts =
      Metrics.counter reg "demaq_txn_aborts_total" ~help:"Transactions aborted";
    m_transmit_retries =
      Metrics.counter reg "demaq_transmit_retries_total"
        ~help:"Transmission retries armed through the timer wheel";
    m_dead_letters =
      Metrics.counter reg "demaq_dead_letters_total"
        ~help:"Reliable transmissions given up on";
    m_admission_scans =
      Metrics.counter reg "demaq_admission_scans_total"
        ~help:"Messages admitted/skipped from the payload synopsis without materializing a tree";
    m_trees_materialized =
      Metrics.counter reg "demaq_trees_materialized_total"
        ~help:"Stored payloads decoded into body trees";
    m_decoded_bytes =
      Metrics.counter reg "demaq_payload_decoded_bytes_total"
        ~help:"Stored payload bytes read by body decodes";
    m_lock_seconds =
      Metrics.histogram reg "demaq_phase_lock_seconds"
        ~help:"Transaction setup: fetch, lock acquisition, plan lookup (sampled 1:8 unless tracing)";
    m_decode_seconds =
      Metrics.histogram reg "demaq_phase_decode_seconds"
        ~help:"Lazy payload decode during setup (sampled 1:8 unless tracing)";
    m_eval_seconds =
      Metrics.histogram reg "demaq_phase_eval_seconds"
        ~help:"Unlocked snapshot rule evaluation (sampled 1:8 unless tracing)";
    m_apply_seconds =
      Metrics.histogram reg "demaq_phase_apply_seconds"
        ~help:"Locked update apply and commit (sampled 1:8 unless tracing)";
    m_barrier_seconds =
      Metrics.histogram reg "demaq_barrier_seconds"
        ~help:"Group-commit durability barriers";
  }

let create ~cfg ~qm ~st ~net ~compiled ~clk () =
  let reg =
    Metrics.create ~timing:cfg.metrics
      ~time_source:(Clock.time_source clk)
      ~shards:(1 + max 1 (min cfg.workers 64))
      ()
  in
  {
    cfg;
    qm;
    st;
    net;
    compiled;
    timers = Timer_wheel.create ~clock:clk ();
    clk;
    state_mu = Mutex.create ();
    node_cache = Hashtbl.create 1024;
    name_cache = Hashtbl.create 1024;
    collection_cache = Hashtbl.create 8;
    bindings = Hashtbl.create 8;
    interfaces = Hashtbl.create 4;
    sent = Hashtbl.create 1024;
    outbox = Hashtbl.create 8;
    schedule = (fun ~priority:_ ~resources:_ _ -> ());
    batch_target = max 1 cfg.batch_size;
    reg;
    met = make_metrics reg;
    spans = Trace.create ~capacity:cfg.trace_capacity;
    flows = Flow.create ();
    flow_seq =
      1
      + List.fold_left
          (fun acc (sm : Store.message) -> max acc sm.Store.rid)
          0 (Store.all_messages st);
    pending_ns = Hashtbl.create 256;
    wait_hists = Hashtbl.create 8;
    fault = None;
  }

let locked t f = Mutex.protect t.state_mu f
let set_fault t fault = t.fault <- fault

(* Group commit (§4.1; Gray's "Queues Are Databases"): under
   [Wal.Sync_batch] commits append their log record but defer the fsync;
   [harden] issues the barrier that makes everything logged so far durable.
   The engine must call it before any effect escapes the process — gateway
   transmissions, timer-armed retries — so that no externalized action ever
   references a transaction a crash could still lose. The barrier is
   serialized inside the WAL, so one worker's harden covers every record
   any worker appended before it. *)
let harden t =
  if t.cfg.group_commit then
    if Metrics.timing_on t.reg then begin
      let t0 = Metrics.now t.reg in
      ignore (Store.barrier t.st);
      Metrics.observe t.met.m_barrier_seconds (Metrics.now t.reg - t0)
    end
    else ignore (Store.barrier t.st)

(* Crash safety (§3.1, §3.6): every state change runs inside [in_txn], so
   that an exception anywhere — evaluator bugs, injected faults, broken
   endpoint handlers — aborts the transaction and releases its locks via
   [Store.abort] instead of leaking them. Assumes [state_mu] is held;
   [with_txn] is the self-locking variant. *)
let in_txn t f =
  let txn = Store.begin_txn t.st in
  match f txn with
  | v ->
    Store.commit txn;
    v
  | exception e ->
    Metrics.incr t.met.m_txn_aborts;
    Store.abort txn;
    (* earlier transactions of the current batch are committed but possibly
       unsynced; an abort must not widen their exposure window *)
    harden t;
    raise e

let with_txn t f = locked t (fun () -> in_txn t f)

let exn_description = function
  | Fault.Injected msg -> msg
  | Context.Eval_error msg -> msg
  | e -> Printexc.to_string e

let set_collection t name docs =
  locked t @@ fun () ->
  Qm.set_collection t.qm name docs;
  Hashtbl.remove t.collection_cache name

let outbox_for t queue =
  match Hashtbl.find_opt t.outbox queue with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.outbox queue q;
    q

let note_outgoing t (m : Message.t) =
  match Qm.find_queue t.qm m.Message.queue with
  | Some { Defs.kind = Defs.Outgoing_gateway; _ } ->
    Queue.push m.Message.rid (outbox_for t m.Message.queue)
  | _ -> ()

(* ---- causal provenance (flow tracing); assumes [state_mu] held ---- *)

let mint_flow t ~origin =
  let seq = t.flow_seq in
  t.flow_seq <- seq + 1;
  Printf.sprintf "%s-%s-%d" t.cfg.node_name origin seq

(* Root provenance for a message entering from outside the cascade:
   adopt the caller-supplied flow id (X-Demaq-Flow) or mint one. *)
let root_prov t ?flow ~origin () =
  if not t.cfg.flow_tracing then Message.no_provenance
  else
    let f =
      match flow with Some f when f <> "" -> f | _ -> mint_flow t ~origin
    in
    { Message.p_flow = f; p_parent = -1; p_cause = origin }

(* Child provenance: inherit the causing message's flow, point the edge at
   it, blame [cause] (the rule, or an origin kind like "timer"/"error"). *)
let derived_prov t ~cause (m : Message.t) =
  if not t.cfg.flow_tracing then Message.no_provenance
  else
    {
      Message.p_flow = m.Message.prov.Message.p_flow;
      p_parent = m.Message.rid;
      p_cause = cause;
    }

(* §3.6: an error message is caused by the message whose processing
   failed; the edge keeps the failing rule's name when one is blamed. *)
let error_prov t ?rule (m : Message.t) =
  if not t.cfg.flow_tracing then None
  else Some (derived_prov t ~cause:(Option.value ~default:"error" rule) m)

let note_flow t (m : Message.t) =
  if t.cfg.flow_tracing && m.Message.prov.Message.p_flow <> "" then
    Flow.observe t.flows ~rid:m.Message.rid ~queue:m.Message.queue
      ~flow:m.Message.prov.Message.p_flow
      ~parent:m.Message.prov.Message.p_parent
      ~cause:m.Message.prov.Message.p_cause ~tick:m.Message.enqueued_at

(* Per-queue wait histograms are registered on first use; the registry
   has bounded histogram capacity, so past [max_wait_hists] distinct
   queues the remainder share one "other" series (never silently: the
   cap only coarsens attribution, every observation still lands). *)
let max_wait_hists = 24
let wait_overflow_key = "\x00other"

let wait_hist_for t queue =
  match Hashtbl.find_opt t.wait_hists queue with
  | Some h -> h
  | None ->
    let key, name =
      if Hashtbl.length t.wait_hists < max_wait_hists then
        (queue, Printf.sprintf "demaq_queue_wait_seconds{queue=\"%s\"}" queue)
      else (wait_overflow_key, "demaq_queue_wait_seconds{queue=\"other\"}")
    in
    (match Hashtbl.find_opt t.wait_hists key with
     | Some h -> h
     | None ->
       let h =
         Metrics.histogram t.reg name
           ~help:"Enqueue-to-dispatch queueing delay, per queue"
       in
       Hashtbl.replace t.wait_hists key h;
       h)

let bind_gateway t ~queue ?endpoint ?replies_to () =
  let endpoint = Option.value ~default:queue endpoint in
  Hashtbl.replace t.bindings queue { endpoint; replies_to }

let register_interface t ~file text =
  match Wsdl.parse text with
  | Ok wsdl ->
    Hashtbl.replace t.interfaces file wsdl;
    Ok ()
  | Error _ as e -> e

(* ---- node handles for message bodies ---- *)

(* Forcing a body that is still raw bytes is the decode the streaming
   admission path exists to avoid; route every force through here so the
   avoided/performed ratio is observable. Locally enqueued messages are
   born with a forced body and never count. *)
let force_body_unlocked t (m : Message.t) =
  if not (Message.body_forced m) then begin
    Metrics.incr t.met.m_trees_materialized;
    Metrics.add t.met.m_decoded_bytes (String.length (Message.raw m))
  end;
  Message.body m

(* Rules see messages as document nodes (§3.4: qs:message() "returns the
   document node of the currently processed message"); one document per
   message, cached, so node identity and document order are stable across
   qs:queue()/qs:slice() calls. *)
let message_node_unlocked t (m : Message.t) =
  match Hashtbl.find_opt t.node_cache m.Message.rid with
  | Some n -> n
  | None ->
    let n = Eval.doc_node_of_tree (force_body_unlocked t m) in
    Hashtbl.replace t.node_cache m.Message.rid n;
    n

let message_node t m = locked t (fun () -> message_node_unlocked t m)

let collection_value_unlocked t name =
  match Hashtbl.find_opt t.collection_cache name with
  | Some v -> v
  | None ->
    let v =
      List.map
        (fun tree -> Value.Node (Eval.doc_node_of_tree tree))
        (Qm.collection t.qm name)
    in
    Hashtbl.replace t.collection_cache name v;
    v

(* ---- evaluation host (the qs: library, §3.4/§3.5) ----

   The host runs during the UNLOCKED evaluation phase, so every callback
   that touches shared state takes [state_mu] itself. *)

let host_for t (m : Message.t) ~slice_ctx : Context.host =
  let queue_nodes name =
    locked t (fun () ->
        List.map
          (fun msg -> Value.Node (message_node_unlocked t msg))
          (Qm.queue_messages t.qm name))
  in
  {
    Context.h_message = (fun () -> [ Value.Node (message_node t m) ]);
    h_queue =
      (fun name ->
        queue_nodes (Option.value ~default:m.Message.queue name));
    h_property =
      (fun name ->
        match Message.property m name with
        | Some a -> [ Value.Atom a ]
        | None -> []);
    h_slice =
      (fun () ->
        match slice_ctx with
        | None -> Context.eval_error "qs:slice() outside a slicing rule"
        | Some (slicing, key) ->
          locked t (fun () ->
              List.map
                (fun msg -> Value.Node (message_node_unlocked t msg))
                (Qm.slice_messages t.qm ~use_index:t.cfg.use_slice_index
                   ~slicing ~key ())));
    h_slicekey =
      (fun () ->
        match slice_ctx with
        | None -> Context.eval_error "qs:slicekey() outside a slicing rule"
        | Some (slicing, _) -> (
          match locked t (fun () -> Qm.find_slicing t.qm slicing) with
          | None -> []
          | Some sdef -> (
            match Message.property m sdef.Defs.slice_property with
            | Some a -> [ Value.Atom a ]
            | None -> [])));
    h_collection = (fun name -> locked t (fun () -> collection_value_unlocked t name));
    h_now = (fun () -> Clock.now t.clk);
  }

(* ---- scheduling hook ---- *)

let queue_priority t name =
  match Qm.find_queue t.qm name with Some q -> q.Defs.priority | None -> 0

(* Footprint-driven conflict resources: the message claims only the
   resources of the rules it can actually trigger (the per-rule conflict
   templates the compiler cached on the plan, admission-filtered against
   the payload synopsis when one is available without decoding), so two
   same-queue messages with disjoint footprints run concurrently.
   Per-queue arrival ORDER is then preserved only between messages whose
   resource sets overlap — the relaxation this mode trades for dispatch
   width. Membership slice resources are always claimed (slice rules read
   their whole slice), and a ⊤ footprint (dynamically computed queue name)
   expands to every declared queue. Reads the synopsis cache but never
   populates it and never forces a body decode: a text payload without a
   cached synopsis falls back to the plan's whole conflict union. *)
let footprint_resources t (m : Message.t) =
  let resources = ref [] in
  let top = ref false in
  let add rs =
    List.iter
      (fun r -> if not (List.mem r !resources) then resources := r :: !resources)
      rs
  in
  let add_conflict = function
    | Compiler.Conflict_top -> top := true
    | Compiler.Conflict_resources { res; own_queue } ->
      add res;
      if own_queue then add [ "q:" ^ m.Message.queue ]
  in
  (match Compiler.plan_for t.compiled m.Message.queue with
   | None -> ()
   | Some plan -> (
     let names =
       if not t.cfg.use_prefilter then None
       else
         match Hashtbl.find_opt t.name_cache m.Message.rid with
         | Some names -> Some names
         | None ->
           if Message.body_forced m then
             Some (Prefilter.element_names (Message.body m))
           else Prefilter.payload_names (Message.raw m)
     in
     match names with
     | None -> add_conflict plan.Compiler.conflict_union
     | Some names ->
       Array.iter
         (fun (requirements, conflict) ->
           if Prefilter.may_match ~requirements ~names then add_conflict conflict)
         plan.Compiler.conflicts));
  List.iter
    (fun (mem : Message.membership) ->
      add [ Printf.sprintf "s:%s/%s" mem.Message.m_slicing mem.Message.m_key ];
      match Compiler.plan_for t.compiled mem.Message.m_slicing with
      | None -> ()
      | Some plan -> add_conflict plan.Compiler.conflict_union)
    m.Message.memberships;
  if !top then add (Compiler.all_queue_resources t.compiled);
  List.rev !resources

(* The conflict resources the dispatcher partitions on. Default: always
   the queue (per-queue arrival order must survive parallelism), plus the
   slice memberships under slice-granularity locking — exactly the
   resources the lock manager would serialize on (§4.3). The per-queue
   resource string is the one the compiler interned on the plan, so
   dispatch never rebuilds it per message. Under [footprint_dispatch] the
   partition narrows to the admitted rules' static footprints. *)
let resources_for t (m : Message.t) =
  if t.cfg.footprint_dispatch then footprint_resources t m
  else
    let queue_res =
      match Compiler.plan_for t.compiled m.Message.queue with
      | Some plan -> plan.Compiler.queue_resource
      | None -> "q:" ^ m.Message.queue
    in
    match t.cfg.lock_granularity with
    | `Queue -> [ queue_res ]
    | `Slice ->
      queue_res
      :: List.map
           (fun (mem : Message.membership) ->
             Printf.sprintf "s:%s/%s" mem.Message.m_slicing mem.Message.m_key)
           m.Message.memberships

let schedule_message t (m : Message.t) =
  (* queue-wait attribution starts at schedule time; only paid for when
     someone will consume the timings *)
  if Metrics.timing_on t.reg || Trace.enabled t.spans then
    Hashtbl.replace t.pending_ns m.Message.rid (Metrics.now t.reg);
  t.schedule
    ~priority:(queue_priority t m.Message.queue)
    ~resources:(resources_for t m) m.Message.rid

(* ---- trace ----

   The rule-activation view, flattened out of the lifecycle spans: every
   span carries its per-rule activations (fired and pre-filtered), so the
   historical [trace_entry] API survives as a projection. Newest first,
   capped at [trace_capacity] entries like the ring it replaced. *)

let trace t =
  let entries =
    List.concat_map
      (fun (s : Trace.span) ->
        (* activations are stored in evaluation order; newest-first means
           reversing them within the span *)
        List.rev_map
          (fun (a : Trace.activation) ->
            {
              tr_tick = s.Trace.sp_tick;
              tr_rule = a.Trace.a_rule;
              tr_trigger = s.Trace.sp_rid;
              tr_queue = s.Trace.sp_queue;
              tr_updates = a.Trace.a_updates;
              tr_skipped = a.Trace.a_skipped;
            })
          s.Trace.sp_activations)
      (Trace.spans t.spans)
  in
  List.filteri (fun i _ -> i < t.cfg.trace_capacity) entries

let pp_trace_entry fmt e =
  Format.fprintf fmt "t=%d %s(%s#%d) -> %s" e.tr_tick e.tr_rule e.tr_queue
    e.tr_trigger
    (if e.tr_skipped then "prefiltered" else Printf.sprintf "%d updates" e.tr_updates)

(* ---- error routing (§3.6); assumes [state_mu] held ---- *)

let rec raise_error t txn ~kind ~description ?rule ?rule_error_queue
    ?provenance ~source_queue ?initial_message () =
  Metrics.incr t.met.m_errors_raised;
  let queue_error_queue =
    match Qm.find_queue t.qm source_queue with
    | Some q -> q.Defs.error_queue
    | None -> None
  in
  let target =
    match rule_error_queue, queue_error_queue, t.cfg.system_error_queue with
    | Some q, _, _ -> Some q
    | None, Some q, _ -> Some q
    | None, None, q -> q
  in
  (* An error raised while already processing the target error queue would
     loop; route it to the system queue, or drop it. *)
  let target =
    if target = Some source_queue then
      if t.cfg.system_error_queue <> Some source_queue then t.cfg.system_error_queue
      else None
    else target
  in
  match target with
  | None ->
    Log.warn (fun f ->
        f "dropping unroutable error (%s in %s): %s"
          (Errors.kind_element kind) source_queue description)
  | Some error_queue ->
    let payload =
      Errors.to_xml ~kind ~description ?rule ~queue:source_queue ?initial_message ()
    in
    enqueue_internal t txn ?rule ?provenance ~trigger:None ~explicit:[]
      ~queue:error_queue ~payload ~origin_queue:source_queue ()

(* Enqueue + schedule + echo-timer registration; failures are routed as
   errors themselves (bounded by the loop protection above). The child's
   provenance defaults to an edge derived from [trigger] (inherit its
   flow, blame [rule]); [provenance] overrides for paths with no trigger
   message in hand (error routing, timer fires). *)
and enqueue_internal t txn ?rule ?rule_error_queue ?(trigger = None) ?provenance
    ~explicit ~queue ~payload ~origin_queue () =
  let provenance =
    if not t.cfg.flow_tracing then Message.no_provenance
    else
      match provenance, trigger with
      | Some p, _ -> p
      | None, Some trig ->
        derived_prov t ~cause:(Option.value ~default:"" rule) trig
      | None, None -> Message.no_provenance
  in
  match Qm.enqueue t.qm txn ?rule ?trigger ~provenance ~explicit ~queue ~payload () with
  | Ok m ->
    Metrics.incr t.met.m_messages_created;
    note_flow t m;
    schedule_message t m;
    note_outgoing t m;
    (match Qm.find_queue t.qm queue with
     | Some { Defs.kind = Defs.Echo; _ } -> register_echo_timer t txn ?rule m
     | _ -> ())
  | Error e ->
    let kind =
      match e with
      | Qm.Unknown_queue _ -> Errors.Unknown_queue
      | Qm.Schema_violation _ -> Errors.Schema_violation
      | Qm.Fixed_property_set _ | Qm.Property_error _ -> Errors.Property_error
    in
    let provenance =
      match trigger with Some trig -> error_prov t ?rule trig | None -> None
    in
    raise_error t txn ~kind ~description:(Qm.error_to_string e) ?rule
      ?rule_error_queue ?provenance ~source_queue:origin_queue
      ~initial_message:payload ()

and register_echo_timer t txn ?rule (m : Message.t) =
  let timeout =
    match Message.property m "timeout" with
    | Some a -> (
      match Value.cast Value.T_integer a with
      | Ok (Value.Integer n) -> Some n
      | _ -> None)
    | None -> None
  in
  let target =
    Option.map Value.string_of_atomic (Message.property m "target")
  in
  match timeout, target with
  | Some timeout, Some target ->
    Timer_wheel.schedule t.timers ~due:(m.Message.enqueued_at + timeout)
      ~rid:m.Message.rid ~target
  | _ ->
    raise_error t txn ~kind:Errors.Property_error
      ~description:
        "echo queue messages need integer 'timeout' and string 'target' properties"
      ?rule
      ?provenance:(error_prov t ?rule m)
      ~source_queue:m.Message.queue ~initial_message:(Message.body m) ()

(* ---- message injection (external arrivals / gateway replies) ---- *)

(* One message's admission in its own transaction; assumes [state_mu]
   held. Per-message transactions keep batch semantics simple: one
   rejected document aborts only itself. *)
let inject_unlocked t ~props ~provenance ~queue payload =
  match
    in_txn t (fun txn ->
        match Qm.enqueue t.qm txn ~provenance ~explicit:props ~queue ~payload () with
        | Ok m ->
          Metrics.incr t.met.m_messages_created;
          note_flow t m;
          schedule_message t m;
          note_outgoing t m;
          (match Qm.find_queue t.qm queue with
           | Some { Defs.kind = Defs.Echo; _ } -> register_echo_timer t txn m
           | _ -> ());
          m
        | Error e -> raise (Qm.Queue_error e))
  with
  | m -> Ok m
  | exception Qm.Queue_error e -> Error e

let inject t ?(props = []) ?flow ?(origin = "ingress") ~queue payload =
  locked t (fun () ->
      inject_unlocked t ~props
        ~provenance:(root_prov t ?flow ~origin ())
        ~queue payload)

(* Batch ingress: admit a whole batch under one lock acquisition, so the
   gateway path amortizes locking and encoder scratch warm-up across the
   batch instead of paying them per document. Each document is its own
   cascade root: without an adopted [flow] each mints its own flow id. *)
let inject_many t ?(props = []) ?flow ?(origin = "ingress") ~queue payloads =
  locked t (fun () ->
      List.map
        (fun payload ->
          inject_unlocked t ~props
            ~provenance:(root_prov t ?flow ~origin ())
            ~queue payload)
        payloads)

let admission_stats t =
  ( Metrics.value t.met.m_admission_scans,
    Metrics.value t.met.m_trees_materialized,
    Metrics.value t.met.m_decoded_bytes )

(* ---- rule execution (§3.1) ---- *)

type eval_unit = {
  eu_rule : string;
  eu_error_queue : string option;
  eu_slice_ctx : (string * string) option;
  eu_body : Ast.expr;
  eu_requirements : string list;
}

(* Update attribution: which rule produced a pending update (blame for
   §3.6 error routing) and under which slice context it ran (resolves
   [do reset] with no explicit slicing). *)
type attribution = {
  at_rule : string;
  at_error_queue : string option;
  at_slice_ctx : (string * string) option;
}

(* One compiled plan instance pending evaluation for a message.
   [pw_admit] is the per-rule admission verdict, aligned with the plan's
   guarded rules; [prepare] flips entries the condition pre-filter rules
   out. *)
type plan_work = {
  pw_plan : Plan_ir.t;
  pw_slice_ctx : (string * string) option;
  pw_admit : bool array;
}

(* What [prepare] hands to [evaluate]: per-rule interpretation (the
   reference semantics) or the compiler's guarded plans ([merged_plans],
   the default). *)
type work = Units of eval_unit list | Planned of plan_work list

let units_for t (m : Message.t) =
  let queue_units =
    match Compiler.plan_for t.compiled m.Message.queue with
    | None -> []
    | Some plan ->
      List.map
        (fun (r : Compiler.compiled_rule) ->
          { eu_rule = r.cr_name;
            eu_error_queue = r.cr_error_queue;
            eu_slice_ctx = None;
            eu_body = r.cr_body;
            eu_requirements = r.cr_requirements })
        plan.Compiler.rules
  in
  let slice_units =
    List.concat_map
      (fun (mem : Message.membership) ->
        if not (Qm.membership_current t.qm m mem) then []
        else
          match Compiler.plan_for t.compiled mem.Message.m_slicing with
          | None -> []
          | Some plan ->
            let ctx = Some (mem.Message.m_slicing, mem.Message.m_key) in
            List.map
              (fun (r : Compiler.compiled_rule) ->
                { eu_rule = r.cr_name;
                  eu_error_queue = r.cr_error_queue;
                  eu_slice_ctx = ctx;
                  eu_body = r.cr_body;
                  (* slice rules react to slice membership, not only to
                     the triggering message's own content: conditions
                     usually inspect qs:slice(), so no prefiltering *)
                  eu_requirements = [] })
              plan.Compiler.rules)
      m.Message.memberships
  in
  queue_units @ slice_units

let plan_works_for t (m : Message.t) =
  let work_of plan ctx =
    {
      pw_plan = plan.Compiler.exec;
      pw_slice_ctx = ctx;
      pw_admit =
        Array.make (List.length plan.Compiler.exec.Plan_ir.p_guarded) true;
    }
  in
  let queue_work =
    match Compiler.plan_for t.compiled m.Message.queue with
    | None -> []
    | Some plan -> [ work_of plan None ]
  in
  let slice_works =
    List.filter_map
      (fun (mem : Message.membership) ->
        if not (Qm.membership_current t.qm m mem) then None
        else
          Option.map
            (fun plan ->
              work_of plan (Some (mem.Message.m_slicing, mem.Message.m_key)))
            (Compiler.plan_for t.compiled mem.Message.m_slicing))
      m.Message.memberships
  in
  queue_work @ slice_works

let work_for t (m : Message.t) =
  if t.cfg.merged_plans then Planned (plan_works_for t m)
  else Units (units_for t m)

let acquire_locks t txn (m : Message.t) =
  let locks = Store.locks t.st in
  let txn_id = Store.txn_id txn in
  let resources =
    match t.cfg.lock_granularity with
    | `Queue -> [ Lock.Queue_lock m.Message.queue ]
    | `Slice ->
      Lock.Message_lock m.Message.rid
      :: List.map
           (fun (mem : Message.membership) ->
             Lock.Slice_lock (mem.Message.m_slicing, mem.Message.m_key))
           m.Message.memberships
  in
  List.iter (fun r -> ignore (Lock.acquire locks ~txn:txn_id r Lock.Exclusive)) resources

let apply_updates t txn blamed (m : Message.t) tagged =
  List.iter
    (fun (at, update) ->
      blamed := Some (at.at_rule, at.at_error_queue);
      Option.iter Fault.before_apply t.fault;
      match update with
      | Update.Enqueue { payload; queue; props } ->
        enqueue_internal t txn ~rule:at.at_rule ?rule_error_queue:at.at_error_queue
          ~trigger:(Some m) ~explicit:props ~queue ~payload
          ~origin_queue:m.Message.queue ()
      | Update.Reset { slicing; key } -> (
        let resolved =
          match slicing, key with
          | Some s, Some k -> Some (s, Message.key_string k)
          | Some s, None -> (
            (* explicit slicing, key of the current message *)
            match Qm.find_slicing t.qm s with
            | Some sdef -> (
              match Message.property m sdef.Defs.slice_property with
              | Some a -> Some (s, Message.key_string a)
              | None -> None)
            | None -> None)
          | None, _ -> at.at_slice_ctx
        in
        match resolved with
        | Some (slicing, key) -> Qm.reset_slice t.qm txn ~slicing ~key
        | None ->
          raise_error t txn ~kind:Errors.Evaluation_error
            ~description:"do reset: no slice in scope and none specified"
            ~rule:at.at_rule ?rule_error_queue:at.at_error_queue
            ?provenance:(error_prov t ~rule:at.at_rule m)
            ~source_queue:m.Message.queue ~initial_message:(Message.body m) ()))
    tagged

(* Entries in the per-rid caches must die with their message: the retention
   GC reports what it collected and the engine purges the body/name caches,
   the sent table, and any stale outbox entries (§2.3.3 decouples physical
   cleanup from processing, but the caches must not outlive it). *)
let purge_collected t rids =
  if rids <> [] then begin
    let collected = Hashtbl.create (List.length rids) in
    List.iter
      (fun rid ->
        Hashtbl.replace collected rid ();
        Hashtbl.remove t.node_cache rid;
        Hashtbl.remove t.name_cache rid;
        Hashtbl.remove t.pending_ns rid;
        Hashtbl.remove t.sent rid)
      rids;
    Hashtbl.iter
      (fun _ q ->
        let keep = Queue.create () in
        Queue.iter (fun rid -> if not (Hashtbl.mem collected rid) then Queue.push rid keep) q;
        Queue.clear q;
        Queue.transfer keep q)
      t.outbox
  end

let run_gc_unlocked t =
  let rids = Qm.gc_collect t.qm in
  purge_collected t rids;
  let n = List.length rids in
  Metrics.add t.met.m_gc_collected n;
  n

let run_gc t = locked t (fun () -> run_gc_unlocked t)

(* Budgeted GC slice for the background maintenance tick: at most
   [budget] deletability checks, cursor-resumed, so the tick never stalls
   the dispatch loop behind a full-store sweep. *)
let run_gc_step t ~budget =
  locked t @@ fun () ->
  let rids = Qm.gc_step t.qm ~budget in
  purge_collected t rids;
  let n = List.length rids in
  Metrics.add t.met.m_gc_collected n;
  n

(* ---- the single-message transaction ---- *)

let message t rid =
  locked t @@ fun () ->
  match Qm.get t.qm rid with
  | Some m ->
    (* force the lazy body decode while we hold the lock *)
    ignore (force_body_unlocked t m);
    Some m
  | None -> None

(* Setup phase, under [state_mu]: fetch the message, open the transaction,
   take its 2PL locks, look up the pertinent rule plans and pre-filter
   them against the message's element-name synopsis. Binary payloads
   carry the synopsis in their header, so admission is decided on the
   raw bytes; the body tree is materialized only when at least one rule
   survives the filter — a message every pertinent rule prefilters away
   commits its no-op transaction without ever decoding. When tracing is
   on, pre-filtered rules are pushed onto [acts] as skipped activations.
   [now] is the (possibly free-running-zero) phase clock; the returned
   decode time is a sub-interval of the caller's lock phase. *)
let prepare t ~acts ~now rid =
  locked t @@ fun () ->
  match Qm.get t.qm rid with
  | None -> None  (* collected before its turn came *)
  | Some m when m.Message.processed -> None  (* rescheduled duplicate *)
  | Some m ->
    (* queue-wait: time from schedule to this dispatch. The entry is
       popped unconditionally (it may exist while timing is sampled off);
       the observation lands only on timed runs, mirroring the phase
       histograms' 1:8 sampling. *)
    let wait_ns =
      match Hashtbl.find_opt t.pending_ns rid with
      | None -> 0
      | Some t_sched ->
        Hashtbl.remove t.pending_ns rid;
        let n = now () in
        if n > 0 then max 0 (n - t_sched) else 0
    in
    if wait_ns > 0 && Metrics.timing_on t.reg then
      Metrics.observe (wait_hist_for t m.Message.queue) wait_ns;
    let txn = Store.begin_txn t.st in
    acquire_locks t txn m;
    let work = work_for t m in
    let needs_names =
      match work with
      | Units units -> List.exists (fun eu -> eu.eu_requirements <> []) units
      | Planned pws ->
        List.exists
          (fun pw ->
            List.exists
              (fun (g : Plan_ir.guarded) -> g.Plan_ir.g_requirements <> [])
              pw.pw_plan.Plan_ir.p_guarded)
          pws
    in
    let message_names =
      if t.cfg.use_prefilter && needs_names then
        Some
          (match Hashtbl.find_opt t.name_cache m.Message.rid with
           | Some names -> names
           | None ->
             let names =
               if Message.body_forced m then
                 Prefilter.element_names (Message.body m)
               else
                 match Prefilter.payload_names (Message.raw m) with
                 | Some names -> names  (* streaming: header read only *)
                 | None -> Prefilter.element_names (force_body_unlocked t m)
             in
             Hashtbl.replace t.name_cache m.Message.rid names;
             names)
      else None
    in
    let skip rule =
      Metrics.incr t.met.m_prefilter_skips;
      if Trace.enabled t.spans then
        acts := { Trace.a_rule = rule; a_updates = 0; a_skipped = true } :: !acts
    in
    let work =
      match message_names with
      | None -> work
      | Some names -> (
        match work with
        | Units units ->
          Units
            (List.filter
               (fun eu ->
                 if Prefilter.may_match ~requirements:eu.eu_requirements ~names
                 then true
                 else begin
                   skip eu.eu_rule;
                   false
                 end)
               units)
        | Planned pws ->
          List.iter
            (fun pw ->
              List.iteri
                (fun i (g : Plan_ir.guarded) ->
                  if
                    not
                      (Prefilter.may_match
                         ~requirements:g.Plan_ir.g_requirements ~names)
                  then begin
                    pw.pw_admit.(i) <- false;
                    skip g.Plan_ir.g_name
                  end)
                pw.pw_plan.Plan_ir.p_guarded)
            pws;
          Planned pws)
    in
    let live =
      match work with
      | Units units -> units <> []
      | Planned pws ->
        List.exists (fun pw -> Array.exists Fun.id pw.pw_admit) pws
    in
    let decode_ns =
      if not live then begin
        if not (Message.body_forced m) then Metrics.incr t.met.m_admission_scans;
        0
      end
      else begin
        let d0 = now () in
        ignore (message_node_unlocked t m);
        now () - d0
      end
    in
    Some (m, txn, work, decode_ns, wait_ns)

(* Phase 1: evaluate all pertinent rules against the same snapshot,
   accumulating the pending update list. Runs WITHOUT [state_mu]; the
   host callbacks lock on demand, which is what lets several workers
   evaluate CPU-heavy rules concurrently. Both paths report failures
   inline at the failing rule's turn, so a later rule that reads the
   error queue observes the routed error exactly as it would under
   per-rule interpretation. *)
let evaluate t txn blamed ~acts (m : Message.t) work =
  let fail rule rule_error_queue description =
    locked t (fun () ->
        raise_error t txn ~kind:Errors.Evaluation_error ~description ~rule
          ?rule_error_queue
          ?provenance:(error_prov t ~rule m)
          ~source_queue:m.Message.queue ~initial_message:(Message.body m) ())
  in
  match work with
  | Units units ->
    List.concat_map
      (fun eu ->
        Metrics.incr t.met.m_rule_evaluations;
        blamed := Some (eu.eu_rule, eu.eu_error_queue);
        Option.iter Fault.before_eval t.fault;
        let host = host_for t m ~slice_ctx:eu.eu_slice_ctx in
        let env = Context.make ~host () in
        let env =
          { env with Context.item = Some (Value.Node (message_node t m)) }
        in
        match Eval.eval_with_updates env eu.eu_body with
        | _, updates ->
          if Trace.enabled t.spans then
            acts :=
              {
                Trace.a_rule = eu.eu_rule;
                a_updates = List.length updates;
                a_skipped = false;
              }
              :: !acts;
          List.map
            (fun u ->
              ( { at_rule = eu.eu_rule;
                  at_error_queue = eu.eu_error_queue;
                  at_slice_ctx = eu.eu_slice_ctx },
                u ))
            updates
        | exception Context.Eval_error description ->
          fail eu.eu_rule eu.eu_error_queue description;
          [])
      units
  | Planned pws ->
    List.concat_map
      (fun pw ->
        if not (Array.exists Fun.id pw.pw_admit) then []
        else begin
          let host = host_for t m ~slice_ctx:pw.pw_slice_ctx in
          let env = Context.make ~host () in
          let env =
            { env with Context.item = Some (Value.Node (message_node t m)) }
          in
          let tagged = ref [] in
          Plan_ir.eval
            ~admitted:(fun i _ -> pw.pw_admit.(i))
            ~before:(fun (g : Plan_ir.guarded) ->
              Metrics.incr t.met.m_rule_evaluations;
              blamed := Some (g.Plan_ir.g_name, g.Plan_ir.g_error_queue);
              Option.iter Fault.before_eval t.fault)
            ~emit:(fun (g : Plan_ir.guarded) outcome ->
              match outcome with
              | Plan_ir.Updates updates ->
                if Trace.enabled t.spans then
                  acts :=
                    {
                      Trace.a_rule = g.Plan_ir.g_name;
                      a_updates = List.length updates;
                      a_skipped = false;
                    }
                    :: !acts;
                let at =
                  {
                    at_rule = g.Plan_ir.g_name;
                    at_error_queue = g.Plan_ir.g_error_queue;
                    at_slice_ctx = pw.pw_slice_ctx;
                  }
                in
                tagged :=
                  List.fold_left (fun acc u -> (at, u) :: acc) !tagged updates
              | Plan_ir.Failed description ->
                fail g.Plan_ir.g_name g.Plan_ir.g_error_queue description)
            env pw.pw_plan;
          List.rev !tagged
        end)
      pws

let process t rid =
  let tracing = Trace.enabled t.spans in
  (* the clock is read only when someone consumes the timings; with
     metrics on (and no tracing) phase latencies are sampled 1-in-8 so
     the common case stays free of clock reads *)
  let timed =
    tracing || (Metrics.timing_on t.reg && Metrics.sampled t.reg)
  in
  let now () = if timed then Metrics.now t.reg else 0 in
  let t_start = now () in
  let acts = ref [] in
  match prepare t ~acts ~now rid with
  | None -> false
  | Some (m, txn, work, decode_ns, wait_ns) ->
    let t_locked = now () in
    let blamed = ref None in
    let t_evaled = ref t_locked in
    let t_applied = ref t_locked in
    let barrier_ns = ref 0 in
    let actions = ref 0 in
    let outcome = ref Trace.Committed in
    (match
       let tagged = evaluate t txn blamed ~acts m work in
       t_evaled := now ();
       actions := List.length tagged;
       (* Phase 2, under [state_mu] again: execute the pending actions and
          commit atomically. *)
       locked t (fun () ->
           apply_updates t txn blamed m tagged;
           (* Echo-queue messages stay unprocessed until their timer fires,
              so a restart can re-register the pending timeout (§2.1.3). *)
           let is_echo =
             match Qm.find_queue t.qm m.Message.queue with
             | Some { Defs.kind = Defs.Echo; _ } -> true
             | _ -> false
           in
           if not is_echo then Qm.mark_processed t.qm txn m;
           Store.commit txn);
       t_applied := now ()
     with
     | () -> ()
     | exception e ->
       (* abort, release the locks, and — §3.6 — turn the failure into an
          error message rather than a wedged engine: route it and
          neutralize the trigger in a fresh transaction, then keep going *)
       if !t_evaled = t_locked then t_evaled := now ();
       outcome := Trace.Aborted (exn_description e);
       let b0 = now () in
       locked t (fun () ->
           Metrics.incr t.met.m_txn_aborts;
           Store.abort txn;
           (* earlier transactions of the current batch are committed but
              possibly unsynced; the abort must not widen their exposure *)
           harden t);
       barrier_ns := now () - b0;
       t_applied := now ();
       Log.warn (fun f ->
           f "processing of #%d aborted: %s" m.Message.rid (exn_description e));
       let rule, rule_error_queue =
         match !blamed with
         | Some (r, eq) -> (Some r, eq)
         | None -> (None, None)
       in
       (try
          with_txn t (fun txn ->
              raise_error t txn ~kind:Errors.Evaluation_error
                ~description:(exn_description e) ?rule ?rule_error_queue
                ~source_queue:m.Message.queue
                ~initial_message:(Message.body m) ();
              Qm.mark_processed t.qm txn m)
        with e2 ->
          Log.err (fun f ->
              f "error routing for #%d failed: %s" m.Message.rid
                (exn_description e2))));
    if timed then begin
      Metrics.observe t.met.m_lock_seconds (t_locked - t_start);
      Metrics.observe t.met.m_decode_seconds decode_ns;
      Metrics.observe t.met.m_eval_seconds (!t_evaled - t_locked);
      Metrics.observe t.met.m_apply_seconds (!t_applied - !t_evaled)
    end;
    if tracing then begin
      let span =
        {
          Trace.sp_rid = m.Message.rid;
          sp_queue = m.Message.queue;
          sp_flow = m.Message.prov.Message.p_flow;
          sp_parent = m.Message.prov.Message.p_parent;
          sp_cause = m.Message.prov.Message.p_cause;
          sp_tick = Clock.now t.clk;
          sp_worker = Metrics.shard_index t.reg;
          sp_start_ns = t_start;
          sp_wait_ns = wait_ns;
          sp_lock_ns = t_locked - t_start;
          sp_decode_ns = decode_ns;
          sp_eval_ns = !t_evaled - t_locked;
          sp_apply_ns = !t_applied - !t_evaled;
          sp_barrier_ns = !barrier_ns;
          sp_activations = List.rev !acts;
          sp_actions = !actions;
          sp_batch = t.batch_target;
          sp_outcome = !outcome;
        }
      in
      Trace.record t.spans span;
      if t.cfg.flow_tracing then Flow.attach t.flows span
    end;
    Metrics.incr t.met.m_processed;
    if
      t.cfg.gc_every > 0
      && Metrics.value t.met.m_processed mod t.cfg.gc_every = 0
    then ignore (run_gc t);
    true

(** Deterministic fault injection for crash-safety testing.

    Gray's "Queues Are Databases" argument is that a queue system earns its
    keep by surviving failures transactionally; this module provides the
    seeded, reproducible failures that the crash-recovery suite drives
    through the engine: evaluator exceptions on chosen (or randomly chosen)
    rule evaluations, exceptions while pending updates are applied, torn
    WAL tails, abrupt store restarts, and endpoint partitions.

    A {!t} handed to {!Server.set_fault} is consulted at the engine's
    injection points; the engine must abort the surrounding transaction,
    release all locks, route an error message (§3.6) and keep running. *)

module Store := Demaq_store.Message_store

exception Injected of string
(** Deliberately NOT [Context.Eval_error]: injected faults exercise the
    engine's handling of {e arbitrary} exceptions, not just the expected
    evaluator errors. *)

type t

val create : ?seed:int -> unit -> t
(** [seed] (default 0) drives the random failure-rate lottery. *)

(** {1 Arming injection points} *)

val fail_on_eval : t -> int -> unit
(** Raise {!Injected} on the [n]th rule evaluation (1-based, counted over
    the lifetime of this [t]). May be called repeatedly to arm several
    ordinals. *)

val fail_on_apply : t -> int -> unit
(** Raise {!Injected} on the [n]th pending-update application — after some
    updates of the same transaction may already have been applied, so the
    abort path's undo work is exercised. *)

val fail_next_eval : t -> unit
(** Arm the next rule evaluation from wherever the counter stands now —
    the relative form simulation schedules use ("the next processed
    message fails") without tracking absolute ordinals. *)

val fail_next_apply : t -> unit

val set_eval_failure_rate : t -> float -> unit
(** Additionally fail each rule evaluation with the given probability
    (seeded, deterministic). *)

val disarm : t -> unit
(** Clear all armed ordinals and the failure rate. Counters keep running. *)

(** {1 Engine-side hooks} *)

val before_eval : t -> unit
val before_apply : t -> unit

(** {1 Counters} *)

val injected : t -> int
(** Faults actually raised so far. *)

val evals : t -> int
val applies : t -> int

(** {1 Crash simulation} *)

val tear_wal : dir:string -> bytes:int -> unit
(** Truncate the last [bytes] bytes of [dir]'s WAL, simulating a crash
    mid-append (a torn final record). Recovery must ignore the damaged
    record and keep the intact prefix. No-op on a missing log. *)

val crash_restart : ?tear_bytes:int -> Store.config -> Store.t -> Store.t
(** Simulate kill-and-redeploy: close the store without checkpointing,
    optionally tear the WAL tail, and reopen from disk. The caller then
    re-deploys a server on the returned store. *)

(** {1 Network partitions} *)

val partition : Demaq_net.Network.t -> string -> unit
val reconnect : Demaq_net.Network.t -> string -> unit

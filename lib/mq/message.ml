(* The queue layer's view of a stored message: parsed payload, typed
   properties, and slice memberships. Serialized into the store's opaque
   [extra] blob. *)

module Tree = Demaq_xml.Tree
module Value = Demaq_xquery.Value
module Codec = Demaq_store.Codec

type membership = {
  m_slicing : string;
  m_key : string;  (* string-encoded slice key *)
  m_lifetime : int;  (* slice lifetime at insertion (§2.3.2) *)
}

type provenance = {
  p_flow : string;  (* flow id minted at the cascade's origin; "" = none *)
  p_parent : int;  (* rid of the causing message; -1 = cascade root *)
  p_cause : string;  (* rule that enqueued this, or an origin kind *)
}

let no_provenance = { p_flow = ""; p_parent = -1; p_cause = "" }
let is_root p = p.p_parent < 0

type t = {
  rid : int;
  queue : string;
  raw : string Lazy.t;  (* stored payload bytes (binary bxml or legacy text) *)
  body : Tree.tree Lazy.t;  (* decoded on demand from [raw] *)
  props : (string * Value.atomic) list;
  memberships : membership list;
  prov : provenance;
  enqueued_at : int;
  processed : bool;
}

let body m = Lazy.force m.body
let raw m = Lazy.force m.raw
let body_forced m = Lazy.is_val m.body

let property m name = List.assoc_opt name m.props

let key_string (a : Value.atomic) = Value.string_of_atomic a

(* ---- extra-blob codec ---- *)

let put_atomic buf (a : Value.atomic) =
  match a with
  | Value.Boolean b ->
    Buffer.add_char buf 'b';
    Codec.put_bool buf b
  | Value.Integer i ->
    Buffer.add_char buf 'i';
    Codec.put_int buf i
  | Value.Decimal f ->
    Buffer.add_char buf 'd';
    Codec.put_string buf (Printf.sprintf "%h" f)
  | Value.String s ->
    Buffer.add_char buf 's';
    Codec.put_string buf s
  | Value.Untyped s ->
    Buffer.add_char buf 'u';
    Codec.put_string buf s

let get_atomic r =
  let tag = r.Codec.src.[r.Codec.pos] in
  r.Codec.pos <- r.Codec.pos + 1;
  match tag with
  | 'b' -> Value.Boolean (Codec.get_bool r)
  | 'i' -> Value.Integer (Codec.get_int r)
  | 'd' -> Value.Decimal (float_of_string (Codec.get_string r))
  | 's' -> Value.String (Codec.get_string r)
  | 'u' -> Value.Untyped (Codec.get_string r)
  | c -> raise (Codec.Decode_error (Printf.sprintf "bad atomic tag %C" c))

let encode_extra ?(provenance = no_provenance) ~props ~memberships () =
  let buf = Buffer.create 128 in
  Codec.put_list buf
    (fun buf (name, a) ->
      Codec.put_string buf name;
      put_atomic buf a)
    props;
  Codec.put_list buf
    (fun buf m ->
      Codec.put_string buf m.m_slicing;
      Codec.put_string buf m.m_key;
      Codec.put_int buf m.m_lifetime)
    memberships;
  (* provenance rides at the tail so blobs written before flow tracing
     landed still decode: [decode_extra] probes [at_end] *)
  Codec.put_string buf provenance.p_flow;
  Codec.put_int buf provenance.p_parent;
  Codec.put_string buf provenance.p_cause;
  Buffer.contents buf

let decode_extra extra =
  let r = Codec.reader extra in
  let props =
    Codec.get_list r (fun r ->
        let name = Codec.get_string r in
        let a = get_atomic r in
        (name, a))
  in
  let memberships =
    Codec.get_list r (fun r ->
        let m_slicing = Codec.get_string r in
        let m_key = Codec.get_string r in
        let m_lifetime = Codec.get_int r in
        { m_slicing; m_key; m_lifetime })
  in
  let provenance =
    if Codec.at_end r then no_provenance
    else
      let p_flow = Codec.get_string r in
      let p_parent = Codec.get_int r in
      let p_cause = Codec.get_string r in
      { p_flow; p_parent; p_cause }
  in
  (props, memberships, provenance)

let of_store store (sm : Demaq_store.Message_store.message) =
  let props, memberships, prov = decode_extra sm.extra in
  (* spilled bodies are faulted in through the buffer pool on first
     access and then held by this record's lazy cell; [raw] stays
     un-forced until either an admission scan or a decode needs it *)
  let raw = lazy (Demaq_store.Message_store.payload store sm) in
  {
    rid = sm.rid;
    queue = sm.queue;
    raw;
    body = lazy (Demaq_xml.Bxml.decode_any (Lazy.force raw));
    props;
    memberships;
    prov;
    enqueued_at = sm.enqueued_at;
    processed = sm.processed;
  }

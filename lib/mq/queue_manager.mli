(** The queue subsystem: interprets QDL declarations over the message store.

    Responsibilities (paper §2): enqueue with schema validation and
    property computation (explicit / system / inherited / computed values),
    slice membership tracking, materialized slice indexes (B-tree by slice
    key, §4.3), slice resets, and the retention garbage collector
    (a message is removable once it is processed and every slice that
    contains it has been reset, §2.3.3). *)

module Tree := Demaq_xml.Tree
module Value := Demaq_xquery.Value
module Store := Demaq_store.Message_store

type error =
  | Unknown_queue of string
  | Schema_violation of { queue : string; reason : string }
  | Fixed_property_set of { property : string }
  | Property_error of { property : string; reason : string }

val error_to_string : error -> string

exception Queue_error of error

type t

val create :
  ?clock:(unit -> int) -> ?payload_format:[ `Binary | `Text ] -> Store.t -> t
(** [clock] supplies the virtual time tick used for the system timestamp
    property (defaults to a counter incremented per enqueue).
    [payload_format] selects the stored payload representation: compact
    binary {!Demaq_xml.Bxml} (the default) or legacy XML text (kept for
    benchmarking the two paths against each other; reads accept both
    formats regardless). *)

val store : t -> Store.t

(** {1 Definitions} *)

val add_queue : t -> Defs.queue_def -> unit
val add_property : t -> Defs.property_def -> unit
val add_slicing : t -> Defs.slicing_def -> unit

val find_queue : t -> string -> Defs.queue_def option
val find_slicing : t -> string -> Defs.slicing_def option
val queue_defs : t -> Defs.queue_def list
val slicing_defs : t -> Defs.slicing_def list
val property_defs : t -> Defs.property_def list

val set_collection : t -> string -> Tree.tree list -> unit
(** Master data exposed to rules via [fn:collection] (§3.5.2). *)

val collection : t -> string -> Tree.tree list

(** {1 Enqueue} *)

val enqueue :
  t ->
  Store.txn ->
  ?rule:string ->
  ?trigger:Message.t ->
  ?provenance:Message.provenance ->
  ?explicit:(string * Value.atomic) list ->
  queue:string ->
  payload:Tree.tree ->
  unit ->
  (Message.t, error) result
(** Computes properties (precedence: explicit, then inherited from
    [trigger], then the per-queue value expression), validates against the
    queue schema, records slice memberships at the slices' current
    lifetimes, and inserts the message. Durable iff the queue is
    persistent and the store is durable. [provenance] (default
    {!Message.no_provenance}) is persisted in the extra blob alongside the
    properties, so causal flow edges survive crash-restart. *)

(** {1 Reads} *)

val get : t -> int -> Message.t option
val queue_messages : t -> string -> Message.t list
(** Live messages of the queue, arrival order. *)

val queue_length : t -> string -> int
val unprocessed : t -> Message.t list

val slice_messages : t -> ?use_index:bool -> slicing:string -> key:string -> unit
  -> Message.t list
(** Messages of the slice's current lifetime. [use_index=true] (default)
    walks the materialized B-tree; [false] scans the underlying queues
    (the "merge the slice definition into the rules" baseline of §4.3). *)

val slice_keys : t -> slicing:string -> string list
(** Distinct keys currently present in the slicing's index. *)

val membership_current : t -> Message.t -> Message.membership -> bool

(** {1 Updates} *)

val mark_processed : t -> Store.txn -> Message.t -> unit

val reset_slice : t -> Store.txn -> slicing:string -> key:string -> unit
(** Begin a new lifetime: existing members become invisible (§2.3.2). *)

(** {1 Maintenance} *)

val deletable : t -> Message.t -> bool
(** §2.3.3: processed and contained in no current slice lifetime. *)

val gc : t -> int
(** Collect all deletable messages in one transaction; returns the count.
    Index entries and cache entries for the collected messages are
    dropped. *)

val gc_collect : t -> int list
(** Like {!gc} but returns the rids of the collected messages, so callers
    holding per-rid caches of their own (the engine's node, name-synopsis
    and sent tables) can purge them. *)

val gc_step : t -> budget:int -> int list
(** Incremental {!gc_collect}: examine at most [budget] messages, resuming
    at an internal rid cursor that wraps at the end of the store, and
    collect the deletable ones among them. A maintenance tick costs
    O(budget) deletability checks instead of O(store); repeated calls
    eventually revisit every message. Returns the collected rids. *)

val rebuild_indexes : t -> unit
(** Rebuild all slice indexes from the store (after recovery: index data is
    derived, §4.1). Called automatically by {!create}. *)

val index_stats : t -> (string * int * int) list
(** Per slicing: (name, distinct keys, B-tree height). *)

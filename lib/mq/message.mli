(** The queue layer's view of a stored message: parsed payload, typed
    properties (§2.2), and slice memberships (§2.3).

    Messages are immutable after creation (the append-only model of
    §2.3.3); only the [processed] flag, owned by the engine, evolves. The
    body parses lazily from the stored payload, so scanning a queue by rid
    does not force XML parsing. *)

type membership = {
  m_slicing : string;
  m_key : string;  (** string-encoded slice key *)
  m_lifetime : int;
      (** the slice's lifetime counter at insertion; the membership is
          current while it equals the slice's counter (§2.3.2) *)
}

type provenance = {
  p_flow : string;
      (** flow id minted where the cascade entered the system (ingress,
          gateway, timer) or adopted from the client's [X-Demaq-Flow]
          header; [""] on messages predating flow tracing *)
  p_parent : int;  (** rid of the causing message; [-1] = cascade root *)
  p_cause : string;
      (** the rule whose [do enqueue] created this message, or an origin
          kind ("ingress", "timer", "reply", ...) for roots *)
}

val no_provenance : provenance
(** [{p_flow = ""; p_parent = -1; p_cause = ""}] — untraced / legacy. *)

val is_root : provenance -> bool
(** No parent rid, i.e. the message entered from outside the cascade. *)

type t = {
  rid : int;
  queue : string;
  raw : string Lazy.t;
      (** the stored payload bytes: binary {!Demaq_xml.Bxml} for messages
          written since the binary format landed, legacy XML text for
          older stores — {!body} decodes either *)
  body : Demaq_xml.Tree.tree Lazy.t;
  props : (string * Demaq_xquery.Value.atomic) list;
  memberships : membership list;
  prov : provenance;
      (** causal provenance (flow id / parent rid / causing rule),
          persisted in the extra blob so flows survive crash-restart *)
  enqueued_at : int;  (** virtual-clock tick *)
  processed : bool;
}

val body : t -> Demaq_xml.Tree.tree
(** Force the decoded payload tree. *)

val raw : t -> string
(** Force the stored payload bytes (spilled bodies fault in through the
    store's buffer pool). The streaming-admission path reads these
    without ever materializing a tree. *)

val body_forced : t -> bool
(** Whether {!body} has already been materialized — the observability
    seam that lets the engine count admission scans that avoided a
    decode. *)

val property : t -> string -> Demaq_xquery.Value.atomic option

val key_string : Demaq_xquery.Value.atomic -> string
(** The canonical string encoding of a slice key. *)

(** {1 Store blob codec}

    Properties and memberships ride in the store's opaque [extra] blob. *)

val encode_extra :
  ?provenance:provenance ->
  props:(string * Demaq_xquery.Value.atomic) list ->
  memberships:membership list ->
  unit ->
  string
(** [provenance] defaults to {!no_provenance}. The provenance triple is
    appended after the membership list, so blobs written by older builds
    decode to {!no_provenance} rather than failing. *)

val decode_extra :
  string ->
  (string * Demaq_xquery.Value.atomic) list * membership list * provenance

val of_store : Demaq_store.Message_store.t -> Demaq_store.Message_store.message -> t
(** Decode a store record (spilled bodies are faulted in lazily through
    the store's buffer pool). *)

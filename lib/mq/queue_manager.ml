module Tree = Demaq_xml.Tree
module Schema = Demaq_xml.Schema
module Serializer = Demaq_xml.Serializer
module Value = Demaq_xquery.Value
module Eval = Demaq_xquery.Eval
module Context = Demaq_xquery.Context
module Store = Demaq_store.Message_store
module Btree = Demaq_store.Btree

type error =
  | Unknown_queue of string
  | Schema_violation of { queue : string; reason : string }
  | Fixed_property_set of { property : string }
  | Property_error of { property : string; reason : string }

let error_to_string = function
  | Unknown_queue q -> Printf.sprintf "unknown queue: %s" q
  | Schema_violation { queue; reason } ->
    Printf.sprintf "schema violation on queue %s: %s" queue reason
  | Fixed_property_set { property } ->
    Printf.sprintf "fixed property %s may not be set explicitly" property
  | Property_error { property; reason } ->
    Printf.sprintf "error computing property %s: %s" property reason

exception Queue_error of error

type t = {
  store : Store.t;
  queues : (string, Defs.queue_def) Hashtbl.t;
  mutable properties : Defs.property_def list;  (* declaration order *)
  mutable slicings : Defs.slicing_def list;
  indexes : (string, int Btree.t) Hashtbl.t;  (* slicing -> key -> rids *)
  collections : (string, Tree.tree list) Hashtbl.t;
  cache : (int, Message.t) Hashtbl.t;  (* rid -> decoded message *)
  clock : unit -> int;
  encode_payload : Tree.tree -> string;  (* stored representation *)
  mutable gc_cursor : int;
      (* next rid the incremental GC scan examines; wraps to 0 at the end
         of the store so every message is eventually revisited *)
}

let store t = t.store

let default_clock () =
  let n = ref 0 in
  fun () ->
    incr n;
    !n

let index_for t slicing =
  match Hashtbl.find_opt t.indexes slicing with
  | Some idx -> idx
  | None ->
    let idx = Btree.create () in
    Hashtbl.replace t.indexes slicing idx;
    idx

let add_queue t def = Hashtbl.replace t.queues def.Defs.qname def
let add_property t def = t.properties <- t.properties @ [ def ]

let add_slicing t def =
  t.slicings <- t.slicings @ [ def ];
  ignore (index_for t def.Defs.sname)

let find_queue t name = Hashtbl.find_opt t.queues name

let find_slicing t name =
  List.find_opt (fun s -> s.Defs.sname = name) t.slicings

let queue_defs t = Hashtbl.fold (fun _ d acc -> d :: acc) t.queues []
let slicing_defs t = t.slicings
let property_defs t = t.properties

let set_collection t name docs = Hashtbl.replace t.collections name docs
let collection t name = Option.value ~default:[] (Hashtbl.find_opt t.collections name)

(* ---- message access with cache ---- *)

let of_store_cached t (sm : Store.message) =
  let m =
    match Hashtbl.find_opt t.cache sm.rid with
    | Some m -> m
    | None ->
      let m = Message.of_store t.store sm in
      Hashtbl.replace t.cache sm.rid m;
      m
  in
  (* [processed] may have changed since the cache entry was created. *)
  if m.Message.processed = sm.processed then m
  else begin
    let m = { m with Message.processed = sm.processed } in
    Hashtbl.replace t.cache sm.rid m;
    m
  end

let get t rid =
  Option.map (of_store_cached t) (Store.get t.store rid)

let queue_messages t queue =
  List.rev
    (Store.fold_queue t.store queue (fun acc sm -> of_store_cached t sm :: acc) [])

let queue_length t queue = Store.queue_length t.store queue

let unprocessed t = List.map (of_store_cached t) (Store.unprocessed t.store)

(* ---- slices ---- *)

let membership_current t (m : Message.t) (mem : Message.membership) =
  ignore m;
  mem.Message.m_lifetime
  = Store.slice_lifetime t.store ~slicing:mem.Message.m_slicing ~key:mem.Message.m_key

let message_in_slice t slicing key (m : Message.t) =
  List.exists
    (fun mem ->
      mem.Message.m_slicing = slicing
      && mem.Message.m_key = key
      && membership_current t m mem)
    m.Message.memberships

let slice_messages t ?(use_index = true) ~slicing ~key () =
  if use_index then
    let idx = index_for t slicing in
    let rids = Btree.find idx key in
    List.filter
      (fun m -> message_in_slice t slicing key m)
      (List.filter_map (get t) (List.sort_uniq compare rids))
  else begin
    (* Scan baseline (§4.3: merging the slice definition into the rule):
       walk every queue on which the slicing's property is defined. *)
    match find_slicing t slicing with
    | None -> []
    | Some sdef ->
      let queues =
        List.concat_map
          (fun p ->
            if p.Defs.pname = sdef.Defs.slice_property then Defs.property_queues p
            else [])
          t.properties
      in
      List.concat_map
        (fun q ->
          List.filter (message_in_slice t slicing key) (queue_messages t q))
        (List.sort_uniq compare queues)
  end

let slice_keys t ~slicing =
  let idx = index_for t slicing in
  let keys = ref [] in
  Btree.iter idx (fun k _ -> keys := k :: !keys);
  List.rev !keys

(* ---- property computation (§2.2) ---- *)

let eval_property_expr t pname expr payload =
  let env = Demaq_xquery.Context.make () in
  let env =
    { env with Context.item = Some (Value.Node (Eval.node_of_tree payload)) }
  in
  ignore t;
  match Eval.eval env expr with
  | [] -> None
  | item :: _ -> Some (Value.atomize_item item)
  | exception Context.Eval_error reason ->
    raise (Queue_error (Property_error { property = pname; reason }))

let cast_property pname ptype a =
  match Value.cast ptype a with
  | Ok a -> a
  | Error reason -> raise (Queue_error (Property_error { property = pname; reason }))

let compute_properties t ~rule ~trigger ~explicit ~queue ~payload =
  let defined = ref [] in
  (* Declared properties, in declaration order. *)
  List.iter
    (fun (p : Defs.property_def) ->
      if List.mem queue (Defs.property_queues p) then begin
        let explicit_value = List.assoc_opt p.pname explicit in
        (match p.disposition, explicit_value with
         | Defs.Fixed, Some _ ->
           raise (Queue_error (Fixed_property_set { property = p.pname }))
         | _ -> ());
        let inherited_value =
          match p.disposition, trigger with
          | Defs.Inherited, Some trig -> Message.property trig p.pname
          | _ -> None
        in
        let value =
          match explicit_value, inherited_value with
          | Some v, _ -> Some v
          | None, Some v -> Some v
          | None, None -> (
            match Defs.property_expr_for p queue with
            | Some expr -> eval_property_expr t p.pname expr payload
            | None -> None)
        in
        match value with
        | Some v -> defined := (p.pname, cast_property p.pname p.ptype v) :: !defined
        | None -> ()
      end)
    t.properties;
  let declared_names = List.map fst !defined in
  (* Undeclared explicit properties ride along untyped (used for e.g.
     gateway addressing and echo timeouts). *)
  let extra_explicit =
    List.filter (fun (n, _) -> not (List.mem n declared_names)) explicit
  in
  (* System properties (§2.2). *)
  let system =
    List.concat
      [
        (match rule with Some r -> [ (Defs.Sysprop.rule, Value.String r) ] | None -> []);
        [ (Defs.Sysprop.timestamp, Value.Integer (t.clock ())) ];
        (* Connection handles propagate automatically with messages. *)
        (match trigger with
         | Some trig -> (
           match Message.property trig Defs.Sysprop.connection with
           | Some v when not (List.mem_assoc Defs.Sysprop.connection explicit) ->
             [ (Defs.Sysprop.connection, v) ]
           | _ -> [])
         | None -> []);
      ]
  in
  let system =
    List.filter (fun (n, _) -> not (List.mem_assoc n extra_explicit)) system
  in
  List.rev !defined @ extra_explicit @ system

(* ---- enqueue ---- *)

let memberships_of t props =
  List.filter_map
    (fun (s : Defs.slicing_def) ->
      match List.assoc_opt s.slice_property props with
      | None -> None
      | Some v ->
        let key = Message.key_string v in
        Some
          {
            Message.m_slicing = s.sname;
            m_key = key;
            m_lifetime = Store.slice_lifetime t.store ~slicing:s.sname ~key;
          })
    t.slicings

let enqueue t txn ?rule ?trigger ?(provenance = Message.no_provenance)
    ?(explicit = []) ~queue ~payload () =
  match find_queue t queue with
  | None -> Error (Unknown_queue queue)
  | Some qdef -> (
    match
      (match qdef.schema with
       | Some schema ->
         (* The queue schema also restricts the message root to a declared
            element: an entirely undeclared document does not "conform to
            the schema" (§2.1.1). *)
         Schema.root_allowed schema (Schema.declared_names schema) payload
       | None -> Ok ())
    with
    | Error reason -> Error (Schema_violation { queue; reason })
    | Ok () -> (
      match compute_properties t ~rule ~trigger ~explicit ~queue ~payload with
      | exception Queue_error e -> Error e
      | props ->
        let memberships = memberships_of t props in
        let serialized = t.encode_payload payload in
        let extra = Message.encode_extra ~provenance ~props ~memberships () in
        let enqueued_at =
          match List.assoc_opt Defs.Sysprop.timestamp props with
          | Some (Value.Integer tick) -> tick
          | _ -> t.clock ()
        in
        let durable = qdef.mode = Defs.Persistent in
        let rid =
          Store.insert txn ~queue ~payload:serialized ~extra ~enqueued_at ~durable
        in
        List.iter
          (fun mem ->
            Btree.add (index_for t mem.Message.m_slicing) mem.Message.m_key rid)
          memberships;
        let m =
          {
            Message.rid;
            queue;
            raw = Lazy.from_val serialized;
            body = Lazy.from_val payload;
            props;
            memberships;
            prov = provenance;
            enqueued_at;
            processed = false;
          }
        in
        Hashtbl.replace t.cache rid m;
        Ok m))

(* ---- updates ---- *)

let mark_processed _t txn (m : Message.t) = Store.mark_processed txn m.Message.rid

let reset_slice _t txn ~slicing ~key = Store.slice_reset txn ~slicing ~key

(* ---- retention GC (§2.3.3) ---- *)

let deletable t (m : Message.t) =
  m.Message.processed
  && List.for_all (fun mem -> not (membership_current t m mem)) m.Message.memberships

(* Tombstone a batch of deletable messages in one transaction, evicting
   their cache entries and index postings. Returns the reclaimed rids. *)
let delete_batch t doomed =
  if doomed = [] then []
  else begin
    let txn = Store.begin_txn t.store in
    List.iter
      (fun (m : Message.t) ->
        Store.delete txn m.Message.rid;
        Hashtbl.remove t.cache m.Message.rid;
        List.iter
          (fun mem ->
            Btree.remove
              (index_for t mem.Message.m_slicing)
              mem.Message.m_key
              (fun rid -> rid = m.Message.rid))
          m.Message.memberships)
      doomed;
    Store.commit txn;
    List.map (fun (m : Message.t) -> m.Message.rid) doomed
  end

let gc_collect t =
  delete_batch t
    (List.filter (deletable t)
       (List.map (of_store_cached t) (Store.all_messages t.store)))

let gc t = List.length (gc_collect t)

(* Incremental GC: examine at most [budget] messages per call, resuming
   at a wrapping rid cursor. The enumeration itself is a cheap fold over
   live rids; the budget bounds the expensive part — decoding each
   candidate and checking its slice memberships for currency — so a
   maintenance tick costs O(budget), not O(store). A short window (fewer
   than [budget] rids past the cursor) ends the sweep and wraps the
   cursor to 0, so every message is revisited on the next pass. *)
let gc_step t ~budget =
  if budget <= 0 then []
  else begin
    let past_cursor =
      List.filter
        (fun (sm : Store.message) -> sm.Store.rid >= t.gc_cursor)
        (Store.all_messages t.store)
    in
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    let window = take budget past_cursor in
    if List.length window < budget then t.gc_cursor <- 0
    else (
      match List.rev window with
      | last :: _ -> t.gc_cursor <- last.Store.rid + 1
      | [] -> ());
    delete_batch t
      (List.filter (deletable t) (List.map (of_store_cached t) window))
  end

let rebuild_indexes t =
  Hashtbl.iter (fun _ idx -> Btree.clear idx) t.indexes;
  List.iter
    (fun sm ->
      let m = of_store_cached t sm in
      List.iter
        (fun mem ->
          Btree.add (index_for t mem.Message.m_slicing) mem.Message.m_key
            m.Message.rid)
        m.Message.memberships)
    (Store.all_messages t.store)

let index_stats t =
  Hashtbl.fold
    (fun name idx acc -> (name, Btree.cardinal idx, Btree.height idx) :: acc)
    t.indexes []

let create ?clock ?(payload_format = `Binary) store =
  let clock = match clock with Some c -> c | None -> default_clock () in
  let encode_payload =
    match payload_format with
    | `Binary -> Demaq_xml.Bxml.encode
    | `Text -> fun tree -> Serializer.to_string tree
  in
  let t =
    {
      store;
      queues = Hashtbl.create 16;
      properties = [];
      slicings = [];
      indexes = Hashtbl.create 8;
      collections = Hashtbl.create 8;
      cache = Hashtbl.create 1024;
      clock;
      encode_payload;
      gc_cursor = 0;
    }
  in
  rebuild_indexes t;
  t

(** Demaq: declarative XML message processing on transactional XML message
    queues — an OCaml implementation of the system described in

    {e Böhm, Kanne, Moerkotte: "Demaq: A Foundation for Declarative XML
    Message Processing", CIDR 2007.}

    This module is the public facade. A typical application:

    {[
      let program = {|
        create queue crm kind basic mode persistent
        create queue customer kind outgoingGateway mode persistent
        create rule ack for crm
          if (//order) then
            do enqueue <confirmation>{//order/id}</confirmation> into customer
      |}

      let server = Demaq.deploy program in
      ignore (Demaq.inject server ~queue:"crm" (Demaq.xml "<order><id>7</id></order>"));
      ignore (Demaq.Server.run server)
    ]}

    The submodules expose each subsystem: [Xml] (data model, parser,
    serializer, schema), [Xquery] (the rule expression language), [Store]
    (WAL, B-tree, locks, recoverable message store), [Mq] (queues,
    properties, slicings, retention), [Net] (simulated transports), [Lang]
    (QDL/QML front-end and rule compiler), [Engine] (scheduler, timers,
    server), [Baseline] (comparison engines for the benchmarks) and [Sim]
    (the deterministic simulation harness). *)

module Xml = Demaq_xml
module Xquery = Demaq_xquery
module Store = Demaq_store
module Mq = Demaq_mq
module Net = Demaq_net
module Lang = Demaq_lang
module Engine = Demaq_engine
module Obs = Demaq_obs
module Baseline = Demaq_baseline
module Sim = Demaq_sim

(** {1 Shortcuts for the common types} *)

module Server = Demaq_engine.Server
module Message = Demaq_mq.Message
module Value = Demaq_xquery.Value
module Network = Demaq_net.Network
module Tree = Demaq_xml.Tree

(** {1 Convenience functions} *)

let xml = Demaq_xml.Parser.parse
(** Parse an XML document/element from a string. *)

let xml_to_string = Demaq_xml.Serializer.to_string
let xml_pretty = Demaq_xml.Serializer.to_string_pretty

let deploy = Demaq_engine.Server.deploy
(** Deploy a Demaq program (QDL + QML source text) into a fresh server. *)

let inject = Demaq_engine.Server.inject
(** Deliver an external message into one of the server's queues. *)

let query ?host ?vars ?context src =
  fst (Demaq_xquery.Eval.run ?host ?vars ?context src)
(** One-shot expression evaluation, for exploration and tests. *)

(* Kept so the original scaffold's placeholder test keeps compiling until
   the real suites replace it. *)
let placeholder () = ()

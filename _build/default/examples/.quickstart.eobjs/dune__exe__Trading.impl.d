examples/trading.ml: Demaq List Printf

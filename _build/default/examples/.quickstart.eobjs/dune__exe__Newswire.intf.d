examples/newswire.mli:

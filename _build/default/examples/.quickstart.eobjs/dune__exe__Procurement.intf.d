examples/procurement.mli:

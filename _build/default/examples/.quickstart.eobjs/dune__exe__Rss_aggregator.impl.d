examples/rss_aggregator.ml: Demaq List Printf

examples/newswire.ml: Demaq List Printf

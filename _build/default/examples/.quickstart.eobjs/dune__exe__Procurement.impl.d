examples/procurement.ml: Demaq List Printf

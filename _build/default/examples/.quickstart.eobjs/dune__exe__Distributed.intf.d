examples/distributed.mli:

examples/trading.mli:

examples/auction.ml: Demaq List Printf

examples/quickstart.mli:

examples/rss_aggregator.mli:

examples/auction.mli:

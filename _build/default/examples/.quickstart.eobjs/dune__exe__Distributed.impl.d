examples/distributed.ml: Demaq List Printf

examples/quickstart.ml: Demaq List Printf

(* Distribution and zero-downtime evolution.

   §2.1.2 of the paper: "From the point of view of the application rules,
   there is no difference between gateway queues and regular queues. This
   also facilitates the distribution of applications over several nodes by
   replacing local queues with pairs of gateway queues that connect two
   sites." — here a front-office node and a back-office node each run
   their own Demaq server, connected only by gateway pairs.

   §5 (future work, implemented here): "dynamic queue and rule evolution,
   while still guaranteeing correct and reasonable system behavior" — the
   back office gains a fraud-screening rule at runtime, between two orders,
   without restarting either node.

   Run with:  dune exec examples/distributed.exe
*)

module Net = Demaq.Network
module S = Demaq.Server

(* The front office takes orders and forwards them; results come back. *)
let front_program = {|
  create queue orders kind basic mode persistent
  create queue toBack kind outgoingGateway mode persistent
  create queue fromBack kind incomingGateway mode persistent
  create queue customers kind basic mode persistent

  create rule forward for orders
    if (//order) then do enqueue <process>{//order/*}</process> into toBack

  create rule deliver for fromBack
    if (//processed or //rejected) then
      do enqueue <notice>{/*}</notice> into customers
|}

(* The back office prices orders. *)
let back_program = {|
  create queue inbox kind incomingGateway mode persistent
  create queue toFront kind outgoingGateway mode persistent

  create rule price for inbox
    if (//process) then
      do enqueue <processed>
          <id>{string(//id)}</id>
          <charge>{number(//amount) * 1.1}</charge>
        </processed> into toFront
|}

(* Applied at runtime: screen expensive orders before pricing. *)
let fraud_screen_evolution = {|
  create rule screen for inbox
    if (//process[number(amount) > 1000]) then
      do enqueue <rejected>
          <id>{string(//id)}</id>
          <reason>manual review required</reason>
        </rejected> into toFront
  drop rule price
  create rule price for inbox
    if (//process[number(amount) <= 1000]) then
      do enqueue <processed>
          <id>{string(//id)}</id>
          <charge>{number(//amount) * 1.1}</charge>
        </processed> into toFront
|}

let settle nodes =
  let rec go rounds =
    if rounds > 0 then begin
      let processed = List.fold_left (fun acc n -> acc + S.run n) 0 nodes in
      if processed > 0 then go (rounds - 1)
    end
  in
  go 20

let () =
  let net = Net.create () in
  let front = S.deploy ~network:net front_program in
  let back = S.deploy ~network:net back_program in
  (match S.expose back ~name:"back-office" ~queue:"inbox" with
   | Ok () -> ()
   | Error e -> failwith e);
  (match S.expose front ~name:"front-office" ~queue:"fromBack" with
   | Ok () -> ()
   | Error e -> failwith e);
  S.bind_gateway front ~queue:"toBack" ~endpoint:"back-office" ();
  S.bind_gateway back ~queue:"toFront" ~endpoint:"front-office" ();

  let order id amount =
    match
      S.inject front ~queue:"orders"
        (Demaq.xml
           (Printf.sprintf "<order><id>%s</id><amount>%d</amount></order>" id amount))
    with
    | Ok _ -> ()
    | Error e -> failwith (Demaq.Mq.Queue_manager.error_to_string e)
  in

  print_endline "order o1 (amount 400) placed at the front office...";
  order "o1" 400;
  settle [ front; back ];

  print_endline "\nevolving the BACK office at runtime: fraud screen + price cap";
  (match S.evolve back fraud_screen_evolution with
   | Ok () -> print_endline "evolution applied without restarting either node"
   | Error e -> failwith e);

  print_endline "\norder o2 (amount 5000) and o3 (amount 120) placed...";
  order "o2" 5000;
  order "o3" 120;
  settle [ front; back ];

  print_endline "\ncustomer notices at the front office:";
  List.iter
    (fun m -> print_endline ("  " ^ Demaq.xml_to_string (Demaq.Message.body m)))
    (S.queue_contents front "customers");

  let fs = S.stats front and bs = S.stats back in
  Printf.printf
    "\nfront: processed=%d transmissions=%d | back: processed=%d transmissions=%d\n"
    fs.S.processed fs.S.transmissions bs.S.processed bs.S.transmissions

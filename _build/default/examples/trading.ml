(* Securities trading — the paper's introduction names "industry sectors
   as diverse as securities trading [FIX protocol]" as early adopters of
   XML messaging. This example is a miniature continuous-double-auction
   matching engine written entirely as Demaq rules:

   - FIX-style NewOrderSingle messages arrive at an incoming gateway;
   - a slicing groups the book per symbol;
   - a matching rule crosses the best bid against the best ask whenever a
     new order arrives in a symbol's slice;
   - fills are reported as ExecutionReport messages through an outgoing
     gateway, and the day is closed by an echo-queue timer that expires
     unfilled orders.

   Run with:  dune exec examples/trading.exe
*)

module Tree = Demaq.Xml.Tree
module Net = Demaq.Network
module S = Demaq.Server

let program = {|
create queue ordersIn kind incomingGateway mode persistent
create queue book kind basic mode persistent
create queue fills kind basic mode persistent
create queue reports kind outgoingGateway mode persistent
create queue sessionClock kind echo mode persistent
create queue sessionEnd kind basic mode persistent priority 10

create property symbol as xs:string fixed
  queue book value //order/symbol
  queue fills value //fill/symbol
create slicing perSymbol on symbol

(: admit well-formed orders to the book :)
create rule admit for ordersIn
  if (//NewOrderSingle) then
    do enqueue <order>
        <id>{string(//ClOrdID)}</id>
        <symbol>{string(//Symbol)}</symbol>
        <side>{string(//Side)}</side>
        <price>{string(//Price)}</price>
        <qty>{string(//OrderQty)}</qty>
      </order> into book

(: the matching rule: on any change in a symbol's slice, cross the best
   bid with the best ask while they overlap. One fill per activation; the
   fill message re-enters the slice and re-triggers matching, so crossing
   books drain one trade at a time — each trade is its own transaction. :)
create rule match for perSymbol
  if (qs:slice()[/order]) then
    let $filled := qs:slice()//fill/orderID
    let $live := qs:slice()//order[not(id = $filled)]
    let $bids := $live[side = "buy"]
    let $asks := $live[side = "sell"]
    let $bestBid := ($bids[number(price) = max(for $b in $bids return number($b/price))])[1]
    let $bestAsk := ($asks[number(price) = min(for $a in $asks return number($a/price))])[1]
    return
      if (exists($bestBid) and exists($bestAsk)
          and number($bestBid/price) >= number($bestAsk/price)) then
        let $px := number($bestAsk/price)
        return (
          do enqueue <fill>
              <symbol>{string(qs:slicekey())}</symbol>
              <orderID>{string($bestBid/id)}</orderID>
              <price>{$px}</price>
            </fill> into fills,
          do enqueue <fill>
              <symbol>{string(qs:slicekey())}</symbol>
              <orderID>{string($bestAsk/id)}</orderID>
              <price>{$px}</price>
            </fill> into fills
        )
      else ()

(: publish each fill as a FIX-ish ExecutionReport :)
create rule report for fills
  if (//fill) then
    do enqueue <ExecutionReport>
        <ClOrdID>{string(//fill/orderID)}</ClOrdID>
        <Symbol>{string(//fill/symbol)}</Symbol>
        <LastPx>{string(//fill/price)}</LastPx>
        <ExecType>FILL</ExecType>
      </ExecutionReport> into reports

(: end of session: expire resting unfilled orders and release the books :)
create rule closeSession for sessionEnd
  if (//close) then (
    for $o in qs:queue("book")//order
        [not(qs:queue("fills")//fill/orderID = id)]
    return do enqueue <ExecutionReport>
        <ClOrdID>{string($o/id)}</ClOrdID>
        <Symbol>{string($o/symbol)}</Symbol>
        <ExecType>EXPIRED</ExecType>
      </ExecutionReport> into reports,
    for $sym in distinct-values(qs:queue("book")//order/symbol)
    return do reset slicing perSymbol key $sym
  )
|}

let fix_order ~id ~symbol ~side ~price ~qty =
  Printf.sprintf
    "<NewOrderSingle><ClOrdID>%s</ClOrdID><Symbol>%s</Symbol><Side>%s</Side><Price>%d</Price><OrderQty>%d</OrderQty></NewOrderSingle>"
    id symbol side price qty

let () =
  let net = Net.create () in
  let tape = ref [] in
  Net.register net ~name:"reports" ~handler:(fun ~sender:_ body ->
      tape := !tape @ [ body ];
      []);
  let srv = S.deploy ~network:net program in
  S.bind_gateway srv ~queue:"reports" ~endpoint:"reports" ();
  let inject payload =
    match S.inject srv ~queue:"ordersIn" (Demaq.xml payload) with
    | Ok _ -> ()
    | Error e -> failwith (Demaq.Mq.Queue_manager.error_to_string e)
  in

  (* arm the session-close timer: 100 ticks *)
  (match
     S.inject srv
       ~props:[ ("timeout", Demaq.Value.Integer 100);
                ("target", Demaq.Value.String "sessionEnd") ]
       ~queue:"sessionClock" (Demaq.xml "<close/>")
   with
   | Ok _ -> ()
   | Error e -> failwith (Demaq.Mq.Queue_manager.error_to_string e));

  print_endline "order flow: ACME and GLOB books";
  inject (fix_order ~id:"o1" ~symbol:"ACME" ~side:"buy" ~price:99 ~qty:10);
  inject (fix_order ~id:"o2" ~symbol:"ACME" ~side:"sell" ~price:101 ~qty:10);
  inject (fix_order ~id:"o3" ~symbol:"GLOB" ~side:"sell" ~price:55 ~qty:5);
  ignore (S.run srv);
  Printf.printf "  after 3 orders: %d executions (books don't cross yet)\n"
    (List.length !tape);

  inject (fix_order ~id:"o4" ~symbol:"ACME" ~side:"buy" ~price:101 ~qty:10);
  ignore (S.run srv);
  print_endline "  o4 (buy ACME @101) crosses o2 (sell @101):";
  List.iter (fun t -> print_endline ("    " ^ Demaq.xml_to_string t)) !tape;

  tape := [];
  inject (fix_order ~id:"o5" ~symbol:"GLOB" ~side:"buy" ~price:60 ~qty:5);
  ignore (S.run srv);
  Printf.printf "  GLOB crosses independently: %d reports\n" (List.length !tape);

  tape := [];
  print_endline "\nsession close (echo timer fires at tick 100):";
  S.advance_time srv 101;
  ignore (S.run srv);
  List.iter (fun t -> print_endline ("  " ^ Demaq.xml_to_string t)) !tape;

  Printf.printf "\ngc after session close reclaimed %d messages\n" (S.gc srv);
  let st = S.stats srv in
  Printf.printf "stats: processed=%d evals=%d prefilter-skips=%d\n" st.S.processed
    st.S.rule_evaluations st.S.prefilter_skips

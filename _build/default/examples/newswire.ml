(* Multi-media news distribution — the paper's introduction cites the
   IPTC's news architecture as the other industry running on XML
   messaging. This node is a newswire hub:

   - agencies file newsItems (some embargoed until a future tick);
   - a slicing groups all versions of the same story (event id), so a
     correction supersedes earlier copy declaratively;
   - embargoed items wait in an echo queue and release themselves when the
     embargo tick passes;
   - topic rules fan out publishable items to subscriber gateways;
   - the story slice is reset once a kill notice arrives, letting the GC
     reclaim every version.

   Run with:  dune exec examples/newswire.exe
*)

module Tree = Demaq.Xml.Tree
module Net = Demaq.Network
module S = Demaq.Server

let program = {|
create queue wire kind incomingGateway mode persistent
create queue embargoed kind echo mode persistent
create queue publishable kind basic mode persistent
create queue sports kind outgoingGateway mode persistent
create queue finance kind outgoingGateway mode persistent
create queue spiked kind basic mode persistent

create property eventID as xs:string fixed
  queue wire value //newsItem/event
  queue publishable value //newsItem/event
create slicing stories on eventID

(: embargo handling: future-dated items park in the echo queue with the
   remaining delay; everything else is publishable immediately :)
create rule admit for wire
  if (//newsItem) then
    if (number(//newsItem/embargo) > current-dateTime()) then
      do enqueue <newsItem>{//newsItem/*}</newsItem> into embargoed
        with timeout value //newsItem/embargo - current-dateTime()
        with target value "publishable"
    else
      do enqueue <newsItem>{//newsItem/*}</newsItem> into publishable

(: only the latest version of a story goes out: a version is stale if the
   slice holds a higher version number :)
create rule routeSports for publishable
  if (//newsItem[topic = "sports"]
      and not(qs:queue()[//event = string(qs:message()//event)]
                        [number(//version) > number(qs:message()//version)])) then
    do enqueue <bulletin>{//newsItem/headline}{//newsItem/version}</bulletin> into sports

create rule routeFinance for publishable
  if (//newsItem[topic = "finance"]
      and not(qs:queue()[//event = string(qs:message()//event)]
                        [number(//version) > number(qs:message()//version)])) then
    do enqueue <bulletin>{//newsItem/headline}{//newsItem/version}</bulletin> into finance

(: a kill notice spikes the story: log it and release the slice :)
create rule kill for stories
  if (qs:message()//newsItem/kill) then (
    do enqueue <spike><event>{string(qs:slicekey())}</event></spike> into spiked,
    do reset
  )
|}

let news_item ~event ~version ~topic ~headline ?(embargo = 0) ?(kill = false) () =
  Printf.sprintf
    "<newsItem><event>%s</event><version>%d</version><topic>%s</topic><headline>%s</headline><embargo>%d</embargo>%s</newsItem>"
    event version topic headline embargo (if kill then "<kill/>" else "")

let () =
  let net = Net.create () in
  let sports = ref [] and finance = ref [] in
  Net.register net ~name:"sports" ~handler:(fun ~sender:_ b -> sports := !sports @ [ b ]; []);
  Net.register net ~name:"finance" ~handler:(fun ~sender:_ b -> finance := !finance @ [ b ]; []);
  let srv = S.deploy ~network:net program in
  S.bind_gateway srv ~queue:"sports" ~endpoint:"sports" ();
  S.bind_gateway srv ~queue:"finance" ~endpoint:"finance" ();
  let file payload =
    match S.inject srv ~queue:"wire" (Demaq.xml payload) with
    | Ok _ -> ()
    | Error e -> failwith (Demaq.Mq.Queue_manager.error_to_string e)
  in
  let show label inbox =
    List.iter (fun b -> Printf.printf "  %-8s %s\n" label (Demaq.xml_to_string b)) !inbox;
    inbox := []
  in

  print_endline "wire: cup final result (sports), rate decision embargoed to t=50 (finance)";
  file (news_item ~event:"cup-final" ~version:1 ~topic:"sports" ~headline:"Home side wins" ());
  file (news_item ~event:"rate-decision" ~version:1 ~topic:"finance"
          ~headline:"Rates unchanged" ~embargo:50 ());
  ignore (S.run srv);
  show "sports" sports;
  Printf.printf "  finance deliveries so far: %d (embargoed)\n" (List.length !finance);

  print_endline "\na correction for the cup final (version 2) supersedes version 1:";
  file (news_item ~event:"cup-final" ~version:2 ~topic:"sports"
          ~headline:"Home side wins after extra time" ());
  ignore (S.run srv);
  show "sports" sports;

  print_endline "\nclock passes the embargo (t=51): the rate decision releases itself";
  S.advance_time srv 51;
  ignore (S.run srv);
  show "finance" finance;

  print_endline "\nkill notice spikes the cup-final story; GC reclaims all versions";
  file (news_item ~event:"cup-final" ~version:3 ~topic:"sports" ~headline:"" ~kill:true ());
  ignore (S.run srv);
  List.iter
    (fun m -> Printf.printf "  spiked: %s\n" (Demaq.xml_to_string (Demaq.Message.body m)))
    (S.queue_contents srv "spiked");
  Printf.printf "  gc reclaimed %d messages\n" (S.gc srv)

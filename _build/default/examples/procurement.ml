(* The paper's running example (§3, Figs. 3-10): a distributed procurement
   scenario from the chemical industry. An offer request fans out into
   three parallel checks (credit rating, export restrictions, supplier
   capacity), a slicing joins the parallel control flows, the offer is
   priced against master data, invoices are monitored with echo-queue
   timeouts, and transport failures are compensated by postal mail.

   Run with:  dune exec examples/procurement.exe
*)

module Tree = Demaq.Xml.Tree
module Net = Demaq.Network
module S = Demaq.Server

let program = {|
create queue crm kind basic mode persistent
create queue finance kind basic mode persistent
create queue legal kind basic mode persistent
create queue invoices kind basic mode persistent
create queue supplier kind outgoingGateway mode persistent
  interface supplier.wsdl port CapacityRequestPort
  using WS-ReliableMessaging policy wsrmpol.xml
create queue supplierIn kind incomingGateway mode persistent
create queue customer kind outgoingGateway mode persistent
create queue postalService kind outgoingGateway mode persistent
create queue echoQueue kind echo mode persistent
create queue crmErrors kind basic mode persistent

create property requestID as xs:string fixed
  queue crm, customer value //requestID
  queue supplierIn value //requestID
create slicing requestMsgs on requestID

create property messageRequestID as xs:string fixed
  queue invoices, finance value //requestID
create slicing invoiceRetention on messageRequestID

(: Example 3.1 -- fork the three checks (Fig. 5) :)
create rule forkChecks for crm
  if (//offerRequest) then
    let $rid := string(//offerRequest/requestID)
    let $cid := string(//offerRequest/customerID)
    return (
      do enqueue <creditCheck><requestID>{$rid}</requestID><customerID>{$cid}</customerID></creditCheck>
        into finance,
      do enqueue <restrictionCheck><requestID>{$rid}</requestID><items>{//offerRequest/items/item}</items></restrictionCheck>
        into legal,
      do enqueue <capacityRequest><requestID>{$rid}</requestID></capacityRequest>
        into supplier with Sender value "demaq-node"
    )

(: Example 3.2 -- credit rating against the invoices queue (Fig. 6) :)
create rule creditRating for finance
  if (//creditCheck) then
    let $cid := string(//creditCheck/customerID)
    let $unpaid := qs:queue("invoices")[//customerID = $cid][not(//paid)]
    return
      if (count($unpaid) < 2) then
        do enqueue <customerInfoResult><requestID>{string(//creditCheck/requestID)}</requestID><accept/></customerInfoResult> into crm
      else
        do enqueue <customerInfoResult><requestID>{string(//creditCheck/requestID)}</requestID><reject/></customerInfoResult> into crm

create rule exportRestrictions for legal
  if (//restrictionCheck) then
    do enqueue <restrictionsResult>
        <requestID>{string(//restrictionCheck/requestID)}</requestID>
        {//restrictionCheck/items/item[. = "plutonium"]/<restrictedItem/>}
      </restrictionsResult> into crm

create rule capacityReply for supplierIn
  if (//capacityResult) then
    do enqueue <capacityResult><requestID>{string(//requestID)}</requestID>{//accept}{//reject}</capacityResult> into crm

(: Example 3.3 -- join the parallel checks with a slicing (Fig. 7) :)
create rule joinOrder for requestMsgs
  if (qs:slice()[/customerInfoResult] and
      qs:slice()[/restrictionsResult] and
      qs:slice()[/capacityResult] and
      not(qs:slice()[/offer] or qs:slice()[/refusal])) then
    if (qs:slice()[/customerInfoResult/accept] and
        not(qs:slice()[/restrictionsResult//restrictedItem]) and
        qs:slice()[/capacityResult//accept]) then
      let $request := qs:queue("crm")/offerRequest
      let $items := $request[//requestID = qs:slicekey()]/items
      let $pricelist := collection("crm")[/pricelist]
      let $offer := <offer>
          <requestID>{string(qs:slicekey())}</requestID>
          {$items}
          <total>{sum(for $i in $items/item return number($pricelist//price[@item = string($i)]))}</total>
        </offer>
      return do enqueue $offer into customer
    else
      do enqueue <refusal><requestID>{string(qs:slicekey())}</requestID></refusal> into customer

(: Fig. 8 -- release the request's slice once it is answered :)
create rule cleanupRequest for requestMsgs
  if (qs:slice()[/offer] or qs:slice()[/refusal]) then
    do reset

(: Example 3.4 -- payment monitoring via the echo queue (Fig. 9) :)
create rule resetPayedInvoices for invoiceRetention
  if (qs:slice()[//timeoutNotification] and qs:slice()[/paymentConfirmation]) then
    do reset

create rule startPaymentTimer for invoices
  if (//invoice) then
    do enqueue <timeoutNotification><requestID>{string(//requestID)}</requestID></timeoutNotification>
      into echoQueue with timeout value 30 with target value "finance"

create rule checkPayment for finance
  if (//timeoutNotification) then
    let $mRID := qs:message()//requestID
    let $payments := qs:queue()[/paymentConfirmation]
    return
      if (not($payments[//requestID = $mRID])) then
        let $invoice := qs:queue("invoices")[//requestID = $mRID]
        let $reminder := <reminder><requestID>{string($mRID)}</requestID>{$invoice//amount}</reminder>
        return do enqueue $reminder into customer
      else ()

(: Example 3.5 -- dead-link compensation (Fig. 10) :)
create rule confirmOrder for crm errorqueue crmErrors
  if (//customerOrder) then
    let $confirmation := <confirmation>{//orderID}</confirmation>
    return do enqueue $confirmation into customer

create rule deadLink for crmErrors
  if (/error/disconnectedTransport) then
    let $orders := qs:queue("crm")//customerOrder
    let $initialOrderID := /error/initialMessage//orderID
    let $address := $orders[orderID = $initialOrderID]/address
    let $requestMail := <sendMessage>{$address}{/error/initialMessage/*}</sendMessage>
    return do enqueue $requestMail into postalService
|}

let section title = Printf.printf "\n=== %s ===\n" title

let show_deliveries label inbox =
  List.iter
    (fun t -> Printf.printf "%-14s <- %s\n" label (Demaq.xml_to_string t))
    !inbox;
  inbox := []

let () =
  let net = Net.create () in
  let customer_inbox = ref [] and postal_inbox = ref [] in
  Net.register net ~name:"supplier" ~handler:(fun ~sender:_ body ->
      match Tree.find_child body "requestID" with
      | Some rid -> [ Tree.elem "capacityResult" [ rid; Tree.elem "accept" [] ] ]
      | None -> []);
  Net.register net ~name:"customer" ~handler:(fun ~sender:_ body ->
      customer_inbox := !customer_inbox @ [ body ];
      []);
  Net.register net ~name:"postalService" ~handler:(fun ~sender:_ body ->
      postal_inbox := !postal_inbox @ [ body ];
      []);

  let srv = S.deploy ~network:net program in
  S.bind_gateway srv ~queue:"supplier" ~endpoint:"supplier" ~replies_to:"supplierIn" ();
  S.bind_gateway srv ~queue:"customer" ~endpoint:"customer" ();
  S.bind_gateway srv ~queue:"postalService" ~endpoint:"postalService" ();
  S.set_collection srv "crm"
    [ Demaq.xml
        {|<pricelist><price item="glue">5</price><price item="paint">12</price></pricelist>|} ];

  let inject queue payload =
    match Demaq.inject srv ~queue (Demaq.xml payload) with
    | Ok _ -> ()
    | Error e -> failwith (Demaq.Mq.Queue_manager.error_to_string e)
  in

  section "1. Offer request -> parallel checks -> priced offer (Figs. 3-7)";
  inject "crm"
    "<offerRequest><requestID>r1</requestID><customerID>c7</customerID><items><item>glue</item><item>paint</item></items></offerRequest>";
  ignore (S.run srv);
  show_deliveries "customer" customer_inbox;

  section "2. Restricted item -> refusal (Fig. 7, else branch)";
  inject "crm"
    "<offerRequest><requestID>r2</requestID><customerID>c7</customerID><items><item>plutonium</item></items></offerRequest>";
  ignore (S.run srv);
  show_deliveries "customer" customer_inbox;

  section "3. Invoice timeout -> payment reminder (Fig. 9)";
  inject "invoices"
    "<invoice><requestID>inv1</requestID><customerID>c7</customerID><amount>250</amount></invoice>";
  ignore (S.run srv);
  S.advance_time srv 31;
  ignore (S.run srv);
  show_deliveries "customer" customer_inbox;

  section "4. Customer endpoint down -> snail mail compensation (Fig. 10)";
  Net.set_connected net "customer" false;
  inject "crm"
    "<customerOrder><orderID>o77</orderID><address>12 Main St</address></customerOrder>";
  ignore (S.run srv);
  show_deliveries "postalService" postal_inbox;

  section "5. Retention: slice resets let the GC reclaim answered requests";
  Printf.printf "collected %d messages\n" (S.gc srv);

  let st = S.stats srv in
  Printf.printf
    "\nstats: processed=%d rule-evals=%d created=%d errors=%d transmissions=%d timers=%d\n"
    st.S.processed st.S.rule_evaluations st.S.messages_created st.S.errors_raised
    st.S.transmissions st.S.timers_fired

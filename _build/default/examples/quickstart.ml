(* Quickstart: the smallest useful Demaq application.

   A single queue of incoming orders and one declarative rule that
   acknowledges each order. Run with:

     dune exec examples/quickstart.exe
*)

module S = Demaq.Server

let program = {|
  create queue orders kind basic mode persistent
  create queue acks kind basic mode persistent

  create rule acknowledge for orders
    if (//order) then
      do enqueue <ack>
          <orderID>{string(//order/id)}</orderID>
          <items>{count(//order/item)}</items>
        </ack> into acks
|}

let () =
  (* 1. Deploy the program (parses QDL + QML, compiles the rules). *)
  let server = Demaq.deploy program in

  (* 2. Deliver some external messages. *)
  List.iter
    (fun payload ->
      match Demaq.inject server ~queue:"orders" (Demaq.xml payload) with
      | Ok _ -> ()
      | Error e -> failwith (Demaq.Mq.Queue_manager.error_to_string e))
    [
      "<order><id>1</id><item>glue</item><item>paint</item></order>";
      "<order><id>2</id><item>brushes</item></order>";
    ];

  (* 3. Let the engine process everything that is pending. *)
  let processed = S.run server in
  Printf.printf "processed %d messages\n\n" processed;

  (* 4. Inspect the results. *)
  List.iter
    (fun m -> print_endline (Demaq.xml_pretty (Demaq.Message.body m)))
    (S.queue_contents server "acks")

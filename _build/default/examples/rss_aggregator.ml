(* An "Active Web" scenario from the paper's introduction: event
   notification with RSS/Atom feeds. The node subscribes to several feeds,
   deduplicates entries across feeds with a slicing keyed on the entry
   link, filters by topic, and publishes a digest to subscribers when a
   periodic echo-queue tick fires.

   Run with:  dune exec examples/rss_aggregator.exe
*)

module Tree = Demaq.Xml.Tree
module Net = Demaq.Network
module S = Demaq.Server

let program = {|
create queue feedIn kind incomingGateway mode persistent
create queue fresh kind basic mode persistent
create queue digestTicks kind echo mode persistent
create queue digestTrigger kind basic mode persistent
create queue subscribers kind outgoingGateway mode persistent

(: one slice per entry link: the first copy is "fresh", later copies of
   the same story from other feeds are duplicates :)
create property link as xs:string fixed
  queue feedIn value //entry/link
  queue fresh value //entry/link
create slicing stories on link

(: deduplicate: forward a story's entry the first time its slice is seen
   without a <fresh> marker; the marker joins the slice itself, so later
   copies (and the marker's own processing) are guarded out :)
create rule dedup for stories
  if (qs:message()//entry and not(qs:slice()[/fresh])) then
    do enqueue <fresh>{qs:message()//entry}</fresh> into fresh

(: periodic digest: collect the fresh database-tagged stories :)
create rule digest for digestTrigger
  if (//tick) then
    let $stories := qs:queue("fresh")//entry[category = "databases"]
    return
      if (exists($stories)) then (
        do enqueue <digest>
            <count>{count($stories)}</count>
            {for $s in $stories order by string($s/title) return <story>{$s/title}{$s/link}</story>}
          </digest> into subscribers,
        (: release all published stories for garbage collection :)
        for $s in qs:queue("fresh")/fresh
        return do reset slicing stories key string($s//link)
      )
      else ()

(: keep the digest timer ticking: each tick re-arms the next one :)
create rule rearm for digestTrigger
  if (//tick) then
    do enqueue <tick/> into digestTicks
      with timeout value 60
      with target value "digestTrigger"
|}

let entry ~feed ~title ~link ~category =
  Printf.sprintf
    "<post><feed>%s</feed><entry><title>%s</title><link>%s</link><category>%s</category></entry></post>"
    feed title link category

let () =
  let net = Net.create () in
  let delivered = ref [] in
  Net.register net ~name:"subscribers" ~handler:(fun ~sender:_ body ->
      delivered := !delivered @ [ body ];
      []);
  let srv = S.deploy ~network:net program in
  S.bind_gateway srv ~queue:"subscribers" ~endpoint:"subscribers" ();

  let inject queue payload =
    match Demaq.inject srv ~queue (Demaq.xml payload) with
    | Ok _ -> ()
    | Error e -> failwith (Demaq.Mq.Queue_manager.error_to_string e)
  in

  (* arm the first digest tick *)
  (match
     S.inject srv
       ~props:[ ("timeout", Demaq.Value.Integer 60); ("target", Demaq.Value.String "digestTrigger") ]
       ~queue:"digestTicks" (Demaq.xml "<tick/>")
   with
   | Ok _ -> ()
   | Error e -> failwith (Demaq.Mq.Queue_manager.error_to_string e));

  (* three feeds deliver overlapping stories *)
  inject "feedIn" (entry ~feed:"planet-db" ~title:"Vector engines" ~link:"http://x/1" ~category:"databases");
  inject "feedIn" (entry ~feed:"hackernews" ~title:"Vector engines" ~link:"http://x/1" ~category:"databases");
  inject "feedIn" (entry ~feed:"planet-db" ~title:"Queues are databases" ~link:"http://x/2" ~category:"databases");
  inject "feedIn" (entry ~feed:"misc" ~title:"Sourdough tips" ~link:"http://x/3" ~category:"cooking");
  ignore (S.run srv);
  Printf.printf "fresh stories after dedup: %d of 4 posts (1 duplicate suppressed)\n"
    (List.length (S.queue_contents srv "fresh"));

  (* the digest tick fires after 60 ticks of virtual time *)
  S.advance_time srv 61;
  ignore (S.run srv);
  (match !delivered with
   | [ digest ] ->
     print_endline "digest pushed to subscribers:";
     print_endline (Demaq.xml_pretty digest)
   | l -> Printf.printf "unexpected deliveries: %d\n" (List.length l));

  (* published stories were released; the GC reclaims them *)
  Printf.printf "\ngc reclaimed %d messages\n" (S.gc srv);

  (* a late duplicate of a published story is NOT fresh again: its slice
     key is new-lifetime, so it counts as the first of a new lifetime *)
  delivered := [];
  inject "feedIn" (entry ~feed:"late" ~title:"Vector engines" ~link:"http://x/1" ~category:"databases");
  S.advance_time srv 61;
  ignore (S.run srv);
  Printf.printf "second digest deliveries: %d (the story re-publishes in its new lifetime)\n"
    (List.length !delivered)

(* An auction house on Demaq: another asynchronous "Active Web" workload.

   Auctions open with a deadline; bids arrive asynchronously and are
   grouped per auction with a slicing; an echo-queue timeout closes the
   auction, the winning bid is computed declaratively over the slice, and
   the winner is notified through a gateway. Audit requirements keep every
   bid retained until the auction's slice is reset after archiving.

   Run with:  dune exec examples/auction.exe
*)

module Tree = Demaq.Xml.Tree
module Net = Demaq.Network
module S = Demaq.Server

let program = {|
create queue auctions kind basic mode persistent priority 5
create queue bids kind basic mode persistent
create queue deadlines kind echo mode persistent
create queue closing kind basic mode persistent priority 10
create queue results kind basic mode persistent
create queue notify kind outgoingGateway mode persistent
create queue audit kind basic mode persistent

create property auctionID as xs:string fixed
  queue auctions value //auction/id
  queue bids value //bid/auction
  queue closing value //close/auction
  queue results value //result/auction
create slicing perAuction on auctionID

(: opening an auction arms its closing timer :)
create rule openAuction for auctions
  if (//auction) then
    do enqueue <close><auction>{string(//auction/id)}</auction></close>
      into deadlines
      with timeout value //auction/duration
      with target value "closing"

(: reject bids below the reserve price immediately :)
create rule vetBid for bids
  if (//bid) then
    let $auction := qs:queue("auctions")//auction[id = string(qs:message()//bid/auction)]
    return
      if (exists($auction) and number(//bid/amount) < number($auction/reserve)) then
        do enqueue <rejected>
            <auction>{string(//bid/auction)}</auction>
            <bidder>{string(//bid/bidder)}</bidder>
            <reason>below reserve</reason>
          </rejected> into audit
      else ()

(: the deadline fires: compute the winner over the auction's slice :)
create rule closeAuction for perAuction
  if (qs:slice()[/close] and not(qs:slice()[/result])) then
    let $auction := qs:queue("auctions")//auction[id = string(qs:slicekey())]
    let $valid := qs:slice()//bid[number(amount) >= number($auction/reserve)]
    let $best := $valid[number(amount) = max(for $b in $valid return number($b/amount))][1]
    return
      if (exists($best)) then
        do enqueue <result>
            <auction>{string(qs:slicekey())}</auction>
            <winner>{string($best/bidder)}</winner>
            <price>{string($best/amount)}</price>
          </result> into results
      else
        do enqueue <result>
            <auction>{string(qs:slicekey())}</auction>
            <unsold/>
          </result> into results

(: notify the winner and archive, then release the slice for GC :)
create rule announce for results
  if (//result/winner) then
    do enqueue <congratulations>
        <auction>{string(//result/auction)}</auction>
        <bidder>{string(//result/winner)}</bidder>
        <price>{string(//result/price)}</price>
      </congratulations> into notify

create rule archive for perAuction
  if (qs:slice()[/result]) then (
    do enqueue <archived>{qs:slice()/result/*}</archived> into audit,
    do reset
  )
|}

let () =
  let net = Net.create () in
  let notifications = ref [] in
  Net.register net ~name:"notify" ~handler:(fun ~sender:_ body ->
      notifications := !notifications @ [ body ];
      []);
  let srv = S.deploy ~network:net program in
  S.bind_gateway srv ~queue:"notify" ~endpoint:"notify" ();

  let inject queue payload =
    match Demaq.inject srv ~queue (Demaq.xml payload) with
    | Ok _ -> ()
    | Error e -> failwith (Demaq.Mq.Queue_manager.error_to_string e)
  in

  print_endline "opening auction lot-1 (reserve 100, duration 50 ticks)";
  inject "auctions"
    "<auction><id>lot-1</id><reserve>100</reserve><duration>50</duration></auction>";
  ignore (S.run srv);

  print_endline "bids: alice 90 (below reserve), bob 120, carol 150, dave 150 (tie, later)";
  inject "bids" "<bid><auction>lot-1</auction><bidder>alice</bidder><amount>90</amount></bid>";
  inject "bids" "<bid><auction>lot-1</auction><bidder>bob</bidder><amount>120</amount></bid>";
  inject "bids" "<bid><auction>lot-1</auction><bidder>carol</bidder><amount>150</amount></bid>";
  inject "bids" "<bid><auction>lot-1</auction><bidder>dave</bidder><amount>150</amount></bid>";
  ignore (S.run srv);
  Printf.printf "audit entries so far: %d (the below-reserve rejection)\n"
    (List.length (S.queue_contents srv "audit"));

  print_endline "\nadvancing virtual time past the deadline...";
  S.advance_time srv 51;
  ignore (S.run srv);

  (match !notifications with
   | [ n ] ->
     Printf.printf "winner notified: %s\n" (Demaq.xml_to_string n)
   | l -> Printf.printf "unexpected notifications: %d\n" (List.length l));

  print_endline "\naudit queue:";
  List.iter
    (fun m -> print_endline ("  " ^ Demaq.xml_to_string (Demaq.Message.body m)))
    (S.queue_contents srv "audit");

  (* the archive rule reset the slice: bids can now be garbage collected *)
  Printf.printf "\ngc reclaimed %d messages\n" (S.gc srv);
  Printf.printf "bids retained after archive: %d\n"
    (List.length (S.queue_contents srv "bids"));

  (* an unsold auction *)
  print_endline "\nopening auction lot-2 (reserve 1000), one low bid";
  inject "auctions"
    "<auction><id>lot-2</id><reserve>1000</reserve><duration>10</duration></auction>";
  inject "bids" "<bid><auction>lot-2</auction><bidder>erin</bidder><amount>5</amount></bid>";
  ignore (S.run srv);
  S.advance_time srv 11;
  ignore (S.run srv);
  List.iter
    (fun m ->
      print_endline ("result: " ^ Demaq.xml_to_string (Demaq.Message.body m)))
    (S.queue_contents srv "results")
